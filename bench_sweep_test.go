package critics

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"

	"critics/internal/cpu"
	"critics/internal/exp"
)

// sweepConfigs is the fig11 hardware sweep shape: the default machine plus
// every Fig. 11 mechanism, all measuring the same variant trace — the
// canonical batched-sweep workload.
func sweepConfigs() []cpu.Config {
	cfgs := []cpu.Config{cpu.DefaultConfig()}
	for _, mech := range exp.HWMechs {
		cfgs = append(cfgs, exp.ApplyHW(mech))
	}
	return cfgs
}

// BenchmarkSweepSerial measures the serial reference: one uncached Measure
// per machine configuration, each paying its own trace-generation and fanout
// pass. Per-iteration context setup (program generation) is excluded from
// the timer.
func BenchmarkSweepSerial(b *testing.B) {
	app := acrobatProgram()
	cfgs := sweepConfigs()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		ctx := exp.QuickContext()
		p := ctx.Program(*app)
		b.StartTimer()
		for _, cfg := range cfgs {
			ctx.Measure(p, cfg, false)
		}
	}
}

// BenchmarkSweepBatched measures the batched sweep path: all configurations
// of the variant build as lockstep BatchSim lanes over one shared trace pass
// (exp.MeasureBatch on a cold measurement cache). Output is bit-identical to
// the serial path — see TestCatalogBatchedEquivalence — so ns/op against
// BenchmarkSweepSerial is the sweep speedup. The lanes simulate concurrently,
// so the ratio scales with cores: on one core only the shared generation and
// fanout work is saved.
func BenchmarkSweepBatched(b *testing.B) {
	app := acrobatProgram()
	cfgs := sweepConfigs()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		ctx := exp.QuickContext()
		ctx.Program(*app)
		b.StartTimer()
		ctx.MeasureBatch(*app, exp.VarBase, cfgs, false)
	}
}

// sweepBenchEntry is one benchmark's line in BENCH_sweep.json.
type sweepBenchEntry struct {
	NsPerOp     int64   `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	N           int     `json:"n"`
	MsPerOp     float64 `json:"ms_per_op"`
}

// sweepBenchReport is the schema of BENCH_sweep.json — the repo's sweep
// throughput trajectory, written by TestWriteSweepBench in CI.
type sweepBenchReport struct {
	Lanes      int             `json:"lanes"`
	GoMaxProcs int             `json:"gomaxprocs"`
	Serial     sweepBenchEntry `json:"serial"`
	Batched    sweepBenchEntry `json:"batched"`
	Speedup    float64         `json:"speedup"`
}

func toEntry(r testing.BenchmarkResult) sweepBenchEntry {
	return sweepBenchEntry{
		NsPerOp:     r.NsPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		N:           r.N,
		MsPerOp:     float64(r.NsPerOp()) / 1e6,
	}
}

// batchedSweepAllocCeiling bounds allocs/op of the batched sweep build. The
// batch allocates per lane (simulator, cache hierarchy sets, predictor
// tables) and per chunk buffer, never per instruction; the measured number at
// quick scale is ~36k, dominated by 7 lanes of hierarchy construction. The
// ceiling has ~2x slack while still catching any per-instruction allocation
// regression (the sweep simulates ~400k dyns per op, so even 1 alloc per
// dyn would blow past it tenfold).
const batchedSweepAllocCeiling = 75_000

// TestWriteSweepBench runs the sweep benchmark pair once and writes
// BENCH_sweep.json (ns/op, allocs/op, speedup, GOMAXPROCS) to the path named
// by the BENCH_SWEEP_OUT environment variable; unset, the test is skipped.
// It also asserts the batched path's allocation ceiling, so the CI step that
// produces the trajectory file doubles as the allocation guard.
func TestWriteSweepBench(t *testing.T) {
	out := os.Getenv("BENCH_SWEEP_OUT")
	if out == "" {
		t.Skip("BENCH_SWEEP_OUT not set")
	}
	serial := testing.Benchmark(BenchmarkSweepSerial)
	batched := testing.Benchmark(BenchmarkSweepBatched)
	if a := batched.AllocsPerOp(); a > batchedSweepAllocCeiling {
		t.Errorf("batched sweep allocates %d/op, ceiling %d", a, batchedSweepAllocCeiling)
	}
	rep := sweepBenchReport{
		Lanes:      len(sweepConfigs()),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Serial:     toEntry(serial),
		Batched:    toEntry(batched),
	}
	if b := batched.NsPerOp(); b > 0 {
		rep.Speedup = float64(serial.NsPerOp()) / float64(b)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("sweep bench: serial %.1fms/op, batched %.1fms/op, speedup %.2fx (GOMAXPROCS=%d)",
		rep.Serial.MsPerOp, rep.Batched.MsPerOp, rep.Speedup, rep.GoMaxProcs)
}
