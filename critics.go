// Package critics is a full reproduction of "CritICs: Critiquing Criticality
// in Mobile Apps" (MICRO 2018): identification of Critical Instruction
// Chains in mobile workloads and a compiler pass that hoists them and emits
// them in the 16-bit Thumb format behind a CDP decoder mode switch, nearly
// doubling their fetch bandwidth.
//
// This top-level package is the user-facing API. It wires together the
// subsystems in internal/: synthetic workload generation (the substitute for
// Play Store apps and SPEC), trace generation, DFG analysis, the CritIC
// profiler, the compiler passes, a cycle-level out-of-order CPU model with
// caches/branch prediction/LPDDR3 DRAM, an energy model, and the experiment
// runners that regenerate every table and figure of the paper's evaluation.
//
// Quick start:
//
//	report, err := critics.OptimizeApp("acrobat")
//	fmt.Println(report)
//
// or reproduce a specific figure:
//
//	out, err := critics.Experiment("fig10a")
//	fmt.Print(out)
package critics

import (
	"context"
	"fmt"
	"io"
	"strings"

	"critics/internal/binimg"
	"critics/internal/compiler"
	"critics/internal/core"
	"critics/internal/cpu"
	"critics/internal/energy"
	"critics/internal/exp"
	"critics/internal/fleet"
	"critics/internal/layout"
	"critics/internal/sched"
	"critics/internal/sketch"
	"critics/internal/telemetry"
	"critics/internal/trace"
	"critics/internal/workload"
)

// Report summarizes one end-to-end optimization of an app: profile →
// compile → simulate baseline and CritIC binaries over identical work.
type Report struct {
	App string

	// Profile.
	UniqueChains    int
	SelectedChains  int
	ProfileCoverage float64 // fraction of profiled stream in selected chains
	ThumbRepresent  float64 // fraction of candidates passing the 16-bit rule
	CompilerSummary string
	CodeBytesBefore uint32
	CodeBytesAfter  uint32
	ChainsHoisted   int
	ChainsConverted int

	// Simulation.
	BaselineCycles int64
	CritICCycles   int64
	BaselineIPC    float64
	CritICIPC      float64
	SpeedupPct     float64

	// Energy.
	SystemEnergySavingPct float64
	CPUEnergySavingPct    float64
}

// String renders the report.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "app %s\n", r.App)
	fmt.Fprintf(&b, "  profile:  %d unique chains, %d selected, coverage %.1f%%, 16-bit representable %.1f%%\n",
		r.UniqueChains, r.SelectedChains, 100*r.ProfileCoverage, 100*r.ThumbRepresent)
	fmt.Fprintf(&b, "  compile:  %s\n", r.CompilerSummary)
	fmt.Fprintf(&b, "  code:     %d -> %d bytes\n", r.CodeBytesBefore, r.CodeBytesAfter)
	fmt.Fprintf(&b, "  cycles:   %d -> %d (IPC %.3f -> %.3f)\n", r.BaselineCycles, r.CritICCycles, r.BaselineIPC, r.CritICIPC)
	fmt.Fprintf(&b, "  speedup:  %.2f%%\n", r.SpeedupPct)
	fmt.Fprintf(&b, "  energy:   system -%.2f%%, CPU-side -%.2f%%\n", r.SystemEnergySavingPct, r.CPUEnergySavingPct)
	return b.String()
}

// Option adjusts the experiment scale.
type Option func(*exp.Context)

// WithQuickScale shrinks windows for fast runs (tests, demos).
func WithQuickScale() Option {
	return func(c *exp.Context) {
		q := exp.QuickContext()
		c.WarmupArch = q.WarmupArch
		c.WarmArch = q.WarmArch
		c.MeasureArch = q.MeasureArch
		c.ProfilePlan = q.ProfilePlan
	}
}

// WithMeasureInstrs sets the measured window size in architectural
// instructions.
func WithMeasureInstrs(n int) Option {
	return func(c *exp.Context) { c.MeasureArch = n }
}

// WithWorkers bounds the worker pool experiments shard their per-app work
// over. 0 selects GOMAXPROCS; 1 forces the serial reference schedule.
// Results are bit-identical for every value.
func WithWorkers(n int) Option {
	return func(c *exp.Context) { c.Workers = n }
}

// WithFrontend selects the front-end machine/binary variant the pipeline
// simulates: an L1I replacement policy (FrontendPolicies; "" keeps the
// Table I lru baseline) and a profile-guided code-layout pass run after the
// CritIC compiler (CodeLayouts; "" keeps the generator's program order).
// Both apply to the baseline and CritIC measurements alike, so reported
// speedups stay like-for-like. Invalid names surface as errors from the
// call the option is passed to.
func WithFrontend(policy, layout string) Option {
	return func(c *exp.Context) {
		c.L1IPolicy = policy
		c.CodeLayout = layout
	}
}

// FrontendPolicies lists the selectable L1I replacement policies.
func FrontendPolicies() []string { return exp.FrontendPolicies() }

// CodeLayouts lists the selectable profile-guided code-layout passes.
func CodeLayouts() []string { return layout.Kinds() }

// WithTelemetry attaches a metrics registry: simulator stall attribution,
// cache/BPU event counts, memo-cache and pool state, and per-experiment
// wall times become scrapable (e.g. via criticsim -metrics-addr). Telemetry
// never changes results — only counters are written.
func WithTelemetry(reg *telemetry.Registry) Option {
	return func(c *exp.Context) { c.SetTelemetry(reg) }
}

// WithTracer attaches a Chrome trace-event tracer; the engine emits
// wall-clock spans for experiments and memo lookups (labeled hit/miss)
// while it is set. Pipeline (cycle-domain) timelines are exported by
// TraceApp.
func WithTracer(tr *telemetry.Tracer) Option {
	return func(c *exp.Context) { c.SetTracer(tr) }
}

// WithRemoteExecution routes the call's expensive work to a worker fleet:
// measurement units (profile→compile→simulate, the dominant cost of every
// experiment) dispatch through rm — typically a *dist.Coordinator — and,
// when mapper is non-nil, shard maps run on it instead of a local pool so
// many units are on the wire at once. Results are bit-identical to local
// execution (the dist package's determinism test enforces it); a dispatch
// failure falls back to computing locally. Either argument may be nil to
// enable only half the wiring.
func WithRemoteExecution(rm exp.Remote, mapper sched.Mapper) Option {
	return func(c *exp.Context) {
		if rm != nil {
			c.SetRemote(rm)
		}
		if mapper != nil {
			c.SetMapper(mapper)
		}
	}
}

// SharedCaches is an opaque handle to a process-wide artifact cache bundle:
// generated programs, profiles, compiled variants and simulated
// measurements, content-addressed by their full configuration. Attach one to
// many calls (WithSharedCaches) and repeated work — e.g. many service
// requests for the same app — is served from memory. Safe for concurrent
// use; builds are single-flight.
type SharedCaches struct{ caches *exp.Caches }

// NewSharedCaches returns an empty shared cache bundle.
func NewSharedCaches() *SharedCaches {
	return &SharedCaches{caches: exp.NewCaches()}
}

// Stats reports the bundle's hit/miss counters.
func (s *SharedCaches) Stats() exp.CacheStats { return s.caches.Stats() }

// EnableMeasurementSpill routes measurement-cache values the retention
// budget would drop through st — typically an artifact-store adapter
// (artifact.NewMemoSpill) — so a long-lived service degrades to
// decode-from-store instead of re-simulation. Call before the bundle sees
// traffic.
func (s *SharedCaches) EnableMeasurementSpill(st sched.SpillStore) {
	s.caches.EnableMeasurementSpill(st)
}

// WithSharedCaches makes the call reuse (and populate) the shared bundle
// instead of a private per-call cache. Results are unchanged — caching only
// affects wall-clock.
func WithSharedCaches(s *SharedCaches) Option {
	return func(c *exp.Context) { c.UseCaches(s.caches) }
}

// newCtx builds a context with options applied.
func newCtx(opts ...Option) *exp.Context {
	c := exp.NewContext()
	for _, o := range opts {
		o(c)
	}
	return c
}

// Apps returns the names of the ten mobile apps of Table II.
func Apps() []string {
	apps := workload.MobileApps()
	names := make([]string, len(apps))
	for i, a := range apps {
		names[i] = a.Params.Name
	}
	return names
}

// AppNames returns every runnable app name in catalog presentation order
// (SPEC suites first, then the mobile apps) — the names OptimizeApp,
// BuildProfile, TraceApp and the serving API accept.
func AppNames() []string {
	var names []string
	for _, suite := range exp.SuiteOrder {
		for _, a := range exp.Suites()[suite] {
			names = append(names, a.Params.Name)
		}
	}
	return names
}

// OptimizeApp runs the full CritIC pipeline on one mobile app (or SPEC
// workload) and reports the outcome.
func OptimizeApp(name string, opts ...Option) (*Report, error) {
	return OptimizeAppContext(context.Background(), name, opts...)
}

// OptimizeAppContext is OptimizeApp with cancellation: a cancelled or
// expired ctx aborts the run between pipeline stages (and stops shard
// dispatch inside them) and returns ctx's error. Partial artifacts are never
// retained in the memo caches.
func OptimizeAppContext(ctx context.Context, name string, opts ...Option) (*Report, error) {
	rep, _, err := optimizeApp(ctx, name, false, opts...)
	return rep, err
}

// optimizeApp is the shared pipeline behind OptimizeApp and TraceApp;
// collect keeps per-instruction records on the two measurements so a trace
// export can follow from the memo cache.
func optimizeApp(ctx context.Context, name string, collect bool, opts ...Option) (rep *Report, rec *exp.Context, err error) {
	app, ok := workload.FindApp(name)
	if !ok {
		return nil, nil, fmt.Errorf("critics: unknown app %q (mobile apps: %v)", name, Apps())
	}
	defer recoverCancelled(ctx, &err)
	ec := newCtx(opts...)
	ec.SetRunContext(ctx)
	if err := exp.ValidateFrontend(ec.L1IPolicy, ec.CodeLayout); err != nil {
		return nil, nil, fmt.Errorf("critics: %w", err)
	}
	baseKind := exp.FrontendKind(exp.VarBase, ec.CodeLayout)
	critKind := exp.FrontendKind(exp.VarCritIC, ec.CodeLayout)

	// Each stage may return a zero value when ctx is cancelled mid-build, so
	// cancellation is checked before any stage output is consumed.
	base := ec.Program(app)
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	prof := ec.Profile(app, false, 1)
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	optimized, st := ec.Variant(app, critKind)
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}

	mBase := ec.MeasureVariant(app, baseKind, ec.FrontendConfig(app, baseKind, ec.L1IPolicy), collect)
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	mOpt := ec.MeasureVariant(app, critKind, ec.FrontendConfig(app, critKind, ec.L1IPolicy), collect)
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}

	eBase := energy.Compute(&mBase.Res, energy.DefaultConfig())
	eOpt := energy.Compute(&mOpt.Res, energy.DefaultConfig())
	sav := energy.ComputeSavings(eBase, eOpt)

	return &Report{
		App:                   name,
		UniqueChains:          prof.UniqueChains(),
		SelectedChains:        len(prof.Selected()),
		ProfileCoverage:       prof.SelectedCoverage,
		ThumbRepresent:        prof.ThumbRepresentableFrac(),
		CompilerSummary:       st.String(),
		CodeBytesBefore:       base.CodeBytes,
		CodeBytesAfter:        optimized.CodeBytes,
		ChainsHoisted:         st.ChainsHoisted,
		ChainsConverted:       st.ChainsConverted,
		BaselineCycles:        mBase.Res.Cycles,
		CritICCycles:          mOpt.Res.Cycles,
		BaselineIPC:           mBase.Res.IPC(),
		CritICIPC:             mOpt.Res.IPC(),
		SpeedupPct:            exp.Speedup(mBase, mOpt),
		SystemEnergySavingPct: sav.TotalPct,
		CPUEnergySavingPct:    sav.CPUOnlyPct,
	}, ec, nil
}

// Chrome-trace process ids of TraceApp's cycle-domain pipeline timelines
// (telemetry.EnginePID carries the wall-clock engine spans).
const (
	baselinePID = 10
	criticPID   = 11
)

// TraceApp runs the same pipeline as OptimizeApp and streams a Chrome
// trace-event JSON document to w (open the file in Perfetto or
// chrome://tracing): per-instruction stage timelines of the measured window
// for the baseline and CritIC binaries — stall intervals under the paper's
// §II-D attribution taxonomy, CDP mode-switch and mispredict-redirect
// markers, fetch-buffer/ROB occupancy — plus wall-clock engine spans
// (profile, compile, measure; memo lookups labeled hit/miss). The caller
// owns closing w.
func TraceApp(name string, w io.Writer, opts ...Option) (*Report, error) {
	return TraceAppContext(context.Background(), name, w, opts...)
}

// TraceAppContext is TraceApp with cancellation (see OptimizeAppContext for
// the semantics). A cancelled run may have written a partial trace document
// to w; the caller should discard it.
func TraceAppContext(ctx context.Context, name string, w io.Writer, opts ...Option) (*Report, error) {
	tr := telemetry.NewTracer(w)
	tr.MetaProcessName(telemetry.EnginePID, "engine (wall-clock µs)")
	opts = append(opts, WithTracer(tr))
	rep, ec, err := optimizeApp(ctx, name, true, opts...)
	if err != nil {
		return nil, err
	}
	app, _ := workload.FindApp(name)
	baseKind := exp.FrontendKind(exp.VarBase, ec.CodeLayout)
	critKind := exp.FrontendKind(exp.VarCritIC, ec.CodeLayout)
	mBase := ec.MeasureVariant(app, baseKind, ec.FrontendConfig(app, baseKind, ec.L1IPolicy), true)
	mOpt := ec.MeasureVariant(app, critKind, ec.FrontendConfig(app, critKind, ec.L1IPolicy), true)
	cpu.ExportWindow(tr, baselinePID, name+" baseline pipeline (ts in cycles)", mBase.Dyns, mBase.Res.Records)
	cpu.ExportWindow(tr, criticPID, name+" critic pipeline (ts in cycles)", mOpt.Dyns, mOpt.Res.Records)
	if err := tr.Close(); err != nil {
		return nil, err
	}
	return rep, nil
}

// Experiment runs one of the paper's tables/figures by id (e.g. "fig10a",
// "tab1") and returns its formatted report. For running several experiments,
// prefer a Session, which caches programs, profiles and compiled variants
// across runs.
func Experiment(id string, opts ...Option) (string, error) {
	return exp.Run(id, newCtx(opts...))
}

// ExperimentContext is Experiment with cancellation: a cancelled or expired
// ctx stops shard dispatch, discards partial artifacts instead of caching
// them, and returns ctx's error with no output.
func ExperimentContext(ctx context.Context, id string, opts ...Option) (string, error) {
	return exp.RunContext(ctx, id, newCtx(opts...))
}

// Session caches generated programs, profiles and compiled variants across
// experiment runs.
type Session struct {
	ctx *exp.Context
}

// NewSession creates a session with the given scale options.
func NewSession(opts ...Option) *Session {
	return &Session{ctx: newCtx(opts...)}
}

// Experiment runs one experiment id within the session.
func (s *Session) Experiment(id string) (string, error) {
	return exp.Run(id, s.ctx)
}

// Context exposes the underlying experiment context for advanced use from
// within this module (examples, benchmarks).
func (s *Session) Context() *exp.Context { return s.ctx }

// CacheStats reports the session's memo-cache hit/miss counters: how often
// programs, profiles, compiled variants and measurements were reused across
// the experiments run so far.
func (s *Session) CacheStats() exp.CacheStats { return s.ctx.CacheStats() }

// ExperimentIDs lists the available experiment ids.
func ExperimentIDs() []string { return exp.IDs() }

// BuildProfile profiles an app and returns the CritIC profile (the artifact
// cmd/criticprof serializes).
func BuildProfile(name string, opts ...Option) (*core.Profile, error) {
	return BuildProfileContext(context.Background(), name, opts...)
}

// BuildProfileContext is BuildProfile with cancellation (see
// OptimizeAppContext for the semantics).
func BuildProfileContext(ctx context.Context, name string, opts ...Option) (prof *core.Profile, err error) {
	app, ok := workload.FindApp(name)
	if !ok {
		return nil, fmt.Errorf("critics: unknown app %q", name)
	}
	defer recoverCancelled(ctx, &err)
	ec := newCtx(opts...)
	ec.SetRunContext(ctx)
	prof = ec.Profile(app, false, 1)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return prof, nil
}

// FleetConverge runs the iterative fleet optimizer for one app against a
// device-consensus profile sketch (see internal/fleet): generations of
// candidate CritIC selection policies are measured through the memoized
// sweep path and A/B-scored against the fleet's observed dynamic stream
// until the winner stabilizes. Cancellation semantics match
// OptimizeAppContext.
func FleetConverge(ctx context.Context, name string, consensus *sketch.Sketch, fopts fleet.ConvergeOptions, opts ...Option) (rep *fleet.Report, err error) {
	app, ok := workload.FindApp(name)
	if !ok {
		return nil, fmt.Errorf("critics: unknown app %q", name)
	}
	defer recoverCancelled(ctx, &err)
	ec := newCtx(opts...)
	ec.SetRunContext(ctx)
	rep, err = fleet.Converge(ctx, ec, app, consensus, fopts)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return rep, nil
}

// recoverCancelled converts a panic raised by a pipeline stage that consumed
// a discarded, cancellation-invalidated artifact (memo lookups return zero
// values once the run context is cancelled) back into ctx's error. Panics on
// a live context are real bugs and propagate.
func recoverCancelled(ctx context.Context, err *error) {
	if p := recover(); p != nil {
		if cerr := ctx.Err(); cerr != nil {
			*err = cerr
			return
		}
		panic(p)
	}
}

// CompileWithProfile applies the CritIC pass to an app's program under an
// explicit profile (e.g. one loaded from disk) and returns the pass stats.
func CompileWithProfile(name string, prof *core.Profile) (compiler.Stats, error) {
	app, ok := workload.FindApp(name)
	if !ok {
		return compiler.Stats{}, fmt.Errorf("critics: unknown app %q", name)
	}
	p := workload.Generate(app.Params)
	_, st, err := compiler.ApplyCritIC(p, prof, compiler.Options{MaxLen: 5, Switch: compiler.SwitchCDP})
	return st, err
}

// ScanInputs assembles an app's unoptimized binary image and a window of n
// executed instruction addresses — the (image, trace) upload pair the
// source-free scanning service consumes (server KindScan, criticctl scan).
// The unoptimized binary is deliberately the baseline one: scanning it shows
// the missed-CritIC surface the compiler pass would have claimed.
func ScanInputs(name string, n int) (img []byte, addrs []uint32, err error) {
	app, ok := workload.FindApp(name)
	if !ok {
		return nil, nil, fmt.Errorf("critics: unknown app %q", name)
	}
	p := workload.Generate(app.Params)
	img, err = binimg.Assemble(p)
	if err != nil {
		return nil, nil, err
	}
	g := trace.NewGenerator(p, app.Params.Seed)
	dyns := g.Generate(nil, n)
	addrs = make([]uint32, len(dyns))
	for i := range dyns {
		addrs[i] = dyns[i].Addr
	}
	return img, addrs, nil
}

// TraceSample generates a window of dynamic execution for an app — handy for
// external analyses built on this library.
func TraceSample(name string, n int) ([]trace.Dyn, error) {
	app, ok := workload.FindApp(name)
	if !ok {
		return nil, fmt.Errorf("critics: unknown app %q", name)
	}
	p := workload.Generate(app.Params)
	g := trace.NewGenerator(p, app.Params.Seed)
	g.Skip(5000)
	return g.Generate(nil, n), nil
}
