package critics

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"

	"critics/internal/exp"
	"critics/internal/layout"
)

// benchFrontendPolicy measures one quick-scale simulation of the CritIC
// variant under one L1I replacement policy — the per-cell cost of the
// fig-frontend grid. Context setup (program, profile, variant compilation)
// is excluded from the timer so the number is simulation throughput, not
// pipeline cost.
func benchFrontendPolicy(b *testing.B, policy string) {
	app := acrobatProgram()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		ctx := exp.QuickContext()
		kind := exp.FrontendKind(exp.VarCritIC, "c3")
		cfg := ctx.FrontendConfig(*app, kind, policy)
		p, _ := ctx.Variant(*app, kind)
		b.StartTimer()
		ctx.Measure(p, cfg, false)
	}
}

func BenchmarkFrontendPolicyLRU(b *testing.B)   { benchFrontendPolicy(b, "lru") }
func BenchmarkFrontendPolicySRRIP(b *testing.B) { benchFrontendPolicy(b, "srrip") }
func BenchmarkFrontendPolicyTRRIP(b *testing.B) { benchFrontendPolicy(b, "trrip") }

// BenchmarkLayoutC3 measures the C³ clustering pass itself (edge fold, greedy
// merge, relayout of the clone) — the one-time per-variant cost the layout
// axis adds before any simulation runs.
func BenchmarkLayoutC3(b *testing.B) {
	app := acrobatProgram()
	ctx := exp.QuickContext()
	p, _ := ctx.Variant(*app, exp.VarCritIC)
	prof := ctx.Profile(*app, false, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := layout.ApplyKind(p, prof, "c3"); err != nil {
			b.Fatal(err)
		}
	}
}

// frontendBenchReport is the schema of BENCH_frontend.json — the per-policy
// simulation cost and the layout-pass cost, written by TestWriteFrontendBench
// in CI.
type frontendBenchReport struct {
	GoMaxProcs int                        `json:"gomaxprocs"`
	Policies   map[string]sweepBenchEntry `json:"policies"`
	LayoutC3   sweepBenchEntry            `json:"layout_c3"`
}

// frontendPolicyOverheadCeiling bounds how much slower a non-lru policy may
// simulate relative to lru. The policy seam is two interface calls per cache
// event; srrip/trrip add RRPV updates and (trrip) a binary search over the
// hint table per hit. 1.5x leaves room for noise on shared CI runners while
// still catching an accidental per-access allocation or quadratic scan.
const frontendPolicyOverheadCeiling = 1.5

// TestWriteFrontendBench runs the front-end benchmarks once and writes
// BENCH_frontend.json to the path named by the BENCH_FRONTEND_OUT environment
// variable; unset, the test is skipped. It also asserts the policy-overhead
// ceiling, so the CI step producing the trajectory file doubles as the
// policy-seam performance guard.
func TestWriteFrontendBench(t *testing.T) {
	out := os.Getenv("BENCH_FRONTEND_OUT")
	if out == "" {
		t.Skip("BENCH_FRONTEND_OUT not set")
	}
	rep := frontendBenchReport{
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Policies:   map[string]sweepBenchEntry{},
	}
	results := map[string]testing.BenchmarkResult{
		"lru":   testing.Benchmark(BenchmarkFrontendPolicyLRU),
		"srrip": testing.Benchmark(BenchmarkFrontendPolicySRRIP),
		"trrip": testing.Benchmark(BenchmarkFrontendPolicyTRRIP),
	}
	for pol, r := range results {
		rep.Policies[pol] = toEntry(r)
	}
	rep.LayoutC3 = toEntry(testing.Benchmark(BenchmarkLayoutC3))
	if lru := results["lru"].NsPerOp(); lru > 0 {
		for _, pol := range []string{"srrip", "trrip"} {
			if ratio := float64(results[pol].NsPerOp()) / float64(lru); ratio > frontendPolicyOverheadCeiling {
				t.Errorf("%s simulates %.2fx slower than lru, ceiling %.1fx", pol, ratio, frontendPolicyOverheadCeiling)
			}
		}
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("frontend bench: lru %.1fms/op, srrip %.1fms/op, trrip %.1fms/op, c3 pass %.2fms/op",
		rep.Policies["lru"].MsPerOp, rep.Policies["srrip"].MsPerOp,
		rep.Policies["trrip"].MsPerOp, rep.LayoutC3.MsPerOp)
}
