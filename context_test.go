package critics

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestContextPreCancelled: a cancelled context fails every context-taking
// entry point quickly with the context's error, not a partial result.
func TestContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	t0 := time.Now()
	if _, err := OptimizeAppContext(ctx, "acrobat", WithQuickScale()); !errors.Is(err, context.Canceled) {
		t.Errorf("OptimizeAppContext: %v, want context.Canceled", err)
	}
	if _, err := BuildProfileContext(ctx, "acrobat", WithQuickScale()); !errors.Is(err, context.Canceled) {
		t.Errorf("BuildProfileContext: %v, want context.Canceled", err)
	}
	if _, err := ExperimentContext(ctx, "tab1", WithQuickScale()); !errors.Is(err, context.Canceled) {
		t.Errorf("ExperimentContext: %v, want context.Canceled", err)
	}
	if elapsed := time.Since(t0); elapsed > 5*time.Second {
		t.Errorf("pre-cancelled calls took %v; cancellation is not early", elapsed)
	}
}

// TestContextWrappersIdentical: the context-free wrappers are the
// background-context calls — same report either way.
func TestContextWrappersIdentical(t *testing.T) {
	direct, err := OptimizeApp("maps", WithQuickScale())
	if err != nil {
		t.Fatal(err)
	}
	viaCtx, err := OptimizeAppContext(context.Background(), "maps", WithQuickScale())
	if err != nil {
		t.Fatal(err)
	}
	if direct.String() != viaCtx.String() {
		t.Errorf("wrapper and context call disagree:\n%s\nvs\n%s", direct, viaCtx)
	}
}

// TestSharedCachesAcrossCalls: a SharedCaches bundle carries artifacts
// between otherwise independent calls, and a cancelled call does not poison
// it for the next one.
func TestSharedCachesAcrossCalls(t *testing.T) {
	shared := NewSharedCaches()
	if _, err := OptimizeApp("acrobat", WithQuickScale(), WithSharedCaches(shared)); err != nil {
		t.Fatal(err)
	}
	before := shared.Stats()
	if _, err := OptimizeApp("acrobat", WithQuickScale(), WithSharedCaches(shared)); err != nil {
		t.Fatal(err)
	}
	after := shared.Stats()
	if after.Measurements.Hits <= before.Measurements.Hits {
		t.Errorf("no measurement cache hits on the repeat call: %+v -> %+v", before, after)
	}

	// A cancelled run against the same bundle must not retain partial
	// artifacts that would corrupt a later clean run.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := OptimizeAppContext(ctx, "music", WithQuickScale(), WithSharedCaches(shared)); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled shared-cache run: %v", err)
	}
	clean, err := OptimizeApp("music", WithQuickScale(), WithSharedCaches(shared))
	if err != nil {
		t.Fatal(err)
	}
	direct, err := OptimizeApp("music", WithQuickScale())
	if err != nil {
		t.Fatal(err)
	}
	if clean.String() != direct.String() {
		t.Errorf("shared caches after a cancelled run corrupt results:\n%s\nvs\n%s", clean, direct)
	}
}
