package prog

import (
	"math/rand"
	"testing"

	"critics/internal/isa"
)

// twoFuncProgram builds a small valid program:
//
//	main: b0 (alu, call f1) -> b1 (loop body, cond back edge) -> b2 (ret)
//	f1:   b0 (alu, ret)
func twoFuncProgram() *Program {
	alu := func(op isa.Op, rd, rn, rm isa.Reg) Instr {
		return Instr{Inst: isa.Inst{Op: op, Rd: rd, Rn: rn, Rm: rm}}
	}
	load := func(rd, rn isa.Reg, region int) Instr {
		return Instr{Inst: isa.Inst{Op: isa.OpLDR, Rd: rd, Rn: rn, Rm: isa.NoReg, HasImm: true, Imm: 8}, MemRegion: region}
	}
	store := func(rm, rn isa.Reg, region int) Instr {
		return Instr{Inst: isa.Inst{Op: isa.OpSTR, Rd: isa.NoReg, Rn: rn, Rm: rm, HasImm: true, Imm: 4}, MemRegion: region}
	}
	branch := func(cond isa.Cond) Instr {
		return Instr{Inst: isa.Inst{Op: isa.OpB, Cond: cond, Rd: isa.NoReg, Rn: isa.NoReg, Rm: isa.NoReg}}
	}
	call := func() Instr {
		return Instr{Inst: isa.Inst{Op: isa.OpBL, Rd: isa.NoReg, Rn: isa.NoReg, Rm: isa.NoReg}}
	}
	ret := func() Instr {
		return Instr{Inst: isa.Inst{Op: isa.OpBX, Rd: isa.NoReg, Rn: isa.LR, Rm: isa.NoReg}}
	}

	main := &Func{ID: 0, Name: "main"}
	main.Blocks = []*Block{
		{ID: 0, Instrs: []Instr{
			alu(isa.OpMOV, isa.R0, isa.R1, isa.NoReg),
			alu(isa.OpADD, isa.R2, isa.R0, isa.R1),
			call(),
		}, End: EndCall, Callee: 1, Next: 1},
		{ID: 1, Instrs: []Instr{
			load(isa.R3, isa.R2, 0),
			alu(isa.OpADD, isa.R4, isa.R3, isa.R2),
			store(isa.R4, isa.R2, 0),
			Instr{Inst: isa.Inst{Op: isa.OpCMP, Rd: isa.NoReg, Rn: isa.R4, Rm: isa.NoReg, HasImm: true, Imm: 100}},
			branch(isa.CondNE),
		}, End: EndCondBranch, Taken: 1, Next: 2, TakenProb: 0.9},
		{ID: 2, Instrs: []Instr{ret()}, End: EndReturn},
	}
	f1 := &Func{ID: 1, Name: "helper"}
	f1.Blocks = []*Block{
		{ID: 0, Instrs: []Instr{
			alu(isa.OpSUB, isa.R5, isa.R0, isa.R1),
			ret(),
		}, End: EndReturn},
	}
	return &Program{
		Name:          "test",
		Funcs:         []*Func{main, f1},
		Entry:         0,
		NumMemRegions: 1,
		RegionBytes:   []uint32{4096},
	}
}

func TestValidateOK(t *testing.T) {
	p := twoFuncProgram()
	if err := p.Validate(); err != nil {
		t.Fatalf("valid program rejected: %v", err)
	}
}

func TestValidateCatchesBadCFG(t *testing.T) {
	p := twoFuncProgram()
	p.Funcs[0].Blocks[1].Taken = 99
	if err := p.Validate(); err == nil {
		t.Error("bad branch target not caught")
	}

	p = twoFuncProgram()
	p.Funcs[0].Blocks[0].Callee = 7
	if err := p.Validate(); err == nil {
		t.Error("bad callee not caught")
	}

	p = twoFuncProgram()
	p.Funcs[0].Blocks[1].TakenProb = 1.5
	if err := p.Validate(); err == nil {
		t.Error("bad probability not caught")
	}

	p = twoFuncProgram()
	p.Funcs[0].Blocks[1].Instrs[0].MemRegion = 3
	if err := p.Validate(); err == nil {
		t.Error("bad memory region not caught")
	}

	p = twoFuncProgram()
	// Control instruction in the middle of a block.
	b := p.Funcs[0].Blocks[1]
	b.Instrs[1] = Instr{Inst: isa.Inst{Op: isa.OpB, Rd: isa.NoReg, Rn: isa.NoReg, Rm: isa.NoReg}}
	if err := p.Validate(); err == nil {
		t.Error("mid-block control instruction not caught")
	}
}

func TestLayoutA32(t *testing.T) {
	p := twoFuncProgram()
	p.Layout()
	if !p.LaidOut() {
		t.Fatal("LaidOut false after Layout")
	}
	// All A32: every address must be 4-aligned and consecutive within a
	// block; functions 64-aligned.
	for _, f := range p.Funcs {
		if a := f.Blocks[0].Instrs[0].Addr; a%64 != 0 {
			t.Errorf("func %s starts at %d, not 64-aligned", f.Name, a)
		}
		for _, b := range f.Blocks {
			for i := range b.Instrs {
				if b.Instrs[i].Addr%4 != 0 {
					t.Errorf("A32 instr at %d not aligned", b.Instrs[i].Addr)
				}
			}
		}
	}
	if p.CodeBytes == 0 || p.CodeBytes%64 != 0 {
		t.Errorf("CodeBytes = %d", p.CodeBytes)
	}
}

func TestLayoutThumbPacking(t *testing.T) {
	p := twoFuncProgram()
	// Convert block 1's first three instructions to Thumb with a CDP
	// prefix inserted before them.
	b := p.Funcs[0].Blocks[1]
	cdp := Instr{Inst: isa.Inst{Op: isa.OpCDP, Rd: isa.NoReg, Rn: isa.NoReg, Rm: isa.NoReg}, Thumb: true, CDPCount: 3}
	rest := append([]Instr(nil), b.Instrs...)
	for i := 0; i < 3; i++ {
		rest[i].Thumb = true
	}
	b.Instrs = append([]Instr{cdp}, rest...)
	p.Layout()

	// CDP + 3 thumb = 8 bytes: the following A32 CMP must sit exactly 8
	// bytes after the CDP (no padding needed).
	instrs := b.Instrs
	if d := instrs[4].Addr - instrs[0].Addr; d != 8 {
		t.Errorf("A32 after even-length thumb run at offset %d, want 8", d)
	}
	// Thumb instructions are 2 bytes apart.
	for i := 1; i <= 3; i++ {
		if d := instrs[i].Addr - instrs[i-1].Addr; d != 2 {
			t.Errorf("thumb spacing %d at %d", d, i)
		}
	}
	// Now an odd-length run: CDP + 2 thumb = 6 bytes -> next A32 pads to 8.
	p2 := twoFuncProgram()
	b2 := p2.Funcs[0].Blocks[1]
	cdp2 := Instr{Inst: isa.Inst{Op: isa.OpCDP, Rd: isa.NoReg, Rn: isa.NoReg, Rm: isa.NoReg}, Thumb: true, CDPCount: 2}
	rest2 := append([]Instr(nil), b2.Instrs...)
	rest2[0].Thumb = true
	rest2[1].Thumb = true
	b2.Instrs = append([]Instr{cdp2}, rest2...)
	p2.Layout()
	instrs2 := b2.Instrs
	if d := instrs2[3].Addr - instrs2[0].Addr; d != 8 {
		t.Errorf("A32 after odd-length thumb run at offset %d, want 8 (6 + 2 pad)", d)
	}
}

func TestCloneIsDeep(t *testing.T) {
	p := twoFuncProgram()
	q := p.Clone()
	q.Funcs[0].Blocks[0].Instrs[0].Rd = isa.R9
	if p.Funcs[0].Blocks[0].Instrs[0].Rd == isa.R9 {
		t.Error("clone shares instruction storage")
	}
	q.Funcs[0].Blocks[0].End = EndReturn
	if p.Funcs[0].Blocks[0].End == EndReturn {
		t.Error("clone shares block storage")
	}
}

func TestReorderLegalIdentity(t *testing.T) {
	p := twoFuncProgram()
	b := p.Funcs[0].Blocks[1]
	perm := []int{0, 1, 2, 3, 4}
	if !ReorderLegal(b, perm) {
		t.Error("identity permutation rejected")
	}
}

func TestReorderIllegalRAW(t *testing.T) {
	p := twoFuncProgram()
	b := p.Funcs[0].Blocks[1]
	// Swap the load (produces r3) with its consumer ADD.
	perm := []int{1, 0, 2, 3, 4}
	if ReorderLegal(b, perm) {
		t.Error("RAW violation accepted")
	}
}

func TestReorderIllegalTerminator(t *testing.T) {
	p := twoFuncProgram()
	b := p.Funcs[0].Blocks[1]
	perm := []int{0, 1, 2, 4, 3}
	if ReorderLegal(b, perm) {
		t.Error("terminator displacement accepted")
	}
}

func TestReorderMemOrdering(t *testing.T) {
	// load r3,[r2]; store r4,[r2]; load r5,[r2] — same region: the loads
	// must not cross the store.
	b := &Block{ID: 0, End: EndReturn, Instrs: []Instr{
		{Inst: isa.Inst{Op: isa.OpLDR, Rd: isa.R3, Rn: isa.R2, Rm: isa.NoReg, HasImm: true, Imm: 0}, MemRegion: 0},
		{Inst: isa.Inst{Op: isa.OpSTR, Rd: isa.NoReg, Rn: isa.R2, Rm: isa.R4, HasImm: true, Imm: 0}, MemRegion: 0},
		{Inst: isa.Inst{Op: isa.OpLDR, Rd: isa.R5, Rn: isa.R2, Rm: isa.NoReg, HasImm: true, Imm: 4}, MemRegion: 0},
		{Inst: isa.Inst{Op: isa.OpBX, Rd: isa.NoReg, Rn: isa.LR, Rm: isa.NoReg}},
	}}
	if ReorderLegal(b, []int{2, 1, 0, 3}) {
		t.Error("loads crossed a same-region store")
	}
	// Different regions commute.
	b.Instrs[1].MemRegion = 0
	b.Instrs[0].MemRegion = 1
	b.Instrs[2].MemRegion = 1
	if !ReorderLegal(b, []int{2, 0, 1, 3}) {
		t.Error("independent-region reorder rejected (r5 load before store, load r3 kept before)")
	}
}

func TestReorderWARWAW(t *testing.T) {
	// i0: add r1 = r2+r3 ; i1: add r2 = r4+r5 (WAR on r2) ; i2: add r1 = r6+r7 (WAW on r1)
	b := &Block{ID: 0, End: EndFallthrough, Next: 0, Instrs: []Instr{
		{Inst: isa.Inst{Op: isa.OpADD, Rd: isa.R1, Rn: isa.R2, Rm: isa.R3}},
		{Inst: isa.Inst{Op: isa.OpADD, Rd: isa.R2, Rn: isa.R4, Rm: isa.R5}},
		{Inst: isa.Inst{Op: isa.OpADD, Rd: isa.R1, Rn: isa.R6, Rm: isa.R7}},
	}}
	if ReorderLegal(b, []int{1, 0, 2}) {
		t.Error("WAR violation accepted")
	}
	if ReorderLegal(b, []int{2, 1, 0}) {
		t.Error("WAW violation accepted")
	}
}

func TestReorderCCDependence(t *testing.T) {
	// cmp r1,r2 ; addne r3 = r4+r5: predicated consumer must not move
	// before the cmp.
	b := &Block{ID: 0, End: EndFallthrough, Next: 0, Instrs: []Instr{
		{Inst: isa.Inst{Op: isa.OpCMP, Rd: isa.NoReg, Rn: isa.R1, Rm: isa.R2}},
		{Inst: isa.Inst{Op: isa.OpADD, Cond: isa.CondNE, Rd: isa.R3, Rn: isa.R4, Rm: isa.R5}},
	}}
	if ReorderLegal(b, []int{1, 0}) {
		t.Error("CC dependence violated")
	}
}

func TestApplyReorder(t *testing.T) {
	b := &Block{ID: 0, End: EndFallthrough, Next: 0, Instrs: []Instr{
		{Inst: isa.Inst{Op: isa.OpADD, Rd: isa.R1, Rn: isa.R2, Rm: isa.R3}},
		{Inst: isa.Inst{Op: isa.OpSUB, Rd: isa.R4, Rn: isa.R5, Rm: isa.R6}},
		{Inst: isa.Inst{Op: isa.OpEOR, Rd: isa.R7, Rn: isa.R8, Rm: isa.R9}},
	}}
	perm := []int{2, 0, 1}
	if !ReorderLegal(b, perm) {
		t.Fatal("independent reorder rejected")
	}
	ApplyReorder(b, perm)
	if b.Instrs[0].Op != isa.OpEOR || b.Instrs[1].Op != isa.OpADD || b.Instrs[2].Op != isa.OpSUB {
		t.Errorf("ApplyReorder produced %v %v %v", b.Instrs[0].Op, b.Instrs[1].Op, b.Instrs[2].Op)
	}
}

// Property: a random legal permutation applied twice (perm then its inverse)
// restores the block.
func TestReorderRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 3 + r.Intn(6)
		b := &Block{ID: 0, End: EndFallthrough, Next: 0}
		for i := 0; i < n; i++ {
			// Independent instructions: disjoint registers via modular spacing.
			rd := isa.Reg(i % 11)
			b.Instrs = append(b.Instrs, Instr{Inst: isa.Inst{Op: isa.OpMOV, Rd: rd, Rn: rd, Rm: isa.NoReg}})
		}
		perm := r.Perm(n)
		orig := append([]Instr(nil), b.Instrs...)
		ApplyReorder(b, perm)
		inv := make([]int, n)
		for np, o := range perm {
			inv[o] = np
		}
		ApplyReorder(b, inv)
		for i := range orig {
			if b.Instrs[i] != orig[i] {
				t.Fatalf("round trip failed at %d", i)
			}
		}
	}
}

func TestComputeStats(t *testing.T) {
	p := twoFuncProgram()
	p.Layout()
	s := p.ComputeStats()
	if s.Funcs != 2 || s.Blocks != 4 || s.Instrs != 11 {
		t.Errorf("stats = %+v", s)
	}
	if s.ThumbInstrs != 0 || s.CDPs != 0 {
		t.Errorf("unexpected thumb stats: %+v", s)
	}
	if s.CodeBytes != p.CodeBytes {
		t.Error("CodeBytes mismatch")
	}
}

func TestAtAndNumInstrs(t *testing.T) {
	p := twoFuncProgram()
	if n := p.NumInstrs(); n != 11 {
		t.Errorf("NumInstrs = %d, want 11", n)
	}
	in := p.At(InstID{Func: 0, Block: 1, Index: 1})
	if in.Op != isa.OpADD {
		t.Errorf("At returned %v", in.Op)
	}
	if got := (InstID{Func: 1, Block: 2, Index: 3}).String(); got != "f1.b2.i3" {
		t.Errorf("InstID.String() = %q", got)
	}
}

func TestLayoutOrderPermutes(t *testing.T) {
	p := twoFuncProgram()
	p.Layout()
	identityBytes := p.CodeBytes
	mainEntry := p.Funcs[0].Blocks[0].Instrs[0].Addr

	q := p.Clone()
	q.LayoutOrder([]int{1, 0}) // f1 first, main second
	if q.CodeBytes != identityBytes {
		t.Errorf("CodeBytes %d -> %d under a permutation", identityBytes, q.CodeBytes)
	}
	if got := q.Funcs[1].Blocks[0].Instrs[0].Addr; got != 0 {
		t.Errorf("first-emitted function starts at %d, want 0", got)
	}
	if got := q.Funcs[0].Blocks[0].Instrs[0].Addr; got == mainEntry && mainEntry == 0 {
		t.Error("second-emitted function still at address 0")
	}
	// Structure untouched: ids still index-aligned, program still valid.
	for i, f := range q.Funcs {
		if f.ID != i {
			t.Fatalf("func %d has id %d after LayoutOrder", i, f.ID)
		}
	}
	if err := q.Validate(); err != nil {
		t.Fatalf("reordered program invalid: %v", err)
	}
	// Nil order is the identity layout.
	r := p.Clone()
	r.LayoutOrder(nil)
	if r.Funcs[0].Blocks[0].Instrs[0].Addr != mainEntry {
		t.Error("nil order moved the entry function")
	}
}

func TestLayoutOrderRejectsBadOrder(t *testing.T) {
	for _, order := range [][]int{{0}, {0, 0}, {0, 5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("LayoutOrder(%v) accepted", order)
				}
			}()
			p := twoFuncProgram()
			p.LayoutOrder(order)
		}()
	}
}
