// Package prog defines the static program representation the rest of the
// system operates on: functions made of basic blocks made of instructions,
// with control-flow annotations rich enough to drive trace generation
// (branch biases, call targets) and layout annotations rich enough to drive
// the fetch model (byte addresses, 32-bit vs 16-bit emission, CDP prefixes).
//
// The compiler passes in internal/compiler transform Programs; the trace
// layer in internal/trace executes them; the profiler in internal/core maps
// dynamic chains back onto InstIDs defined here.
package prog

import (
	"fmt"

	"critics/internal/encoding"
	"critics/internal/isa"
)

// BlockEnd describes how control leaves a basic block.
type BlockEnd uint8

// Block terminator kinds.
const (
	EndFallthrough BlockEnd = iota // continue to Next
	EndJump                        // unconditional branch to Taken
	EndCondBranch                  // conditional branch: Taken with TakenProb, else Next
	EndCall                        // call Callee, then continue to Next
	EndReturn                      // return to caller
)

// String implements fmt.Stringer for BlockEnd.
func (e BlockEnd) String() string {
	switch e {
	case EndFallthrough:
		return "fallthrough"
	case EndJump:
		return "jump"
	case EndCondBranch:
		return "cond-branch"
	case EndCall:
		return "call"
	case EndReturn:
		return "return"
	default:
		return "unknown"
	}
}

// Instr is one static instruction plus the layout and behavioural metadata
// the simulator and trace generator need.
type Instr struct {
	isa.Inst

	// Layout, assigned by Program.Layout.
	Addr uint32 // byte address of the encoding
	// Emission mode, set by compiler passes.
	Thumb    bool // emitted in the 16-bit format
	Expanded bool // Thumb emission needs two halfwords (OPP16/Compress only)
	CDPCount int  // for OpCDP: how many following T16 instructions it covers

	// Memory behaviour for loads/stores, consumed by the trace layer.
	MemRegion int   // data region index within the program
	MemStride int32 // address stride per dynamic execution (0 = random in region)

	// ChainID tags instructions that belong to a hoisted CritIC; 0 means
	// none. Set by the compiler for bookkeeping and assertions.
	ChainID int

	// UID is a program-wide stable identity assigned at generation time
	// and preserved by compiler transforms (clones copy it; inserted
	// CDP/switch instructions carry UID 0). The trace layer keys its
	// per-instruction random draws by UID, so baseline and transformed
	// programs see identical control flow and addresses for corresponding
	// instructions.
	UID uint32

	// ModeSwitch marks the always-taken-to-next-instruction branches the
	// "Approach 1" format switch inserts around a converted chain
	// (§IV-A). They are architecturally branches (they occupy fetch and
	// execute resources and end fetch groups) but never change the CFG,
	// so they may appear mid-block.
	ModeSwitch bool
}

// Size returns the encoded size of the instruction in bytes.
func (in *Instr) Size() int {
	if !in.Thumb {
		return encoding.SizeA32
	}
	if in.Expanded {
		return 2 * encoding.SizeT16
	}
	return encoding.SizeT16
}

// InstID names a static instruction position within a program.
type InstID struct {
	Func  int
	Block int
	Index int
}

// String implements fmt.Stringer for InstID.
func (id InstID) String() string {
	return fmt.Sprintf("f%d.b%d.i%d", id.Func, id.Block, id.Index)
}

// Block is a basic block: straight-line instructions plus a terminator
// annotation. The terminating control instruction (branch/call/return), when
// present, is the last element of Instrs.
type Block struct {
	ID     int // index within the function
	Instrs []Instr

	End       BlockEnd
	Next      int     // fallthrough successor block id (EndFallthrough, EndCondBranch, EndCall)
	Taken     int     // branch target block id (EndJump, EndCondBranch)
	Callee    int     // callee function id (EndCall)
	TakenProb float64 // probability the conditional branch is taken
}

// Func is a function: blocks[0] is the entry block.
type Func struct {
	ID     int
	Name   string
	Blocks []*Block
}

// Program is a whole static program.
type Program struct {
	Name  string
	Funcs []*Func

	// Entry is the function id execution starts at.
	Entry int

	// NumMemRegions is the number of distinct data regions instructions
	// refer to via Instr.MemRegion; the trace layer sizes its address
	// space from this and RegionBytes.
	NumMemRegions int
	// RegionBytes[i] is the size of data region i in bytes.
	RegionBytes []uint32

	// CodeBytes is the total laid-out code size; valid after Layout.
	CodeBytes uint32
	laidOut   bool
}

// At returns the instruction named by id.
func (p *Program) At(id InstID) *Instr {
	return &p.Funcs[id.Func].Blocks[id.Block].Instrs[id.Index]
}

// MaxUID returns the largest instruction UID in the program.
func (p *Program) MaxUID() uint32 {
	var m uint32
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			for i := range b.Instrs {
				if b.Instrs[i].UID > m {
					m = b.Instrs[i].UID
				}
			}
		}
	}
	return m
}

// AssignUIDs gives every instruction a distinct UID (1-based) in program
// order. Generators call it once, before any transform.
func (p *Program) AssignUIDs() {
	var next uint32 = 1
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			for i := range b.Instrs {
				b.Instrs[i].UID = next
				next++
			}
		}
	}
}

// NumInstrs returns the static instruction count.
func (p *Program) NumInstrs() int {
	n := 0
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			n += len(b.Instrs)
		}
	}
	return n
}

// Clone returns a deep copy of the program. Compiler passes transform clones
// so the baseline program remains intact for A/B experiments.
func (p *Program) Clone() *Program {
	q := &Program{
		Name:          p.Name,
		Entry:         p.Entry,
		NumMemRegions: p.NumMemRegions,
		RegionBytes:   append([]uint32(nil), p.RegionBytes...),
		CodeBytes:     p.CodeBytes,
		laidOut:       p.laidOut,
	}
	q.Funcs = make([]*Func, len(p.Funcs))
	for i, f := range p.Funcs {
		nf := &Func{ID: f.ID, Name: f.Name}
		nf.Blocks = make([]*Block, len(f.Blocks))
		for j, b := range f.Blocks {
			nb := *b
			nb.Instrs = append([]Instr(nil), b.Instrs...)
			nf.Blocks[j] = &nb
		}
		q.Funcs[i] = nf
	}
	return q
}

// Layout assigns byte addresses to every instruction and computes CodeBytes.
//
// Rules (mirroring the paper's Fig. 9 layout): 32-bit instructions are
// 4-byte aligned. A CDP command occupies the first halfword of a 32-bit
// word; the T16 instructions it covers follow back-to-back. When a Thumb run
// ends at a halfword boundary, a 2-byte pad keeps the following 32-bit
// instruction aligned (the pad is dead bytes the fetch stage still brings
// in, so Thumb only pays off for runs long enough — exactly the trade-off
// the paper discusses for short chains).
func (p *Program) Layout() { p.LayoutOrder(nil) }

// LayoutOrder is Layout with an explicit function emission order: order is a
// permutation of function ids, and addresses are assigned walking functions
// in that sequence. The Funcs slice itself never moves (Validate pins
// Func.ID == index, and profiles key chains by function index), so a
// layout pass changes only where code lands, not what executes — trace
// randomness keys on instruction UIDs, which relayout preserves. nil means
// program order, which is exactly Layout. A malformed order (wrong length,
// repeated id) is a programming error and panics; internal/layout validates
// and returns errors upstream.
func (p *Program) LayoutOrder(order []int) {
	if order != nil {
		if len(order) != len(p.Funcs) {
			panic(fmt.Sprintf("prog: layout order has %d entries for %d functions", len(order), len(p.Funcs)))
		}
		seen := make([]bool, len(p.Funcs))
		for _, fi := range order {
			if fi < 0 || fi >= len(p.Funcs) || seen[fi] {
				panic(fmt.Sprintf("prog: layout order is not a permutation (function %d)", fi))
			}
			seen[fi] = true
		}
	}
	var addr uint32
	for i := range p.Funcs {
		f := p.Funcs[i]
		if order != nil {
			f = p.Funcs[order[i]]
		}
		// Functions start 64-byte aligned (cache-line aligned), which
		// models the ART compiler's method alignment and gives the
		// i-cache deterministic line populations.
		addr = align(addr, 64)
		for _, b := range f.Blocks {
			for i := range b.Instrs {
				in := &b.Instrs[i]
				if !in.Thumb {
					addr = align(addr, 4)
				}
				in.Addr = addr
				addr += uint32(in.Size())
			}
		}
	}
	p.CodeBytes = align(addr, 64)
	p.laidOut = true
}

// LaidOut reports whether Layout has run since the last structural change
// the caller knows about. (Callers are expected to call Layout after
// transforming a program.)
func (p *Program) LaidOut() bool { return p.laidOut }

func align(a, to uint32) uint32 {
	rem := a % to
	if rem == 0 {
		return a
	}
	return a + to - rem
}

// Validate checks structural invariants and returns the first violation. It
// is used by tests and by the compiler's post-pass verifier.
func (p *Program) Validate() error {
	if len(p.Funcs) == 0 {
		return fmt.Errorf("prog: no functions")
	}
	if p.Entry < 0 || p.Entry >= len(p.Funcs) {
		return fmt.Errorf("prog: entry %d out of range", p.Entry)
	}
	if len(p.RegionBytes) != p.NumMemRegions {
		return fmt.Errorf("prog: RegionBytes has %d entries for %d regions", len(p.RegionBytes), p.NumMemRegions)
	}
	for fi, f := range p.Funcs {
		if f.ID != fi {
			return fmt.Errorf("prog: func %d has ID %d", fi, f.ID)
		}
		if len(f.Blocks) == 0 {
			return fmt.Errorf("prog: func %s has no blocks", f.Name)
		}
		for bi, b := range f.Blocks {
			if b.ID != bi {
				return fmt.Errorf("prog: %s block %d has ID %d", f.Name, bi, b.ID)
			}
			if err := p.validateBlock(f, b); err != nil {
				return err
			}
		}
	}
	return nil
}

func (p *Program) validateBlock(f *Func, b *Block) error {
	where := fmt.Sprintf("prog: %s.b%d", f.Name, b.ID)
	switch b.End {
	case EndFallthrough:
		if b.Next < 0 || b.Next >= len(f.Blocks) {
			return fmt.Errorf("%s: fallthrough to bad block %d", where, b.Next)
		}
	case EndJump:
		if b.Taken < 0 || b.Taken >= len(f.Blocks) {
			return fmt.Errorf("%s: jump to bad block %d", where, b.Taken)
		}
	case EndCondBranch:
		if b.Taken < 0 || b.Taken >= len(f.Blocks) || b.Next < 0 || b.Next >= len(f.Blocks) {
			return fmt.Errorf("%s: cond branch targets out of range", where)
		}
		if b.TakenProb < 0 || b.TakenProb > 1 {
			return fmt.Errorf("%s: taken probability %f out of range", where, b.TakenProb)
		}
	case EndCall:
		if b.Callee < 0 || b.Callee >= len(p.Funcs) {
			return fmt.Errorf("%s: call to bad function %d", where, b.Callee)
		}
		if b.Next < 0 || b.Next >= len(f.Blocks) {
			return fmt.Errorf("%s: call continuation block %d out of range", where, b.Next)
		}
	case EndReturn:
	default:
		return fmt.Errorf("%s: unknown terminator %d", where, b.End)
	}
	// Terminator instruction consistency.
	n := len(b.Instrs)
	if n > 0 {
		last := b.Instrs[n-1]
		switch b.End {
		case EndJump, EndCondBranch:
			if last.Op != isa.OpB {
				return fmt.Errorf("%s: %v terminator but last instr is %v", where, b.End, last.Op)
			}
			if b.End == EndCondBranch && last.Cond == isa.CondAL {
				return fmt.Errorf("%s: conditional terminator with unconditional branch", where)
			}
		case EndCall:
			if last.Op != isa.OpBL {
				return fmt.Errorf("%s: call terminator but last instr is %v", where, last.Op)
			}
		case EndReturn:
			if last.Op != isa.OpBX {
				return fmt.Errorf("%s: return terminator but last instr is %v", where, last.Op)
			}
		}
	}
	for i := range b.Instrs {
		in := &b.Instrs[i]
		if in.Op.IsControl() && i != n-1 && !in.ModeSwitch {
			return fmt.Errorf("%s: control instruction %v at non-terminal position %d", where, in.Op, i)
		}
		if in.ModeSwitch && in.Op != isa.OpB {
			return fmt.Errorf("%s.i%d: mode-switch marker on %v", where, i, in.Op)
		}
		if in.Op.IsMem() {
			if in.MemRegion < 0 || in.MemRegion >= p.NumMemRegions {
				return fmt.Errorf("%s.i%d: memory region %d out of range", where, i, in.MemRegion)
			}
		}
		if in.Op == isa.OpCDP && (in.CDPCount < 1 || in.CDPCount > isa.CDPMaxRun) {
			return fmt.Errorf("%s.i%d: CDP count %d out of range", where, i, in.CDPCount)
		}
	}
	return nil
}

// ccReg is the pseudo-register index used for condition flags in dependence
// analysis. Register indices 0..15 are architected; 16 is CC.
const ccReg = int(isa.NumRegs)

// numDepRegs is the size of the dependence-tracking register space.
const numDepRegs = ccReg + 1

// depSets returns the registers read and written by an instruction in the
// dependence-tracking space (architected registers + CC).
func depSets(in *Instr) (reads, writes []int) {
	var srcs [4]isa.Reg
	for _, r := range in.Sources(srcs[:0]) {
		if r < isa.NumRegs {
			reads = append(reads, int(r))
		}
	}
	if in.ReadsCC() {
		reads = append(reads, ccReg)
	}
	if d := in.Dest(); d != isa.NoReg && d < isa.NumRegs {
		writes = append(writes, int(d))
	}
	if in.WritesCC() {
		writes = append(writes, ccReg)
	}
	return reads, writes
}

// ReorderLegal reports whether reordering the instructions of b according to
// perm (perm[i] = original index of the instruction now at position i)
// preserves all dependences:
//
//   - true (read-after-write), anti (write-after-read) and output
//     (write-after-write) register and CC dependences,
//   - program order among memory operations that may alias (conservatively:
//     any store orders against all other memory ops in the same region;
//     loads may reorder freely with loads),
//   - the terminator stays terminal.
//
// The CritIC hoisting pass uses this as its legality oracle.
func ReorderLegal(b *Block, perm []int) bool {
	n := len(b.Instrs)
	if len(perm) != n {
		return false
	}
	seen := make([]bool, n)
	for _, o := range perm {
		if o < 0 || o >= n || seen[o] {
			return false
		}
		seen[o] = true
	}
	// Terminator must remain last.
	if n > 0 && b.Instrs[n-1].Op.IsControl() && perm[n-1] != n-1 {
		return false
	}
	// newPos[original index] = new position.
	newPos := make([]int, n)
	for np, o := range perm {
		newPos[o] = np
	}
	// Pairwise dependence check: for every ordered pair (i, j) with i < j
	// in the original program that carries a dependence, require
	// newPos[i] < newPos[j]. O(n^2) on block sizes (tens) is fine.
	for j := 1; j < n; j++ {
		rj, wj := depSets(&b.Instrs[j])
		for i := 0; i < j; i++ {
			ri, wi := depSets(&b.Instrs[i])
			if dependsRegs(ri, wi, rj, wj) || dependsMem(&b.Instrs[i], &b.Instrs[j]) {
				if newPos[i] >= newPos[j] {
					return false
				}
			}
		}
	}
	return true
}

// dependsRegs reports a RAW, WAR or WAW register dependence between an
// earlier instruction (reads ri, writes wi) and a later one (rj, wj).
func dependsRegs(ri, wi, rj, wj []int) bool {
	for _, w := range wi {
		for _, r := range rj {
			if w == r {
				return true // RAW
			}
		}
		for _, w2 := range wj {
			if w == w2 {
				return true // WAW
			}
		}
	}
	for _, r := range ri {
		for _, w := range wj {
			if r == w {
				return true // WAR
			}
		}
	}
	return false
}

// dependsMem conservatively orders memory operations: a store orders against
// every other memory operation in the same region; loads commute.
func dependsMem(a, b *Instr) bool {
	if !a.Op.IsMem() || !b.Op.IsMem() {
		return false
	}
	aStore := !a.Op.HasDst()
	bStore := !b.Op.HasDst()
	if !aStore && !bStore {
		return false
	}
	return a.MemRegion == b.MemRegion
}

// ApplyReorder permutes b.Instrs according to perm (perm[i] = original index
// of the instruction now at position i). Callers should have checked
// ReorderLegal first.
func ApplyReorder(b *Block, perm []int) {
	out := make([]Instr, len(perm))
	for np, o := range perm {
		out[np] = b.Instrs[o]
	}
	b.Instrs = out
}

// FuncOf returns the function containing addr, or -1 if none. Valid after
// Layout. Linear scan; used only in tests and diagnostics.
func (p *Program) FuncOf(addr uint32) int {
	for _, f := range p.Funcs {
		if len(f.Blocks) == 0 {
			continue
		}
		first := firstInstr(f)
		last := lastInstr(f)
		if first == nil || last == nil {
			continue
		}
		if addr >= first.Addr && addr <= last.Addr {
			return f.ID
		}
	}
	return -1
}

func firstInstr(f *Func) *Instr {
	for _, b := range f.Blocks {
		if len(b.Instrs) > 0 {
			return &b.Instrs[0]
		}
	}
	return nil
}

func lastInstr(f *Func) *Instr {
	for i := len(f.Blocks) - 1; i >= 0; i-- {
		if n := len(f.Blocks[i].Instrs); n > 0 {
			return &f.Blocks[i].Instrs[n-1]
		}
	}
	return nil
}

// Stats summarizes a program for reports and tests.
type Stats struct {
	Funcs        int
	Blocks       int
	Instrs       int
	ThumbInstrs  int
	CDPs         int
	CodeBytes    uint32
	ThumbPercent float64
}

// ComputeStats returns summary statistics; Layout must have run.
func (p *Program) ComputeStats() Stats {
	var s Stats
	s.Funcs = len(p.Funcs)
	for _, f := range p.Funcs {
		s.Blocks += len(f.Blocks)
		for _, b := range f.Blocks {
			for i := range b.Instrs {
				in := &b.Instrs[i]
				s.Instrs++
				if in.Op == isa.OpCDP {
					s.CDPs++
				} else if in.Thumb {
					s.ThumbInstrs++
				}
			}
		}
	}
	s.CodeBytes = p.CodeBytes
	if s.Instrs > 0 {
		s.ThumbPercent = 100 * float64(s.ThumbInstrs) / float64(s.Instrs)
	}
	return s
}
