// Package compiler implements the code-generation side of the paper: the
// CritIC instrumentation pass (§III-C "Compilation") that hoists profiled
// chains contiguous and emits them in the 16-bit format behind a CDP mode
// switch, the "Approach 1" branch-pair switch it compares against (§IV-A),
// the Hoist-only ablation (§IV-D), and the two criticality-agnostic Thumb
// baselines of §V — OPP16 (opportunistic conversion of runs >= 3) and
// Compress (the fine-grained Thumb-conversion heuristic of [78]).
//
// All passes operate on clones of the input program, never mutate it, and
// use prog.ReorderLegal as the hoisting legality oracle (register, CC and
// memory dependences). Transformed programs re-run Layout and Validate; the
// paper's pass similarly leaves scheduling untouched beyond hoisting.
package compiler

import (
	"fmt"
	"sort"

	"critics/internal/core"
	"critics/internal/encoding"
	"critics/internal/isa"
	"critics/internal/prog"
)

// SwitchKind selects how the decoder is told about a format switch.
type SwitchKind uint8

// Format-switch mechanisms.
const (
	// SwitchCDP is the paper's proposal (§IV-B): a 16-bit CDP command
	// whose 3-bit field covers the following Thumb instructions.
	SwitchCDP SwitchKind = iota
	// SwitchBranch is "Approach 1" (§IV-A): unconditional branches before
	// (32-bit) and after (16-bit) the converted sequence, as existing ARM
	// hardware requires. Cheap chains cannot amortize them.
	SwitchBranch
)

// Options configures the CritIC pass.
type Options struct {
	// MaxLen truncates selected chains at this many members (paper: 5).
	// 0 means no truncation beyond core.MaxChainLen.
	MaxLen int

	// Switch selects the format-switch mechanism.
	Switch SwitchKind

	// HoistOnly hoists chains contiguous but leaves them in the 32-bit
	// format (the Hoist design point of §IV-D).
	HoistOnly bool

	// Ideal emulates CritIC.Ideal (§IV-D): every selected chain is
	// aggregated and Thumb-translated regardless of representability.
	Ideal bool
}

// Stats reports what a pass did.
type Stats struct {
	ChainsAttempted  int // selected chains seen
	ChainsHoisted    int // hoisting legal and applied
	ChainsIllegal    int // dropped: reordering would break a dependence
	ChainsConverted  int // hoisted and Thumb-converted
	ChainsNotThumb   int // hoisted but left in 32-bit (all-or-nothing rule)
	CDPsInserted     int
	BranchesInserted int
	ConvertedInstrs  int // static instructions emitted in T16
	ExpandedInstrs   int // T16 emissions needing two halfwords
}

// String summarizes the stats.
func (s Stats) String() string {
	return fmt.Sprintf("chains: %d attempted, %d hoisted, %d converted, %d illegal, %d non-thumb; %d CDPs, %d switch branches, %d T16 instrs (%d expanded)",
		s.ChainsAttempted, s.ChainsHoisted, s.ChainsConverted, s.ChainsIllegal, s.ChainsNotThumb,
		s.CDPsInserted, s.BranchesInserted, s.ConvertedInstrs, s.ExpandedInstrs)
}

// ApplyCritIC runs the CritIC instrumentation pass: for every selected chain
// in the profile it (1) hoists the members contiguous at the first member's
// position — displaced non-members retain their relative order after the
// chain — when prog.ReorderLegal allows it, and (2) converts the members to
// the 16-bit format behind the configured switch when every member passes
// the all-or-nothing representability test (or unconditionally under Ideal).
//
// The returned program is laid out and validated; the input is untouched.
func ApplyCritIC(p *prog.Program, prof *core.Profile, opt Options) (*prog.Program, Stats, error) {
	q := p.Clone()
	var st Stats

	// Group selected chains by block.
	type blockKey struct{ fn, blk int }
	chains := make(map[blockKey][][]int)
	for _, e := range prof.Selected() {
		members := make([]int, 0, e.Key.N)
		for i := uint8(0); i < e.Key.N; i++ {
			members = append(members, int(e.Key.Idx[i]))
		}
		if opt.MaxLen > 0 && len(members) > opt.MaxLen {
			members = members[:opt.MaxLen]
		}
		k := blockKey{int(e.Key.Func), int(e.Key.Block)}
		chains[k] = append(chains[k], members)
	}
	// Deterministic block order.
	keys := make([]blockKey, 0, len(chains))
	for k := range chains {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].fn != keys[j].fn {
			return keys[i].fn < keys[j].fn
		}
		return keys[i].blk < keys[j].blk
	})

	chainID := 0
	for _, k := range keys {
		b := q.Funcs[k.fn].Blocks[k.blk]
		blockChains := chains[k]
		// Ascending by first member.
		sort.Slice(blockChains, func(i, j int) bool { return blockChains[i][0] < blockChains[j][0] })

		// cur[orig] = current index of the instruction originally at orig.
		cur := make([]int, len(b.Instrs))
		for i := range cur {
			cur[i] = i
		}
		var hoisted [][]int // current positions of each hoisted chain (contiguous)
		for _, members := range blockChains {
			st.ChainsAttempted++
			// When the full chain cannot be hoisted legally, retry with
			// progressively shorter prefixes — a profiled chain whose
			// tail picked up an unmovable instruction still has a
			// hoistable core.
			var perm []int
			legal := false
			for len(members) >= 2 {
				p, ok := hoistPerm(len(b.Instrs), members, cur)
				if ok && prog.ReorderLegal(b, p) {
					perm = p
					legal = true
					break
				}
				members = members[:len(members)-1]
			}
			if !legal {
				st.ChainsIllegal++
				continue
			}
			prog.ApplyReorder(b, perm)
			// Update cur: newPos[oldCur] then compose.
			newPos := make([]int, len(perm))
			for np, o := range perm {
				newPos[o] = np
			}
			for orig := range cur {
				cur[orig] = newPos[cur[orig]]
			}
			for hi := range hoisted {
				for j := range hoisted[hi] {
					hoisted[hi][j] = newPos[hoisted[hi][j]]
				}
			}
			st.ChainsHoisted++
			chainID++
			pos := make([]int, len(members))
			for j, m := range members {
				pos[j] = cur[m]
				b.Instrs[cur[m]].ChainID = chainID
			}
			hoisted = append(hoisted, pos)
		}

		if opt.HoistOnly {
			continue
		}
		// Convert hoisted chains, descending by position so insertions do
		// not shift earlier chains.
		sort.Slice(hoisted, func(i, j int) bool { return hoisted[i][0] > hoisted[j][0] })
		for _, pos := range hoisted {
			start, k := pos[0], len(pos)
			ok := true
			if !opt.Ideal {
				for _, pi := range pos {
					if !encoding.Representable(b.Instrs[pi].Inst) {
						ok = false
						break
					}
				}
			}
			if !ok {
				st.ChainsNotThumb++
				continue
			}
			for _, pi := range pos {
				b.Instrs[pi].Thumb = true
			}
			st.ChainsConverted++
			st.ConvertedInstrs += k
			switch opt.Switch {
			case SwitchCDP:
				insertCDPs(b, start, k, &st)
			case SwitchBranch:
				insertBranchPair(b, start, k, &st)
			}
		}
	}
	q.Layout()
	if err := q.Validate(); err != nil {
		return nil, st, fmt.Errorf("compiler: CritIC pass produced invalid program: %w", err)
	}
	return q, st, nil
}

// hoistPerm builds the permutation placing the chain's members (original
// indices, via cur mapping) contiguously at the first member's position,
// with displaced non-members following in original order. Returns ok=false
// if the members are not strictly ordered (stale profile).
func hoistPerm(n int, members []int, cur []int) ([]int, bool) {
	pos := make([]int, len(members))
	for i, m := range members {
		if m < 0 || m >= n {
			return nil, false
		}
		pos[i] = cur[m]
		if i > 0 && pos[i] <= pos[i-1] {
			return nil, false
		}
	}
	first, last := pos[0], pos[len(pos)-1]
	isMember := make(map[int]bool, len(pos))
	for _, p := range pos {
		isMember[p] = true
	}
	perm := make([]int, 0, n)
	for i := 0; i < first; i++ {
		perm = append(perm, i)
	}
	perm = append(perm, pos...)
	for i := first; i <= last; i++ {
		if !isMember[i] {
			perm = append(perm, i)
		}
	}
	for i := last + 1; i < n; i++ {
		perm = append(perm, i)
	}
	return perm, true
}

// insertCDPs inserts CDP mode-switch commands before the Thumb run at
// [start, start+k), chaining commands for runs longer than the 3-bit field
// covers.
func insertCDPs(b *prog.Block, start, k int, st *Stats) {
	// Work backwards so earlier insertions do not shift later segments.
	type seg struct{ at, count int }
	var segs []seg
	for off := 0; off < k; off += isa.CDPMaxRun {
		count := k - off
		if count > isa.CDPMaxRun {
			count = isa.CDPMaxRun
		}
		segs = append(segs, seg{at: start + off, count: count})
	}
	for i := len(segs) - 1; i >= 0; i-- {
		cdp := prog.Instr{
			Inst:     isa.Inst{Op: isa.OpCDP, Rd: isa.NoReg, Rn: isa.NoReg, Rm: isa.NoReg},
			Thumb:    true,
			CDPCount: segs[i].count,
		}
		b.Instrs = append(b.Instrs[:segs[i].at], append([]prog.Instr{cdp}, b.Instrs[segs[i].at:]...)...)
		st.CDPsInserted++
	}
}

// insertBranchPair brackets the Thumb run at [start, start+k) with the
// Approach-1 switch branches: a 32-bit branch before (sets the Thumb flag,
// jumps to the first converted instruction) and a 16-bit branch after
// (resets it).
func insertBranchPair(b *prog.Block, start, k int, st *Stats) {
	pre := prog.Instr{
		Inst:       isa.Inst{Op: isa.OpB, Rd: isa.NoReg, Rn: isa.NoReg, Rm: isa.NoReg},
		ModeSwitch: true,
	}
	post := prog.Instr{
		Inst:       isa.Inst{Op: isa.OpB, Rd: isa.NoReg, Rn: isa.NoReg, Rm: isa.NoReg},
		ModeSwitch: true,
		Thumb:      true,
	}
	rest := append([]prog.Instr{post}, b.Instrs[start+k:]...)
	b.Instrs = append(b.Instrs[:start+k:start+k], rest...)
	b.Instrs = append(b.Instrs[:start], append([]prog.Instr{pre}, b.Instrs[start:]...)...)
	st.BranchesInserted += 2
}

// convertible classifies an instruction for the opportunistic passes.
//
// "Direct" conversion requires a single-halfword encoding as-is: that is
// the conversion that costs nothing. Everything else that is architecturally
// Thumb-able — layout-misfit register shapes, three-address immediates,
// immediates beyond the 7-bit field — needs *expansion*: an extra
// register-shuffling/constant-building instruction, the mechanism behind
// full-Thumb's ~1.6x dynamic instruction expansion the paper cites ([51],
// [52], [55]). The CritIC pass never faces this trade-off: its chains
// convert under the same as-is rule (all or nothing).
func convertible(in *prog.Instr) (direct, expand bool) {
	if in.Op == isa.OpCDP || in.ModeSwitch || in.Thumb || in.Op.IsControl() {
		return false, false
	}
	if encoding.Representable(in.Inst) {
		return true, false
	}
	if in.ThumbCheck() == isa.ThumbOK {
		return false, true
	}
	// Immediates beyond the 7-bit T16 field but within A32's 12-bit field
	// expand (MOV high + op).
	if in.ThumbCheck() == isa.ThumbImmTooLarge && in.Cond == isa.CondAL && in.Op.HasT16() {
		return false, true
	}
	return false, false
}

// ApplyOPP16 opportunistically converts every run of at least minRun
// consecutive *directly* convertible instructions to the 16-bit format,
// without any reordering and without paying expansion (§V, OPP16: "if there
// is an instruction which is not amenable ... OPP16 will NOT move the
// instructions around"; paper uses minRun = 3).
func ApplyOPP16(p *prog.Program, minRun int) (*prog.Program, Stats, error) {
	if minRun < 1 {
		minRun = 3
	}
	q := p.Clone()
	var st Stats
	for _, f := range q.Funcs {
		for _, b := range f.Blocks {
			convertRuns(b, minRun, false, &st)
		}
	}
	q.Layout()
	if err := q.Validate(); err != nil {
		return nil, st, fmt.Errorf("compiler: OPP16 pass produced invalid program: %w", err)
	}
	return q, st, nil
}

// ApplyCompress implements the Fine-Grained Thumb Conversion heuristic of
// [78] (§V, Compress): the whole function is converted to Thumb, accepting
// expansion where single-halfword emission is impossible, then isolated
// conversions (runs shorter than 2, whose switch overhead exceeds their
// savings) are reverted — operationally, runs of >= 2 convertible
// instructions convert, expansion-needing ones paying an extra dynamic
// instruction (the ~1.6x effect).
func ApplyCompress(p *prog.Program) (*prog.Program, Stats, error) {
	q := p.Clone()
	var st Stats
	for _, f := range q.Funcs {
		for _, b := range f.Blocks {
			convertRuns(b, 2, true, &st)
		}
	}
	q.Layout()
	if err := q.Validate(); err != nil {
		return nil, st, fmt.Errorf("compiler: Compress pass produced invalid program: %w", err)
	}
	return q, st, nil
}

// convertRuns finds maximal runs of convertible instructions in b and
// converts runs of at least minRun, inserting CDP switches. When
// allowExpand is false, only directly convertible instructions form runs.
func convertRuns(b *prog.Block, minRun int, allowExpand bool, st *Stats) {
	eligible := func(in *prog.Instr) (bool, bool) {
		d, e := convertible(in)
		if !allowExpand {
			return d, false
		}
		return d, e
	}
	type run struct{ start, n int }
	var runs []run
	i := 0
	for i < len(b.Instrs) {
		d, e := eligible(&b.Instrs[i])
		if !d && !e {
			i++
			continue
		}
		j := i
		for j < len(b.Instrs) {
			d, e := eligible(&b.Instrs[j])
			if !d && !e {
				break
			}
			j++
		}
		if j-i >= minRun {
			runs = append(runs, run{start: i, n: j - i})
		}
		i = j
	}
	// Convert from the last run backwards (CDP insertion shifts indices).
	for r := len(runs) - 1; r >= 0; r-- {
		start, n := runs[r].start, runs[r].n
		for k := start; k < start+n; k++ {
			in := &b.Instrs[k]
			_, expand := eligible(in)
			in.Thumb = true
			in.Expanded = expand
			st.ConvertedInstrs++
			if expand {
				st.ExpandedInstrs++
			}
		}
		insertCDPs(b, start, n, st)
	}
}

// StaticThumbFrac reports the fraction of static instructions emitted in T16
// — a quick structural view of a pass's output (the experiment layer weighs
// conversion dynamically via traces for Fig. 13b).
func StaticThumbFrac(p *prog.Program) float64 {
	s := p.ComputeStats()
	if s.Instrs == 0 {
		return 0
	}
	return float64(s.ThumbInstrs) / float64(s.Instrs)
}
