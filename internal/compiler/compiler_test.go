package compiler

import (
	"testing"

	"critics/internal/core"
	"critics/internal/cpu"
	"critics/internal/dfg"
	"critics/internal/isa"
	"critics/internal/prog"
	"critics/internal/trace"
	"critics/internal/workload"
)

// profiledApp generates an app, samples it, and builds its profile.
func profiledApp(t *testing.T, name string) (*prog.Program, *core.Profile, []trace.Window) {
	t.Helper()
	a, ok := workload.FindApp(name)
	if !ok {
		t.Fatalf("no app %s", name)
	}
	p := workload.Generate(a.Params)
	ws := trace.Collect(p, a.Params.Seed, trace.SamplePlan{Samples: 10, Length: 25_000, Gap: 5000, Warmup: 5000})
	prof := core.BuildProfile(p, ws, core.DefaultConfig())
	if len(prof.Selected()) == 0 {
		t.Fatal("profile selected no chains")
	}
	return p, prof, ws
}

func TestCritICPassTransforms(t *testing.T) {
	p, prof, _ := profiledApp(t, "acrobat")
	q, st, err := ApplyCritIC(p, prof, Options{MaxLen: 5, Switch: SwitchCDP})
	if err != nil {
		t.Fatal(err)
	}
	if st.ChainsHoisted == 0 {
		t.Fatalf("no chains hoisted: %v", st)
	}
	if st.ChainsConverted == 0 {
		t.Fatalf("no chains converted: %v", st)
	}
	if st.CDPsInserted == 0 {
		t.Fatal("no CDPs inserted")
	}
	if frac := float64(st.ChainsHoisted) / float64(st.ChainsAttempted); frac < 0.5 {
		t.Errorf("only %.2f of chains hoistable; generator/legality mismatch", frac)
	}
	// Transformed program is smaller (Thumb shrinks code).
	if q.CodeBytes >= p.CodeBytes {
		t.Errorf("code did not shrink: %d -> %d", p.CodeBytes, q.CodeBytes)
	}
	// Original program untouched.
	if s := p.ComputeStats(); s.ThumbInstrs != 0 || s.CDPs != 0 {
		t.Error("input program was mutated")
	}
}

func TestCritICChainsContiguousAndTagged(t *testing.T) {
	p, prof, _ := profiledApp(t, "maps")
	q, _, err := ApplyCritIC(p, prof, Options{MaxLen: 5, Switch: SwitchCDP})
	if err != nil {
		t.Fatal(err)
	}
	found := 0
	for _, f := range q.Funcs {
		for _, b := range f.Blocks {
			for i := 0; i < len(b.Instrs); i++ {
				in := &b.Instrs[i]
				if in.Op != isa.OpCDP {
					continue
				}
				found++
				// The CDPCount following instructions must be Thumb and
				// belong to one chain.
				if i+in.CDPCount >= len(b.Instrs) {
					t.Fatalf("CDP at %s.b%d.%d overruns block", f.Name, b.ID, i)
				}
				chain := b.Instrs[i+1].ChainID
				for k := 1; k <= in.CDPCount; k++ {
					m := &b.Instrs[i+k]
					if !m.Thumb {
						t.Fatalf("instruction %d after CDP not Thumb", k)
					}
					if m.ChainID != chain {
						t.Fatalf("CDP covers members of different chains")
					}
				}
			}
		}
	}
	if found == 0 {
		t.Fatal("no CDP-covered chains found")
	}
}

func TestCritICPreservesDependences(t *testing.T) {
	// The trace generator derives producers from register def-use, so if
	// hoisting broke a dependence the consumer would read a different
	// producer. We verify a weaker but meaningful invariant: per block,
	// the multiset of instructions is preserved.
	p, prof, _ := profiledApp(t, "office")
	q, _, err := ApplyCritIC(p, prof, Options{MaxLen: 5, Switch: SwitchCDP})
	if err != nil {
		t.Fatal(err)
	}
	for fi, f := range p.Funcs {
		for bi, b := range f.Blocks {
			orig := map[isa.Inst]int{}
			for i := range b.Instrs {
				orig[b.Instrs[i].Inst]++
			}
			for i := range q.Funcs[fi].Blocks[bi].Instrs {
				in := q.Funcs[fi].Blocks[bi].Instrs[i]
				if in.Op == isa.OpCDP || in.ModeSwitch {
					continue
				}
				orig[in.Inst]--
			}
			for inst, n := range orig {
				if n != 0 {
					t.Fatalf("f%d.b%d: instruction %v count off by %d", fi, bi, inst, n)
				}
			}
		}
	}
}

func TestHoistOnlyKeepsA32(t *testing.T) {
	p, prof, _ := profiledApp(t, "email")
	q, st, err := ApplyCritIC(p, prof, Options{MaxLen: 5, HoistOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if st.ChainsHoisted == 0 {
		t.Fatal("nothing hoisted")
	}
	s := q.ComputeStats()
	if s.ThumbInstrs != 0 || s.CDPs != 0 {
		t.Errorf("HoistOnly emitted Thumb: %+v", s)
	}
}

func TestBranchSwitchInsertsBranches(t *testing.T) {
	p, prof, _ := profiledApp(t, "browser")
	q, st, err := ApplyCritIC(p, prof, Options{MaxLen: 5, Switch: SwitchBranch})
	if err != nil {
		t.Fatal(err)
	}
	if st.BranchesInserted == 0 || st.BranchesInserted != 2*st.ChainsConverted {
		t.Fatalf("branch accounting off: %v", st)
	}
	if st.CDPsInserted != 0 {
		t.Error("CDPs inserted under branch switching")
	}
	// The branch-pair overhead makes the binary larger than CDP switching.
	qc, _, err := ApplyCritIC(p, prof, Options{MaxLen: 5, Switch: SwitchCDP})
	if err != nil {
		t.Fatal(err)
	}
	if q.CodeBytes <= qc.CodeBytes {
		t.Errorf("branch-pair code (%d) not larger than CDP code (%d)", q.CodeBytes, qc.CodeBytes)
	}
}

func TestIdealConvertsMore(t *testing.T) {
	a, _ := workload.FindApp("acrobat")
	p := workload.Generate(a.Params)
	ws := trace.Collect(p, a.Params.Seed, trace.SamplePlan{Samples: 10, Length: 25_000, Gap: 5000, Warmup: 5000})
	cfg := core.DefaultConfig()
	cfg.RequireThumb = false
	prof := core.BuildProfile(p, ws, cfg)

	real := Options{MaxLen: 5, Switch: SwitchCDP}
	ideal := Options{MaxLen: core.MaxChainLen, Switch: SwitchCDP, Ideal: true}
	_, stReal, err := ApplyCritIC(p, prof, real)
	if err != nil {
		t.Fatal(err)
	}
	_, stIdeal, err := ApplyCritIC(p, prof, ideal)
	if err != nil {
		t.Fatal(err)
	}
	if stIdeal.ConvertedInstrs <= stReal.ConvertedInstrs {
		t.Errorf("ideal converted %d <= real %d", stIdeal.ConvertedInstrs, stReal.ConvertedInstrs)
	}
	if stIdeal.ChainsNotThumb != 0 {
		t.Error("ideal pass rejected chains")
	}
}

func TestOPP16AndCompress(t *testing.T) {
	a, _ := workload.FindApp("facebook")
	p := workload.Generate(a.Params)
	opp, stOpp, err := ApplyOPP16(p, 3)
	if err != nil {
		t.Fatal(err)
	}
	cmp, stCmp, err := ApplyCompress(p)
	if err != nil {
		t.Fatal(err)
	}
	if stOpp.ConvertedInstrs == 0 || stCmp.ConvertedInstrs == 0 {
		t.Fatal("opportunistic passes converted nothing")
	}
	// Compress (runs >= 2) converts more than OPP16 (runs >= 3), which is
	// the Fig. 13b ordering.
	if stCmp.ConvertedInstrs <= stOpp.ConvertedInstrs {
		t.Errorf("Compress %d <= OPP16 %d converted", stCmp.ConvertedInstrs, stOpp.ConvertedInstrs)
	}
	if opp.CodeBytes >= p.CodeBytes || cmp.CodeBytes >= p.CodeBytes {
		t.Error("opportunistic conversion did not shrink the binary")
	}
	// No reordering: instruction order preserved modulo CDPs.
	for fi, f := range p.Funcs {
		for bi, b := range f.Blocks {
			var got []isa.Inst
			for _, in := range opp.Funcs[fi].Blocks[bi].Instrs {
				if in.Op == isa.OpCDP {
					continue
				}
				got = append(got, in.Inst)
			}
			if len(got) != len(b.Instrs) {
				t.Fatalf("f%d.b%d length changed", fi, bi)
			}
			for i := range got {
				if got[i] != b.Instrs[i].Inst {
					t.Fatalf("f%d.b%d: OPP16 reordered instructions", fi, bi)
				}
			}
		}
	}
}

func TestCritICConvertsFewerThanOPP16(t *testing.T) {
	// Fig. 13b: CritIC converts far fewer instructions than the
	// criticality-agnostic schemes.
	p, prof, _ := profiledApp(t, "acrobat")
	_, stCrit, err := ApplyCritIC(p, prof, Options{MaxLen: 5, Switch: SwitchCDP})
	if err != nil {
		t.Fatal(err)
	}
	_, stOpp, err := ApplyOPP16(p, 3)
	if err != nil {
		t.Fatal(err)
	}
	if stCrit.ConvertedInstrs >= stOpp.ConvertedInstrs {
		t.Errorf("CritIC converted %d >= OPP16 %d", stCrit.ConvertedInstrs, stOpp.ConvertedInstrs)
	}
	qc, _, err := ApplyCritIC(p, prof, Options{MaxLen: 5, Switch: SwitchCDP})
	if err != nil {
		t.Fatal(err)
	}
	qo, _, err := ApplyOPP16(p, 3)
	if err != nil {
		t.Fatal(err)
	}
	if StaticThumbFrac(qc) >= StaticThumbFrac(qo) {
		t.Errorf("static thumb fractions inverted: critic %.3f >= opp16 %.3f", StaticThumbFrac(qc), StaticThumbFrac(qo))
	}
}

func TestCritICSpeedsUpApp(t *testing.T) {
	// The end-to-end smoke test of the whole reproduction: profile,
	// transform, re-trace, simulate, and require a real speedup.
	p, prof, _ := profiledApp(t, "acrobat")
	q, _, err := ApplyCritIC(p, prof, Options{MaxLen: 5, Switch: SwitchCDP})
	if err != nil {
		t.Fatal(err)
	}

	simulate := func(pr *prog.Program) int64 {
		g := trace.NewGenerator(pr, 42)
		g.Skip(20_000)
		dyns := g.Generate(nil, 60_000)
		fan := dfg.Fanouts(dyns, 128)
		s := cpu.New(cpu.DefaultConfig())
		res := s.Run(dyns, fan)
		return res.Cycles
	}
	base := simulate(p)
	opt := simulate(q)
	speedup := float64(base) / float64(opt)
	t.Logf("baseline %d cycles, CritIC %d cycles, speedup %.3f", base, opt, speedup)
	if speedup < 1.02 {
		t.Errorf("CritIC speedup %.3f; expected a clear gain", speedup)
	}
}

func TestLongRunsChainCDPs(t *testing.T) {
	// A block with 20 consecutive directly-convertible instructions: OPP16
	// must cover it with chained CDPs (3-bit run-length field, max 8).
	b := &prog.Block{ID: 0, End: prog.EndFallthrough, Next: 1}
	for i := 0; i < 20; i++ {
		rd := isa.Reg(i % 8)
		b.Instrs = append(b.Instrs, prog.Instr{Inst: isa.Inst{Op: isa.OpADD, Rd: rd, Rn: rd, Rm: isa.Reg((i + 1) % 8)}})
	}
	p := &prog.Program{
		Name: "runs", Entry: 0, NumMemRegions: 1, RegionBytes: []uint32{64},
		Funcs: []*prog.Func{{ID: 0, Name: "f", Blocks: []*prog.Block{
			b,
			{ID: 1, End: prog.EndReturn, Instrs: []prog.Instr{{Inst: isa.Inst{Op: isa.OpBX, Rd: isa.NoReg, Rn: isa.LR, Rm: isa.NoReg}}}},
		}}},
	}
	p.AssignUIDs()
	p.Layout()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	q, st, err := ApplyOPP16(p, 3)
	if err != nil {
		t.Fatal(err)
	}
	// 21 convertible instructions (20 ADDs + the BX LR return, which is in
	// a separate block/run) -> the 20-run needs ceil(20/8) = 3 CDPs.
	var cdps, counts int
	for _, bb := range q.Funcs[0].Blocks {
		for i := range bb.Instrs {
			if bb.Instrs[i].Op == isa.OpCDP {
				cdps++
				counts += bb.Instrs[i].CDPCount
				if bb.Instrs[i].CDPCount > isa.CDPMaxRun {
					t.Fatalf("CDP count %d exceeds the 3-bit field", bb.Instrs[i].CDPCount)
				}
			}
		}
	}
	if cdps < 3 {
		t.Errorf("20-instruction run covered by %d CDPs; want chained commands", cdps)
	}
	if counts != st.ConvertedInstrs {
		t.Errorf("CDP coverage %d != converted %d", counts, st.ConvertedInstrs)
	}
}

func TestPrefixRetrySalvagesChains(t *testing.T) {
	// A chain whose final member cannot be hoisted legally (it reads a
	// register written by an intervening instruction that cannot move):
	// the pass must fall back to the legal prefix instead of dropping the
	// chain.
	b := &prog.Block{ID: 0, End: prog.EndFallthrough, Next: 1}
	b.Instrs = []prog.Instr{
		{Inst: isa.Inst{Op: isa.OpLDR, Rd: isa.R0, Rn: isa.R4, Rm: isa.NoReg, HasImm: true, Imm: 4}, MemRegion: 0}, // 0 head
		{Inst: isa.Inst{Op: isa.OpADD, Rd: isa.R5, Rn: isa.R0, Rm: isa.R4}},                                        // 1 filler (reads head)
		{Inst: isa.Inst{Op: isa.OpADD, Rd: isa.R1, Rn: isa.R0, Rm: isa.R4}},                                        // 2 member
		{Inst: isa.Inst{Op: isa.OpADD, Rd: isa.R6, Rn: isa.R1, Rm: isa.R4}},                                        // 3 WRITES r6
		{Inst: isa.Inst{Op: isa.OpADD, Rd: isa.R2, Rn: isa.R1, Rm: isa.R6}},                                        // 4 member reading r6: hoisting past 3 is illegal
	}
	p := &prog.Program{
		Name: "prefix", Entry: 0, NumMemRegions: 1, RegionBytes: []uint32{64},
		Funcs: []*prog.Func{{ID: 0, Name: "f", Blocks: []*prog.Block{
			b,
			{ID: 1, End: prog.EndReturn, Instrs: []prog.Instr{{Inst: isa.Inst{Op: isa.OpBX, Rd: isa.NoReg, Rn: isa.LR, Rm: isa.NoReg}}}},
		}}},
	}
	p.AssignUIDs()
	p.Layout()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	prof := &core.Profile{App: "prefix", TotalDyn: 1000}
	e := core.Entry{
		Key:      core.ChainKey{Func: 0, Block: 0, N: 3},
		Length:   3,
		DynCount: 100,
		Selected: true,
		ThumbOK:  true,
	}
	e.Key.Idx[0], e.Key.Idx[1], e.Key.Idx[2] = 0, 2, 4
	prof.Entries = []core.Entry{e}

	q, st, err := ApplyCritIC(p, prof, Options{MaxLen: 5, Switch: SwitchCDP})
	if err != nil {
		t.Fatal(err)
	}
	if st.ChainsIllegal != 0 {
		t.Errorf("chain dropped entirely: %v", st)
	}
	if st.ChainsHoisted != 1 {
		t.Fatalf("hoisted = %d", st.ChainsHoisted)
	}
	// The hoisted prefix covers members 0 and 2 only.
	var cdpCount int
	for i := range q.Funcs[0].Blocks[0].Instrs {
		in := &q.Funcs[0].Blocks[0].Instrs[i]
		if in.Op == isa.OpCDP {
			cdpCount = in.CDPCount
		}
	}
	if cdpCount != 2 {
		t.Errorf("CDP covers %d, want the 2-member legal prefix", cdpCount)
	}
}
