package cache

import (
	"encoding/json"
	"fmt"
	"sort"
)

// Replacement-policy names selectable via Config.Policy. The empty string
// selects PolicyLRU: the zero Config keeps the pre-seam behavior bit for bit.
const (
	PolicyLRU   = "lru"   // least-recently-used (the Table I baseline)
	PolicySRRIP = "srrip" // static re-reference interval prediction, 2-bit RRPV
	PolicyTRRIP = "trrip" // TRRIP-style: insertion RRPV seeded from profile temperature hints
)

// RRPV constants of the 2-bit re-reference interval predictors.
const (
	rrpvNear    = 0 // re-referenced soon: keep
	rrpvLong    = 2 // SRRIP's static insertion point
	rrpvDistant = 3 // evict-next; also the eviction threshold
)

// Policy is one cache level's replacement policy: it owns the per-line
// replacement state (Line.LastUse, Line.RRPV) while the Cache keeps tag
// matching, readyAt in-flight-fill timing and statistics. Implementations
// must be deterministic pure functions of the line states they are shown —
// the simulator's bit-identity contract (serial vs batched vs distributed)
// rides on it.
type Policy interface {
	// Name returns the registry name.
	Name() string
	// Hit promotes line l on a demand hit at cycle now.
	Hit(l *Line, now int64)
	// Install seeds l's replacement state after a fill of lineAddr (the
	// address >> 6) completing at readyAt. The cache has already reset l
	// with LastUse = readyAt; policies overwrite what they care about.
	Install(l *Line, lineAddr uint32, readyAt int64)
	// Victim picks the way to evict from a set whose ways are all valid.
	// It may age the set's replacement state (SRRIP increments RRPVs).
	Victim(set []Line) int
}

// PolicyFactory builds a policy instance for one cache. temps carries the
// hierarchy's profile-derived temperature hints; it is non-nil for caches
// built by NewHierarchy and nil for standalone NewCache, and policies that
// ignore hints ignore it.
type PolicyFactory func(temps *TempHints) Policy

var policyFactories = map[string]PolicyFactory{
	PolicyLRU:   func(*TempHints) Policy { return lruPolicy{} },
	PolicySRRIP: func(*TempHints) Policy { return srripPolicy{} },
	PolicyTRRIP: func(t *TempHints) Policy { return &trripPolicy{temps: t} },
}

// RegisterPolicy adds a replacement policy to the registry so external
// packages can plug their own into Config.Policy. Name collisions panic:
// policy names are part of measurement cache identity, so silently rebinding
// one would alias distinct machines.
func RegisterPolicy(name string, mk PolicyFactory) {
	if name == "" || mk == nil {
		panic("cache: RegisterPolicy needs a name and a factory")
	}
	if _, dup := policyFactories[name]; dup {
		panic("cache: duplicate replacement policy " + name)
	}
	policyFactories[name] = mk
}

// Policies returns the registered replacement-policy names, sorted.
func Policies() []string {
	names := make([]string, 0, len(policyFactories))
	for n := range policyFactories {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// newPolicy resolves a Config.Policy name ("" selects lru).
func newPolicy(name string, temps *TempHints) (Policy, error) {
	if name == "" {
		name = PolicyLRU
	}
	mk, ok := policyFactories[name]
	if !ok {
		return nil, fmt.Errorf("cache: unknown replacement policy %q (registered: %v)", name, Policies())
	}
	return mk(temps), nil
}

// lruPolicy is the baseline least-recently-used policy, bit-identical to the
// replacement logic that was inlined in Access/Install before the seam.
type lruPolicy struct{}

func (lruPolicy) Name() string                 { return PolicyLRU }
func (lruPolicy) Hit(l *Line, now int64)       { l.LastUse = now }
func (lruPolicy) Install(*Line, uint32, int64) {} // LastUse = readyAt, already set
func (lruPolicy) Victim(set []Line) int {
	victim := 0
	var oldest int64 = 1<<63 - 1
	for w := range set {
		if set[w].LastUse < oldest {
			oldest = set[w].LastUse
			victim = w
		}
	}
	return victim
}

// srripPolicy is static RRIP (Jaleel et al.): 2-bit re-reference prediction
// values, insertion at the long interval, promotion to near on hit, victim =
// first way predicted distant (aging the whole set until one is).
type srripPolicy struct{}

func (srripPolicy) Name() string                       { return PolicySRRIP }
func (srripPolicy) Hit(l *Line, _ int64)               { l.RRPV = rrpvNear }
func (srripPolicy) Install(l *Line, _ uint32, _ int64) { l.RRPV = rrpvLong }
func (srripPolicy) Victim(set []Line) int              { return rripVictim(set) }

func rripVictim(set []Line) int {
	for {
		for w := range set {
			if set[w].RRPV >= rrpvDistant {
				return w
			}
		}
		for w := range set {
			set[w].RRPV++
		}
	}
}

// trripPolicy seeds re-reference intervals from profile-derived temperature
// hints (TRRIP-style), on install *and* on hit: lines of hot code insert and
// promote to near (survive like MRU), unhinted code behaves like SRRIP on
// install but promotes one notch shy of near, and cold code inserts distant
// and never promotes past the long interval — so actively-streaming cold
// code still cannot displace hot lines. The hit-side bias is what bites in
// a low-associativity I-cache: sequential fetch promotes every resident
// line within a few cycles of its install, so insertion depth alone almost
// never changes the victim order, while promotion depth does. Victim
// selection is SRRIP's aging scan.
type trripPolicy struct {
	temps *TempHints
}

func (*trripPolicy) Name() string { return PolicyTRRIP }
func (p *trripPolicy) Hit(l *Line, _ int64) {
	l.RRPV = hitRRPV(p.temps.Temp(l.tag << 6))
}
func (p *trripPolicy) Install(l *Line, lineAddr uint32, _ int64) {
	l.RRPV = insertRRPV(p.temps.Temp(lineAddr << 6))
}
func (*trripPolicy) Victim(set []Line) int { return rripVictim(set) }

// insertRRPV maps a temperature to an insertion re-reference interval.
func insertRRPV(temp uint8) uint8 {
	switch {
	case temp >= TempHot:
		return rrpvNear
	case temp == TempWarm:
		return 1
	case temp == TempDefault:
		return rrpvLong
	default: // TempCold
		return rrpvDistant
	}
}

// hitRRPV maps a temperature to a promotion re-reference interval.
func hitRRPV(temp uint8) uint8 {
	switch {
	case temp >= TempWarm:
		return rrpvNear
	case temp == TempDefault:
		return 1
	default: // TempCold
		return rrpvLong
	}
}

// Temperature buckets for TempRange.Temp. Addresses outside every hinted
// range default to TempDefault, which TRRIP inserts exactly like SRRIP — so
// an empty hint table degrades trrip to srrip rather than to noise.
const (
	TempCold    = 0 // profiled never-hot code: evict-next insertion
	TempDefault = 1 // no information: SRRIP's static long interval
	TempWarm    = 2
	TempHot     = 3 // top of the profile's dynamic-instruction mass: keep
)

// MaxTempRanges bounds the hint table. One range covers one function, and
// the largest catalog workload has ~220 functions, so 256 never truncates;
// layout.Temperatures additionally omits TempDefault ranges.
const MaxTempRanges = 256

// TempRange marks [Start, End) of the laid-out code image with a
// temperature.
type TempRange struct {
	Start uint32 `json:"start"`
	End   uint32 `json:"end"`
	Temp  uint8  `json:"temp"`
}

// TempHints is a fixed-capacity, address-sorted temperature map derived from
// a CritIC profile over a laid-out program (layout.Temperatures). It is a
// plain value type on purpose: it rides inside cache.HierConfig through
// sched.KeyOf (arrays of scalar structs are keyable; slices are not) and
// through the distributed wire form (integer-exact custom JSON below).
type TempHints struct {
	N      uint16
	Ranges [MaxTempRanges]TempRange
}

// Add appends a range. Ranges must arrive in ascending, non-overlapping
// address order (Temp does a binary search); out-of-order or overflowing
// appends are refused.
func (t *TempHints) Add(start, end uint32, temp uint8) bool {
	if start >= end || int(t.N) >= MaxTempRanges {
		return false
	}
	if t.N > 0 && start < t.Ranges[t.N-1].End {
		return false
	}
	t.Ranges[t.N] = TempRange{Start: start, End: end, Temp: temp}
	t.N++
	return true
}

// Len returns the number of populated ranges.
func (t *TempHints) Len() int { return int(t.N) }

// Temp returns the temperature of addr (TempDefault outside every range).
func (t *TempHints) Temp(addr uint32) uint8 {
	if t == nil || t.N == 0 {
		return TempDefault
	}
	// Binary search for the last range starting at or before addr.
	lo, hi := 0, int(t.N)
	for lo < hi {
		mid := (lo + hi) / 2
		if t.Ranges[mid].Start <= addr {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return TempDefault
	}
	if r := &t.Ranges[lo-1]; addr < r.End {
		return r.Temp
	}
	return TempDefault
}

// validate checks the invariants Temp's binary search relies on.
func (t *TempHints) validate() error {
	if int(t.N) > MaxTempRanges {
		return fmt.Errorf("cache: temp hints claim %d ranges, capacity %d", t.N, MaxTempRanges)
	}
	for i := 0; i < int(t.N); i++ {
		r := &t.Ranges[i]
		if r.Start >= r.End {
			return fmt.Errorf("cache: temp hint %d is empty [%#x,%#x)", i, r.Start, r.End)
		}
		if i > 0 && r.Start < t.Ranges[i-1].End {
			return fmt.Errorf("cache: temp hint %d [%#x,%#x) overlaps or precedes its neighbor", i, r.Start, r.End)
		}
	}
	return nil
}

// tempHintsJSON is the wire form: only the populated prefix travels, as
// integers, so the JSON round trip is exact and requests stay small.
type tempHintsJSON struct {
	Ranges []TempRange `json:"ranges,omitempty"`
}

// MarshalJSON encodes only the populated ranges.
func (t TempHints) MarshalJSON() ([]byte, error) {
	return json.Marshal(tempHintsJSON{Ranges: t.Ranges[:t.N]})
}

// UnmarshalJSON decodes a populated-prefix encoding, rejecting overflow.
func (t *TempHints) UnmarshalJSON(data []byte) error {
	var in tempHintsJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	if len(in.Ranges) > MaxTempRanges {
		return fmt.Errorf("cache: temp hints carry %d ranges, capacity %d", len(in.Ranges), MaxTempRanges)
	}
	*t = TempHints{N: uint16(len(in.Ranges))}
	copy(t.Ranges[:], in.Ranges)
	return t.validate()
}
