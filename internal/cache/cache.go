// Package cache implements the cache hierarchy of the baseline platform
// (Table I): a 2-way 32KB i-cache and a 64KB d-cache with 2-cycle hit
// latency, an 8-way 2MB L2 with 10-cycle hits, the CLPT data prefetcher
// sitting at the L2, and the EFetch instruction prefetcher (§IV-G) — plus
// the LPDDR3 controller behind them (internal/dram).
//
// Timing model: caches are set-associative with LRU replacement; each line
// carries a readyAt timestamp so in-flight fills and prefetches give partial
// hits (an access to a line still being filled waits for the fill). The CPU
// model charges only latencies above the pipelined hit time.
package cache

import "critics/internal/dram"

// LineBytes is the line size used throughout the hierarchy.
const LineBytes = 64

// Config describes one cache level.
type Config struct {
	SizeBytes int
	Ways      int
	HitLat    int64
}

type line struct {
	tag     uint32
	valid   bool
	readyAt int64
	lastUse int64
}

// Cache is one set-associative cache with LRU replacement.
type Cache struct {
	cfg   Config
	sets  [][]line
	shift uint
	mask  uint32

	// Stats.
	Accesses int64
	Misses   int64
}

// NewCache builds a cache; sets are derived from size/ways/line.
func NewCache(cfg Config) *Cache {
	nsets := cfg.SizeBytes / (cfg.Ways * LineBytes)
	if nsets < 1 {
		nsets = 1
	}
	// Round down to a power of two for cheap indexing.
	p := 1
	for p*2 <= nsets {
		p *= 2
	}
	nsets = p
	c := &Cache{cfg: cfg, sets: make([][]line, nsets), mask: uint32(nsets - 1)}
	for i := range c.sets {
		c.sets[i] = make([]line, cfg.Ways)
	}
	c.shift = 6 // log2(LineBytes)
	return c
}

// lookup finds the way holding addr's line, or -1.
func (c *Cache) lookup(addr uint32) (set uint32, way int) {
	lineAddr := addr >> c.shift
	set = lineAddr & c.mask
	tag := lineAddr // full line address as tag: simple and unambiguous
	for w := range c.sets[set] {
		l := &c.sets[set][w]
		if l.valid && l.tag == tag {
			return set, w
		}
	}
	return set, -1
}

// Probe reports whether addr's line is present (no state change, no stats).
func (c *Cache) Probe(addr uint32) bool {
	_, way := c.lookup(addr)
	return way >= 0
}

// Access looks up addr at cycle now. It returns (hit, readyAt): on a hit,
// readyAt is when the data is available (>= now + HitLat; later if the line
// is still in flight). On a miss the caller must fill the line via Install
// and compute readyAt from the lower level.
func (c *Cache) Access(addr uint32, now int64) (bool, int64) {
	c.Accesses++
	set, way := c.lookup(addr)
	if way < 0 {
		c.Misses++
		return false, 0
	}
	l := &c.sets[set][way]
	l.lastUse = now
	ready := now + c.cfg.HitLat
	if l.readyAt > ready {
		ready = l.readyAt
	}
	return true, ready
}

// Install fills addr's line, available at readyAt, evicting LRU.
func (c *Cache) Install(addr uint32, readyAt int64) {
	lineAddr := addr >> c.shift
	set := lineAddr & c.mask
	victim := 0
	var oldest int64 = 1<<63 - 1
	for w := range c.sets[set] {
		l := &c.sets[set][w]
		if !l.valid {
			victim = w
			break
		}
		if l.lastUse < oldest {
			oldest = l.lastUse
			victim = w
		}
	}
	c.sets[set][victim] = line{tag: lineAddr, valid: true, readyAt: readyAt, lastUse: readyAt}
}

// MissRate returns misses/accesses.
func (c *Cache) MissRate() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.Misses) / float64(c.Accesses)
}

// HitLat exposes the configured hit latency.
func (c *Cache) HitLat() int64 { return c.cfg.HitLat }

// Prefetcher issues prefetches into a cache level.

// CLPT is the stride prefetcher at the L2 of the baseline configuration
// (Table I cites [18]'s table: 1024 x 7-bit entries). It is PC-indexed:
// each entry remembers the last address and stride of a load PC and, on a
// stride match, prefetches the next lines into L2.
type CLPT struct {
	entries []clptEntry
	mask    uint32

	Prefetches int64
}

type clptEntry struct {
	lastAddr uint32
	stride   int32
	conf     uint8
}

// NewCLPT builds the prefetcher with n entries (rounded to a power of two).
func NewCLPT(n int) *CLPT {
	p := 1
	for p < n {
		p <<= 1
	}
	return &CLPT{entries: make([]clptEntry, p), mask: uint32(p - 1)}
}

// Train observes a demand access by the load at pc to addr and returns a
// prefetch address (0 if none).
func (c *CLPT) Train(pc, addr uint32) uint32 {
	e := &c.entries[(pc>>2)&c.mask]
	stride := int32(addr) - int32(e.lastAddr)
	if stride == e.stride && stride != 0 {
		if e.conf < 3 {
			e.conf++
		}
	} else {
		e.stride = stride
		if e.conf > 0 {
			e.conf--
		}
	}
	e.lastAddr = addr
	if e.conf >= 2 && e.stride != 0 {
		c.Prefetches++
		return uint32(int64(addr) + int64(e.stride)*2)
	}
	return 0
}

// EFetch is the call-stack-driven instruction prefetcher of §IV-G ([71]): it
// learns which function a call site transfers to and, when the site is seen
// again, prefetches the first lines of the predicted callee. (The paper's
// version keys on user-event call-stack history with a 39KB table; keying on
// the call-site PC captures the same next-function locality for our
// single-threaded traces.)
type EFetch struct {
	table map[uint32]uint32 // call-site PC -> callee entry address
	depth int               // lines prefetched per prediction

	Predictions int64
}

// NewEFetch builds the prefetcher; depth is the number of 64B lines warmed
// per predicted callee.
func NewEFetch(depth int) *EFetch {
	return &EFetch{table: make(map[uint32]uint32), depth: depth}
}

// Predict returns the predicted callee entry for a call site (0 if unknown).
func (e *EFetch) Predict(sitePC uint32) uint32 {
	t, ok := e.table[sitePC]
	if !ok {
		return 0
	}
	e.Predictions++
	return t
}

// Train records the observed callee of a call site.
func (e *EFetch) Train(sitePC, callee uint32) {
	e.table[sitePC] = callee
}

// Depth returns the configured prefetch depth in lines.
func (e *EFetch) Depth() int { return e.depth }

// HierConfig configures the full hierarchy.
type HierConfig struct {
	L1I Config
	L1D Config
	L2  Config

	CLPTEntries int // 0 disables the L2 data prefetcher
	EFetchDepth int // 0 disables the instruction prefetcher

	DRAM dram.Config
}

// DefaultHierConfig matches Table I.
func DefaultHierConfig() HierConfig {
	return HierConfig{
		L1I:         Config{SizeBytes: 32 << 10, Ways: 2, HitLat: 2},
		L1D:         Config{SizeBytes: 64 << 10, Ways: 2, HitLat: 2},
		L2:          Config{SizeBytes: 2 << 20, Ways: 8, HitLat: 10},
		CLPTEntries: 1024,
		EFetchDepth: 0,
		DRAM:        dram.DefaultConfig(),
	}
}

// Hierarchy ties L1I/L1D/L2/DRAM and the prefetchers together.
type Hierarchy struct {
	L1I, L1D, L2 *Cache
	DRAM         *dram.Controller
	CLPT         *CLPT
	EFetch       *EFetch
}

// NewHierarchy builds the hierarchy from cfg.
func NewHierarchy(cfg HierConfig) *Hierarchy {
	h := &Hierarchy{
		L1I:  NewCache(cfg.L1I),
		L1D:  NewCache(cfg.L1D),
		L2:   NewCache(cfg.L2),
		DRAM: dram.New(cfg.DRAM),
	}
	if cfg.CLPTEntries > 0 {
		h.CLPT = NewCLPT(cfg.CLPTEntries)
	}
	if cfg.EFetchDepth > 0 {
		h.EFetch = NewEFetch(cfg.EFetchDepth)
	}
	return h
}

// fillFromL2 resolves a miss below L1: L2 then DRAM. Returns data-ready
// cycle and installs lines on the way up.
func (h *Hierarchy) fillFromL2(addr uint32, now int64) int64 {
	if hit, ready := h.L2.Access(addr, now); hit {
		return ready
	}
	done := h.DRAM.Access(addr, now)
	h.L2.Install(addr, done)
	return done
}

// Instr performs an instruction fetch access for the line containing addr at
// cycle now, returning the cycle the bytes are available.
func (h *Hierarchy) Instr(addr uint32, now int64) int64 {
	if hit, ready := h.L1I.Access(addr, now); hit {
		return ready
	}
	ready := h.fillFromL2(addr, now)
	h.L1I.Install(addr, ready)
	return ready
}

// PrefetchInstr warms the line containing addr into L1I without counting a
// demand access (used by EFetch).
func (h *Hierarchy) PrefetchInstr(addr uint32, now int64) {
	if h.L1I.Probe(addr) {
		return
	}
	ready := h.fillFromL2(addr, now)
	h.L1I.Install(addr, ready)
}

// Data performs a data access by the load/store at pc to addr, returning the
// data-ready cycle. Stores install lines but callers typically ignore their
// latency (store buffering). CLPT trains on L1D misses that reach the L2
// and prefetches into the L2 only — it is the baseline's L2-side prefetcher
// (Table I), hiding DRAM latency behind the 10-cycle L2 hit.
func (h *Hierarchy) Data(pc, addr uint32, now int64) int64 {
	if hit, ready := h.L1D.Access(addr, now); hit {
		return ready
	}
	ready := h.fillFromL2(addr, now)
	h.L1D.Install(addr, ready)
	if h.CLPT != nil {
		if pf := h.CLPT.Train(pc, addr); pf != 0 {
			h.PrefetchL2(pf, now)
		}
	}
	return ready
}

// PrefetchL2 warms the line containing addr into the L2 only (the baseline
// CLPT's insertion level).
func (h *Hierarchy) PrefetchL2(addr uint32, now int64) {
	if h.L2.Probe(addr) {
		return
	}
	done := h.DRAM.Access(addr, now)
	h.L2.Install(addr, done)
}

// PrefetchData warms the line containing addr all the way into the L1D —
// the insertion level of the criticality-directed load prefetcher ([18]),
// which is what saves the L2 hit latency on predicted-critical loads.
func (h *Hierarchy) PrefetchData(addr uint32, now int64) {
	if h.L1D.Probe(addr) {
		return
	}
	ready := h.fillFromL2(addr, now)
	h.L1D.Install(addr, ready)
}
