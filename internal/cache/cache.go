// Package cache implements the cache hierarchy of the baseline platform
// (Table I): a 2-way 32KB i-cache and a 64KB d-cache with 2-cycle hit
// latency, an 8-way 2MB L2 with 10-cycle hits, the CLPT data prefetcher
// sitting at the L2, and the EFetch instruction prefetcher (§IV-G) — plus
// the LPDDR3 controller behind them (internal/dram).
//
// Timing model: caches are set-associative with a pluggable replacement
// policy (Config.Policy; LRU by default, see policy.go); each line carries a
// readyAt timestamp so in-flight fills and prefetches give partial hits (an
// access to a line still being filled waits for the fill). The CPU model
// charges only latencies above the pipelined hit time.
package cache

import (
	"fmt"

	"critics/internal/dram"
)

// LineBytes is the line size used throughout the hierarchy.
const LineBytes = 64

// Config describes one cache level. The zero Policy selects lru, keeping
// the zero-config behavior identical to the pre-policy-seam simulator.
type Config struct {
	SizeBytes int
	Ways      int
	HitLat    int64

	// Policy names the replacement policy (policy.go registry): "" or
	// "lru", "srrip", "trrip". Part of measurement cache identity.
	Policy string
}

// Validate rejects degenerate level configurations with a clear error
// instead of the historical silent behavior (Ways <= 0 divided by zero
// sizing the sets; non-power-of-two set counts were rounded down without
// notice, quietly shrinking the cache).
func (cfg Config) Validate() error {
	if cfg.Ways <= 0 {
		return fmt.Errorf("cache: ways must be >= 1 (got %d)", cfg.Ways)
	}
	if cfg.SizeBytes < cfg.Ways*LineBytes {
		return fmt.Errorf("cache: size %dB cannot hold one set of %d %dB ways", cfg.SizeBytes, cfg.Ways, LineBytes)
	}
	if cfg.SizeBytes%(cfg.Ways*LineBytes) != 0 {
		return fmt.Errorf("cache: size %dB is not a multiple of ways*line = %dB", cfg.SizeBytes, cfg.Ways*LineBytes)
	}
	nsets := cfg.SizeBytes / (cfg.Ways * LineBytes)
	if nsets&(nsets-1) != 0 {
		return fmt.Errorf("cache: %dB/%d-way gives %d sets; the indexer needs a power of two (it used to round down silently)", cfg.SizeBytes, cfg.Ways, nsets)
	}
	if cfg.HitLat < 0 {
		return fmt.Errorf("cache: negative hit latency %d", cfg.HitLat)
	}
	if _, err := newPolicy(cfg.Policy, nil); err != nil {
		return err
	}
	return nil
}

// Line is one cache line. Tag matching and fill timing (the unexported
// fields) belong to the Cache; LastUse and RRPV are the replacement state a
// Policy owns.
type Line struct {
	tag     uint32
	valid   bool
	readyAt int64

	LastUse int64 // recency timestamp (lru)
	RRPV    uint8 // 2-bit re-reference prediction value (srrip/trrip)
}

// Valid reports whether the line holds data.
func (l *Line) Valid() bool { return l.valid }

// ReadyAt returns the cycle the line's fill completes (partial-hit floor).
func (l *Line) ReadyAt() int64 { return l.readyAt }

// Cache is one set-associative cache with a pluggable replacement policy.
type Cache struct {
	cfg   Config
	pol   Policy
	sets  [][]Line
	shift uint
	mask  uint32

	// Stats.
	Accesses int64
	Misses   int64
}

// NewCache builds a cache; sets are derived from size/ways/line. The config
// must pass Validate — levels are sized by experiment code, so a degenerate
// config is a programming error and panics with Validate's message.
// Temperature-hinted policies get no hints here; NewHierarchy threads them.
func NewCache(cfg Config) *Cache { return newCacheHints(cfg, nil) }

func newCacheHints(cfg Config, temps *TempHints) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	pol, err := newPolicy(cfg.Policy, temps)
	if err != nil {
		panic(err)
	}
	nsets := cfg.SizeBytes / (cfg.Ways * LineBytes)
	c := &Cache{cfg: cfg, pol: pol, sets: make([][]Line, nsets), mask: uint32(nsets - 1)}
	for i := range c.sets {
		c.sets[i] = make([]Line, cfg.Ways)
	}
	c.shift = 6 // log2(LineBytes)
	return c
}

// Policy exposes the cache's replacement policy (tests, diagnostics).
func (c *Cache) Policy() Policy { return c.pol }

// lookup finds the way holding addr's line, or -1.
func (c *Cache) lookup(addr uint32) (set uint32, way int) {
	lineAddr := addr >> c.shift
	set = lineAddr & c.mask
	tag := lineAddr // full line address as tag: simple and unambiguous
	for w := range c.sets[set] {
		l := &c.sets[set][w]
		if l.valid && l.tag == tag {
			return set, w
		}
	}
	return set, -1
}

// Probe reports whether addr's line is present (no state change, no stats).
func (c *Cache) Probe(addr uint32) bool {
	_, way := c.lookup(addr)
	return way >= 0
}

// Access looks up addr at cycle now. It returns (hit, readyAt): on a hit,
// readyAt is when the data is available (>= now + HitLat; later if the line
// is still in flight). On a miss the caller must fill the line via Install
// and compute readyAt from the lower level.
func (c *Cache) Access(addr uint32, now int64) (bool, int64) {
	c.Accesses++
	set, way := c.lookup(addr)
	if way < 0 {
		c.Misses++
		return false, 0
	}
	l := &c.sets[set][way]
	c.pol.Hit(l, now)
	ready := now + c.cfg.HitLat
	if l.readyAt > ready {
		ready = l.readyAt
	}
	return true, ready
}

// Install fills addr's line, available at readyAt. Invalid ways fill first
// (in way order, matching the pre-seam scan); a full set evicts the policy's
// victim.
func (c *Cache) Install(addr uint32, readyAt int64) {
	lineAddr := addr >> c.shift
	set := lineAddr & c.mask
	victim := -1
	for w := range c.sets[set] {
		if !c.sets[set][w].valid {
			victim = w
			break
		}
	}
	if victim < 0 {
		victim = c.pol.Victim(c.sets[set])
	}
	l := &c.sets[set][victim]
	*l = Line{tag: lineAddr, valid: true, readyAt: readyAt, LastUse: readyAt}
	c.pol.Install(l, lineAddr, readyAt)
}

// MissRate returns misses/accesses.
func (c *Cache) MissRate() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.Misses) / float64(c.Accesses)
}

// HitLat exposes the configured hit latency.
func (c *Cache) HitLat() int64 { return c.cfg.HitLat }

// Prefetcher issues prefetches into a cache level.

// CLPT is the stride prefetcher at the L2 of the baseline configuration
// (Table I cites [18]'s table: 1024 x 7-bit entries). It is PC-indexed:
// each entry remembers the last address and stride of a load PC and, on a
// stride match, prefetches the next lines into L2.
type CLPT struct {
	entries []clptEntry
	mask    uint32

	Prefetches int64
}

type clptEntry struct {
	lastAddr uint32
	stride   int32
	conf     uint8
}

// NewCLPT builds the prefetcher with n entries (rounded to a power of two).
func NewCLPT(n int) *CLPT {
	p := 1
	for p < n {
		p <<= 1
	}
	return &CLPT{entries: make([]clptEntry, p), mask: uint32(p - 1)}
}

// Train observes a demand access by the load at pc to addr and returns a
// prefetch address (0 if none).
func (c *CLPT) Train(pc, addr uint32) uint32 {
	e := &c.entries[(pc>>2)&c.mask]
	stride := int32(addr) - int32(e.lastAddr)
	if stride == e.stride && stride != 0 {
		if e.conf < 3 {
			e.conf++
		}
	} else {
		e.stride = stride
		if e.conf > 0 {
			e.conf--
		}
	}
	e.lastAddr = addr
	if e.conf >= 2 && e.stride != 0 {
		c.Prefetches++
		return uint32(int64(addr) + int64(e.stride)*2)
	}
	return 0
}

// EFetch is the call-stack-driven instruction prefetcher of §IV-G ([71]): it
// learns which function a call site transfers to and, when the site is seen
// again, prefetches the first lines of the predicted callee. (The paper's
// version keys on user-event call-stack history with a fixed 39KB table;
// keying on the call-site PC captures the same next-function locality for
// our single-threaded traces.)
//
// The table is a fixed-size direct-mapped array — EFetchEntries tagged
// (site, callee) pairs — matching the paper's fixed hardware budget rather
// than the unbounded map it used to be. A call site whose slot is held by a
// conflicting site simply overwrites it on Train: eviction is deterministic
// (last trainer wins), so simulations stay bit-identical for every worker
// count and batching strategy.
type EFetch struct {
	table []efetchEntry
	mask  uint32
	depth int // lines prefetched per prediction

	Predictions int64
}

type efetchEntry struct {
	site   uint32 // call-site PC tag (full PC: cheap and unambiguous)
	callee uint32 // predicted callee entry address
}

// EFetchEntries is the direct-mapped table size: 4096 8-byte entries (32KB
// of payload — the same order as the paper's 39KB structure once tags and
// valid bits are accounted).
const EFetchEntries = 4096

// NewEFetch builds the prefetcher; depth is the number of 64B lines warmed
// per predicted callee.
func NewEFetch(depth int) *EFetch {
	return &EFetch{table: make([]efetchEntry, EFetchEntries), mask: EFetchEntries - 1, depth: depth}
}

// slot indexes the direct-mapped table (call sites are >= 2-byte aligned).
func (e *EFetch) slot(sitePC uint32) *efetchEntry {
	return &e.table[(sitePC>>1)&e.mask]
}

// Predict returns the predicted callee entry for a call site (0 if unknown
// or if the site's slot was taken over by a conflicting site).
func (e *EFetch) Predict(sitePC uint32) uint32 {
	s := e.slot(sitePC)
	if s.callee == 0 || s.site != sitePC {
		return 0
	}
	e.Predictions++
	return s.callee
}

// Train records the observed callee of a call site, overwriting whatever
// occupied the site's slot.
func (e *EFetch) Train(sitePC, callee uint32) {
	*e.slot(sitePC) = efetchEntry{site: sitePC, callee: callee}
}

// Depth returns the configured prefetch depth in lines.
func (e *EFetch) Depth() int { return e.depth }

// HierConfig configures the full hierarchy.
type HierConfig struct {
	L1I Config
	L1D Config
	L2  Config

	CLPTEntries int // 0 disables the L2 data prefetcher
	EFetchDepth int // 0 disables the instruction prefetcher

	// Temps carries profile-derived code-temperature hints to
	// temperature-aware replacement policies (trrip). The zero value hints
	// nothing, which degrades trrip to srrip. A fixed-capacity value type:
	// it participates in measurement memo keys and the distributed wire
	// form like every other field here.
	Temps TempHints

	DRAM dram.Config
}

// Validate rejects degenerate hierarchy configurations with an error naming
// the offending level.
func (cfg HierConfig) Validate() error {
	for _, lv := range []struct {
		name string
		c    Config
	}{{"L1I", cfg.L1I}, {"L1D", cfg.L1D}, {"L2", cfg.L2}} {
		if err := lv.c.Validate(); err != nil {
			return fmt.Errorf("%s: %w", lv.name, err)
		}
	}
	if cfg.CLPTEntries < 0 {
		return fmt.Errorf("cache: negative CLPT entry count %d", cfg.CLPTEntries)
	}
	if cfg.EFetchDepth < 0 {
		return fmt.Errorf("cache: negative EFetch depth %d", cfg.EFetchDepth)
	}
	return cfg.Temps.validate()
}

// DefaultHierConfig matches Table I.
func DefaultHierConfig() HierConfig {
	return HierConfig{
		L1I:         Config{SizeBytes: 32 << 10, Ways: 2, HitLat: 2},
		L1D:         Config{SizeBytes: 64 << 10, Ways: 2, HitLat: 2},
		L2:          Config{SizeBytes: 2 << 20, Ways: 8, HitLat: 10},
		CLPTEntries: 1024,
		EFetchDepth: 0,
		DRAM:        dram.DefaultConfig(),
	}
}

// Hierarchy ties L1I/L1D/L2/DRAM and the prefetchers together.
type Hierarchy struct {
	L1I, L1D, L2 *Cache
	DRAM         *dram.Controller
	CLPT         *CLPT
	EFetch       *EFetch

	temps TempHints // hierarchy-owned copy the policies point into
}

// NewHierarchy builds the hierarchy from cfg. Like NewCache, a config that
// fails Validate is a programming error and panics with its message;
// experiment entry points (and the distributed execute path) validate
// upstream and return the error instead.
func NewHierarchy(cfg HierConfig) *Hierarchy {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	h := &Hierarchy{temps: cfg.Temps, DRAM: dram.New(cfg.DRAM)}
	h.L1I = newCacheHints(cfg.L1I, &h.temps)
	h.L1D = newCacheHints(cfg.L1D, &h.temps)
	h.L2 = newCacheHints(cfg.L2, &h.temps)
	if cfg.CLPTEntries > 0 {
		h.CLPT = NewCLPT(cfg.CLPTEntries)
	}
	if cfg.EFetchDepth > 0 {
		h.EFetch = NewEFetch(cfg.EFetchDepth)
	}
	return h
}

// fillFromL2 resolves a miss below L1: L2 then DRAM. Returns data-ready
// cycle and installs lines on the way up.
func (h *Hierarchy) fillFromL2(addr uint32, now int64) int64 {
	if hit, ready := h.L2.Access(addr, now); hit {
		return ready
	}
	done := h.DRAM.Access(addr, now)
	h.L2.Install(addr, done)
	return done
}

// Instr performs an instruction fetch access for the line containing addr at
// cycle now, returning the cycle the bytes are available.
func (h *Hierarchy) Instr(addr uint32, now int64) int64 {
	if hit, ready := h.L1I.Access(addr, now); hit {
		return ready
	}
	ready := h.fillFromL2(addr, now)
	h.L1I.Install(addr, ready)
	return ready
}

// PrefetchInstr warms the line containing addr into L1I without counting a
// demand access (used by EFetch).
func (h *Hierarchy) PrefetchInstr(addr uint32, now int64) {
	if h.L1I.Probe(addr) {
		return
	}
	ready := h.fillFromL2(addr, now)
	h.L1I.Install(addr, ready)
}

// Data performs a data access by the load/store at pc to addr, returning the
// data-ready cycle. Stores install lines but callers typically ignore their
// latency (store buffering). CLPT trains on L1D misses that reach the L2
// and prefetches into the L2 only — it is the baseline's L2-side prefetcher
// (Table I), hiding DRAM latency behind the 10-cycle L2 hit.
func (h *Hierarchy) Data(pc, addr uint32, now int64) int64 {
	if hit, ready := h.L1D.Access(addr, now); hit {
		return ready
	}
	ready := h.fillFromL2(addr, now)
	h.L1D.Install(addr, ready)
	if h.CLPT != nil {
		if pf := h.CLPT.Train(pc, addr); pf != 0 {
			h.PrefetchL2(pf, now)
		}
	}
	return ready
}

// PrefetchL2 warms the line containing addr into the L2 only (the baseline
// CLPT's insertion level).
func (h *Hierarchy) PrefetchL2(addr uint32, now int64) {
	if h.L2.Probe(addr) {
		return
	}
	done := h.DRAM.Access(addr, now)
	h.L2.Install(addr, done)
}

// PrefetchData warms the line containing addr all the way into the L1D —
// the insertion level of the criticality-directed load prefetcher ([18]),
// which is what saves the L2 hit latency on predicted-critical loads.
func (h *Hierarchy) PrefetchData(addr uint32, now int64) {
	if h.L1D.Probe(addr) {
		return
	}
	ready := h.fillFromL2(addr, now)
	h.L1D.Install(addr, ready)
}
