package cache

import (
	"encoding/json"
	"math/rand"
	"testing"
)

func TestConfigValidate(t *testing.T) {
	ok := Config{SizeBytes: 1024, Ways: 2, HitLat: 2}
	cases := []struct {
		name string
		cfg  Config
		want bool // valid
	}{
		{"default-l1i", Config{SizeBytes: 32 << 10, Ways: 2, HitLat: 2}, true},
		{"zero-policy-is-lru", ok, true},
		{"named-lru", Config{SizeBytes: 1024, Ways: 2, HitLat: 2, Policy: PolicyLRU}, true},
		{"srrip", Config{SizeBytes: 1024, Ways: 2, HitLat: 2, Policy: PolicySRRIP}, true},
		{"trrip", Config{SizeBytes: 1024, Ways: 2, HitLat: 2, Policy: PolicyTRRIP}, true},
		{"zero-ways", Config{SizeBytes: 1024, Ways: 0, HitLat: 2}, false},
		{"negative-ways", Config{SizeBytes: 1024, Ways: -2, HitLat: 2}, false},
		{"too-small-for-one-set", Config{SizeBytes: 64, Ways: 2, HitLat: 2}, false},
		{"size-not-multiple", Config{SizeBytes: 1000, Ways: 2, HitLat: 2}, false},
		{"non-pow2-sets", Config{SizeBytes: 3 * 128, Ways: 2, HitLat: 2}, false}, // 3 sets
		{"negative-hitlat", Config{SizeBytes: 1024, Ways: 2, HitLat: -1}, false},
		{"unknown-policy", Config{SizeBytes: 1024, Ways: 2, HitLat: 2, Policy: "plru"}, false},
	}
	for _, tc := range cases {
		err := tc.cfg.Validate()
		if tc.want && err != nil {
			t.Errorf("%s: Validate() = %v, want nil", tc.name, err)
		}
		if !tc.want && err == nil {
			t.Errorf("%s: Validate() = nil, want error", tc.name)
		}
	}
}

func TestHierConfigValidate(t *testing.T) {
	if err := DefaultHierConfig().Validate(); err != nil {
		t.Fatalf("default hierarchy invalid: %v", err)
	}
	bad := DefaultHierConfig()
	bad.L1D.Ways = 0
	err := bad.Validate()
	if err == nil {
		t.Fatal("zero-way L1D accepted")
	}
	if got := err.Error(); got[:4] != "L1D:" {
		t.Errorf("error %q does not name the offending level", got)
	}
	neg := DefaultHierConfig()
	neg.EFetchDepth = -1
	if neg.Validate() == nil {
		t.Error("negative EFetch depth accepted")
	}
	badTemps := DefaultHierConfig()
	badTemps.Temps.N = 1 // claims one range but Ranges[0] is empty
	if badTemps.Validate() == nil {
		t.Error("empty temp range accepted")
	}
}

func TestNewCachePanicsOnInvalidConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewCache accepted a zero-way config")
		}
	}()
	NewCache(Config{SizeBytes: 1024, Ways: 0, HitLat: 2})
}

// refLRU is the pre-seam replacement logic, re-implemented verbatim: hit sets
// LastUse = now; install scans for the first invalid way, else evicts the
// minimum-LastUse way. The policy seam must reproduce it bit for bit.
type refLRU struct {
	sets [][]Line
	mask uint32
}

func newRefLRU(nsets, ways int) *refLRU {
	r := &refLRU{sets: make([][]Line, nsets), mask: uint32(nsets - 1)}
	for i := range r.sets {
		r.sets[i] = make([]Line, ways)
	}
	return r
}

func (r *refLRU) access(addr uint32, now int64) (bool, int64) {
	lineAddr := addr >> 6
	set := lineAddr & r.mask
	for w := range r.sets[set] {
		l := &r.sets[set][w]
		if l.valid && l.tag == lineAddr {
			l.LastUse = now
			ready := now + 2
			if l.readyAt > ready {
				ready = l.readyAt
			}
			return true, ready
		}
	}
	return false, 0
}

func (r *refLRU) install(addr uint32, readyAt int64) {
	lineAddr := addr >> 6
	set := lineAddr & r.mask
	victim := 0
	var oldest int64 = 1<<63 - 1
	for w := range r.sets[set] {
		if !r.sets[set][w].valid {
			victim = w
			break
		}
		if r.sets[set][w].LastUse < oldest {
			oldest = r.sets[set][w].LastUse
			victim = w
		}
	}
	l := &r.sets[set][victim]
	*l = Line{tag: lineAddr, valid: true, readyAt: readyAt, LastUse: readyAt}
}

// TestLRUPolicyPreSeamEquivalence drives the seamed cache and the pre-seam
// reference model with the same pseudo-random access/install stream and
// demands identical hits and ready cycles — the refactor's bit-identity
// contract at the cache level (the measurement-level counterpart is
// exp.TestLRUPolicyMeasureEquivalence).
func TestLRUPolicyPreSeamEquivalence(t *testing.T) {
	c := NewCache(Config{SizeBytes: 1024, Ways: 2, HitLat: 2}) // 8 sets
	r := newRefLRU(8, 2)
	rng := rand.New(rand.NewSource(7))
	for now := int64(0); now < 20000; now++ {
		addr := uint32(rng.Intn(64)) * 64 // 64 lines over 8 sets: heavy conflict
		hit, ready := c.Access(addr, now)
		rhit, rready := r.access(addr, now)
		if hit != rhit || (hit && ready != rready) {
			t.Fatalf("t=%d addr=%#x: seamed (%v,%d) != reference (%v,%d)", now, addr, hit, ready, rhit, rready)
		}
		if !hit {
			fill := now + 1 + int64(rng.Intn(40))
			c.Install(addr, fill)
			r.install(addr, fill)
		}
	}
}

// TestPolicyProperties checks the invariants every replacement policy must
// preserve: policies pick victims, they never change timing. On any hit the
// ready cycle is exactly max(now+HitLat, the line's last fill completion) —
// the pipelined hit latency with the partial-hit wait for in-flight fills —
// and installs always land (the requested line is present after).
func TestPolicyProperties(t *testing.T) {
	for _, pol := range Policies() {
		t.Run(pol, func(t *testing.T) {
			c := NewCache(Config{SizeBytes: 1024, Ways: 2, HitLat: 2, Policy: pol})

			// Partial hit: a line filling at 100 is not ready before 100.
			c.Install(0x1000, 100)
			if hit, ready := c.Access(0x1000, 50); !hit || ready != 100 {
				t.Fatalf("in-flight access = (%v,%d), want (true,100)", hit, ready)
			}

			rng := rand.New(rand.NewSource(11))
			lastFill := map[uint32]int64{0x1000: 100}
			for now := int64(200); now < 20200; now++ {
				addr := uint32(rng.Intn(64)) * 64
				hit, ready := c.Access(addr, now)
				if !hit {
					fill := now + 1 + int64(rng.Intn(40))
					c.Install(addr, fill)
					lastFill[addr] = fill
					if !c.Probe(addr) {
						t.Fatalf("installed line %#x absent", addr)
					}
					continue
				}
				want := now + 2
				if f := lastFill[addr]; f > want {
					want = f
				}
				if ready != want {
					t.Fatalf("t=%d addr=%#x (%s): hit ready %d, want max(now+HitLat, fill) = %d",
						now, addr, pol, ready, want)
				}
			}
		})
	}
}

func TestSRRIPInsertionIsNotMRU(t *testing.T) {
	// 2-way set: A and B resident and both re-referenced (RRPV 0); C is
	// installed and never touched (RRPV 2). The next victim must be C —
	// SRRIP's scan resistance, where LRU would have evicted A or B.
	c := NewCache(Config{SizeBytes: 1024, Ways: 2, HitLat: 2, Policy: PolicySRRIP})
	const stride = 8 * 64 // set 0
	c.Install(0*stride, 0)
	c.Install(1*stride, 1)
	c.Access(0*stride, 10)
	c.Access(1*stride, 11)
	c.Install(2*stride, 20) // evicts one of A/B (both near): way 0 after aging
	if c.Probe(0 * stride) {
		t.Fatal("way-0 line survived the full-set install")
	}
	// B is near (RRPV 0 aged to 1... then both age until distant); the fresh
	// C sits at the long interval, so the *next* conflict evicts C, not B.
	c.Access(1*stride, 30)
	c.Install(3*stride, 40)
	if !c.Probe(1 * stride) {
		t.Fatal("re-referenced line evicted before the scanned-in line")
	}
	if c.Probe(2 * stride) {
		t.Fatal("never-referenced line survived")
	}
}

func TestTRRIPHotSurvivesConflict(t *testing.T) {
	// Hint line 0's address hot and leave line 512 unhinted. Stream both,
	// then force an eviction: the hot line must survive where lru (and
	// srrip, which sees both as near) would evict by recency/way order.
	var temps TempHints
	if !temps.Add(0, 64, TempHot) {
		t.Fatal("Add refused a valid range")
	}
	cfg := HierConfig{
		L1I:  Config{SizeBytes: 1024, Ways: 2, HitLat: 2, Policy: PolicyTRRIP},
		L1D:  Config{SizeBytes: 1024, Ways: 2, HitLat: 2},
		L2:   Config{SizeBytes: 8 << 10, Ways: 2, HitLat: 10},
		DRAM: DefaultHierConfig().DRAM,
	}
	cfg.Temps = temps
	h := NewHierarchy(cfg)
	const stride = 8 * 64 // both map to set 0
	h.Instr(0, 0)         // hot line installs near
	h.Instr(stride, 100)  // default line installs long
	h.Instr(0, 200)       // promote hot to near
	h.Instr(stride, 300)  // promote default to 1 (one notch shy)
	h.Instr(2*stride, 400)
	if !h.L1I.Probe(0) {
		t.Fatal("hot-hinted line evicted")
	}
	if h.L1I.Probe(stride) {
		t.Fatal("default-temperature line survived instead of the hot one")
	}
}

func TestTRRIPWithoutHintsMatchesSRRIP(t *testing.T) {
	// An empty hint table must make trrip's insertion degrade to srrip's
	// long interval; hit promotion is one notch weaker, so full-stream
	// equality is not required — but insertion RRPVs must agree.
	var none TempHints
	tp := &trripPolicy{temps: &none}
	var l Line
	tp.Install(&l, 0x123, 0)
	if l.RRPV != rrpvLong {
		t.Fatalf("unhinted trrip insertion RRPV = %d, want srrip's %d", l.RRPV, rrpvLong)
	}
}

func TestTempHints(t *testing.T) {
	var h TempHints
	if !h.Add(0, 128, TempHot) || !h.Add(128, 256, TempCold) || !h.Add(512, 640, TempWarm) {
		t.Fatal("Add refused valid ranges")
	}
	if h.Add(600, 700, TempHot) {
		t.Error("Add accepted an overlapping range")
	}
	if h.Add(700, 700, TempHot) {
		t.Error("Add accepted an empty range")
	}
	for _, tc := range []struct {
		addr uint32
		want uint8
	}{{0, TempHot}, {127, TempHot}, {128, TempCold}, {255, TempCold}, {256, TempDefault}, {512, TempWarm}, {639, TempWarm}, {640, TempDefault}, {1 << 30, TempDefault}} {
		if got := h.Temp(tc.addr); got != tc.want {
			t.Errorf("Temp(%d) = %d, want %d", tc.addr, got, tc.want)
		}
	}
	var nilHints *TempHints
	if nilHints.Temp(0) != TempDefault {
		t.Error("nil hints not default")
	}

	// JSON round trip is exact and carries only the populated prefix.
	b, err := json.Marshal(h)
	if err != nil {
		t.Fatal(err)
	}
	var back TempHints
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back != h {
		t.Error("JSON round trip changed the hints")
	}
	if len(b) > 200 {
		t.Errorf("3-range encoding is %d bytes; the empty tail leaked", len(b))
	}
}

func TestRegisterPolicyRejectsDuplicates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration accepted")
		}
	}()
	RegisterPolicy(PolicyLRU, func(*TempHints) Policy { return lruPolicy{} })
}

// TestEFetchBoundedTable pins the direct-mapped table semantics: conflicting
// call sites overwrite each other deterministically instead of growing the
// (formerly unbounded) map, and a site whose slot was taken over predicts
// nothing rather than the usurper's callee.
func TestEFetchBoundedTable(t *testing.T) {
	e := NewEFetch(2)
	siteA := uint32(0x1000)
	siteB := siteA + EFetchEntries<<1 // same slot, different tag
	e.Train(siteA, 0x9000)
	if got := e.Predict(siteA); got != 0x9000 {
		t.Fatalf("Predict(A) = %#x", got)
	}
	e.Train(siteB, 0xa000)
	if got := e.Predict(siteA); got != 0 {
		t.Fatalf("evicted site still predicts %#x", got)
	}
	if got := e.Predict(siteB); got != 0xa000 {
		t.Fatalf("Predict(B) = %#x", got)
	}
	// Retraining A reclaims the slot; last trainer wins, always.
	e.Train(siteA, 0x9000)
	if e.Predict(siteB) != 0 || e.Predict(siteA) != 0x9000 {
		t.Fatal("slot reclaim not deterministic")
	}
	// Table never grows: hammer many conflicting sites.
	for i := uint32(0); i < 10*EFetchEntries; i++ {
		e.Train(i<<1, 0x4000+i)
	}
	if len(e.table) != EFetchEntries {
		t.Fatalf("table grew to %d entries", len(e.table))
	}
}
