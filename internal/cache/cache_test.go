package cache

import (
	"testing"

	"critics/internal/dram"
)

func small() *Cache {
	return NewCache(Config{SizeBytes: 1024, Ways: 2, HitLat: 2}) // 8 sets
}

func TestCacheHitMiss(t *testing.T) {
	c := small()
	if hit, _ := c.Access(0x1000, 0); hit {
		t.Fatal("cold cache hit")
	}
	c.Install(0x1000, 10)
	hit, ready := c.Access(0x1000, 20)
	if !hit {
		t.Fatal("installed line missed")
	}
	if ready != 22 {
		t.Fatalf("ready = %d, want now+hitLat = 22", ready)
	}
	// Same line, different offset.
	if hit, _ := c.Access(0x1030, 20); !hit {
		t.Fatal("same-line access missed")
	}
	// Different line, same set region.
	if hit, _ := c.Access(0x2000, 20); hit {
		t.Fatal("different line hit")
	}
}

func TestCacheInFlightFill(t *testing.T) {
	c := small()
	c.Install(0x1000, 100) // fill completes at 100
	hit, ready := c.Access(0x1000, 50)
	if !hit {
		t.Fatal("in-flight line missed")
	}
	if ready != 100 {
		t.Fatalf("ready = %d, want fill completion 100", ready)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := small() // 2 ways, 8 sets; lines mapping to set 0: multiples of 8*64=512
	c.Install(0*512, 0)
	c.Install(1*512, 1)
	c.Access(0, 10) // touch line 0: line 512 is now LRU
	c.Install(2*512, 20)
	if !c.Probe(0) {
		t.Error("MRU line evicted")
	}
	if c.Probe(512) {
		t.Error("LRU line survived")
	}
	if !c.Probe(1024) {
		t.Error("new line absent")
	}
}

func TestMissRate(t *testing.T) {
	c := small()
	c.Access(0, 0)
	c.Install(0, 0)
	c.Access(0, 1)
	if got := c.MissRate(); got != 0.5 {
		t.Errorf("MissRate = %f", got)
	}
}

func TestCLPTDetectsStride(t *testing.T) {
	p := NewCLPT(64)
	pc := uint32(0x400)
	var pf uint32
	addr := uint32(0x10000)
	for i := 0; i < 6; i++ {
		pf = p.Train(pc, addr)
		addr += 64
	}
	if pf == 0 {
		t.Fatal("stride never detected")
	}
	if pf != addr-64+128 {
		t.Errorf("prefetch addr %#x, want two strides ahead %#x", pf, addr-64+128)
	}
	// Random pattern: confidence collapses.
	p2 := NewCLPT(64)
	addrs := []uint32{0x100, 0x9000, 0x44, 0x7700, 0x120, 0x9999}
	for _, a := range addrs {
		if got := p2.Train(pc, a); got != 0 {
			t.Errorf("prefetch issued on random pattern: %#x", got)
		}
	}
}

func TestEFetch(t *testing.T) {
	e := NewEFetch(4)
	if e.Predict(0x500) != 0 {
		t.Error("cold prediction")
	}
	e.Train(0x500, 0x9000)
	if got := e.Predict(0x500); got != 0x9000 {
		t.Errorf("Predict = %#x", got)
	}
	if e.Depth() != 4 {
		t.Error("depth lost")
	}
}

func TestHierarchyLatencyOrdering(t *testing.T) {
	h := NewHierarchy(DefaultHierConfig())
	// First access: full miss to DRAM.
	first := h.Data(0x40, 0x4000_0000, 0)
	if first < 30 {
		t.Errorf("cold miss completed at %d; should include DRAM latency", first)
	}
	// Second access: L1D hit.
	second := h.Data(0x40, 0x4000_0000, 1000)
	if second != 1000+2 {
		t.Errorf("L1D hit ready at %d, want 1002", second)
	}
	// Evicting from L1 but hitting L2 gives intermediate latency: access a
	// new line; then thrash L1D set... simpler: instruction path.
	iready := h.Instr(0x100, 0)
	if iready < 30 {
		t.Errorf("cold instr miss %d too fast", iready)
	}
	if got := h.Instr(0x100, 500); got != 502 {
		t.Errorf("warm instr access ready %d, want 502", got)
	}
}

func TestHierarchyPrefetchHidesLatency(t *testing.T) {
	h := NewHierarchy(DefaultHierConfig())
	h.PrefetchData(0x4000_1000, 0)
	// Demand access later: line should be present (possibly still
	// in flight) — far cheaper than a fresh DRAM round trip.
	ready := h.Data(0x80, 0x4000_1000, 200)
	if ready > 210 {
		t.Errorf("prefetched line still slow: ready %d at access 200", ready)
	}
}

func TestHierarchyInstrPrefetch(t *testing.T) {
	h := NewHierarchy(DefaultHierConfig())
	h.PrefetchInstr(0x2000, 0)
	if got := h.Instr(0x2000, 300); got != 302 {
		t.Errorf("prefetched instr line ready %d, want 302", got)
	}
}

func TestDRAMRowBehaviour(t *testing.T) {
	c := dram.New(dram.DefaultConfig())
	// First access opens a row.
	d1 := c.Access(0, 0) - 0
	// Same row: CAS only, cheaper.
	base := int64(1000)
	d2 := c.Access(64, base) - base
	if d2 >= d1 {
		t.Errorf("row hit %d not cheaper than activate %d", d2, d1)
	}
	// Row conflict in the same bank (different row, same bank index).
	conflictAddr := uint32(4096 * 16) // row 16 -> same bank (16 banks)
	base = 2000
	d3 := c.Access(conflictAddr, base) - base
	if d3 <= d2 {
		t.Errorf("row conflict %d not slower than row hit %d", d3, d2)
	}
	if c.RowHitRate() <= 0 {
		t.Error("no row hits recorded")
	}
}

func TestDRAMQueueing(t *testing.T) {
	c := dram.New(dram.DefaultConfig())
	// Two back-to-back requests to the same bank: the second queues.
	d1 := c.Access(0, 0)
	d2 := c.Access(64, 0)
	if d2 <= d1 {
		t.Errorf("second request (%d) did not queue behind first (%d)", d2, d1)
	}
}
