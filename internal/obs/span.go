package obs

import (
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"critics/internal/telemetry"
)

// Attr is one string key/value annotation on a span. String-valued on
// purpose: the JSON form is deterministic and diff-friendly.
type Attr struct {
	Key   string `json:"k"`
	Value string `json:"v"`
}

// A is shorthand for constructing an Attr.
func A(k, v string) Attr { return Attr{Key: k, Value: v} }

// Span is one timed operation in a job's trace. Ids are content-derived
// strings ("job", "compute", "b:measure acrobat/base#1a2b3c4d",
// "b:…#…:a2" for the second dispatch attempt), never allocation-ordered, so
// the span set of a run is reproducible. StartUS/DurUS are microseconds in
// the owning trace's time domain (Trace.Now); merged worker spans are
// rebased into the coordinator's domain before they are added.
type Span struct {
	ID     string `json:"id"`
	Parent string `json:"parent,omitempty"`
	Name   string `json:"name"`
	// Site is the executing node: "" for the coordinator/daemon itself, the
	// worker's base URL for merged remote spans.
	Site    string `json:"site,omitempty"`
	StartUS int64  `json:"start_us"`
	DurUS   int64  `json:"dur_us"`
	Attrs   []Attr `json:"attrs,omitempty"`
}

// BuildSpanID derives the span id of a memo build from its label and the
// first hex digits of its content key — the same inputs derive the same id
// on every run and on both sides of the wire.
func BuildSpanID(label, key8 string) string { return "b:" + label + "#" + key8 }

// maxSpans bounds a trace's span store; spans beyond it are counted in
// Dropped rather than retained (a runaway job must not hold the daemon's
// memory hostage).
const maxSpans = 4096

// Trace is one job's span store. All methods are safe for concurrent use;
// the zero value is not usable, construct with NewTrace.
type Trace struct {
	id    string
	start time.Time

	mu      sync.Mutex
	spans   []Span
	dropped int
	seqs    map[string]int

	hits   atomic.Int64 // memo hits observed under this trace
	misses atomic.Int64 // memo misses (builds) observed under this trace
}

// NewTrace starts an empty trace. id is the trace id — the job id on the
// coordinator, the propagated header value on a worker.
func NewTrace(id string) *Trace {
	return &Trace{id: id, start: time.Now()}
}

// ID returns the trace id.
func (t *Trace) ID() string { return t.id }

// Now returns microseconds since the trace started — the ts domain of this
// trace's spans.
func (t *Trace) Now() int64 { return time.Since(t.start).Microseconds() }

// Add records one span (bounded; overflow increments the dropped counter).
func (t *Trace) Add(s Span) {
	t.mu.Lock()
	if len(t.spans) >= maxSpans {
		t.dropped++
	} else {
		t.spans = append(t.spans, s)
	}
	t.mu.Unlock()
}

// Seq returns the next ordinal (1-based) for a span id prefix — used for
// sites whose operations are serialized within a job (the shard maps an
// experiment runs one after another), where call order IS deterministic and
// a content key is not available.
func (t *Trace) Seq(prefix string) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.seqs == nil {
		t.seqs = map[string]int{}
	}
	t.seqs[prefix]++
	return t.seqs[prefix]
}

// MemoHit / MemoMiss count memo outcomes attributed to this trace.
func (t *Trace) MemoHit()  { t.hits.Add(1) }
func (t *Trace) MemoMiss() { t.misses.Add(1) }

// Snapshot returns a copy of the recorded spans plus the drop counter.
func (t *Trace) Snapshot() (spans []Span, dropped int) {
	t.mu.Lock()
	spans = append([]Span(nil), t.spans...)
	dropped = t.dropped
	t.mu.Unlock()
	return spans, dropped
}

// Node is one span with its children, the tree form of a trace.
type Node struct {
	Span
	Children []*Node `json:"children,omitempty"`
}

// TraceDoc is the GET /v1/jobs/{id}/trace JSON document.
type TraceDoc struct {
	TraceID      string  `json:"trace_id"`
	MemoHits     int64   `json:"memo_hits"`
	MemoMisses   int64   `json:"memo_misses"`
	DroppedSpans int     `json:"dropped_spans,omitempty"`
	Spans        []*Node `json:"spans"`
}

// Tree assembles the span tree: spans sorted by id, children attached to
// their parents (spans whose parent is absent surface as roots), siblings
// in id order. Because ids are content-derived the document is byte-stable
// across runs modulo the timestamp fields.
func (t *Trace) Tree() *TraceDoc {
	spans, dropped := t.Snapshot()
	sort.Slice(spans, func(i, j int) bool { return spans[i].ID < spans[j].ID })
	nodes := make(map[string]*Node, len(spans))
	ids := make([]string, 0, len(spans))
	for i := range spans {
		// Duplicate ids (which the id scheme should prevent) keep the first
		// span and drop the rest rather than corrupting the tree.
		if _, dup := nodes[spans[i].ID]; !dup {
			nodes[spans[i].ID] = &Node{Span: spans[i]}
			ids = append(ids, spans[i].ID)
		}
	}
	doc := &TraceDoc{
		TraceID:      t.id,
		MemoHits:     t.hits.Load(),
		MemoMisses:   t.misses.Load(),
		DroppedSpans: dropped,
	}
	for _, id := range ids {
		n := nodes[id]
		if p := nodes[n.Parent]; p != nil && n.Parent != id {
			p.Children = append(p.Children, n)
		} else {
			doc.Spans = append(doc.Spans, n)
		}
	}
	return doc
}

// WriteChrome exports the trace as Chrome trace-event JSON (the same format
// as telemetry.Tracer's pipeline exports), loadable in Perfetto alongside
// PR 2's sim traces. Spans render in start order on auto-assigned lanes of
// one process track named after the trace.
func (t *Trace) WriteChrome(w io.Writer) error {
	spans, _ := t.Snapshot()
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].StartUS != spans[j].StartUS {
			return spans[i].StartUS < spans[j].StartUS
		}
		return spans[i].ID < spans[j].ID
	})
	tr := telemetry.NewTracer(w)
	tr.MetaProcessName(telemetry.EnginePID, "criticd job "+t.id)
	for _, s := range spans {
		args := make([]telemetry.Arg, 0, len(s.Attrs)+2)
		args = append(args, telemetry.Str("id", s.ID))
		if s.Site != "" {
			args = append(args, telemetry.Str("site", s.Site))
		}
		for _, a := range s.Attrs {
			args = append(args, telemetry.Str(a.Key, a.Value))
		}
		tr.Span(telemetry.EnginePID, s.Name, "obs", s.StartUS, s.DurUS, args...)
	}
	return tr.Close()
}

// Merge rebases and adds spans recorded in another time domain (a worker's
// trace): each id and non-empty parent is prefixed with prefix+"/", an
// empty parent is replaced by prefix itself (hanging the remote subtree
// under the dispatch span that sent it), timestamps are shifted by baseUS,
// and site is stamped on spans that do not carry one.
func (t *Trace) Merge(prefix, site string, baseUS int64, spans []Span) {
	for _, s := range spans {
		s.ID = prefix + "/" + s.ID
		if s.Parent == "" {
			s.Parent = prefix
		} else {
			s.Parent = prefix + "/" + s.Parent
		}
		s.StartUS += baseUS
		if s.Site == "" {
			s.Site = site
		}
		t.Add(s)
	}
}

// defaultRecorderCap bounds how many job traces the recorder retains.
const defaultRecorderCap = 256

// Recorder holds the traces of recent jobs, evicting the oldest past its
// capacity. Safe for concurrent use.
type Recorder struct {
	mu     sync.Mutex
	traces map[string]*Trace
	order  []string
	cap    int
}

// NewRecorder builds a recorder retaining up to capacity traces (<= 0
// selects the default).
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = defaultRecorderCap
	}
	return &Recorder{traces: map[string]*Trace{}, cap: capacity}
}

// Start begins (or returns the existing) trace for a job id.
func (r *Recorder) Start(jobID string) *Trace {
	r.mu.Lock()
	defer r.mu.Unlock()
	if t := r.traces[jobID]; t != nil {
		return t
	}
	if len(r.order) >= r.cap {
		delete(r.traces, r.order[0])
		r.order = r.order[1:]
	}
	t := NewTrace(jobID)
	r.traces[jobID] = t
	r.order = append(r.order, jobID)
	return t
}

// Get returns a job's trace, or nil when none is retained.
func (r *Recorder) Get(jobID string) *Trace {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.traces[jobID]
}
