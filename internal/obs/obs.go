// Package obs is the fleet observability layer of criticd: distributed
// tracing, a flight recorder, and SLO latency instrumentation, built on the
// same zero-external-dependency principles as internal/telemetry.
//
// Three pillars:
//
//   - Tracing (span.go): a per-job Trace collects Spans — admission, queue
//     wait, compute, memo builds, dispatch/retry/hedge legs, remote worker
//     compute — into one tree retrievable at GET /v1/jobs/{id}/trace. The
//     trace context rides through the engine on context.Context values
//     (ContextWith / FromContext) and across the /dist/v1 wire as the
//     TraceHeader / ParentHeader HTTP headers; worker-side spans come back
//     in the task result and are merged (id-prefixed, time-rebased) under
//     the dispatch span that sent them. Span ids are derived from content
//     (memo keys, attempt ordinals), never from allocation order, so the
//     tree is byte-stable across runs modulo timestamps.
//   - Flight recorder (flight.go): a bounded lock-free ring of structured
//     job-lifecycle events (admitted, dequeued, dispatched, retried, hedged,
//     completed, failed, drained) served at GET /debug/events and dumped on
//     job failure, so postmortems need no log scraping.
//   - SLO instrumentation (slo.go, promtext.go): stage-level latency
//     histograms (queue wait, dispatch RTT, compute, end-to-end) with
//     exemplar trace ids on slow buckets, plus the target parsing and
//     histogram-quantile evaluation behind `criticctl slo`.
//
// Everything is nil-tolerant: a nil *Observer (or a context without a
// trace) disables the whole layer at the cost of one pointer check per
// instrumentation site.
package obs

import (
	"context"

	"critics/internal/telemetry"
)

// Wire headers propagating trace context on coordinator→worker task posts.
const (
	// TraceHeader carries the trace id (the job id on the coordinator).
	TraceHeader = "X-Critics-Trace"
	// ParentHeader carries the span id the worker's spans hang under.
	ParentHeader = "X-Critics-Parent"
)

// Observer bundles the three pillars for wiring through server and dist.
// A nil *Observer disables all of them.
type Observer struct {
	Rec    *Recorder
	Ring   *Ring
	Stages *Stages
}

// NewObserver builds an enabled observer; reg may be nil (SLO histograms
// are then skipped while tracing and the flight recorder still work).
func NewObserver(reg *telemetry.Registry) *Observer {
	return &Observer{
		Rec:    NewRecorder(0),
		Ring:   NewRing(0),
		Stages: NewStages(reg),
	}
}

// ctxKey keys the trace context value.
type ctxKey struct{}

// ctxVal is the propagated pair: the job's trace and the span id new child
// spans should parent to.
type ctxVal struct {
	t      *Trace
	parent string
}

// ContextWith returns ctx carrying (t, parent) for downstream
// instrumentation sites. A nil t returns ctx unchanged.
func ContextWith(ctx context.Context, t *Trace, parent string) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, ctxVal{t: t, parent: parent})
}

// FromContext extracts the trace and parent span id, or ok=false when ctx
// carries none (including a nil ctx).
func FromContext(ctx context.Context) (t *Trace, parent string, ok bool) {
	if ctx == nil {
		return nil, "", false
	}
	v, ok := ctx.Value(ctxKey{}).(ctxVal)
	return v.t, v.parent, ok
}
