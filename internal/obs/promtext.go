package obs

import (
	"bufio"
	"math"
	"sort"
	"strconv"
	"strings"
)

// This file is the client-side half of the SLO pillar: a minimal Prometheus
// text-format reader sufficient for `criticctl slo` and `criticctl top` to
// interrogate a /metrics scrape without any external dependency. It handles
// exactly what internal/telemetry emits: "name{labels} value" samples,
// optional " # {trace_id=...} v" exemplar annotations, and comment lines.

// sortStrings is a local alias so slo.go need not import sort itself.
func sortStrings(s []string) { sort.Strings(s) }

// ParseStageHistograms extracts the <family>_bucket series from a metrics
// exposition, keyed by the given label's value. Returns one BucketCDF per
// key with bounds ascending (+Inf last) and cumulative counts.
func ParseStageHistograms(text, family, label string) map[string]*BucketCDF {
	type sample struct {
		le       float64
		count    int64
		exemplar string
	}
	byKey := map[string][]sample{}
	sc := bufio.NewScanner(strings.NewReader(text))
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	prefix := family + "_bucket{"
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, prefix) {
			continue
		}
		name, labels, value, exemplar, ok := parseSample(line)
		if !ok || name != family+"_bucket" {
			continue
		}
		key := labels[label]
		leStr, ok := labels["le"]
		if !ok {
			continue
		}
		le := math.Inf(1)
		if leStr != "+Inf" {
			v, err := strconv.ParseFloat(leStr, 64)
			if err != nil {
				continue
			}
			le = v
		}
		count, err := strconv.ParseInt(value, 10, 64)
		if err != nil {
			continue
		}
		byKey[key] = append(byKey[key], sample{le: le, count: count, exemplar: exemplar})
	}
	out := make(map[string]*BucketCDF, len(byKey))
	for key, ss := range byKey {
		sort.Slice(ss, func(i, j int) bool { return ss[i].le < ss[j].le })
		cdf := &BucketCDF{
			Bounds:    make([]float64, len(ss)),
			Counts:    make([]int64, len(ss)),
			Exemplars: make([]string, len(ss)),
		}
		for i, s := range ss {
			cdf.Bounds[i] = s.le
			cdf.Counts[i] = s.count
			cdf.Exemplars[i] = s.exemplar
		}
		out[key] = cdf
	}
	return out
}

// MetricValue returns the value of the first sample whose name matches and
// whose labels contain every pair in want (nil matches any labels).
func MetricValue(text, name string, want map[string]string) (float64, bool) {
	sc := bufio.NewScanner(strings.NewReader(text))
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, name) {
			continue
		}
		n, labels, value, _, ok := parseSample(line)
		if !ok || n != name {
			continue
		}
		match := true
		for k, v := range want {
			if labels[k] != v {
				match = false
				break
			}
		}
		if !match {
			continue
		}
		v, err := strconv.ParseFloat(value, 64)
		if err != nil {
			return 0, false
		}
		return v, true
	}
	return 0, false
}

// MetricSum sums every sample of a family across its label sets — e.g. all
// outcomes of critics_server_jobs_total.
func MetricSum(text, name string) float64 {
	var sum float64
	sc := bufio.NewScanner(strings.NewReader(text))
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	for sc.Scan() {
		n, _, value, _, ok := parseSample(sc.Text())
		if !ok || n != name {
			continue
		}
		if v, err := strconv.ParseFloat(value, 64); err == nil {
			sum += v
		}
	}
	return sum
}

// parseSample splits one exposition line into name, label map, value and
// exemplar trace id. Comment and blank lines report ok=false.
func parseSample(line string) (name string, labels map[string]string, value, exemplar string, ok bool) {
	if line == "" || strings.HasPrefix(line, "#") {
		return "", nil, "", "", false
	}
	// Strip a trailing exemplar annotation: `... # {trace_id="j1"} 0.43`.
	if body, ex, found := strings.Cut(line, " # "); found {
		line = body
		if rest, fnd := strings.CutPrefix(ex, `{trace_id="`); fnd {
			if id, _, fnd2 := strings.Cut(rest, `"`); fnd2 {
				exemplar = id
			}
		}
	}
	nameEnd := strings.IndexAny(line, "{ ")
	if nameEnd < 0 {
		return "", nil, "", "", false
	}
	name = line[:nameEnd]
	rest := line[nameEnd:]
	labels = map[string]string{}
	if rest[0] == '{' {
		close := strings.Index(rest, "}")
		if close < 0 {
			return "", nil, "", "", false
		}
		for _, pair := range splitLabelPairs(rest[1:close]) {
			k, v, found := strings.Cut(pair, "=")
			if !found {
				continue
			}
			labels[k] = unquoteLabel(v)
		}
		rest = rest[close+1:]
	}
	value = strings.TrimSpace(rest)
	if value == "" {
		return "", nil, "", "", false
	}
	return name, labels, value, exemplar, true
}

// splitLabelPairs splits `k1="v1",k2="v2"` on commas outside quotes.
func splitLabelPairs(s string) []string {
	var out []string
	depth := false // inside quotes
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++ // skip escaped char
		case '"':
			depth = !depth
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}

// unquoteLabel strips surrounding quotes and unescapes \" \\ \n.
func unquoteLabel(v string) string {
	v = strings.TrimPrefix(v, `"`)
	v = strings.TrimSuffix(v, `"`)
	r := strings.NewReplacer(`\"`, `"`, `\\`, `\`, `\n`, "\n")
	return r.Replace(v)
}
