package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"

	"critics/internal/telemetry"
)

// TestTraceTreeDeterministic adds spans in two different orders and checks
// the tree documents are identical modulo nothing — same spans, same ids,
// same structure — the byte-stability property the trace endpoint relies
// on.
func TestTraceTreeDeterministic(t *testing.T) {
	spans := []Span{
		{ID: "job", Name: "job", StartUS: 0, DurUS: 100},
		{ID: "queue", Parent: "job", Name: "queue-wait", StartUS: 0, DurUS: 10},
		{ID: "compute", Parent: "job", Name: "compute", StartUS: 10, DurUS: 90},
		{ID: "b:measure a/base#11aa22bb", Parent: "compute", Name: "build", StartUS: 12, DurUS: 40},
		{ID: "b:measure a/base#11aa22bb:a1", Parent: "b:measure a/base#11aa22bb", Name: "dispatch", StartUS: 13, DurUS: 20},
		{ID: "b:measure a/base#11aa22bb:a2", Parent: "b:measure a/base#11aa22bb", Name: "retry", StartUS: 35, DurUS: 10},
	}
	marshal := func(order []int) string {
		tr := NewTrace("j1")
		for _, i := range order {
			tr.Add(spans[i])
		}
		b, err := json.Marshal(tr.Tree())
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	a := marshal([]int{0, 1, 2, 3, 4, 5})
	b := marshal([]int{5, 3, 1, 4, 2, 0})
	if a != b {
		t.Errorf("tree depends on insertion order:\n%s\n%s", a, b)
	}
	var doc TraceDoc
	if err := json.Unmarshal([]byte(a), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Spans) != 1 || doc.Spans[0].ID != "job" {
		t.Fatalf("want single root 'job', got %s", a)
	}
	if len(doc.Spans[0].Children) != 2 {
		t.Fatalf("job children = %d, want 2 (compute, queue)", len(doc.Spans[0].Children))
	}
	// Sibling order is id order, not time order.
	if doc.Spans[0].Children[0].ID != "compute" {
		t.Errorf("first child = %s, want compute", doc.Spans[0].Children[0].ID)
	}
}

// TestTraceMerge checks worker spans land under the dispatch span with
// prefixed ids, rebased timestamps and the worker site stamped on.
func TestTraceMerge(t *testing.T) {
	tr := NewTrace("j2")
	tr.Add(Span{ID: "d:a1", Name: "dispatch", StartUS: 1000, DurUS: 500})
	tr.Merge("d:a1", "http://w1:9721", 1000, []Span{
		{ID: "c", Name: "remote-compute", StartUS: 5, DurUS: 400},
		{ID: "c/b:x#00ff00ff", Parent: "c", Name: "build", StartUS: 10, DurUS: 300},
	})
	spans, _ := tr.Snapshot()
	if len(spans) != 3 {
		t.Fatalf("spans = %d, want 3", len(spans))
	}
	byID := map[string]Span{}
	for _, s := range spans {
		byID[s.ID] = s
	}
	c, ok := byID["d:a1/c"]
	if !ok || c.Parent != "d:a1" || c.StartUS != 1005 || c.Site != "http://w1:9721" {
		t.Errorf("merged compute span wrong: %+v", c)
	}
	n, ok := byID["d:a1/c/b:x#00ff00ff"]
	if !ok || n.Parent != "d:a1/c" {
		t.Errorf("merged nested span wrong: %+v", n)
	}
}

// TestTraceBounded checks the span store stops at maxSpans and counts the
// overflow instead of growing.
func TestTraceBounded(t *testing.T) {
	tr := NewTrace("j3")
	for i := 0; i < maxSpans+10; i++ {
		tr.Add(Span{ID: "s", Name: "s"})
	}
	spans, dropped := tr.Snapshot()
	if len(spans) != maxSpans || dropped != 10 {
		t.Errorf("spans=%d dropped=%d, want %d/10", len(spans), dropped, maxSpans)
	}
}

// TestTraceChromeExport checks the Perfetto export is valid JSON with one
// event per span plus process metadata.
func TestTraceChromeExport(t *testing.T) {
	tr := NewTrace("j4")
	tr.Add(Span{ID: "job", Name: "job", StartUS: 0, DurUS: 50})
	tr.Add(Span{ID: "compute", Parent: "job", Name: "compute", Site: "http://w1", StartUS: 5, DurUS: 40,
		Attrs: []Attr{A("kind", "optimize")}})
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(doc.TraceEvents) != 3 { // process_name meta + 2 spans
		t.Errorf("events = %d, want 3", len(doc.TraceEvents))
	}
}

// TestRingConcurrent hammers the flight recorder from many goroutines with
// concurrent snapshots — the lock-freedom proof under -race.
func TestRingConcurrent(t *testing.T) {
	r := NewRing(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Append("job-"+string(rune('a'+g)), EvDispatched, "w1")
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			_ = r.Snapshot("")
		}
	}()
	wg.Wait()
	all := r.Snapshot("")
	if len(all) != 64 {
		t.Errorf("retained = %d, want 64 (ring size)", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i].Seq <= all[i-1].Seq {
			t.Errorf("snapshot not seq-ordered at %d", i)
		}
	}
	one := r.Snapshot("job-a")
	for _, e := range one {
		if e.Job != "job-a" {
			t.Errorf("filter leaked %q", e.Job)
		}
	}
}

// TestContextPropagation round-trips the trace through a context.
func TestContextPropagation(t *testing.T) {
	if _, _, ok := FromContext(context.Background()); ok {
		t.Error("empty context reported a trace")
	}
	if _, _, ok := FromContext(nil); ok {
		t.Error("nil context reported a trace")
	}
	tr := NewTrace("j5")
	ctx := ContextWith(context.Background(), tr, "compute")
	got, parent, ok := FromContext(ctx)
	if !ok || got != tr || parent != "compute" {
		t.Errorf("FromContext = (%v, %q, %v)", got, parent, ok)
	}
	if ContextWith(context.Background(), nil, "x") != context.Background() {
		t.Error("nil trace should leave ctx unchanged")
	}
}

// TestParseTarget covers the slo target grammar.
func TestParseTarget(t *testing.T) {
	tg, err := ParseTarget("e2e:p95<=2.5s")
	if err != nil || tg.Stage != "e2e" || tg.Q != 0.95 || tg.Bound != 2.5 {
		t.Errorf("ParseTarget = %+v, %v", tg, err)
	}
	tg, err = ParseTarget("queue_wait:p50<=100ms")
	if err != nil || tg.Stage != "queue_wait" || tg.Q != 0.50 || tg.Bound != 0.1 {
		t.Errorf("ParseTarget = %+v, %v", tg, err)
	}
	for _, bad := range []string{"", "e2e", "e2e:95<=1s", "e2e:p95<=x", "e2e:p0<=1s", ":p95<=1s", "e2e:p101<=1s"} {
		if _, err := ParseTarget(bad); err == nil {
			t.Errorf("ParseTarget(%q) accepted", bad)
		}
	}
}

// TestQuantileAndEvaluate checks the bucket-quantile estimate and the
// violation logic end to end over a real registry scrape.
func TestQuantileAndEvaluate(t *testing.T) {
	reg := telemetry.NewRegistry()
	st := NewStages(reg)
	// 90 fast (≤4ms bucket), 10 slow (≤1.024s bucket): p50 estimates 0.004,
	// p95 estimates 1.024.
	for i := 0; i < 90; i++ {
		st.Observe(StageE2E, 0.002, "fast-job")
	}
	for i := 0; i < 10; i++ {
		st.Observe(StageE2E, 0.9, "slow-job")
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	stages := ParseStageHistograms(buf.String(), SLOFamily, "stage")
	cdf := stages[StageE2E]
	if cdf == nil {
		t.Fatalf("no e2e stage parsed from:\n%s", buf.String())
	}
	if cdf.Count() != 100 {
		t.Errorf("count = %d, want 100", cdf.Count())
	}
	if q := cdf.Quantile(0.50); q != 0.004 {
		t.Errorf("p50 = %g, want 0.004", q)
	}
	if q := cdf.Quantile(0.95); q != 1.024 {
		t.Errorf("p95 = %g, want 1.024", q)
	}
	// Generous target passes.
	v, err := Evaluate([]Target{{Stage: StageE2E, Q: 0.95, Bound: 60}}, stages)
	if err != nil || len(v) != 0 {
		t.Errorf("generous target: violations=%v err=%v", v, err)
	}
	// Tight target fails with the slow exemplar attached.
	v, err = Evaluate([]Target{{Stage: StageE2E, Q: 0.95, Bound: 0.01}}, stages)
	if err != nil || len(v) != 1 {
		t.Fatalf("tight target: violations=%v err=%v", v, err)
	}
	if v[0].Exemplar != "slow-job" {
		t.Errorf("violation exemplar = %q, want slow-job", v[0].Exemplar)
	}
	if !strings.Contains(v[0].String(), "e2e p95") {
		t.Errorf("violation string = %q", v[0].String())
	}
	// Asserting on a stage with no data errors instead of passing.
	if _, err := Evaluate([]Target{{Stage: "nope", Q: 0.5, Bound: 1}}, stages); err == nil {
		t.Error("missing stage should error")
	}
}

// TestQuantileEdgeCases pins the +Inf and empty behaviors.
func TestQuantileEdgeCases(t *testing.T) {
	empty := &BucketCDF{Bounds: []float64{1, math.Inf(1)}, Counts: []int64{0, 0}, Exemplars: []string{"", ""}}
	if q := empty.Quantile(0.5); !math.IsNaN(q) {
		t.Errorf("empty quantile = %g, want NaN", q)
	}
	over := &BucketCDF{Bounds: []float64{1, math.Inf(1)}, Counts: []int64{0, 5}, Exemplars: []string{"", "j9"}}
	if q := over.Quantile(0.5); !math.IsInf(q, 1) {
		t.Errorf("overflow quantile = %g, want +Inf", q)
	}
	if ex := over.ExemplarNear(0.5); ex != "j9" {
		t.Errorf("overflow exemplar = %q, want j9", ex)
	}
}

// TestMetricValue covers the generic sample reader criticctl top uses.
func TestMetricValue(t *testing.T) {
	text := `# HELP critics_server_queue_depth x
# TYPE critics_server_queue_depth gauge
critics_server_queue_depth 3
critics_dist_worker_inflight{worker="http://w1:9721"} 2
critics_server_jobs_total{outcome="succeeded"} 9
critics_server_jobs_total{outcome="failed"} 2
critics_slo_stage_seconds_bucket{stage="e2e",le="+Inf"} 4 # {trace_id="j3"} 300
`
	if v, ok := MetricValue(text, "critics_server_queue_depth", nil); !ok || v != 3 {
		t.Errorf("queue depth = %g, %v", v, ok)
	}
	if v, ok := MetricValue(text, "critics_dist_worker_inflight", map[string]string{"worker": "http://w1:9721"}); !ok || v != 2 {
		t.Errorf("inflight = %g, %v", v, ok)
	}
	if _, ok := MetricValue(text, "critics_dist_worker_inflight", map[string]string{"worker": "http://w2"}); ok {
		t.Error("label mismatch matched")
	}
	if sum := MetricSum(text, "critics_server_jobs_total"); sum != 11 {
		t.Errorf("jobs sum = %g, want 11", sum)
	}
	// The exemplar-annotated line still parses.
	if v, ok := MetricValue(text, "critics_slo_stage_seconds_bucket", map[string]string{"le": "+Inf"}); !ok || v != 4 {
		t.Errorf("bucket with exemplar = %g, %v", v, ok)
	}
}

// TestRecorderEviction checks the recorder retains at most its capacity,
// oldest first out, and Start is idempotent per job.
func TestRecorderEviction(t *testing.T) {
	r := NewRecorder(2)
	t1 := r.Start("j1")
	if r.Start("j1") != t1 {
		t.Error("Start not idempotent")
	}
	r.Start("j2")
	r.Start("j3")
	if r.Get("j1") != nil {
		t.Error("j1 should be evicted")
	}
	if r.Get("j3") == nil || r.Get("j2") == nil {
		t.Error("recent traces missing")
	}
}

// TestObserverNil checks every pillar tolerates the disabled state.
func TestObserverNil(t *testing.T) {
	var s *Stages
	s.Observe(StageE2E, 1, "j") // must not panic
	if NewStages(nil) != nil {
		t.Error("NewStages(nil) should be nil")
	}
	o := NewObserver(nil)
	if o.Rec == nil || o.Ring == nil {
		t.Error("observer pillars missing")
	}
}
