package obs

import (
	"sort"
	"sync/atomic"
	"time"
)

// Event is one structured job-lifecycle record in the flight recorder.
type Event struct {
	Seq    uint64    `json:"seq"`
	Time   time.Time `json:"time"`
	Job    string    `json:"job"`
	Type   string    `json:"type"`
	Detail string    `json:"detail,omitempty"`
}

// Event types appended by server and dist. Kept as constants so the CI
// smoke and the docs reference the same vocabulary.
const (
	EvAdmitted   = "admitted"
	EvDequeued   = "dequeued"
	EvDispatched = "dispatched"
	EvRetried    = "retried"
	EvHedged     = "hedged"
	EvFallback   = "local-fallback"
	EvCompleted  = "completed"
	EvFailed     = "failed"
	EvCanceled   = "canceled"
	EvDrained    = "drained"

	// Fleet ingest events (internal/fleet), recorded under the "fleet:<app>"
	// key rather than a job id.
	EvSketchMerged   = "sketch-merged"
	EvSketchRejected = "sketch-rejected"
	EvGeneration     = "generation"
	EvConverged      = "converged"
)

// defaultRingSize is the flight recorder's bound: new events overwrite the
// oldest once full.
const defaultRingSize = 4096

// Ring is a bounded lock-free ring of events. Appenders claim a slot with
// one atomic add and store an immutable event pointer into it; readers load
// the pointers without coordination, so an Append never blocks a job and a
// Snapshot never blocks an appender. A reader racing an appender may miss
// the very newest events — fine for a postmortem recorder.
type Ring struct {
	slots []atomic.Pointer[Event]
	head  atomic.Uint64
}

// NewRing builds a ring with n slots (<= 0 selects the default).
func NewRing(n int) *Ring {
	if n <= 0 {
		n = defaultRingSize
	}
	return &Ring{slots: make([]atomic.Pointer[Event], n)}
}

// Append records one event.
func (r *Ring) Append(job, typ, detail string) {
	seq := r.head.Add(1) - 1
	e := &Event{Seq: seq, Time: time.Now(), Job: job, Type: typ, Detail: detail}
	r.slots[seq%uint64(len(r.slots))].Store(e)
}

// Snapshot returns the retained events in sequence order; job != "" filters
// to one job's events.
func (r *Ring) Snapshot(job string) []Event {
	out := make([]Event, 0, len(r.slots))
	for i := range r.slots {
		e := r.slots[i].Load()
		if e == nil || (job != "" && e.Job != job) {
			continue
		}
		out = append(out, *e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}
