package obs

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"

	"critics/internal/telemetry"
)

// SLOFamily is the stage-latency histogram family name; its exposition
// shape (including exemplars) is pinned by the telemetry golden test.
const SLOFamily = "critics_slo_stage_seconds"

// Stage labels observed by server (queue_wait, compute, e2e) and the dist
// coordinator (dispatch_rtt).
const (
	StageQueueWait   = "queue_wait"
	StageDispatchRTT = "dispatch_rtt"
	StageCompute     = "compute"
	StageE2E         = "e2e"
)

// sloBuckets cover 1ms..~260s — queue waits through full experiment jobs.
var sloBuckets = telemetry.ExpBuckets(0.001, 4, 10)

// Stages observes stage-level job latencies with exemplar trace ids, the
// raw material for `criticctl slo`. A nil *Stages (or one built over a nil
// registry) discards observations.
type Stages struct {
	reg *telemetry.Registry
}

// NewStages builds the stage observer on reg (nil disables it).
func NewStages(reg *telemetry.Registry) *Stages {
	if reg == nil {
		return nil
	}
	return &Stages{reg: reg}
}

// Observe records one stage latency, attaching traceID as the bucket's
// exemplar so a slow bucket points at a concrete job trace.
func (s *Stages) Observe(stage string, seconds float64, traceID string) {
	if s == nil {
		return
	}
	s.reg.Histogram(SLOFamily, "Job latency by stage.", sloBuckets,
		telemetry.L("stage", stage)).ObserveExemplar(seconds, traceID)
}

// Target is one parsed SLO assertion: quantile Q of a stage's latency must
// not exceed Bound seconds.
type Target struct {
	Stage string
	Q     float64 // e.g. 0.95
	Bound float64 // seconds
}

// ParseTarget parses "stage:pN<=dur", e.g. "e2e:p95<=2.5s",
// "queue_wait:p50<=100ms".
func ParseTarget(s string) (Target, error) {
	stage, rest, ok := strings.Cut(s, ":")
	if !ok || stage == "" {
		return Target{}, fmt.Errorf("slo target %q: want stage:pN<=duration", s)
	}
	q, bound, ok := strings.Cut(rest, "<=")
	if !ok || !strings.HasPrefix(q, "p") {
		return Target{}, fmt.Errorf("slo target %q: want stage:pN<=duration", s)
	}
	pct, err := strconv.ParseFloat(q[1:], 64)
	if err != nil || pct <= 0 || pct > 100 {
		return Target{}, fmt.Errorf("slo target %q: bad percentile %q", s, q)
	}
	d, err := time.ParseDuration(bound)
	if err != nil || d <= 0 {
		return Target{}, fmt.Errorf("slo target %q: bad duration %q", s, bound)
	}
	return Target{Stage: stage, Q: pct / 100, Bound: d.Seconds()}, nil
}

// BucketCDF is one histogram series in scraped form: ascending upper bounds
// (the last is +Inf) with cumulative counts, as parsed from /metrics text.
type BucketCDF struct {
	Bounds []float64 // upper bounds; Bounds[len-1] is math.Inf(1)
	Counts []int64   // cumulative, same length
	// Exemplars holds the trace id annotated on each bucket ("" = none).
	Exemplars []string
}

// Count returns total observations (the +Inf cumulative count).
func (b *BucketCDF) Count() int64 {
	if len(b.Counts) == 0 {
		return 0
	}
	return b.Counts[len(b.Counts)-1]
}

// Quantile returns the standard histogram estimate of quantile q: the upper
// bound of the bucket containing the rank (a conservative over-estimate,
// +Inf when the rank lands in the overflow bucket). NaN with no
// observations.
func (b *BucketCDF) Quantile(q float64) float64 {
	total := b.Count()
	if total == 0 {
		return math.NaN()
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	for i, c := range b.Counts {
		if c >= rank {
			return b.Bounds[i]
		}
	}
	return math.Inf(1)
}

// ExemplarNear returns the exemplar trace id of the first bucket at or
// beyond where quantile q lands — the concrete slow job behind a violated
// target ("" when no exemplar was recorded that high).
func (b *BucketCDF) ExemplarNear(q float64) string {
	total := b.Count()
	if total == 0 {
		return ""
	}
	rank := int64(math.Ceil(q * float64(total)))
	for i, c := range b.Counts {
		if c >= rank {
			for ; i < len(b.Exemplars); i++ {
				if b.Exemplars[i] != "" {
					return b.Exemplars[i]
				}
			}
			return ""
		}
	}
	return ""
}

// Violation is one failed SLO assertion.
type Violation struct {
	Target   Target
	Observed float64 // estimated quantile, seconds
	Count    int64
	Exemplar string // trace id near the offending bucket, "" when none
}

func (v Violation) String() string {
	ex := ""
	if v.Exemplar != "" {
		ex = " (e.g. trace " + v.Exemplar + ")"
	}
	return fmt.Sprintf("%s p%g = %.4gs > %.4gs target over %d observations%s",
		v.Target.Stage, v.Target.Q*100, v.Observed, v.Target.Bound, v.Count, ex)
}

// Evaluate checks targets against scraped stage histograms (keyed by stage
// label, as returned by ParseStageHistograms). A target whose stage has no
// observations is an error — asserting on nothing must not pass silently.
func Evaluate(targets []Target, stages map[string]*BucketCDF) ([]Violation, error) {
	var out []Violation
	for _, tg := range targets {
		cdf := stages[tg.Stage]
		if cdf == nil || cdf.Count() == 0 {
			return nil, fmt.Errorf("slo: no %q observations in scrape (stages present: %s)",
				tg.Stage, strings.Join(stageNames(stages), ", "))
		}
		if est := cdf.Quantile(tg.Q); est > tg.Bound {
			out = append(out, Violation{
				Target: tg, Observed: est, Count: cdf.Count(),
				Exemplar: cdf.ExemplarNear(tg.Q),
			})
		}
	}
	return out, nil
}

func stageNames(stages map[string]*BucketCDF) []string {
	names := make([]string, 0, len(stages))
	for n := range stages {
		names = append(names, n)
	}
	sortStrings(names)
	return names
}
