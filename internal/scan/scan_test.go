package scan

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"critics/internal/binimg"
	"critics/internal/trace"
	"critics/internal/workload"
)

// appImage assembles a catalog app and generates n dynamic addresses from
// its trace — the same inputs a real scan uploads.
func appImage(t testing.TB, n int) (img []byte, addrs []uint32) {
	t.Helper()
	app := workload.MobileApps()[0]
	p := workload.Generate(app.Params)
	img, err := binimg.Assemble(p)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	g := trace.NewGenerator(p, app.Params.Seed)
	dyns := g.Generate(nil, n)
	addrs = make([]uint32, len(dyns))
	for i := range dyns {
		addrs[i] = dyns[i].Addr
	}
	return img, addrs
}

func TestTraceRoundTrip(t *testing.T) {
	addrs := []uint32{0, 4, 8, 2, 0xfffffffe, 12, 12}
	data := TraceBytes(addrs, 3)
	tr, err := NewTraceReader(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("NewTraceReader: %v", err)
	}
	if tr.Chunks() != 3 {
		t.Fatalf("Chunks = %d, want 3", tr.Chunks())
	}
	var got []uint32
	var idxs []int
	for {
		ci, chunk, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		idxs = append(idxs, ci)
		got = append(got, chunk...)
	}
	if len(got) != len(addrs) {
		t.Fatalf("decoded %d addrs, want %d", len(got), len(addrs))
	}
	for i := range addrs {
		if got[i] != addrs[i] {
			t.Fatalf("addr %d = %#x, want %#x", i, got[i], addrs[i])
		}
	}
	for i, ci := range idxs {
		if ci != i {
			t.Fatalf("chunk order %v", idxs)
		}
	}
}

func TestTraceReaderRejectsGarbage(t *testing.T) {
	for _, tc := range [][]byte{
		nil,
		[]byte("CTRC"),     // truncated header
		[]byte("XXXX\x01"), // bad magic
		[]byte("CTRC\x07"), // unknown version
		append([]byte("CTRC\x01"), 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01), // absurd chunk count
	} {
		if tr, err := NewTraceReader(bytes.NewReader(tc)); err == nil {
			if _, _, err := tr.Next(); err == nil {
				t.Errorf("trace %q accepted", tc)
			}
		}
	}
	// A chunk that declares more addresses than the stream carries.
	data := append([]byte("CTRC\x01"), 1, 0xc8, 0x01) // 1 chunk of 200 addrs, no bytes behind them
	tr, err := NewTraceReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := tr.Next(); err == nil || !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("truncated chunk: err = %v", err)
	}
}

func TestBuildIndexStreams(t *testing.T) {
	img, _ := appImage(t, 0)
	idx, err := BuildIndex(bytes.NewReader(img))
	if err != nil {
		t.Fatalf("BuildIndex: %v", err)
	}
	if idx.Instrs == 0 {
		t.Fatalf("empty index from a real image")
	}
	decoded, err := binimg.Decode(img)
	if err != nil {
		t.Fatal(err)
	}
	if idx.Instrs != len(decoded) {
		t.Fatalf("index has %d instrs, Decode produced %d", idx.Instrs, len(decoded))
	}
}

func TestRunFindsOpportunities(t *testing.T) {
	img, addrs := appImage(t, 20000)
	rep, err := Run(bytes.NewReader(img), bytes.NewReader(TraceBytes(addrs, 0)),
		"sha256:img", "sha256:trc", Options{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Instrs != int64(len(addrs)) {
		t.Fatalf("scored %d instrs, want %d (unknown=%d)", rep.Instrs, len(addrs), rep.Unknown)
	}
	if rep.Unknown != 0 {
		t.Fatalf("%d unknown addrs scanning the image's own trace", rep.Unknown)
	}
	// The catalog's mobile apps are built to be CritIC-rich (the paper's
	// premise); an unoptimized binary must show missed opportunities.
	if len(rep.Opportunities) == 0 {
		t.Fatalf("no missed CritICs found in an unoptimized image")
	}
	if rep.SavedBytes <= 0 || rep.SpeedupPPM <= 0 {
		t.Fatalf("non-positive savings: %d bytes, %d ppm", rep.SavedBytes, rep.SpeedupPPM)
	}
	for _, op := range rep.Opportunities {
		if op.AvgFanoutMilli < 8000 {
			t.Fatalf("opportunity below the fanout threshold: %+v", op)
		}
	}
}

// TestChunkScoringPositionIndependent is the determinism keystone: scoring a
// chunk must not depend on which worker scores it or what came before —
// producer tracking resets at chunk boundaries.
func TestChunkScoringPositionIndependent(t *testing.T) {
	img, addrs := appImage(t, 8192)
	idx, err := BuildIndex(bytes.NewReader(img))
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{}.withDefaults()
	chunk := addrs[2048:3072] // an interior chunk

	a := ScoreChunk(idx, 2, chunk, opt)
	b := ScoreChunk(idx, 2, chunk, opt) // again, different call context
	if len(a.Opportunities) != len(b.Opportunities) || a.Instrs != b.Instrs || a.FetchBytes != b.FetchBytes {
		t.Fatalf("chunk scoring not reproducible: %+v vs %+v", a, b)
	}
	for i := range a.Opportunities {
		if a.Opportunities[i] != b.Opportunities[i] {
			t.Fatalf("opportunity %d differs: %+v vs %+v", i, a.Opportunities[i], b.Opportunities[i])
		}
	}
}

// TestMergeOrderInsensitive asserts the distributed contract end to end:
// chunks scored out of order (fleet completion order) merge to the same
// report text as the in-order local scan.
func TestMergeOrderInsensitive(t *testing.T) {
	img, addrs := appImage(t, 16384)
	opt := Options{}
	trc := TraceBytes(addrs, 0)

	local, err := Run(bytes.NewReader(img), bytes.NewReader(trc), "sha256:i", "sha256:t", opt)
	if err != nil {
		t.Fatal(err)
	}

	idx, err := BuildIndex(bytes.NewReader(img))
	if err != nil {
		t.Fatal(err)
	}
	tr, err := NewTraceReader(bytes.NewReader(trc))
	if err != nil {
		t.Fatal(err)
	}
	var results []ChunkResult
	for {
		ci, chunk, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, ScoreChunk(idx, ci, chunk, opt.withDefaults()))
	}
	// Shuffle deterministically: reverse, then interleave halves.
	shuffled := make([]ChunkResult, 0, len(results))
	for i := len(results) - 1; i >= 0; i -= 2 {
		shuffled = append(shuffled, results[i])
	}
	for i := len(results) - 2; i >= 0; i -= 2 {
		shuffled = append(shuffled, results[i])
	}
	dist := Merge("sha256:i", "sha256:t", idx, shuffled)

	if local.Text() != dist.Text() {
		t.Fatalf("local and shuffled-merge reports differ:\n--- local ---\n%s--- dist ---\n%s", local.Text(), dist.Text())
	}
}

func TestUnknownAddressesCounted(t *testing.T) {
	img, addrs := appImage(t, 512)
	idx, err := BuildIndex(bytes.NewReader(img))
	if err != nil {
		t.Fatal(err)
	}
	bogus := append(append([]uint32{}, addrs[:64]...), 0xdeadbee0, 0xdeadbee4)
	res := ScoreChunk(idx, 0, bogus, Options{}.withDefaults())
	if res.Unknown != 2 {
		t.Fatalf("Unknown = %d, want 2", res.Unknown)
	}
	if res.Instrs != 64 {
		t.Fatalf("Instrs = %d, want 64", res.Instrs)
	}
}

func TestReportTextStable(t *testing.T) {
	rep := Merge("sha256:aaaa", "sha256:bbbb", nil, []ChunkResult{
		{Chunk: 1, Instrs: 10, FetchBytes: 40, Opportunities: []Opportunity{
			{Chunk: 1, HeadAddr: 0x40, Len: 3, AvgFanoutMilli: 9500, SumFanout: 28, SavedBytes: 4},
		}},
		{Chunk: 0, Instrs: 10, FetchBytes: 40, Opportunities: []Opportunity{
			{Chunk: 0, HeadAddr: 0x10, Len: 2, AvgFanoutMilli: 12000, SumFanout: 24, SavedBytes: 2},
		}},
	})
	text := rep.Text()
	if !strings.Contains(text, "missed CritICs: 2") {
		t.Fatalf("report text:\n%s", text)
	}
	// Rank 1 is the higher average fanout, regardless of chunk arrival order.
	r1 := strings.Index(text, "0x10")
	r2 := strings.Index(text, "0x40")
	if r1 < 0 || r2 < 0 || r1 > r2 {
		t.Fatalf("ranking wrong:\n%s", text)
	}
	if rep.SavedBytes != 6 || rep.FetchBytes != 80 {
		t.Fatalf("totals: %+v", rep)
	}
	// 6/80 bytes = 7.5% = 75000 ppm.
	if rep.SpeedupPPM != 75000 || !strings.Contains(text, "(7.5000%)") {
		t.Fatalf("speedup %d ppm, text:\n%s", rep.SpeedupPPM, text)
	}
}

// BenchmarkBuildIndex pins the bounded-memory ingest property over a
// multi-MB image: allocations grow with the instruction count (the index),
// not with spare copies of the image. CI asserts a bytes-allocated ceiling
// over this benchmark.
func BenchmarkBuildIndex(b *testing.B) {
	img, _ := appImage(b, 0)
	for len(img) < 4<<20 {
		img = append(img, img...)
	}
	b.SetBytes(int64(len(img)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BuildIndex(bytes.NewReader(img)); err != nil {
			b.Fatal(err)
		}
	}
}
