package scan

import (
	"fmt"
	"sort"
	"strings"
)

// Opportunity is one missed CritIC: a chain the CritIC pass would have
// hoisted and converted had it compiled this binary from source.
type Opportunity struct {
	Chunk          int    `json:"chunk"`
	HeadAddr       uint32 `json:"head_addr"`
	Len            int    `json:"len"`
	AvgFanoutMilli int64  `json:"avg_fanout_milli"` // average fanout × 1000
	SumFanout      int64  `json:"sum_fanout"`
	SavedBytes     int64  `json:"saved_bytes"` // fetch bytes a conversion saves per execution
}

// ChunkResult is one trace chunk's score — the unit of fleet dispatch.
type ChunkResult struct {
	Chunk         int           `json:"chunk"`
	Instrs        int           `json:"instrs"`
	Unknown       int           `json:"unknown"`
	FetchBytes    int64         `json:"fetch_bytes"`
	Opportunities []Opportunity `json:"opportunities,omitempty"`
}

// Report is the merged scan result. All scores are integers (milli/ppm
// fixed-point) so the rendered report is byte-stable across platforms and
// across local-vs-distributed execution.
type Report struct {
	ImageDigest string `json:"image_digest"`
	TraceDigest string `json:"trace_digest"`

	ImageInstrs int `json:"image_instrs"` // static instructions decoded
	ImageThumb  int `json:"image_thumb"`
	ImageCDPs   int `json:"image_cdps"`

	Chunks     int   `json:"chunks"`
	Instrs     int64 `json:"instrs"` // dynamic instructions scored
	Unknown    int64 `json:"unknown"`
	FetchBytes int64 `json:"fetch_bytes"`

	Opportunities []Opportunity `json:"opportunities,omitempty"` // ranked
	SavedBytes    int64         `json:"saved_bytes"`
	SpeedupPPM    int64         `json:"speedup_ppm"` // est. fetch-byte reduction, parts per million
}

// Merge folds per-chunk results into the ranked report. Results may arrive
// in any order (fleet completion order is nondeterministic); merging sorts
// by chunk index first, so the outcome depends only on the result set.
func Merge(imageDigest, traceDigest string, idx *Index, results []ChunkResult) *Report {
	sorted := append([]ChunkResult(nil), results...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Chunk < sorted[j].Chunk })
	r := &Report{
		ImageDigest: imageDigest,
		TraceDigest: traceDigest,
		Chunks:      len(sorted),
	}
	if idx != nil {
		r.ImageInstrs = idx.Instrs
		r.ImageThumb = idx.ThumbInstrs
		r.ImageCDPs = idx.CDPs
	}
	for _, cr := range sorted {
		r.Instrs += int64(cr.Instrs)
		r.Unknown += int64(cr.Unknown)
		r.FetchBytes += cr.FetchBytes
		r.Opportunities = append(r.Opportunities, cr.Opportunities...)
	}
	sort.Slice(r.Opportunities, func(i, j int) bool {
		a, b := r.Opportunities[i], r.Opportunities[j]
		if a.AvgFanoutMilli != b.AvgFanoutMilli {
			return a.AvgFanoutMilli > b.AvgFanoutMilli
		}
		if a.SavedBytes != b.SavedBytes {
			return a.SavedBytes > b.SavedBytes
		}
		if a.Chunk != b.Chunk {
			return a.Chunk < b.Chunk
		}
		return a.HeadAddr < b.HeadAddr
	})
	for _, op := range r.Opportunities {
		r.SavedBytes += op.SavedBytes
	}
	if r.FetchBytes > 0 {
		r.SpeedupPPM = r.SavedBytes * 1_000_000 / r.FetchBytes
	}
	return r
}

// textTopN bounds the ranked listing in the rendered report.
const textTopN = 20

// milli renders a ×1000 fixed-point value ("12.375").
func milli(v int64) string { return fmt.Sprintf("%d.%03d", v/1000, v%1000) }

// Text renders the report deterministically — the byte-identical surface the
// CI scan-smoke job diffs between local and distributed execution.
func (r *Report) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "scan report\n")
	fmt.Fprintf(&b, "  image  %s  (%d static instrs: %d thumb, %d cdp)\n",
		r.ImageDigest, r.ImageInstrs, r.ImageThumb, r.ImageCDPs)
	fmt.Fprintf(&b, "  trace  %s  (%d dynamic instrs in %d chunks, %d unknown addrs)\n",
		r.TraceDigest, r.Instrs, r.Chunks, r.Unknown)
	fmt.Fprintf(&b, "  missed CritICs: %d, est. fetch savings %d of %d bytes (%d.%04d%%)\n",
		len(r.Opportunities), r.SavedBytes, r.FetchBytes, r.SpeedupPPM/10000, r.SpeedupPPM%10000)
	if len(r.Opportunities) == 0 {
		return b.String()
	}
	fmt.Fprintf(&b, "  %4s  %6s  %-10s  %3s  %10s  %5s\n", "rank", "chunk", "head", "len", "avg-fanout", "saved")
	for i, op := range r.Opportunities {
		if i >= textTopN {
			fmt.Fprintf(&b, "  ... and %d more\n", len(r.Opportunities)-textTopN)
			break
		}
		fmt.Fprintf(&b, "  %4d  %6d  %#-10x  %3d  %10s  %5d\n",
			i+1, op.Chunk, op.HeadAddr, op.Len, milli(op.AvgFanoutMilli), op.SavedBytes)
	}
	return b.String()
}
