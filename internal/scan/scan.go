// Package scan is the source-free binary scanning service: it scores missed
// CritIC opportunities directly from an uploaded binary image plus an
// address trace, with no access to the program that produced them —
// the ROADMAP's source-free item, grounded in the compiler-optimization
// impact-analysis line of PAPERS.md.
//
// Pipeline: the image streams through binimg's format-state-machine decoder
// into an address-indexed instruction table (BuildIndex; bounded memory — the
// image itself is never buffered); the trace is a chunked delta-varint
// address stream (tracefile.go); each trace chunk is scored independently
// (ScoreChunk) by synthesizing a dynamic dependence stream from the static
// operands — last-writer-per-register (and CC) tracking, reset at chunk
// boundaries — and running the same dfg fanout/chain extraction the
// source-level profiler uses. Chains that are high-fanout, entirely 32-bit
// and Thumb-representable are missed CritICs: opportunities the CritIC pass
// would have converted had it seen the source.
//
// Determinism contract: chunk scoring depends only on (image, chunk
// addresses, options) — producer tracking resets per chunk, matching dfg's
// in-chunk-only linking — and the merged report orders and scores with
// integer-only arithmetic. A scan dispatched chunk-wise across a fleet is
// therefore byte-identical to the same scan computed locally, which CI
// asserts.
package scan

import (
	"fmt"
	"io"
	"sort"

	"critics/internal/binimg"
	"critics/internal/dfg"
	"critics/internal/isa"
	"critics/internal/trace"
)

// Options tunes a scan. The zero value means defaults.
type Options struct {
	// ChunkSize is the dynamic analysis window in instructions — the unit of
	// both trace chunking and fleet dispatch. Default 1024 (matches dfg).
	ChunkSize int `json:"chunk_size,omitempty"`
	// FanoutWindow is the forward consumer-counting window. Default 128.
	FanoutWindow int `json:"fanout_window,omitempty"`
	// HighFanout is the criticality threshold on a chain's average fanout.
	// Default 8.
	HighFanout int32 `json:"high_fanout,omitempty"`
	// MaxLen caps chain length (the CritIC pass hoists up to 5). Default 5.
	MaxLen int `json:"max_len,omitempty"`
	// MinLen is the minimum chain length reported. Default 2.
	MinLen int `json:"min_len,omitempty"`
}

// withDefaults fills zero fields.
func (o Options) withDefaults() Options {
	if o.ChunkSize <= 0 {
		o.ChunkSize = 1024
	}
	if o.FanoutWindow <= 0 {
		o.FanoutWindow = 128
	}
	if o.HighFanout <= 0 {
		o.HighFanout = 8
	}
	if o.MaxLen <= 0 {
		o.MaxLen = 5
	}
	if o.MinLen <= 0 {
		o.MinLen = 2
	}
	return o
}

// ent is one statically decoded instruction.
type ent struct {
	inst  isa.Inst
	size  uint8
	thumb bool
	isCDP bool
	cdpN  uint8
}

// Index is the address-indexed static view of a decoded image.
type Index struct {
	ents map[uint32]ent

	// Instrs counts decoded instructions (CDP commands included);
	// ThumbInstrs and CDPs break that down.
	Instrs      int
	ThumbInstrs int
	CDPs        int
}

// BuildIndex streams an image through the binary decoder into an
// address-indexed instruction table. The image is consumed, never buffered.
func BuildIndex(img io.Reader) (*Index, error) {
	idx := &Index{ents: map[uint32]ent{}}
	dec := binimg.NewDecoder(img)
	for {
		d, err := dec.Next()
		if err == io.EOF {
			return idx, nil
		}
		if err != nil {
			return nil, fmt.Errorf("scan: decoding image: %w", err)
		}
		size := uint8(4)
		if d.Thumb {
			size = 2
		}
		idx.ents[d.Addr] = ent{inst: d.Inst, size: size, thumb: d.Thumb, isCDP: d.IsCDP, cdpN: uint8(d.CDPCount)}
		idx.Instrs++
		if d.Thumb {
			idx.ThumbInstrs++
		}
		if d.IsCDP {
			idx.CDPs++
		}
	}
}

// ccReg is the condition-flags slot in the last-writer table.
const ccReg = int(isa.ThumbMaxReg) + 7 // one past the architectural registers

// ScoreChunk scores one trace chunk against the image index: it synthesizes
// a dynamic dependence stream from the static operands (last-writer
// tracking, reset at the chunk start so scoring is position-independent),
// extracts chains with the profiler's dfg machinery, and keeps the chains a
// CritIC conversion would have paid off on.
func ScoreChunk(idx *Index, chunkIndex int, addrs []uint32, opt Options) ChunkResult {
	opt = opt.withDefaults()
	res := ChunkResult{Chunk: chunkIndex}

	dyns := make([]trace.Dyn, 0, len(addrs))
	insts := make([]isa.Inst, 0, len(addrs))
	statics := make([]ent, 0, len(addrs))

	// last[r] is the synthesized Seq of register r's last writer (-1 = no
	// in-chunk writer); last[ccReg] tracks the condition flags.
	var last [ccReg + 1]int64
	for i := range last {
		last[i] = -1
	}
	var srcBuf [4]isa.Reg

	for _, a := range addrs {
		e, ok := idx.ents[a]
		if !ok {
			// An address the static decode never produced: JIT region,
			// desynced trace, or an adversarial input. Counted, skipped.
			res.Unknown++
			continue
		}
		seq := int64(len(dyns))
		d := trace.Dyn{
			Seq:   seq,
			Addr:  a,
			Op:    e.inst.Op,
			Class: e.inst.Op.ClassOf(),
			Size:  e.size,
			Thumb: e.thumb,
			IsCDP: e.isCDP,
		}
		res.FetchBytes += int64(e.size)
		if e.isCDP {
			d.CDPCount = e.cdpN
		} else {
			for _, r := range e.inst.Sources(srcBuf[:0]) {
				if p := last[int(r)]; p >= 0 && d.NProd < 4 {
					d.Prod[d.NProd] = p
					d.NProd++
				}
			}
			if e.inst.ReadsCC() {
				if p := last[ccReg]; p >= 0 && d.NProd < 4 {
					d.Prod[d.NProd] = p
					d.NProd++
				}
			}
			if rd := e.inst.Dest(); rd != isa.NoReg {
				last[int(rd)] = seq
			}
			if e.inst.WritesCC() {
				last[ccReg] = seq
			}
		}
		dyns = append(dyns, d)
		insts = append(insts, e.inst)
		statics = append(statics, e)
	}
	res.Instrs = len(dyns)
	if len(dyns) == 0 {
		return res
	}

	chains := dfg.Extract(dyns, dfg.Options{
		ChunkSize:    len(dyns), // one extraction window: the trace chunk
		FanoutWindow: opt.FanoutWindow,
		HighFanout:   opt.HighFanout,
		MaxLen:       opt.MaxLen,
		MinLen:       opt.MinLen,
	})
	for ci := range chains {
		c := &chains[ci]
		if op, ok := qualify(c, dyns, insts, statics, opt); ok {
			op.Chunk = chunkIndex
			res.Opportunities = append(res.Opportunities, op)
		}
	}
	return res
}

// qualify decides whether a chain is a missed CritIC and scores it. A chain
// qualifies when its average fanout meets the threshold and every member is
// a 32-bit, non-control, Thumb-representable instruction — the all-or-
// nothing condition under which the CritIC pass could have hoisted it behind
// one CDP-covered 16-bit run. (Without source we cannot check basic-block
// membership; chain locality under MaxLen approximates it, which the report
// labels an estimate.)
func qualify(c *dfg.Chain, dyns []trace.Dyn, insts []isa.Inst, statics []ent, opt Options) (Opportunity, bool) {
	n := int64(len(c.Members))
	if n == 0 {
		return Opportunity{}, false
	}
	avgMilli := c.SumFanout * 1000 / n
	if avgMilli < int64(opt.HighFanout)*1000 {
		return Opportunity{}, false
	}
	for _, m := range c.Members {
		e, in := statics[m], insts[m]
		if e.thumb || e.isCDP || in.Op.IsControl() || !in.ThumbRepresentable() {
			return Opportunity{}, false
		}
	}
	// Converting n A32 members to T16 saves 2 bytes each, minus one 2-byte
	// CDP command per covered run of CDPMaxRun.
	cdps := (n + isa.CDPMaxRun - 1) / isa.CDPMaxRun
	saved := 2*n - 2*cdps
	if saved <= 0 {
		return Opportunity{}, false
	}
	return Opportunity{
		HeadAddr:       dyns[c.Members[0]].Addr,
		Len:            int(n),
		AvgFanoutMilli: avgMilli,
		SumFanout:      c.SumFanout,
		SavedBytes:     saved,
	}, true
}

// Run scores a whole scan locally: index the image, then score every trace
// chunk in order and merge. Both the server's local execution path and
// criticctl's -local mode go through here, so the two produce identical
// reports by construction.
func Run(img, trc io.Reader, imageDigest, traceDigest string, opt Options) (*Report, error) {
	idx, err := BuildIndex(img)
	if err != nil {
		return nil, err
	}
	tr, err := NewTraceReader(trc)
	if err != nil {
		return nil, err
	}
	var results []ChunkResult
	for {
		ci, addrs, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		results = append(results, ScoreChunk(idx, ci, addrs, opt))
	}
	return Merge(imageDigest, traceDigest, idx, results), nil
}

// ScoreSelected scores only the named trace chunks against an already-built
// index — the batch primitive behind distributed scans (a dist worker scores
// its batch, the coordinator-side fallback scores a failed batch) — and
// returns them ordered by chunk index. Chunk scoring is position-independent,
// so the union of any partition of chunks merges into the same report Run
// produces.
func ScoreSelected(idx *Index, trc io.Reader, chunks []int, opt Options) ([]ChunkResult, error) {
	want := make(map[int]bool, len(chunks))
	for _, c := range chunks {
		want[c] = true
	}
	tr, err := NewTraceReader(trc)
	if err != nil {
		return nil, err
	}
	results := make([]ChunkResult, 0, len(want))
	for len(results) < len(want) {
		ci, addrs, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if !want[ci] {
			continue
		}
		results = append(results, ScoreChunk(idx, ci, addrs, opt))
	}
	sort.Slice(results, func(i, j int) bool { return results[i].Chunk < results[j].Chunk })
	return results, nil
}
