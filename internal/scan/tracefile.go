package scan

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// The scan trace format is a chunked address stream: a magic/version header,
// a chunk count, then per chunk a count and that many zig-zag-varint address
// deltas. Deltas reset at every chunk boundary so chunks decode (and score)
// independently — the property fleet dispatch relies on. Varint deltas make
// the common case (sequential fetch: delta 4 or 2) one byte per dynamic
// instruction.
const (
	traceMagic   = "CTRC"
	traceVersion = 1

	// maxChunks and maxChunkLen bound what a reader will allocate for a
	// declared count before seeing the bytes behind it — adversarial headers
	// (fuzzed or truncated uploads) fail instead of ballooning memory.
	maxChunks   = 1 << 20
	maxChunkLen = 1 << 20
)

func zigzag(v int64) uint64 { return uint64((v << 1) ^ (v >> 63)) }
func unzig(u uint64) int64  { return int64(u>>1) ^ -int64(u&1) }

// WriteTrace encodes addrs into the chunked trace format, chunkSize dynamic
// instructions per chunk (<= 0 means the Options default).
func WriteTrace(w io.Writer, addrs []uint32, chunkSize int) error {
	if chunkSize <= 0 {
		chunkSize = Options{}.withDefaults().ChunkSize
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(traceMagic); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := bw.WriteByte(traceVersion); err != nil {
		return err
	}
	chunks := (len(addrs) + chunkSize - 1) / chunkSize
	if err := putUvarint(uint64(chunks)); err != nil {
		return err
	}
	for start := 0; start < len(addrs); start += chunkSize {
		end := start + chunkSize
		if end > len(addrs) {
			end = len(addrs)
		}
		chunk := addrs[start:end]
		if err := putUvarint(uint64(len(chunk))); err != nil {
			return err
		}
		prev := uint32(0)
		for _, a := range chunk {
			if err := putUvarint(zigzag(int64(a) - int64(prev))); err != nil {
				return err
			}
			prev = a
		}
	}
	return bw.Flush()
}

// TraceBytes is WriteTrace into memory — the convenience path for clients
// assembling an upload.
func TraceBytes(addrs []uint32, chunkSize int) []byte {
	var b writerBuf
	_ = WriteTrace(&b, addrs, chunkSize) // in-memory writes cannot fail
	return b.data
}

type writerBuf struct{ data []byte }

func (b *writerBuf) Write(p []byte) (int, error) {
	b.data = append(b.data, p...)
	return len(p), nil
}

// TraceReader streams trace chunks back out. Allocation is bounded against
// the declared counts' caps and grown against bytes actually read, so a
// hostile header cannot make it balloon.
type TraceReader struct {
	br     *bufio.Reader
	chunks int
	next   int
}

// NewTraceReader validates the header and positions the reader at chunk 0.
func NewTraceReader(r io.Reader) (*TraceReader, error) {
	br := bufio.NewReader(r)
	var magic [5]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("scan: trace header: %w", err)
	}
	if string(magic[:4]) != traceMagic {
		return nil, fmt.Errorf("scan: bad trace magic %q", magic[:4])
	}
	if magic[4] != traceVersion {
		return nil, fmt.Errorf("scan: unsupported trace version %d", magic[4])
	}
	chunks, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("scan: trace chunk count: %w", err)
	}
	if chunks > maxChunks {
		return nil, fmt.Errorf("scan: trace declares %d chunks (max %d)", chunks, maxChunks)
	}
	return &TraceReader{br: br, chunks: int(chunks)}, nil
}

// Chunks returns the declared chunk count.
func (t *TraceReader) Chunks() int { return t.chunks }

// Next returns the next chunk's index and decoded addresses, io.EOF after
// the last declared chunk.
func (t *TraceReader) Next() (int, []uint32, error) {
	if t.next >= t.chunks {
		return 0, nil, io.EOF
	}
	ci := t.next
	t.next++
	count, err := binary.ReadUvarint(t.br)
	if err != nil {
		return 0, nil, fmt.Errorf("scan: trace chunk %d count: %w", ci, err)
	}
	if count > maxChunkLen {
		return 0, nil, fmt.Errorf("scan: trace chunk %d declares %d addresses (max %d)", ci, count, maxChunkLen)
	}
	capHint := count
	if capHint > 4096 {
		capHint = 4096 // grow against bytes read, not the declared count
	}
	addrs := make([]uint32, 0, capHint)
	prev := int64(0)
	for i := uint64(0); i < count; i++ {
		u, err := binary.ReadUvarint(t.br)
		if err != nil {
			return 0, nil, fmt.Errorf("scan: trace chunk %d truncated: %w", ci, err)
		}
		a := prev + unzig(u)
		if a < 0 || a > int64(^uint32(0)) {
			return 0, nil, fmt.Errorf("scan: trace chunk %d address out of range", ci)
		}
		addrs = append(addrs, uint32(a))
		prev = a
	}
	return ci, addrs, nil
}
