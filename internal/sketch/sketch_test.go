package sketch

import (
	"bytes"
	"math/rand"
	"testing"

	"critics/internal/core"
	"critics/internal/cpu"
)

// key builds a chain key from compact parts.
func key(fn, bl int, idx ...int) core.ChainKey {
	k := core.ChainKey{Func: uint16(fn), Block: uint16(bl), N: uint8(len(idx))}
	for i, v := range idx {
		k.Idx[i] = uint8(v)
	}
	return k
}

// randomSketch builds a deterministic pseudo-random sketch — the generator
// the law tests permute and re-merge.
func randomSketch(r *rand.Rand, app string) *Sketch {
	s := New(app)
	nk := 1 + r.Intn(40)
	for i := 0; i < nk; i++ {
		k := key(r.Intn(300), r.Intn(200), 1+r.Intn(20), 1+r.Intn(20))
		if r.Intn(2) == 0 {
			k.N = 3
			k.Idx[2] = uint8(1 + r.Intn(30))
		}
		s.SetCount(k, 1+uint64(r.Intn(10_000)), uint64(r.Intn(40_000)), r.Intn(4) != 0)
	}
	if t := uint64(r.Intn(1_000_000)); s.TotalDyn < t {
		s.TotalDyn = t
	}
	var fan [FanoutBuckets]uint64
	for i := range fan {
		fan[i] = uint64(r.Intn(5000))
	}
	s.AddFanout(fan[:])
	s.AddStall(cpu.Breakdown{
		FetchI: int64(r.Intn(9999)), FetchRD: int64(r.Intn(9999)), Decode: int64(r.Intn(9999)),
		Rename: int64(r.Intn(9999)), Execute: int64(r.Intn(9999)), Commit: int64(r.Intn(9999)),
	})
	nd := 1 + r.Intn(5)
	for i := 0; i < nd; i++ {
		s.AddDevice(string(rune('a'+r.Intn(26))) + string(rune('0'+r.Intn(10))))
	}
	return s
}

func TestSetCountMonotoneAndExact(t *testing.T) {
	s := New("app")
	k := key(3, 7, 1, 2, 3)
	s.SetCount(k, 10, 8000, true)
	s.SetCount(k, 25, 7000, true) // grows count, keeps max fanout
	s.SetCount(k, 5, 9500, true)  // lower count never lowers
	if got := s.Estimate(k); got != 25 {
		t.Fatalf("Estimate = %d, want 25", got)
	}
	if len(s.Keys) != 1 || s.Keys[0].Count != 25 || s.Keys[0].FanoutMilli != 9500 {
		t.Fatalf("key stat = %+v", s.Keys)
	}
	if got := s.Estimate(key(9, 9, 1, 2)); got != 0 {
		t.Fatalf("absent key estimate = %d, want 0", got)
	}
}

func TestKeysStayCanonicallySorted(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	s := New("app")
	for i := 0; i < 500; i++ {
		s.SetCount(key(r.Intn(50), r.Intn(50), 1+r.Intn(10), 1+r.Intn(10)), 1+uint64(r.Intn(100)), 0, true)
	}
	for i := 1; i < len(s.Keys); i++ {
		if !core.LessKey(s.Keys[i-1].Key, s.Keys[i].Key) {
			t.Fatalf("keys not strictly ascending at %d", i)
		}
	}
}

func TestTruncateKeepsHeaviest(t *testing.T) {
	s := New("app")
	for i := 0; i < 20; i++ {
		s.SetCount(key(1, i, 0, 1), uint64(100+i), 0, true)
	}
	s.Truncate(5)
	if len(s.Keys) != 5 {
		t.Fatalf("len = %d, want 5", len(s.Keys))
	}
	for _, st := range s.Keys {
		if st.Count < 115 {
			t.Fatalf("light key survived truncation: %+v", st)
		}
	}
	for i := 1; i < len(s.Keys); i++ {
		if !core.LessKey(s.Keys[i-1].Key, s.Keys[i].Key) {
			t.Fatalf("truncated keys not in canonical order")
		}
	}
}

func TestDevicesEstimate(t *testing.T) {
	s := New("app")
	for i := 0; i < 10; i++ {
		s.AddDevice(string(rune('a' + i)))
		s.AddDevice(string(rune('a' + i))) // duplicates collapse
	}
	if got := s.DevicesEstimate(); got != 10 {
		t.Fatalf("exact regime estimate = %v, want 10", got)
	}
	big := New("app")
	for i := 0; i < 4*KMVSize; i++ {
		big.AddDevice(string(rune('a'+i%26)) + string(rune('A'+(i/26)%26)) + string(rune('0'+i%10)))
	}
	if len(big.Devices) != KMVSize {
		t.Fatalf("retained %d hashes, want %d", len(big.Devices), KMVSize)
	}
	est := big.DevicesEstimate()
	if est < 100 || est > 1000 {
		t.Fatalf("KMV estimate %v wildly off true count %d", est, 4*KMVSize)
	}
}

func TestFanoutBucket(t *testing.T) {
	cases := map[int32]int{0: 0, 1: 0, 2: 1, 3: 1, 4: 2, 7: 2, 8: 3, 127: 6, 128: 7, 100000: 7}
	for in, want := range cases {
		if got := FanoutBucket(in); got != want {
			t.Errorf("FanoutBucket(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestProfileFromSketch(t *testing.T) {
	s := New("app")
	s.TotalDyn = 1000
	s.SetCount(key(1, 2, 0, 1), 50, 9000, true)    // 100 dyn instrs
	s.SetCount(key(1, 3, 0, 1, 2), 80, 8500, true) // 240 dyn instrs — ranks first
	s.SetCount(key(2, 1, 4, 5), 10, 12000, false)
	p := s.Profile()
	if p.App != "app" || p.TotalDyn != 1000 || len(p.Entries) != 3 {
		t.Fatalf("profile = %+v", p)
	}
	if p.Entries[0].Key != key(1, 3, 0, 1, 2) {
		t.Fatalf("rank order wrong: first entry %v", p.Entries[0].Key)
	}
	p.Select(core.Config{AvgFanoutThreshold: 8, MaxLen: 5, MinLen: 2, RequireThumb: true})
	sel := p.Selected()
	if len(sel) != 2 {
		t.Fatalf("selected %d entries, want 2 (thumb-failing chain skipped)", len(sel))
	}
	if p.SelectedCoverage != 340.0/1000 {
		t.Fatalf("coverage = %v", p.SelectedCoverage)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 50; i++ {
		s := randomSketch(r, "roundtrip")
		enc := s.Encode()
		dec, err := Decode(enc)
		if err != nil {
			t.Fatalf("Decode: %v", err)
		}
		re := dec.Encode()
		if !bytes.Equal(enc, re) {
			t.Fatalf("re-encode differs from original encode")
		}
		if dec.Digest() != s.Digest() {
			t.Fatalf("digest changed across round trip")
		}
	}
}

func TestDecodeRejects(t *testing.T) {
	good := randomSketch(rand.New(rand.NewSource(1)), "app").Encode()
	cases := map[string][]byte{
		"empty":          {},
		"bad magic":      []byte("XXXX"),
		"bad version":    append([]byte{'C', 'S', 'K', 99}, good[4:]...),
		"truncated":      good[:len(good)/2],
		"trailing bytes": append(append([]byte{}, good...), 0),
	}
	for name, b := range cases {
		if _, err := Decode(b); err == nil {
			t.Errorf("Decode(%s) accepted", name)
		}
	}

	// Non-canonical key order must be refused: two keys swapped on the wire.
	s := New("app")
	s.SetCount(key(1, 1, 0, 1), 5, 0, true)
	s.SetCount(key(2, 1, 0, 1), 5, 0, true)
	s.Keys[0], s.Keys[1] = s.Keys[1], s.Keys[0]
	if _, err := Decode(s.Encode()); err == nil {
		t.Errorf("Decode accepted out-of-order keys")
	}
}

func TestCloneIsDeep(t *testing.T) {
	s := randomSketch(rand.New(rand.NewSource(3)), "app")
	c := s.Clone()
	if c.Digest() != s.Digest() {
		t.Fatalf("clone digest differs")
	}
	c.SetCount(key(999, 1, 0, 1), 1, 0, true)
	c.AddDevice("new-device")
	if c.Digest() == s.Digest() {
		t.Fatalf("mutating clone reached the original")
	}
}
