// Package sketch implements the mergeable, bounded-size profile summaries
// the fleet PGO loop ships from devices to the coordinator: a count-min
// structure over hoistable chain keys, an exact top-key stat list, fanout
// and stall-attribution aggregates, and a bottom-k distinct-device
// estimator, all under one versioned binary wire form (wire.go).
//
// Merge semantics are the load-bearing design decision. A fleet ingests
// sketches in whatever order the network delivers them — duplicated,
// reordered, re-sent after a timeout — and the consensus must not depend on
// any of that. So Merge is a lattice join, not an accumulation: every field
// combines by least-upper-bound (element-wise MAX on count-min cells,
// per-key MAX on counts and fanout, union on key and device sets), which
// makes it commutative, associative and idempotent by construction. The
// price is the reading of a consensus count: it is the maximum any one
// device reported, not a fleet-wide sum. Devices cooperate by keeping their
// own sketch cumulative and monotone across rounds (AddProfile only ever
// grows counts), so a re-send supersedes earlier deliveries and a join over
// any subset of deliveries from any devices yields the same state as the
// join over the latest delivery of each — a state-based CRDT.
//
// Sizes are bounded at build time, never at merge time: MaxTrackedKeys caps
// the exact key list when a device builds its sketch (deterministic top-K
// by count, then key order), and Merge performs pure unions — truncating
// inside Merge would break associativity. The union across a fleet is still
// bounded by the app's finite static chain universe.
package sketch

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"
	"math/bits"
	"sort"

	"critics/internal/core"
	"critics/internal/cpu"
)

// Structure bounds. Part of the wire format: changing any of them is a
// Version bump.
const (
	// Depth and Width shape the count-min structure: 4 independently-hashed
	// rows of 1024 counters each. Point queries read the minimum over rows,
	// so collisions only ever over-estimate.
	Depth = 4
	Width = 1024

	// MaxTrackedKeys caps the exact per-key stat list a device includes —
	// the bounded "heavy hitters" the coordinator ranks exactly; everything
	// else is visible only through the count-min estimates.
	MaxTrackedKeys = 512

	// KMVSize is the bottom-k bound of the distinct-device estimator.
	KMVSize = 64

	// FanoutBuckets is the power-of-two fanout histogram size: bucket i
	// covers fanout [2^i, 2^(i+1)), the last bucket is open-ended.
	FanoutBuckets = 8

	// StallStages is the stall-attribution vector length, mirroring
	// cpu.Breakdown's §II-D taxonomy (fetch-I, fetch-RD, decode, rename,
	// execute, commit).
	StallStages = 6

	// MaxAppName bounds the app-name field on the wire.
	MaxAppName = 128
)

// KeyStat is one exactly-tracked chain key: the bounded heavy-hitter list
// the consensus profile is assembled from.
type KeyStat struct {
	Key core.ChainKey

	// Count is the dynamic-occurrence count. Devices accumulate it
	// monotonically; merged sketches carry the per-device maximum.
	Count uint64

	// FanoutMilli is the occurrence-weighted mean chain criticality ×1000,
	// fixed-point so the wire form and the merge stay integer-exact.
	FanoutMilli uint64

	// ThumbOK reports the all-or-nothing 16-bit representability of the
	// chain. It is a property of the static program, so devices agree;
	// merges AND it to stay conservative against disagreement.
	ThumbOK bool
}

// Sketch is one mergeable profile summary — what a device POSTs to
// /v1/profiles and what the coordinator folds per app into the consensus.
type Sketch struct {
	App string

	// TotalDyn is the dynamic instructions profiled (join: max).
	TotalDyn uint64

	// CM is the count-min structure over every chain key the device saw,
	// including the ones beyond the exact list's cap.
	CM [Depth][Width]uint64

	// Keys is the exact heavy-hitter list, sorted by core.LessKey (the
	// canonical order; the wire form requires it).
	Keys []KeyStat

	// Fanout is the per-instruction fanout histogram (power-of-two buckets).
	Fanout [FanoutBuckets]uint64

	// Stall is cycle dwell by pipeline stage from a device-side micro
	// simulation window, in cpu.Breakdown order.
	Stall [StallStages]uint64

	// Devices is the bottom-k set of 64-bit device-id hashes, ascending and
	// distinct — a KMV estimator of how many devices contributed.
	Devices []uint64
}

// New returns an empty sketch for one app.
func New(app string) *Sketch { return &Sketch{App: app} }

// rowSeeds salt the count-min rows; arbitrary odd constants.
var rowSeeds = [Depth]uint64{
	0x9e3779b97f4a7c15, 0xbf58476d1ce4e5b9, 0x94d049bb133111eb, 0xd6e8feb86659fd93,
}

// mix64 is the splitmix64 finalizer — a cheap, well-distributed 64-bit hash.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// keyBits folds a chain key into one uint64 (the key is 12 significant
// bytes; fold the index bytes over the header).
func keyBits(k core.ChainKey) uint64 {
	hi := uint64(k.Func)<<24 | uint64(k.Block)<<8 | uint64(k.N)
	lo := binary.LittleEndian.Uint64(k.Idx[:])
	return hi ^ (lo * 0x9e3779b97f4a7c15)
}

// cmIndex returns row r's cell index for key k.
func cmIndex(r int, k core.ChainKey) int {
	return int(mix64(keyBits(k)^rowSeeds[r]) % Width)
}

// HashDevice maps a device identifier to its KMV hash.
func HashDevice(id string) uint64 {
	h := uint64(1469598103934665603) // FNV offset basis
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= 1099511628211
	}
	return mix64(h)
}

// ---- device-side construction (monotone) ---------------------------------

// SetCount records key k's cumulative dynamic-occurrence count: the exact
// list and the count-min cells are raised to at least n (never lowered), so
// repeated calls with a growing count keep the sketch monotone. fanoutMilli
// and thumb travel with the key's stat.
func (s *Sketch) SetCount(k core.ChainKey, n, fanoutMilli uint64, thumb bool) {
	for r := 0; r < Depth; r++ {
		if c := &s.CM[r][cmIndex(r, k)]; *c < n {
			*c = n
		}
	}
	i := sort.Search(len(s.Keys), func(i int) bool { return !core.LessKey(s.Keys[i].Key, k) })
	if i < len(s.Keys) && s.Keys[i].Key == k {
		st := &s.Keys[i]
		if st.Count < n {
			st.Count = n
		}
		if st.FanoutMilli < fanoutMilli {
			st.FanoutMilli = fanoutMilli
		}
		st.ThumbOK = st.ThumbOK && thumb
		return
	}
	s.Keys = append(s.Keys, KeyStat{})
	copy(s.Keys[i+1:], s.Keys[i:])
	s.Keys[i] = KeyStat{Key: k, Count: n, FanoutMilli: fanoutMilli, ThumbOK: thumb}
}

// AddProfile folds a device-local CritIC profile into the sketch: every
// candidate chain raises its count-min cells, the heavy hitters land in the
// exact list, and TotalDyn is raised to the profile's. Entries must carry
// cumulative counts (core.BuildProfile over a device's cumulative window
// set does), so re-adding a later, larger profile supersedes — never
// double-counts — the earlier one.
func (s *Sketch) AddProfile(p *core.Profile) {
	if t := uint64(p.TotalDyn); s.TotalDyn < t {
		s.TotalDyn = t
	}
	for i := range p.Entries {
		e := &p.Entries[i]
		fm := uint64(math.Round(e.AvgFanout * 1000))
		s.SetCount(e.Key, uint64(e.DynCount), fm, e.ThumbOK)
	}
	s.Truncate(MaxTrackedKeys)
}

// AddFanout raises the fanout histogram to at least the given cumulative
// bucket counts (len(counts) ≤ FanoutBuckets; extra buckets fold into the
// last).
func (s *Sketch) AddFanout(counts []uint64) {
	for i, n := range counts {
		b := i
		if b >= FanoutBuckets {
			b = FanoutBuckets - 1
		}
		if s.Fanout[b] < n {
			s.Fanout[b] = n
		}
	}
}

// FanoutBucket returns the histogram bucket of one fanout observation:
// floor(log2(fanout)), clamped to the histogram.
func FanoutBucket(fanout int32) int {
	if fanout < 1 {
		fanout = 1
	}
	b := bits.Len32(uint32(fanout)) - 1
	if b >= FanoutBuckets {
		b = FanoutBuckets - 1
	}
	return b
}

// AddStall raises the stall-attribution vector to at least b's cumulative
// cycle dwell.
func (s *Sketch) AddStall(b cpu.Breakdown) {
	v := [StallStages]uint64{
		uint64(b.FetchI), uint64(b.FetchRD), uint64(b.Decode),
		uint64(b.Rename), uint64(b.Execute), uint64(b.Commit),
	}
	for i := range v {
		if s.Stall[i] < v[i] {
			s.Stall[i] = v[i]
		}
	}
}

// AddDevice records a contributing device in the KMV set.
func (s *Sketch) AddDevice(id string) { s.addDeviceHash(HashDevice(id)) }

// addDeviceHash inserts h into the ascending bottom-k set, reporting whether
// the set changed. Keeping only the k smallest hashes is itself a lattice
// join: bottomK(A ∪ B) == bottomK(bottomK(A) ∪ bottomK(B)).
func (s *Sketch) addDeviceHash(h uint64) bool {
	i := sort.Search(len(s.Devices), func(i int) bool { return s.Devices[i] >= h })
	if i < len(s.Devices) && s.Devices[i] == h {
		return false
	}
	if len(s.Devices) >= KMVSize {
		if i >= KMVSize {
			return false // larger than every retained hash
		}
		copy(s.Devices[i+1:], s.Devices[i:])
		s.Devices[i] = h
		return true
	}
	s.Devices = append(s.Devices, 0)
	copy(s.Devices[i+1:], s.Devices[i:])
	s.Devices[i] = h
	return true
}

// Truncate bounds the exact key list to the n largest counts (ties broken
// by key order), keeping canonical key order. A build-time operation only:
// merged sketches are never truncated (it would break associativity).
func (s *Sketch) Truncate(n int) {
	if n <= 0 || len(s.Keys) <= n {
		return
	}
	byCount := make([]KeyStat, len(s.Keys))
	copy(byCount, s.Keys)
	sort.Slice(byCount, func(i, j int) bool {
		if byCount[i].Count != byCount[j].Count {
			return byCount[i].Count > byCount[j].Count
		}
		return core.LessKey(byCount[i].Key, byCount[j].Key)
	})
	byCount = byCount[:n]
	sort.Slice(byCount, func(i, j int) bool { return core.LessKey(byCount[i].Key, byCount[j].Key) })
	s.Keys = byCount
}

// ---- lattice join --------------------------------------------------------

// Merge joins o into s (least-upper-bound on every field) and reports
// whether s changed. Merge is commutative, associative and idempotent — the
// property tests in laws_test.go enforce it — so a consensus folded from
// any delivery order, with any duplication, is identical.
func (s *Sketch) Merge(o *Sketch) bool {
	changed := false
	if s.App == "" && o.App != "" {
		s.App, changed = o.App, true
	}
	if s.TotalDyn < o.TotalDyn {
		s.TotalDyn, changed = o.TotalDyn, true
	}
	for r := 0; r < Depth; r++ {
		for i := 0; i < Width; i++ {
			if s.CM[r][i] < o.CM[r][i] {
				s.CM[r][i], changed = o.CM[r][i], true
			}
		}
	}
	for i := range o.Fanout {
		if s.Fanout[i] < o.Fanout[i] {
			s.Fanout[i], changed = o.Fanout[i], true
		}
	}
	for i := range o.Stall {
		if s.Stall[i] < o.Stall[i] {
			s.Stall[i], changed = o.Stall[i], true
		}
	}
	if s.mergeKeys(o.Keys) {
		changed = true
	}
	for _, h := range o.Devices {
		if s.addDeviceHash(h) {
			changed = true
		}
	}
	return changed
}

// mergeKeys unions o's exact stats into s's (both canonically ordered),
// joining stats of shared keys. Returns whether s changed.
func (s *Sketch) mergeKeys(o []KeyStat) bool {
	if len(o) == 0 {
		return false
	}
	changed := false
	out := make([]KeyStat, 0, len(s.Keys)+len(o))
	i, j := 0, 0
	for i < len(s.Keys) && j < len(o) {
		a, b := &s.Keys[i], &o[j]
		switch {
		case a.Key == b.Key:
			st := *a
			if st.Count < b.Count {
				st.Count, changed = b.Count, true
			}
			if st.FanoutMilli < b.FanoutMilli {
				st.FanoutMilli, changed = b.FanoutMilli, true
			}
			if st.ThumbOK && !b.ThumbOK {
				st.ThumbOK, changed = false, true
			}
			out = append(out, st)
			i, j = i+1, j+1
		case core.LessKey(a.Key, b.Key):
			out = append(out, *a)
			i++
		default:
			out = append(out, *b)
			changed = true
			j++
		}
	}
	out = append(out, s.Keys[i:]...)
	if j < len(o) {
		out = append(out, o[j:]...)
		changed = true
	}
	s.Keys = out
	return changed
}

// Clone returns a deep copy (the aggregator hands clones to optimizer runs
// so a concurrent merge never mutates a snapshot under them).
func (s *Sketch) Clone() *Sketch {
	c := *s
	c.Keys = append([]KeyStat(nil), s.Keys...)
	c.Devices = append([]uint64(nil), s.Devices...)
	return &c
}

// ---- queries -------------------------------------------------------------

// Estimate returns the count-min estimate for key k (min over rows): exact
// for tracked keys, an upper bound with collision noise for the tail.
func (s *Sketch) Estimate(k core.ChainKey) uint64 {
	est := s.CM[0][cmIndex(0, k)]
	for r := 1; r < Depth; r++ {
		if c := s.CM[r][cmIndex(r, k)]; c < est {
			est = c
		}
	}
	return est
}

// DevicesEstimate returns the KMV distinct-device estimate: exact below
// KMVSize, (k-1)/h_(k) scaled to the 64-bit hash space above it.
func (s *Sketch) DevicesEstimate() float64 {
	n := len(s.Devices)
	if n < KMVSize {
		return float64(n)
	}
	kth := float64(s.Devices[n-1]) / float64(math.MaxUint64)
	if kth == 0 {
		return float64(n)
	}
	return float64(n-1) / kth
}

// Profile assembles the consensus CritIC profile from the exact key list:
// ranked candidate entries a selection policy (core.Config) then marks.
func (s *Sketch) Profile() *core.Profile {
	p := &core.Profile{App: s.App, TotalDyn: int64(s.TotalDyn)}
	p.Entries = make([]core.Entry, 0, len(s.Keys))
	for i := range s.Keys {
		st := &s.Keys[i]
		p.Entries = append(p.Entries, core.Entry{
			Key:       st.Key,
			Length:    int(st.Key.N),
			DynCount:  int64(st.Count),
			AvgFanout: float64(st.FanoutMilli) / 1000,
			ThumbOK:   st.ThumbOK,
		})
	}
	p.Rank()
	return p
}

// Digest returns a short hex digest of the canonical wire encoding — the
// byte-identity witness the determinism smoke compares across permuted
// ingest orders.
func (s *Sketch) Digest() string {
	sum := sha256.Sum256(s.Encode())
	return hex.EncodeToString(sum[:8])
}
