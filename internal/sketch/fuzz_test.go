package sketch

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

// FuzzDecodeSketch hammers the wire decoder with arbitrary bytes: it must
// never panic, and everything it accepts must be canonical — re-encoding a
// decoded sketch reproduces the input byte-for-byte, and the decoded value
// must survive a merge with itself without changing (idempotence holds for
// every acceptable wire value, not just ones Encode produced).
func FuzzDecodeSketch(f *testing.F) {
	r := rand.New(rand.NewSource(5))
	f.Add([]byte{})
	f.Add([]byte("CSK"))
	f.Add(magic[:])
	f.Add(New("empty").Encode())
	for i := 0; i < 4; i++ {
		f.Add(randomSketch(r, "fuzz-seed").Encode())
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Decode(data)
		if err != nil {
			return
		}
		enc := s.Encode()
		if !bytes.Equal(enc, data) {
			t.Fatalf("accepted non-canonical input: re-encode differs (%d vs %d bytes)", len(enc), len(data))
		}
		c := s.Clone()
		if c.Merge(s) {
			t.Fatalf("self-merge of a decoded sketch reported a change")
		}
		if !bytes.Equal(c.Encode(), enc) {
			t.Fatalf("self-merge changed the canonical bytes")
		}
		_ = s.Profile()
		_ = s.DevicesEstimate()
	})
}

// TestWriteFuzzCorpus regenerates the checked-in seed corpus when
// SKETCH_FUZZ_CORPUS=1 — run after any wire-format change so CI's
// fuzz-smoke leg starts from valid current-version sketches.
func TestWriteFuzzCorpus(t *testing.T) {
	if os.Getenv("SKETCH_FUZZ_CORPUS") == "" {
		t.Skip("set SKETCH_FUZZ_CORPUS=1 to rewrite testdata/fuzz/FuzzDecodeSketch")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzDecodeSketch")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(5))
	seeds := map[string][]byte{
		"seed-empty-sketch": New("empty").Encode(),
		"seed-magic-only":   magic[:],
	}
	for i := 0; i < 4; i++ {
		seeds[fmt.Sprintf("seed-random-%d", i)] = randomSketch(r, "fuzz-seed").Encode()
	}
	for name, data := range seeds {
		body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(data)) + ")\n"
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
