package sketch

import (
	"bytes"
	"math/rand"
	"testing"
)

// The merge laws: Merge must be a lattice join — commutative, associative
// and idempotent — so the consensus a coordinator folds is independent of
// delivery order, duplication and re-sends. Each property is checked on the
// canonical byte encoding, the strongest equality the wire form offers.

func mergedEncode(sketches ...*Sketch) []byte {
	acc := New("")
	for _, s := range sketches {
		acc.Merge(s)
	}
	return acc.Encode()
}

func TestMergeCommutative(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 100; i++ {
		a, b := randomSketch(r, "app"), randomSketch(r, "app")
		if !bytes.Equal(mergedEncode(a, b), mergedEncode(b, a)) {
			t.Fatalf("iteration %d: merge(a,b) != merge(b,a)", i)
		}
	}
}

func TestMergeAssociative(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for i := 0; i < 100; i++ {
		a, b, c := randomSketch(r, "app"), randomSketch(r, "app"), randomSketch(r, "app")
		ab := New("")
		ab.Merge(a)
		ab.Merge(b)
		ab.Merge(c) // (a⊔b)⊔c
		bc := New("")
		bc.Merge(b)
		bc.Merge(c)
		acc := New("")
		acc.Merge(a)
		acc.Merge(bc) // a⊔(b⊔c)
		if !bytes.Equal(ab.Encode(), acc.Encode()) {
			t.Fatalf("iteration %d: (a⊔b)⊔c != a⊔(b⊔c)", i)
		}
	}
}

func TestMergeIdempotent(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	for i := 0; i < 100; i++ {
		a, b := randomSketch(r, "app"), randomSketch(r, "app")
		once := mergedEncode(a, b)
		many := mergedEncode(a, b, a, b, b, a) // duplicated deliveries
		if !bytes.Equal(once, many) {
			t.Fatalf("iteration %d: duplicated deliveries changed the consensus", i)
		}
		acc := New("")
		acc.Merge(a)
		if acc.Merge(a) {
			t.Fatalf("iteration %d: re-merging an absorbed sketch reported a change", i)
		}
	}
}

func TestMergeSupersession(t *testing.T) {
	// A device's later cumulative sketch dominates its earlier one, so
	// delivering both (in either order) equals delivering just the later.
	r := rand.New(rand.NewSource(19))
	for i := 0; i < 50; i++ {
		early := randomSketch(r, "app")
		late := early.Clone()
		extra := randomSketch(r, "app")
		late.Merge(extra) // strictly-larger cumulative state
		if !bytes.Equal(mergedEncode(early, late), late.Encode()) {
			t.Fatalf("iteration %d: early+late != late", i)
		}
		if !bytes.Equal(mergedEncode(late, early), late.Encode()) {
			t.Fatalf("iteration %d: late+early != late", i)
		}
	}
}

// TestConsensusPermutationInvariant is the closed-loop determinism property
// at the sketch layer: N device sketches folded in any arrival order (with
// random duplication) produce a byte-identical consensus — and therefore an
// identical consensus profile and optimizer input.
func TestConsensusPermutationInvariant(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	const devices = 16
	fleet := make([]*Sketch, devices)
	for i := range fleet {
		fleet[i] = randomSketch(r, "app")
	}
	want := mergedEncode(fleet...)
	for trial := 0; trial < 20; trial++ {
		order := r.Perm(devices)
		acc := New("")
		for _, i := range order {
			acc.Merge(fleet[i])
			if r.Intn(3) == 0 { // chaos: duplicated delivery
				acc.Merge(fleet[r.Intn(devices)])
			}
		}
		// Every fleet member must be delivered at least once; duplicates
		// above may have covered some early, deliver the rest again — joins
		// make over-delivery free.
		for _, s := range fleet {
			acc.Merge(s)
		}
		if !bytes.Equal(acc.Encode(), want) {
			t.Fatalf("trial %d: permuted ingest order changed the consensus bytes", trial)
		}
	}
}
