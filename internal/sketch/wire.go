package sketch

import (
	"encoding/binary"
	"fmt"

	"critics/internal/core"
)

// Wire format (version 1). All integers are unsigned LEB128 varints; every
// list is length-prefixed and canonically ordered, so a sketch has exactly
// one encoding and Encode(Decode(b)) == b for every accepted b — the
// property the fuzz target and the byte-identity determinism tests rely on.
//
//	magic   "CSK" 0x01                      (4 bytes)
//	app     uvarint len (≤ MaxAppName), bytes
//	total   uvarint TotalDyn
//	cm      Depth×Width uvarints, row-major
//	fanout  FanoutBuckets uvarints
//	stall   StallStages uvarints
//	devices uvarint count (≤ KMVSize), first value + positive deltas
//	keys    uvarint count (≤ fleet key-universe bound), each:
//	          func uvarint (≤ 0xFFFF)
//	          block uvarint (≤ 0xFFFF)
//	          n uvarint (2..core.MaxChainLen)
//	          n index bytes
//	          count uvarint (> 0)
//	          fanoutMilli uvarint
//	          thumb byte (0|1)
//	        keys strictly increasing in core.LessKey order
//
// Decode is strict: wrong magic/version, over-bound lengths, non-canonical
// ordering, zero counts and trailing bytes are all errors. Strictness is
// what keeps the coordinator's memory bounded under hostile or corrupted
// input — a sketch either is the canonical form or it is refused.

// Version is the wire format version byte.
const Version = 1

// magic prefixes every encoded sketch.
var magic = [4]byte{'C', 'S', 'K', Version}

// maxWireKeys bounds the decoded key list. Merged consensus sketches exceed
// MaxTrackedKeys (union over devices), so the wire accepts more than a
// device may build, but stays bounded.
const maxWireKeys = 64 * MaxTrackedKeys

// Encode returns the canonical binary form.
func (s *Sketch) Encode() []byte {
	buf := make([]byte, 0, 4+len(s.App)+Depth*Width+16*len(s.Keys)+10*len(s.Devices)+64)
	buf = append(buf, magic[:]...)
	buf = binary.AppendUvarint(buf, uint64(len(s.App)))
	buf = append(buf, s.App...)
	buf = binary.AppendUvarint(buf, s.TotalDyn)
	for r := 0; r < Depth; r++ {
		for i := 0; i < Width; i++ {
			buf = binary.AppendUvarint(buf, s.CM[r][i])
		}
	}
	for _, n := range s.Fanout {
		buf = binary.AppendUvarint(buf, n)
	}
	for _, n := range s.Stall {
		buf = binary.AppendUvarint(buf, n)
	}
	buf = binary.AppendUvarint(buf, uint64(len(s.Devices)))
	prev := uint64(0)
	for i, h := range s.Devices {
		if i == 0 {
			buf = binary.AppendUvarint(buf, h)
		} else {
			buf = binary.AppendUvarint(buf, h-prev)
		}
		prev = h
	}
	buf = binary.AppendUvarint(buf, uint64(len(s.Keys)))
	for i := range s.Keys {
		st := &s.Keys[i]
		buf = binary.AppendUvarint(buf, uint64(st.Key.Func))
		buf = binary.AppendUvarint(buf, uint64(st.Key.Block))
		buf = binary.AppendUvarint(buf, uint64(st.Key.N))
		buf = append(buf, st.Key.Idx[:st.Key.N]...)
		buf = binary.AppendUvarint(buf, st.Count)
		buf = binary.AppendUvarint(buf, st.FanoutMilli)
		if st.ThumbOK {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
	}
	return buf
}

// decoder walks an encoded sketch with bounds checking.
type decoder struct {
	b   []byte
	pos int
}

func (d *decoder) uvarint(what string) (uint64, error) {
	v, n := binary.Uvarint(d.b[d.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("sketch: truncated or overlong varint (%s) at offset %d", what, d.pos)
	}
	d.pos += n
	return v, nil
}

func (d *decoder) bytes(n int, what string) ([]byte, error) {
	if n < 0 || d.pos+n > len(d.b) {
		return nil, fmt.Errorf("sketch: truncated %s at offset %d", what, d.pos)
	}
	out := d.b[d.pos : d.pos+n]
	d.pos += n
	return out, nil
}

// Decode parses and validates one canonical sketch.
func Decode(b []byte) (*Sketch, error) {
	if len(b) < 4 || [4]byte(b[:4]) != magic {
		if len(b) >= 4 && b[0] == 'C' && b[1] == 'S' && b[2] == 'K' {
			return nil, fmt.Errorf("sketch: unsupported wire version %d (want %d)", b[3], Version)
		}
		return nil, fmt.Errorf("sketch: bad magic")
	}
	d := &decoder{b: b, pos: 4}
	s := &Sketch{}

	n, err := d.uvarint("app length")
	if err != nil {
		return nil, err
	}
	if n > MaxAppName {
		return nil, fmt.Errorf("sketch: app name length %d exceeds %d", n, MaxAppName)
	}
	app, err := d.bytes(int(n), "app name")
	if err != nil {
		return nil, err
	}
	s.App = string(app)

	if s.TotalDyn, err = d.uvarint("total_dyn"); err != nil {
		return nil, err
	}
	for r := 0; r < Depth; r++ {
		for i := 0; i < Width; i++ {
			if s.CM[r][i], err = d.uvarint("cm cell"); err != nil {
				return nil, err
			}
		}
	}
	for i := range s.Fanout {
		if s.Fanout[i], err = d.uvarint("fanout bucket"); err != nil {
			return nil, err
		}
	}
	for i := range s.Stall {
		if s.Stall[i], err = d.uvarint("stall stage"); err != nil {
			return nil, err
		}
	}

	nd, err := d.uvarint("device count")
	if err != nil {
		return nil, err
	}
	if nd > KMVSize {
		return nil, fmt.Errorf("sketch: %d device hashes exceed bottom-k bound %d", nd, KMVSize)
	}
	s.Devices = make([]uint64, 0, nd)
	prev := uint64(0)
	for i := uint64(0); i < nd; i++ {
		v, err := d.uvarint("device hash")
		if err != nil {
			return nil, err
		}
		if i > 0 {
			if v == 0 {
				return nil, fmt.Errorf("sketch: device hashes not strictly ascending")
			}
			next := prev + v
			if next < prev {
				return nil, fmt.Errorf("sketch: device hash delta overflows")
			}
			v = next
		}
		s.Devices = append(s.Devices, v)
		prev = v
	}

	nk, err := d.uvarint("key count")
	if err != nil {
		return nil, err
	}
	if nk > maxWireKeys {
		return nil, fmt.Errorf("sketch: %d keys exceed wire bound %d", nk, maxWireKeys)
	}
	s.Keys = make([]KeyStat, 0, min(nk, 1024))
	var prevKey core.ChainKey
	for i := uint64(0); i < nk; i++ {
		var st KeyStat
		fn, err := d.uvarint("key func")
		if err != nil {
			return nil, err
		}
		bl, err := d.uvarint("key block")
		if err != nil {
			return nil, err
		}
		ln, err := d.uvarint("key length")
		if err != nil {
			return nil, err
		}
		if fn > 0xFFFF || bl > 0xFFFF {
			return nil, fmt.Errorf("sketch: key func/block out of range")
		}
		if ln < 2 || ln > core.MaxChainLen {
			return nil, fmt.Errorf("sketch: chain length %d out of range [2,%d]", ln, core.MaxChainLen)
		}
		st.Key.Func, st.Key.Block, st.Key.N = uint16(fn), uint16(bl), uint8(ln)
		idx, err := d.bytes(int(ln), "key indices")
		if err != nil {
			return nil, err
		}
		copy(st.Key.Idx[:], idx)
		if st.Count, err = d.uvarint("key count value"); err != nil {
			return nil, err
		}
		if st.Count == 0 {
			return nil, fmt.Errorf("sketch: zero-count key (non-canonical)")
		}
		if st.FanoutMilli, err = d.uvarint("key fanout"); err != nil {
			return nil, err
		}
		tb, err := d.bytes(1, "thumb flag")
		if err != nil {
			return nil, err
		}
		if tb[0] > 1 {
			return nil, fmt.Errorf("sketch: thumb flag %d not 0|1", tb[0])
		}
		st.ThumbOK = tb[0] == 1
		if i > 0 && !core.LessKey(prevKey, st.Key) {
			return nil, fmt.Errorf("sketch: keys not strictly ascending at index %d", i)
		}
		prevKey = st.Key
		s.Keys = append(s.Keys, st)
	}

	if d.pos != len(b) {
		return nil, fmt.Errorf("sketch: %d trailing bytes after sketch", len(b)-d.pos)
	}
	return s, nil
}
