// Package dist is the distributed shard execution subsystem: a Coordinator
// that farms an experiment's measurement units out to a fleet of Workers
// over HTTP/JSON, behind the sched.Mapper / exp.Remote abstractions so the
// experiment code is unchanged between local and distributed runs.
//
// The unit of work is one exp.MeasureRequest — the serializable form of an
// exp.Context.MeasureVariant call, the profile→compile→simulate leaf that
// dominates every experiment's cost. The coordinator runs shard closures on
// local goroutines (Coordinator.Map); each closure's measurement cache miss
// dispatches a Task to a worker (Coordinator.MeasureRemote), and the decoded
// TaskResult is written into the same preallocated, index-addressed memo
// slot a local build would have filled. Every wire field is integer- or
// bool-valued plain data, so the JSON round-trip is exact and a distributed
// run is bit-identical to a serial local one — the property
// TestDistributedDeterminism enforces with a mid-run worker failure
// injected.
//
// Robustness model:
//
//   - Registration: workers are added explicitly (AddWorker / the
//     coordinator's POST /dist/v1/register endpoint) and removed on
//     deregistration or operator action.
//   - Health: a heartbeat loop probes every worker's /readyz; FailAfter
//     consecutive failures mark it unhealthy (skipped by dispatch) until a
//     probe succeeds again. A failed task dispatch marks the worker
//     unhealthy immediately — faster than waiting for the next probe.
//   - Retry: a failed attempt is retried with exponential backoff on a
//     different worker (the failing worker is excluded) up to MaxAttempts;
//     4xx task responses are permanent (the request itself is bad) and are
//     not retried.
//   - Hedging: an attempt still outstanding after HedgeDelay is re-dispatched
//     to a second worker; the first result wins and the loser is cancelled,
//     cutting straggler tail latency.
//   - Drain: Coordinator.Drain refuses new dispatches and waits for
//     in-flight ones; Worker.Drain flips /readyz to 503 (heartbeats stop
//     routing to it), refuses new tasks and waits for running ones.
//   - Fallback: when every attempt fails (fleet empty, drained, partitioned),
//     the dispatching exp.Context computes the unit locally, so a degraded
//     fleet degrades throughput, never correctness.
//
// All of it is instrumented: tasks dispatched/retried/hedged/failed
// counters, a task latency histogram, per-worker in-flight gauges and task
// counters, and a healthy-workers gauge (metrics.go; family names are pinned
// by the telemetry exposition golden).
package dist

import (
	"fmt"

	"critics/internal/cpu"
	"critics/internal/exp"
	"critics/internal/obs"
	"critics/internal/scan"
	"critics/internal/trace"
)

// Wire paths. The worker serves TaskPath (plus /healthz and /readyz); the
// coordinator serves the register/deregister/workers endpoints (mounted into
// criticd's mux when distribution is enabled).
const (
	TaskPath       = "/dist/v1/task"
	RegisterPath   = "/dist/v1/register"
	DeregisterPath = "/dist/v1/deregister"
	WorkersPath    = "/dist/v1/workers"
)

// Task is the coordinator→worker unit of work, plus a coordinator-scoped id
// for log correlation: either one measurement request (Req; Scan nil) or one
// scan batch (Scan non-nil, Req zero).
type Task struct {
	ID   int64              `json:"id"`
	Req  exp.MeasureRequest `json:"req"`
	Scan *ScanTask          `json:"scan,omitempty"`
}

// ScanTask is a batch of source-free scan work: score the named trace chunks
// of (image, trace) — both referenced by artifact digest, never inlined. A
// worker missing either artifact fetches it from the coordinator's store by
// digest and keeps it in its local warm cache, so a recycled worker re-warms
// on first use and later batches hit disk/memory locally.
type ScanTask struct {
	ImageDigest string       `json:"image_digest"`
	TraceDigest string       `json:"trace_digest"`
	Chunks      []int        `json:"chunks"`
	Opt         scan.Options `json:"opt"`
}

// label names a task for logs.
func (t Task) label() string {
	if t.Scan != nil {
		return fmt.Sprintf("scan %s [%d chunks]", t.Scan.ImageDigest, len(t.Scan.Chunks))
	}
	return fmt.Sprintf("%s/%s", t.Req.App.Name, t.Req.Kind)
}

// TaskResult is the worker's reply: the measurement in wire form. The
// cpu.Result's in-memory hierarchy/BPU handles are excluded from JSON (no
// consumer of a remote measurement reads them); everything else — counters,
// the window aggregates, and (for collect=true requests only) the
// per-instruction records, dynamic stream and fanouts — round-trips
// exactly. Streamed (collect=false) measurements retain no slices, so
// their replies are a few hundred bytes regardless of window length.
type TaskResult struct {
	Res     cpu.Result    `json:"res"`
	Agg     exp.WindowAgg `json:"agg"`
	Dyns    []trace.Dyn   `json:"dyns,omitempty"`
	Fanouts []int32       `json:"fanouts,omitempty"`

	// Scan carries a scan batch's per-chunk results (Task.Scan requests
	// only). Chunk scoring is integer-only and position-independent, so
	// these merge into a report byte-identical to local computation.
	Scan []scan.ChunkResult `json:"scan,omitempty"`

	// Spans are the worker-side trace spans of this task (remote compute
	// plus its memo builds), present only when the request carried the
	// obs trace headers. Timestamps are microseconds in the worker's task
	// clock; the coordinator rebases them into the job trace on merge.
	Spans []obs.Span `json:"spans,omitempty"`
}

// resultOf converts a measurement (plus any recorded spans) to its wire
// form.
func resultOf(m *exp.Measurement, spans []obs.Span) TaskResult {
	return TaskResult{Res: m.Res, Agg: m.Agg, Dyns: m.Dyns, Fanouts: m.Fanouts, Spans: spans}
}

// measurement converts the wire form back.
func (r TaskResult) measurement() *exp.Measurement {
	return &exp.Measurement{Res: r.Res, Agg: r.Agg, Dyns: r.Dyns, Fanouts: r.Fanouts}
}

// registerRequest is the POST /dist/v1/register (and /deregister) body.
type registerRequest struct {
	// URL is the worker's advertised base URL, reachable from the
	// coordinator.
	URL string `json:"url"`

	// Capacity is how many tasks the worker executes concurrently
	// (its admission semaphore size); 0 means 1.
	Capacity int `json:"capacity,omitempty"`
}

// WorkerStatus is one fleet member's state as reported by GET
// /dist/v1/workers and Coordinator.Workers.
type WorkerStatus struct {
	URL       string `json:"url"`
	Healthy   bool   `json:"healthy"`
	Capacity  int    `json:"capacity"`
	Inflight  int    `json:"inflight"`
	TasksDone int64  `json:"tasks_done"`
	Failures  int64  `json:"failures"`
}

// WorkersResponse is the GET /dist/v1/workers body.
type WorkersResponse struct {
	Workers []WorkerStatus `json:"workers"`
}

// errorBody is the JSON body of non-2xx dist responses.
type errorBody struct {
	Error string `json:"error"`
}
