package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"critics/internal/artifact"
	"critics/internal/exp"
	"critics/internal/obs"
	"critics/internal/scan"
	"critics/internal/telemetry"
)

// WorkerConfig tunes a worker. The zero value is usable; NewWorker fills
// defaults.
type WorkerConfig struct {
	// Caches is the artifact bundle tasks execute against — the worker-side
	// equivalent of criticd's process-wide shared cache, so repeated tasks
	// for the same app reuse programs/profiles/variants. nil creates one.
	Caches *exp.Caches

	// Workers bounds each task's internal shard pool (per-window profile
	// extraction); 0 selects GOMAXPROCS.
	Workers int

	// Capacity is how many tasks execute concurrently; excess requests wait
	// (the coordinator's per-attempt timeout governs). /readyz reports 503
	// while all slots are busy. Default GOMAXPROCS.
	Capacity int

	// Registry receives the worker's metric families; nil disables them.
	Registry *telemetry.Registry

	// Logger receives structured task logs; nil discards them.
	Logger *slog.Logger

	// Artifacts is the worker's local content-addressed warm cache for scan
	// inputs (binary images, traces): a recycled worker re-opened on the
	// same directory starts warm. nil creates a temp-dir store.
	Artifacts *artifact.Store

	// ArtifactSource is the base URL scan artifacts missing from the local
	// store are fetched from by digest — normally the coordinator's criticd.
	// Empty means scan tasks must find their artifacts locally.
	ArtifactSource string

	// FailFirstTasks makes the worker answer its first N tasks with an
	// injected 500 — a chaos hook for exercising the coordinator's retry
	// path in smoke tests. 0 (the default) disables it.
	FailFirstTasks int
}

// Worker executes measurement tasks against a shared cache bundle — the
// criticd -worker mode core. Construct with NewWorker, serve Handler, stop
// with Drain.
type Worker struct {
	cfg WorkerConfig
	log *slog.Logger

	slots     chan struct{} // admission semaphore, Capacity wide
	inflight  sync.WaitGroup
	draining  atomic.Bool
	failFirst atomic.Int64 // remaining injected failures (FailFirstTasks)

	tasksDone *telemetry.Counter
	tasksErr  *telemetry.Counter
	busy      *telemetry.Gauge

	fetchClient *http.Client

	// idxMu guards idxCache, a small memo of built image indexes so many
	// scan batches against the same image decode it once.
	idxMu    sync.Mutex
	idxCache map[string]*scan.Index
}

// NewWorker builds a worker.
func NewWorker(cfg WorkerConfig) *Worker {
	if cfg.Caches == nil {
		cfg.Caches = exp.NewCaches()
	}
	if cfg.Capacity <= 0 {
		cfg.Capacity = runtime.GOMAXPROCS(0)
	}
	log := cfg.Logger
	if log == nil {
		log = slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{Level: slog.LevelError + 4}))
	}
	if cfg.Artifacts == nil {
		if dir, err := os.MkdirTemp("", "critics-worker-artifacts-*"); err == nil {
			cfg.Artifacts, _ = artifact.Open(artifact.Config{Dir: dir, Registry: cfg.Registry})
		}
	}
	w := &Worker{
		cfg: cfg, log: log,
		slots:       make(chan struct{}, cfg.Capacity),
		fetchClient: &http.Client{Timeout: 2 * time.Minute},
		idxCache:    map[string]*scan.Index{},
	}
	w.failFirst.Store(int64(cfg.FailFirstTasks))
	if reg := cfg.Registry; reg != nil {
		w.tasksDone = reg.Counter("critics_dist_worker_tasks_executed_total",
			"Tasks executed successfully by this worker.")
		w.tasksErr = reg.Counter("critics_dist_worker_task_errors_total",
			"Tasks that failed on this worker (panic, cancellation, bad request).")
		w.busy = reg.Gauge("critics_dist_worker_busy_slots",
			"Task slots currently executing.")
	}
	return w
}

// Capacity returns the worker's concurrent-task bound.
func (w *Worker) Capacity() int { return w.cfg.Capacity }

// Saturated reports whether every task slot is busy — the /readyz
// queue-not-saturated condition.
func (w *Worker) Saturated() bool { return len(w.slots) >= cap(w.slots) }

// Drain refuses new tasks (POST /dist/v1/task answers 503, /readyz flips to
// 503 so heartbeats stop routing here) and waits for in-flight ones. Safe to
// call more than once.
func (w *Worker) Drain() {
	w.draining.Store(true)
	w.inflight.Wait()
}

// Handler returns the worker's HTTP API: the task endpoint plus the liveness
// and readiness probes the coordinator's heartbeats use.
func (w *Worker) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+TaskPath, w.handleTask)
	mux.HandleFunc("GET /healthz", func(rw http.ResponseWriter, _ *http.Request) {
		writeJSON(rw, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /readyz", func(rw http.ResponseWriter, _ *http.Request) {
		switch {
		case w.draining.Load():
			writeJSON(rw, http.StatusServiceUnavailable, errorBody{Error: "draining"})
		case w.Saturated():
			writeJSON(rw, http.StatusServiceUnavailable, errorBody{Error: "all task slots busy"})
		default:
			writeJSON(rw, http.StatusOK, map[string]string{"status": "ready"})
		}
	})
	return mux
}

// maxTaskBody bounds task request bodies; requests are small configuration
// structs.
const maxTaskBody = 1 << 20

func (w *Worker) handleTask(rw http.ResponseWriter, r *http.Request) {
	if w.draining.Load() {
		writeJSON(rw, http.StatusServiceUnavailable, errorBody{Error: "worker draining"})
		return
	}
	var task Task
	body, err := io.ReadAll(io.LimitReader(r.Body, maxTaskBody))
	if err == nil {
		err = json.Unmarshal(body, &task)
	}
	if err != nil {
		writeJSON(rw, http.StatusBadRequest, errorBody{Error: "malformed task: " + err.Error()})
		return
	}
	if w.cfg.FailFirstTasks > 0 && w.failFirst.Add(-1) >= 0 {
		// Injected transient failure: 500 sends the coordinator to another
		// worker via its retry path.
		if w.tasksErr != nil {
			w.tasksErr.Inc()
		}
		w.log.Warn("injecting task failure", "task", task.ID)
		writeJSON(rw, http.StatusInternalServerError, errorBody{Error: "injected failure (fail-first-tasks)"})
		return
	}

	// Admission: wait for a slot or for the dispatcher to give up.
	select {
	case w.slots <- struct{}{}:
	case <-r.Context().Done():
		return
	}
	w.inflight.Add(1)
	if w.busy != nil {
		w.busy.Add(1)
	}
	defer func() {
		if w.busy != nil {
			w.busy.Add(-1)
		}
		w.inflight.Done()
		<-w.slots
	}()

	// Trace propagation: when the coordinator sent trace headers, record the
	// task's compute (and its memo builds, via the context) on a fresh trace
	// whose spans ride back in the result for the coordinator to merge.
	ctx := r.Context()
	var wt *obs.Trace
	if traceID := r.Header.Get(obs.TraceHeader); traceID != "" {
		wt = obs.NewTrace(traceID)
		ctx = obs.ContextWith(ctx, wt, "c")
	}

	start := time.Now()
	var result TaskResult
	if task.Scan != nil {
		result.Scan, err = w.executeScan(ctx, *task.Scan)
	} else {
		var m *exp.Measurement
		m, err = w.execute(ctx, task)
		if err == nil {
			result = resultOf(m, nil)
		}
	}
	if err != nil {
		if w.tasksErr != nil {
			w.tasksErr.Inc()
		}
		code := http.StatusInternalServerError
		if r.Context().Err() == nil && errors.Is(err, errBadTask) {
			// The task itself is unrunnable — retrying it on another worker
			// would fail identically, so answer with a permanent status.
			code = http.StatusUnprocessableEntity
		}
		w.log.Warn("task failed", "task", task.ID, "what", task.label(), "err", err)
		writeJSON(rw, code, errorBody{Error: err.Error()})
		return
	}
	if w.tasksDone != nil {
		w.tasksDone.Inc()
	}
	w.log.Info("task done", "task", task.ID, "what", task.label(),
		"seconds", time.Since(start).Seconds())
	if wt != nil {
		wt.Add(obs.Span{
			ID: "c", Name: "remote-compute",
			StartUS: 0, DurUS: wt.Now(),
			Attrs: []obs.Attr{obs.A("what", task.label())},
		})
		result.Spans, _ = wt.Snapshot()
	}
	writeJSON(rw, http.StatusOK, result)
}

// errBadTask marks a task the pipeline rejected (e.g. an unknown variant
// kind) — permanent, not worker-specific.
var errBadTask = fmt.Errorf("task rejected by the pipeline")

// execute runs one task with panic isolation: a panicking build fails the
// task, not the worker.
func (w *Worker) execute(ctx context.Context, task Task) (m *exp.Measurement, err error) {
	defer func() {
		if p := recover(); p != nil {
			m, err = nil, fmt.Errorf("%w: %v", errBadTask, p)
		}
	}()
	return exp.ExecuteMeasure(ctx, task.Req, w.cfg.Caches, w.cfg.Workers)
}

// executeScan scores one scan batch. Both inputs arrive by digest: whatever
// the local artifact store is missing is fetched from the coordinator first
// (ensureArtifact), so the store doubles as a warm cache across batches and
// worker restarts. Image decode is memoized per digest — a scan fanned out
// over N batches builds its index here once.
func (w *Worker) executeScan(ctx context.Context, st ScanTask) ([]scan.ChunkResult, error) {
	if w.cfg.Artifacts == nil {
		return nil, fmt.Errorf("%w: worker has no artifact store", errBadTask)
	}
	if err := w.ensureArtifact(ctx, st.ImageDigest); err != nil {
		return nil, err
	}
	if err := w.ensureArtifact(ctx, st.TraceDigest); err != nil {
		return nil, err
	}
	idx, err := w.imageIndex(st.ImageDigest)
	if err != nil {
		return nil, err
	}

	rc, _, err := w.cfg.Artifacts.Open(st.TraceDigest)
	if err != nil {
		return nil, fmt.Errorf("opening trace artifact: %w", err)
	}
	defer rc.Close()
	results, err := scan.ScoreSelected(idx, rc, st.Chunks, st.Opt)
	if err != nil {
		// A malformed trace fails identically on every worker.
		return nil, fmt.Errorf("%w: %v", errBadTask, err)
	}
	return results, nil
}

// ensureArtifact makes digest present in the local store, fetching it from
// ArtifactSource when missing. Fetch failures are transient (the coordinator
// retries elsewhere or later); a missing source with a missing blob is
// permanent for this fleet configuration.
func (w *Worker) ensureArtifact(ctx context.Context, digest string) error {
	if err := artifact.Validate(digest); err != nil {
		return fmt.Errorf("%w: %v", errBadTask, err)
	}
	if w.cfg.Artifacts.Has(digest) {
		return nil
	}
	if w.cfg.ArtifactSource == "" {
		return fmt.Errorf("%w: artifact %s not in local store and no artifact source configured", errBadTask, digest)
	}
	url := w.cfg.ArtifactSource + "/v1/artifacts/" + digest
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := w.fetchClient.Do(req)
	if err != nil {
		return fmt.Errorf("fetching artifact %s: %w", digest, err)
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("fetching artifact %s: %s answered %s", digest, url, resp.Status)
	}
	// PutChunk verifies the digest on finalize, so a corrupted transfer is
	// rejected rather than cached.
	if _, _, err := w.cfg.Artifacts.PutChunk(digest, 0, resp.Body, true); err != nil {
		return fmt.Errorf("caching artifact %s: %w", digest, err)
	}
	return nil
}

// imageIndex returns the memoized scan index for an image digest, building
// it from the stored blob on first use.
func (w *Worker) imageIndex(digest string) (*scan.Index, error) {
	w.idxMu.Lock()
	defer w.idxMu.Unlock()
	if idx, ok := w.idxCache[digest]; ok {
		return idx, nil
	}
	rc, _, err := w.cfg.Artifacts.Open(digest)
	if err != nil {
		return nil, fmt.Errorf("opening image artifact: %w", err)
	}
	defer rc.Close()
	idx, err := scan.BuildIndex(rc)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", errBadTask, err)
	}
	// Bound the memo: scans cycle through few images; keep it from growing
	// without bound on a long-lived worker.
	if len(w.idxCache) >= 8 {
		for k := range w.idxCache {
			delete(w.idxCache, k)
			break
		}
	}
	w.idxCache[digest] = idx
	return idx, nil
}

// Register announces a worker to the coordinator at coordURL, advertising
// advertiseURL as its task endpoint base, retrying (500ms cadence) until the
// registration succeeds or ctx is done. client == nil uses a default.
func Register(ctx context.Context, client *http.Client, coordURL, advertiseURL string, capacity int) error {
	return postRegistration(ctx, client, coordURL+RegisterPath, advertiseURL, capacity, true)
}

// Deregister removes the worker from the coordinator's fleet — the polite
// half of a graceful drain (heartbeats would notice eventually anyway).
// One-shot: a dead coordinator makes this a no-op error.
func Deregister(ctx context.Context, client *http.Client, coordURL, advertiseURL string) error {
	return postRegistration(ctx, client, coordURL+DeregisterPath, advertiseURL, 0, false)
}

func postRegistration(ctx context.Context, client *http.Client, url, advertiseURL string, capacity int, retry bool) error {
	if client == nil {
		client = &http.Client{Timeout: 5 * time.Second}
	}
	body, err := json.Marshal(registerRequest{URL: advertiseURL, Capacity: capacity})
	if err != nil {
		return err
	}
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := client.Do(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode/100 == 2 {
				return nil
			}
			err = fmt.Errorf("dist: %s answered %s", url, resp.Status)
		}
		if !retry {
			return err
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("dist: registering with %s: %w (last error: %v)", url, ctx.Err(), err)
		case <-time.After(500 * time.Millisecond):
		}
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}
