package dist

import "critics/internal/telemetry"

// metrics are the coordinator's registry series. Family names are pinned by
// the telemetry package's exposition golden test — rename there too.
type metrics struct {
	dispatched *telemetry.Counter   // attempts actually posted to a worker
	retried    *telemetry.Counter   // attempts beyond a task's first
	hedged     *telemetry.Counter   // speculative straggler re-dispatches
	hedgeWins  *telemetry.Counter   // hedges that returned first
	failed     *telemetry.Counter   // tasks that exhausted every attempt
	healthy    *telemetry.Gauge     // workers currently passing heartbeats
	taskSecs   *telemetry.Histogram // dispatch→result latency per task

	// Per-worker series, labeled by advertised URL.
	inflight    func(worker string) *telemetry.Gauge
	workerTasks func(worker string) *telemetry.Counter
}

// taskSecondsBuckets cover 1ms..~2min task latencies.
var taskSecondsBuckets = telemetry.ExpBuckets(0.001, 2, 18)

func newMetrics(reg *telemetry.Registry) *metrics {
	return &metrics{
		dispatched: reg.Counter("critics_dist_tasks_dispatched_total",
			"Task attempts dispatched to workers."),
		retried: reg.Counter("critics_dist_tasks_retried_total",
			"Task attempts beyond the first (failure retries onto another worker)."),
		hedged: reg.Counter("critics_dist_tasks_hedged_total",
			"Speculative re-dispatches of straggler tasks."),
		hedgeWins: reg.Counter("critics_dist_hedge_wins_total",
			"Hedged dispatches that produced the winning result."),
		failed: reg.Counter("critics_dist_tasks_failed_total",
			"Tasks that exhausted every attempt (the caller falls back to local execution)."),
		healthy: reg.Gauge("critics_dist_workers_healthy",
			"Workers currently passing heartbeat probes."),
		taskSecs: reg.Histogram("critics_dist_task_seconds",
			"Distributed task latency, dispatch to result (includes retries and hedges).",
			taskSecondsBuckets),
		inflight: func(worker string) *telemetry.Gauge {
			return reg.Gauge("critics_dist_worker_inflight",
				"Tasks currently in flight per worker.", telemetry.L("worker", worker))
		},
		workerTasks: func(worker string) *telemetry.Counter {
			return reg.Counter("critics_dist_worker_tasks_total",
				"Tasks completed successfully per worker.", telemetry.L("worker", worker))
		},
	}
}
