package dist

import (
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"critics/internal/exp"
	"critics/internal/telemetry"
	"critics/internal/trace"
)

// failAfterN passes the first n task posts through to the wrapped worker and
// answers 500 to every one after — a worker dying mid-run. Probes and the
// already-admitted tasks are untouched, so the coordinator keeps believing in
// the worker (heartbeats pass) and keeps having dispatches blow up on it,
// exercising the retry path repeatedly.
type failAfterN struct {
	h http.Handler
	n int64

	seen atomic.Int64
}

func (f *failAfterN) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodPost && r.URL.Path == TaskPath && f.seen.Add(1) > f.n {
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: "injected mid-run worker failure"})
		return
	}
	f.h.ServeHTTP(w, r)
}

// distCtx returns a reduced-scale experiment context matching the exp
// package's own determinism tests.
func distCtx(workers int) *exp.Context {
	c := exp.QuickContext()
	c.WarmupArch = 4_000
	c.WarmArch = 5_000
	c.MeasureArch = 12_000
	c.ProfilePlan = trace.SamplePlan{Samples: 3, Length: 8_000, Gap: 2_000, Warmup: 2_000}
	c.Workers = workers
	return c
}

// TestDistributedDeterminism is the subsystem's acceptance gate: an
// experiment run through a coordinator and two real workers — one of which
// starts failing mid-run — produces byte-identical output to a serial local
// run. It proves the whole chain at once: the MeasureRequest wire form
// carries everything a measurement depends on, the JSON round-trip is exact,
// retries re-execute rather than corrupt, and the local fallback (when
// attempts exhaust) computes the same bits the fleet would have.
func TestDistributedDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real experiments; skipped in -short")
	}
	for _, id := range []string{"fig8", "fig10a"} {
		t.Run(id, func(t *testing.T) {
			want, err := exp.Run(id, distCtx(1))
			if err != nil {
				t.Fatalf("%s (serial local): %v", id, err)
			}

			// A healthy worker and one that dies after 3 tasks.
			w1 := NewWorker(WorkerConfig{Workers: 2})
			srv1 := httptest.NewServer(w1.Handler())
			defer srv1.Close()
			w2 := NewWorker(WorkerConfig{Workers: 2})
			srv2 := httptest.NewServer(&failAfterN{h: w2.Handler(), n: 3})
			defer srv2.Close()

			reg := telemetry.NewRegistry()
			coord := NewCoordinator(Config{
				TaskTimeout:  2 * time.Minute,
				MaxAttempts:  3,
				RetryBackoff: 5 * time.Millisecond,
				HedgeDelay:   -1,
				Registry:     reg,
			})
			defer coord.Close()
			coord.AddWorkerCapacity(srv1.URL, 2)
			coord.AddWorkerCapacity(srv2.URL, 2)

			c := distCtx(4)
			c.SetRemote(coord)
			c.SetMapper(coord)
			got, err := exp.Run(id, c)
			if err != nil {
				t.Fatalf("%s (distributed): %v", id, err)
			}
			if got != want {
				t.Errorf("%s: distributed output differs from serial local\n--- serial ---\n%s\n--- distributed ---\n%s", id, want, got)
			}

			m := coord.met
			if m.dispatched.Value() == 0 {
				t.Error("no tasks were dispatched; the remote path was not exercised")
			}
			if m.retried.Value() == 0 {
				t.Error("no retries despite the injected worker failure")
			}
			t.Logf("%s: dispatched=%d retried=%d failed=%d", id,
				m.dispatched.Value(), m.retried.Value(), m.failed.Value())
		})
	}
}
