package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"critics/internal/exp"
	"critics/internal/obs"
	"critics/internal/scan"
	"critics/internal/sched"
	"critics/internal/telemetry"
)

// Config tunes a Coordinator. The zero value is usable; NewCoordinator fills
// defaults.
type Config struct {
	// TaskTimeout bounds a single dispatch attempt (post → decoded result).
	// Default 2m.
	TaskTimeout time.Duration

	// MaxAttempts is how many workers a task tries before the coordinator
	// gives up and the caller falls back to local execution. Default 4.
	MaxAttempts int

	// RetryBackoff is the delay before the second attempt; it doubles per
	// attempt. Default 100ms.
	RetryBackoff time.Duration

	// HedgeDelay is how long an attempt may stay outstanding before a
	// speculative duplicate is dispatched to a different worker (first result
	// wins, the loser is cancelled). 0 disables hedging. Default 30s.
	HedgeDelay time.Duration

	// Heartbeat is the /readyz probe cadence. Default 2s.
	Heartbeat time.Duration

	// ProbeTimeout bounds one heartbeat probe. Default 1s.
	ProbeTimeout time.Duration

	// FailAfter is how many consecutive probe failures mark a worker
	// unhealthy. Default 2.
	FailAfter int

	// Oversubscribe multiplies the fleet's healthy capacity when sizing
	// Map's local shard pool, keeping workers saturated while shards block
	// on the wire. Default 2.
	Oversubscribe int

	// Registry receives the coordinator's metric families; nil disables them.
	Registry *telemetry.Registry

	// Logger receives structured dispatch logs; nil discards them.
	Logger *slog.Logger

	// Client issues task and probe requests; nil uses a default with no
	// global timeout (per-attempt contexts bound each call).
	Client *http.Client
}

// workerState is one fleet member. Mutable fields are guarded by
// Coordinator.mu except the atomics, which hot paths touch without it.
type workerState struct {
	url      string
	capacity int
	seq      int64 // registration order; dispatch tie-break, so retries are deterministic under equal load

	healthy    bool
	probeFails int // consecutive heartbeat failures

	inflightN atomic.Int64
	tasksDone atomic.Int64
	failures  atomic.Int64

	inflightG  *telemetry.Gauge   // nil when metrics are off
	tasksTotal *telemetry.Counter // nil when metrics are off
}

// Coordinator partitions experiment work across a worker fleet. It implements
// exp.Remote (MeasureRemote dispatches one measurement unit with retry and
// hedging) and sched.Mapper (Map runs shard closures on an oversubscribed
// local pool so many units are on the wire at once). Construct with
// NewCoordinator; stop with Drain then Close.
type Coordinator struct {
	cfg  Config
	log  *slog.Logger
	met  *metrics      // nil when cfg.Registry is nil
	obsv *obs.Observer // nil disables tracing/flight-recorder/SLO hooks

	mu      sync.Mutex
	workers map[string]*workerState
	nextSeq int64

	nextTask atomic.Int64
	draining atomic.Bool
	inflight sync.WaitGroup

	stopHeartbeat context.CancelFunc
	heartbeatDone chan struct{}
}

// NewCoordinator builds a coordinator and starts its heartbeat loop.
func NewCoordinator(cfg Config) *Coordinator {
	if cfg.TaskTimeout <= 0 {
		cfg.TaskTimeout = 2 * time.Minute
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 4
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 100 * time.Millisecond
	}
	if cfg.HedgeDelay == 0 {
		cfg.HedgeDelay = 30 * time.Second
	}
	if cfg.HedgeDelay < 0 {
		cfg.HedgeDelay = 0 // negative disables explicitly
	}
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = 2 * time.Second
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = time.Second
	}
	if cfg.FailAfter <= 0 {
		cfg.FailAfter = 2
	}
	if cfg.Oversubscribe <= 0 {
		cfg.Oversubscribe = 2
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{}
	}
	log := cfg.Logger
	if log == nil {
		log = slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{Level: slog.LevelError + 4}))
	}
	c := &Coordinator{
		cfg:     cfg,
		log:     log,
		workers: make(map[string]*workerState),
	}
	if cfg.Registry != nil {
		c.met = newMetrics(cfg.Registry)
	}
	hbCtx, cancel := context.WithCancel(context.Background())
	c.stopHeartbeat = cancel
	c.heartbeatDone = make(chan struct{})
	go c.heartbeatLoop(hbCtx)
	return c
}

// SetObserver attaches the fleet observability layer: dispatch/retry/hedge
// spans on job traces, flight-recorder events, and the dispatch_rtt SLO
// stage. Call before serving traffic (it is not synchronized against
// dispatches).
func (c *Coordinator) SetObserver(o *obs.Observer) { c.obsv = o }

// traceCtx is the per-dispatch trace handle threaded from MeasureRemote
// down to post: the job's trace, the span new legs parent to, and the job
// id for flight-recorder events. nil when the request carries no trace.
type traceCtx struct {
	t      *obs.Trace
	parent string
	job    string
}

// event appends a flight-recorder event when the observer is attached.
func (c *Coordinator) event(tc *traceCtx, typ, detail string) {
	if c.obsv == nil || tc == nil {
		return
	}
	c.obsv.Ring.Append(tc.job, typ, detail)
}

// Close stops the heartbeat loop. It does not wait for in-flight tasks; call
// Drain first for a graceful stop.
func (c *Coordinator) Close() {
	c.stopHeartbeat()
	<-c.heartbeatDone
}

// Drain refuses new dispatches (MeasureRemote errors immediately, sending
// callers to their local fallback) and waits for in-flight tasks or ctx.
func (c *Coordinator) Drain(ctx context.Context) error {
	c.draining.Store(true)
	done := make(chan struct{})
	go func() { c.inflight.Wait(); close(done) }()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("dist: drain interrupted: %w", ctx.Err())
	}
}

// AddWorker registers a worker by base URL with capacity 1, probing it once
// synchronously so an alive worker is dispatchable immediately.
func (c *Coordinator) AddWorker(url string) { c.AddWorkerCapacity(url, 1) }

// AddWorkerCapacity registers a worker with an explicit concurrent-task
// capacity. Re-registering an existing URL updates its capacity and resets
// its health (a restarted worker re-announcing itself).
func (c *Coordinator) AddWorkerCapacity(url string, capacity int) {
	if capacity <= 0 {
		capacity = 1
	}
	alive := c.probe(url)

	c.mu.Lock()
	w, ok := c.workers[url]
	if !ok {
		w = &workerState{url: url, seq: c.nextSeq}
		c.nextSeq++
		if c.met != nil {
			w.inflightG = c.met.inflight(url)
			w.tasksTotal = c.met.workerTasks(url)
		}
		c.workers[url] = w
	}
	w.capacity = capacity
	w.healthy = alive
	w.probeFails = 0
	c.updateHealthyGaugeLocked()
	c.mu.Unlock()

	c.log.Info("worker registered", "worker", url, "capacity", capacity, "healthy", alive)
}

// RemoveWorker drops a worker from the fleet. In-flight tasks on it run to
// completion (or their timeout); it just receives no new ones.
func (c *Coordinator) RemoveWorker(url string) {
	c.mu.Lock()
	_, ok := c.workers[url]
	delete(c.workers, url)
	c.updateHealthyGaugeLocked()
	c.mu.Unlock()
	if ok {
		c.log.Info("worker deregistered", "worker", url)
	}
}

// Workers returns fleet status sorted by registration order.
func (c *Coordinator) Workers() []WorkerStatus {
	c.mu.Lock()
	states := make([]*workerState, 0, len(c.workers))
	for _, w := range c.workers {
		states = append(states, w)
	}
	sort.Slice(states, func(i, j int) bool { return states[i].seq < states[j].seq })
	out := make([]WorkerStatus, len(states))
	for i, w := range states {
		out[i] = WorkerStatus{
			URL:       w.url,
			Healthy:   w.healthy,
			Capacity:  w.capacity,
			Inflight:  int(w.inflightN.Load()),
			TasksDone: w.tasksDone.Load(),
			Failures:  w.failures.Load(),
		}
	}
	c.mu.Unlock()
	return out
}

// HealthyWorkers returns how many fleet members currently pass heartbeats.
func (c *Coordinator) HealthyWorkers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.healthyCountLocked()
}

func (c *Coordinator) healthyCountLocked() int {
	n := 0
	for _, w := range c.workers {
		if w.healthy {
			n++
		}
	}
	return n
}

func (c *Coordinator) updateHealthyGaugeLocked() {
	if c.met != nil {
		c.met.healthy.Set(int64(c.healthyCountLocked()))
	}
}

// markUnhealthy records a dispatch failure against a worker without waiting
// for the next heartbeat to notice.
func (c *Coordinator) markUnhealthy(url string) {
	c.mu.Lock()
	if w, ok := c.workers[url]; ok && w.healthy {
		w.healthy = false
		w.probeFails = c.cfg.FailAfter
		c.updateHealthyGaugeLocked()
		c.log.Warn("worker marked unhealthy after dispatch failure", "worker", url)
	}
	c.mu.Unlock()
}

// heartbeatLoop probes every worker's /readyz each Heartbeat tick.
func (c *Coordinator) heartbeatLoop(ctx context.Context) {
	defer close(c.heartbeatDone)
	t := time.NewTicker(c.cfg.Heartbeat)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		c.mu.Lock()
		urls := make([]string, 0, len(c.workers))
		for url := range c.workers {
			urls = append(urls, url)
		}
		c.mu.Unlock()
		for _, url := range urls {
			alive := c.probe(url)
			c.mu.Lock()
			w, ok := c.workers[url]
			if !ok {
				c.mu.Unlock()
				continue
			}
			if alive {
				if !w.healthy {
					c.log.Info("worker healthy again", "worker", url)
				}
				w.healthy = true
				w.probeFails = 0
			} else {
				w.probeFails++
				if w.probeFails >= c.cfg.FailAfter && w.healthy {
					w.healthy = false
					c.log.Warn("worker failed heartbeats", "worker", url, "consecutive", w.probeFails)
				}
			}
			c.updateHealthyGaugeLocked()
			c.mu.Unlock()
		}
	}
}

// probe GETs a worker's /readyz once.
func (c *Coordinator) probe(url string) bool {
	ctx, cancel := context.WithTimeout(context.Background(), c.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/readyz", nil)
	if err != nil {
		return false
	}
	resp, err := c.cfg.Client.Do(req)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// pickWorker chooses the healthy worker with the fewest in-flight tasks,
// breaking ties by registration order (deterministic, so tests can predict
// routing), skipping URLs in exclude.
func (c *Coordinator) pickWorker(exclude map[string]bool) *workerState {
	c.mu.Lock()
	defer c.mu.Unlock()
	var best *workerState
	var bestLoad int64
	for _, w := range c.workers {
		if !w.healthy || exclude[w.url] {
			continue
		}
		// Load-balance by slots-per-capacity so a capacity-4 worker takes
		// four tasks for a capacity-1 worker's one.
		load := w.inflightN.Load() * 16 / int64(w.capacity)
		if best == nil || load < bestLoad || (load == bestLoad && w.seq < best.seq) {
			best, bestLoad = w, load
		}
	}
	return best
}

// errPermanent wraps worker 4xx responses: the task itself is bad, so trying
// another worker would fail identically.
type errPermanent struct{ err error }

func (e errPermanent) Error() string { return e.err.Error() }
func (e errPermanent) Unwrap() error { return e.err }

// errNoWorkers is returned when no healthy, non-excluded worker exists.
var errNoWorkers = errors.New("dist: no healthy workers")

// MeasureRemote implements exp.Remote: it dispatches one measurement unit to
// the fleet with retry, backoff and hedging, and returns the decoded
// measurement. Any error sends the caller to its local fallback.
func (c *Coordinator) MeasureRemote(ctx context.Context, req exp.MeasureRequest) (*exp.Measurement, error) {
	if c.draining.Load() {
		return nil, errors.New("dist: coordinator draining")
	}
	c.inflight.Add(1)
	defer c.inflight.Done()

	var tc *traceCtx
	if t, parent, ok := obs.FromContext(ctx); ok && t != nil {
		tc = &traceCtx{t: t, parent: parent, job: t.ID()}
	}

	task := Task{ID: c.nextTask.Add(1), Req: req}
	tr, err := c.run(ctx, task, tc)
	if err != nil {
		return nil, err
	}
	return tr.measurement(), nil
}

// ScanRemote dispatches one scan batch (a set of trace chunks against
// digest-referenced artifacts) to the fleet with the same retry/backoff/
// hedging machinery as measurements, returning the per-chunk results.
func (c *Coordinator) ScanRemote(ctx context.Context, st ScanTask) ([]scan.ChunkResult, error) {
	if c.draining.Load() {
		return nil, errors.New("dist: coordinator draining")
	}
	c.inflight.Add(1)
	defer c.inflight.Done()

	var tc *traceCtx
	if t, parent, ok := obs.FromContext(ctx); ok && t != nil {
		tc = &traceCtx{t: t, parent: parent, job: t.ID()}
	}

	task := Task{ID: c.nextTask.Add(1), Scan: &st}
	tr, err := c.run(ctx, task, tc)
	if err != nil {
		return nil, err
	}
	return tr.Scan, nil
}

// run is the shared dispatch wrapper behind MeasureRemote and ScanRemote:
// metrics, fallback events and the dispatch-RTT SLO stage around one task.
func (c *Coordinator) run(ctx context.Context, task Task, tc *traceCtx) (*TaskResult, error) {
	start := time.Now()
	tr, err := c.dispatch(ctx, task, tc)
	if err != nil {
		if c.met != nil {
			c.met.failed.Inc()
		}
		c.event(tc, obs.EvFallback, fmt.Sprintf("task %d: %v", task.ID, err))
		c.log.Warn("task exhausted all attempts", "task", task.ID, "work", task.label(), "err", err)
		return nil, err
	}
	if c.met != nil {
		c.met.taskSecs.Observe(time.Since(start).Seconds())
	}
	if c.obsv != nil && tc != nil {
		c.obsv.Stages.Observe(obs.StageDispatchRTT, time.Since(start).Seconds(), tc.job)
	}
	return tr, nil
}

// dispatch runs the retry loop: pick a worker, try it (with hedging), and on
// a transient failure back off exponentially and try a different one.
func (c *Coordinator) dispatch(ctx context.Context, task Task, tc *traceCtx) (*TaskResult, error) {
	exclude := make(map[string]bool)
	var lastErr error
	backoff := c.cfg.RetryBackoff
	for attempt := 0; attempt < c.cfg.MaxAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if attempt > 0 {
			if c.met != nil {
				c.met.retried.Inc()
			}
			c.event(tc, obs.EvRetried, fmt.Sprintf("task %d attempt %d: %v", task.ID, attempt+1, lastErr))
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(backoff):
			}
			backoff *= 2
		}
		w := c.pickWorker(exclude)
		if w == nil && len(exclude) > 0 {
			// Every healthy worker has already failed this task; the fleet
			// may have partially recovered, so widen the net once.
			clear(exclude)
			w = c.pickWorker(exclude)
		}
		if w == nil {
			lastErr = errNoWorkers
			continue
		}
		tr, err := c.tryWorker(ctx, w, task, exclude, tc, attempt+1)
		if err == nil {
			return tr, nil
		}
		var perm errPermanent
		if errors.As(err, &perm) {
			return nil, err
		}
		lastErr = err
	}
	return nil, fmt.Errorf("dist: task %d failed after %d attempts: %w", task.ID, c.cfg.MaxAttempts, lastErr)
}

// attemptResult is one dispatch leg's outcome inside tryWorker.
type attemptResult struct {
	tr     *TaskResult
	err    error
	worker *workerState
	hedged bool
}

// tryWorker posts the task to w, hedging onto a different worker if the
// attempt is still outstanding after HedgeDelay. The first success wins and
// the loser's request context is cancelled. Both the primary and the hedge
// share one TaskTimeout window. Workers that served a leg (success or
// transient failure) are added to exclude so a retry goes elsewhere.
//
// With a trace attached, every leg records a span under the dispatching
// build: the primary leg of attempt N has id <parent>:aN named "dispatch"
// (N == 1) or "retry" (N > 1); a hedge leg appends ":h". A successful leg
// merges the worker's returned spans under its own span id, rebased into
// the job trace's clock.
func (c *Coordinator) tryWorker(ctx context.Context, w *workerState, task Task, exclude map[string]bool, tc *traceCtx, attempt int) (*TaskResult, error) {
	attemptCtx, cancel := context.WithTimeout(ctx, c.cfg.TaskTimeout)
	defer cancel()

	results := make(chan attemptResult, 2)
	leg := func(w *workerState, hedged bool) {
		legID, name := "", ""
		var t0 int64
		if tc != nil {
			legID = fmt.Sprintf("%s:a%d", tc.parent, attempt)
			name = "dispatch"
			if attempt > 1 {
				name = "retry"
			}
			if hedged {
				legID += ":h"
				name = "hedge"
			}
			t0 = tc.t.Now()
		}
		traceID := ""
		if tc != nil {
			traceID = tc.job
		}
		tr, err := c.post(attemptCtx, w, task, traceID, legID)
		if tc != nil {
			attrs := []obs.Attr{obs.A("worker", w.url)}
			if err != nil {
				attrs = append(attrs, obs.A("error", err.Error()))
			}
			tc.t.Add(obs.Span{
				ID: legID, Parent: tc.parent, Name: name,
				StartUS: t0, DurUS: tc.t.Now() - t0, Attrs: attrs,
			})
			if err == nil {
				tc.t.Merge(legID, w.url, t0, tr.Spans)
			}
		}
		results <- attemptResult{tr: tr, err: err, worker: w, hedged: hedged}
	}

	exclude[w.url] = true
	outstanding := 1
	c.event(tc, obs.EvDispatched, fmt.Sprintf("task %d -> %s", task.ID, w.url))
	go leg(w, false)

	var hedgeC <-chan time.Time
	if c.cfg.HedgeDelay > 0 {
		ht := time.NewTimer(c.cfg.HedgeDelay)
		defer ht.Stop()
		hedgeC = ht.C
	}

	var firstErr error
	for outstanding > 0 {
		select {
		case <-hedgeC:
			hedgeC = nil
			hw := c.pickWorker(exclude)
			if hw == nil {
				break
			}
			exclude[hw.url] = true
			outstanding++
			if c.met != nil {
				c.met.hedged.Inc()
			}
			c.event(tc, obs.EvHedged, fmt.Sprintf("task %d slow on %s -> %s", task.ID, w.url, hw.url))
			c.log.Info("hedging straggler", "task", task.ID, "slow", w.url, "hedge", hw.url)
			go leg(hw, true)
		case r := <-results:
			outstanding--
			if r.err == nil {
				cancel() // the loser's request dies with the context
				if r.hedged && c.met != nil {
					c.met.hedgeWins.Inc()
				}
				return r.tr, nil
			}
			var perm errPermanent
			if errors.As(r.err, &perm) {
				cancel()
				return nil, r.err
			}
			if firstErr == nil {
				firstErr = r.err
			}
		}
	}
	return nil, firstErr
}

// post performs one HTTP task round-trip against a worker and classifies the
// outcome: 200 → measurement; 4xx → permanent; anything else (5xx, transport
// error, timeout) → transient, and the worker is marked unhealthy so the
// heartbeat, not the dispatch path, decides when it is trusted again. A
// non-empty legID propagates trace context on the wire (the worker records
// its spans against it and returns them in the result).
func (c *Coordinator) post(ctx context.Context, w *workerState, task Task, traceID, legID string) (*TaskResult, error) {
	body, err := json.Marshal(task)
	if err != nil {
		return nil, errPermanent{fmt.Errorf("dist: encoding task: %w", err)}
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.url+TaskPath, bytes.NewReader(body))
	if err != nil {
		return nil, errPermanent{err}
	}
	req.Header.Set("Content-Type", "application/json")
	if legID != "" {
		req.Header.Set(obs.TraceHeader, traceID)
		req.Header.Set(obs.ParentHeader, legID)
	}

	w.inflightN.Add(1)
	if w.inflightG != nil {
		w.inflightG.Add(1)
	}
	if c.met != nil {
		c.met.dispatched.Inc()
	}
	defer func() {
		w.inflightN.Add(-1)
		if w.inflightG != nil {
			w.inflightG.Add(-1)
		}
	}()

	resp, err := c.cfg.Client.Do(req)
	if err != nil {
		w.failures.Add(1)
		c.markUnhealthy(w.url)
		return nil, fmt.Errorf("dist: posting task %d to %s: %w", task.ID, w.url, err)
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()

	if resp.StatusCode != http.StatusOK {
		var eb errorBody
		_ = json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&eb)
		err := fmt.Errorf("dist: worker %s answered %s for task %d: %s", w.url, resp.Status, task.ID, eb.Error)
		w.failures.Add(1)
		if resp.StatusCode/100 == 4 {
			return nil, errPermanent{err}
		}
		c.markUnhealthy(w.url)
		return nil, err
	}

	var tr TaskResult
	if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
		w.failures.Add(1)
		c.markUnhealthy(w.url)
		return nil, fmt.Errorf("dist: decoding task %d result from %s: %w", task.ID, w.url, err)
	}
	w.tasksDone.Add(1)
	if w.tasksTotal != nil {
		w.tasksTotal.Inc()
	}
	return &tr, nil
}

// Map implements sched.Mapper by running shard closures on a local pool wide
// enough to keep the fleet saturated: healthy capacity × Oversubscribe, but
// never narrower than GOMAXPROCS (local fallbacks still need CPU). Each
// closure's measurement cache misses dispatch through MeasureRemote, so the
// pool's width is the number of tasks in flight, and the sched.Pool Map
// contract (every index exactly once, caller writes index-addressed slots)
// carries the determinism guarantee through unchanged.
func (c *Coordinator) Map(n int, f func(i int)) {
	width := runtime.GOMAXPROCS(0)
	c.mu.Lock()
	fleetCap := 0
	for _, w := range c.workers {
		if w.healthy {
			fleetCap += w.capacity
		}
	}
	c.mu.Unlock()
	if fleet := fleetCap * c.cfg.Oversubscribe; fleet > width {
		width = fleet
	}
	sched.NewPool(width).Named("dist").Map(n, f)
}

var (
	_ exp.Remote   = (*Coordinator)(nil)
	_ sched.Mapper = (*Coordinator)(nil)
)

// Handler returns the coordinator's fleet-management HTTP API, mounted into
// criticd's mux under /dist/v1/ when distribution is enabled.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+RegisterPath, func(rw http.ResponseWriter, r *http.Request) {
		var reg registerRequest
		if err := json.NewDecoder(io.LimitReader(r.Body, maxTaskBody)).Decode(&reg); err != nil || reg.URL == "" {
			writeJSON(rw, http.StatusBadRequest, errorBody{Error: "register: url required"})
			return
		}
		c.AddWorkerCapacity(reg.URL, reg.Capacity)
		writeJSON(rw, http.StatusOK, map[string]string{"status": "registered"})
	})
	mux.HandleFunc("POST "+DeregisterPath, func(rw http.ResponseWriter, r *http.Request) {
		var reg registerRequest
		if err := json.NewDecoder(io.LimitReader(r.Body, maxTaskBody)).Decode(&reg); err != nil || reg.URL == "" {
			writeJSON(rw, http.StatusBadRequest, errorBody{Error: "deregister: url required"})
			return
		}
		c.RemoveWorker(reg.URL)
		writeJSON(rw, http.StatusOK, map[string]string{"status": "deregistered"})
	})
	mux.HandleFunc("GET "+WorkersPath, func(rw http.ResponseWriter, _ *http.Request) {
		writeJSON(rw, http.StatusOK, WorkersResponse{Workers: c.Workers()})
	})
	return mux
}
