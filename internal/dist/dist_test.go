package dist

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"critics/internal/cpu"
	"critics/internal/exp"
	"critics/internal/telemetry"
)

// stubWorker is a scriptable fake fleet member: a canned TaskResult, an
// optional per-request failure hook, and a togglable /readyz.
type stubWorker struct {
	srv      *httptest.Server
	ready    atomic.Bool
	tasks    atomic.Int64
	respond  func(w http.ResponseWriter, r *http.Request) bool // true = handled
	taskSecs time.Duration
}

func newStubWorker(t *testing.T) *stubWorker {
	t.Helper()
	s := &stubWorker{}
	s.ready.Store(true)
	mux := http.NewServeMux()
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, _ *http.Request) {
		if s.ready.Load() {
			w.WriteHeader(http.StatusOK)
		} else {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
	})
	mux.HandleFunc("POST "+TaskPath, func(w http.ResponseWriter, r *http.Request) {
		s.tasks.Add(1)
		if s.respond != nil && s.respond(w, r) {
			return
		}
		if s.taskSecs > 0 {
			select {
			case <-time.After(s.taskSecs):
			case <-r.Context().Done():
				return
			}
		}
		writeJSON(w, http.StatusOK, TaskResult{Res: cpu.Result{Cycles: 42, Instrs: 7}})
	})
	s.srv = httptest.NewServer(mux)
	t.Cleanup(s.srv.Close)
	return s
}

// testConfig returns a coordinator config with fast timeouts, hedging off
// unless a test turns it on, and metrics attached.
func testConfig(reg *telemetry.Registry) Config {
	return Config{
		TaskTimeout:  5 * time.Second,
		MaxAttempts:  3,
		RetryBackoff: 5 * time.Millisecond,
		HedgeDelay:   -1, // off
		Heartbeat:    25 * time.Millisecond,
		ProbeTimeout: time.Second,
		FailAfter:    2,
		Registry:     reg,
	}
}

func measureReq() exp.MeasureRequest {
	return exp.MeasureRequest{Kind: "base", Seed: 1}
}

func TestRegistrationAndHeartbeatHealth(t *testing.T) {
	w := newStubWorker(t)
	c := NewCoordinator(testConfig(telemetry.NewRegistry()))
	defer c.Close()

	c.AddWorkerCapacity(w.srv.URL, 2)
	if got := c.HealthyWorkers(); got != 1 {
		t.Fatalf("HealthyWorkers = %d, want 1", got)
	}
	ws := c.Workers()
	if len(ws) != 1 || ws[0].URL != w.srv.URL || !ws[0].Healthy || ws[0].Capacity != 2 {
		t.Fatalf("Workers() = %+v", ws)
	}

	// Flip readiness off: FailAfter consecutive probe failures mark it
	// unhealthy.
	w.ready.Store(false)
	waitFor(t, "worker marked unhealthy", func() bool { return c.HealthyWorkers() == 0 })

	// And back: a single good probe restores it.
	w.ready.Store(true)
	waitFor(t, "worker healthy again", func() bool { return c.HealthyWorkers() == 1 })

	c.RemoveWorker(w.srv.URL)
	if got := len(c.Workers()); got != 0 {
		t.Fatalf("after RemoveWorker: %d workers", got)
	}
}

func TestRegistrationHandler(t *testing.T) {
	w := newStubWorker(t)
	c := NewCoordinator(testConfig(nil))
	defer c.Close()
	coord := httptest.NewServer(c.Handler())
	defer coord.Close()

	if err := Register(context.Background(), nil, coord.URL, w.srv.URL, 3); err != nil {
		t.Fatalf("Register: %v", err)
	}
	resp, err := http.Get(coord.URL + WorkersPath)
	if err != nil {
		t.Fatalf("GET workers: %v", err)
	}
	var wr WorkersResponse
	if err := json.NewDecoder(resp.Body).Decode(&wr); err != nil {
		t.Fatalf("decode workers: %v", err)
	}
	resp.Body.Close()
	if len(wr.Workers) != 1 || wr.Workers[0].Capacity != 3 || !wr.Workers[0].Healthy {
		t.Fatalf("workers response = %+v", wr)
	}

	if err := Deregister(context.Background(), nil, coord.URL, w.srv.URL); err != nil {
		t.Fatalf("Deregister: %v", err)
	}
	if got := len(c.Workers()); got != 0 {
		t.Fatalf("after deregister: %d workers", got)
	}
}

// TestRetryOntoDifferentWorker is the killed-worker fault drill: the first
// registered worker answers 500 to every task, and the dispatcher must retry
// the task onto the second worker instead of failing the job.
func TestRetryOntoDifferentWorker(t *testing.T) {
	bad := newStubWorker(t)
	bad.respond = func(w http.ResponseWriter, _ *http.Request) bool {
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: "injected"})
		return true
	}
	good := newStubWorker(t)

	reg := telemetry.NewRegistry()
	cfg := testConfig(reg)
	cfg.Heartbeat = time.Hour // no re-probe: the health flip below must come from the dispatch path
	c := NewCoordinator(cfg)
	defer c.Close()
	c.AddWorker(bad.srv.URL) // seq 0: deterministic first pick when idle
	c.AddWorker(good.srv.URL)

	m, err := c.MeasureRemote(context.Background(), measureReq())
	if err != nil {
		t.Fatalf("MeasureRemote: %v", err)
	}
	if m.Res.Cycles != 42 {
		t.Fatalf("Cycles = %d, want 42 (from the healthy worker)", m.Res.Cycles)
	}
	if bad.tasks.Load() != 1 || good.tasks.Load() != 1 {
		t.Fatalf("task counts bad=%d good=%d, want 1 and 1", bad.tasks.Load(), good.tasks.Load())
	}
	if got := c.met.retried.Value(); got != 1 {
		t.Fatalf("retried counter = %d, want 1", got)
	}
	// The transient failure marks the bad worker unhealthy immediately.
	ws := c.Workers()
	if ws[0].Healthy || ws[0].Failures != 1 {
		t.Fatalf("bad worker state = %+v, want unhealthy with 1 failure", ws[0])
	}
}

// TestPermanentErrorNotRetried: a 4xx task response means the request itself
// is bad; dispatch must not burn attempts on other workers.
func TestPermanentErrorNotRetried(t *testing.T) {
	bad := newStubWorker(t)
	bad.respond = func(w http.ResponseWriter, _ *http.Request) bool {
		writeJSON(w, http.StatusUnprocessableEntity, errorBody{Error: "unknown kind"})
		return true
	}
	other := newStubWorker(t)

	c := NewCoordinator(testConfig(telemetry.NewRegistry()))
	defer c.Close()
	c.AddWorker(bad.srv.URL)
	c.AddWorker(other.srv.URL)

	if _, err := c.MeasureRemote(context.Background(), measureReq()); err == nil {
		t.Fatal("MeasureRemote succeeded, want permanent error")
	}
	if got := other.tasks.Load(); got != 0 {
		t.Fatalf("second worker saw %d tasks, want 0 (permanent errors must not retry)", got)
	}
	// Permanent failures don't impugn the worker's health.
	if got := c.HealthyWorkers(); got != 2 {
		t.Fatalf("HealthyWorkers = %d, want 2", got)
	}
}

// TestHedgingCutsTailLatency simulates a straggler: worker A serves tasks
// with a 2s sleep, worker B instantly. With a 50ms hedge delay every task
// stuck on A is re-dispatched to B, so a batch completes in well under the
// straggler's service time.
func TestHedgingCutsTailLatency(t *testing.T) {
	slow := newStubWorker(t)
	slow.taskSecs = 2 * time.Second
	fast := newStubWorker(t)

	reg := telemetry.NewRegistry()
	cfg := testConfig(reg)
	cfg.HedgeDelay = 50 * time.Millisecond
	c := NewCoordinator(cfg)
	defer c.Close()
	c.AddWorkerCapacity(slow.srv.URL, 4)
	c.AddWorkerCapacity(fast.srv.URL, 4)

	const tasks = 8
	start := time.Now()
	errs := make(chan error, tasks)
	for i := 0; i < tasks; i++ {
		go func() {
			_, err := c.MeasureRemote(context.Background(), measureReq())
			errs <- err
		}()
	}
	for i := 0; i < tasks; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("task %d: %v", i, err)
		}
	}
	elapsed := time.Since(start)
	if elapsed >= 1500*time.Millisecond {
		t.Fatalf("batch took %v; hedging should finish well before the 2s straggler", elapsed)
	}
	if got := c.met.hedged.Value(); got < 1 {
		t.Fatalf("hedged counter = %d, want >= 1", got)
	}
	if got := c.met.hedgeWins.Value(); got < 1 {
		t.Fatalf("hedge_wins counter = %d, want >= 1", got)
	}
}

func TestCoordinatorDrain(t *testing.T) {
	w := newStubWorker(t)
	w.taskSecs = 100 * time.Millisecond
	c := NewCoordinator(testConfig(nil))
	defer c.Close()
	c.AddWorker(w.srv.URL)

	started := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		close(started)
		_, err := c.MeasureRemote(context.Background(), measureReq())
		done <- err
	}()
	<-started
	waitFor(t, "task in flight", func() bool { return w.tasks.Load() == 1 })

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := c.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("in-flight task failed across drain: %v", err)
	}
	// New dispatches are refused after drain.
	if _, err := c.MeasureRemote(context.Background(), measureReq()); err == nil {
		t.Fatal("MeasureRemote after Drain succeeded, want refusal")
	}
}

func TestWorkerDrainAndReadiness(t *testing.T) {
	wk := NewWorker(WorkerConfig{Capacity: 1})
	srv := httptest.NewServer(wk.Handler())
	defer srv.Close()

	check := func(path string, want int) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Fatalf("GET %s = %d, want %d", path, resp.StatusCode, want)
		}
	}
	check("/healthz", http.StatusOK)
	check("/readyz", http.StatusOK)

	wk.Drain()
	check("/healthz", http.StatusOK) // alive, just not accepting
	check("/readyz", http.StatusServiceUnavailable)

	// Tasks are refused while draining.
	resp, err := http.Post(srv.URL+TaskPath, "application/json", nil)
	if err != nil {
		t.Fatalf("POST task: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("task during drain = %d, want 503", resp.StatusCode)
	}
}

// waitFor polls cond for up to 2s.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}
