package layout

import (
	"testing"

	"critics/internal/cache"
	"critics/internal/core"
	"critics/internal/prog"
	"critics/internal/trace"
	"critics/internal/workload"
)

func testApp(t *testing.T) (*prog.Program, *core.Profile) {
	t.Helper()
	apps := workload.MobileApps()
	p := workload.Generate(apps[0].Params)
	ws := trace.Collect(p, apps[0].Params.Seed, trace.SamplePlan{Samples: 4, Length: 8000, Gap: 2000, Warmup: 5000})
	return p, core.BuildProfile(p, ws, core.DefaultConfig())
}

func isPermutation(order []int, n int) bool {
	if len(order) != n {
		return false
	}
	seen := make([]bool, n)
	for _, fi := range order {
		if fi < 0 || fi >= n || seen[fi] {
			return false
		}
		seen[fi] = true
	}
	return true
}

func TestOrderKinds(t *testing.T) {
	p, prof := testApp(t)
	for _, kind := range []string{"", KindNone} {
		if order, err := Order(p, prof, kind); err != nil || order != nil {
			t.Errorf("Order(%q) = (%v, %v), want identity nil", kind, order, err)
		}
	}
	for _, kind := range []string{KindHot, KindC3} {
		order, err := Order(p, prof, kind)
		if err != nil {
			t.Fatalf("Order(%q): %v", kind, err)
		}
		if !isPermutation(order, len(p.Funcs)) {
			t.Fatalf("Order(%q) is not a permutation of %d functions", kind, len(p.Funcs))
		}
		// Deterministic: same inputs, same order.
		again, _ := Order(p, prof, kind)
		for i := range order {
			if order[i] != again[i] {
				t.Fatalf("Order(%q) not deterministic at %d", kind, i)
			}
		}
	}
	if _, err := Order(p, prof, "bogus"); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestHotOrderSortsByHeat(t *testing.T) {
	p, prof := testApp(t)
	heat := FuncHeat(p, prof)
	order := hotOrder(p, prof)
	for i := 1; i < len(order); i++ {
		if heat[order[i-1]] < heat[order[i]] {
			t.Fatalf("hot order position %d: heat %d before %d", i, heat[order[i-1]], heat[order[i]])
		}
	}
}

// TestApplyPreservesStructure: a relayout changes only addresses — function
// ids stay index-aligned, the program still validates, total code size is
// unchanged (same functions, same alignment discipline), and the input
// program is untouched.
func TestApplyPreservesStructure(t *testing.T) {
	p, prof := testApp(t)
	before := p.CodeBytes
	for _, kind := range []string{KindHot, KindC3} {
		q, err := ApplyKind(p, prof, kind)
		if err != nil {
			t.Fatalf("ApplyKind(%s): %v", kind, err)
		}
		if err := q.Validate(); err != nil {
			t.Fatalf("relaid program invalid: %v", err)
		}
		if q.CodeBytes != before {
			t.Errorf("%s: code bytes %d -> %d; relayout must not change size", kind, before, q.CodeBytes)
		}
		for i, f := range q.Funcs {
			if f.ID != i {
				t.Fatalf("%s: function %d has id %d after relayout", kind, i, f.ID)
			}
		}
	}
	if p.CodeBytes != before {
		t.Error("input program mutated")
	}
}

// TestRelayoutPreservesDynamicStream: trace generation keys its randomness on
// instruction identity, so the relaid program must replay the exact same
// dynamic instruction sequence — only fetch addresses differ. This is the
// invariant that makes layout a pure front-end axis: any cycle delta in a
// sweep is I-cache/BPU behavior, never a different workload.
func TestRelayoutPreservesDynamicStream(t *testing.T) {
	p, prof := testApp(t)
	apps := workload.MobileApps()
	g := trace.NewGenerator(p, apps[0].Params.Seed)
	g.Skip(1000)
	base := g.Generate(nil, 20000)

	q, err := ApplyKind(p, prof, KindC3)
	if err != nil {
		t.Fatal(err)
	}
	gq := trace.NewGenerator(q, apps[0].Params.Seed)
	gq.Skip(1000)
	relaid := gq.Generate(nil, 20000)

	if len(base) != len(relaid) {
		t.Fatalf("stream lengths differ: %d vs %d", len(base), len(relaid))
	}
	moved := 0
	for i := range base {
		if base[i].ID != relaid[i].ID || base[i].Op != relaid[i].Op || base[i].Seq != relaid[i].Seq {
			t.Fatalf("dyn %d differs beyond its address: %+v vs %+v", i, base[i], relaid[i])
		}
		if base[i].Addr != relaid[i].Addr {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("c3 relayout moved no instruction; the pass is vacuous on this app")
	}
}

func TestApplyRejectsBadOrder(t *testing.T) {
	p, _ := testApp(t)
	if _, err := Apply(p, []int{0}); err == nil {
		t.Error("short order accepted")
	}
	dup := make([]int, len(p.Funcs))
	if _, err := Apply(p, dup); err == nil && len(p.Funcs) > 1 {
		t.Error("repeated-entry order accepted")
	}
}

func TestTemperatures(t *testing.T) {
	p, prof := testApp(t)
	hints := Temperatures(p, prof)
	if hints.Len() == 0 {
		t.Fatal("no temperature ranges from a real profile")
	}
	// Ranges must satisfy the cache package's invariants (ascending,
	// non-overlapping) — Add enforces them, so a populated table implies it,
	// but a hot and a cold range should both exist for a real app profile.
	var sawHot, sawCold bool
	for i := 0; i < hints.Len(); i++ {
		switch hints.Ranges[i].Temp {
		case cache.TempHot:
			sawHot = true
		case cache.TempCold:
			sawCold = true
		case cache.TempDefault:
			t.Errorf("range %d carries TempDefault; default ranges are supposed to be omitted", i)
		}
	}
	if !sawHot || !sawCold {
		t.Errorf("expected hot and cold ranges, got hot=%v cold=%v", sawHot, sawCold)
	}
	// The hottest function's entry address must be hinted hot.
	heat := FuncHeat(p, prof)
	hottest, best := 0, int64(-1)
	for fi, h := range heat {
		if h > best {
			hottest, best = fi, h
		}
	}
	start, _, ok := funcExtent(p.Funcs[hottest])
	if !ok {
		t.Fatal("hottest function has no extent")
	}
	if got := hints.Temp(start); got != cache.TempHot {
		t.Errorf("hottest function's entry has temp %d, want hot", got)
	}

	// Nil profile: nothing to say.
	if empty := Temperatures(p, nil); empty.Len() != 0 {
		t.Errorf("nil profile produced %d ranges", empty.Len())
	}
}

func TestTempOf(t *testing.T) {
	for _, tc := range []struct {
		h    int64
		cum  float64
		want uint8
	}{
		{0, 1, cache.TempCold},
		{100, 0.2, cache.TempHot},
		{100, 0.5, cache.TempHot},
		{100, 0.7, cache.TempWarm},
		{100, 0.9, cache.TempDefault},
	} {
		if got := TempOf(tc.h, tc.cum); got != tc.want {
			t.Errorf("TempOf(%d, %.2f) = %d, want %d", tc.h, tc.cum, got, tc.want)
		}
	}
}
