// Package layout is the profile-guided code-placement half of the front-end
// co-optimization subsystem: it reorders the functions of a laid-out program
// to cut L1I conflict and fetch-discontinuity misses, and derives the code
// "temperature" hints the trrip replacement policy seeds its re-reference
// intervals from.
//
// The orderings never touch program structure — prog.Program.LayoutOrder
// reassigns addresses while the Funcs slice (and every function/block/
// instruction id, and every instruction UID) stays put. Trace generation
// keys its randomness on UIDs, so a relayout replays the exact same dynamic
// instruction stream at different addresses: the only simulated difference
// is instruction-cache behavior, which is the point.
package layout

import (
	"fmt"
	"sort"

	"critics/internal/cache"
	"critics/internal/core"
	"critics/internal/prog"
)

// Layout pass names, selectable as experiment sweep axes and via the
// criticsim -code-layout flag.
const (
	// KindNone keeps the generator's program order (the seed layout).
	KindNone = "none"
	// KindC3 greedily clusters call-affine functions (callee appended
	// after its hottest caller chain, C³/Pettis-Hansen style) and emits
	// clusters hottest-first.
	KindC3 = "c3"
	// KindHot sorts functions by profiled heat, hottest first — the
	// classic straw-man placement C³ is usually compared against.
	KindHot = "hot"
)

// Kinds lists the layout passes in presentation order.
func Kinds() []string { return []string{KindNone, KindC3, KindHot} }

// mergeCapBytes caps a C³ cluster at a page: merging past it stops helping
// (the affinity being exploited is line- and page-grained) and risks one
// giant cluster that pins ordering to the call graph's largest component.
const mergeCapBytes = 4096

// FuncHeat sums the profile's per-chain dynamic instruction counts by
// function: heat[f] is how many profiled dynamic instructions ran in
// criticality-candidate chains of function f. Every candidate contributes
// (not just the selected subset) — placement wants the full execution-mass
// picture, not the 16-bit-representability filter. A nil profile yields all
// zeros, which every consumer treats as "no information".
func FuncHeat(p *prog.Program, prof *core.Profile) []int64 {
	heat := make([]int64, len(p.Funcs))
	if prof == nil {
		return heat
	}
	for i := range prof.Entries {
		e := &prof.Entries[i]
		if int(e.Key.Func) < len(heat) {
			heat[e.Key.Func] += e.DynInstrs()
		}
	}
	return heat
}

// Order computes the function emission order for one layout kind. The
// result is a permutation of function ids suitable for
// prog.Program.LayoutOrder; KindNone (and "") returns nil, the identity.
func Order(p *prog.Program, prof *core.Profile, kind string) ([]int, error) {
	switch kind {
	case "", KindNone:
		return nil, nil
	case KindHot:
		return hotOrder(p, prof), nil
	case KindC3:
		return c3Order(p, prof), nil
	default:
		return nil, fmt.Errorf("layout: unknown layout kind %q (known: %v)", kind, Kinds())
	}
}

// hotOrder sorts functions by heat descending, program order breaking ties —
// deterministic for every profile.
func hotOrder(p *prog.Program, prof *core.Profile) []int {
	heat := FuncHeat(p, prof)
	order := make([]int, len(p.Funcs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return heat[order[a]] > heat[order[b]]
	})
	return order
}

// callEdge is one static caller→callee relation weighted by the caller's
// profiled heat (the closest stand-in for call frequency the profile
// carries; +1 keeps unprofiled edges ordered deterministically too).
type callEdge struct {
	caller, callee int
	weight         int64
}

// c3Order is greedy call-affinity clustering: process call edges by weight,
// and when the callee still heads its own cluster, splice that cluster
// directly after the caller's — so a hot call site's target lands in the
// fall-through path of its caller. Clusters are then emitted hottest-first.
func c3Order(p *prog.Program, prof *core.Profile) []int {
	heat := FuncHeat(p, prof)

	// Collect caller→callee edges, folding duplicate sites.
	wsum := make(map[[2]int]int64)
	for fi, f := range p.Funcs {
		for _, b := range f.Blocks {
			if b.End == prog.EndCall && b.Callee != fi {
				wsum[[2]int{fi, b.Callee}] += heat[fi] + 1
			}
		}
	}
	edges := make([]callEdge, 0, len(wsum))
	for k, w := range wsum {
		edges = append(edges, callEdge{caller: k[0], callee: k[1], weight: w})
	}
	sort.Slice(edges, func(a, b int) bool {
		if edges[a].weight != edges[b].weight {
			return edges[a].weight > edges[b].weight
		}
		if edges[a].caller != edges[b].caller {
			return edges[a].caller < edges[b].caller
		}
		return edges[a].callee < edges[b].callee
	})

	// Singleton clusters, merged greedily under the byte cap.
	clusterOf := make([]int, len(p.Funcs))
	clusters := make([][]int, len(p.Funcs))
	bytes := make([]int64, len(p.Funcs))
	for i := range p.Funcs {
		clusterOf[i] = i
		clusters[i] = []int{i}
		bytes[i] = funcBytes(p.Funcs[i])
	}
	for _, e := range edges {
		cu, cv := clusterOf[e.caller], clusterOf[e.callee]
		if cu == cv || clusters[cv][0] != e.callee {
			continue // same cluster, or the callee is already glued behind someone
		}
		if bytes[cu]+bytes[cv] > mergeCapBytes {
			continue
		}
		for _, fi := range clusters[cv] {
			clusterOf[fi] = cu
		}
		clusters[cu] = append(clusters[cu], clusters[cv]...)
		bytes[cu] += bytes[cv]
		clusters[cv] = nil
	}

	// Emit clusters hottest-first (peak member heat; min function id ties).
	type ranked struct {
		id   int
		heat int64
	}
	var order []int
	var rank []ranked
	for id, c := range clusters {
		if c == nil {
			continue
		}
		var peak int64
		for _, fi := range c {
			if heat[fi] > peak {
				peak = heat[fi]
			}
		}
		rank = append(rank, ranked{id: id, heat: peak})
	}
	sort.Slice(rank, func(a, b int) bool {
		if rank[a].heat != rank[b].heat {
			return rank[a].heat > rank[b].heat
		}
		return rank[a].id < rank[b].id
	})
	for _, r := range rank {
		order = append(order, clusters[r.id]...)
	}
	return order
}

// funcBytes is a function's code size, order-independent (summed instruction
// sizes plus the 64-byte alignment pad bound).
func funcBytes(f *prog.Func) int64 {
	var n int64
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			n += int64(b.Instrs[i].Size())
		}
	}
	return n + 63
}

// Apply re-lays a program's addresses in the given emission order on a clone
// (the input — typically a shared memoized variant — is never mutated) and
// verifies the structural invariants still hold.
func Apply(p *prog.Program, order []int) (*prog.Program, error) {
	if order != nil {
		if len(order) != len(p.Funcs) {
			return nil, fmt.Errorf("layout: order has %d entries for %d functions", len(order), len(p.Funcs))
		}
		seen := make([]bool, len(p.Funcs))
		for _, fi := range order {
			if fi < 0 || fi >= len(p.Funcs) || seen[fi] {
				return nil, fmt.Errorf("layout: order is not a permutation (function %d)", fi)
			}
			seen[fi] = true
		}
	}
	q := p.Clone()
	q.LayoutOrder(order)
	if err := q.Validate(); err != nil {
		return nil, fmt.Errorf("layout: relaid program invalid: %w", err)
	}
	return q, nil
}

// ApplyKind is Order + Apply: the laid-out clone of p under one named pass.
func ApplyKind(p *prog.Program, prof *core.Profile, kind string) (*prog.Program, error) {
	order, err := Order(p, prof, kind)
	if err != nil {
		return nil, err
	}
	return Apply(p, order)
}

// Temperatures derives the trrip policy's cache.TempHints from a profile
// over a laid-out program: functions are bucketed by their share of the
// profiled dynamic-instruction mass — the hot set covering the first half,
// a warm set to 85%, cold for functions the profile never saw — and each
// non-default bucket becomes one address range over the function's laid-out
// extent (default-temperature functions are omitted; trrip treats unhinted
// addresses as TempDefault anyway). Adjacent same-temperature ranges merge,
// so the fixed hint capacity comfortably covers every catalog workload.
func Temperatures(p *prog.Program, prof *core.Profile) cache.TempHints {
	heat := FuncHeat(p, prof)
	var total int64
	for _, h := range heat {
		total += h
	}
	if total == 0 {
		// No profile mass: no information. An empty table (everything
		// TempDefault) degrades trrip to srrip; calling everything cold
		// here would instead have trrip evict the whole image eagerly.
		return cache.TempHints{}
	}

	temp := make([]uint8, len(p.Funcs))
	for i := range temp {
		temp[i] = TempOf(heat[i], rankCoverage(heat, i, total))
	}

	// One candidate range per function over its laid-out extent, address
	// order, line-rounded ends (the hints are consumed at line granularity).
	type span struct {
		start, end uint32
		temp       uint8
	}
	var spans []span
	for fi, f := range p.Funcs {
		if temp[fi] == cache.TempDefault {
			continue
		}
		start, end, ok := funcExtent(f)
		if !ok {
			continue
		}
		spans = append(spans, span{start: start, end: roundLine(end), temp: temp[fi]})
	}
	sort.Slice(spans, func(a, b int) bool { return spans[a].start < spans[b].start })

	var hints cache.TempHints
	for _, s := range spans {
		// Merge into the previous range when contiguous and same-temp.
		if n := hints.Len(); n > 0 && hints.Ranges[n-1].End >= s.start && hints.Ranges[n-1].Temp == s.temp {
			if s.end > hints.Ranges[n-1].End {
				hints.Ranges[n-1].End = s.end
			}
			continue
		}
		if !hints.Add(s.start, s.end, s.temp) {
			break // out of capacity: later (by address) functions stay unhinted
		}
	}
	return hints
}

// TempOf buckets one function: zero heat is cold, functions inside the
// profile's densest half are hot, inside 85% cumulative coverage warm, the
// long tail default.
func TempOf(h int64, cumFrac float64) uint8 {
	switch {
	case h == 0:
		return cache.TempCold
	case cumFrac <= 0.50:
		return cache.TempHot
	case cumFrac <= 0.85:
		return cache.TempWarm
	default:
		return cache.TempDefault
	}
}

// rankCoverage returns the cumulative heat fraction up to and including
// function fi when functions are ranked by heat descending (ties by id) —
// the "how deep into the profile's mass does this function sit" number
// TempOf buckets on. Zero total (empty profile) reports 1: everything lands
// default/cold.
func rankCoverage(heat []int64, fi int, total int64) float64 {
	if total == 0 || heat[fi] == 0 {
		return 1
	}
	var cum int64
	for j, h := range heat {
		if h > heat[fi] || (h == heat[fi] && j <= fi) {
			cum += h
		}
	}
	return float64(cum) / float64(total)
}

// funcExtent returns the [min, max) laid-out address range of a function.
func funcExtent(f *prog.Func) (start, end uint32, ok bool) {
	start = ^uint32(0)
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.Addr < start {
				start = in.Addr
			}
			if e := in.Addr + uint32(in.Size()); e > end {
				end = e
			}
		}
	}
	return start, end, end > start
}

// roundLine rounds an end address up to the next cache-line boundary.
func roundLine(a uint32) uint32 {
	return (a + cache.LineBytes - 1) &^ uint32(cache.LineBytes-1)
}
