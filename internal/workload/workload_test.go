package workload

import (
	"testing"

	"critics/internal/dfg"
	"critics/internal/isa"
	"critics/internal/trace"
)

func TestCatalogShape(t *testing.T) {
	mobile, sint, sfloat := MobileApps(), SPECIntApps(), SPECFloatApps()
	if len(mobile) != 10 {
		t.Errorf("mobile catalog has %d apps, want 10 (Table II)", len(mobile))
	}
	if len(sint) != 8 || len(sfloat) != 8 {
		t.Errorf("SPEC catalogs: %d int, %d float, want 8 each", len(sint), len(sfloat))
	}
	names := map[string]bool{}
	for _, set := range [][]App{mobile, sint, sfloat} {
		for _, a := range set {
			if names[a.Params.Name] {
				t.Errorf("duplicate app name %q", a.Params.Name)
			}
			names[a.Params.Name] = true
			if a.Params.Seed == 0 {
				t.Errorf("%s has no seed", a.Params.Name)
			}
		}
	}
	for _, want := range []string{"acrobat", "youtube", "mcf", "lbm"} {
		if _, ok := FindApp(want); !ok {
			t.Errorf("FindApp(%q) failed", want)
		}
	}
	if _, ok := FindApp("doom"); ok {
		t.Error("FindApp invented an app")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := MobileApps()[0]
	p1 := Generate(a.Params)
	p2 := Generate(a.Params)
	if p1.CodeBytes != p2.CodeBytes || p1.NumInstrs() != p2.NumInstrs() {
		t.Fatal("generation is not deterministic")
	}
	d1 := trace.NewGenerator(p1, 1).Generate(nil, 2000)
	d2 := trace.NewGenerator(p2, 1).Generate(nil, 2000)
	for i := range d1 {
		if d1[i] != d2[i] {
			t.Fatalf("trace diverges at %d", i)
		}
	}
}

func TestMobileFootprintExceedsICache(t *testing.T) {
	for _, a := range MobileApps() {
		p := Generate(a.Params)
		if p.CodeBytes < 40<<10 {
			t.Errorf("%s: code %d bytes; mobile apps should dwarf the 32KB i-cache", a.Params.Name, p.CodeBytes)
		}
	}
}

func TestSPECFootprintFitsCache(t *testing.T) {
	for _, a := range append(SPECIntApps(), SPECFloatApps()...) {
		p := Generate(a.Params)
		if p.CodeBytes > 48<<10 {
			t.Errorf("%s: code %d bytes; SPEC hot code should be near cache-resident", a.Params.Name, p.CodeBytes)
		}
	}
}

// traceOf returns a dynamic window for an app.
func traceOf(t *testing.T, a App, n int) []trace.Dyn {
	t.Helper()
	p := Generate(a.Params)
	g := trace.NewGenerator(p, a.Params.Seed)
	g.Skip(5000)
	return g.Generate(nil, n)
}

func TestMobileChainStructure(t *testing.T) {
	a := MobileApps()[0] // acrobat
	dyns := traceOf(t, a, 60_000)

	opt := dfg.DefaultOptions()
	chains := dfg.Extract(dyns, opt)
	if len(chains) == 0 {
		t.Fatal("no chains extracted")
	}
	ls := dfg.MeasureLengthSpread(chains)
	if ls.MaxLen > 64 {
		t.Errorf("mobile max chain length %d; paper reports <= ~20", ls.MaxLen)
	}
	if ls.MaxSpread > 2000 {
		t.Errorf("mobile max chain spread %d; paper reports <= ~540", ls.MaxSpread)
	}

	// There must be a solid population of chains above the criticality
	// threshold.
	crit := 0
	for i := range chains {
		if chains[i].AvgFanout() >= 8 {
			crit++
		}
	}
	if crit < len(chains)/50 {
		t.Errorf("only %d/%d chains reach avg fanout 8", crit, len(chains))
	}
}

func TestMobileCriticalFractionExceedsSPEC(t *testing.T) {
	mob := traceOf(t, MobileApps()[0], 40_000)
	spec := traceOf(t, SPECFloatApps()[1], 40_000) // namd

	fm := dfg.CriticalFraction(dfg.Fanouts(mob, 128), 8)
	fs := dfg.CriticalFraction(dfg.Fanouts(spec, 128), 8)
	if fm <= fs {
		t.Errorf("critical fraction mobile %.4f <= spec %.4f; Fig 1a wants mobile higher", fm, fs)
	}
	if fm < 0.01 {
		t.Errorf("mobile critical fraction %.4f implausibly low", fm)
	}
}

func TestFig1bGapStructure(t *testing.T) {
	// Mobile: high-fanout members in chains are separated by 1..5
	// low-fanout members most of the time; SPEC chains are mostly
	// hub-to-hub or have no dependent second hub.
	mob := traceOf(t, MobileApps()[3], 40_000)
	chainsM := dfg.Extract(mob, dfg.DefaultOptions())
	fanM := dfg.Fanouts(mob, 128)
	gm := dfg.HighFanoutGaps(chainsM, fanM, 8, 8)

	withGaps := gm.Gaps.Total - gm.Gaps.Counts[0]
	if gm.Gaps.Total == 0 || withGaps == 0 {
		t.Fatalf("mobile gap histogram empty: %+v", gm.Gaps)
	}
	frac1to5 := 0.0
	for k := 1; k <= 5; k++ {
		frac1to5 += gm.Gaps.Frac(k)
	}
	if frac1to5 < 0.3 {
		t.Errorf("mobile 1..5-gap fraction %.3f; Fig 1b reports ~52%% of chains in this range", frac1to5)
	}

	spec := traceOf(t, SPECIntApps()[0], 40_000)
	chainsS := dfg.Extract(spec, dfg.Options{ChunkSize: 8192, FanoutWindow: 128, MinLen: 2})
	fanS := dfg.Fanouts(spec, 128)
	gs := dfg.HighFanoutGaps(chainsS, fanS, 8, 8)
	// SPEC: direct dependence (gap 0) plus "none" dominate.
	specDirect := gs.Gaps.Frac(0)
	mobDirect := gm.Gaps.Frac(0)
	if specDirect <= mobDirect {
		t.Errorf("SPEC direct hub-to-hub %.3f <= mobile %.3f; Fig 1b wants SPEC more direct", specDirect, mobDirect)
	}
}

func TestSPECChainsLongerThanMobile(t *testing.T) {
	mob := traceOf(t, MobileApps()[0], 40_000)
	spec := traceOf(t, SPECFloatApps()[0], 40_000)

	bigOpt := dfg.Options{ChunkSize: 8192, FanoutWindow: 128, MinLen: 2}
	lm := dfg.MeasureLengthSpread(dfg.Extract(mob, bigOpt))
	lspec := dfg.MeasureLengthSpread(dfg.Extract(spec, bigOpt))
	if lspec.MaxLen <= lm.MaxLen {
		t.Errorf("SPEC max chain %d <= mobile %d; Fig 5a wants SPEC far longer", lspec.MaxLen, lm.MaxLen)
	}
	if lspec.MaxSpread <= lm.MaxSpread {
		t.Errorf("SPEC max spread %d <= mobile %d", lspec.MaxSpread, lm.MaxSpread)
	}
}

func TestLatencyMix(t *testing.T) {
	// Fig 3c: mobile has far fewer long-latency instructions than SPEC.float.
	longFrac := func(dyns []trace.Dyn) float64 {
		long := 0
		for _, d := range dyns {
			if d.Latency > 2 {
				long++
			}
		}
		return float64(long) / float64(len(dyns))
	}
	mob := longFrac(traceOf(t, MobileApps()[4], 30_000))
	flt := longFrac(traceOf(t, SPECFloatApps()[1], 30_000))
	if mob >= flt {
		t.Errorf("long-latency fraction mobile %.3f >= spec.float %.3f", mob, flt)
	}
	if mob > 0.10 {
		t.Errorf("mobile long-latency fraction %.3f too high", mob)
	}
}

func TestInstructionMixSanity(t *testing.T) {
	dyns := traceOf(t, MobileApps()[2], 30_000)
	var loads, stores, branches, calls, preds int
	for _, d := range dyns {
		switch {
		case d.IsLoad:
			loads++
		case d.IsStore:
			stores++
		}
		if d.IsBranch {
			branches++
		}
		if d.Op == isa.OpBL {
			calls++
		}
		if d.Class == isa.ClassALU && !d.IsBranch {
			// predication counted below via static check
		}
		_ = preds
	}
	n := len(dyns)
	if loads < n/20 || loads > n/2 {
		t.Errorf("load fraction %.3f out of plausible range", float64(loads)/float64(n))
	}
	if branches < n/50 {
		t.Errorf("branch fraction %.3f too low", float64(branches)/float64(n))
	}
	if calls == 0 {
		t.Error("no calls in a mobile trace")
	}
}

func TestValidatesAndLaysOutAllApps(t *testing.T) {
	for _, set := range [][]App{MobileApps(), SPECIntApps(), SPECFloatApps()} {
		for _, a := range set {
			p := Generate(a.Params)
			if err := p.Validate(); err != nil {
				t.Errorf("%s: %v", a.Params.Name, err)
			}
			if !p.LaidOut() {
				t.Errorf("%s: not laid out", a.Params.Name)
			}
		}
	}
}
