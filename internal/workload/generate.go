package workload

import (
	"fmt"
	"math/rand"

	"critics/internal/isa"
	"critics/internal/prog"
)

// Memory region indices used by generated programs.
const (
	RegionHot   = 0 // small, cache-resident working set
	RegionCold  = 1 // large region that misses in the cache hierarchy
	RegionChain = 2 // chain-owned heap: keeps chain loads reorderable past filler stores
)

// chainRegionBytes sizes the chain-owned heap (cache-resident).
const chainRegionBytes = 16 << 10

// Register roles (see the package comment). Chain and stable register sets
// are class-dependent:
//
//   - Mobile: chains must be Thumb-representable, so all six chain registers
//     sit at or below R7 (the T16 memory form's limit) and only R4/R5 serve
//     as stable bases. Chains up to the profile's 5-member cap never reuse a
//     destination, keeping CritIC hoisting free of WAR/WAW conflicts with
//     the interleaved hub consumers.
//   - SPEC: four stable bases (R4..R7), chains over {R0,R1,R2,R8,R9} (no
//     representability requirement — SPEC chains are never optimized), and
//     R3 dedicated to loop-carried accumulator chains.
var (
	mobileStable = []isa.Reg{isa.R4, isa.R5}
	mobileChain  = []isa.Reg{isa.R0, isa.R1, isa.R2, isa.R3, isa.R6, isa.R7}
	specStable   = []isa.Reg{isa.R4, isa.R5, isa.R6, isa.R7}
	specChain    = []isa.Reg{isa.R0, isa.R1, isa.R2, isa.R8, isa.R9}
	scratchLo    = []isa.Reg{isa.R10}
	scratchHi    = []isa.Reg{isa.R11, isa.R12}
)

// accumReg carries SPEC-style loop-carried accumulator chains. It is written
// by nothing else, so the chain survives across loop iterations — the source
// of the very long, widely spread ICs of Fig. 5a's SPEC curves.
const accumReg = isa.R3

// Generate synthesizes the program for one workload. The same Params always
// produce the identical program (seeded).
func Generate(p Params) *prog.Program {
	g := &gen{p: p, rng: rand.New(rand.NewSource(p.Seed))}
	if p.Class == Mobile {
		g.stableRegs, g.chainRegs = mobileStable, mobileChain
	} else {
		g.stableRegs, g.chainRegs = specStable, specChain
	}
	pr := g.build()
	pr.AssignUIDs()
	pr.Layout()
	if err := pr.Validate(); err != nil {
		panic(fmt.Sprintf("workload: generated invalid program for %s: %v", p.Name, err))
	}
	return pr
}

type gen struct {
	p   Params
	rng *rand.Rand

	stableRegs []isa.Reg
	chainRegs  []isa.Reg

	scratchIdx int
}

func (g *gen) build() *prog.Program {
	pr := &prog.Program{
		Name:          g.p.Name,
		Entry:         0,
		NumMemRegions: 3,
		RegionBytes:   []uint32{g.p.HotBytes, g.p.ColdBytes, chainRegionBytes},
	}
	// Function ids: 0 = main, 1..NumUtilFuncs = utilities,
	// then the app functions.
	numUtil := g.p.NumUtilFuncs
	firstApp := 1 + numUtil
	total := firstApp + g.p.NumFuncs

	pr.Funcs = make([]*prog.Func, total)
	pr.Funcs[0] = &prog.Func{ID: 0, Name: "main"}
	for u := 0; u < numUtil; u++ {
		pr.Funcs[1+u] = g.utilFunc(1+u, fmt.Sprintf("util%d", u))
	}
	for i := 0; i < g.p.NumFuncs; i++ {
		id := firstApp + i
		pr.Funcs[id] = g.appFunc(id, fmt.Sprintf("fn%d", i), firstApp)
	}
	g.buildMain(pr.Funcs[0], firstApp, total)
	return pr
}

// buildMain creates the event-loop driver: stable-register setup, then one
// guarded call site per app function, then return. Each guard is a
// conditional skip with probability SkipProb, so successive event-loop
// iterations execute a varying subset of the app's functions — the source of
// the large, shifting i-cache footprint of mobile workloads.
func (g *gen) buildMain(f *prog.Func, firstApp, total int) {
	var blocks []*prog.Block
	// Entry: write the stable registers.
	entry := &prog.Block{ID: 0, End: prog.EndFallthrough}
	for _, r := range g.stableRegs {
		entry.Instrs = append(entry.Instrs, aluImm(isa.OpMOV, r, isa.NoReg, int32(g.rng.Intn(100))))
	}
	blocks = append(blocks, entry)

	for fn := firstApp; fn < total; fn++ {
		guard := &prog.Block{End: prog.EndCondBranch, TakenProb: g.p.SkipProb}
		guard.Instrs = append(guard.Instrs, g.filler(nil))
		guard.Instrs = append(guard.Instrs, cmpImm(scratchLo[0], int32(g.rng.Intn(64))))
		guard.Instrs = append(guard.Instrs, condBranch(g.randCond()))
		call := &prog.Block{End: prog.EndCall, Callee: fn}
		call.Instrs = append(call.Instrs, callInstr())
		blocks = append(blocks, guard, call)
	}
	exit := &prog.Block{End: prog.EndReturn}
	exit.Instrs = append(exit.Instrs, retInstr())
	blocks = append(blocks, exit)

	// Wire ids and edges: guard at index i skips its call block.
	for i, b := range blocks {
		b.ID = i
	}
	entry.Next = 1
	for i := 1; i < len(blocks)-1; i += 2 {
		guard, call := blocks[i], blocks[i+1]
		guard.Next = call.ID
		guard.Taken = call.ID + 1 // skip the call
		call.Next = call.ID + 1
	}
	f.Blocks = blocks
}

// utilFunc creates a small shared "API" function: a handful of fillers and a
// return. Utilities are called from many sites, mimicking framework code.
func (g *gen) utilFunc(id int, name string) *prog.Func {
	f := &prog.Func{ID: id, Name: name}
	b := &prog.Block{ID: 0, End: prog.EndReturn}
	n := 3 + g.rng.Intn(6)
	for i := 0; i < n; i++ {
		b.Instrs = append(b.Instrs, g.filler(nil))
	}
	b.Instrs = append(b.Instrs, retInstr())
	f.Blocks = []*prog.Block{b}
	return f
}

// appFunc creates one application function: an entry block, a run of middle
// blocks (some carrying chain patterns, one forming a loop), and an exit.
func (g *gen) appFunc(id int, name string, firstApp int) *prog.Func {
	f := &prog.Func{ID: id, Name: name}
	nMid := pick(g.rng, g.p.BlocksPerFunc)

	// Entry block: local setup.
	entry := &prog.Block{ID: 0, End: prog.EndFallthrough, Next: 1}
	for i, r := range g.chainRegs {
		entry.Instrs = append(entry.Instrs, aluImm(isa.OpMOV, r, isa.NoReg, int32(8+4*i)))
	}
	entry.Instrs = append(entry.Instrs, aluImm(isa.OpMOV, accumReg, isa.NoReg, 1))
	blocks := []*prog.Block{entry}

	loopTail := 1 + g.rng.Intn(nMid) // middle block carrying the back edge
	for m := 1; m <= nMid; m++ {
		b := &prog.Block{ID: m}
		withChain := g.rng.Float64() < g.p.ChainProb
		inLoop := m <= loopTail
		g.fillBlock(b, withChain, inLoop)

		switch {
		case m == loopTail && g.p.LoopBackPct > 0:
			// Loop back edge to the first middle block.
			b.Instrs = append(b.Instrs, cmpImm(g.scratch(), int32(g.rng.Intn(64))))
			b.Instrs = append(b.Instrs, condBranch(g.randCond()))
			b.End = prog.EndCondBranch
			b.Taken = 1
			b.Next = m + 1
			b.TakenProb = g.p.LoopBackPct
		case g.rng.Float64() < g.p.CallProb && g.p.NumUtilFuncs > 0:
			b.Instrs = append(b.Instrs, callInstr())
			b.End = prog.EndCall
			b.Callee = 1 + g.rng.Intn(g.p.NumUtilFuncs)
			b.Next = m + 1
		case g.rng.Float64() < 0.4 && m+2 <= nMid+1 && !(inLoop && m+2 > loopTail):
			// Forward skip over the next block; never skips out of the
			// loop body (which would cut loop trip counts).
			// Forward skip over the next block, mostly not taken.
			b.Instrs = append(b.Instrs, cmpImm(g.scratch(), int32(g.rng.Intn(64))))
			b.Instrs = append(b.Instrs, condBranch(g.randCond()))
			b.End = prog.EndCondBranch
			b.Taken = m + 2
			b.Next = m + 1
			b.TakenProb = 1 - g.p.BranchBias
		default:
			b.End = prog.EndFallthrough
			b.Next = m + 1
		}
		blocks = append(blocks, b)
	}
	exit := &prog.Block{ID: nMid + 1, End: prog.EndReturn}
	exit.Instrs = append(exit.Instrs, retInstr())
	blocks = append(blocks, exit)
	f.Blocks = blocks
	return f
}

// fillBlock populates a block body with filler instructions and, optionally,
// a chain pattern whose members are interspersed with the fillers (the
// baseline spread the Hoist pass later removes).
func (g *gen) fillBlock(b *prog.Block, withChain, inLoop bool) {
	nFill := pick(g.rng, g.p.BlockLen)
	var chain []prog.Instr
	var hubConsumers map[int][]prog.Instr // chain position -> fillers reading the hub
	if withChain {
		chain, hubConsumers = g.chainPattern()
	}
	if g.p.LoopCarried && inLoop {
		// SPEC-style loop-carried accumulator updates: the accumulator register circulates
		// through stable-operand updates; dependences span iterations.
		op := isa.OpADD
		if g.rng.Float64() < g.p.FPFrac*1.5 {
			op = isa.OpVADD
		}
		for k := 0; k < 2+g.rng.Intn(3); k++ {
			b.Instrs = append(b.Instrs, aluReg(op, accumReg, accumReg, g.stable()))
		}
	}
	// Interleave: after each chain member, its hub consumers (if any) and
	// a few generic fillers.
	ci := 0
	for ci < len(chain) || nFill > 0 {
		if ci < len(chain) {
			member := chain[ci]
			b.Instrs = append(b.Instrs, member)
			for _, c := range hubConsumers[ci] {
				b.Instrs = append(b.Instrs, c)
			}
			ci++
			// Spread: a few fillers between members.
			gap := g.rng.Intn(3)
			for k := 0; k < gap && nFill > 0; k++ {
				b.Instrs = append(b.Instrs, g.filler(nil))
				nFill--
			}
		} else {
			b.Instrs = append(b.Instrs, g.filler(nil))
			nFill--
		}
	}
}

// chainPattern builds one CritIC-shaped dependence chain: a pointer-chase /
// ALU path over the chain registers with hubs (high-fanout members) spaced
// per HubSpacing, each hub's extra consumers returned for interleaving.
func (g *gen) chainPattern() ([]prog.Instr, map[int][]prog.Instr) {
	length := pick(g.rng, g.p.ChainLen)
	chain := make([]prog.Instr, 0, length)
	consumers := make(map[int][]prog.Instr)

	// Rarely poison the chain for Thumb (predication or a high register),
	// producing the ~4.5% non-representable unique chains of Fig. 5b.
	poison := g.rng.Float64() < 0.05
	poisonAt := g.rng.Intn(length)

	nextHub := 0 // head is always a hub
	cur := g.chainRegs[0]
	regs := make([]isa.Reg, 0, length) // member destination registers
	needs := make([]int, length)       // extra fanout still owed per member
	for k := 0; k < length; k++ {
		next := g.chainRegs[(k+1)%len(g.chainRegs)]
		var in prog.Instr
		switch {
		case k == 0:
			// Head: load off a stable base. SPEC-like workloads send a
			// fraction of chain heads to the cold region, which is what
			// makes critical-load prefetching pay off there (Fig. 1a).
			cold := g.rng.Float64() < g.p.ChainColdPct
			in = g.chainLoad(next, g.stable(), cold)
		case g.rng.Float64() < g.p.ChainLoadPct:
			// Pointer-chase hop within the chain heap.
			in = g.chainLoad(next, cur, false)
		default:
			op := pickOp(g.rng, isa.OpADD, isa.OpSUB, isa.OpEOR, isa.OpORR, isa.OpAND)
			in = aluReg(op, next, cur, g.stable())
		}
		if poison && k == poisonAt {
			if g.rng.Intn(2) == 0 && in.Cond == isa.CondAL && !in.Op.IsControl() {
				in.Cond = isa.CondNE // predication kills T16
			} else {
				in.Rd = scratchHi[0] // r11 kills T16
				next = scratchHi[0]
			}
		}
		chain = append(chain, in)
		regs = append(regs, next)
		if k == nextHub {
			needs[k] = pick(g.rng, g.p.HubFanout)
			if g.rng.Float64() < g.p.HubAdjacent {
				nextHub = k + 1 // direct hub-to-hub dependence (SPEC-like)
			} else {
				nextHub = k + 1 + pick(g.rng, g.p.HubSpacing)
			}
		} else {
			// Non-hub members still get a couple of consumers so their
			// fanout beats any background filler's and greedy chain
			// extraction follows the true chain.
			needs[k] = 2
		}
		// Emit the consumers owed so far — but never at the head (k = 0):
		// every consumer reads TWO chain-member registers, so it always
		// has two in-flight producers and can never be mistaken for a
		// chain link by the extractor (self-containment fails through
		// it), and one consumer feeds two fanout counters.
		if k > 0 {
			for needs[k] > 0 {
				partner := -1
				for j := 0; j < k; j++ {
					if needs[j] > 0 && (partner < 0 || needs[j] > needs[partner]) {
						partner = j
					}
				}
				if partner < 0 {
					partner = k - 1 // no need left: still read a member
				} else {
					needs[partner]--
				}
				needs[k]--
				op := pickOp(g.rng, isa.OpADD, isa.OpSUB, isa.OpEOR, isa.OpORR, isa.OpAND)
				dst := g.scratch()
				if g.rng.Float64() < g.p.HighRegFrac {
					dst = scratchHi[g.rng.Intn(len(scratchHi))]
				}
				consumers[k] = append(consumers[k], aluReg(op, dst, regs[k], regs[partner]))
			}
		}
		cur = next
	}
	// Drain any residual head need against the last member.
	lastK := length - 1
	for lastK > 0 && needs[0] > 0 {
		needs[0]--
		op := pickOp(g.rng, isa.OpADD, isa.OpEOR, isa.OpORR)
		consumers[lastK] = append(consumers[lastK], aluReg(op, g.scratch(), regs[0], regs[lastK]))
	}
	return chain, consumers
}

// chainLoad builds a chain-member load in the chain-owned heap (or the cold
// region for SPEC-style cold chain heads).
func (g *gen) chainLoad(rd, base isa.Reg, cold bool) prog.Instr {
	in := prog.Instr{Inst: isa.Inst{Op: isa.OpLDR, Rd: rd, Rn: base, Rm: isa.NoReg, HasImm: true}}
	if cold {
		in.MemRegion = RegionCold
		in.MemStride = g.p.Stride
		in.Imm = int32(g.rng.Intn(16)) * 4
	} else {
		in.MemRegion = RegionChain
		in.MemStride = 0 // pointer-chase: random within the chain heap
		in.Imm = int32(g.rng.Intn(16)) * 4
	}
	return in
}

// filler produces one background instruction. When readHub is non-nil the
// filler consumes that register (it is a fanout contributor of a hub);
// otherwise it reads stable/scratch registers. Fillers write scratch
// registers only, so they never extend chains through the chain registers.
func (g *gen) filler(readHub *isa.Reg) prog.Instr {
	if readHub != nil {
		return g.hubConsumer(*readHub)
	}
	r := g.rng.Float64()
	// Fillers read stable registers (never written in-window), so the
	// filler population carries no serial dependence chains — only the
	// explicit chain patterns and the occasional scratch read do.
	src := g.stable()
	src2 := g.stable()
	dst := g.scratch()
	if g.rng.Float64() < g.p.HighRegFrac {
		dst = scratchHi[g.rng.Intn(len(scratchHi))]
	}
	if g.rng.Float64() < 0.15 {
		src2 = g.scratch() // a little genuine scratch reuse
	}
	var in prog.Instr
	switch {
	case r < g.p.DivFrac:
		in = aluReg(isa.OpSDIV, dst, src, src2)
	case r < g.p.DivFrac+g.p.FPFrac:
		op := pickOp(g.rng, isa.OpVADD, isa.OpVMUL, isa.OpVSUB, isa.OpVMLA)
		in = aluReg(op, dst, src, src2)
	case r < g.p.DivFrac+g.p.FPFrac+g.p.LoadFrac:
		cold := g.rng.Float64() < g.p.ColdFrac
		in = g.memInstr(pickOp(g.rng, isa.OpLDR, isa.OpLDR, isa.OpLDRB, isa.OpLDRH), dst, g.stable(), cold)
	case r < g.p.DivFrac+g.p.FPFrac+g.p.LoadFrac+g.p.StoreFrac:
		cold := g.rng.Float64() < g.p.ColdFrac
		in = g.storeInstr(src, cold)
	default:
		op := pickOp(g.rng, isa.OpADD, isa.OpSUB, isa.OpAND, isa.OpORR, isa.OpEOR, isa.OpLSL, isa.OpLSR, isa.OpMUL, isa.OpMOV, isa.OpMVN)
		if g.rng.Float64() < 0.4 {
			imm := int32(g.rng.Intn(64))
			if g.rng.Float64() < g.p.BigImmFrac {
				imm = 200 + int32(g.rng.Intn(3000))
			}
			if op == isa.OpMOV || op == isa.OpMVN {
				in = aluImm(op, dst, isa.NoReg, imm)
			} else {
				in = aluImm(op, dst, src, imm)
			}
		} else {
			in = aluReg(op, dst, src, src2)
			if op == isa.OpMOV || op == isa.OpMVN {
				in.Rm = isa.NoReg
			}
		}
	}
	if in.Cond == isa.CondAL && g.rng.Float64() < g.p.PredFrac && !in.Op.IsControl() {
		in.Cond = g.randCond()
	}
	return in
}

// hubConsumer builds one consumer of a hub value. Consumers either read the
// hub through a two-source ALU op (two in-flight producers, so chain
// extraction can never walk into them) or store the hub value (an eligible
// but Thumb-representable chain tail). Loads never consume hubs directly:
// a one-source load would be an eligible, possibly non-representable chain
// extension and would dilute the CritIC population.
func (g *gen) hubConsumer(hub isa.Reg) prog.Instr {
	if g.rng.Float64() < 0.15 {
		in := g.storeInstr(hub, false)
		if hub > isa.R7 {
			in.Rm = scratchLo[0] // SPEC high chain regs: store scratch instead
		}
		return in
	}
	dst := g.scratch()
	if g.rng.Float64() < g.p.HighRegFrac {
		dst = scratchHi[g.rng.Intn(len(scratchHi))]
	}
	if g.rng.Float64() < g.p.FPFrac {
		return aluReg(pickOp(g.rng, isa.OpVADD, isa.OpVMUL), dst, hub, scratchLo[0])
	}
	return aluReg(pickOp(g.rng, isa.OpADD, isa.OpSUB, isa.OpEOR, isa.OpORR, isa.OpAND, isa.OpMUL), dst, hub, scratchLo[0])
}

// memInstr builds a load. Hot loads use small word offsets (T16-friendly);
// cold loads target the cold region with the workload's stride.
func (g *gen) memInstr(op isa.Op, rd, base isa.Reg, cold bool) prog.Instr {
	in := prog.Instr{Inst: isa.Inst{Op: op, Rd: rd, Rn: base, Rm: isa.NoReg, HasImm: true}}
	if cold {
		in.MemRegion = RegionCold
		in.MemStride = g.p.Stride
		in.Imm = int32(g.rng.Intn(256)) * 4
	} else {
		in.MemRegion = RegionHot
		in.MemStride = 4 * int32(1+g.rng.Intn(4))
		if op == isa.OpLDR {
			in.Imm = int32(g.rng.Intn(16)) * 4
		} else {
			in.Imm = int32(g.rng.Intn(16))
		}
	}
	return in
}

// storeInstr builds a store of src.
func (g *gen) storeInstr(src isa.Reg, cold bool) prog.Instr {
	in := prog.Instr{Inst: isa.Inst{Op: isa.OpSTR, Rd: isa.NoReg, Rn: g.stable(), Rm: src, HasImm: true}}
	if cold {
		in.MemRegion = RegionCold
		in.MemStride = g.p.Stride
		in.Imm = int32(g.rng.Intn(256)) * 4
	} else {
		in.MemRegion = RegionHot
		in.MemStride = 4 * int32(1+g.rng.Intn(4))
		in.Imm = int32(g.rng.Intn(16)) * 4
	}
	return in
}

func (g *gen) stable() isa.Reg {
	return g.stableRegs[g.rng.Intn(len(g.stableRegs))]
}

func (g *gen) scratch() isa.Reg {
	g.scratchIdx++
	return scratchLo[g.scratchIdx%len(scratchLo)]
}

func (g *gen) randCond() isa.Cond {
	return isa.Cond(1 + g.rng.Intn(int(isa.NumConds)-1))
}

// Small instruction constructors.

func aluReg(op isa.Op, rd, rn, rm isa.Reg) prog.Instr {
	return prog.Instr{Inst: isa.Inst{Op: op, Rd: rd, Rn: rn, Rm: rm}}
}

func aluImm(op isa.Op, rd, rn isa.Reg, imm int32) prog.Instr {
	return prog.Instr{Inst: isa.Inst{Op: op, Rd: rd, Rn: rn, Rm: isa.NoReg, HasImm: true, Imm: imm}}
}

func cmpImm(rn isa.Reg, imm int32) prog.Instr {
	return prog.Instr{Inst: isa.Inst{Op: isa.OpCMP, Rd: isa.NoReg, Rn: rn, Rm: isa.NoReg, HasImm: true, Imm: imm}}
}

func condBranch(c isa.Cond) prog.Instr {
	return prog.Instr{Inst: isa.Inst{Op: isa.OpB, Cond: c, Rd: isa.NoReg, Rn: isa.NoReg, Rm: isa.NoReg}}
}

func callInstr() prog.Instr {
	return prog.Instr{Inst: isa.Inst{Op: isa.OpBL, Rd: isa.NoReg, Rn: isa.NoReg, Rm: isa.NoReg}}
}

func retInstr() prog.Instr {
	return prog.Instr{Inst: isa.Inst{Op: isa.OpBX, Rd: isa.NoReg, Rn: isa.LR, Rm: isa.NoReg}}
}

func pick(rng *rand.Rand, r [2]int) int {
	if r[1] <= r[0] {
		return r[0]
	}
	return r[0] + rng.Intn(r[1]-r[0]+1)
}

func pickOp(rng *rand.Rand, ops ...isa.Op) isa.Op {
	return ops[rng.Intn(len(ops))]
}
