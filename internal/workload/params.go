// Package workload synthesizes the programs the evaluation runs on. It is
// the substitution for the paper's trace sources (10 Play Store apps run
// under QEMU/AOSP, plus SPEC.int and SPEC.float): each catalog entry is a
// parameterized generator tuned to reproduce the statistical structure the
// paper reports for its class —
//
//   - Mobile apps: large code footprints (hundreds of functions, >> 32KB
//     i-cache) with frequent calls, short self-contained chains (<= ~20
//     instructions, spread <= ~540) whose high-fanout members are separated
//     by 1..5 low-fanout members (Fig. 1b), few long-latency instructions
//     (Fig. 3c), and mostly cache-resident data.
//   - SPEC.int: small hot code, long loop-carried chains, direct
//     hub-to-hub dependences, pointer-chasing loads with poor locality.
//   - SPEC.float: small hot code, very long FP chains, streaming strided
//     access over large arrays, many long-latency instructions.
//
// Register conventions the generators follow (and the dependence analysis
// exploits): r4..r7 are "stable" bases written once per event-loop
// iteration; r0..r3 carry chain values; r8..r10 are low scratch; r11/r12
// are high scratch whose use makes an instruction non-Thumb-representable.
package workload

// Class is the workload family.
type Class uint8

// Workload families.
const (
	Mobile Class = iota
	SPECInt
	SPECFloat
)

// String implements fmt.Stringer for Class.
func (c Class) String() string {
	switch c {
	case Mobile:
		return "mobile"
	case SPECInt:
		return "spec.int"
	case SPECFloat:
		return "spec.float"
	default:
		return "unknown"
	}
}

// Params fully describes one synthetic workload.
type Params struct {
	Name  string
	Class Class
	Seed  int64

	// Code shape.
	NumFuncs      int    // app functions (mobile: large; SPEC: small)
	NumUtilFuncs  int    // shared "API" utility functions callees
	BlocksPerFunc [2]int // min..max middle blocks per function
	BlockLen      [2]int // min..max non-chain instructions per block

	// Chain structure.
	ChainProb    float64 // probability a block carries a chain pattern
	ChainLen     [2]int  // min..max chain members
	HubFanout    [2]int  // min..max extra consumers per hub
	HubSpacing   [2]int  // low-fanout members between hubs (Fig. 1b gaps)
	HubAdjacent  float64 // probability the member after a hub is also a hub (gap 0)
	ChainLoadPct float64 // fraction of chain links that are pointer-chase loads
	ChainColdPct float64 // fraction of chain heads loading from the cold region
	LoopCarried  bool    // SPEC-style accumulator chains spanning iterations

	// Instruction mix (applied to filler instructions).
	PredFrac    float64 // predicated fraction
	HighRegFrac float64 // fraction using r11/r12 (non-Thumb)
	FPFrac      float64 // floating-point fraction
	DivFrac     float64 // divide fraction
	LoadFrac    float64
	StoreFrac   float64
	BigImmFrac  float64 // immediates too large for T16

	// Control flow.
	CallProb    float64 // probability a block ends in a call to a utility
	BranchBias  float64 // forward conditional branch taken probability
	LoopBackPct float64 // loop back-edge probability (trip ~ 1/(1-p))
	SkipProb    float64 // main-loop call-site skip probability

	// Memory behaviour.
	HotBytes  uint32  // hot region size (cache-resident)
	ColdBytes uint32  // cold region size (forces misses)
	ColdFrac  float64 // fraction of memory ops hitting the cold region
	Stride    int32   // cold-region stride; 0 = random (pointer chasing)
}

// An App pairs a name with its generator parameters. The catalog mirrors
// Table II of the paper.
type App struct {
	Params Params
}

// MobileApps returns the ten Play Store app models of Table II. Per-app
// deviations from the class baseline encode the qualitative differences the
// paper reports (e.g. Youtube/Maps are the most back-pressure-bound;
// Acrobat benefits most; Music least).
func MobileApps() []App {
	base := Params{
		Class:         Mobile,
		NumFuncs:      140,
		NumUtilFuncs:  24,
		BlocksPerFunc: [2]int{3, 7},
		BlockLen:      [2]int{2, 5},
		ChainProb:     0.85,
		ChainLen:      [2]int{4, 6},
		HubFanout:     [2]int{14, 18},
		HubSpacing:    [2]int{1, 2},
		HubAdjacent:   0.05,
		ChainLoadPct:  0.35,
		ChainColdPct:  0.02,
		PredFrac:      0.08,
		HighRegFrac:   0.10,
		FPFrac:        0.02,
		DivFrac:       0.004,
		LoadFrac:      0.22,
		StoreFrac:     0.10,
		BigImmFrac:    0.05,
		CallProb:      0.15,
		BranchBias:    0.92,
		LoopBackPct:   0.80,
		SkipProb:      0.15,
		HotBytes:      24 << 10,
		ColdBytes:     2 << 20,
		ColdFrac:      0.02,
		Stride:        0,
	}
	mk := func(name string, seed int64, adjust func(*Params)) App {
		p := base
		p.Name = name
		p.Seed = seed
		if adjust != nil {
			adjust(&p)
		}
		return App{Params: p}
	}
	return []App{
		mk("acrobat", 101, func(p *Params) { // document reader: chain-rich rendering
			p.ChainProb = 0.92
			p.HubFanout = [2]int{14, 20}
			p.NumFuncs = 150
		}),
		mk("angrybirds", 102, func(p *Params) { // physics game: some FP
			p.FPFrac = 0.10
			p.ChainProb = 0.55
			p.LoopBackPct = 0.65
		}),
		mk("browser", 103, func(p *Params) { // web: biggest footprint, branchy
			p.NumFuncs = 190
			p.BranchBias = 0.86
			p.ChainProb = 0.55
		}),
		mk("facebook", 104, func(p *Params) { // messaging: call-heavy
			p.CallProb = 0.3
			p.NumFuncs = 170
		}),
		mk("email", 105, func(p *Params) {
			p.ChainProb = 0.5
			p.StoreFrac = 0.13
		}),
		mk("maps", 106, func(p *Params) { // navigation: back-pressure heavy
			p.ChainLoadPct = 0.5
			p.ColdFrac = 0.12
			p.ChainLen = [2]int{4, 7}
		}),
		mk("music", 107, func(p *Params) { // audio: smallest gains in the paper
			p.ChainProb = 0.5
			p.NumFuncs = 100
			p.HubFanout = [2]int{11, 14}
			p.Stride = 8
		}),
		mk("office", 108, func(p *Params) {
			p.ChainProb = 0.55
			p.PredFrac = 0.10
		}),
		mk("photogallery", 109, func(p *Params) { // image browsing: streaming-ish
			p.Stride = 16
			p.ColdFrac = 0.04
			p.ChainProb = 0.66
		}),
		mk("youtube", 110, func(p *Params) { // video: back-pressure heavy
			p.ChainLoadPct = 0.55
			p.ChainLen = [2]int{4, 7}
			p.ColdFrac = 0.04
			p.FPFrac = 0.05
		}),
	}
}

// SPECIntApps returns the SPEC.int models of Table II.
func SPECIntApps() []App {
	base := Params{
		Class:         SPECInt,
		NumFuncs:      8,
		NumUtilFuncs:  4,
		BlocksPerFunc: [2]int{4, 8},
		BlockLen:      [2]int{10, 24},
		ChainProb:     0.35,
		ChainLen:      [2]int{6, 10},
		HubFanout:     [2]int{9, 14},
		HubSpacing:    [2]int{9, 14}, // beyond most chains: no second hub group
		HubAdjacent:   0.6,           // direct hub-to-hub dependences otherwise
		ChainLoadPct:  0.3,
		ChainColdPct:  0.5,
		LoopCarried:   true,
		PredFrac:      0.05,
		HighRegFrac:   0.12,
		FPFrac:        0.01,
		DivFrac:       0.02,
		LoadFrac:      0.28,
		StoreFrac:     0.10,
		BigImmFrac:    0.10,
		CallProb:      0.05,
		BranchBias:    0.88,
		LoopBackPct:   0.97,
		SkipProb:      0.1,
		HotBytes:      64 << 10,
		ColdBytes:     64 << 20,
		ColdFrac:      0.35,
		Stride:        64, // line-crossing strides: streaming over big arrays
	}
	names := []string{"bzip2", "hmmer", "libquantum", "mcf", "gcc", "gobmk", "sjeng", "h264ref"}
	out := make([]App, 0, len(names))
	for i, n := range names {
		p := base
		p.Name = n
		p.Seed = 201 + int64(i)
		switch n {
		case "mcf": // pointer chasing, memory bound: no stride to predict
			p.ColdFrac = 0.55
			p.ChainLoadPct = 0.6
			p.Stride = 0
		case "sjeng": // search: irregular access
			p.Stride = 0
		case "libquantum": // streaming
			p.Stride = 64
			p.ColdFrac = 0.45
		case "gcc", "gobmk": // branchier, irregular access
			p.BranchBias = 0.8
			p.NumFuncs = 14
			p.Stride = 0
		case "h264ref":
			p.FPFrac = 0.05
			p.Stride = 4
		}
		out = append(out, App{Params: p})
	}
	return out
}

// SPECFloatApps returns the SPEC.float models of Table II.
func SPECFloatApps() []App {
	base := Params{
		Class:         SPECFloat,
		NumFuncs:      6,
		NumUtilFuncs:  3,
		BlocksPerFunc: [2]int{3, 6},
		BlockLen:      [2]int{12, 26},
		ChainProb:     0.40,
		ChainLen:      [2]int{8, 14},
		HubFanout:     [2]int{9, 14},
		HubSpacing:    [2]int{9, 14},
		HubAdjacent:   0.6,
		ChainLoadPct:  0.2,
		ChainColdPct:  0.5,
		LoopCarried:   true,
		PredFrac:      0.02,
		HighRegFrac:   0.10,
		FPFrac:        0.45,
		DivFrac:       0.03,
		LoadFrac:      0.25,
		StoreFrac:     0.10,
		BigImmFrac:    0.08,
		CallProb:      0.03,
		BranchBias:    0.95,
		LoopBackPct:   0.99,
		SkipProb:      0.05,
		HotBytes:      64 << 10,
		ColdBytes:     128 << 20,
		ColdFrac:      0.40,
		Stride:        64, // unit-line streaming: every access a new line
	}
	names := []string{"sperand", "namd", "gromacs", "calculix", "lbm", "milc", "dealII", "leslie3d"}
	out := make([]App, 0, len(names))
	for i, n := range names {
		p := base
		p.Name = n
		p.Seed = 301 + int64(i)
		switch n {
		case "lbm", "milc": // memory streaming
			p.ColdFrac = 0.5
			p.Stride = 128
		case "namd", "gromacs": // compute bound
			p.FPFrac = 0.55
			p.ColdFrac = 0.25
		case "calculix":
			p.DivFrac = 0.05
		}
		out = append(out, App{Params: p})
	}
	return out
}

// FindApp returns the catalog entry with the given name, searching all
// suites.
func FindApp(name string) (App, bool) {
	for _, set := range [][]App{MobileApps(), SPECIntApps(), SPECFloatApps()} {
		for _, a := range set {
			if a.Params.Name == name {
				return a, true
			}
		}
	}
	return App{}, false
}
