package energy

import (
	"testing"

	"critics/internal/cpu"
)

func fakeResult(cycles, instrs, iacc, dacc, l2, dram int64) *cpu.Result {
	return &cpu.Result{
		Cycles:         cycles,
		Instrs:         instrs,
		ICacheAccesses: iacc,
		DCacheAccesses: dacc,
		L2Accesses:     l2,
		DRAMAccesses:   dram,
	}
}

func TestBreakdownPlausible(t *testing.T) {
	// A mobile-ish window: IPC ~0.9, 1 i-access per 2.2 instrs, 25% mem
	// ops, modest L2/DRAM traffic.
	res := fakeResult(66_000, 60_000, 27_000, 15_000, 1_800, 500)
	b := Compute(res, DefaultConfig())
	tot := b.Total()
	if tot <= 0 {
		t.Fatal("non-positive energy")
	}
	cpuShare := b.CPUOnly() / tot
	if cpuShare < 0.2 || cpuShare > 0.6 {
		t.Errorf("CPU-side share %.3f; want a plausible mobile 20-60%%", cpuShare)
	}
	restShare := b.SoCRest / tot
	if restShare < 0.3 || restShare > 0.7 {
		t.Errorf("rest-of-SoC share %.3f; want ~half", restShare)
	}
	memShare := b.Memory / tot
	if memShare < 0.03 || memShare > 0.3 {
		t.Errorf("memory share %.3f out of range", memShare)
	}
}

func TestSavingsFollowSpeedup(t *testing.T) {
	base := Compute(fakeResult(66_000, 60_000, 27_000, 15_000, 1_800, 500), DefaultConfig())
	// 10% fewer cycles, 12% fewer i-cache accesses, same instructions.
	opt := Compute(fakeResult(59_400, 60_000, 23_800, 15_000, 1_750, 490), DefaultConfig())
	s := ComputeSavings(base, opt)
	if s.TotalPct <= 0 {
		t.Fatalf("no system saving: %+v", s)
	}
	if s.CPUOnlyPct <= s.TotalPct {
		t.Errorf("CPU-only saving %.2f%% should exceed system saving %.2f%% (rest-of-SoC dilutes)", s.CPUOnlyPct, s.TotalPct)
	}
	if s.ICachePct <= 0 || s.CPUPct <= 0 {
		t.Errorf("component savings should be positive: %+v", s)
	}
	// Components must account for the total.
	sum := s.ICachePct + s.CPUPct + s.MemoryPct
	if diff := sum - s.TotalPct; diff > 0.01 || diff < -0.01 {
		t.Errorf("components sum %.3f != total %.3f", sum, s.TotalPct)
	}
}

func TestNoSavingsForIdenticalRuns(t *testing.T) {
	b := Compute(fakeResult(50_000, 45_000, 20_000, 11_000, 900, 300), DefaultConfig())
	s := ComputeSavings(b, b)
	if s.TotalPct != 0 || s.CPUOnlyPct != 0 {
		t.Errorf("identical runs produced savings: %+v", s)
	}
}

func TestZeroBaseline(t *testing.T) {
	var zero Breakdown
	s := ComputeSavings(zero, zero)
	if s.TotalPct != 0 {
		t.Error("zero baseline mishandled")
	}
}
