// Package energy models the mobile SoC's energy consumption (Fig. 10c): a
// per-event + leakage model over the simulator's event counts, decomposed
// into the components the paper reports — CPU core, i-cache, d-cache+L2,
// memory, and the "rest of SoC" (display, peripherals, ASIC accelerators)
// whose power is workload-independent but whose *energy* scales with
// execution time, which is how a CPU-side speedup turns into system-wide
// savings.
//
// Constants are calibrated to a 28nm-class mobile SoC so the baseline
// decomposition is plausible (CPU-side ~35-40% of system energy, memory
// ~10-15%, rest ~50%); the experiments report *relative* savings, which is
// what the paper's Fig. 10c plots.
package energy

import "critics/internal/cpu"

// Config holds per-event energies (picojoules) and per-cycle powers
// (picojoules per cycle at the 1.5GHz core clock).
type Config struct {
	// Dynamic per-event energies.
	ICacheAccess float64 // per fetch-group i-cache read
	DCacheAccess float64
	L2Access     float64
	DRAMAccess   float64 // per DRAM burst
	PerInstr     float64 // average datapath energy per architectural instruction

	// Per-cycle (leakage + clock tree) powers.
	CoreStatic  float64 // pipeline + register files + clock
	CacheStatic float64 // SRAM arrays (split between i-cache and d/L2 below)
	DRAMStatic  float64 // DRAM background + controller
	SoCRest     float64 // display, radios, accelerators, PMIC overhead
}

// DefaultConfig returns the calibrated constants.
func DefaultConfig() Config {
	return Config{
		ICacheAccess: 28,
		DCacheAccess: 38,
		L2Access:     240,
		DRAMAccess:   12_000,
		PerInstr:     55,
		CoreStatic:   260,
		CacheStatic:  90,
		DRAMStatic:   140,
		SoCRest:      1_100,
	}
}

// Breakdown is the per-component energy of one simulated window, in
// picojoules.
type Breakdown struct {
	Core     float64 // pipeline dynamic + core static
	ICache   float64
	DCacheL2 float64
	Memory   float64 // DRAM dynamic + background
	SoCRest  float64
}

// Total returns the whole-system energy.
func (b Breakdown) Total() float64 {
	return b.Core + b.ICache + b.DCacheL2 + b.Memory + b.SoCRest
}

// CPUOnly returns the CPU-side energy (core + caches), the denominator of
// the paper's "CPU execution alone realizes 15%" statement.
func (b Breakdown) CPUOnly() float64 {
	return b.Core + b.ICache + b.DCacheL2
}

// Compute derives the energy breakdown from a simulation result.
func Compute(res *cpu.Result, cfg Config) Breakdown {
	cyc := float64(res.Cycles)
	var b Breakdown
	b.Core = cfg.PerInstr*float64(res.Instrs) + cfg.CoreStatic*cyc
	b.ICache = cfg.ICacheAccess*float64(res.ICacheAccesses) + cfg.CacheStatic*0.3*cyc
	b.DCacheL2 = cfg.DCacheAccess*float64(res.DCacheAccesses) +
		cfg.L2Access*float64(res.L2Accesses) + cfg.CacheStatic*0.7*cyc
	b.Memory = cfg.DRAMAccess*float64(res.DRAMAccesses) + cfg.DRAMStatic*cyc
	b.SoCRest = cfg.SoCRest * cyc
	return b
}

// Savings summarizes baseline-vs-optimized energy as the paper reports it:
// per-component savings as a percentage of the *baseline system total*
// (Fig. 10c stacks these), plus the CPU-only relative saving.
type Savings struct {
	ICachePct   float64 // i-cache contribution to system-wide saving
	CPUPct      float64 // core contribution
	MemoryPct   float64 // DRAM + d-side contribution
	TotalPct    float64 // whole-system energy saving
	CPUOnlyPct  float64 // CPU-side energy saving relative to CPU-side baseline
	BaselineSoC float64 // baseline total (pJ), for reference
}

// ComputeSavings compares two breakdowns. The rest-of-SoC component is held
// at the baseline value on both sides: the display, radios and accelerators
// run for the same user-session time regardless of how fast the CPU retires
// the same work (race-to-idle), which matches the paper's accounting — its
// 4.6% system saving decomposes entirely into i-cache + CPU + memory.
func ComputeSavings(base, opt Breakdown) Savings {
	opt.SoCRest = base.SoCRest
	tot := base.Total()
	var s Savings
	if tot == 0 {
		return s
	}
	s.ICachePct = 100 * (base.ICache - opt.ICache) / tot
	s.CPUPct = 100 * (base.Core - opt.Core) / tot
	s.MemoryPct = 100 * ((base.Memory - opt.Memory) + (base.DCacheL2 - opt.DCacheL2)) / tot
	s.TotalPct = 100 * (tot - opt.Total()) / tot
	if cb := base.CPUOnly(); cb > 0 {
		s.CPUOnlyPct = 100 * (cb - opt.CPUOnly()) / cb
	}
	s.BaselineSoC = tot
	return s
}
