package cpu

import (
	"testing"

	"critics/internal/isa"
	"critics/internal/trace"
)

// seqStream builds n independent 4-byte ALU instructions at sequential
// addresses.
func seqStream(n int) []trace.Dyn {
	dyns := make([]trace.Dyn, n)
	for i := 0; i < n; i++ {
		dyns[i] = trace.Dyn{
			Seq:     int64(i),
			Addr:    uint32(i * 4),
			Op:      isa.OpADD,
			Class:   isa.ClassALU,
			Size:    4,
			Latency: 1,
		}
	}
	return dyns
}

func run(t *testing.T, cfg Config, dyns []trace.Dyn) Result {
	t.Helper()
	cfg.CollectRecords = true
	s := New(cfg)
	res := s.Run(dyns, nil)
	if res.AllDyns != int64(len(dyns)) {
		t.Fatalf("AllDyns = %d, want %d", res.AllDyns, len(dyns))
	}
	return res
}

// runWarm simulates the window twice on one simulator instance and returns
// the second (warm-cache) result — the straight-line synthetic streams in
// these tests would otherwise be dominated by compulsory i-cache misses.
func runWarm(t *testing.T, cfg Config, dyns []trace.Dyn) Result {
	t.Helper()
	cfg.CollectRecords = true
	s := New(cfg)
	s.Run(dyns, nil)
	return s.Run(dyns, nil)
}

func TestIndependentALUBoundByFetch(t *testing.T) {
	// A32 code at 8 bytes/cycle feeds 2 instructions/cycle: IPC ~2 even
	// though the back end is 4-wide.
	res := runWarm(t, DefaultConfig(), seqStream(4000))
	ipc := res.IPC()
	if ipc < 1.6 || ipc > 2.2 {
		t.Errorf("A32 independent IPC = %.2f, want ~2 (fetch-limited)", ipc)
	}
}

func TestThumbDoublesFetchBandwidth(t *testing.T) {
	a32 := seqStream(4000)
	t16 := make([]trace.Dyn, len(a32))
	copy(t16, a32)
	for i := range t16 {
		t16[i].Size = 2
		t16[i].Thumb = true
		t16[i].Addr = uint32(i * 2)
	}
	cfg := DefaultConfig()
	cfg.IntALUs = 4 // isolate the front end: the test stream is pure ALU
	rA := runWarm(t, cfg, a32)
	rT := runWarm(t, cfg, t16)
	if rT.Cycles >= rA.Cycles {
		t.Fatalf("thumb stream (%d cycles) not faster than A32 (%d)", rT.Cycles, rA.Cycles)
	}
	speedup := float64(rA.Cycles) / float64(rT.Cycles)
	if speedup < 1.5 {
		t.Errorf("thumb speedup %.2f; fetch bandwidth should nearly double throughput", speedup)
	}
	ipc := rT.IPC()
	if ipc < 3.2 {
		t.Errorf("thumb IPC %.2f, want ~4 (decode-limited)", ipc)
	}
}

func TestSerialChainBoundByLatency(t *testing.T) {
	n := 2000
	dyns := seqStream(n)
	for i := 1; i < n; i++ {
		dyns[i].Prod[0] = int64(i - 1)
		dyns[i].NProd = 1
	}
	res := run(t, DefaultConfig(), dyns)
	// Fully serial single-cycle ops: ~1 instruction per cycle at best.
	if res.IPC() > 1.05 {
		t.Errorf("serial chain IPC %.2f > 1", res.IPC())
	}
	if res.IPC() < 0.4 {
		t.Errorf("serial chain IPC %.2f implausibly low", res.IPC())
	}
}

func TestRecordsMonotonic(t *testing.T) {
	dyns := seqStream(500)
	// Add some dependencies and a load.
	dyns[100].Op = isa.OpLDR
	dyns[100].Class = isa.ClassLoad
	dyns[100].IsLoad = true
	dyns[100].MemAddr = 0x4000_0000
	dyns[101].Prod[0] = 100
	dyns[101].NProd = 1
	res := run(t, DefaultConfig(), dyns)
	for i, r := range res.Records {
		seqs := []int64{r.Eligible, r.Fetched, r.DecodeDone, r.Dispatched, r.Issued, r.Done, r.Committed}
		for k := 1; k < len(seqs); k++ {
			if seqs[k] < 0 {
				t.Fatalf("instr %d: stage %d unreached: %+v", i, k, r)
			}
			if seqs[k] < seqs[k-1] {
				t.Fatalf("instr %d: timestamps not monotonic: %+v", i, r)
			}
		}
	}
}

func TestMispredictsCostCycles(t *testing.T) {
	n := 2000
	mk := func(pattern func(i int) bool) []trace.Dyn {
		dyns := seqStream(n)
		for i := 50; i < n; i += 50 {
			dyns[i].Op = isa.OpB
			dyns[i].Class = isa.ClassBranch
			dyns[i].IsBranch = true
			dyns[i].IsCond = true
			dyns[i].Taken = pattern(i)
			dyns[i].Target = dyns[i+1].Addr
		}
		return dyns
	}
	// Biased branches: predictable.
	rGood := run(t, DefaultConfig(), mk(func(i int) bool { return true }))
	// Pseudo-random: unpredictable.
	state := uint32(12345)
	rBad := run(t, DefaultConfig(), mk(func(i int) bool {
		state = state*1664525 + 1013904223
		return state&4 != 0
	}))
	if rBad.Mispredicts <= rGood.Mispredicts {
		t.Fatalf("mispredicts: random %d <= biased %d", rBad.Mispredicts, rGood.Mispredicts)
	}
	if rBad.Cycles <= rGood.Cycles {
		t.Errorf("random-branch stream (%d cycles) not slower than biased (%d)", rBad.Cycles, rGood.Cycles)
	}
}

func TestPerfectBrRemovesMispredicts(t *testing.T) {
	n := 1000
	dyns := seqStream(n)
	state := uint32(7)
	for i := 20; i < n; i += 20 {
		dyns[i].Op = isa.OpB
		dyns[i].Class = isa.ClassBranch
		dyns[i].IsBranch = true
		dyns[i].IsCond = true
		state = state*1664525 + 1013904223
		dyns[i].Taken = state&8 != 0
	}
	cfg := DefaultConfig()
	cfg.BPU.Perfect = true
	res := run(t, cfg, dyns)
	if res.Mispredicts != 0 {
		t.Errorf("perfect BPU mispredicted %d times", res.Mispredicts)
	}
}

func TestColdLoadsStallBackend(t *testing.T) {
	// Loads striding through a huge region: L2/DRAM misses dominate; with
	// every load feeding a dependent op, commit stalls behind memory.
	n := 3000
	dyns := seqStream(n)
	for i := 0; i < n; i += 4 {
		dyns[i].Op = isa.OpLDR
		dyns[i].Class = isa.ClassLoad
		dyns[i].IsLoad = true
		dyns[i].MemAddr = uint32(0x4000_0000 + i*4096) // new row+line every time
		dyns[i+1].Prod[0] = int64(i)
		dyns[i+1].NProd = 1
	}
	hot := seqStream(n)
	for i := 0; i < n; i += 4 {
		hot[i].Op = isa.OpLDR
		hot[i].Class = isa.ClassLoad
		hot[i].IsLoad = true
		hot[i].MemAddr = uint32(0x4000_0000 + (i%64)*64)
		hot[i+1].Prod[0] = int64(i)
		hot[i+1].NProd = 1
	}
	rCold := run(t, DefaultConfig(), dyns)
	rHot := run(t, DefaultConfig(), hot)
	if rCold.Cycles < rHot.Cycles*2 {
		t.Errorf("cold loads (%d cycles) not much slower than hot (%d)", rCold.Cycles, rHot.Cycles)
	}
}

func TestCriticalLoadPrefetchHelpsRepeatedColdLoads(t *testing.T) {
	// A loop body re-executing the same high-fanout load PC with a
	// regular stride: once the table marks it critical, fetch-time
	// prefetch hides most of the memory latency.
	n := 8000
	mk := func() ([]trace.Dyn, []int32) {
		dyns := make([]trace.Dyn, n)
		fan := make([]int32, n)
		addr := uint32(0x4800_0000)
		for i := 0; i < n; i++ {
			pcSlot := i % 8
			dyns[i] = trace.Dyn{
				Seq:     int64(i),
				Addr:    uint32(pcSlot * 4), // loop: same 8 PCs repeat
				Op:      isa.OpADD,
				Class:   isa.ClassALU,
				Size:    4,
				Latency: 1,
			}
			if pcSlot == 0 {
				dyns[i].Op = isa.OpLDR
				dyns[i].Class = isa.ClassLoad
				dyns[i].IsLoad = true
				dyns[i].MemAddr = addr
				addr += 4096
				fan[i] = 10
			} else {
				dyns[i].Prod[0] = int64(i - pcSlot) // consume the load
				dyns[i].NProd = 1
			}
		}
		return dyns, fan
	}
	base := DefaultConfig()
	base.CollectRecords = false
	d1, f1 := mk()
	rOff := New(base).Run(d1, f1)

	pf := base
	pf.CriticalLoadPrefetch = true
	d2, f2 := mk()
	rOn := New(pf).Run(d2, f2)
	if rOn.Cycles >= rOff.Cycles {
		t.Errorf("critical-load prefetch did not help: %d vs %d cycles", rOn.Cycles, rOff.Cycles)
	}
}

func TestCDPDecodeBubble(t *testing.T) {
	mk := func(withCDP bool) []trace.Dyn {
		var dyns []trace.Dyn
		addr := uint32(0)
		seq := int64(0)
		for g := 0; g < 200; g++ {
			if withCDP {
				dyns = append(dyns, trace.Dyn{Seq: seq, Addr: addr, Op: isa.OpCDP, Class: isa.ClassCDP, Size: 2, Thumb: true, IsCDP: true, CDPCount: 4, Latency: 1})
				seq++
				addr += 2
			}
			for k := 0; k < 4; k++ {
				d := trace.Dyn{Seq: seq, Addr: addr, Op: isa.OpADD, Class: isa.ClassALU, Latency: 1}
				if withCDP {
					d.Size = 2
					d.Thumb = true
					addr += 2
				} else {
					d.Size = 4
					addr += 4
				}
				dyns = append(dyns, d)
				seq++
			}
		}
		return dyns
	}
	cfgBubble := DefaultConfig()
	cfgNoBubble := DefaultConfig()
	cfgNoBubble.CDPExtraDecodeCycle = false
	rBubble := runWarm(t, cfgBubble, mk(true))
	rNoBubble := runWarm(t, cfgNoBubble, mk(true))
	if rBubble.Cycles <= rNoBubble.Cycles {
		t.Errorf("CDP bubble did not cost cycles: %d vs %d", rBubble.Cycles, rNoBubble.Cycles)
	}
	// CDPs are not architectural instructions.
	if rBubble.Instrs != 800 {
		t.Errorf("Instrs = %d, want 800 (CDPs excluded)", rBubble.Instrs)
	}
}

func TestDeterministic(t *testing.T) {
	dyns := seqStream(3000)
	r1 := New(DefaultConfig()).Run(dyns, nil)
	r2 := New(DefaultConfig()).Run(dyns, nil)
	if r1.Cycles != r2.Cycles || r1.Mispredicts != r2.Mispredicts {
		t.Error("simulation is not deterministic")
	}
}

func TestBreakdownAccounting(t *testing.T) {
	dyns := seqStream(1000)
	res := run(t, DefaultConfig(), dyns)
	var total Breakdown
	for i := range res.Records {
		b := BreakdownOf(&res.Records[i])
		total.Add(b)
	}
	// Fetch-limited stream: F.StallForI must dominate the waiting.
	if total.FetchI == 0 {
		t.Error("no F.StallForI recorded for a bandwidth-limited stream")
	}
	if total.Total() < 0 {
		t.Error("negative breakdown")
	}
}

func TestBigFrontEndRemovesFetchLimit(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FetchBytes = 16
	cfg.FetchWidth = 8
	cfg.DecodeWidth = 8
	cfg.IntALUs = 4 // isolate the front end: the test stream is pure ALU
	res := runWarm(t, cfg, seqStream(4000))
	if res.IPC() < 3.2 {
		t.Errorf("2xFD IPC = %.2f, want ~4 (backend-limited)", res.IPC())
	}
}
