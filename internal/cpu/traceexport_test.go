package cpu

import (
	"bytes"
	"encoding/json"
	"testing"

	"critics/internal/dfg"
	"critics/internal/telemetry"
	"critics/internal/trace"
	"critics/internal/workload"
)

// simulateWindow runs one collected window of a real app for the export
// tests.
func simulateWindow(t *testing.T) ([]trace.Dyn, []Record) {
	t.Helper()
	app, ok := workload.FindApp("acrobat")
	if !ok {
		t.Fatal("acrobat app missing")
	}
	p := workload.Generate(app.Params)
	g := trace.NewGenerator(p, 1)
	g.Skip(5_000)
	dyns := g.Generate(nil, 8_000)
	fan := dfg.Fanouts(dyns, 128)
	cfg := DefaultConfig()
	cfg.CollectRecords = true
	res := New(cfg).Run(dyns, fan)
	if res.Records == nil {
		t.Fatal("no records collected")
	}
	return dyns, res.Records
}

// TestExportWindowMatchesBreakdown is the trace export's correctness
// contract: per stage track, the exported span durations sum to exactly the
// Breakdown aggregate of the same window.
func TestExportWindowMatchesBreakdown(t *testing.T) {
	dyns, recs := simulateWindow(t)

	var want Breakdown
	for i := range recs {
		want.Add(BreakdownOf(&recs[i]))
	}

	var b bytes.Buffer
	tr := telemetry.NewTracer(&b)
	ExportWindow(tr, 10, "test window", dyns, recs)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	var doc struct {
		TraceEvents []struct {
			Ph  string `json:"ph"`
			Pid int    `json:"pid"`
			Tid int    `json:"tid"`
			Dur int64  `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}

	var got [tidMarkers + 1]int64
	for _, e := range doc.TraceEvents {
		if e.Ph == "X" && e.Pid == 10 {
			got[e.Tid] += e.Dur
		}
	}
	checks := []struct {
		tid  int
		name string
		want int64
	}{
		{tidStallI, "F.StallForI", want.FetchI},
		{tidStallRD, "F.StallForR+D", want.FetchRD},
		{tidDecode, "Decode", want.Decode},
		{tidRename, "Rename", want.Rename},
		{tidExecute, "Execute", want.Execute},
		{tidCommit, "Commit", want.Commit},
	}
	for _, c := range checks {
		if got[c.tid] != c.want {
			t.Errorf("%s spans sum to %d cycles, Breakdown says %d", c.name, got[c.tid], c.want)
		}
	}
	if want.Total() == 0 {
		t.Error("degenerate window: zero total breakdown")
	}
}

// TestExportWindowMarkers checks the marker track carries the window's
// mispredict redirects (and CDP switches when present).
func TestExportWindowMarkers(t *testing.T) {
	dyns, recs := simulateWindow(t)
	var redirects int
	for i := range recs {
		if recs[i].Redirected {
			redirects++
		}
	}
	if redirects == 0 {
		t.Fatal("window has no mispredict redirects; pick a longer window")
	}

	var b bytes.Buffer
	tr := telemetry.NewTracer(&b)
	ExportWindow(tr, 10, "test window", dyns, recs)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Tid  int    `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	var markers int
	for _, e := range doc.TraceEvents {
		if e.Ph == "i" && e.Tid == tidMarkers && e.Name == "mispredict redirect" {
			markers++
		}
	}
	if markers != redirects {
		t.Errorf("exported %d redirect markers, window had %d redirects", markers, redirects)
	}
}

// TestMetricsFlush checks Run folds its aggregates into an attached
// registry: stall cycles equal the Breakdown totals, cache counters equal
// the Result deltas, and a second window accumulates.
func TestMetricsFlush(t *testing.T) {
	app, _ := workload.FindApp("acrobat")
	p := workload.Generate(app.Params)
	g := trace.NewGenerator(p, 1)
	g.Skip(5_000)
	dyns := g.Generate(nil, 6_000)
	fan := dfg.Fanouts(dyns, 128)

	reg := telemetry.NewRegistry()
	cfg := DefaultConfig()
	cfg.CollectRecords = true
	cfg.Metrics = NewMetrics(reg)
	s := New(cfg)
	res := s.Run(dyns, fan)

	var want Breakdown
	for i := range res.Records {
		want.Add(BreakdownOf(&res.Records[i]))
	}
	m := cfg.Metrics
	stall := []int64{want.FetchI, want.FetchRD, want.Decode, want.Rename, want.Execute, want.Commit}
	for i, w := range stall {
		if got := m.Stall[i].Value(); got != w {
			t.Errorf("stall[%s] = %d, want %d", stallStages[i], got, w)
		}
	}
	if m.Cycles.Value() != res.Cycles {
		t.Errorf("cycles = %d, want %d", m.Cycles.Value(), res.Cycles)
	}
	if m.L1IAccesses.Value() != res.ICacheAccesses {
		t.Errorf("l1i accesses = %d, want %d", m.L1IAccesses.Value(), res.ICacheAccesses)
	}
	if m.Mispredicts.Value() != res.Mispredicts {
		t.Errorf("mispredicts = %d, want %d", m.Mispredicts.Value(), res.Mispredicts)
	}
	if m.Windows.Value() != 1 {
		t.Errorf("windows = %d, want 1", m.Windows.Value())
	}
	if m.FetchBytesUsed.Count() == 0 {
		t.Error("fetch bandwidth histogram saw no cycles")
	}

	res2 := s.Run(dyns[:3_000], fan[:3_000])
	if m.Windows.Value() != 2 {
		t.Errorf("windows after second run = %d, want 2", m.Windows.Value())
	}
	if m.Cycles.Value() != res.Cycles+res2.Cycles {
		t.Errorf("cycles did not accumulate: %d vs %d+%d", m.Cycles.Value(), res.Cycles, res2.Cycles)
	}
}

// TestMetricsNilIdentical proves the nil-sink path changes nothing: the
// same window simulated with and without a metrics sink produces identical
// results and records.
func TestMetricsNilIdentical(t *testing.T) {
	app, _ := workload.FindApp("acrobat")
	p := workload.Generate(app.Params)
	g := trace.NewGenerator(p, 1)
	g.Skip(5_000)
	dyns := g.Generate(nil, 6_000)
	fan := dfg.Fanouts(dyns, 128)

	run := func(m *Metrics) Result {
		cfg := DefaultConfig()
		cfg.CollectRecords = true
		cfg.Metrics = m
		return New(cfg).Run(dyns, fan)
	}
	off := run(nil)
	on := run(NewMetrics(telemetry.NewRegistry()))
	if off.Cycles != on.Cycles || off.Instrs != on.Instrs || off.Mispredicts != on.Mispredicts {
		t.Fatalf("telemetry perturbed results: off %+v on %+v", off, on)
	}
	for i := range off.Records {
		if off.Records[i] != on.Records[i] {
			t.Fatalf("record %d differs with telemetry on", i)
		}
	}
}
