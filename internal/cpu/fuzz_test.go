package cpu

import (
	"reflect"
	"testing"

	"critics/internal/dfg"
	"critics/internal/isa"
	"critics/internal/trace"
)

// fuzzTrace decodes the fuzz payload into a short synthetic dynamic stream
// that honours the generator's invariants (sequential Seq, producers strictly
// backward, class flags consistent) so both the batched and serial paths see
// a trace shaped like real input — the fuzzer explores machine behaviour, not
// decoder robustness (trace decoding has its own fuzz target).
func fuzzTrace(data []byte) []trace.Dyn {
	n := len(data) / 6
	if n > 2048 {
		n = 2048
	}
	dyns := make([]trace.Dyn, 0, n)
	pc := uint32(0x1000)
	for i := 0; i < n; i++ {
		b := data[i*6 : i*6+6]
		d := trace.Dyn{Seq: int64(i), Addr: pc, Class: isa.Class(b[0] % isa.NumClasses)}
		if b[1]&1 != 0 {
			d.Size, d.Thumb = 2, true
			d.Expanded = b[1]&2 != 0
		} else {
			d.Size = 4
		}
		for k := uint8(0); k < b[2]%3 && int64(k) < d.Seq; k++ {
			// Strictly backward, possibly far past the window start.
			d.Prod[k] = d.Seq - 1 - int64(b[3+k]%200)
			d.NProd = k + 1
		}
		switch d.Class {
		case isa.ClassLoad:
			d.IsLoad = true
			d.MemAddr = trace.DataBase + uint32(b[4])<<6 + uint32(b[5])
		case isa.ClassStore:
			d.IsStore = true
			d.MemAddr = trace.DataBase + uint32(b[4])<<6 + uint32(b[5])
		case isa.ClassBranch, isa.ClassCall, isa.ClassRet:
			d.IsBranch = true
			d.IsCond = d.Class == isa.ClassBranch && b[4]&1 != 0
			d.Taken = !d.IsCond || b[4]&2 != 0
			d.Target = (0x1000 + uint32(b[5])<<3) &^ 3
			if d.Class == isa.ClassCall {
				d.Op = isa.OpBL
			} else if d.Class == isa.ClassRet {
				d.Op = isa.OpBX
			}
		case isa.ClassCDP:
			d.IsCDP = true
			d.CDPCount = 1 + b[4]%3
		}
		if d.IsBranch && d.Taken {
			pc = d.Target
		} else {
			pc += uint32(d.Size)
		}
		dyns = append(dyns, d)
	}
	return dyns
}

// fuzzConfig decodes one lane's machine knobs from two payload bytes,
// spanning the same axes the design-space sweeps vary.
func fuzzConfig(b0, b1 byte) Config {
	cfg := DefaultConfig()
	if b0&1 != 0 {
		cfg.FetchBytes *= 2
		cfg.FetchWidth *= 2
		cfg.DecodeWidth *= 2
	}
	if b0&2 != 0 {
		cfg.BPU.Perfect = true
	}
	if b0&4 != 0 {
		cfg.BackendPrio = true
	}
	if b0&8 != 0 {
		cfg.CriticalLoadPrefetch = true
	}
	if b0&16 != 0 {
		cfg.CDPExtraDecodeCycle = false
	}
	if b0&32 != 0 {
		cfg.CollectRecords = true
	}
	if b0&64 != 0 {
		cfg.ROBSize, cfg.IQSize = 48, 24
	}
	if b0&128 != 0 {
		cfg.Hier.L1I.SizeBytes *= 4
	}
	if b1&1 != 0 {
		cfg.Hier.L1D.SizeBytes *= 2
	}
	return cfg
}

// FuzzBatchSim cross-checks BatchSim lane by lane against serial
// Sim.RunStream on fuzz-chosen variant sets (machine knobs per lane) and
// fuzz-synthesized short traces: any divergence, panic, or deadlock in the
// lockstep broadcast is a finding.
func FuzzBatchSim(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("\x03\x07\x01\x00\x24\x02\x85\x40" +
		"\x04\x01\x02\x05\x09\x11\x06\x00\x01\x30\x41\x52\x0a\x00\x02\x17\x63\x74"))
	f.Add([]byte("\xff\x9c\x42\x00" +
		"\x06\x00\x01\x00\x00\x00\x04\x00\x02\x01\x02\x90\x05\x01\x01\x03\x44\x55" +
		"\x0c\x00\x00\x00\x02\x00\x07\x01\x01\x08\x20\x00\x08\x00\x00\x00\x00\x00"))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 4 {
			return
		}
		lanes := 1 + int(data[0]%4)
		cfgs := make([]Config, lanes)
		for i := range cfgs {
			cfgs[i] = fuzzConfig(data[1+i%2], data[2])
		}
		chunk := []int{1, 7, 64, 256, 1024}[int(data[3])%5]
		dyns := fuzzTrace(data[4:])

		want := make([]Result, lanes)
		for i, cfg := range cfgs {
			fs := dfg.NewFanoutStream(trace.NewSliceSource(dyns, chunk), 128)
			want[i] = stripHandles(New(cfg).RunStream(fs))
		}
		got := NewBatch(cfgs).RunStream(dfg.NewFanoutStream(trace.NewSliceSource(dyns, chunk), 128))
		for i := range cfgs {
			if !reflect.DeepEqual(stripHandles(got[i]), want[i]) {
				t.Fatalf("lane %d of %d (chunk %d, %d dyns): batched Result differs from serial",
					i, lanes, chunk, len(dyns))
			}
		}
	})
}
