package cpu

import (
	"critics/internal/telemetry"
)

// stallStages are the label values of the per-stage stall counters, in
// Breakdown field order. The first two are the paper's front-end taxonomy
// (§II-D): f_stall_i is F.StallForI, f_stall_rd is F.StallForR+D.
var stallStages = [...]string{"f_stall_i", "f_stall_rd", "decode", "rename", "execute", "commit"}

// Metrics is the simulator's telemetry bundle: pre-resolved registry series
// the Run loop flushes into. A nil *Metrics in Config disables all
// instrumentation — the nil-sink fast path the overhead benchmark guards.
type Metrics struct {
	Windows *telemetry.Counter // Run calls
	Cycles  *telemetry.Counter
	Instrs  *telemetry.Counter // architectural instructions

	// Stall holds the per-stage cycle attribution counters, indexed like
	// Breakdown fields (see stallStages).
	Stall [6]*telemetry.Counter

	CondBranches *telemetry.Counter
	Mispredicts  *telemetry.Counter // conditional + return mispredicts
	CDPSwitches  *telemetry.Counter

	L1IAccesses, L1IMisses *telemetry.Counter
	L1DAccesses, L1DMisses *telemetry.Counter
	L2Accesses             *telemetry.Counter
	DRAMAccesses           *telemetry.Counter

	// FetchBytesUsed observes, per active fetch cycle, how many of the
	// FetchBytes port bytes the cycle actually consumed — the
	// fetch-bandwidth-utilization view of the paper's "nearly doubles the
	// fetch bandwidth" claim.
	FetchBytesUsed *telemetry.Histogram
}

// NewMetrics registers the simulator's metric families on reg and returns
// the bundle to hang on Config.Metrics. Repeated calls return series backed
// by the same registry state, so several Sim instances may share a bundle.
func NewMetrics(reg *telemetry.Registry) *Metrics {
	m := &Metrics{
		Windows:      reg.Counter("critics_sim_windows_total", "Simulated windows (Sim.Run calls, warm-up included)."),
		Cycles:       reg.Counter("critics_sim_cycles_total", "Simulated core cycles."),
		Instrs:       reg.Counter("critics_sim_instructions_total", "Committed architectural instructions (CDP mode switches excluded)."),
		CondBranches: reg.Counter("critics_sim_cond_branches_total", "Conditional branches seen at fetch."),
		Mispredicts:  reg.Counter("critics_sim_mispredicts_total", "Branch and return mispredict redirects."),
		CDPSwitches:  reg.Counter("critics_sim_cdp_switches_total", "CDP decoder mode switches consumed at decode."),
		L1IAccesses:  reg.Counter("critics_cache_accesses_total", "Cache accesses by level.", telemetry.L("level", "l1i")),
		L1IMisses:    reg.Counter("critics_cache_misses_total", "Cache misses by level.", telemetry.L("level", "l1i")),
		L1DAccesses:  reg.Counter("critics_cache_accesses_total", "Cache accesses by level.", telemetry.L("level", "l1d")),
		L1DMisses:    reg.Counter("critics_cache_misses_total", "Cache misses by level.", telemetry.L("level", "l1d")),
		L2Accesses:   reg.Counter("critics_cache_accesses_total", "Cache accesses by level.", telemetry.L("level", "l2")),
		DRAMAccesses: reg.Counter("critics_cache_accesses_total", "Cache accesses by level.", telemetry.L("level", "dram")),
		FetchBytesUsed: reg.Histogram("critics_sim_fetch_bytes_used",
			"Fetch port bytes consumed per active fetch cycle.",
			telemetry.LinearBuckets(0, 2, 9)),
	}
	for i, stage := range stallStages {
		m.Stall[i] = reg.Counter("critics_sim_stall_cycles_total",
			"Per-instruction stall/dwell cycles by pipeline stage (paper §II-D taxonomy for the two fetch stages).",
			telemetry.L("stage", stage))
	}
	return m
}

// flushRun folds one window's aggregates into the registry. bkd and cdp are
// accumulated incrementally by Run as instructions retire, so flushing does
// not require the per-instruction record slice (which Run only keeps in a
// small sliding window unless CollectRecords asks for all of it).
func (m *Metrics) flushRun(res *Result, bkd Breakdown, cdp int64) {
	m.Windows.Inc()
	m.Cycles.Add(res.Cycles)
	m.Instrs.Add(res.Instrs)
	m.CondBranches.Add(res.CondBr)
	m.Mispredicts.Add(res.Mispredicts)
	m.L1IAccesses.Add(res.ICacheAccesses)
	m.L1IMisses.Add(res.ICacheMisses)
	m.L1DAccesses.Add(res.DCacheAccesses)
	m.L1DMisses.Add(res.DCacheMisses)
	m.L2Accesses.Add(res.L2Accesses)
	m.DRAMAccesses.Add(res.DRAMAccesses)

	m.CDPSwitches.Add(cdp)
	m.Stall[0].Add(bkd.FetchI)
	m.Stall[1].Add(bkd.FetchRD)
	m.Stall[2].Add(bkd.Decode)
	m.Stall[3].Add(bkd.Rename)
	m.Stall[4].Add(bkd.Execute)
	m.Stall[5].Add(bkd.Commit)
}
