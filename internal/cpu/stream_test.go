package cpu

import (
	"reflect"
	"testing"

	"critics/internal/dfg"
	"critics/internal/trace"
	"critics/internal/workload"
)

// appDyns returns a realistic dynamic window (dependencies, branches, CDP
// mode switches) for the streaming equivalence tests.
func appDyns(t *testing.T, n int) []trace.Dyn {
	t.Helper()
	a, ok := workload.FindApp("acrobat")
	if !ok {
		t.Fatal("catalog app missing")
	}
	g := trace.NewGenerator(workload.Generate(a.Params), 11)
	g.Skip(2_000)
	return g.Generate(nil, n)
}

// stripHandles clears the in-memory-only handle fields so two Results from
// distinct Sim instances can be compared with reflect.DeepEqual.
func stripHandles(r Result) Result {
	r.Hier, r.BPU = nil, nil
	return r
}

// TestRunStreamMatchesRun drives the same window through the materialized
// entry point (Run over a full slice with precomputed fanouts) and through
// RunStream over a chunked source with online fanouts, for both record
// collection modes, and requires bit-identical Results.
func TestRunStreamMatchesRun(t *testing.T) {
	dyns := appDyns(t, 30_000)
	fan := dfg.Fanouts(dyns, 128)
	for _, collect := range []bool{false, true} {
		cfg := DefaultConfig()
		cfg.CollectRecords = collect
		want := stripHandles(New(cfg).Run(dyns, fan))
		for _, chunk := range []int{1, 257, 4096} {
			fs := dfg.NewFanoutStream(trace.NewSliceSource(dyns, chunk), 128)
			got := stripHandles(New(cfg).RunStream(fs))
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("collect=%v chunk=%d: streamed Result differs\ngot:  %+v\nwant: %+v",
					collect, chunk, got, want)
			}
		}
	}
}

// TestRunStreamNilFanouts checks that a fanout-less stream matches Run with
// nil fanouts (no criticality training, fanout 0 at every commit).
func TestRunStreamNilFanouts(t *testing.T) {
	dyns := appDyns(t, 10_000)
	cfg := DefaultConfig()
	want := stripHandles(New(cfg).Run(dyns, nil))
	got := stripHandles(New(cfg).RunStream(&sliceStream{dyns: dyns}))
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("streamed Result differs\ngot:  %+v\nwant: %+v", got, want)
	}
}

// TestRunStreamContinuity checks that successive RunStream calls on one Sim
// continue the clock and warm state exactly like successive Run calls.
func TestRunStreamContinuity(t *testing.T) {
	dyns := appDyns(t, 24_000)
	fan := dfg.Fanouts(dyns, 128)
	a, b := dyns[:12_000], dyns[12_000:]
	fa, fb := fan[:12_000], fan[12_000:]

	sm := New(DefaultConfig())
	wa, wb := stripHandles(sm.Run(a, fa)), stripHandles(sm.Run(b, fb))

	ss := New(DefaultConfig())
	ga := stripHandles(ss.RunStream(dfg.NewFanoutStream(trace.NewSliceSource(a, 999), 128)))
	gb := stripHandles(ss.RunStream(dfg.NewFanoutStream(trace.NewSliceSource(b, 999), 128)))
	if !reflect.DeepEqual(ga, wa) || !reflect.DeepEqual(gb, wb) {
		t.Fatal("streamed back-to-back windows differ from materialized runs")
	}
}

// TestOnCommit checks the commit observer fires exactly once per retired
// instruction with the stream's fanout values, in both entry points.
func TestOnCommit(t *testing.T) {
	dyns := appDyns(t, 8_000)
	fan := dfg.Fanouts(dyns, 128)
	for _, streamed := range []bool{false, true} {
		s := New(DefaultConfig())
		var n, cdp int64
		var sum int64
		s.OnCommit(func(d *trace.Dyn, fanout int32, r *Record) {
			n++
			sum += int64(fanout)
			if d.IsCDP {
				cdp++
			}
			if r.Committed < 0 && r.DecodeDone < 0 {
				t.Fatal("observer saw an unretired record")
			}
		})
		var res Result
		if streamed {
			res = s.RunStream(dfg.NewFanoutStream(trace.NewSliceSource(dyns, 1024), 128))
		} else {
			res = s.Run(dyns, fan)
		}
		if n != res.AllDyns {
			t.Fatalf("streamed=%v: observer fired %d times, want %d", streamed, n, res.AllDyns)
		}
		if cdp != res.AllDyns-res.Instrs {
			t.Fatalf("streamed=%v: observer saw %d CDPs, want %d", streamed, cdp, res.AllDyns-res.Instrs)
		}
		var want int64
		for _, f := range fan {
			want += int64(f)
		}
		if sum != want {
			t.Fatalf("streamed=%v: observed fanout sum %d, want %d", streamed, sum, want)
		}
	}
}
