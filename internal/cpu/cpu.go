// Package cpu is the cycle-level timing model of the baseline platform's
// core (Table I): a 4-wide Fetch/Decode/Rename/ROB/Issue/Execute/Commit
// out-of-order superscalar with a 128-entry ROB, the two-level branch
// predictor (internal/bpu) and the cache/DRAM hierarchy (internal/cache)
// behind it.
//
// The simulator is trace-driven: it consumes the dynamic stream produced by
// internal/trace (control flow and addresses resolved) but models the fetch
// path faithfully — i-cache timing, fetch byte bandwidth, Thumb/CDP decode,
// branch prediction versus actual outcome, and misprediction redirect
// stalls — because the front end is where the paper's action is.
//
// Fetch bandwidth model: the i-cache read port delivers FetchBytes per cycle
// (8 in the baseline, the Cortex-A53-style fetch window), capped at
// FetchWidth instructions. A 32-bit-encoded stream therefore sustains at
// most 2 instructions/cycle into the fetch buffer while 16-bit Thumb code
// sustains 4 — the mechanical root of the paper's "nearly doubles the fetch
// bandwidth" claim.
//
// Per-instruction stall attribution matches the paper's taxonomy (§II-D):
// F.StallForI is the time from when an instruction becomes the next to fetch
// until its bytes enter the fetch buffer (i-cache misses, redirects, byte
// bandwidth); F.StallForR+D is the time it then waits in the fetch buffer
// for the decode stage to drain it (back-pressure).
package cpu

import (
	"critics/internal/bpu"
	"critics/internal/cache"
	"critics/internal/isa"
	"critics/internal/trace"
)

// Config describes the core and its optimization hooks.
type Config struct {
	FetchWidth   int // instructions fetched per cycle (cap)
	FetchBytes   int // bytes fetched per cycle (port width)
	DecodeWidth  int
	RenameWidth  int
	IssueWidth   int
	CommitWidth  int
	ROBSize      int
	IQSize       int
	LSQSize      int
	FetchBufSize int

	IntALUs  int
	MulDivUs int
	FPUs     int
	MemPorts int

	MispredictPenalty int64

	// CDPExtraDecodeCycle charges the 1-cycle decoder bubble the paper
	// conservatively assumes for the CDP mode switch (§IV-B).
	CDPExtraDecodeCycle bool

	BPU  bpu.Config
	Hier cache.HierConfig

	// Optimization hooks (the paper's baselines and comparisons).
	CriticalLoadPrefetch bool // [18]: prefetch loads predicted critical
	BackendPrio          bool // [32]/[33]: issue critical instructions first
	CritFanoutThreshold  int32

	// CollectRecords keeps per-instruction stage timestamps (needed for
	// the Fig. 3 breakdowns; costs memory on big windows).
	CollectRecords bool

	// Metrics, when non-nil, receives per-window aggregates (stall
	// attribution, cache/BPU event counts, fetch-bandwidth utilization)
	// at the end of every Run. Nil disables all instrumentation; the hot
	// loop pays only nil checks (see BenchmarkSimTelemetryOff/On).
	Metrics *Metrics
}

// DefaultConfig returns the Table I baseline.
func DefaultConfig() Config {
	return Config{
		FetchWidth:          4,
		FetchBytes:          8,
		DecodeWidth:         4,
		RenameWidth:         4,
		IssueWidth:          4,
		CommitWidth:         4,
		ROBSize:             128,
		IQSize:              48,
		LSQSize:             32,
		FetchBufSize:        24,
		IntALUs:             3,
		MulDivUs:            1,
		FPUs:                2,
		MemPorts:            2,
		MispredictPenalty:   10,
		CDPExtraDecodeCycle: true,
		BPU:                 bpu.DefaultConfig(),
		Hier:                cache.DefaultHierConfig(),
		CritFanoutThreshold: 8,
	}
}

// Record holds per-instruction stage timestamps (cycles). -1 = not reached.
type Record struct {
	Eligible   int64 // became next-to-fetch
	Fetched    int64 // entered the fetch buffer
	DecodeDone int64 // left the fetch buffer through decode
	Dispatched int64 // renamed into ROB+IQ
	Issued     int64 // selected for execution
	Done       int64 // result available
	Committed  int64

	// Redirected marks a mispredicted branch/return that forced a
	// front-end redirect (trace exports render these as markers).
	Redirected bool
}

// Breakdown is a per-stage cycle attribution (Fig. 3a/3b).
type Breakdown struct {
	FetchI  int64 // F.StallForI
	FetchRD int64 // F.StallForR+D
	Decode  int64 // decode-to-rename wait
	Rename  int64 // dispatch-to-issue-eligibility (ROB/IQ residency before issue)
	Execute int64
	Commit  int64 // completion-to-commit (ROB drain)
}

// Total returns the summed cycles.
func (b Breakdown) Total() int64 {
	return b.FetchI + b.FetchRD + b.Decode + b.Rename + b.Execute + b.Commit
}

// Add accumulates o into b.
func (b *Breakdown) Add(o Breakdown) {
	b.FetchI += o.FetchI
	b.FetchRD += o.FetchRD
	b.Decode += o.Decode
	b.Rename += o.Rename
	b.Execute += o.Execute
	b.Commit += o.Commit
}

// BreakdownOf converts a record into per-stage dwell times.
func BreakdownOf(r *Record) Breakdown {
	clamp := func(v int64) int64 {
		if v < 0 {
			return 0
		}
		return v
	}
	var b Breakdown
	b.FetchI = clamp(r.Fetched - r.Eligible)
	b.FetchRD = clamp(r.DecodeDone - r.Fetched - 1)
	b.Decode = clamp(r.Dispatched - r.DecodeDone - 1)
	b.Rename = clamp(r.Issued - r.Dispatched - 1)
	b.Execute = clamp(r.Done - r.Issued)
	b.Commit = clamp(r.Committed - r.Done)
	return b
}

// Result is the outcome of simulating one window.
type Result struct {
	Cycles  int64
	Instrs  int64 // architectural instructions (CDPs excluded)
	AllDyns int64 // including CDP mode switches

	Mispredicts int64
	CondBr      int64

	// Per-run memory-system event counts (deltas over this Run call; the
	// hierarchy's own counters are cumulative across runs). The energy
	// model consumes these.
	ICacheAccesses int64
	ICacheMisses   int64
	DCacheAccesses int64
	DCacheMisses   int64
	L2Accesses     int64
	DRAMAccesses   int64

	// Hierarchy/BPU handles for stats and the energy model. In-memory only:
	// excluded from the JSON wire form (internal/dist ships Results between
	// machines; no consumer of a remote result reads these).
	Hier *cache.Hierarchy `json:"-"`
	BPU  *bpu.Predictor   `json:"-"`

	// Records is non-nil when Config.CollectRecords is set; aligned with
	// the input dyn slice.
	Records []Record
}

// IPC returns architectural instructions per cycle.
func (r *Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Instrs) / float64(r.Cycles)
}

// Sim is the simulator instance. Hierarchy and predictor state persist
// across Run calls, so successive windows see warm caches.
type Sim struct {
	cfg  Config
	hier *cache.Hierarchy
	bpu  *bpu.Predictor

	// Criticality predictor table (PC-indexed), trained at commit from
	// observed fanout — the hardware-table analogue both baseline
	// optimizations rely on (§II-A). For loads it additionally learns the
	// address stride, so the critical-load prefetcher ([18]) can issue
	// the *next* occurrence's line ahead of time.
	critTable map[uint32]*critEntry

	// clock is the absolute cycle count across Run calls; cache and DRAM
	// timestamps are absolute, so successive windows continue the clock
	// instead of restarting it (otherwise warm lines would look like
	// in-flight fills).
	clock int64
}

// critEntry is one criticality-table entry.
type critEntry struct {
	crit     uint8 // saturating criticality confidence
	lastAddr uint32
	stride   int32
	conf     uint8 // stride confidence
}

// New creates a simulator.
func New(cfg Config) *Sim {
	return &Sim{
		cfg:       cfg,
		hier:      cache.NewHierarchy(cfg.Hier),
		bpu:       bpu.New(cfg.BPU),
		critTable: make(map[uint32]*critEntry),
	}
}

// predCritical reports whether the PC is predicted critical.
func (s *Sim) predCritical(pc uint32) bool {
	e := s.critTable[pc]
	return e != nil && e.crit >= 2
}

// trainCritical updates the criticality table with an observed fanout and,
// for loads, the address stride. When the critical-load prefetch hook is on
// and the stride is confident, the next occurrences' lines are prefetched —
// the form of [18]'s criticality-directed prefetching that actually hides
// DRAM latency for strided critical loads.
func (s *Sim) trainCritical(d *trace.Dyn, fanout int32, now int64) {
	e := s.critTable[d.Addr]
	if e == nil {
		e = &critEntry{}
		s.critTable[d.Addr] = e
	}
	if fanout >= s.cfg.CritFanoutThreshold {
		if e.crit < 3 {
			e.crit++
		}
	} else if e.crit > 0 {
		e.crit--
	}
	if !d.IsLoad {
		return
	}
	stride := int32(d.MemAddr) - int32(e.lastAddr)
	if stride == e.stride && stride != 0 {
		if e.conf < 3 {
			e.conf++
		}
	} else {
		e.stride = stride
		if e.conf > 0 {
			e.conf--
		}
	}
	e.lastAddr = d.MemAddr
	if s.cfg.CriticalLoadPrefetch && e.crit >= 2 && e.conf >= 2 {
		for k := int64(1); k <= 3; k++ {
			s.hier.PrefetchData(uint32(int64(d.MemAddr)+k*int64(e.stride)), s.clock+now)
		}
	}
}

const noIdx = -1

// Run simulates one dynamic window. fanouts may be nil; when provided
// (aligned with dyns, from dfg.Fanouts) it trains the criticality table and
// drives the BackendPrio/CriticalLoadPrefetch hooks.
func (s *Sim) Run(dyns []trace.Dyn, fanouts []int32) Result {
	n := len(dyns)
	res := Result{Hier: s.hier, BPU: s.bpu}
	if n == 0 {
		return res
	}
	rec := make([]Record, n)
	for i := range rec {
		rec[i] = Record{Eligible: -1, Fetched: -1, DecodeDone: -1, Dispatched: -1, Issued: -1, Done: -1, Committed: -1}
	}
	ia0, im0 := s.hier.L1I.Accesses, s.hier.L1I.Misses
	da0, dm0 := s.hier.L1D.Accesses, s.hier.L1D.Misses
	l20, dr0 := s.hier.L2.Accesses, s.hier.DRAM.Accesses

	type fifo struct {
		buf  []int32
		head int
	}
	push := func(f *fifo, v int32) { f.buf = append(f.buf, v) }
	size := func(f *fifo) int { return len(f.buf) - f.head }
	front := func(f *fifo) int32 { return f.buf[f.head] }
	pop := func(f *fifo) {
		f.head++
		if f.head > 1024 && f.head*2 > len(f.buf) {
			f.buf = append(f.buf[:0], f.buf[f.head:]...)
			f.head = 0
		}
	}

	var (
		now int64

		fetchIdx          int
		fetchBlockedUntil int64
		redirectBranch    = noIdx

		fetchBuf fifo
		renameQ  fifo

		rob     fifo
		iq      []int32
		lsqUsed int

		committed int64
		instrs    int64

		decodeBlockedUntil int64
	)
	rec[0].Eligible = 0
	base := dyns[0].Seq

	prodsDone := func(d *trace.Dyn) bool {
		for k := uint8(0); k < d.NProd; k++ {
			p := d.Prod[k] - base
			if p < 0 {
				continue
			}
			pd := rec[p].Done
			if pd < 0 || pd > now {
				return false
			}
		}
		return true
	}

	for committed < int64(n) {
		// ---- Commit ----
		for w := 0; w < s.cfg.CommitWidth && size(&rob) > 0; w++ {
			idx := front(&rob)
			d := &dyns[idx]
			r := &rec[idx]
			if r.Done < 0 || r.Done > now {
				break
			}
			r.Committed = now
			pop(&rob)
			committed++
			if !d.Overhead {
				instrs++
			}
			if d.IsLoad || d.IsStore {
				lsqUsed--
			}
			if fanouts != nil {
				s.trainCritical(d, fanouts[idx], now)
			}
		}

		// ---- Redirect resolution ----
		if redirectBranch != noIdx {
			if dn := rec[redirectBranch].Done; dn >= 0 {
				until := dn + s.cfg.MispredictPenalty
				if until > fetchBlockedUntil {
					fetchBlockedUntil = until
				}
				redirectBranch = noIdx
			}
		}

		// ---- Issue / execute ----
		intALU, mulDiv, fpu, mem := s.cfg.IntALUs, s.cfg.MulDivUs, s.cfg.FPUs, s.cfg.MemPorts
		budget := s.cfg.IssueWidth
		// Two passes under BackendPrio: critical-predicted first.
		passes := 1
		if s.cfg.BackendPrio {
			passes = 2
		}
		for pass := 0; pass < passes && budget > 0; pass++ {
			for qi := 0; qi < len(iq) && budget > 0; qi++ {
				idx := iq[qi]
				if idx == noIdx {
					continue
				}
				d := &dyns[idx]
				if s.cfg.BackendPrio {
					crit := s.predCritical(d.Addr)
					if pass == 0 && !crit {
						continue
					}
					if pass == 1 && crit {
						continue
					}
				}
				r := &rec[idx]
				if r.Dispatched >= now {
					continue
				}
				if !prodsDone(d) {
					continue
				}
				var pool *int
				switch d.Class {
				case isa.ClassMul, isa.ClassDiv:
					pool = &mulDiv
				case isa.ClassFPAdd, isa.ClassFPMul, isa.ClassFPDiv:
					pool = &fpu
				case isa.ClassLoad, isa.ClassStore:
					pool = &mem
				default:
					pool = &intALU
				}
				if *pool == 0 {
					continue
				}
				*pool--
				budget--
				r.Issued = now
				switch {
				case d.IsLoad:
					start := now + int64(d.Latency) // AGU + access initiation
					r.Done = s.hier.Data(d.Addr, d.MemAddr, s.clock+start) - s.clock
				case d.IsStore:
					r.Done = now + 1
					s.hier.Data(d.Addr, d.MemAddr, s.clock+now+1) // line install; store buffered
				default:
					r.Done = now + int64(d.Latency)
				}
				iq[qi] = noIdx
			}
		}
		// Compact the issue queue occasionally.
		if len(iq) > 0 {
			out := iq[:0]
			for _, v := range iq {
				if v != noIdx {
					out = append(out, v)
				}
			}
			iq = out
		}

		// ---- Rename / dispatch ----
		for w := 0; w < s.cfg.RenameWidth && size(&renameQ) > 0; w++ {
			idx := front(&renameQ)
			d := &dyns[idx]
			if rec[idx].DecodeDone >= now {
				break
			}
			if size(&rob) >= s.cfg.ROBSize || len(iq) >= s.cfg.IQSize {
				break
			}
			if (d.IsLoad || d.IsStore) && lsqUsed >= s.cfg.LSQSize {
				break
			}
			pop(&renameQ)
			rec[idx].Dispatched = now
			push(&rob, idx)
			iq = append(iq, idx)
			if d.IsLoad || d.IsStore {
				lsqUsed++
			}
		}

		// ---- Decode ----
		// The rename queue is a small latch between decode and rename;
		// when rename stalls (ROB/IQ full) it fills and decode stops,
		// pushing the back-pressure into the fetch buffer where it is
		// attributed as F.StallForR+D.
		renameQCap := 2 * s.cfg.RenameWidth
		if now >= decodeBlockedUntil {
			slots := s.cfg.DecodeWidth
			for slots > 0 && size(&fetchBuf) > 0 && size(&renameQ) < renameQCap {
				idx := front(&fetchBuf)
				d := &dyns[idx]
				if rec[idx].Fetched >= now {
					break
				}
				pop(&fetchBuf)
				slots--
				rec[idx].DecodeDone = now
				if d.IsCDP {
					// The mode switch is consumed by the decoder; it
					// never enters the ROB. Charge the conservative
					// 1-cycle decoder bubble.
					rec[idx].Dispatched = now
					rec[idx].Issued = now
					rec[idx].Done = now
					rec[idx].Committed = now
					committed++
					if s.cfg.CDPExtraDecodeCycle {
						// The mode switch flushes the rest of this
						// decode group (a sub-cycle bubble); decoding
						// resumes next cycle in the new mode.
						break
					}
					continue
				}
				push(&renameQ, idx)
			}
		}

		// ---- Fetch ----
		if redirectBranch == noIdx && now >= fetchBlockedUntil {
			bytes := s.cfg.FetchBytes
			slots := s.cfg.FetchWidth
			var curLine int64 = -1
			for slots > 0 && fetchIdx < n && size(&fetchBuf) < s.cfg.FetchBufSize {
				d := &dyns[fetchIdx]
				if int(d.Size) > bytes {
					break
				}
				line := int64(d.Addr &^ (cache.LineBytes - 1))
				if line != curLine {
					ready := s.hier.Instr(uint32(line), s.clock+now) - s.clock
					if ready > now+s.hier.L1I.HitLat() {
						// Miss (or in-flight fill): fetch stalls.
						fetchBlockedUntil = ready
						break
					}
					curLine = line
				}
				idx := int32(fetchIdx)
				rec[fetchIdx].Fetched = now
				push(&fetchBuf, idx)
				bytes -= int(d.Size)
				slots--

				// Optimization hooks at fetch.
				if s.cfg.CriticalLoadPrefetch && d.IsLoad && s.predCritical(d.Addr) {
					s.hier.PrefetchData(d.MemAddr, s.clock+now)
				}
				if s.hier.EFetch != nil && d.Op == isa.OpBL {
					if target := s.hier.EFetch.Predict(d.Addr); target != 0 {
						for l := 0; l < s.hier.EFetch.Depth(); l++ {
							s.hier.PrefetchInstr(target+uint32(l*cache.LineBytes), s.clock+now)
						}
					}
					s.hier.EFetch.Train(d.Addr, d.Target)
				}

				redirected := false
				switch {
				case d.IsCond:
					res.CondBr++
					if !s.bpu.PredictAndUpdate(d.Addr, d.Taken) {
						res.Mispredicts++
						redirectBranch = fetchIdx
						redirected = true
						rec[fetchIdx].Redirected = true
					}
				case d.Op == isa.OpBL:
					// Calls push the return address; BTB predicts the
					// target (direct calls never mispredict).
					s.bpu.Call(d.Addr + uint32(d.Size))
				case d.Op == isa.OpBX && d.Taken:
					// Returns predict through the RAS; a depth overflow
					// or corruption redirects like a branch mispredict.
					if !s.bpu.Return(d.Target) {
						res.Mispredicts++
						redirectBranch = fetchIdx
						redirected = true
						rec[fetchIdx].Redirected = true
					}
				}
				endGroup := d.IsBranch && d.Taken

				fetchIdx++
				if fetchIdx < n && rec[fetchIdx].Eligible < 0 {
					rec[fetchIdx].Eligible = now
				}
				if redirected || endGroup {
					break
				}
			}
			// An instruction stalled on bandwidth/buffer becomes eligible
			// now if it was not already.
			if fetchIdx < n && rec[fetchIdx].Eligible < 0 {
				rec[fetchIdx].Eligible = now
			}
			if s.cfg.Metrics != nil {
				s.cfg.Metrics.FetchBytesUsed.Observe(float64(s.cfg.FetchBytes - bytes))
			}
		}

		now++
	}

	s.clock += now
	res.Cycles = now
	res.AllDyns = int64(n)
	res.Instrs = instrs
	res.ICacheAccesses = s.hier.L1I.Accesses - ia0
	res.ICacheMisses = s.hier.L1I.Misses - im0
	res.DCacheAccesses = s.hier.L1D.Accesses - da0
	res.DCacheMisses = s.hier.L1D.Misses - dm0
	res.L2Accesses = s.hier.L2.Accesses - l20
	res.DRAMAccesses = s.hier.DRAM.Accesses - dr0
	if m := s.cfg.Metrics; m != nil {
		m.flushRun(&res, dyns, rec)
	}
	if s.cfg.CollectRecords {
		res.Records = rec
	}
	return res
}
