// Package cpu is the cycle-level timing model of the baseline platform's
// core (Table I): a 4-wide Fetch/Decode/Rename/ROB/Issue/Execute/Commit
// out-of-order superscalar with a 128-entry ROB, the two-level branch
// predictor (internal/bpu) and the cache/DRAM hierarchy (internal/cache)
// behind it.
//
// The simulator is trace-driven: it consumes the dynamic stream produced by
// internal/trace (control flow and addresses resolved) but models the fetch
// path faithfully — i-cache timing, fetch byte bandwidth, Thumb/CDP decode,
// branch prediction versus actual outcome, and misprediction redirect
// stalls — because the front end is where the paper's action is.
//
// Fetch bandwidth model: the i-cache read port delivers FetchBytes per cycle
// (8 in the baseline, the Cortex-A53-style fetch window), capped at
// FetchWidth instructions. A 32-bit-encoded stream therefore sustains at
// most 2 instructions/cycle into the fetch buffer while 16-bit Thumb code
// sustains 4 — the mechanical root of the paper's "nearly doubles the fetch
// bandwidth" claim.
//
// Per-instruction stall attribution matches the paper's taxonomy (§II-D):
// F.StallForI is the time from when an instruction becomes the next to fetch
// until its bytes enter the fetch buffer (i-cache misses, redirects, byte
// bandwidth); F.StallForR+D is the time it then waits in the fetch buffer
// for the decode stage to drain it (back-pressure).
package cpu

import (
	"sync"

	"critics/internal/bpu"
	"critics/internal/cache"
	"critics/internal/isa"
	"critics/internal/trace"
)

// Config describes the core and its optimization hooks.
type Config struct {
	FetchWidth   int // instructions fetched per cycle (cap)
	FetchBytes   int // bytes fetched per cycle (port width)
	DecodeWidth  int
	RenameWidth  int
	IssueWidth   int
	CommitWidth  int
	ROBSize      int
	IQSize       int
	LSQSize      int
	FetchBufSize int

	IntALUs  int
	MulDivUs int
	FPUs     int
	MemPorts int

	MispredictPenalty int64

	// CDPExtraDecodeCycle charges the 1-cycle decoder bubble the paper
	// conservatively assumes for the CDP mode switch (§IV-B).
	CDPExtraDecodeCycle bool

	BPU  bpu.Config
	Hier cache.HierConfig

	// Optimization hooks (the paper's baselines and comparisons).
	CriticalLoadPrefetch bool // [18]: prefetch loads predicted critical
	BackendPrio          bool // [32]/[33]: issue critical instructions first
	CritFanoutThreshold  int32

	// CollectRecords keeps per-instruction stage timestamps (needed for
	// the Fig. 3 breakdowns; costs memory on big windows).
	CollectRecords bool

	// Metrics, when non-nil, receives per-window aggregates (stall
	// attribution, cache/BPU event counts, fetch-bandwidth utilization)
	// at the end of every Run. Nil disables all instrumentation; the hot
	// loop pays only nil checks (see BenchmarkSimTelemetryOff/On).
	Metrics *Metrics
}

// DefaultConfig returns the Table I baseline.
func DefaultConfig() Config {
	return Config{
		FetchWidth:          4,
		FetchBytes:          8,
		DecodeWidth:         4,
		RenameWidth:         4,
		IssueWidth:          4,
		CommitWidth:         4,
		ROBSize:             128,
		IQSize:              48,
		LSQSize:             32,
		FetchBufSize:        24,
		IntALUs:             3,
		MulDivUs:            1,
		FPUs:                2,
		MemPorts:            2,
		MispredictPenalty:   10,
		CDPExtraDecodeCycle: true,
		BPU:                 bpu.DefaultConfig(),
		Hier:                cache.DefaultHierConfig(),
		CritFanoutThreshold: 8,
	}
}

// Record holds per-instruction stage timestamps (cycles). -1 = not reached.
type Record struct {
	Eligible   int64 // became next-to-fetch
	Fetched    int64 // entered the fetch buffer
	DecodeDone int64 // left the fetch buffer through decode
	Dispatched int64 // renamed into ROB+IQ
	Issued     int64 // selected for execution
	Done       int64 // result available
	Committed  int64

	// Redirected marks a mispredicted branch/return that forced a
	// front-end redirect (trace exports render these as markers).
	Redirected bool
}

// Breakdown is a per-stage cycle attribution (Fig. 3a/3b).
type Breakdown struct {
	FetchI  int64 // F.StallForI
	FetchRD int64 // F.StallForR+D
	Decode  int64 // decode-to-rename wait
	Rename  int64 // dispatch-to-issue-eligibility (ROB/IQ residency before issue)
	Execute int64
	Commit  int64 // completion-to-commit (ROB drain)
}

// Total returns the summed cycles.
func (b Breakdown) Total() int64 {
	return b.FetchI + b.FetchRD + b.Decode + b.Rename + b.Execute + b.Commit
}

// Add accumulates o into b.
func (b *Breakdown) Add(o Breakdown) {
	b.FetchI += o.FetchI
	b.FetchRD += o.FetchRD
	b.Decode += o.Decode
	b.Rename += o.Rename
	b.Execute += o.Execute
	b.Commit += o.Commit
}

// BreakdownOf converts a record into per-stage dwell times.
func BreakdownOf(r *Record) Breakdown {
	clamp := func(v int64) int64 {
		if v < 0 {
			return 0
		}
		return v
	}
	var b Breakdown
	b.FetchI = clamp(r.Fetched - r.Eligible)
	b.FetchRD = clamp(r.DecodeDone - r.Fetched - 1)
	b.Decode = clamp(r.Dispatched - r.DecodeDone - 1)
	b.Rename = clamp(r.Issued - r.Dispatched - 1)
	b.Execute = clamp(r.Done - r.Issued)
	b.Commit = clamp(r.Committed - r.Done)
	return b
}

// Result is the outcome of simulating one window.
type Result struct {
	Cycles  int64
	Instrs  int64 // architectural instructions (CDPs excluded)
	AllDyns int64 // including CDP mode switches

	Mispredicts int64
	CondBr      int64

	// Per-run memory-system event counts (deltas over this Run call; the
	// hierarchy's own counters are cumulative across runs). The energy
	// model consumes these.
	ICacheAccesses int64
	ICacheMisses   int64
	DCacheAccesses int64
	DCacheMisses   int64
	L2Accesses     int64
	DRAMAccesses   int64

	// Hierarchy/BPU handles for stats and the energy model. In-memory only:
	// excluded from the JSON wire form (internal/dist ships Results between
	// machines; no consumer of a remote result reads these).
	Hier *cache.Hierarchy `json:"-"`
	BPU  *bpu.Predictor   `json:"-"`

	// Records is non-nil when Config.CollectRecords is set; aligned with
	// the input dyn slice.
	Records []Record
}

// IPC returns architectural instructions per cycle.
func (r *Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Instrs) / float64(r.Cycles)
}

// Sim is the simulator instance. Hierarchy and predictor state persist
// across Run calls, so successive windows see warm caches.
type Sim struct {
	cfg  Config
	hier *cache.Hierarchy
	bpu  *bpu.Predictor

	// Criticality predictor table (PC-indexed), trained at commit from
	// observed fanout — the hardware-table analogue both baseline
	// optimizations rely on (§II-A). For loads it additionally learns the
	// address stride, so the critical-load prefetcher ([18]) can issue
	// the *next* occurrence's line ahead of time. Stored as a flat
	// open-addressed table (crit.go): it is probed per retired instruction.
	critTable critTable

	// clock is the absolute cycle count across Run calls; cache and DRAM
	// timestamps are absolute, so successive windows continue the clock
	// instead of restarting it (otherwise warm lines would look like
	// in-flight fills).
	clock int64

	// onCommit, when set, observes every retired instruction (see OnCommit).
	onCommit func(d *trace.Dyn, fanout int32, r *Record)
}

// OnCommit registers an observer called exactly once per instruction as it
// retires: at ROB commit, or at decode for CDP mode switches (which never
// enter the ROB). fanout is the instruction's stream fanout (0 when the run
// has no fanout data), r its finalized stage record. The observer lets
// callers fold per-instruction aggregates during a streaming run instead of
// retaining O(n) records; d and r are only valid during the call. It is a
// Sim-level hook rather than a Config field because Config is hashed for
// memo keys and serialized for distributed execution — a func does not
// belong there. Pass nil to detach.
func (s *Sim) OnCommit(fn func(d *trace.Dyn, fanout int32, r *Record)) {
	s.onCommit = fn
}

// New creates a simulator.
func New(cfg Config) *Sim {
	return &Sim{
		cfg:  cfg,
		hier: cache.NewHierarchy(cfg.Hier),
		bpu:  bpu.New(cfg.BPU),
	}
}

// predCritical reports whether the PC is predicted critical.
func (s *Sim) predCritical(pc uint32) bool {
	e := s.critTable.lookup(pc)
	return e != nil && e.crit >= 2
}

// trainCritical updates the criticality table with an observed fanout and,
// for loads, the address stride. When the critical-load prefetch hook is on
// and the stride is confident, the next occurrences' lines are prefetched —
// the form of [18]'s criticality-directed prefetching that actually hides
// DRAM latency for strided critical loads.
func (s *Sim) trainCritical(d *trace.Dyn, fanout int32, now int64) {
	e := s.critTable.insert(d.Addr)
	if fanout >= s.cfg.CritFanoutThreshold {
		if e.crit < 3 {
			e.crit++
		}
	} else if e.crit > 0 {
		e.crit--
	}
	if !d.IsLoad {
		return
	}
	stride := int32(d.MemAddr) - int32(e.lastAddr)
	if stride == e.stride && stride != 0 {
		if e.conf < 3 {
			e.conf++
		}
	} else {
		e.stride = stride
		if e.conf > 0 {
			e.conf--
		}
	}
	e.lastAddr = d.MemAddr
	if s.cfg.CriticalLoadPrefetch && e.crit >= 2 && e.conf >= 2 {
		for k := int64(1); k <= 3; k++ {
			s.hier.PrefetchData(uint32(int64(d.MemAddr)+k*int64(e.stride)), s.clock+now)
		}
	}
}

const noIdx = -1

// blankRecord is the initial value of every record slot: no stage reached.
var blankRecord = Record{Eligible: -1, Fetched: -1, DecodeDone: -1, Dispatched: -1, Issued: -1, Done: -1, Committed: -1}

// Stream is a chunked pull iterator over (dynamic instruction, fanout)
// pairs — the streaming input of RunStream. Next returns the next contiguous
// chunk of the stream with fanouts aligned to it, or (nil, nil) at end of
// stream. The fanout slice may be nil throughout (no criticality training,
// matching a nil fanouts argument to Run); when non-nil it must stay non-nil
// and aligned for every chunk. Returned slices are only valid until the next
// call — RunStream copies what it still needs.
//
// dfg.FanoutStream implements Stream over a trace.Source; Run adapts plain
// slices.
type Stream interface {
	Next() ([]trace.Dyn, []int32)
}

// sliceStream adapts materialized (dyns, fanouts) slices to the Stream
// interface, yielding DefaultChunk-sized sub-slices.
type sliceStream struct {
	dyns []trace.Dyn
	fan  []int32
	off  int
}

func (ss *sliceStream) Next() ([]trace.Dyn, []int32) {
	if ss.off >= len(ss.dyns) {
		return nil, nil
	}
	end := ss.off + trace.DefaultChunk
	if end > len(ss.dyns) {
		end = len(ss.dyns)
	}
	d := ss.dyns[ss.off:end]
	var f []int32
	if ss.fan != nil {
		f = ss.fan[ss.off:end]
	}
	ss.off = end
	return d, f
}

// runBuffers is the reusable buffer set one RunStream call draws from: the
// sliding instruction/fanout/record window plus the pipeline queues. Pooled
// so that back-to-back measurements (and concurrent shard workers, each
// popping its own set) run the no-records path without per-run allocations.
type runBuffers struct {
	dyn []trace.Dyn
	fan []int32
	rec []Record

	fetchQ  []int32
	renameQ []int32
	robQ    []int32
	iq      []iqEnt
}

// iqEnt is one issue-queue slot: the instruction's absolute stream index plus
// a memoized wake-up cycle. wake > now means the entry's producers are all
// scheduled and the latest finishes at wake, so the scan skips it without
// re-walking the producers; wake <= now means the entry must be (re)checked.
// The memo is exact — producer Done times are assigned once, at issue — so
// skipping is invisible to results.
type iqEnt struct {
	idx  int32
	wake int64
}

var runBufs = sync.Pool{New: func() any { return &runBuffers{} }}

// Run simulates one materialized dynamic window. fanouts may be nil; when
// provided (aligned with dyns, from dfg.Fanouts) it trains the criticality
// table and drives the BackendPrio/CriticalLoadPrefetch hooks.
//
// Run is a thin adapter: the window is fed through RunStream chunk by chunk,
// so the slice and streaming paths share one simulation loop and cannot
// drift apart.
func (s *Sim) Run(dyns []trace.Dyn, fanouts []int32) Result {
	return s.RunStream(&sliceStream{dyns: dyns, fan: fanouts})
}

// RunStream simulates one dynamic window pulled from st chunk by chunk.
//
// Memory is O(chunk + pipeline depth), independent of window length: the
// simulator keeps a sliding window of instructions, fanouts and stage
// records covering only what the pipeline can still touch, and compacts the
// committed prefix away as new chunks are admitted. An instruction that has
// slid out of the window can only be referenced again as a producer, and an
// evicted producer has committed — its result is architecturally available —
// so dependence checks treat it as done. Admission happens when fetch
// catches up with the admitted stream, never stalling the modeled front end,
// which keeps cycle-level behavior bit-identical to simulating the
// materialized window. When CollectRecords is set, finalized records are
// additionally copied out to the O(n) Result.Records slice as instructions
// retire.
func (s *Sim) RunStream(st Stream) Result {
	res := Result{Hier: s.hier, BPU: s.bpu}
	collect := s.cfg.CollectRecords
	ia0, im0 := s.hier.L1I.Accesses, s.hier.L1I.Misses
	da0, dm0 := s.hier.L1D.Accesses, s.hier.L1D.Misses
	l20, dr0 := s.hier.L2.Accesses, s.hier.DRAM.Accesses

	bufs := runBufs.Get().(*runBuffers)

	type fifo struct {
		buf  []int32
		head int
	}
	push := func(f *fifo, v int32) { f.buf = append(f.buf, v) }
	size := func(f *fifo) int { return len(f.buf) - f.head }
	front := func(f *fifo) int32 { return f.buf[f.head] }
	pop := func(f *fifo) {
		f.head++
		if f.head > 1024 && f.head*2 > len(f.buf) {
			f.buf = append(f.buf[:0], f.buf[f.head:]...)
			f.head = 0
		}
	}

	var (
		now int64

		fetchIdx          int
		fetchBlockedUntil int64
		redirectBranch    = noIdx

		fetchBuf = fifo{buf: bufs.fetchQ[:0]}
		renameQ  = fifo{buf: bufs.renameQ[:0]}

		rob     = fifo{buf: bufs.robQ[:0]}
		iq      = bufs.iq[:0]
		lsqUsed int

		committed int64
		instrs    int64

		decodeBlockedUntil int64
	)

	// Sliding window: dyn/fan/rec cover absolute indices [winBase, hi).
	// hi counts every instruction admitted from the stream so far.
	var (
		dyn     = bufs.dyn[:0]
		fan     = bufs.fan[:0]
		rec     = bufs.rec[:0]
		winBase int
		hi      int

		exhausted bool
		hasFan    bool
		seqBase   int64
		recOut    []Record // CollectRecords output, indexed absolutely
	)
	defer func() {
		bufs.dyn, bufs.fan, bufs.rec = dyn[:0], fan[:0], rec[:0]
		bufs.fetchQ, bufs.renameQ, bufs.robQ = fetchBuf.buf[:0], renameQ.buf[:0], rob.buf[:0]
		bufs.iq = iq[:0]
		runBufs.Put(bufs)
	}()

	dynAt := func(i int) *trace.Dyn { return &dyn[i-winBase] }
	recAt := func(i int) *Record { return &rec[i-winBase] }

	// oldestInFlight is the lowest absolute index the pipeline can still
	// touch through a queue: queues hold disjoint index ranges with rob the
	// oldest, and anything below all three has committed (CDP mode switches
	// commit at decode, straight out of the fetch buffer).
	oldestInFlight := func() int {
		switch {
		case size(&rob) > 0:
			return int(front(&rob))
		case size(&renameQ) > 0:
			return int(front(&renameQ))
		case size(&fetchBuf) > 0:
			return int(front(&fetchBuf))
		}
		return fetchIdx
	}

	// admit pulls the next chunk into the sliding window, compacting the
	// committed prefix away first when it dominates the window. Returns
	// false once the stream is exhausted.
	admit := func() bool {
		if exhausted {
			return false
		}
		c, f := st.Next()
		if len(c) == 0 {
			exhausted = true
			return false
		}
		if hi == 0 {
			hasFan = f != nil
			seqBase = c[0].Seq
		}
		if k := oldestInFlight() - winBase; k > 0 && k*2 >= len(dyn) {
			dyn = append(dyn[:0], dyn[k:]...)
			rec = append(rec[:0], rec[k:]...)
			if hasFan {
				fan = append(fan[:0], fan[k:]...)
			}
			winBase += k
		}
		dyn = append(dyn, c...)
		if hasFan {
			fan = append(fan, f...)
		}
		for range c {
			rec = append(rec, blankRecord)
		}
		if collect {
			recOut = append(recOut, make([]Record, len(c))...)
		}
		hi += len(c)
		return true
	}

	if !admit() {
		return res // empty stream, matching Run on an empty window
	}
	rec[0].Eligible = 0

	// Per-run metric aggregates, accumulated as instructions retire so the
	// registry flush at the end does not need the full record slice.
	metrics := s.cfg.Metrics
	var runBkd Breakdown
	var cdpCount int64
	// retire finalizes one instruction (ROB commit, or decode for CDP mode
	// switches): metric accumulation, the OnCommit observer, and the
	// collect-mode copy-out.
	retire := func(idx int, d *trace.Dyn, r *Record) {
		if metrics != nil {
			runBkd.Add(BreakdownOf(r))
			if d.IsCDP {
				cdpCount++
			}
		}
		if s.onCommit != nil {
			var fv int32
			if hasFan {
				fv = fan[idx-winBase]
			}
			s.onCommit(d, fv, r)
		}
		if collect {
			recOut[idx] = *r
		}
	}

	// prodsReady reports whether every producer of d has its result available
	// at now. When not ready it also returns the wake-up cycle the issue scan
	// may skip to: the latest producer completion when all producers are
	// scheduled (exact — Done times are assigned once, at issue), or now+1
	// when some producer has not issued yet (re-check next cycle, which is
	// when its readiness could earliest change).
	prodsReady := func(d *trace.Dyn) (bool, int64) {
		var wake int64
		for k := uint8(0); k < d.NProd; k++ {
			p := int(d.Prod[k] - seqBase)
			if p < winBase {
				// Before the stream, or slid out of the window => committed;
				// result long available.
				continue
			}
			pd := rec[p-winBase].Done
			if pd < 0 {
				return false, now + 1
			}
			if pd > wake {
				wake = pd
			}
		}
		return wake <= now, wake
	}

	for !exhausted || committed < int64(hi) {
		// ---- Commit ----
		for w := 0; w < s.cfg.CommitWidth && size(&rob) > 0; w++ {
			idx := int(front(&rob))
			d := dynAt(idx)
			r := recAt(idx)
			if r.Done < 0 || r.Done > now {
				break
			}
			r.Committed = now
			pop(&rob)
			committed++
			if !d.Overhead {
				instrs++
			}
			if d.IsLoad || d.IsStore {
				lsqUsed--
			}
			if hasFan {
				s.trainCritical(d, fan[idx-winBase], now)
			}
			retire(idx, d, r)
		}

		// ---- Redirect resolution ----
		if redirectBranch != noIdx {
			if dn := recAt(redirectBranch).Done; dn >= 0 {
				until := dn + s.cfg.MispredictPenalty
				if until > fetchBlockedUntil {
					fetchBlockedUntil = until
				}
				redirectBranch = noIdx
			}
		}

		// ---- Issue / execute ----
		intALU, mulDiv, fpu, mem := s.cfg.IntALUs, s.cfg.MulDivUs, s.cfg.FPUs, s.cfg.MemPorts
		budget := s.cfg.IssueWidth
		// Two passes under BackendPrio: critical-predicted first.
		passes := 1
		if s.cfg.BackendPrio {
			passes = 2
		}
		for pass := 0; pass < passes && budget > 0; pass++ {
			for qi := 0; qi < len(iq) && budget > 0; qi++ {
				e := &iq[qi]
				idx := e.idx
				if idx == noIdx {
					continue
				}
				if e.wake > now {
					continue // producers known not done before wake
				}
				d := dynAt(int(idx))
				if s.cfg.BackendPrio {
					crit := s.predCritical(d.Addr)
					if pass == 0 && !crit {
						continue
					}
					if pass == 1 && crit {
						continue
					}
				}
				r := recAt(int(idx))
				if r.Dispatched >= now {
					continue
				}
				if ready, wake := prodsReady(d); !ready {
					e.wake = wake
					continue
				}
				var pool *int
				switch d.Class {
				case isa.ClassMul, isa.ClassDiv:
					pool = &mulDiv
				case isa.ClassFPAdd, isa.ClassFPMul, isa.ClassFPDiv:
					pool = &fpu
				case isa.ClassLoad, isa.ClassStore:
					pool = &mem
				default:
					pool = &intALU
				}
				if *pool == 0 {
					continue
				}
				*pool--
				budget--
				r.Issued = now
				switch {
				case d.IsLoad:
					start := now + int64(d.Latency) // AGU + access initiation
					r.Done = s.hier.Data(d.Addr, d.MemAddr, s.clock+start) - s.clock
				case d.IsStore:
					r.Done = now + 1
					s.hier.Data(d.Addr, d.MemAddr, s.clock+now+1) // line install; store buffered
				default:
					r.Done = now + int64(d.Latency)
				}
				e.idx = noIdx
			}
		}
		// Compact the issue queue occasionally.
		if len(iq) > 0 {
			out := iq[:0]
			for _, v := range iq {
				if v.idx != noIdx {
					out = append(out, v)
				}
			}
			iq = out
		}

		// ---- Rename / dispatch ----
		for w := 0; w < s.cfg.RenameWidth && size(&renameQ) > 0; w++ {
			idx := front(&renameQ)
			d := dynAt(int(idx))
			if recAt(int(idx)).DecodeDone >= now {
				break
			}
			if size(&rob) >= s.cfg.ROBSize || len(iq) >= s.cfg.IQSize {
				break
			}
			if (d.IsLoad || d.IsStore) && lsqUsed >= s.cfg.LSQSize {
				break
			}
			pop(&renameQ)
			recAt(int(idx)).Dispatched = now
			push(&rob, idx)
			iq = append(iq, iqEnt{idx: idx})
			if d.IsLoad || d.IsStore {
				lsqUsed++
			}
		}

		// ---- Decode ----
		// The rename queue is a small latch between decode and rename;
		// when rename stalls (ROB/IQ full) it fills and decode stops,
		// pushing the back-pressure into the fetch buffer where it is
		// attributed as F.StallForR+D.
		renameQCap := 2 * s.cfg.RenameWidth
		if now >= decodeBlockedUntil {
			slots := s.cfg.DecodeWidth
			for slots > 0 && size(&fetchBuf) > 0 && size(&renameQ) < renameQCap {
				idx := int(front(&fetchBuf))
				d := dynAt(idx)
				r := recAt(idx)
				if r.Fetched >= now {
					break
				}
				pop(&fetchBuf)
				slots--
				r.DecodeDone = now
				if d.IsCDP {
					// The mode switch is consumed by the decoder; it
					// never enters the ROB. Charge the conservative
					// 1-cycle decoder bubble.
					r.Dispatched = now
					r.Issued = now
					r.Done = now
					r.Committed = now
					committed++
					retire(idx, d, r)
					if s.cfg.CDPExtraDecodeCycle {
						// The mode switch flushes the rest of this
						// decode group (a sub-cycle bubble); decoding
						// resumes next cycle in the new mode.
						break
					}
					continue
				}
				push(&renameQ, int32(idx))
			}
		}

		// ---- Fetch ----
		if redirectBranch == noIdx && now >= fetchBlockedUntil {
			bytes := s.cfg.FetchBytes
			slots := s.cfg.FetchWidth
			var curLine int64 = -1
			// markEligible stamps the next-to-fetch instruction, admitting
			// its chunk if the window has not reached it yet (admission is
			// a data pull only; it cannot affect timing).
			markEligible := func() {
				if fetchIdx == hi && !admit() {
					return
				}
				if r := recAt(fetchIdx); r.Eligible < 0 {
					r.Eligible = now
				}
			}
			for slots > 0 && size(&fetchBuf) < s.cfg.FetchBufSize {
				if fetchIdx == hi && !admit() {
					break
				}
				d := dynAt(fetchIdx)
				if int(d.Size) > bytes {
					break
				}
				line := int64(d.Addr &^ (cache.LineBytes - 1))
				if line != curLine {
					ready := s.hier.Instr(uint32(line), s.clock+now) - s.clock
					if ready > now+s.hier.L1I.HitLat() {
						// Miss (or in-flight fill): fetch stalls.
						fetchBlockedUntil = ready
						break
					}
					curLine = line
				}
				recAt(fetchIdx).Fetched = now
				push(&fetchBuf, int32(fetchIdx))
				bytes -= int(d.Size)
				slots--

				// Optimization hooks at fetch.
				if s.cfg.CriticalLoadPrefetch && d.IsLoad && s.predCritical(d.Addr) {
					s.hier.PrefetchData(d.MemAddr, s.clock+now)
				}
				if s.hier.EFetch != nil && d.Op == isa.OpBL {
					if target := s.hier.EFetch.Predict(d.Addr); target != 0 {
						for l := 0; l < s.hier.EFetch.Depth(); l++ {
							s.hier.PrefetchInstr(target+uint32(l*cache.LineBytes), s.clock+now)
						}
					}
					s.hier.EFetch.Train(d.Addr, d.Target)
				}

				redirected := false
				switch {
				case d.IsCond:
					res.CondBr++
					if !s.bpu.PredictAndUpdate(d.Addr, d.Taken) {
						res.Mispredicts++
						redirectBranch = fetchIdx
						redirected = true
						recAt(fetchIdx).Redirected = true
					}
				case d.Op == isa.OpBL:
					// Calls push the return address; BTB predicts the
					// target (direct calls never mispredict).
					s.bpu.Call(d.Addr + uint32(d.Size))
				case d.Op == isa.OpBX && d.Taken:
					// Returns predict through the RAS; a depth overflow
					// or corruption redirects like a branch mispredict.
					if !s.bpu.Return(d.Target) {
						res.Mispredicts++
						redirectBranch = fetchIdx
						redirected = true
						recAt(fetchIdx).Redirected = true
					}
				}
				endGroup := d.IsBranch && d.Taken

				fetchIdx++
				markEligible()
				if redirected || endGroup {
					break
				}
			}
			// An instruction stalled on bandwidth/buffer becomes eligible
			// now if it was not already.
			markEligible()
			if s.cfg.Metrics != nil {
				s.cfg.Metrics.FetchBytesUsed.Observe(float64(s.cfg.FetchBytes - bytes))
			}
		}

		now++
	}

	s.clock += now
	res.Cycles = now
	res.AllDyns = int64(hi)
	res.Instrs = instrs
	res.ICacheAccesses = s.hier.L1I.Accesses - ia0
	res.ICacheMisses = s.hier.L1I.Misses - im0
	res.DCacheAccesses = s.hier.L1D.Accesses - da0
	res.DCacheMisses = s.hier.L1D.Misses - dm0
	res.L2Accesses = s.hier.L2.Accesses - l20
	res.DRAMAccesses = s.hier.DRAM.Accesses - dr0
	if metrics != nil {
		metrics.flushRun(&res, runBkd, cdpCount)
	}
	if collect {
		res.Records = recOut
	}
	return res
}
