package cpu

import (
	"fmt"
	"sort"

	"critics/internal/telemetry"
	"critics/internal/trace"
)

// Chrome-trace track ids of one exported pipeline window, in Breakdown
// field order plus a marker track. Track 1..6 carry per-instruction dwell
// spans whose durations are exactly the BreakdownOf components, so summing a
// track's spans reproduces the corresponding Breakdown aggregate (the
// contract TestExportWindowMatchesBreakdown enforces).
const (
	tidStallI  = 1 + iota // F.StallForI (§II-D)
	tidStallRD            // F.StallForR+D (§II-D)
	tidDecode
	tidRename
	tidExecute
	tidCommit
	tidMarkers // CDP mode switches, mispredict redirects
)

// trackNames labels the per-stage tracks in the trace UI.
var trackNames = [...]string{
	tidStallI:  "F.StallForI",
	tidStallRD: "F.StallForR+D",
	tidDecode:  "Decode wait",
	tidRename:  "Rename/ROB wait",
	tidExecute: "Execute",
	tidCommit:  "Commit wait",
	tidMarkers: "markers",
}

// ExportWindow emits one simulated window as a cycle-domain timeline under
// its own Chrome-trace process: one track per Breakdown stage carrying each
// instruction's dwell span (zero-length dwells are elided — they contribute
// nothing to the stage totals), a marker track with CDP mode switches and
// branch-mispredict redirects, and occupancy counter tracks for the fetch
// buffer and the ROB. recs must come from a Run with CollectRecords set and
// be aligned with dyns. Timestamps are cycles rendered as trace µs.
func ExportWindow(tr *telemetry.Tracer, pid int, label string, dyns []trace.Dyn, recs []Record) {
	tr.MetaProcessName(pid, label)
	for tid := tidStallI; tid <= tidMarkers; tid++ {
		tr.MetaThreadName(pid, tid, trackNames[tid])
	}

	fbDelta := map[int64]int64{}  // fetch-buffer occupancy deltas
	robDelta := map[int64]int64{} // ROB occupancy deltas
	for i := range recs {
		r := &recs[i]
		d := &dyns[i]
		b := BreakdownOf(r)
		name := d.Op.String()
		pc := telemetry.Str("pc", fmt.Sprintf("%#x", d.Addr))
		seq := telemetry.Int("seq", d.Seq)
		span := func(tid int, ts, dur int64) {
			if dur > 0 && ts >= 0 {
				tr.Complete(pid, tid, name, "stage", ts, dur, pc, seq)
			}
		}
		span(tidStallI, r.Eligible, b.FetchI)
		span(tidStallRD, r.Fetched, b.FetchRD)
		span(tidDecode, r.DecodeDone, b.Decode)
		span(tidRename, r.Dispatched, b.Rename)
		span(tidExecute, r.Issued, b.Execute)
		span(tidCommit, r.Done, b.Commit)

		if d.IsCDP && r.DecodeDone >= 0 {
			tr.Instant(pid, tidMarkers, "CDP mode switch", "marker", r.DecodeDone, pc)
		}
		if r.Redirected {
			tr.Instant(pid, tidMarkers, "mispredict redirect", "marker", r.Fetched, pc)
		}
		if r.Fetched >= 0 && r.DecodeDone >= r.Fetched {
			fbDelta[r.Fetched]++
			fbDelta[r.DecodeDone]--
		}
		if r.Dispatched >= 0 && r.Committed >= r.Dispatched {
			robDelta[r.Dispatched]++
			robDelta[r.Committed]--
		}
	}
	emitOccupancy(tr, pid, "fetch buffer occupancy", fbDelta)
	emitOccupancy(tr, pid, "ROB occupancy", robDelta)
}

// emitOccupancy turns an event-time delta map into cumulative counter
// samples at each change point.
func emitOccupancy(tr *telemetry.Tracer, pid int, name string, deltas map[int64]int64) {
	ts := make([]int64, 0, len(deltas))
	for t := range deltas {
		ts = append(ts, t)
	}
	sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
	var cum int64
	for _, t := range ts {
		cum += deltas[t]
		tr.Counter(pid, name, t, telemetry.Int("n", cum))
	}
}
