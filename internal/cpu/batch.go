package cpu

import (
	"sync"

	"critics/internal/trace"
)

// BatchSim runs N independently-configured simulator lanes in lockstep over
// one shared instruction stream — the batched core design-space sweeps use
// when several machine/compiler variants measure the same generated trace.
// The expensive shared front of the pipeline (trace generation, online
// fanout extraction, chunk admission) is paid once per batch instead of once
// per variant; each lane keeps its own architectural state (cache hierarchy,
// branch predictor, criticality table, pipeline queues, stage records) in the
// per-lane simulator, so lane i's Result is bit-identical to what a lone
// Sim with the same Config would produce over the same stream.
//
// Lanes advance in lockstep at chunk granularity: the batch pulls each chunk
// from the source exactly once and every lane consumes it before the next is
// generated, so peak memory is O(lanes × window), independent of stream
// length — the constant-memory property of RunStream, times the lane count.
// On a multi-core host lanes simulate concurrently (the per-lane cycle loops
// are independent); on a single core the batch still saves the duplicated
// generation and fanout work. Either way results are deterministic: each
// lane's outcome depends only on its own configuration and the shared chunk
// sequence, never on scheduling.
//
// A BatchSim is stateful like Sim: hierarchy and predictor state persist
// across RunStream/Run calls, so a warm-up window followed by a measured
// window sees warm lanes, exactly as back-to-back Sim.Run calls would.
type BatchSim struct {
	sims []*Sim

	// bufs are the two broadcast chunk buffers (see RunStream); retained
	// across calls so a warm batch admits chunks without reallocating.
	bufs [2]batchChunk
}

// batchChunk is one broadcast buffer: a chunk of the shared stream with its
// aligned fanouts (fan nil when the stream carries none).
type batchChunk struct {
	dyn []trace.Dyn
	fan []int32
}

// NewBatch creates one simulator lane per configuration. The lane order is
// the configuration order; it is observable only in the order of returned
// results (lane state never crosses lanes).
func NewBatch(cfgs []Config) *BatchSim {
	b := &BatchSim{sims: make([]*Sim, len(cfgs))}
	for i, cfg := range cfgs {
		b.sims[i] = New(cfg)
	}
	return b
}

// Lanes returns the lane count.
func (b *BatchSim) Lanes() int { return len(b.sims) }

// Lane returns lane i's simulator, e.g. to attach a per-lane OnCommit
// observer between a warm-up and a measured RunStream.
func (b *BatchSim) Lane(i int) *Sim { return b.sims[i] }

// laneStream adapts one lane's side of the broadcast to the Stream interface:
// Next blocks until the feeder publishes the next chunk (or end of stream).
// The blocking receive is what suspends a lane mid-cycle at its admit point —
// admission is a data pull only and cannot affect modeled timing, so feeding
// lanes chunk by chunk is invisible to results.
type laneStream struct {
	ch <-chan batchChunk
}

func (ls *laneStream) Next() ([]trace.Dyn, []int32) {
	c, ok := <-ls.ch
	if !ok {
		return nil, nil
	}
	return c.dyn, c.fan
}

// RunStream simulates one window on every lane, pulling the shared stream
// from st exactly once. Results are indexed by lane and each is bit-identical
// to sims[i].RunStream over the same stream.
//
// The broadcast is double-buffered: a chunk is copied out of the source once,
// handed to every lane over an unbuffered channel, and its buffer is reused
// only after every lane has requested the following chunk — which, per the
// Stream contract (RunStream copies what it still needs before calling Next
// again), proves all lanes are done reading it. That keeps the whole batch at
// two chunk buffers regardless of lane count.
func (b *BatchSim) RunStream(st Stream) []Result {
	if len(b.sims) == 1 {
		// Degenerate batch: no broadcast machinery, exactly the serial path.
		return []Result{b.sims[0].RunStream(st)}
	}
	results := make([]Result, len(b.sims))
	chans := make([]chan batchChunk, len(b.sims))
	var wg sync.WaitGroup
	for i := range b.sims {
		ch := make(chan batchChunk)
		chans[i] = ch
		wg.Add(1)
		go func(i int, ch <-chan batchChunk) {
			defer wg.Done()
			results[i] = b.sims[i].RunStream(&laneStream{ch: ch})
		}(i, ch)
	}
	for k := 0; ; k++ {
		c, f := st.Next()
		if len(c) == 0 {
			break
		}
		buf := &b.bufs[k&1]
		buf.dyn = append(buf.dyn[:0], c...)
		if f != nil {
			buf.fan = append(buf.fan[:0], f...)
		} else {
			buf.fan = nil
		}
		for _, ch := range chans {
			ch <- batchChunk{dyn: buf.dyn, fan: buf.fan}
		}
	}
	for _, ch := range chans {
		close(ch)
	}
	wg.Wait()
	return results
}

// Run simulates one materialized window on every lane. The shared slices are
// read-only to the lanes, so no broadcast copies are needed; lanes still run
// concurrently where cores allow.
func (b *BatchSim) Run(dyns []trace.Dyn, fanouts []int32) []Result {
	results := make([]Result, len(b.sims))
	if len(b.sims) == 1 {
		results[0] = b.sims[0].Run(dyns, fanouts)
		return results
	}
	var wg sync.WaitGroup
	for i := range b.sims {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = b.sims[i].Run(dyns, fanouts)
		}(i)
	}
	wg.Wait()
	return results
}
