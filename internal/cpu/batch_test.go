package cpu

import (
	"reflect"
	"testing"

	"critics/internal/dfg"
	"critics/internal/trace"
)

// batchConfigs is a design-space-sweep-shaped lane set: machine knobs spread
// across the fetch, cache, predictor and backend axes the figure sweeps use.
func batchConfigs() []Config {
	wide := DefaultConfig()
	wide.FetchBytes *= 2
	wide.FetchWidth *= 2
	wide.DecodeWidth *= 2

	bigIC := DefaultConfig()
	bigIC.Hier.L1I.SizeBytes *= 4

	perfect := DefaultConfig()
	perfect.BPU.Perfect = true

	prio := DefaultConfig()
	prio.BackendPrio = true

	prefetch := DefaultConfig()
	prefetch.CriticalLoadPrefetch = true

	noBubble := DefaultConfig()
	noBubble.CDPExtraDecodeCycle = false

	smallROB := DefaultConfig()
	smallROB.ROBSize = 48
	smallROB.IQSize = 24

	return []Config{DefaultConfig(), wide, bigIC, perfect, prio, prefetch, noBubble, smallROB}
}

// serialResults runs each config through a lone Sim over its own fanout
// stream — the reference the batched lanes must match bit for bit.
func serialResults(dyns []trace.Dyn, cfgs []Config, chunk int) []Result {
	out := make([]Result, len(cfgs))
	for i, cfg := range cfgs {
		fs := dfg.NewFanoutStream(trace.NewSliceSource(dyns, chunk), 128)
		out[i] = stripHandles(New(cfg).RunStream(fs))
	}
	return out
}

// TestBatchSimMatchesSerial checks, for both collect modes and several chunk
// sizes, that every BatchSim lane produces exactly the Result a lone Sim
// with the same Config produces over the same stream.
func TestBatchSimMatchesSerial(t *testing.T) {
	dyns := appDyns(t, 20_000)
	for _, collect := range []bool{false, true} {
		cfgs := batchConfigs()
		for i := range cfgs {
			cfgs[i].CollectRecords = collect
		}
		for _, chunk := range []int{257, 4096} {
			want := serialResults(dyns, cfgs, chunk)
			b := NewBatch(cfgs)
			fs := dfg.NewFanoutStream(trace.NewSliceSource(dyns, chunk), 128)
			got := b.RunStream(fs)
			for i := range cfgs {
				if !reflect.DeepEqual(stripHandles(got[i]), want[i]) {
					t.Errorf("collect=%v chunk=%d lane=%d: batched Result differs from serial",
						collect, chunk, i)
				}
			}
		}
	}
}

// TestBatchSimRunMatchesSerial covers the materialized entry point: lanes
// share the input slices read-only and must match lone Sims exactly.
func TestBatchSimRunMatchesSerial(t *testing.T) {
	dyns := appDyns(t, 12_000)
	fan := dfg.Fanouts(dyns, 128)
	cfgs := batchConfigs()
	want := make([]Result, len(cfgs))
	for i, cfg := range cfgs {
		want[i] = stripHandles(New(cfg).Run(dyns, fan))
	}
	got := NewBatch(cfgs).Run(dyns, fan)
	for i := range cfgs {
		if !reflect.DeepEqual(stripHandles(got[i]), want[i]) {
			t.Errorf("lane %d: batched Run differs from serial Run", i)
		}
	}
}

// TestBatchSimWarmThenMeasure checks that lane state (caches, predictor,
// criticality table, clock) persists across batch windows exactly as it does
// across Sim.RunStream calls: a warm-up pass followed by a measured pass must
// match the serial two-pass flow lane by lane.
func TestBatchSimWarmThenMeasure(t *testing.T) {
	all := appDyns(t, 24_000)
	warm, meas := all[:8_000], all[8_000:]
	cfgs := batchConfigs()

	want := make([]Result, len(cfgs))
	for i, cfg := range cfgs {
		s := New(cfg)
		s.RunStream(dfg.NewFanoutStream(trace.NewSliceSource(warm, 1024), 128))
		want[i] = stripHandles(s.RunStream(dfg.NewFanoutStream(trace.NewSliceSource(meas, 1024), 128)))
	}

	b := NewBatch(cfgs)
	b.RunStream(dfg.NewFanoutStream(trace.NewSliceSource(warm, 1024), 128))
	got := b.RunStream(dfg.NewFanoutStream(trace.NewSliceSource(meas, 1024), 128))
	for i := range cfgs {
		if !reflect.DeepEqual(stripHandles(got[i]), want[i]) {
			t.Errorf("lane %d: warm+measure batch differs from serial two-pass flow", i)
		}
	}
}

// TestBatchLaneOrderIndependence is the lane-independence property: permuting
// the lane order within a batch never changes any per-variant Result — lane
// state must not leak across lanes.
func TestBatchLaneOrderIndependence(t *testing.T) {
	dyns := appDyns(t, 15_000)
	cfgs := batchConfigs()
	base := NewBatch(cfgs).RunStream(dfg.NewFanoutStream(trace.NewSliceSource(dyns, 4096), 128))

	perm := []int{3, 0, 7, 5, 1, 6, 2, 4}
	pcfgs := make([]Config, len(cfgs))
	for to, from := range perm {
		pcfgs[to] = cfgs[from]
	}
	got := NewBatch(pcfgs).RunStream(dfg.NewFanoutStream(trace.NewSliceSource(dyns, 4096), 128))
	for to, from := range perm {
		if !reflect.DeepEqual(stripHandles(got[to]), stripHandles(base[from])) {
			t.Errorf("lane %d (was %d): Result changed under lane permutation", to, from)
		}
	}
}

// TestBatchSplitIndependence is the other half of the property: splitting one
// batch into two batches (any partition) never changes any per-variant
// Result.
func TestBatchSplitIndependence(t *testing.T) {
	dyns := appDyns(t, 15_000)
	cfgs := batchConfigs()
	base := NewBatch(cfgs).RunStream(dfg.NewFanoutStream(trace.NewSliceSource(dyns, 4096), 128))

	for _, cut := range []int{1, 3, len(cfgs) - 1} {
		a := NewBatch(cfgs[:cut]).RunStream(dfg.NewFanoutStream(trace.NewSliceSource(dyns, 4096), 128))
		b := NewBatch(cfgs[cut:]).RunStream(dfg.NewFanoutStream(trace.NewSliceSource(dyns, 4096), 128))
		split := append(append([]Result{}, a...), b...)
		for i := range cfgs {
			if !reflect.DeepEqual(stripHandles(split[i]), stripHandles(base[i])) {
				t.Errorf("cut=%d lane=%d: Result changed when the batch was split", cut, i)
			}
		}
	}
}

// TestBatchSimEmptyStream: an empty stream yields one empty Result per lane,
// matching serial Sims on empty windows.
func TestBatchSimEmptyStream(t *testing.T) {
	cfgs := batchConfigs()[:3]
	got := NewBatch(cfgs).RunStream(dfg.NewFanoutStream(trace.NewSliceSource(nil, 4096), 128))
	if len(got) != len(cfgs) {
		t.Fatalf("got %d results, want %d", len(got), len(cfgs))
	}
	for i, r := range got {
		if r.Cycles != 0 || r.AllDyns != 0 {
			t.Errorf("lane %d: non-empty result %+v from empty stream", i, r)
		}
	}
}

// TestBatchSimOnCommitPerLane attaches a distinct commit observer per lane
// and checks each sees exactly its own lane's retirements (count == AllDyns).
func TestBatchSimOnCommitPerLane(t *testing.T) {
	dyns := appDyns(t, 10_000)
	cfgs := batchConfigs()[:4]
	b := NewBatch(cfgs)
	counts := make([]int64, len(cfgs))
	for i := 0; i < b.Lanes(); i++ {
		i := i
		b.Lane(i).OnCommit(func(d *trace.Dyn, fan int32, r *Record) { counts[i]++ })
	}
	res := b.RunStream(dfg.NewFanoutStream(trace.NewSliceSource(dyns, 4096), 128))
	for i := range cfgs {
		if counts[i] != res[i].AllDyns {
			t.Errorf("lane %d: observer saw %d retirements, want %d", i, counts[i], res[i].AllDyns)
		}
	}
}
