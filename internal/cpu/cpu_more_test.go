package cpu

import (
	"testing"

	"critics/internal/isa"
	"critics/internal/trace"
)

// callStream builds a loop that calls one of nFuncs functions per iteration,
// each function being a run of bodyLen sequential instructions at its own
// address range — enough code to thrash a small i-cache.
func callStream(n, nFuncs, bodyLen int) []trace.Dyn {
	var dyns []trace.Dyn
	seq := int64(0)
	loopPC := uint32(0)
	i := 0
	for len(dyns) < n {
		fn := i % nFuncs
		i++
		entry := uint32(0x10000 + fn*4096)
		// Call site: one distinct BL site per callee (as in real code).
		site := loopPC + uint32(fn*4)
		dyns = append(dyns, trace.Dyn{
			Seq: seq, Addr: site, Op: isa.OpBL, Class: isa.ClassCall,
			Size: 4, IsBranch: true, Taken: true, Target: entry, Latency: 1,
		})
		seq++
		for k := 0; k < bodyLen; k++ {
			dyns = append(dyns, trace.Dyn{
				Seq: seq, Addr: entry + uint32(k*4), Op: isa.OpADD,
				Class: isa.ClassALU, Size: 4, Latency: 1,
			})
			seq++
		}
		// Return.
		dyns = append(dyns, trace.Dyn{
			Seq: seq, Addr: entry + uint32(bodyLen*4), Op: isa.OpBX,
			Class: isa.ClassRet, Size: 4, IsBranch: true, Taken: true, Target: loopPC + 4, Latency: 1,
		})
		seq++
	}
	return dyns
}

func TestEFetchReducesColdCallMisses(t *testing.T) {
	// Many functions, tiny i-cache: every call begins with misses unless
	// EFetch pre-warms the predicted callee.
	mk := func() []trace.Dyn { return callStream(30_000, 64, 32) }
	base := DefaultConfig()
	base.Hier.L1I.SizeBytes = 8 << 10 // force capacity misses

	ef := base
	ef.Hier.EFetchDepth = 4

	s1 := New(base)
	s1.Run(mk(), nil)
	r1 := s1.Run(mk(), nil)

	s2 := New(ef)
	s2.Run(mk(), nil)
	r2 := s2.Run(mk(), nil)

	if r2.Cycles >= r1.Cycles {
		t.Errorf("EFetch did not help: %d vs %d cycles", r2.Cycles, r1.Cycles)
	}
	if r2.ICacheMisses >= r1.ICacheMisses {
		t.Errorf("EFetch did not cut i-cache misses: %d vs %d", r2.ICacheMisses, r1.ICacheMisses)
	}
}

// stridedLoadStream: one load PC streaming through memory with a dependent
// consumer, plus independent filler. The load re-occurs every `period`
// instructions.
func stridedLoadStream(n int, stride uint32, period int) []trace.Dyn {
	dyns := make([]trace.Dyn, n)
	addr := uint32(0x4000_0000)
	for i := 0; i < n; i++ {
		slot := i % period
		dyns[i] = trace.Dyn{
			Seq: int64(i), Addr: uint32(slot * 4), Op: isa.OpADD,
			Class: isa.ClassALU, Size: 4, Latency: 1,
		}
		if slot == 0 {
			dyns[i].Op = isa.OpLDR
			dyns[i].Class = isa.ClassLoad
			dyns[i].IsLoad = true
			dyns[i].MemAddr = addr
			addr += stride
		}
		if slot == 1 {
			dyns[i].Prod[0] = int64(i - 1)
			dyns[i].NProd = 1
		}
	}
	return dyns
}

func TestCLPTHidesStreamingMisses(t *testing.T) {
	mk := func() []trace.Dyn { return stridedLoadStream(30_000, 256, 16) }
	noPf := DefaultConfig()
	noPf.Hier.CLPTEntries = 0
	withPf := DefaultConfig()

	s1 := New(noPf)
	r1 := s1.Run(mk(), nil)
	s2 := New(withPf)
	r2 := s2.Run(mk(), nil)
	if r2.Cycles >= r1.Cycles {
		t.Errorf("CLPT did not help streaming loads: %d vs %d", r2.Cycles, r1.Cycles)
	}
}

func TestCriticalPrefetchBeatsCLPTAlone(t *testing.T) {
	// The criticality-directed prefetcher additionally pulls lines into
	// the L1, saving the L2 hit on every occurrence.
	fan := func(dyns []trace.Dyn) []int32 {
		f := make([]int32, len(dyns))
		for i := range dyns {
			if dyns[i].IsLoad {
				f[i] = 10 // critical load
			}
		}
		return f
	}
	// Occurrence spacing must exceed the DRAM latency for the 3-ahead
	// commit-time prefetch to fully hide it.
	mk := func() []trace.Dyn { return stridedLoadStream(30_000, 256, 48) }
	clpt := DefaultConfig()
	d1 := mk()
	s1 := New(clpt)
	r1 := s1.Run(d1, fan(d1))

	crit := DefaultConfig()
	crit.CriticalLoadPrefetch = true
	d2 := mk()
	s2 := New(crit)
	r2 := s2.Run(d2, fan(d2))
	if r2.Cycles >= r1.Cycles {
		t.Errorf("critical-load prefetch added nothing over CLPT: %d vs %d", r2.Cycles, r1.Cycles)
	}
}

func TestOverheadDynsNotCountedAsWork(t *testing.T) {
	dyns := seqStream(100)
	dyns[10].Overhead = true
	dyns[20].Overhead = true
	res := New(DefaultConfig()).Run(dyns, nil)
	if res.Instrs != 98 {
		t.Errorf("Instrs = %d, want 98", res.Instrs)
	}
	if res.AllDyns != 100 {
		t.Errorf("AllDyns = %d", res.AllDyns)
	}
}

func TestModeSwitchBranchesDoNotRedirect(t *testing.T) {
	// Non-taken branch dyns (IsBranch without Taken) must not end fetch
	// groups: a stream full of them should run as fast as plain ALUs.
	plain := seqStream(4000)
	switches := seqStream(4000)
	for i := 100; i < 4000; i += 7 {
		switches[i].Op = isa.OpB
		switches[i].Class = isa.ClassBranch
		switches[i].IsBranch = true
		switches[i].Taken = false
	}
	rp := runWarm(t, DefaultConfig(), plain)
	rs := runWarm(t, DefaultConfig(), switches)
	slowdown := float64(rs.Cycles)/float64(rp.Cycles) - 1
	if slowdown > 0.05 {
		t.Errorf("fall-through branches cost %.1f%%; they should be near free", 100*slowdown)
	}
}

func TestLSQBackpressure(t *testing.T) {
	// A stream of loads with tiny LSQ must be slower than with the default.
	n := 4000
	mk := func() []trace.Dyn {
		dyns := seqStream(n)
		for i := range dyns {
			dyns[i].Op = isa.OpLDR
			dyns[i].Class = isa.ClassLoad
			dyns[i].IsLoad = true
			dyns[i].MemAddr = uint32(0x4000_0000 + (i%512)*64)
		}
		return dyns
	}
	small := DefaultConfig()
	small.LSQSize = 2
	rSmall := runWarm(t, small, mk())
	rBig := runWarm(t, DefaultConfig(), mk())
	if rSmall.Cycles <= rBig.Cycles {
		t.Errorf("LSQ=2 (%d cycles) not slower than LSQ=32 (%d)", rSmall.Cycles, rBig.Cycles)
	}
}

func TestROBLimitsMemoryParallelism(t *testing.T) {
	// Independent DRAM-missing loads: a larger ROB should overlap more of
	// them (or at least never be slower).
	n := 3000
	mk := func() []trace.Dyn {
		dyns := seqStream(n)
		for i := 0; i < n; i += 8 {
			dyns[i].Op = isa.OpLDR
			dyns[i].Class = isa.ClassLoad
			dyns[i].IsLoad = true
			dyns[i].MemAddr = uint32(0x4000_0000 + i*4096)
		}
		return dyns
	}
	tiny := DefaultConfig()
	tiny.ROBSize = 16
	rTiny := New(tiny).Run(mk(), nil)
	rBig := New(DefaultConfig()).Run(mk(), nil)
	if rTiny.Cycles <= rBig.Cycles {
		t.Errorf("ROB=16 (%d) not slower than ROB=128 (%d)", rTiny.Cycles, rBig.Cycles)
	}
}

func TestClockPersistsAcrossRuns(t *testing.T) {
	s := New(DefaultConfig())
	r1 := s.Run(seqStream(500), nil)
	r2 := s.Run(seqStream(500), nil)
	// Warm second run must not be slower than the cold first.
	if r2.Cycles > r1.Cycles {
		t.Errorf("warm run slower: %d vs %d", r2.Cycles, r1.Cycles)
	}
	if r2.ICacheMisses >= r1.ICacheMisses {
		t.Errorf("no warmup effect on i-cache: %d vs %d misses", r2.ICacheMisses, r1.ICacheMisses)
	}
}

func TestEventDeltasPerRun(t *testing.T) {
	s := New(DefaultConfig())
	r1 := s.Run(seqStream(1000), nil)
	r2 := s.Run(seqStream(1000), nil)
	// Deltas, not cumulative: the second run's access count must be about
	// the same as the first (same instruction count), not double.
	if r2.ICacheAccesses > r1.ICacheAccesses*3/2 {
		t.Errorf("access counts look cumulative: %d then %d", r1.ICacheAccesses, r2.ICacheAccesses)
	}
}

func TestBackendPrioTwoPassIssuesCriticalFirst(t *testing.T) {
	// Smoke test: BackendPrio with trained criticality must not deadlock
	// or change architectural work.
	dyns := seqStream(5000)
	fan := make([]int32, len(dyns))
	for i := 0; i < len(fan); i += 3 {
		fan[i] = 10
	}
	cfg := DefaultConfig()
	cfg.BackendPrio = true
	res := New(cfg).Run(dyns, fan)
	if res.Instrs != 5000 {
		t.Errorf("Instrs = %d", res.Instrs)
	}
}

// Property: for every instruction, the per-stage breakdown accounts exactly
// for its end-to-end residency (no cycles lost or double counted beyond the
// defined 1-cycle stage transits).
func TestBreakdownAccountsResidency(t *testing.T) {
	dyns := seqStream(2000)
	// Mix in loads, branches and dependencies.
	for i := 50; i < 2000; i += 31 {
		dyns[i].Op = isa.OpLDR
		dyns[i].Class = isa.ClassLoad
		dyns[i].IsLoad = true
		dyns[i].MemAddr = uint32(0x4000_0000 + i*256)
		if i+1 < 2000 {
			dyns[i+1].Prod[0] = int64(i)
			dyns[i+1].NProd = 1
		}
	}
	res := run(t, DefaultConfig(), dyns)
	for i := range res.Records {
		r := &res.Records[i]
		b := BreakdownOf(r)
		residency := r.Committed - r.Eligible
		// Each of the four stage transitions (fetch->decode,
		// decode->rename, rename->issue, issue handled inside Execute)
		// consumes at most one un-attributed transit cycle.
		slack := residency - b.Total()
		if slack < 0 || slack > 3 {
			t.Fatalf("instr %d: residency %d vs breakdown %d (+%d transit)", i, residency, b.Total(), slack)
		}
	}
}
