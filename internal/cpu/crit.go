package cpu

// critEntry is one criticality-table entry. Entries are stored inline in a
// flat open-addressed array (critTable) rather than behind per-PC pointers:
// the table is probed on every commit (training) and, under BackendPrio, on
// every issue-queue scan, so the dense layout keeps the hot path free of map
// overhead and pointer chasing. The profile data itself is unchanged — a
// saturating criticality confidence plus, for loads, a stride predictor.
type critEntry struct {
	pc       uint32 // instruction address (the key); valid when used
	used     bool
	crit     uint8 // saturating criticality confidence
	conf     uint8 // stride confidence
	stride   int32
	lastAddr uint32
}

// critTable maps instruction PCs to criticality state: an open-addressed,
// linearly-probed hash table with exact-match semantics — behaviourally
// identical to the map[uint32]*critEntry it replaces (same entries, same
// training updates), so simulation results are bit-identical; only the memory
// layout and probe cost change. Growth doubles the array at 3/4 load and
// re-inserts, which is deterministic and invisible to results.
type critTable struct {
	entries []critEntry
	n       int // used entries
}

const critTableInitSize = 256 // power of two

// critHash spreads a PC over the table (Fibonacci hashing; sizes are powers
// of two so the mask select is exact).
func critHash(pc uint32, mask uint32) uint32 {
	return (pc * 0x9E3779B1) & mask
}

// lookup returns the entry for pc, or nil when absent.
func (t *critTable) lookup(pc uint32) *critEntry {
	if len(t.entries) == 0 {
		return nil
	}
	mask := uint32(len(t.entries) - 1)
	for i := critHash(pc, mask); ; i = (i + 1) & mask {
		e := &t.entries[i]
		if !e.used {
			return nil
		}
		if e.pc == pc {
			return e
		}
	}
}

// insert returns the entry for pc, creating a zero-valued one when absent.
// The returned pointer is valid until the next insert (growth re-slots
// entries).
func (t *critTable) insert(pc uint32) *critEntry {
	if len(t.entries) == 0 {
		t.entries = make([]critEntry, critTableInitSize)
	} else if 4*(t.n+1) > 3*len(t.entries) {
		t.grow()
	}
	mask := uint32(len(t.entries) - 1)
	for i := critHash(pc, mask); ; i = (i + 1) & mask {
		e := &t.entries[i]
		if !e.used {
			e.used = true
			e.pc = pc
			t.n++
			return e
		}
		if e.pc == pc {
			return e
		}
	}
}

// grow doubles the table and re-inserts every used entry.
func (t *critTable) grow() {
	old := t.entries
	t.entries = make([]critEntry, 2*len(old))
	mask := uint32(len(t.entries) - 1)
	for i := range old {
		e := &old[i]
		if !e.used {
			continue
		}
		j := critHash(e.pc, mask)
		for t.entries[j].used {
			j = (j + 1) & mask
		}
		t.entries[j] = *e
	}
}
