package dfg

import (
	"math/rand"
	"testing"

	"critics/internal/prog"
	"critics/internal/trace"
)

// mk builds a dynamic instruction at seq with the given producers.
func mk(seq int64, prods ...int64) trace.Dyn {
	d := trace.Dyn{Seq: seq}
	for _, p := range prods {
		d.Prod[d.NProd] = p
		d.NProd++
	}
	return d
}

func TestFanouts(t *testing.T) {
	// 0 feeds 1, 2, 3; 1 feeds 3.
	dyns := []trace.Dyn{
		mk(0),
		mk(1, 0),
		mk(2, 0),
		mk(3, 0, 1),
	}
	fan := Fanouts(dyns, 128)
	want := []int32{3, 1, 0, 0}
	for i := range want {
		if fan[i] != want[i] {
			t.Errorf("fan[%d] = %d, want %d", i, fan[i], want[i])
		}
	}
}

func TestFanoutsWindowCutoff(t *testing.T) {
	dyns := make([]trace.Dyn, 10)
	dyns[0] = mk(0)
	for i := 1; i < 10; i++ {
		dyns[i] = mk(int64(i), 0) // everyone consumes 0
	}
	fan := Fanouts(dyns, 3)
	if fan[0] != 3 {
		t.Errorf("windowed fanout = %d, want 3 (consumers at distance <= 3)", fan[0])
	}
	fan = Fanouts(dyns, 128)
	if fan[0] != 9 {
		t.Errorf("full fanout = %d, want 9", fan[0])
	}
}

func TestFanoutsNonLocalProducer(t *testing.T) {
	// Producers before the slice (negative relative index) are ignored.
	dyns := []trace.Dyn{mk(100, 5), mk(101, 100)}
	fan := Fanouts(dyns, 128)
	if fan[0] != 1 || fan[1] != 0 {
		t.Errorf("fan = %v", fan)
	}
}

func TestExtractLinearChain(t *testing.T) {
	dyns := []trace.Dyn{
		mk(0),
		mk(1, 0),
		mk(2, 1),
		mk(3, 2),
	}
	chains := Extract(dyns, Options{ChunkSize: 16, FanoutWindow: 16, MinLen: 2})
	if len(chains) != 1 {
		t.Fatalf("got %d chains, want 1", len(chains))
	}
	c := chains[0]
	if c.Len() != 4 {
		t.Fatalf("chain length %d, want 4", c.Len())
	}
	for i, m := range c.Members {
		if m != int32(i) {
			t.Fatalf("members = %v", c.Members)
		}
	}
	// Fanouts: 1,1,1,0 -> avg 0.75.
	if got := c.AvgFanout(); got != 0.75 {
		t.Errorf("AvgFanout = %f", got)
	}
	if c.Spread() != 4 {
		t.Errorf("Spread = %d", c.Spread())
	}
}

func TestExtractDiamondExcludesJoin(t *testing.T) {
	// 0 -> 1, 0 -> 2, (1,2) -> 3: the join node 3 has two in-flight
	// producers, so it cannot be a chain member past the head.
	dyns := []trace.Dyn{
		mk(0),
		mk(1, 0),
		mk(2, 0),
		mk(3, 1, 2),
	}
	chains := Extract(dyns, Options{ChunkSize: 16, FanoutWindow: 16, MinLen: 2})
	for _, c := range chains {
		for i, m := range c.Members {
			if m == 3 && i > 0 {
				t.Fatalf("join node entered a chain as non-head: %v", c.Members)
			}
		}
	}
	// The head 0 extends along exactly one of 1 or 2.
	if len(chains) != 1 || chains[0].Len() != 2 {
		t.Fatalf("chains = %+v", chains)
	}
}

func TestExtractGreedyPrefersHighFanout(t *testing.T) {
	// 0 feeds 1 and 2. 2 then feeds 3,4,5 (high fanout); 1 feeds nothing.
	dyns := []trace.Dyn{
		mk(0),
		mk(1, 0),
		mk(2, 0),
		mk(3, 2),
		mk(4, 2),
		mk(5, 2),
	}
	chains := Extract(dyns, Options{ChunkSize: 16, FanoutWindow: 16, MinLen: 2})
	if len(chains) == 0 {
		t.Fatal("no chains")
	}
	c := chains[0]
	if c.Members[0] != 0 || c.Members[1] != 2 {
		t.Fatalf("greedy extension picked %v, want head 0 -> 2", c.Members)
	}
}

func TestExtractMaxLen(t *testing.T) {
	dyns := make([]trace.Dyn, 10)
	dyns[0] = mk(0)
	for i := 1; i < 10; i++ {
		dyns[i] = mk(int64(i), int64(i-1))
	}
	chains := Extract(dyns, Options{ChunkSize: 16, FanoutWindow: 16, MinLen: 2, MaxLen: 5})
	if len(chains) == 0 {
		t.Fatal("no chains")
	}
	for _, c := range chains {
		if c.Len() > 5 {
			t.Errorf("chain length %d exceeds MaxLen", c.Len())
		}
	}
}

func TestExtractSameBlock(t *testing.T) {
	// A 3-instruction dependence chain crossing a block boundary between
	// index 1 and 2.
	dyns := []trace.Dyn{
		{Seq: 0, ID: prog.InstID{Func: 0, Block: 0, Index: 0}},
		{Seq: 1, ID: prog.InstID{Func: 0, Block: 0, Index: 1}},
		{Seq: 2, ID: prog.InstID{Func: 0, Block: 1, Index: 0}},
	}
	dyns[1].Prod[0] = 0
	dyns[1].NProd = 1
	dyns[2].Prod[0] = 1
	dyns[2].NProd = 1

	unrestricted := Extract(dyns, Options{ChunkSize: 16, FanoutWindow: 16, MinLen: 2})
	if len(unrestricted) != 1 || unrestricted[0].Len() != 3 {
		t.Fatalf("unrestricted chains = %+v", unrestricted)
	}
	restricted := Extract(dyns, Options{ChunkSize: 16, FanoutWindow: 16, MinLen: 2, SameBlock: true})
	if len(restricted) != 1 || restricted[0].Len() != 2 {
		t.Fatalf("same-block chains = %+v", restricted)
	}
}

func TestSameBlockInstanceDetectsReexecution(t *testing.T) {
	// Same static block, but a second execution instance (seq gap differs
	// from index gap): must not merge.
	a := trace.Dyn{Seq: 0, ID: prog.InstID{Func: 0, Block: 0, Index: 0}}
	b := trace.Dyn{Seq: 5, ID: prog.InstID{Func: 0, Block: 0, Index: 1}}
	if sameBlockInstance(&a, &b) {
		t.Error("different block instances merged")
	}
	c := trace.Dyn{Seq: 1, ID: prog.InstID{Func: 0, Block: 0, Index: 1}}
	if !sameBlockInstance(&a, &c) {
		t.Error("same block instance rejected")
	}
}

func TestHighFanoutGaps(t *testing.T) {
	// Chain with member fanouts [10, 1, 1, 10, 1]: one gap of 2 between
	// the high-fanout members, and the trailing high has no successor.
	fan := []int32{10, 1, 1, 10, 1}
	chains := []Chain{{Members: []int32{0, 1, 2, 3, 4}}}
	res := HighFanoutGaps(chains, fan, 8, 10)
	if res.Gaps.Total != 1 || res.Gaps.Counts[2] != 1 {
		t.Errorf("gaps histogram: %+v", res.Gaps)
	}
	if res.None != 1 {
		t.Errorf("None = %d, want 1", res.None)
	}
	if got := res.FracNone(); got != 0.5 {
		t.Errorf("FracNone = %f", got)
	}
}

func TestHighFanoutGapsDirectDependence(t *testing.T) {
	fan := []int32{9, 12, 1}
	chains := []Chain{{Members: []int32{0, 1, 2}}}
	res := HighFanoutGaps(chains, fan, 8, 10)
	if res.Gaps.Counts[0] != 1 {
		t.Errorf("direct dependence not bucketed at 0: %+v", res.Gaps)
	}
}

func TestCriticalFraction(t *testing.T) {
	fan := []int32{10, 1, 8, 3}
	if got := CriticalFraction(fan, 8); got != 0.5 {
		t.Errorf("CriticalFraction = %f", got)
	}
	if got := CriticalFraction(nil, 8); got != 0 {
		t.Errorf("empty CriticalFraction = %f", got)
	}
}

func TestMeasureLengthSpread(t *testing.T) {
	chains := []Chain{
		{Members: []int32{0, 1, 2}},
		{Members: []int32{10, 50}},
	}
	ls := MeasureLengthSpread(chains)
	if ls.MaxLen != 3 || ls.MaxSpread != 41 {
		t.Errorf("LengthSpread = %+v", ls)
	}
	if ls.MeanLen != 2.5 {
		t.Errorf("MeanLen = %f", ls.MeanLen)
	}
}

// Property test: over random streams, every extracted chain satisfies the IC
// invariants — strictly increasing members, disjointness, and each non-head
// member has exactly one in-chunk producer, which is the previous member.
func TestExtractInvariants(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 50; trial++ {
		n := 200
		dyns := make([]trace.Dyn, n)
		for i := 0; i < n; i++ {
			dyns[i] = trace.Dyn{Seq: int64(i)}
			np := r.Intn(3)
			for k := 0; k < np && i > 0; k++ {
				back := 1 + r.Intn(min(i, 20))
				dyns[i].Prod[dyns[i].NProd] = int64(i - back)
				dyns[i].NProd++
			}
		}
		opt := Options{ChunkSize: 64, FanoutWindow: 64, MinLen: 2}
		chains := Extract(dyns, opt)
		seen := make(map[int32]bool)
		for _, c := range chains {
			if c.Len() < 2 {
				t.Fatalf("chain below MinLen: %+v", c)
			}
			for i, m := range c.Members {
				if seen[m] {
					t.Fatalf("member %d in two chains", m)
				}
				seen[m] = true
				if i > 0 && c.Members[i-1] >= m {
					t.Fatalf("members not increasing: %v", c.Members)
				}
			}
			// Each non-head member's only in-chunk producer must be
			// the previous member.
			for i := 1; i < len(c.Members); i++ {
				m := c.Members[i]
				chunkStart := (int(m) / opt.ChunkSize) * opt.ChunkSize
				prods := map[int64]bool{}
				d := dyns[m]
				for k := uint8(0); k < d.NProd; k++ {
					if d.Prod[k] >= int64(chunkStart) {
						prods[d.Prod[k]] = true
					}
				}
				if len(prods) != 1 || !prods[int64(c.Members[i-1])] {
					t.Fatalf("member %d has in-chunk producers %v, want exactly {%d}", m, prods, c.Members[i-1])
				}
			}
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
