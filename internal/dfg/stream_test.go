package dfg

import (
	"reflect"
	"testing"

	"critics/internal/stats"
	"critics/internal/trace"
	"critics/internal/workload"
)

// streamDyns returns a materialized dynamic window for the stream tests.
func streamDyns(t *testing.T, n int) []trace.Dyn {
	t.Helper()
	a, ok := workload.FindApp("acrobat")
	if !ok {
		t.Fatal("catalog app missing")
	}
	g := trace.NewGenerator(workload.Generate(a.Params), 3)
	g.Skip(5_000)
	return g.Generate(nil, n)
}

func TestFanoutStreamMatchesFanouts(t *testing.T) {
	dyns := streamDyns(t, 30_000)
	for _, window := range []int{16, 128} {
		want := Fanouts(dyns, window)
		for _, chunk := range []int{1, 64, 128, 1024, 4096, len(dyns) + 1} {
			fs := NewFanoutStream(trace.NewSliceSource(dyns, chunk), window)
			got := make([]int32, 0, len(dyns))
			for {
				c, f := fs.Next()
				if len(c) == 0 {
					break
				}
				if len(c) != len(f) {
					t.Fatalf("window=%d chunk=%d: chunk/fanout length mismatch %d vs %d", window, chunk, len(c), len(f))
				}
				got = append(got, f...)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("window=%d chunk=%d: streamed fanouts differ", window, chunk)
			}
		}
	}
}

func TestFanoutStreamReset(t *testing.T) {
	dyns := streamDyns(t, 4_000)
	want := Fanouts(dyns, 128)
	fs := NewFanoutStream(trace.NewSliceSource(dyns, 512), 128)
	for fsDyns, _ := fs.Next(); len(fsDyns) > 0; fsDyns, _ = fs.Next() {
	}
	fs.Reset(trace.NewSliceSource(dyns, 512), 128)
	var got []int32
	for {
		c, f := fs.Next()
		if len(c) == 0 {
			break
		}
		got = append(got, f...)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("fanouts after Reset differ")
	}
}

// TestStreamChainsMatchesExtract checks that the streamed extraction visits
// exactly the chains Extract reports, in order, and that the gap and
// length/spread folds over the stream equal the materialized measurements.
func TestStreamChainsMatchesExtract(t *testing.T) {
	dyns := streamDyns(t, 24_000)
	for _, opt := range []Options{
		{ChunkSize: 1024, FanoutWindow: 128, MinLen: 2},
		{ChunkSize: 2048, FanoutWindow: 128, MinLen: 2, MaxLen: 8},
		{ChunkSize: 700, FanoutWindow: 128, MinLen: 2, SameBlock: true},
	} {
		wantChains := Extract(dyns, opt)
		fan := Fanouts(dyns, opt.FanoutWindow)
		wantGaps := HighFanoutGaps(wantChains, fan, 8, 5)
		wantLS := MeasureLengthSpread(wantChains)

		var gotChains []Chain
		gotGaps := GapResult{Gaps: stats.NewHistogram(5)}
		var acc LengthSpreadAcc
		StreamChains(trace.NewSliceSource(dyns, opt.ChunkSize), opt, func(c *Chain, fanOf func(int32) int32) {
			cp := Chain{Members: append([]int32(nil), c.Members...), SumFanout: c.SumFanout}
			gotChains = append(gotChains, cp)
			for _, m := range c.Members {
				if fanOf(m) != fan[m] {
					t.Fatalf("member %d: streamed fanout %d != %d", m, fanOf(m), fan[m])
				}
			}
			gotGaps.AddChain(c, fanOf, 8)
			acc.Add(c)
		})
		if !reflect.DeepEqual(gotChains, wantChains) {
			t.Fatalf("opt=%+v: streamed chains differ (%d vs %d)", opt, len(gotChains), len(wantChains))
		}
		if gotGaps.None != wantGaps.None || !reflect.DeepEqual(gotGaps.Gaps, wantGaps.Gaps) {
			t.Fatalf("opt=%+v: gap results differ", opt)
		}
		if acc.Summary() != wantLS {
			t.Fatalf("opt=%+v: length/spread summary differs", opt)
		}
	}
}
