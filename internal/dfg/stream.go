package dfg

import (
	"critics/internal/trace"
)

// FanoutStream computes per-instruction fanouts online over a trace.Source,
// emitting (dyns, fanouts) chunk pairs that match what Fanouts would return
// over the materialized stream — in O(chunk + window) memory instead of
// O(stream).
//
// The stream is double-buffered: a chunk's fanouts are only final once every
// instruction within the forward window has been seen, so each emitted chunk
// had its successor loaded first and the successor's first `window`
// instructions credited back. Because Sources are Seq-contiguous, "within
// the forward window" is a Seq difference — no global index bookkeeping.
//
// Emitted slices are valid until the next call. Chunks shorter than the
// window are assembled up from multiple source pulls, so any Source chunking
// is acceptable.
type FanoutStream struct {
	src    trace.Source
	window int
	base   int64 // Seq of the stream's first instruction

	cur, nxt   []trace.Dyn
	fcur, fnxt []int32
	started    bool
}

// NewFanoutStream returns a FanoutStream over src with the given forward
// window (128, the ROB size, if <= 0).
func NewFanoutStream(src trace.Source, window int) *FanoutStream {
	s := &FanoutStream{}
	s.Reset(src, window)
	return s
}

// Reset rebinds the stream to a new source, reusing the internal buffers.
func (s *FanoutStream) Reset(src trace.Source, window int) {
	if window <= 0 {
		window = 128
	}
	s.src = src
	s.window = window
	s.started = false
	s.cur = s.cur[:0]
	s.nxt = s.nxt[:0]
}

// assemble pulls source chunks into b (appending copies) until b covers at
// least one fanout window or the source is exhausted.
func (s *FanoutStream) assemble(b []trace.Dyn) []trace.Dyn {
	for len(b) < s.window {
		c := s.src.NextChunk()
		if len(c) == 0 {
			break
		}
		b = append(b, c...)
	}
	return b
}

// credit zero-extends fb to match b and adds every fanout contribution made
// by b's instructions: to earlier instructions of b itself and, across the
// buffer boundary, to the previous buffer's tail in fprev. Contributions
// further back are impossible — the previous buffer covers at least one
// window (buffers before the last are always assembled to >= window), so the
// distance check already excludes them.
func (s *FanoutStream) credit(b []trace.Dyn, fb []int32, prev []trace.Dyn, fprev []int32) []int32 {
	if cap(fb) < len(b) {
		fb = make([]int32, len(b))
	} else {
		fb = fb[:len(b)]
		clear(fb)
	}
	if len(b) == 0 {
		return fb
	}
	nb := b[0].Seq
	var pb int64
	if len(prev) > 0 {
		pb = prev[0].Seq
	}
	for i := range b {
		d := &b[i]
		for k := uint8(0); k < d.NProd; k++ {
			q := d.Prod[k]
			if q < s.base || d.Seq-q > int64(s.window) {
				continue
			}
			if q >= nb {
				fb[q-nb]++
			} else {
				fprev[q-pb]++
			}
		}
	}
	return fb
}

// Next returns the next (dyns, fanouts) chunk, or (nil, nil) at end of
// stream.
func (s *FanoutStream) Next() ([]trace.Dyn, []int32) {
	if !s.started {
		s.started = true
		s.cur = s.assemble(s.cur[:0])
		if len(s.cur) == 0 {
			return nil, nil
		}
		s.base = s.cur[0].Seq
		s.fcur = s.credit(s.cur, s.fcur, nil, nil)
	} else {
		s.cur, s.nxt = s.nxt, s.cur
		s.fcur, s.fnxt = s.fnxt, s.fcur
		if len(s.cur) == 0 {
			return nil, nil
		}
	}
	s.nxt = s.assemble(s.nxt[:0])
	s.fnxt = s.credit(s.nxt, s.fnxt, s.cur, s.fcur)
	return s.cur, s.fcur
}

// StreamChains runs chain extraction over a streamed window, calling visit
// for every chain in the exact order Extract would report them over the
// materialized slice. fanOf resolves a chain member (absolute stream index)
// to its whole-stream fanout — the fan slice HighFanoutGaps consumes in the
// materialized path. Memory stays O(opt.ChunkSize + opt.FanoutWindow).
//
// src must yield chunks of opt.ChunkSize (a GenSource constructed with that
// chunk size does) so that extraction chunk boundaries land where Extract's
// slicing puts them.
func StreamChains(src trace.Source, opt Options, visit func(c *Chain, fanOf func(member int32) int32)) {
	if opt.ChunkSize <= 0 {
		opt.ChunkSize = 1024
	}
	if opt.FanoutWindow <= 0 {
		opt.FanoutWindow = 128
	}
	if opt.MinLen <= 0 {
		opt.MinLen = 2
	}
	fs := NewFanoutStream(src, opt.FanoutWindow)
	base := 0
	var scratch []Chain
	for {
		chunk, fan := fs.Next()
		if len(chunk) == 0 {
			return
		}
		lo := base
		fanOf := func(m int32) int32 { return fan[int(m)-lo] }
		// An assembled buffer is a whole number of source chunks, so
		// slicing it at ChunkSize strides reproduces Extract's absolute
		// chunk boundaries.
		for start := 0; start < len(chunk); start += opt.ChunkSize {
			end := start + opt.ChunkSize
			if end > len(chunk) {
				end = len(chunk)
			}
			scratch = extractChunk(chunk[start:end], base+start, opt, scratch[:0])
			for i := range scratch {
				visit(&scratch[i], fanOf)
			}
		}
		base += len(chunk)
	}
}
