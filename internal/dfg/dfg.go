// Package dfg builds data-flow information over dynamic instruction windows:
// per-instruction fanout (the criticality signal the paper uses), extraction
// of Instruction Chains — self-contained, independently schedulable acyclic
// DFG paths (§III-A) — and the dependence-structure metrics behind the
// paper's motivation figures (Fig. 1b, Fig. 5a).
//
// Terminology from the paper:
//
//   - fanout: number of dependent instructions in flight (we count consumers
//     within a ROB-sized forward window, matching "fanout across ROB
//     entries", §III-C);
//   - an Instruction Chain (IC) is a path i1 -> i2 -> ... -> ik where each
//     i_{j+1} consumes i_j and has no other in-flight producer — so the
//     chain is executable as an atomic unit once i1's inputs are ready;
//   - a chain's criticality is its members' average fanout.
package dfg

import (
	"critics/internal/stats"
	"critics/internal/trace"
)

// Options controls chain extraction.
type Options struct {
	// ChunkSize is the analysis window in dynamic instructions: producers
	// and consumers are linked only within a chunk. SPEC-like chains need
	// large chunks (they spread over thousands of instructions); mobile
	// chains fit in hundreds.
	ChunkSize int

	// FanoutWindow is the forward window (in dynamic instructions) for
	// fanout counting; the paper counts dependants across ROB entries, so
	// the ROB size (128) is the natural value.
	FanoutWindow int

	// HighFanout is the threshold above which an instruction counts as
	// individually critical.
	HighFanout int32

	// SameBlock restricts chains to a single basic-block instance, the
	// constraint under which the compiler can hoist them. Measurement-only
	// callers (Fig. 5a) leave it false.
	SameBlock bool

	// MaxLen caps chain length (0 = unlimited). The CritIC pass uses 5.
	MaxLen int

	// MinLen is the minimum members for a chain to be reported.
	MinLen int
}

// DefaultOptions returns measurement defaults (unrestricted chains).
func DefaultOptions() Options {
	return Options{
		ChunkSize:    1024,
		FanoutWindow: 128,
		HighFanout:   8,
		MinLen:       2,
	}
}

// Chain is one extracted instruction chain. Members are indices into the
// analyzed dyn slice, in dependence (and program) order.
type Chain struct {
	Members   []int32
	SumFanout int64
}

// Len returns the number of member instructions.
func (c *Chain) Len() int { return len(c.Members) }

// AvgFanout is the chain criticality metric: average fanout per member.
func (c *Chain) AvgFanout() float64 {
	if len(c.Members) == 0 {
		return 0
	}
	return float64(c.SumFanout) / float64(len(c.Members))
}

// Spread returns the dynamic distance (in instructions) the chain covers,
// from first to last member inclusive.
func (c *Chain) Spread() int {
	if len(c.Members) == 0 {
		return 0
	}
	return int(c.Members[len(c.Members)-1]-c.Members[0]) + 1
}

// Fanouts returns, for every instruction in dyns, the number of consumers
// within the following window instructions. CDP commands and branches have
// no dataflow destinations and always get fanout 0.
func Fanouts(dyns []trace.Dyn, window int) []int32 {
	fan := make([]int32, len(dyns))
	if len(dyns) == 0 {
		return fan
	}
	base := dyns[0].Seq
	for i := range dyns {
		d := &dyns[i]
		for k := uint8(0); k < d.NProd; k++ {
			p := d.Prod[k] - base
			if p < 0 {
				continue
			}
			pi := int(p)
			if i-pi <= window {
				fan[pi]++
			}
		}
	}
	return fan
}

// sameBlockInstance reports whether two dynamic instructions belong to the
// same execution instance of the same basic block. Within one thread a block
// executes its instructions consecutively, so membership is exact:
// identical (func, block) and matching seq/index deltas.
func sameBlockInstance(a, b *trace.Dyn) bool {
	return a.ID.Func == b.ID.Func &&
		a.ID.Block == b.ID.Block &&
		b.Seq-a.Seq == int64(b.ID.Index-a.ID.Index)
}

// Extract returns the instruction chains of dyns under opt. Chains are
// disjoint (each instruction joins at most one chain): extraction walks the
// stream head-first and greedily extends each chain along the
// highest-fanout eligible consumer edge, mirroring how the paper's profiler
// dumps independently schedulable ICs and keeps the top ones.
//
// Edge eligibility u -> v requires: v consumes u, v's only in-chunk producer
// is u (self-containment: v needs nothing else in flight), and — when
// opt.SameBlock is set — u and v belong to the same basic-block instance.
func Extract(dyns []trace.Dyn, opt Options) []Chain {
	if opt.ChunkSize <= 0 {
		opt.ChunkSize = 1024
	}
	if opt.FanoutWindow <= 0 {
		opt.FanoutWindow = 128
	}
	if opt.MinLen <= 0 {
		opt.MinLen = 2
	}
	var chains []Chain
	for start := 0; start < len(dyns); start += opt.ChunkSize {
		end := start + opt.ChunkSize
		if end > len(dyns) {
			end = len(dyns)
		}
		chains = extractChunk(dyns[start:end], start, opt, chains)
	}
	return chains
}

// extractChunk runs chain extraction over one chunk. base is the chunk's
// offset within the full slice; reported member indices are absolute.
func extractChunk(chunk []trace.Dyn, base int, opt Options, out []Chain) []Chain {
	n := len(chunk)
	if n == 0 {
		return out
	}
	fan := Fanouts(chunk, opt.FanoutWindow)
	seqBase := chunk[0].Seq

	// In-chunk producer bookkeeping: distinct-producer count and the single
	// producer (valid when the count is exactly 1). A consumer reading two
	// outputs of the same producer (e.g. CC + register) has one producer.
	prodCount := make([]uint8, n)
	singleProd := make([]int32, n)
	for i := 0; i < n; i++ {
		d := &chunk[i]
		seen := [4]int64{-1, -1, -1, -1}
		for k := uint8(0); k < d.NProd; k++ {
			p := d.Prod[k] - seqBase
			if p < 0 || p >= int64(n) {
				continue
			}
			dup := false
			for _, s := range seen {
				if s == p {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			seen[k] = p
			prodCount[i]++
			singleProd[i] = int32(p)
		}
	}
	// Consumer adjacency (linked lists), restricted to *eligible* edges:
	// consumers whose only in-chunk producer is the list owner. A consumer
	// with several in-flight producers cannot join any chain mid-path, so
	// it never needs to appear in an adjacency list.
	consHead := make([]int32, n)
	consNext := make([]int32, n)
	for i := range consHead {
		consHead[i] = -1
		consNext[i] = -1
	}
	for i := 0; i < n; i++ {
		if prodCount[i] != 1 {
			continue
		}
		pi := singleProd[i]
		consNext[i] = consHead[pi]
		consHead[pi] = int32(i)
	}

	used := make([]bool, n)
	for h := 0; h < n; h++ {
		if used[h] || chunk[h].IsCDP {
			continue
		}
		// Build the best chain headed at h.
		var members []int32
		var sum int64
		cur := int32(h)
		members = append(members, cur)
		sum += int64(fan[cur])
		used[cur] = true
		for opt.MaxLen == 0 || len(members) < opt.MaxLen {
			best := int32(-1)
			var bestFan int32 = -1
			for v := consHead[cur]; v != -1; v = consNext[v] {
				if used[v] || chunk[v].IsCDP {
					continue
				}
				if opt.SameBlock && !sameBlockInstance(&chunk[cur], &chunk[v]) {
					continue
				}
				if fan[v] > bestFan {
					bestFan = fan[v]
					best = v
				}
			}
			if best == -1 {
				break
			}
			members = append(members, best)
			sum += int64(fan[best])
			used[best] = true
			cur = best
		}
		if len(members) < opt.MinLen {
			// Release members shorter than the minimum so they can
			// join later chains as consumers.
			for _, m := range members {
				used[m] = false
			}
			used[h] = true // heads stay consumed to guarantee progress
			continue
		}
		abs := make([]int32, len(members))
		for i, m := range members {
			abs[i] = m + int32(base)
		}
		out = append(out, Chain{Members: abs, SumFanout: sum})
	}
	return out
}

// GapResult is the Fig. 1b measurement: for each high-fanout instruction in
// a chain, the number of low-fanout instructions before the next high-fanout
// instruction downstream in the same chain — or "none" when the chain has no
// further high-fanout member.
type GapResult struct {
	Gaps *stats.Histogram // bucket k = k low-fanout instructions between
	None int64            // high-fanout instructions with no dependent high-fanout successor
}

// FracNone returns the fraction of high-fanout chain members with no
// dependent high-fanout successor (the "SPEC-like" bucket of Fig. 1b).
func (g GapResult) FracNone() float64 {
	total := g.None + g.Gaps.Total
	if total == 0 {
		return 0
	}
	return float64(g.None) / float64(total)
}

// AddChain folds one chain into the result. fanOf resolves a chain member
// (absolute index) to its whole-window fanout; streamed extraction passes
// the lookup StreamChains provides, the materialized path an indexed slice.
func (g *GapResult) AddChain(c *Chain, fanOf func(int32) int32, threshold int32) {
	lastHigh := -1
	gap := 0
	for _, m := range c.Members {
		if fanOf(m) >= threshold {
			if lastHigh >= 0 {
				g.Gaps.Add(gap)
			}
			lastHigh = int(m)
			gap = 0
		} else if lastHigh >= 0 {
			gap++
		}
	}
	if lastHigh >= 0 {
		g.None++
	}
}

// HighFanoutGaps measures the dependence-chain structure of Fig. 1b over
// extracted chains. fan must come from Fanouts over the same dyns slice.
func HighFanoutGaps(chains []Chain, fan []int32, threshold int32, maxGap int) GapResult {
	res := GapResult{Gaps: stats.NewHistogram(maxGap)}
	for i := range chains {
		res.AddChain(&chains[i], func(m int32) int32 { return fan[m] }, threshold)
	}
	return res
}

// LengthSpread summarizes chain length and dynamic spread distributions
// (Fig. 5a).
type LengthSpread struct {
	MaxLen    int
	MaxSpread int
	P99Len    float64
	P99Spread float64
	MeanLen   float64
}

// LengthSpreadAcc accumulates chain length/spread samples incrementally, so
// streamed extraction can fold chains in without retaining them. Add/Merge
// order must match chain order where bit-identical summaries matter: the
// mean is an ordered float sum.
type LengthSpreadAcc struct {
	Lens, Spreads []float64
	MaxLen        int
	MaxSpread     int
}

// Add folds one chain into the accumulator.
func (a *LengthSpreadAcc) Add(c *Chain) {
	l, s := c.Len(), c.Spread()
	if l > a.MaxLen {
		a.MaxLen = l
	}
	if s > a.MaxSpread {
		a.MaxSpread = s
	}
	a.Lens = append(a.Lens, float64(l))
	a.Spreads = append(a.Spreads, float64(s))
}

// Merge appends o's samples after a's.
func (a *LengthSpreadAcc) Merge(o *LengthSpreadAcc) {
	if o.MaxLen > a.MaxLen {
		a.MaxLen = o.MaxLen
	}
	if o.MaxSpread > a.MaxSpread {
		a.MaxSpread = o.MaxSpread
	}
	a.Lens = append(a.Lens, o.Lens...)
	a.Spreads = append(a.Spreads, o.Spreads...)
}

// Summary computes the Fig. 5a summary over the accumulated chains.
func (a *LengthSpreadAcc) Summary() LengthSpread {
	return LengthSpread{
		MaxLen:    a.MaxLen,
		MaxSpread: a.MaxSpread,
		P99Len:    stats.Percentile(a.Lens, 99),
		P99Spread: stats.Percentile(a.Spreads, 99),
		MeanLen:   stats.Mean(a.Lens),
	}
}

// MeasureLengthSpread computes the Fig. 5a summary over chains.
func MeasureLengthSpread(chains []Chain) LengthSpread {
	acc := LengthSpreadAcc{
		Lens:    make([]float64, 0, len(chains)),
		Spreads: make([]float64, 0, len(chains)),
	}
	for i := range chains {
		acc.Add(&chains[i])
	}
	return acc.Summary()
}

// CriticalFraction returns the fraction of dynamic instructions whose fanout
// meets the threshold (the right axis of Fig. 1a).
func CriticalFraction(fan []int32, threshold int32) float64 {
	if len(fan) == 0 {
		return 0
	}
	crit := 0
	for _, f := range fan {
		if f >= threshold {
			crit++
		}
	}
	return float64(crit) / float64(len(fan))
}
