package binimg

import (
	"testing"

	"critics/internal/compiler"
	"critics/internal/core"
	"critics/internal/isa"
	"critics/internal/prog"
	"critics/internal/trace"
	"critics/internal/workload"
)

func smallProgram() *prog.Program {
	p := &prog.Program{
		Name:          "t",
		Entry:         0,
		NumMemRegions: 1,
		RegionBytes:   []uint32{4096},
	}
	f := &prog.Func{ID: 0, Name: "main"}
	f.Blocks = []*prog.Block{
		{ID: 0, End: prog.EndReturn, Instrs: []prog.Instr{
			{Inst: isa.Inst{Op: isa.OpMOV, Rd: isa.R1, Rm: isa.NoReg, Rn: isa.NoReg, HasImm: true, Imm: 4}},
			{Inst: isa.Inst{Op: isa.OpADD, Rd: isa.R2, Rn: isa.R1, Rm: isa.R3}},
			{Inst: isa.Inst{Op: isa.OpLDR, Rd: isa.R0, Rn: isa.R1, Rm: isa.NoReg, HasImm: true, Imm: 8}, MemRegion: 0},
			{Inst: isa.Inst{Op: isa.OpBX, Rd: isa.NoReg, Rn: isa.LR, Rm: isa.NoReg}},
		}},
	}
	p.Funcs = []*prog.Func{f}
	p.AssignUIDs()
	p.Layout()
	return p
}

func TestAssembleDecodeSmall(t *testing.T) {
	p := smallProgram()
	if err := VerifyRoundTrip(p); err != nil {
		t.Fatal(err)
	}
	img, err := Assemble(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(img) != int(p.CodeBytes) {
		t.Fatalf("image %d bytes, want %d", len(img), p.CodeBytes)
	}
	dec, err := Decode(img)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != 4 {
		t.Fatalf("decoded %d instructions, want 4", len(dec))
	}
}

func TestRoundTripWithThumbRun(t *testing.T) {
	p := smallProgram()
	b := p.Funcs[0].Blocks[0]
	// Convert the first three instructions to a CDP-covered thumb run.
	cdp := prog.Instr{Inst: isa.Inst{Op: isa.OpCDP, Rd: isa.NoReg, Rn: isa.NoReg, Rm: isa.NoReg}, Thumb: true, CDPCount: 3}
	for i := 0; i < 3; i++ {
		b.Instrs[i].Thumb = true
	}
	// ADD r2, r1, r3 is register-form representable; LDR r0,[r1,#8] fits the
	// mem form; MOV r1,#4 fits the imm form.
	b.Instrs = append([]prog.Instr{cdp}, b.Instrs...)
	p.Layout()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := VerifyRoundTrip(p); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	img := []byte{0xFF, 0xFF, 0xFF, 0xFF}
	if _, err := Decode(img); err == nil {
		t.Error("garbage image decoded")
	}
}

func TestAssembleRejectsExpanded(t *testing.T) {
	p := smallProgram()
	p.Funcs[0].Blocks[0].Instrs[1].Thumb = true
	p.Funcs[0].Blocks[0].Instrs[1].Expanded = true
	p.Layout()
	if _, err := Assemble(p); err == nil {
		t.Error("Expanded instruction assembled")
	}
}

func TestRoundTripWholeApps(t *testing.T) {
	// Baseline and CritIC-transformed binaries of real app models assemble
	// into byte images and decode back exactly.
	for _, name := range []string{"music", "office"} {
		a, _ := workload.FindApp(name)
		p := workload.Generate(a.Params)
		if err := VerifyRoundTrip(p); err != nil {
			t.Fatalf("%s baseline: %v", name, err)
		}
		ws := trace.Collect(p, a.Params.Seed, trace.SamplePlan{Samples: 3, Length: 10_000, Gap: 3000, Warmup: 5000})
		prof := core.BuildProfile(p, ws, core.DefaultConfig())
		q, _, err := compiler.ApplyCritIC(p, prof, compiler.Options{MaxLen: 5, Switch: compiler.SwitchCDP})
		if err != nil {
			t.Fatal(err)
		}
		if err := VerifyRoundTrip(q); err != nil {
			t.Fatalf("%s critic: %v", name, err)
		}
		// The Approach-1 variant (mode-switch branches) too.
		qb, _, err := compiler.ApplyCritIC(p, prof, compiler.Options{MaxLen: 5, Switch: compiler.SwitchBranch})
		if err != nil {
			t.Fatal(err)
		}
		if err := VerifyRoundTrip(qb); err != nil {
			t.Fatalf("%s critic-branch: %v", name, err)
		}
		// OPP16 output is direct-only and must also round trip.
		qo, _, err := compiler.ApplyOPP16(p, 3)
		if err != nil {
			t.Fatal(err)
		}
		if err := VerifyRoundTrip(qo); err != nil {
			t.Fatalf("%s opp16: %v", name, err)
		}
	}
}

func TestListing(t *testing.T) {
	p := smallProgram()
	img, err := Assemble(p)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Listing(p, img, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(s) < 40 {
		t.Errorf("listing too short: %q", s)
	}
	if _, err := Listing(p, img, 9); err == nil {
		t.Error("bad function id accepted")
	}
}

func TestImageSmallerAfterCritIC(t *testing.T) {
	a, _ := workload.FindApp("acrobat")
	p := workload.Generate(a.Params)
	ws := trace.Collect(p, a.Params.Seed, trace.SamplePlan{Samples: 3, Length: 10_000, Gap: 3000, Warmup: 5000})
	prof := core.BuildProfile(p, ws, core.DefaultConfig())
	q, _, err := compiler.ApplyCritIC(p, prof, compiler.Options{MaxLen: 5, Switch: compiler.SwitchCDP})
	if err != nil {
		t.Fatal(err)
	}
	imgP, err := Assemble(p)
	if err != nil {
		t.Fatal(err)
	}
	imgQ, err := Assemble(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(imgQ) >= len(imgP) {
		t.Errorf("CritIC image %d bytes >= baseline %d", len(imgQ), len(imgP))
	}
}

func TestAssembleRejectsCDPCollision(t *testing.T) {
	// An A32 instruction whose low halfword matches the CDP pattern (rd=r6,
	// imm=1024) is ambiguous to the streaming decoder; the assembler must
	// refuse it.
	p := smallProgram()
	p.Funcs[0].Blocks[0].Instrs[0] = prog.Instr{
		Inst: isa.Inst{Op: isa.OpMOV, Rd: isa.R6, Rn: isa.NoReg, Rm: isa.NoReg, HasImm: true, Imm: 1024},
	}
	p.Layout()
	if _, err := Assemble(p); err == nil {
		t.Error("ambiguous encoding accepted")
	}
}
