// Package binimg assembles a program into an actual binary image using the
// bit-level A32/T16 encodings, and decodes such images back with a streaming
// decoder that models the ARM decoder's format state machine (paper Fig. 6
// and §IV-B): 32-bit words by default, switching to 16-bit decoding for the
// run length named by a CDP command, then back.
//
// This closes the loop on the encoding story: the compiler's output is not
// just flags on an IR — it is bytes a decoder can actually walk. The
// round-trip property (assemble then decode yields the original instruction
// stream) is tested over whole transformed applications.
//
// Conventions: branch/call targets live in the program's CFG metadata, not
// in the encoded words (the image encodes operation semantics; relocation is
// the linker's job and out of scope). Zero words/halfwords are padding: the
// workload generators never emit architectural NOPs, and the layout uses
// zero bytes for alignment gaps.
package binimg

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"

	"critics/internal/encoding"
	"critics/internal/isa"
	"critics/internal/prog"
)

// exchangeBit marks an A32 branch as an Approach-1 format-exchange branch
// (a spare bit in the otherwise-zero [11:4] field of the register form).
const exchangeBit = 1 << 4

// Assemble encodes p (which must be laid out) into a byte image of
// p.CodeBytes bytes. Programs containing Expanded instructions are rejected:
// expansion materializes extra instructions only in the dynamic stream, so
// such programs (Compress output) have no single-halfword encoding here.
func Assemble(p *prog.Program) ([]byte, error) {
	if !p.LaidOut() {
		p.Layout()
	}
	img := make([]byte, p.CodeBytes)
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			for i := range b.Instrs {
				in := &b.Instrs[i]
				if in.Expanded {
					return nil, fmt.Errorf("binimg: %s.b%d.i%d is Expanded; image assembly supports single-encoding programs only", f.Name, b.ID, i)
				}
				if int(in.Addr)+in.Size() > len(img) {
					return nil, fmt.Errorf("binimg: instruction at %#x overruns image", in.Addr)
				}
				switch {
				case in.Op == isa.OpCDP:
					hw, err := encoding.EncodeCDP(in.CDPCount)
					if err != nil {
						return nil, fmt.Errorf("binimg: %s.b%d.i%d: %w", f.Name, b.ID, i, err)
					}
					binary.LittleEndian.PutUint16(img[in.Addr:], hw)
				case in.Thumb:
					hw, err := encoding.EncodeT16(in.Inst)
					if err != nil {
						return nil, fmt.Errorf("binimg: %s.b%d.i%d: %w", f.Name, b.ID, i, err)
					}
					binary.LittleEndian.PutUint16(img[in.Addr:], hw)
				default:
					w, err := encoding.EncodeA32(in.Inst)
					if err != nil {
						return nil, fmt.Errorf("binimg: %s.b%d.i%d: %w", f.Name, b.ID, i, err)
					}
					if in.ModeSwitch {
						// Approach-1 exchange branch: a spare bit in
						// the A32 zero field tells the decoder the
						// following instructions are 16-bit, until a
						// 16-bit branch switches back (§IV-A).
						w |= exchangeBit
					}
					if encoding.IsCDP(uint16(w)) {
						// The streaming decoder distinguishes CDP
						// commands by their halfword pattern; an A32
						// word whose low halfword collides would be
						// ambiguous. (Collisions require rd = r6 with
						// specific wide immediates; the workload
						// conventions never produce them, and the
						// assembler enforces it.)
						return nil, fmt.Errorf("binimg: %s.b%d.i%d: A32 encoding of %v collides with the CDP pattern", f.Name, b.ID, i, in.Inst)
					}
					binary.LittleEndian.PutUint32(img[in.Addr:], w)
				}
			}
		}
	}
	return img, nil
}

// Decoded is one decoded element of an image walk.
type Decoded struct {
	Addr     uint32
	Inst     isa.Inst
	Thumb    bool
	IsCDP    bool
	CDPCount int
}

// Decode walks the image from offset 0, reproducing the decoder's format
// state machine, and returns the decoded stream (padding skipped). It is
// the buffered convenience form of the streaming Decoder (decoder.go),
// which large-image paths use directly to stay in bounded memory.
func Decode(img []byte) ([]Decoded, error) {
	d := NewDecoder(bytes.NewReader(img))
	var out []Decoded
	for {
		dec, err := d.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, dec)
	}
}

// Listing is a human-readable disassembly of one function from its image,
// annotated with chain membership — the view cmd/criticdump prints.
func Listing(p *prog.Program, img []byte, funcID int) (string, error) {
	if funcID < 0 || funcID >= len(p.Funcs) {
		return "", fmt.Errorf("binimg: no function %d", funcID)
	}
	f := p.Funcs[funcID]
	s := fmt.Sprintf("%s:\n", f.Name)
	for _, b := range f.Blocks {
		s += fmt.Sprintf(".b%d:  (%s", b.ID, b.End)
		switch b.End {
		case prog.EndCondBranch:
			s += fmt.Sprintf(" -> b%d p=%.2f", b.Taken, b.TakenProb)
		case prog.EndJump:
			s += fmt.Sprintf(" -> b%d", b.Taken)
		case prog.EndCall:
			s += fmt.Sprintf(" %s", p.Funcs[b.Callee].Name)
		}
		s += ")\n"
		for i := range b.Instrs {
			in := &b.Instrs[i]
			var bytes string
			switch in.Size() {
			case 2:
				bytes = fmt.Sprintf("%04x    ", binary.LittleEndian.Uint16(img[in.Addr:]))
			default:
				bytes = fmt.Sprintf("%08x", binary.LittleEndian.Uint32(img[in.Addr:]))
			}
			tag := ""
			if in.ChainID != 0 {
				tag = fmt.Sprintf("   ; CritIC #%d", in.ChainID)
			}
			if in.Op == isa.OpCDP {
				tag = fmt.Sprintf("   ; thumb-switch, covers %d", in.CDPCount)
			}
			if in.ModeSwitch {
				tag = "   ; format-switch branch"
			}
			mode := "a32"
			if in.Thumb {
				mode = "t16"
			}
			s += fmt.Sprintf("  %06x  %s  %s  %-28s%s\n", in.Addr, bytes, mode, in.Inst.String(), tag)
		}
	}
	return s, nil
}

// VerifyRoundTrip asserts that assembling and decoding p reproduces its
// instruction stream exactly (addresses, modes and operations). Used by
// tests and cmd/criticdump's -verify flag.
func VerifyRoundTrip(p *prog.Program) error {
	img, err := Assemble(p)
	if err != nil {
		return err
	}
	decoded, err := Decode(img)
	if err != nil {
		return err
	}
	idx := 0
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			for i := range b.Instrs {
				in := &b.Instrs[i]
				if idx >= len(decoded) {
					return fmt.Errorf("binimg: decoded stream ends early at %s.b%d.i%d", f.Name, b.ID, i)
				}
				d := decoded[idx]
				idx++
				if d.Addr != in.Addr {
					return fmt.Errorf("binimg: address mismatch at %s.b%d.i%d: %#x vs %#x", f.Name, b.ID, i, d.Addr, in.Addr)
				}
				if in.Op == isa.OpCDP {
					if !d.IsCDP || d.CDPCount != in.CDPCount {
						return fmt.Errorf("binimg: CDP mismatch at %#x", in.Addr)
					}
					continue
				}
				if d.Thumb != in.Thumb {
					return fmt.Errorf("binimg: mode mismatch at %#x", in.Addr)
				}
				want := encoding.Normalize(in.Inst)
				if d.Inst != want {
					return fmt.Errorf("binimg: instruction mismatch at %#x: %v vs %v", in.Addr, d.Inst, want)
				}
			}
		}
	}
	if idx != len(decoded) {
		return fmt.Errorf("binimg: %d trailing decoded instructions", len(decoded)-idx)
	}
	return nil
}
