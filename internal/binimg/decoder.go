package binimg

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"critics/internal/encoding"
	"critics/internal/isa"
)

// Decoder walks a binary image as a stream, reproducing the ARM decoder's
// format state machine (32-bit words by default, 16-bit for CDP-counted runs
// and Approach-1 exchange regions) in bounded memory: it holds a small peek
// buffer, never the image. This is what lets the scan service decode
// multi-MB uploaded images straight off the artifact store without
// buffering them.
//
// Errors are sticky: after Next returns a non-nil error (including io.EOF at
// the clean end of the image), every later call returns the same error.
type Decoder struct {
	br  *bufio.Reader
	off uint32

	thumbLeft      int  // CDP-counted run remaining
	thumbUntilExit bool // Approach-1: thumb until a 16-bit branch

	err error
}

// NewDecoder returns a streaming decoder over r, which must deliver the
// image bytes from offset 0.
func NewDecoder(r io.Reader) *Decoder {
	return &Decoder{br: bufio.NewReader(r)}
}

// Offset returns the image offset the next element will be decoded at.
func (d *Decoder) Offset() uint32 { return d.off }

// Next returns the next decoded element (padding skipped), io.EOF at the
// clean end of the image, or a decode error pinned to its offset.
func (d *Decoder) Next() (Decoded, error) {
	if d.err != nil {
		return Decoded{}, d.err
	}
	dec, err := d.next()
	if err != nil {
		d.err = err
	}
	return dec, err
}

// advance consumes n already-peeked bytes.
func (d *Decoder) advance(n int) {
	d.br.Discard(n)
	d.off += uint32(n)
}

func (d *Decoder) next() (Decoded, error) {
	for {
		buf, _ := d.br.Peek(4)
		if len(buf) == 0 {
			return Decoded{}, io.EOF
		}
		off := d.off
		if d.thumbLeft > 0 || d.thumbUntilExit {
			if len(buf) < 2 {
				return Decoded{}, fmt.Errorf("binimg: truncated halfword at %#x", off)
			}
			hw := binary.LittleEndian.Uint16(buf)
			in, err := encoding.DecodeT16(hw)
			if err != nil {
				return Decoded{}, fmt.Errorf("binimg: at %#x: %w", off, err)
			}
			d.advance(2)
			if d.thumbLeft > 0 {
				d.thumbLeft--
			} else if in.Op == isa.OpB && in.Cond == isa.CondAL {
				// The 16-bit exchange branch ends the run.
				d.thumbUntilExit = false
			}
			return Decoded{Addr: off, Inst: in, Thumb: true}, nil
		}
		// 32-bit mode. A CDP command may sit at any halfword boundary
		// (long converted runs chain CDPs back to back).
		if len(buf) >= 2 {
			hw := binary.LittleEndian.Uint16(buf)
			if encoding.IsCDP(hw) {
				cdp, err := encoding.DecodeCDP(hw)
				if err != nil {
					return Decoded{}, err
				}
				d.advance(2)
				d.thumbLeft = cdp.Count
				return Decoded{
					Addr:  off,
					Inst:  isa.Inst{Op: isa.OpCDP, Rd: isa.NoReg, Rn: isa.NoReg, Rm: isa.NoReg},
					Thumb: true, IsCDP: true, CDPCount: cdp.Count,
				}, nil
			}
		}
		// A halfword-aligned position that is not a CDP is alignment
		// padding after a Thumb run.
		if off%4 == 2 {
			if len(buf) < 2 {
				// Image ends mid-halfword here: a sub-word tail, which must
				// be zero padding like any other trailing pad.
				if buf[0] != 0 {
					return Decoded{}, fmt.Errorf("binimg: trailing garbage at %#x", off)
				}
				d.advance(1)
				continue
			}
			if binary.LittleEndian.Uint16(buf) != 0 {
				return Decoded{}, fmt.Errorf("binimg: expected pad halfword at %#x", off)
			}
			d.advance(2)
			continue
		}
		if len(buf) < 4 {
			// Trailing pad shorter than a word.
			for _, b := range buf {
				if b != 0 {
					return Decoded{}, fmt.Errorf("binimg: trailing garbage at %#x", off)
				}
			}
			d.advance(len(buf))
			continue
		}
		w := binary.LittleEndian.Uint32(buf)
		if w == 0 {
			d.advance(4) // alignment padding between functions
			continue
		}
		in, err := encoding.DecodeA32(w)
		if err != nil {
			return Decoded{}, fmt.Errorf("binimg: at %#x: %w", off, err)
		}
		d.advance(4)
		if in.Op == isa.OpB && in.Cond == isa.CondAL && w&exchangeBit != 0 {
			d.thumbUntilExit = true
		}
		return Decoded{Addr: off, Inst: in}, nil
	}
}
