package binimg

import (
	"testing"

	"critics/internal/workload"
)

// FuzzDecode runs the streaming image decoder over arbitrary bytes: the
// format state machine (A32 words, CDP-counted Thumb runs, Approach-1
// thumb-until-branch runs, alignment padding) must reject garbage with an
// error, never a panic or an out-of-bounds access.
func FuzzDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	// A real assembled image as the structured seed.
	apps := workload.MobileApps()
	p := workload.Generate(apps[0].Params)
	if img, err := Assemble(p); err == nil {
		if len(img) > 4096 {
			img = img[:4096]
		}
		f.Add(img)
	}
	f.Fuzz(func(t *testing.T, img []byte) {
		decoded, err := Decode(img)
		if err != nil {
			return
		}
		// Every decoded element must lie within the image.
		for _, d := range decoded {
			if int(d.Addr) >= len(img) {
				t.Fatalf("decoded element at %#x beyond image length %d", d.Addr, len(img))
			}
		}
	})
}
