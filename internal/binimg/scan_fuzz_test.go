// FuzzScan lives in the external test package: it drives internal/scan,
// which imports binimg, so an in-package fuzz target would be an import
// cycle. The corpus still lives under this package's testdata/fuzz/FuzzScan.
package binimg_test

import (
	"bytes"
	"testing"

	"critics/internal/binimg"
	"critics/internal/scan"
	"critics/internal/trace"
	"critics/internal/workload"
)

// FuzzScan runs the whole source-free scan pipeline — streaming image
// decode, trace-file decode, per-chunk DFG scoring, report merge — over
// arbitrary image and trace bytes. Adversarial inputs (truncated images,
// CDP-desynced mode runs, garbage or length-lying trace headers) must come
// back as an error, never a panic, an out-of-bounds access or a runaway
// allocation.
func FuzzScan(f *testing.F) {
	f.Add([]byte{}, []byte{})
	f.Add([]byte{0, 0, 0, 0}, []byte("CTRC\x01"))

	// A real assembled image and a real trace as the structured seeds, plus
	// a CDP-desynced variant (corrupted halfword inside a Thumb run) and a
	// truncated one.
	apps := workload.MobileApps()
	p := workload.Generate(apps[0].Params)
	if img, err := binimg.Assemble(p); err == nil {
		g := trace.NewGenerator(p, apps[0].Params.Seed)
		dyns := g.Generate(nil, 2000)
		addrs := make([]uint32, len(dyns))
		for i := range dyns {
			addrs[i] = dyns[i].Addr
		}
		trc := scan.TraceBytes(addrs, 256)
		if len(img) > 8192 {
			img = img[:8192]
		}
		f.Add(img, trc)
		if len(img) > 64 {
			desynced := bytes.Clone(img)
			desynced[len(desynced)/2] ^= 0xff
			f.Add(desynced, trc)
			f.Add(img[:len(img)/2+1], trc[:len(trc)/2])
		}
	}

	f.Fuzz(func(t *testing.T, img, trc []byte) {
		rep, err := scan.Run(bytes.NewReader(img), bytes.NewReader(trc), "sha256:img", "sha256:trc", scan.Options{})
		if err != nil {
			return
		}
		// A report that decodes must also render and stay self-consistent.
		if rep.Text() == "" {
			t.Fatal("successful scan rendered an empty report")
		}
		if rep.SavedBytes < 0 || rep.FetchBytes < 0 {
			t.Fatalf("negative byte accounting: saved=%d fetch=%d", rep.SavedBytes, rep.FetchBytes)
		}
		for _, o := range rep.Opportunities {
			if o.Len <= 0 || o.SavedBytes < 0 {
				t.Fatalf("malformed opportunity %+v", o)
			}
		}
	})
}
