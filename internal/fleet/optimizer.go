package fleet

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math"
	"sort"
	"strings"

	"critics/internal/core"
	"critics/internal/cpu"
	"critics/internal/exp"
	"critics/internal/obs"
	"critics/internal/sketch"
	"critics/internal/workload"
)

// Candidate is one CritIC selection policy the optimizer considers: the
// compiled variant kind whose measured speedup the memoized measurement
// path supplies, plus the matching selection policy applied to the fleet
// consensus profile to score how much of the fleet's observed dynamic
// stream the policy covers.
type Candidate struct {
	// Name identifies the candidate in reports and metrics; it equals the
	// exp variant kind it measures.
	Name string

	// Kind is the exp.Context variant kind measured against VarBase.
	Kind string

	// Sel is the selection policy scored against the consensus profile.
	Sel core.Config

	// ExactLen, when > 0, restricts consensus coverage to selected chains
	// of exactly this length (the critic-len-N variants compile only
	// those).
	ExactLen int
}

// DefaultCandidates returns the generation-0 candidate pool: the paper's
// operating point, the ideal (representability-relaxed) selection, and the
// exact-length policies of Fig. 12a.
func DefaultCandidates() []Candidate {
	std := core.DefaultConfig()
	ideal := std
	ideal.RequireThumb = false
	ideal.MaxLen = core.MaxChainLen
	out := []Candidate{
		{Name: exp.VarCritIC, Kind: exp.VarCritIC, Sel: std},
		{Name: exp.VarCritICIdeal, Kind: exp.VarCritICIdeal, Sel: ideal},
	}
	for n := 2; n <= 5; n++ {
		sel := std
		sel.MaxLen = n
		out = append(out, Candidate{
			Name:     fmt.Sprintf("critic-len-%d", n),
			Kind:     fmt.Sprintf("critic-len-%d", n),
			Sel:      sel,
			ExactLen: n,
		})
	}
	return out
}

// CandidateScore is one candidate's A/B outcome in a generation.
type CandidateScore struct {
	Name       string  `json:"name"`
	SpeedupPct float64 `json:"speedup_pct"` // measured vs base (memoized sweep)
	Coverage   float64 `json:"coverage"`    // consensus dynamic-stream coverage
	Score      float64 `json:"score"`       // combined ranking value
}

// Generation is one optimizer iteration: every surviving candidate scored
// against the consensus snapshot.
type Generation struct {
	Index  int              `json:"index"`
	Scores []CandidateScore `json:"scores"`
	Winner string           `json:"winner"`
}

// Report is the outcome of one converge run.
type Report struct {
	App         string       `json:"app"`
	Revision    uint64       `json:"revision"` // consensus revision scored against
	Devices     float64      `json:"devices_estimate"`
	Generations []Generation `json:"generations"`
	Converged   bool         `json:"converged"`
	Winner      string       `json:"winner"`

	// SelectedChains and WinnerDigest describe the winning selection over
	// the consensus profile; the digest is the byte-identity witness of
	// closed-loop determinism (same consensus → same selected CritICs).
	SelectedChains int     `json:"selected_chains"`
	Coverage       float64 `json:"coverage"`
	WinnerDigest   string  `json:"winner_digest"`
}

// String renders the report.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fleet converge %s (consensus rev %d, ~%.0f devices)\n", r.App, r.Revision, r.Devices)
	for _, g := range r.Generations {
		fmt.Fprintf(&b, "  gen %d: winner %s over %d candidates\n", g.Index, g.Winner, len(g.Scores))
		for _, sc := range g.Scores {
			fmt.Fprintf(&b, "    %-14s speedup %6.2f%%  coverage %5.1f%%  score %.4f\n",
				sc.Name, sc.SpeedupPct, 100*sc.Coverage, sc.Score)
		}
	}
	state := "not converged"
	if r.Converged {
		state = "converged"
	}
	fmt.Fprintf(&b, "  %s: winner %s, %d selected chains, coverage %.1f%%, digest %s\n",
		state, r.Winner, r.SelectedChains, 100*r.Coverage, r.WinnerDigest)
	return b.String()
}

// ConvergeOptions tunes a converge run. The zero value selects defaults.
type ConvergeOptions struct {
	// Revision is the consensus revision being scored, echoed into the
	// report for status displays.
	Revision uint64

	// MaxGenerations bounds the iteration (default 4).
	MaxGenerations int

	// Candidates is the generation-0 pool (default DefaultCandidates).
	Candidates []Candidate

	// Service, when set, receives per-generation flight-recorder events.
	Service *Service
}

// Converge runs the iterative optimizer for one app against a consensus
// snapshot: each generation measures the surviving candidates through the
// memoized sweep path (exp.MeasureSweep → MeasureBatch), scores measured
// speedup against fleet-observed coverage, halves the pool around the
// winner, and stops when the winner repeats (or the pool is down to one).
//
// Determinism: measurements are content-addressed and bit-identical,
// coverage is a pure function of the consensus snapshot, and candidate
// order breaks ties — so two runs against byte-identical consensus
// sketches produce byte-identical reports (modulo nothing: even the digest
// matches). A later run against an advanced consensus re-scores from the
// cached measurements and only the coverage term moves.
func Converge(ctx context.Context, ec *exp.Context, app workload.App, consensus *sketch.Sketch, opts ConvergeOptions) (*Report, error) {
	if opts.MaxGenerations <= 0 {
		opts.MaxGenerations = 4
	}
	pool := opts.Candidates
	if pool == nil {
		pool = DefaultCandidates()
	}
	if len(pool) == 0 {
		return nil, fmt.Errorf("fleet: empty candidate pool")
	}
	if len(consensus.Keys) == 0 {
		return nil, fmt.Errorf("fleet: consensus for %s has no chain keys yet", consensus.App)
	}

	rep := &Report{App: app.Params.Name, Revision: opts.Revision, Devices: consensus.DevicesEstimate()}
	prof := consensus.Profile()

	prevWinner := ""
	for gen := 0; gen < opts.MaxGenerations; gen++ {
		g, err := runGeneration(ctx, ec, app, prof, pool, gen)
		if err != nil {
			return nil, err
		}
		rep.Generations = append(rep.Generations, *g)
		if opts.Service != nil && opts.Service.cfg.Ring != nil {
			opts.Service.cfg.Ring.Append("fleet:"+app.Params.Name, obs.EvGeneration,
				fmt.Sprintf("gen=%d winner=%s candidates=%d", gen, g.Winner, len(g.Scores)))
		}
		if g.Winner == prevWinner || len(pool) == 1 {
			rep.Converged = true
			rep.Winner = g.Winner
			break
		}
		prevWinner = g.Winner
		rep.Winner = g.Winner
		pool = survivors(pool, g)
	}

	// The winning selection over the consensus profile: what the fleet's
	// compilers would apply next, and the determinism witness.
	win := candidateByName(opts.Candidates, rep.Winner)
	prof.Select(win.Sel)
	digest := sha256.New()
	digest.Write([]byte(rep.App))
	n, covered := 0, int64(0)
	for i := range prof.Entries {
		e := &prof.Entries[i]
		if !e.Selected || (win.ExactLen > 0 && e.Length != win.ExactLen) {
			continue
		}
		n++
		covered += e.DynInstrs()
		digest.Write(keyBytes(e.Key))
	}
	rep.SelectedChains = n
	if prof.TotalDyn > 0 {
		rep.Coverage = float64(covered) / float64(prof.TotalDyn)
	}
	rep.WinnerDigest = hex.EncodeToString(digest.Sum(nil)[:8])
	return rep, nil
}

// runGeneration measures and scores one candidate pool.
func runGeneration(ctx context.Context, ec *exp.Context, app workload.App, prof *core.Profile, pool []Candidate, gen int) (*Generation, error) {
	var t *obs.Trace
	var parent string
	var start int64
	if tr, par, ok := obs.FromContext(ctx); ok {
		t, parent = tr, par
		start = t.Now()
	}

	units := make([]exp.MeasureUnit, 0, len(pool)+1)
	units = append(units, exp.MeasureUnit{Kind: exp.VarBase, Cfg: cpu.DefaultConfig()})
	for _, c := range pool {
		units = append(units, exp.MeasureUnit{Kind: c.Kind, Cfg: cpu.DefaultConfig()})
	}
	ms := ec.MeasureSweep(app, units, false)
	if err := ec.Err(); err != nil {
		return nil, err
	}
	base := ms[0]
	if base == nil {
		return nil, fmt.Errorf("fleet: base measurement unavailable")
	}

	g := &Generation{Index: gen}
	best := -1
	bestScore := math.Inf(-1)
	for i, c := range pool {
		m := ms[i+1]
		if m == nil {
			return nil, fmt.Errorf("fleet: measurement for candidate %s unavailable", c.Name)
		}
		cov := coverage(prof, c)
		sp := exp.Speedup(base, m)
		// A/B score: measured speedup weighted by how much of the fleet's
		// observed stream the policy reaches. The floor term keeps a
		// zero-coverage policy comparable instead of collapsing every score
		// to zero.
		score := (1 + sp/100) * (0.05 + cov)
		g.Scores = append(g.Scores, CandidateScore{Name: c.Name, SpeedupPct: sp, Coverage: cov, Score: score})
		if score > bestScore {
			best, bestScore = i, score
		}
	}
	g.Winner = pool[best].Name

	if t != nil {
		now := t.Now()
		t.Add(obs.Span{
			ID: fmt.Sprintf("fleet:g%d", gen), Parent: parent,
			Name: fmt.Sprintf("generation %d", gen), StartUS: start, DurUS: now - start,
			Attrs: []obs.Attr{
				obs.A("winner", g.Winner),
				obs.A("candidates", fmt.Sprint(len(g.Scores))),
			},
		})
	}
	return g, nil
}

// coverage scores one policy's consensus dynamic-stream coverage.
func coverage(prof *core.Profile, c Candidate) float64 {
	prof.Select(c.Sel)
	if c.ExactLen == 0 {
		return prof.SelectedCoverage
	}
	if prof.TotalDyn == 0 {
		return 0
	}
	var covered int64
	for i := range prof.Entries {
		e := &prof.Entries[i]
		if e.Selected && e.Length == c.ExactLen {
			covered += e.DynInstrs()
		}
	}
	return float64(covered) / float64(prof.TotalDyn)
}

// survivors keeps the top half of the pool by generation score (winner
// always included), preserving candidate order for deterministic
// tie-breaks.
func survivors(pool []Candidate, g *Generation) []Candidate {
	keep := (len(pool) + 1) / 2
	if keep < 1 {
		keep = 1
	}
	idx := make([]int, len(pool))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return g.Scores[idx[a]].Score > g.Scores[idx[b]].Score })
	sel := map[int]bool{}
	for _, i := range idx[:keep] {
		sel[i] = true
	}
	out := make([]Candidate, 0, keep)
	for i, c := range pool {
		if sel[i] || c.Name == g.Winner {
			out = append(out, c)
		}
	}
	return out
}

// candidateByName resolves a candidate from the generation-0 pool (nil pool
// selects the defaults).
func candidateByName(pool []Candidate, name string) Candidate {
	if pool == nil {
		pool = DefaultCandidates()
	}
	for _, c := range pool {
		if c.Name == name {
			return c
		}
	}
	return pool[0]
}

// keyBytes serializes a chain key for digesting.
func keyBytes(k core.ChainKey) []byte {
	b := make([]byte, 0, 5+core.MaxChainLen)
	b = append(b, byte(k.Func>>8), byte(k.Func), byte(k.Block>>8), byte(k.Block), k.N)
	b = append(b, k.Idx[:k.N]...)
	return b
}
