package fleet

import (
	"bytes"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"testing"
	"time"

	"critics/internal/sketch"
	"critics/internal/workload"
)

func testApp() workload.App { return workload.MobileApps()[0] }

// deviceSketches builds one round-1 sketch per simulated device.
func deviceSketches(t testing.TB, n int) []*sketch.Sketch {
	t.Helper()
	app := testApp()
	out := make([]*sketch.Sketch, n)
	for i := range out {
		out[i] = BuildDeviceSketch(app, fmt.Sprintf("device-%02d", i), 1)
	}
	return out
}

// waitSketches polls until the app's status reports n merged sketches.
func waitSketches(t *testing.T, s *Service, app string, n uint64) AppStatus {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		for _, as := range s.Status() {
			if as.App == app && as.Sketches >= n {
				return as
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %d sketches of %s", n, app)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestIngestFormsConsensus(t *testing.T) {
	sks := deviceSketches(t, 4)
	s := NewService(Config{})
	defer s.Drain()
	for _, sk := range sks {
		if !s.Offer(sk) {
			t.Fatal("offer refused with an empty queue")
		}
	}
	as := waitSketches(t, s, sks[0].App, uint64(len(sks)))
	if as.Keys == 0 || as.Revision == 0 {
		t.Fatalf("empty consensus: %+v", as)
	}
	if as.Devices < 3.5 || as.Devices > 4.5 {
		t.Errorf("devices estimate %.2f, want ~4", as.Devices)
	}

	// The service's consensus must byte-match a direct fold.
	want := sketch.New(sks[0].App)
	for _, sk := range sks {
		want.Merge(sk)
	}
	got, rev, ok := s.Consensus(sks[0].App)
	if !ok || rev == 0 {
		t.Fatalf("no consensus (ok=%t rev=%d)", ok, rev)
	}
	if !bytes.Equal(got.Encode(), want.Encode()) {
		t.Error("service consensus differs from a direct fold")
	}
}

func TestIngestOrderInvariant(t *testing.T) {
	sks := deviceSketches(t, 6)
	app := sks[0].App
	r := rand.New(rand.NewSource(7))

	digests := map[string]bool{}
	for trial := 0; trial < 3; trial++ {
		s := NewService(Config{})
		perm := r.Perm(len(sks))
		for _, i := range perm {
			if !s.Offer(sks[i]) {
				t.Fatal("offer refused")
			}
			// Duplicate some deliveries: re-sends must be idempotent.
			if i%2 == 0 {
				s.Offer(sks[i])
			}
		}
		s.Drain()
		got, _, ok := s.Consensus(app)
		if !ok {
			t.Fatal("no consensus after drain")
		}
		digests[got.Digest()] = true
	}
	if len(digests) != 1 {
		t.Errorf("arrival order changed the consensus: %v", digests)
	}
}

func TestOfferBackpressure(t *testing.T) {
	// Build the service by hand, without a merger, so the queue genuinely
	// fills: this pins the admission decision itself, not merge speed.
	s := &Service{
		cfg:   Config{QueueSize: 2},
		log:   slog.New(slog.NewTextHandler(io.Discard, nil)),
		m:     newFleetMetrics(nil),
		queue: make(chan *sketch.Sketch, 2),
		apps:  map[string]*appState{},
	}
	sk := sketch.New("app")
	if !s.Offer(sk) || !s.Offer(sk) {
		t.Fatal("offers refused below capacity")
	}
	for i := 0; i < 3; i++ {
		if s.Offer(sk) {
			t.Fatal("offer accepted beyond capacity")
		}
	}
}

func TestDrainRefusesAndFlushes(t *testing.T) {
	sks := deviceSketches(t, 2)
	s := NewService(Config{})
	for _, sk := range sks {
		s.Offer(sk)
	}
	s.Drain()
	if s.Offer(sks[0]) {
		t.Error("offer accepted after drain")
	}
	// Everything queued before the drain must have been merged.
	got, _, ok := s.Consensus(sks[0].App)
	if !ok {
		t.Fatal("no consensus after drain")
	}
	if got.TotalDyn == 0 {
		t.Error("queued sketches were dropped by drain")
	}
	s.Drain() // second drain is a no-op, not a panic
}

func TestDeviceSketchDeterministicAndMonotone(t *testing.T) {
	app := testApp()
	a := BuildDeviceSketch(app, "device-00", 1)
	b := BuildDeviceSketch(app, "device-00", 1)
	if !bytes.Equal(a.Encode(), b.Encode()) {
		t.Error("device sketch not deterministic")
	}

	// Round r+1 must dominate round r: merging the older sketch into the
	// newer one changes nothing, so a device re-send supersedes cleanly.
	r2 := BuildDeviceSketch(app, "device-00", 2)
	if r2.TotalDyn <= a.TotalDyn {
		t.Fatalf("round 2 TotalDyn %d not above round 1 %d", r2.TotalDyn, a.TotalDyn)
	}
	before := r2.Encode()
	if r2.Merge(a) {
		t.Error("round-1 sketch changed the round-2 consensus (not monotone)")
	}
	if !bytes.Equal(r2.Encode(), before) {
		t.Error("merge of a dominated sketch altered the bytes")
	}
}

func TestDistinctDevicesDistinctSketches(t *testing.T) {
	app := testApp()
	a := BuildDeviceSketch(app, "device-00", 1)
	b := BuildDeviceSketch(app, "device-01", 1)
	if bytes.Equal(a.Encode(), b.Encode()) {
		t.Error("distinct devices produced identical sketches; seed perturbation broken")
	}
	a.Merge(b)
	if est := a.DevicesEstimate(); est < 1.5 || est > 2.5 {
		t.Errorf("devices estimate %.2f, want ~2", est)
	}
}
