// Package fleet closes the paper's profile-guided loop at fleet scale: many
// devices stream bounded profile sketches (internal/sketch) to a criticd
// coordinator, which folds them into one per-app consensus — a lattice
// join, so any arrival order, duplication or re-send yields identical bytes
// — and iteratively re-scores candidate CritIC selection policies against
// that live aggregate through the memoized measurement path (optimizer.go).
//
// The ingest side mirrors criticd's admission-control philosophy: a
// bounded queue accepts decoded sketches with a non-blocking send, a full
// queue refuses with 429 + Retry-After at the HTTP layer, and a single
// merger goroutine folds the queue into the consensus — so coordinator
// memory is bounded by (queue depth × sketch size) + one consensus sketch
// per app, regardless of fleet size. Raw traces never cross the wire.
package fleet

import (
	"fmt"
	"io"
	"log/slog"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"critics/internal/obs"
	"critics/internal/sketch"
	"critics/internal/telemetry"
)

// Config tunes the ingest service. The zero value is usable; NewService
// fills defaults.
type Config struct {
	// QueueSize bounds sketches decoded but not yet merged. A full queue
	// makes Offer fail — the HTTP layer answers 429 + Retry-After. Default
	// 256.
	QueueSize int

	// Registry receives the critics_fleet_* metric families; nil disables
	// them.
	Registry *telemetry.Registry

	// Ring, when set, receives sketch-merged / sketch-rejected /
	// generation / converged flight-recorder events under the "fleet:<app>"
	// key.
	Ring *obs.Ring

	// Logger receives structured ingest logs; nil discards them.
	Logger *slog.Logger
}

// appState is one app's consensus and its converge history.
type appState struct {
	consensus *sketch.Sketch
	rev       uint64 // merges that changed the consensus
	sketches  uint64 // sketches merged (changed or not)
	report    *Report
}

// Service is the coordinator-side ingest pipeline: bounded queue in, one
// consensus sketch per app out. Construct with NewService, stop with Drain.
type Service struct {
	cfg Config
	log *slog.Logger
	m   *fleetMetrics

	queue    chan *sketch.Sketch
	wg       sync.WaitGroup
	draining atomic.Bool

	mu   sync.Mutex
	apps map[string]*appState
}

// NewService builds the service and starts its merger goroutine.
func NewService(cfg Config) *Service {
	if cfg.QueueSize <= 0 {
		cfg.QueueSize = 256
	}
	log := cfg.Logger
	if log == nil {
		log = slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{Level: slog.LevelError + 4}))
	}
	s := &Service{
		cfg:   cfg,
		log:   log,
		m:     newFleetMetrics(cfg.Registry),
		queue: make(chan *sketch.Sketch, cfg.QueueSize),
		apps:  map[string]*appState{},
	}
	s.wg.Add(1)
	go s.merger()
	return s
}

// Offer enqueues one decoded sketch without blocking. false means the queue
// is full (or the service is draining) and the caller should shed load —
// criticd answers 429 + Retry-After, and the device re-sends its (still
// cumulative) sketch later, losing nothing.
func (s *Service) Offer(sk *sketch.Sketch) bool {
	if s.draining.Load() {
		return false
	}
	select {
	case s.queue <- sk:
		s.m.queueDepth.Add(1)
		return true
	default:
		s.m.rejected.Inc()
		if s.cfg.Ring != nil {
			s.cfg.Ring.Append("fleet:"+sk.App, obs.EvSketchRejected, "ingest queue full")
		}
		return false
	}
}

// merger is the single consumer: it folds queued sketches into the per-app
// consensus. One goroutine suffices — a join is microseconds — and keeps
// the memory bound exact.
func (s *Service) merger() {
	defer s.wg.Done()
	for sk := range s.queue {
		s.m.queueDepth.Add(-1)
		start := time.Now()
		s.mu.Lock()
		st := s.apps[sk.App]
		if st == nil {
			st = &appState{consensus: sketch.New(sk.App)}
			s.apps[sk.App] = st
		}
		changed := st.consensus.Merge(sk)
		if changed {
			st.rev++
		}
		st.sketches++
		rev, devices := st.rev, st.consensus.DevicesEstimate()
		keys := len(st.consensus.Keys)
		s.mu.Unlock()

		s.m.mergeSeconds.Observe(time.Since(start).Seconds())
		s.m.sketches(sk.App).Inc()
		s.m.revision(sk.App).Set(int64(rev))
		s.m.devices(sk.App).Set(int64(devices + 0.5))
		if s.cfg.Ring != nil {
			s.cfg.Ring.Append("fleet:"+sk.App, obs.EvSketchMerged,
				fmt.Sprintf("rev=%d changed=%t keys=%d devices=%.0f", rev, changed, keys, devices))
		}
		s.log.Info("sketch merged", "app", sk.App, "rev", rev, "changed", changed, "keys", keys)
	}
}

// Consensus returns a deep snapshot of one app's consensus and its
// revision. ok is false while no sketch for the app has been merged.
func (s *Service) Consensus(app string) (sk *sketch.Sketch, rev uint64, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.apps[app]
	if st == nil || st.sketches == 0 {
		return nil, 0, false
	}
	return st.consensus.Clone(), st.rev, true
}

// NoteConverge records a finished optimizer run for the app's status and
// metrics (the criticd job runner calls it when a fleet job succeeds).
func (s *Service) NoteConverge(app string, r *Report) {
	s.mu.Lock()
	st := s.apps[app]
	if st == nil {
		st = &appState{consensus: sketch.New(app)}
		s.apps[app] = st
	}
	st.report = r
	s.mu.Unlock()
	s.m.generations(app).Add(int64(len(r.Generations)))
	v := int64(0)
	if r.Converged {
		v = 1
	}
	s.m.converged(app).Set(v)
	if s.cfg.Ring != nil {
		s.cfg.Ring.Append("fleet:"+app, obs.EvConverged,
			fmt.Sprintf("winner=%s generations=%d converged=%t digest=%s",
				r.Winner, len(r.Generations), r.Converged, r.WinnerDigest))
	}
}

// AppStatus is one app's fleet state on the wire (GET /v1/fleet).
type AppStatus struct {
	App      string  `json:"app"`
	Revision uint64  `json:"revision"`         // consensus-changing merges
	Sketches uint64  `json:"sketches"`         // sketches merged in total
	Devices  float64 `json:"devices_estimate"` // KMV distinct-device estimate
	TotalDyn uint64  `json:"total_dyn"`        // max dynamic instructions profiled by one device
	Keys     int     `json:"keys"`             // exact consensus chain keys
	Digest   string  `json:"consensus_digest"` // canonical-encoding digest

	// Last optimizer outcome, when a fleet job has run.
	Converged      bool   `json:"converged,omitempty"`
	Winner         string `json:"winner,omitempty"`
	Generations    int    `json:"generations,omitempty"`
	WinnerDigest   string `json:"winner_digest,omitempty"`
	SelectedChains int    `json:"selected_chains,omitempty"`
}

// Status snapshots every app's fleet state, sorted by app name.
func (s *Service) Status() []AppStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]AppStatus, 0, len(s.apps))
	for app, st := range s.apps {
		as := AppStatus{
			App:      app,
			Revision: st.rev,
			Sketches: st.sketches,
			Devices:  st.consensus.DevicesEstimate(),
			TotalDyn: st.consensus.TotalDyn,
			Keys:     len(st.consensus.Keys),
			Digest:   st.consensus.Digest(),
		}
		if r := st.report; r != nil {
			as.Converged = r.Converged
			as.Winner = r.Winner
			as.Generations = len(r.Generations)
			as.WinnerDigest = r.WinnerDigest
			as.SelectedChains = r.SelectedChains
		}
		out = append(out, as)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].App < out[j].App })
	return out
}

// Drain stops the service: new offers are refused, queued sketches are
// merged, then the merger exits. Safe to call more than once.
func (s *Service) Drain() {
	if !s.draining.Swap(true) {
		close(s.queue)
	}
	s.wg.Wait()
	if s.cfg.Ring != nil {
		s.cfg.Ring.Append("fleet:", obs.EvDrained, "fleet ingest drained")
	}
}
