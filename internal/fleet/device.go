package fleet

import (
	"critics/internal/core"
	"critics/internal/cpu"
	"critics/internal/dfg"
	"critics/internal/sketch"
	"critics/internal/trace"
	"critics/internal/workload"
)

// DevicePlan is the per-round device sampling plan: deliberately tiny next
// to the coordinator's experiment plans — a device profiles a handful of
// short windows during idle time. Rounds extend the plan (more samples of
// the same deterministic stream), so a device's round-r sketch dominates
// its round-(r-1) sketch and re-sends supersede cleanly under the lattice
// merge.
func DevicePlan(round int) trace.SamplePlan {
	if round < 0 {
		round = 0
	}
	return trace.SamplePlan{Samples: 2 + round, Length: 4000, Gap: 1500, Warmup: 1000}
}

// deviceSeed perturbs the trace seed per device so the fleet observes
// overlapping-but-distinct windows of the app — the situation consensus
// aggregation exists for. The perturbation is a pure function of the
// device id, so every run of the same device is deterministic.
func deviceSeed(a workload.App, deviceID string) int64 {
	return a.Params.Seed + int64(sketch.HashDevice(deviceID)&0x0F)
}

// BuildDeviceSketch is the device side of the loop: profile the app over
// the round's sampled windows, fold the result into a bounded sketch —
// chain keys with counts and criticality, the per-instruction fanout
// histogram, stall attribution from a micro cycle simulation of the
// sampled windows — and stamp the device into the KMV set. Everything is
// cumulative and monotone in round, and deterministic in (app, deviceID,
// round).
func BuildDeviceSketch(a workload.App, deviceID string, round int) *sketch.Sketch {
	p := workload.Generate(a.Params)
	ws := trace.Collect(p, deviceSeed(a, deviceID), DevicePlan(round))

	cfg := core.DefaultConfig()
	cfg.CoverageTarget = 0 // keep every candidate: selection happens at the coordinator
	cfg.MaxEntries = 0
	prof := core.BuildProfile(p, ws, cfg)

	s := sketch.New(a.Params.Name)
	s.AddProfile(prof)
	s.AddDevice(deviceID)

	// Fanout histogram and stall attribution over the same windows. Both
	// accumulate across the plan's windows; prefix-stable sampling keeps
	// them monotone in round.
	var fan [sketch.FanoutBuckets]uint64
	var bkd cpu.Breakdown
	sim := cpu.New(cpu.DefaultConfig())
	sim.OnCommit(func(_ *trace.Dyn, _ int32, r *cpu.Record) {
		bkd.Add(cpu.BreakdownOf(r))
	})
	for _, w := range ws {
		fans := dfg.Fanouts(w.Dyns, cfg.FanoutWindow)
		for _, f := range fans {
			fan[sketch.FanoutBucket(f)]++
		}
		sim.Run(w.Dyns, fans)
	}
	s.AddFanout(fan[:])
	s.AddStall(bkd)
	return s
}
