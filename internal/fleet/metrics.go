package fleet

import "critics/internal/telemetry"

// fleetMetrics are the critics_fleet_* registry series. Family names are
// pinned by the telemetry package's exposition golden test — rename there
// too.
type fleetMetrics struct {
	queueDepth   *telemetry.Gauge     // sketches decoded but not yet merged
	rejected     *telemetry.Counter   // offers refused by a full queue
	bytes        *telemetry.Counter   // sketch payload bytes accepted
	mergeSeconds *telemetry.Histogram // consensus join latency

	sketches    func(app string) *telemetry.Counter // sketches merged per app
	revision    func(app string) *telemetry.Gauge   // consensus-changing merges
	devices     func(app string) *telemetry.Gauge   // KMV distinct-device estimate
	generations func(app string) *telemetry.Counter // optimizer generations run
	converged   func(app string) *telemetry.Gauge   // 1 once the optimizer converged
}

// mergeSecondsBuckets cover 1µs..~1s joins.
var mergeSecondsBuckets = telemetry.ExpBuckets(0.000001, 4, 10)

func newFleetMetrics(reg *telemetry.Registry) *fleetMetrics {
	if reg == nil {
		reg = telemetry.NewRegistry() // discard: unscraped private registry
	}
	return &fleetMetrics{
		queueDepth: reg.Gauge("critics_fleet_queue_depth",
			"Profile sketches admitted to the ingest queue and not yet merged."),
		rejected: reg.Counter("critics_fleet_rejected_total",
			"Sketch submissions refused because the ingest queue was full."),
		bytes: reg.Counter("critics_fleet_sketch_bytes_total",
			"Encoded sketch bytes accepted for ingest."),
		mergeSeconds: reg.Histogram("critics_fleet_merge_seconds",
			"Latency of one consensus lattice join.", mergeSecondsBuckets),
		sketches: func(app string) *telemetry.Counter {
			return reg.Counter("critics_fleet_sketches_total",
				"Profile sketches merged into the consensus, per app.",
				telemetry.L("app", app))
		},
		revision: func(app string) *telemetry.Gauge {
			return reg.Gauge("critics_fleet_consensus_revision",
				"Merges that changed the app's consensus sketch.",
				telemetry.L("app", app))
		},
		devices: func(app string) *telemetry.Gauge {
			return reg.Gauge("critics_fleet_devices",
				"Bottom-k (KMV) estimate of distinct devices contributing to the consensus.",
				telemetry.L("app", app))
		},
		generations: func(app string) *telemetry.Counter {
			return reg.Counter("critics_fleet_generations_total",
				"Optimizer generations completed, per app.",
				telemetry.L("app", app))
		},
		converged: func(app string) *telemetry.Gauge {
			return reg.Gauge("critics_fleet_converged",
				"1 when the last optimizer run converged on a winner, else 0.",
				telemetry.L("app", app))
		},
	}
}

// AddBytes accounts accepted sketch payload bytes (the HTTP handler calls
// it after a successful decode+offer).
func (s *Service) AddBytes(n int) { s.m.bytes.Add(int64(n)) }
