package fleet

import (
	"context"
	"encoding/json"
	"math/rand"
	"strings"
	"testing"

	"critics/internal/exp"
	"critics/internal/sketch"
)

// optCtx returns a reduced-scale measurement context (QuickContext is still
// too heavy to run per-test with seven variants).
func optCtx() *exp.Context {
	c := exp.QuickContext()
	c.WarmupArch = 6_000
	c.WarmArch = 8_000
	c.MeasureArch = 25_000
	c.ProfilePlan.Samples = 4
	c.ProfilePlan.Length = 10_000
	return c
}

var sharedOptCtx = optCtx()

// fleetConsensus folds n device sketches into a consensus.
func fleetConsensus(t testing.TB, n int) *sketch.Sketch {
	t.Helper()
	acc := sketch.New(testApp().Params.Name)
	for _, sk := range deviceSketches(t, n) {
		acc.Merge(sk)
	}
	return acc
}

func TestConvergeReportShape(t *testing.T) {
	consensus := fleetConsensus(t, 3)
	rep, err := Converge(context.Background(), sharedOptCtx, testApp(), consensus, ConvergeOptions{Revision: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Generations) == 0 {
		t.Fatal("no generations ran")
	}
	if rep.Winner == "" || rep.WinnerDigest == "" {
		t.Fatalf("incomplete report: %+v", rep)
	}
	if rep.SelectedChains == 0 {
		t.Error("winning policy selected no chains from the consensus")
	}
	for _, g := range rep.Generations {
		if g.Winner == "" || len(g.Scores) == 0 {
			t.Fatalf("incomplete generation: %+v", g)
		}
	}
	// Generations narrow: each must be no larger than its predecessor.
	for i := 1; i < len(rep.Generations); i++ {
		if len(rep.Generations[i].Scores) > len(rep.Generations[i-1].Scores) {
			t.Errorf("generation %d grew: %d > %d candidates",
				i, len(rep.Generations[i].Scores), len(rep.Generations[i-1].Scores))
		}
	}
	s := rep.String()
	for _, want := range []string{"fleet converge", "gen 0", rep.Winner, rep.WinnerDigest} {
		if !strings.Contains(s, want) {
			t.Errorf("report text missing %q:\n%s", want, s)
		}
	}
}

// TestClosedLoopDeterminism is the acceptance gate: permuted (and partially
// duplicated) device arrival orders must yield byte-identical consensus
// sketches AND byte-identical converge reports.
func TestClosedLoopDeterminism(t *testing.T) {
	sks := deviceSketches(t, 5)
	app := sks[0].App
	r := rand.New(rand.NewSource(11))

	var reports [][]byte
	var digests []string
	for trial := 0; trial < 2; trial++ {
		s := NewService(Config{})
		for _, i := range r.Perm(len(sks)) {
			s.Offer(sks[i])
			if i%2 == 1 {
				s.Offer(sks[i]) // duplicated delivery
			}
		}
		s.Drain()
		consensus, rev, ok := s.Consensus(app)
		if !ok {
			t.Fatal("no consensus")
		}
		digests = append(digests, consensus.Digest())

		rep, err := Converge(context.Background(), sharedOptCtx, testApp(), consensus, ConvergeOptions{Revision: rev})
		if err != nil {
			t.Fatal(err)
		}
		// Revision counts changed merges, which depends on delivery order;
		// everything else must be identical. Compare canonical JSON with the
		// revision pinned.
		rep.Revision = 0
		b, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		reports = append(reports, b)
	}
	if digests[0] != digests[1] {
		t.Errorf("consensus digests diverged: %s vs %s", digests[0], digests[1])
	}
	if string(reports[0]) != string(reports[1]) {
		t.Errorf("converge reports diverged:\n%s\n%s", reports[0], reports[1])
	}
}

func TestConvergeRejectsEmptyConsensus(t *testing.T) {
	if _, err := Converge(context.Background(), sharedOptCtx, testApp(), sketch.New("x"), ConvergeOptions{}); err == nil {
		t.Error("converge accepted an empty consensus")
	}
}

func TestSurvivorsKeepWinnerAndHalve(t *testing.T) {
	pool := DefaultCandidates()
	g := &Generation{Winner: pool[len(pool)-1].Name}
	for i := range pool {
		g.Scores = append(g.Scores, CandidateScore{Name: pool[i].Name, Score: float64(i)})
	}
	out := survivors(pool, g)
	if len(out) > (len(pool)+1)/2+1 {
		t.Errorf("survivors did not halve: %d of %d", len(out), len(pool))
	}
	found := false
	for _, c := range out {
		if c.Name == g.Winner {
			found = true
		}
	}
	if !found {
		t.Error("winner dropped from the surviving pool")
	}
}
