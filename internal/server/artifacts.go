package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"

	"critics/internal/artifact"
	"critics/internal/dist"
	"critics/internal/obs"
	"critics/internal/scan"
	"critics/internal/telemetry"
)

// Chunked artifact upload wire protocol (PUT /v1/artifacts/{digest}):
//
//	X-Critics-Upload-Offset  byte offset of this chunk; defaults to 0.
//	                         A stale offset answers 409 with the committed
//	                         offset in X-Critics-Upload-Committed (and in the
//	                         JSON body) — the client resumes from there.
//	X-Critics-Upload-Final   "1" finalizes: the store verifies the content
//	                         hashes to {digest} and commits (422 on mismatch,
//	                         leaving nothing behind).
//
// Each chunk body is capped at MaxUploadChunkBytes (413 beyond it); the
// whole blob is capped by the store's MaxBlobBytes (also 413). Uploads
// already committed are idempotent no-ops. Concurrent uploads beyond the
// slot budget are refused with 429 + Retry-After — admission control, like
// the job queue.
const (
	HeaderUploadOffset    = "X-Critics-Upload-Offset"
	HeaderUploadFinal     = "X-Critics-Upload-Final"
	HeaderUploadCommitted = "X-Critics-Upload-Committed"
)

// MaxUploadChunkBytes bounds one upload chunk's body. Clients split larger
// blobs into multiple PUTs; the limit keeps any single request's buffering
// bounded regardless of blob size.
const MaxUploadChunkBytes = 8 << 20

// artifactUploadSlots bounds concurrent chunk uploads (backpressure for the
// disk-write path); excess requests answer 429 + Retry-After and the client
// resumes — nothing committed is lost.
const artifactUploadSlots = 4

// ArtifactUploadStatus is the PUT /v1/artifacts/{digest} success body.
type ArtifactUploadStatus struct {
	Digest    string `json:"digest"`
	Committed int64  `json:"committed"`
	Complete  bool   `json:"complete"`
}

// ArtifactListResponse is the GET /v1/artifacts body.
type ArtifactListResponse struct {
	Artifacts []artifact.Info `json:"artifacts"`
}

// ArtifactGCResponse is the POST /v1/artifacts/gc body.
type ArtifactGCResponse struct {
	Removed int   `json:"removed"`
	Freed   int64 `json:"freed"`
}

// scanMetrics are the scan pipeline's registry series (family names pinned
// by the telemetry exposition golden, like the rest of the server's).
type scanMetrics struct {
	chunks  func(path string) *telemetry.Counter
	reports *telemetry.Counter
}

func newScanMetrics(reg *telemetry.Registry) *scanMetrics {
	return &scanMetrics{
		chunks: func(path string) *telemetry.Counter {
			return reg.Counter("critics_scan_chunks_scored_total",
				"Trace chunks scored by scan jobs, by execution path (local, remote).",
				telemetry.L("path", path))
		},
		reports: reg.Counter("critics_scan_reports_total",
			"Scan reports produced."),
	}
}

// ---- artifact HTTP handlers ----------------------------------------------

func (s *Server) handleArtifactPut(w http.ResponseWriter, r *http.Request) {
	select {
	case s.uploadSlots <- struct{}{}:
		defer func() { <-s.uploadSlots }()
	default:
		w.Header().Set("Retry-After", fmt.Sprint(retryAfterSeconds))
		writeErr(w, http.StatusTooManyRequests,
			fmt.Sprintf("all %d upload slots busy; retry after %ds", artifactUploadSlots, retryAfterSeconds), true)
		return
	}

	digest := r.PathValue("digest")
	var offset int64
	if h := r.Header.Get(HeaderUploadOffset); h != "" {
		v, err := strconv.ParseInt(h, 10, 64)
		if err != nil || v < 0 {
			writeErr(w, http.StatusBadRequest, HeaderUploadOffset+" must be a non-negative decimal", false)
			return
		}
		offset = v
	}
	final := r.Header.Get(HeaderUploadFinal) == "1" || r.Header.Get(HeaderUploadFinal) == "true"

	body := http.MaxBytesReader(w, r.Body, MaxUploadChunkBytes)
	committed, complete, err := s.artifacts.PutChunk(digest, offset, body, final)
	if err != nil {
		var offErr *artifact.OffsetError
		var maxErr *http.MaxBytesError
		switch {
		case errors.As(err, &offErr):
			w.Header().Set(HeaderUploadCommitted, strconv.FormatInt(offErr.Committed, 10))
			writeJSON(w, http.StatusConflict, ArtifactUploadStatus{
				Digest: digest, Committed: offErr.Committed, Complete: false,
			})
		case errors.As(err, &maxErr):
			writeErr(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("chunk exceeds %d bytes; split the upload into smaller chunks", int64(MaxUploadChunkBytes)), false)
		case errors.Is(err, artifact.ErrTooLarge):
			writeErr(w, http.StatusRequestEntityTooLarge, err.Error(), false)
		case errors.Is(err, artifact.ErrDigestMismatch):
			writeErr(w, http.StatusUnprocessableEntity, err.Error(), false)
		default:
			writeErr(w, http.StatusBadRequest, err.Error(), false)
		}
		return
	}
	writeJSON(w, http.StatusOK, ArtifactUploadStatus{Digest: digest, Committed: committed, Complete: complete})
}

func (s *Server) handleArtifactGet(w http.ResponseWriter, r *http.Request) {
	digest := r.PathValue("digest")
	if r.URL.Query().Get("stat") == "1" {
		info, ok := s.artifacts.Stat(digest)
		if !ok {
			writeArtifactErr(w, digest, artifact.ErrNotFound)
			return
		}
		writeJSON(w, http.StatusOK, info)
		return
	}
	rc, size, err := s.artifacts.Open(digest)
	if err != nil {
		writeArtifactErr(w, digest, err)
		return
	}
	defer rc.Close()
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.FormatInt(size, 10))
	w.WriteHeader(http.StatusOK)
	_, _ = io.Copy(w, rc)
}

func (s *Server) handleArtifactList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, ArtifactListResponse{Artifacts: s.artifacts.List()})
}

func (s *Server) handleArtifactGC(w http.ResponseWriter, _ *http.Request) {
	removed, freed := s.artifacts.GC()
	writeJSON(w, http.StatusOK, ArtifactGCResponse{Removed: removed, Freed: freed})
}

func writeArtifactErr(w http.ResponseWriter, digest string, err error) {
	if errors.Is(err, artifact.ErrNotFound) {
		writeErr(w, http.StatusNotFound, fmt.Sprintf("no artifact %s", digest), false)
		return
	}
	writeErr(w, http.StatusBadRequest, err.Error(), false)
}

// ---- scan job execution --------------------------------------------------

// executeScan runs one KindScan job: build the image index, score every
// trace chunk — across the dist fleet when one is healthy, locally
// otherwise — and merge into the ranked report. Chunk scoring is
// integer-only and position-independent and Merge orders deterministically,
// so the distributed report is byte-identical to the local one.
func (s *Server) executeScan(ctx context.Context, req SubmitRequest) ([]byte, error) {
	opt := scan.Options{}

	t, parent, obsOn := obs.FromContext(ctx)
	var tIndex int64
	if obsOn {
		tIndex = t.Now()
	}

	imgRC, _, err := s.artifacts.Open(req.ImageDigest)
	if err != nil {
		return nil, fmt.Errorf("image artifact %s: %w (chunk-upload it to PUT /v1/artifacts/{digest} first)", req.ImageDigest, err)
	}
	idx, err := scan.BuildIndex(imgRC)
	imgRC.Close()
	if err != nil {
		return nil, fmt.Errorf("decoding image %s: %w", req.ImageDigest, err)
	}
	if obsOn {
		t.Add(obs.Span{ID: "scan-index", Parent: parent, Name: "scan-index",
			StartUS: tIndex, DurUS: t.Now() - tIndex,
			Attrs: []obs.Attr{obs.A("image", req.ImageDigest)}})
	}

	trcRC, _, err := s.artifacts.Open(req.TraceDigest)
	if err != nil {
		return nil, fmt.Errorf("trace artifact %s: %w (chunk-upload it to PUT /v1/artifacts/{digest} first)", req.TraceDigest, err)
	}
	tr, err := scan.NewTraceReader(trcRC)
	if err != nil {
		trcRC.Close()
		return nil, fmt.Errorf("reading trace %s: %w", req.TraceDigest, err)
	}
	n := tr.Chunks()
	trcRC.Close()

	var tScore int64
	if obsOn {
		tScore = t.Now()
	}
	var results []scan.ChunkResult
	coord := s.cfg.Coordinator
	if coord != nil && coord.HealthyWorkers() > 0 && n > 0 {
		results, err = s.scanDistributed(ctx, idx, req, n, opt, coord)
	} else {
		results, err = s.scanLocal(idx, req.TraceDigest, allChunks(n), opt)
	}
	if err != nil {
		return nil, err
	}
	if obsOn {
		t.Add(obs.Span{ID: "scan-chunks", Parent: parent, Name: "scan-chunks",
			StartUS: tScore, DurUS: t.Now() - tScore,
			Attrs: []obs.Attr{obs.A("chunks", strconv.Itoa(n))}})
	}

	rep := scan.Merge(req.ImageDigest, req.TraceDigest, idx, results)
	s.scanM.reports.Inc()
	res := Result{Kind: req.Kind, Text: rep.Text(), Report: rep}
	return json.Marshal(res)
}

// scanLocal scores the given chunks on the daemon itself.
func (s *Server) scanLocal(idx *scan.Index, traceDigest string, chunks []int, opt scan.Options) ([]scan.ChunkResult, error) {
	rc, _, err := s.artifacts.Open(traceDigest)
	if err != nil {
		return nil, fmt.Errorf("trace artifact %s: %w", traceDigest, err)
	}
	defer rc.Close()
	results, err := scan.ScoreSelected(idx, rc, chunks, opt)
	if err != nil {
		return nil, fmt.Errorf("reading trace %s: %w", traceDigest, err)
	}
	s.scanM.chunks("local").Add(int64(len(results)))
	return results, nil
}

// scanDistributed fans the chunk range out across the worker fleet in
// batches. A batch whose every dispatch attempt fails falls back to local
// scoring — a degraded fleet degrades throughput, never correctness or the
// report bytes.
func (s *Server) scanDistributed(ctx context.Context, idx *scan.Index, req SubmitRequest, n int, opt scan.Options, coord *dist.Coordinator) ([]scan.ChunkResult, error) {
	batches := batchChunks(n, 2*coord.HealthyWorkers())
	type out struct {
		results []scan.ChunkResult
		err     error
	}
	outs := make([]out, len(batches))
	var wg sync.WaitGroup
	for i, batch := range batches {
		wg.Add(1)
		go func(i int, batch []int) {
			defer wg.Done()
			res, err := coord.ScanRemote(ctx, dist.ScanTask{
				ImageDigest: req.ImageDigest,
				TraceDigest: req.TraceDigest,
				Chunks:      batch,
				Opt:         opt,
			})
			if err == nil {
				s.scanM.chunks("remote").Add(int64(len(res)))
				outs[i] = out{results: res}
				return
			}
			if ctx.Err() != nil {
				outs[i] = out{err: ctx.Err()}
				return
			}
			s.log.Warn("scan batch failed remotely; computing locally", "batch", i, "err", err)
			res, lerr := s.scanLocal(idx, req.TraceDigest, batch, opt)
			outs[i] = out{results: res, err: lerr}
		}(i, batch)
	}
	wg.Wait()
	var results []scan.ChunkResult
	for _, o := range outs {
		if o.err != nil {
			return nil, o.err
		}
		results = append(results, o.results...)
	}
	return results, nil
}

// allChunks returns [0, n).
func allChunks(n int) []int {
	chunks := make([]int, n)
	for i := range chunks {
		chunks[i] = i
	}
	return chunks
}

// batchChunks splits [0, n) into at most k contiguous batches of
// near-equal size.
func batchChunks(n, k int) [][]int {
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	batches := make([][]int, 0, k)
	for i := 0; i < k; i++ {
		lo, hi := i*n/k, (i+1)*n/k
		if lo == hi {
			continue
		}
		batch := make([]int, 0, hi-lo)
		for c := lo; c < hi; c++ {
			batch = append(batch, c)
		}
		batches = append(batches, batch)
	}
	return batches
}
