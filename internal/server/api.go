// Package server implements criticd's long-lived profiling-and-optimization
// service: a REST/JSON API over a bounded job queue with admission control,
// per-job deadlines and cancellation, panic isolation, idempotent retries,
// graceful shutdown, and a process-wide shared artifact cache so repeated
// requests are served from memory.
//
// The API surface (all under /v1 except the probes):
//
//	POST   /v1/jobs             submit a job; 202 with the job status,
//	                            429 + Retry-After when the queue is full
//	GET    /v1/jobs             list job statuses (newest first)
//	GET    /v1/jobs/{id}        one job's status
//	GET    /v1/jobs/{id}/result the result document once the job succeeded
//	DELETE /v1/jobs/{id}        cancel a queued or running job
//	POST   /v1/profiles         ingest one device profile sketch (binary wire
//	                            form); 202, 429 + Retry-After under saturation
//	PUT    /v1/artifacts/{digest} chunked, resumable, content-addressed blob
//	                            upload (see artifacts.go for the header
//	                            protocol); 413 beyond the chunk/blob limits
//	GET    /v1/artifacts/{digest} the blob bytes (?stat=1 for metadata)
//	GET    /v1/artifacts        list stored artifacts
//	POST   /v1/artifacts/gc     remove unreferenced artifacts
//	GET    /v1/fleet            per-app fleet consensus + converge status
//	GET    /v1/apps             the workload catalog, by suite
//	GET    /v1/experiments      the experiment ids the daemon can run
//	GET    /healthz             liveness (200 while the process serves)
//	GET    /readyz              readiness (503 while draining)
//	GET    /metrics             Prometheus exposition of the registry
//
// cmd/criticd wraps the server in a daemon; cmd/criticctl and Client are the
// callers.
package server

import (
	"time"

	"critics/internal/fleet"
)

// JobKind selects what a job runs.
type JobKind string

// The supported job kinds.
const (
	KindOptimize   JobKind = "optimize"   // full pipeline on one app (critics.OptimizeApp)
	KindProfile    JobKind = "profile"    // CritIC profile only (critics.BuildProfile)
	KindExperiment JobKind = "experiment" // one table/figure runner (critics.Experiment)
	KindTrace      JobKind = "trace"      // optimize + Chrome trace export (critics.TraceApp)
	KindFleet      JobKind = "fleet"      // fleet converge against the app's consensus (critics.FleetConverge)
	KindScan       JobKind = "scan"       // source-free scan of an uploaded binary image + trace (internal/scan)
)

// SubmitRequest is the POST /v1/jobs body.
type SubmitRequest struct {
	// Kind defaults to "optimize" when an app is given and "experiment"
	// when only an experiment id is.
	Kind JobKind `json:"kind,omitempty"`

	// App names the workload for optimize/profile/trace jobs. Matched
	// case-insensitively against the catalog and canonicalized.
	App string `json:"app,omitempty"`

	// Experiment is the experiment id for experiment jobs (e.g. "fig10a").
	Experiment string `json:"experiment,omitempty"`

	// Quick selects the reduced-scale windows (tests, demos).
	Quick bool `json:"quick,omitempty"`

	// Workers bounds the per-job shard pool; 0 uses the daemon default.
	// Results are identical for every value.
	Workers int `json:"workers,omitempty"`

	// MeasureInstrs overrides the measured window size, in architectural
	// instructions (0 keeps the scale's default).
	MeasureInstrs int `json:"measure_instrs,omitempty"`

	// TimeoutMS caps the job's execution time; 0 uses the daemon default.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`

	// IdempotencyKey makes retries safe: a resubmit bearing a key the
	// daemon has already seen returns the existing job instead of enqueuing
	// a duplicate.
	IdempotencyKey string `json:"idempotency_key,omitempty"`

	// ImageDigest and TraceDigest reference scan-job inputs already in the
	// daemon's artifact store ("sha256:<64 hex>") — large blobs never ride
	// inside a job body; chunk-upload them to PUT /v1/artifacts/{digest}
	// first.
	ImageDigest string `json:"image_digest,omitempty"`
	TraceDigest string `json:"trace_digest,omitempty"`
}

// JobState is a job's position in its lifecycle.
type JobState string

// Job lifecycle states. Terminal states are succeeded, failed and canceled.
const (
	StateQueued    JobState = "queued"
	StateRunning   JobState = "running"
	StateSucceeded JobState = "succeeded"
	StateFailed    JobState = "failed"
	StateCanceled  JobState = "canceled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == StateSucceeded || s == StateFailed || s == StateCanceled
}

// JobStatus is the wire form of a job's state, returned by submit, status
// and list.
type JobStatus struct {
	ID         string   `json:"id"`
	Kind       JobKind  `json:"kind"`
	App        string   `json:"app,omitempty"`
	Experiment string   `json:"experiment,omitempty"`
	State      JobState `json:"state"`

	// Error describes why a failed/canceled job ended; Retryable marks
	// failures a client may safely resubmit (queue drained at shutdown,
	// deadline exceeded).
	Error     string `json:"error,omitempty"`
	Retryable bool   `json:"retryable,omitempty"`

	CreatedAt  time.Time  `json:"created_at"`
	StartedAt  *time.Time `json:"started_at,omitempty"`
	FinishedAt *time.Time `json:"finished_at,omitempty"`
}

// Duration returns the job's execution time so far (zero before it starts).
func (s JobStatus) Duration() time.Duration {
	if s.StartedAt == nil {
		return 0
	}
	end := time.Now()
	if s.FinishedAt != nil {
		end = *s.FinishedAt
	}
	return end.Sub(*s.StartedAt)
}

// Result is the GET /v1/jobs/{id}/result document of a succeeded job.
// Exactly which fields are set depends on the kind:
//
//	optimize    Text + Report
//	profile     Text + Profile (the criticprof JSON artifact)
//	experiment  Text (the runner's formatted rows)
//	trace       Text + Report + Trace (Chrome trace-event JSON)
//	fleet       Text + Report (the fleet.Report converge document)
//	scan        Text + Report (the scan.Report ranked-opportunity document)
type Result struct {
	Kind       JobKind `json:"kind"`
	App        string  `json:"app,omitempty"`
	Experiment string  `json:"experiment,omitempty"`

	// Text is the human-readable report, identical to what the equivalent
	// one-shot CLI run prints.
	Text string `json:"text"`

	Report  any `json:"report,omitempty"`
	Profile any `json:"profile,omitempty"`
	Trace   any `json:"trace,omitempty"`
}

// ErrorResponse is the body of every non-2xx API response.
type ErrorResponse struct {
	Error string `json:"error"`

	// Retryable marks conditions worth retrying (queue full, draining);
	// 429 responses also carry a Retry-After header.
	Retryable bool `json:"retryable,omitempty"`
}

// AppsResponse is the GET /v1/apps body: catalog names by suite.
type AppsResponse struct {
	Suites map[string][]string `json:"suites"`
}

// ExperimentsResponse is the GET /v1/experiments body.
type ExperimentsResponse struct {
	Experiments []string `json:"experiments"`
}

// FleetResponse is the GET /v1/fleet body: per-app consensus and converge
// state, sorted by app name.
type FleetResponse struct {
	Apps []fleet.AppStatus `json:"apps"`
}
