package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// blockingStub returns a stub runner that parks every job until release is
// closed (or its context is cancelled).
func blockingStub(release <-chan struct{}, started chan<- struct{}) func(ctx context.Context, req SubmitRequest) ([]byte, error) {
	return func(ctx context.Context, req SubmitRequest) ([]byte, error) {
		if started != nil {
			started <- struct{}{}
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-release:
			return json.Marshal(Result{Kind: req.Kind, App: req.App, Text: "ok"})
		}
	}
}

// TestAdmissionControl fills a queue of 1 behind a single stuck worker and
// proves the contract from the design: the next submit is refused with
// 429 + Retry-After immediately (never blocking the accept loop), /healthz
// stays 200 throughout, and capacity freed by the stuck job finishing admits
// new work again.
func TestAdmissionControl(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 16) // every admitted job signals once
	cfg := Config{QueueSize: 1, Workers: 1}
	cfg.execute = blockingStub(release, started)
	_, c := start(t, cfg)
	ctx := context.Background()

	// Job 1 occupies the worker; job 2 occupies the only queue slot.
	j1, err := c.Submit(ctx, SubmitRequest{App: "acrobat"})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if _, err := c.Submit(ctx, SubmitRequest{App: "maps"}); err != nil {
		t.Fatal(err)
	}

	// Job 3 must be refused, and refused fast — a submit that blocks on a
	// full queue would hang the accept loop.
	done := make(chan error, 1)
	go func() {
		_, err := c.Submit(ctx, SubmitRequest{App: "browser"})
		done <- err
	}()
	select {
	case err = <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("submit against a full queue blocked instead of returning 429")
	}
	apiErr, ok := err.(*APIError)
	if !ok || apiErr.Code != http.StatusTooManyRequests {
		t.Fatalf("full-queue submit: %v, want 429", err)
	}
	if !apiErr.Retryable || apiErr.RetryAfter <= 0 {
		t.Errorf("429 missing retry hints: retryable=%v retryAfter=%v", apiErr.Retryable, apiErr.RetryAfter)
	}

	// Liveness is independent of queue pressure.
	resp, err := http.Get(c.base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/healthz under full queue: %d", resp.StatusCode)
	}

	// Draining the worker frees capacity; admission recovers.
	close(release)
	if _, err := c.Wait(ctx, j1.ID, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err = c.Submit(ctx, SubmitRequest{App: "browser"}); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("admission did not recover after drain: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The refusals were counted.
	resp, err = http.Get(c.base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	buf := make([]byte, 64<<10)
	for {
		n, rerr := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if rerr != nil {
			break
		}
	}
	resp.Body.Close()
	if !strings.Contains(sb.String(), `critics_server_jobs_total{outcome="rejected"}`) {
		t.Error("rejected outcome not exported")
	}
}

// TestGracefulShutdown: Shutdown lets the in-flight job complete, fails the
// queued one with a retryable status, refuses new submissions with 503, and
// flips /readyz to 503 while /healthz stays 200.
func TestGracefulShutdown(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 1)
	cfg := Config{QueueSize: 4, Workers: 1}
	cfg.execute = blockingStub(release, started)
	s, c := start(t, cfg)
	ctx := context.Background()

	inflight, err := c.Submit(ctx, SubmitRequest{App: "acrobat"})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	queued, err := c.Submit(ctx, SubmitRequest{App: "maps"})
	if err != nil {
		t.Fatal(err)
	}

	shutdownErr := make(chan error, 1)
	go func() {
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownErr <- s.Shutdown(sctx)
	}()

	// Drain mode is observable before the in-flight job finishes.
	waitFor(t, func() bool { return s.draining.Load() })
	if _, err := c.Submit(ctx, SubmitRequest{App: "browser"}); err == nil {
		t.Error("submit during drain succeeded")
	} else if apiErr, ok := err.(*APIError); !ok || apiErr.Code != http.StatusServiceUnavailable || !apiErr.Retryable {
		t.Errorf("submit during drain: %v, want retryable 503", err)
	}
	for path, want := range map[string]int{"/healthz": http.StatusOK, "/readyz": http.StatusServiceUnavailable} {
		resp, err := http.Get(c.base + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Errorf("%s during drain: %d, want %d", path, resp.StatusCode, want)
		}
	}

	// Release the worker: the in-flight job must complete normally.
	close(release)
	if err := <-shutdownErr; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	st, err := c.Status(ctx, inflight.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateSucceeded {
		t.Errorf("in-flight job after drain: %s (%s)", st.State, st.Error)
	}
	st, err = c.Status(ctx, queued.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateFailed || !st.Retryable {
		t.Errorf("queued job after drain: state=%s retryable=%v", st.State, st.Retryable)
	}
}

// TestShutdownDeadline: when the drain grace expires, in-flight job contexts
// are cancelled so Shutdown still returns (with ctx's error) instead of
// hanging on a stuck workload.
func TestShutdownDeadline(t *testing.T) {
	started := make(chan struct{}, 1)
	cfg := Config{QueueSize: 4, Workers: 1}
	cfg.execute = blockingStub(nil, started) // only ctx.Done() can unblock it
	s, c := start(t, cfg)

	st, err := c.Submit(context.Background(), SubmitRequest{App: "acrobat"})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	sctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(sctx); err != context.DeadlineExceeded {
		t.Fatalf("shutdown past deadline: %v, want context.DeadlineExceeded", err)
	}
	// The job was cancelled, not left running.
	js, err := c.Status(context.Background(), st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !js.State.Terminal() {
		t.Errorf("stuck job after forced shutdown: %s", js.State)
	}
}

// TestConcurrentHammer drives submit/status/cancel/list/scrape from many
// goroutines at once; run with -race this is the server's data-race check.
func TestConcurrentHammer(t *testing.T) {
	cfg := Config{QueueSize: 16, Workers: 4}
	cfg.execute = func(ctx context.Context, req SubmitRequest) ([]byte, error) {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(time.Duration(len(req.App)) * time.Millisecond):
		}
		return json.Marshal(Result{Kind: req.Kind, App: req.App, Text: "ok"})
	}
	_, c := start(t, cfg)
	ctx := context.Background()
	apps := []string{"acrobat", "maps", "music", "youtube"}

	var wg sync.WaitGroup
	ids := make(chan string, 256)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 16; i++ {
				st, err := c.Submit(ctx, SubmitRequest{App: apps[(g+i)%len(apps)]})
				if err != nil {
					var apiErr *APIError
					if errors.As(err, &apiErr) && apiErr.Code == http.StatusTooManyRequests {
						continue // queue full is a valid outcome under load
					}
					t.Errorf("submit: %v", err)
					return
				}
				ids <- st.ID
			}
		}(g)
	}
	var rg sync.WaitGroup
	stopReaders := make(chan struct{})
	for g := 0; g < 4; g++ {
		rg.Add(1)
		go func(g int) {
			defer rg.Done()
			for {
				select {
				case <-stopReaders:
					return
				case id := <-ids:
					if _, err := c.Status(ctx, id); err != nil {
						t.Errorf("status: %v", err)
					}
					if g == 0 { // one goroutine also cancels
						_, _ = c.Cancel(ctx, id)
					}
				default:
					resp, err := http.Get(c.base + "/metrics")
					if err == nil {
						resp.Body.Close()
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(stopReaders)
	rg.Wait()
}

// waitFor polls cond until true or fails the test after 5s.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in 5s")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
