package server

import (
	"context"
	"sync"
	"time"

	"critics/internal/obs"
)

// job is one unit of queued/executing work. State transitions go through the
// mutex-guarded methods so the HTTP handlers, the worker loop and the
// shutdown drain can race freely:
//
//	queued → running → succeeded | failed
//	queued → canceled            (cancel before a worker picks it up)
//	queued → failed(retryable)   (drained at shutdown)
//	running → canceled           (cancel propagated through the job context)
type job struct {
	id  string
	req SubmitRequest

	// trace is the job's span store, set at admission before the job enters
	// the queue (the channel send orders it before any worker access) and
	// never reassigned; it needs no lock.
	trace *obs.Trace

	mu       sync.Mutex
	state    JobState
	errMsg   string
	retry    bool
	result   []byte // marshaled Result, set on success
	created  time.Time
	started  time.Time
	finished time.Time

	// cancel aborts the job's run context. Set when the job starts; calling
	// it is how DELETE reaches a running job. requested remembers a cancel
	// that arrived while the job was still queued-to-running racing.
	cancel    context.CancelFunc
	requested bool
}

func newJob(id string, req SubmitRequest) *job {
	return &job{id: id, req: req, state: StateQueued, created: time.Now()}
}

// Status snapshots the job for the wire.
func (j *job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:         j.id,
		Kind:       j.req.Kind,
		App:        j.req.App,
		Experiment: j.req.Experiment,
		State:      j.state,
		Error:      j.errMsg,
		Retryable:  j.retry,
		CreatedAt:  j.created,
	}
	if !j.started.IsZero() {
		t := j.started
		st.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.FinishedAt = &t
	}
	return st
}

// tryStart moves queued → running and installs the cancel func. It fails
// when the job was canceled (or otherwise left the queued state) first; the
// worker then skips it.
func (j *job) tryStart(cancel context.CancelFunc) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued || j.requested {
		return false
	}
	j.state = StateRunning
	j.started = time.Now()
	j.cancel = cancel
	return true
}

// requestCancel asks the job to stop: a queued job is canceled outright, a
// running one has its context cancelled (the worker records the terminal
// state). Terminal jobs are left untouched.
func (j *job) requestCancel() {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.requested = true
	switch j.state {
	case StateQueued:
		j.state = StateCanceled
		j.errMsg = "canceled before execution"
		j.finished = time.Now()
	case StateRunning:
		if j.cancel != nil {
			j.cancel()
		}
	}
}

// finish records a terminal state from the worker. A job whose cancellation
// was requested lands in canceled regardless of how execution returned.
func (j *job) finish(result []byte, errMsg string, retryable bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return
	}
	j.finished = time.Now()
	switch {
	case j.requested:
		j.state = StateCanceled
		if errMsg == "" {
			errMsg = "canceled"
		}
		j.errMsg = errMsg
	case errMsg != "":
		j.state = StateFailed
		j.errMsg = errMsg
		j.retry = retryable
	default:
		j.state = StateSucceeded
		j.result = result
	}
}

// failQueued moves a still-queued job to failed-retryable (the shutdown
// drain). Returns false if the job had already left the queue.
func (j *job) failQueued(msg string) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	j.state = StateFailed
	j.errMsg = msg
	j.retry = true
	j.finished = time.Now()
	return true
}

// Result returns the marshaled result document of a succeeded job.
func (j *job) Result() ([]byte, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result, j.state == StateSucceeded
}
