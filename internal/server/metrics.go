package server

import (
	"net/http"
	"strconv"
	"time"

	"critics/internal/telemetry"
)

// metrics are the server's registry series. Family names are pinned by the
// telemetry package's exposition golden test — rename there too.
type metrics struct {
	queueDepth *telemetry.Gauge // jobs admitted but not yet started
	inflight   *telemetry.Gauge // jobs currently executing

	// outcomes counts terminal job dispositions plus admissions the queue
	// refused (outcome="rejected") and queued jobs failed by a drain
	// (outcome="dropped").
	outcomes func(outcome string) *telemetry.Counter

	// requestSeconds observes HTTP handler latency per route pattern;
	// requests counts them per (route, status code).
	requestSeconds func(endpoint string) *telemetry.Histogram
	requests       func(endpoint string, code int) *telemetry.Counter
}

// httpSecondsBuckets cover 100µs..~50s handler latencies.
var httpSecondsBuckets = telemetry.ExpBuckets(0.0001, 4, 10)

func newMetrics(reg *telemetry.Registry) *metrics {
	return &metrics{
		queueDepth: reg.Gauge("critics_server_queue_depth",
			"Jobs admitted to the queue and not yet started."),
		inflight: reg.Gauge("critics_server_inflight_jobs",
			"Jobs currently executing."),
		outcomes: func(outcome string) *telemetry.Counter {
			return reg.Counter("critics_server_jobs_total",
				"Jobs by disposition: succeeded, failed, canceled, panic, rejected (queue full), dropped (drained at shutdown).",
				telemetry.L("outcome", outcome))
		},
		requestSeconds: func(endpoint string) *telemetry.Histogram {
			return reg.Histogram("critics_server_http_request_seconds",
				"HTTP handler latency by route.",
				httpSecondsBuckets, telemetry.L("endpoint", endpoint))
		},
		requests: func(endpoint string, code int) *telemetry.Counter {
			return reg.Counter("critics_server_http_requests_total",
				"HTTP requests by route and status code.",
				telemetry.L("endpoint", endpoint), telemetry.L("code", strconv.Itoa(code)))
		},
	}
}

// statusRecorder captures the status code a handler writes.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with the per-endpoint latency histogram and
// request counter. endpoint is the route pattern, not the raw path, so the
// label set stays bounded.
func (m *metrics) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		start := time.Now()
		h(rec, r)
		m.requestSeconds(endpoint).Observe(time.Since(start).Seconds())
		m.requests(endpoint, rec.code).Inc()
	}
}
