package server

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"

	"critics/internal/fleet"
	"critics/internal/workload"
)

// postDeviceSketches builds and ingests one round-1 sketch per device,
// returning the canonical app name.
func postDeviceSketches(t *testing.T, c *Client, devices int) string {
	t.Helper()
	app := workload.MobileApps()[0]
	ctx := context.Background()
	for i := 0; i < devices; i++ {
		sk := fleet.BuildDeviceSketch(app, deviceName(i), 1)
		if err := c.PostProfile(ctx, sk.Encode()); err != nil {
			t.Fatalf("post profile: %v", err)
		}
	}
	return app.Params.Name
}

func deviceName(i int) string { return string([]byte{'d', byte('0' + i)}) }

// waitFleetSketches polls GET /v1/fleet until the app reports n merged
// sketches (ingest is asynchronous behind the bounded queue).
func waitFleetSketches(t *testing.T, c *Client, app string, n uint64) fleet.AppStatus {
	t.Helper()
	ctx := context.Background()
	deadline := time.Now().Add(10 * time.Second)
	for {
		apps, err := c.Fleet(ctx)
		if err != nil {
			t.Fatalf("fleet status: %v", err)
		}
		for _, as := range apps {
			if as.App == app && as.Sketches >= n {
				return as
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %d sketches of %s (have %+v)", n, app, apps)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestProfileIngest(t *testing.T) {
	_, c := start(t, stubConfig(echoStub))
	ctx := context.Background()

	app := postDeviceSketches(t, c, 2)
	as := waitFleetSketches(t, c, app, 2)
	if as.Keys == 0 || as.Digest == "" {
		t.Fatalf("empty consensus after ingest: %+v", as)
	}
	if as.Devices < 1.5 || as.Devices > 2.5 {
		t.Errorf("devices estimate %.2f, want ~2", as.Devices)
	}

	// A malformed body is the device's bug, not load: 400, not retryable.
	err := c.PostProfile(ctx, []byte("not a sketch"))
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Code != 400 || apiErr.Retryable {
		t.Fatalf("malformed sketch: got %v, want non-retryable 400", err)
	}
}

func TestProfileIngestSheds(t *testing.T) {
	s, c := start(t, stubConfig(echoStub))
	ctx := context.Background()

	// Drain the fleet service: every subsequent offer is refused, which is
	// the same admission edge a saturated queue hits. The HTTP contract
	// under refusal is what this test pins: 429, retryable, Retry-After.
	s.fleet.Drain()
	app := workload.MobileApps()[0]
	err := c.PostProfile(ctx, fleet.BuildDeviceSketch(app, "d0", 1).Encode())
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("got %v, want *APIError", err)
	}
	if apiErr.Code != 429 || !apiErr.Retryable || apiErr.RetryAfter <= 0 {
		t.Fatalf("shed response = %+v, want retryable 429 with Retry-After", apiErr)
	}
}

func TestFleetJobEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the real pipeline")
	}
	_, c := start(t, Config{QueueSize: 4, Workers: 1, JobWorkers: 2})
	ctx := context.Background()

	// Before any sketches arrive a fleet job must fail with a pointer to
	// the ingest endpoint, not hang or panic.
	st, err := c.Submit(ctx, SubmitRequest{Kind: KindFleet, App: "Acrobat", Quick: true})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	st, err = c.Wait(ctx, st.ID, time.Minute)
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	if st.State != StateFailed || !strings.Contains(st.Error, "/v1/profiles") {
		t.Fatalf("premature fleet job: state=%s err=%q", st.State, st.Error)
	}

	app := postDeviceSketches(t, c, 3)
	waitFleetSketches(t, c, app, 3)

	st, err = c.Submit(ctx, SubmitRequest{Kind: KindFleet, App: app, Quick: true, Workers: 2, MeasureInstrs: 25_000})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	st, err = c.Wait(ctx, st.ID, 5*time.Minute)
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	if st.State != StateSucceeded {
		t.Fatalf("fleet job: state=%s err=%q", st.State, st.Error)
	}

	raw, err := c.Result(ctx, st.ID)
	if err != nil {
		t.Fatalf("result: %v", err)
	}
	var res struct {
		Kind   JobKind       `json:"kind"`
		Text   string        `json:"text"`
		Report *fleet.Report `json:"report"`
	}
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatalf("decode result: %v", err)
	}
	if res.Kind != KindFleet || res.Report == nil {
		t.Fatalf("result shape: %+v", res)
	}
	if res.Report.Winner == "" || res.Report.WinnerDigest == "" || len(res.Report.Generations) == 0 {
		t.Fatalf("incomplete report: %+v", res.Report)
	}
	if !strings.Contains(res.Text, "fleet converge") {
		t.Errorf("report text: %q", res.Text)
	}

	// The converge outcome must be visible in fleet status afterwards.
	as := waitFleetSketches(t, c, app, 3)
	if as.Winner != res.Report.Winner || as.WinnerDigest != res.Report.WinnerDigest || as.Generations == 0 {
		t.Errorf("fleet status not updated: %+v vs report %+v", as, res.Report)
	}
}
