package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"time"

	"critics/internal/artifact"
	"critics/internal/dist"
	"critics/internal/fleet"
)

// Client talks to a criticd instance. The zero value is not usable;
// construct with NewClient.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient returns a client for the daemon at base (e.g.
// "http://127.0.0.1:9720").
func NewClient(base string) *Client {
	return &Client{base: strings.TrimRight(base, "/"), hc: &http.Client{}}
}

// APIError is a non-2xx response decoded from the server's error body.
type APIError struct {
	Code       int
	Message    string
	Retryable  bool
	RetryAfter time.Duration // from the Retry-After header (429s)
}

func (e *APIError) Error() string {
	return fmt.Sprintf("criticd: %d %s", e.Code, e.Message)
}

// do runs one request and decodes the JSON response into out (skipped when
// out is nil). Non-2xx responses become *APIError.
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		apiErr := &APIError{Code: resp.StatusCode, Message: strings.TrimSpace(string(data))}
		var er ErrorResponse
		if json.Unmarshal(data, &er) == nil && er.Error != "" {
			apiErr.Message = er.Error
			apiErr.Retryable = er.Retryable
		}
		if sec, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil {
			apiErr.RetryAfter = time.Duration(sec) * time.Second
		}
		return apiErr
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(data, out)
}

// Submit enqueues a job. A 429 (queue full) surfaces as *APIError with
// Retryable set and RetryAfter carrying the server's hint.
func (c *Client) Submit(ctx context.Context, req SubmitRequest) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodPost, "/v1/jobs", req, &st)
	return st, err
}

// Status fetches one job's status.
func (c *Client) Status(ctx context.Context, id string) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &st)
	return st, err
}

// Result fetches the raw result document of a succeeded job.
func (c *Client) Result(ctx context.Context, id string) ([]byte, error) {
	var raw json.RawMessage
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id+"/result", nil, &raw); err != nil {
		return nil, err
	}
	return raw, nil
}

// Cancel requests cancellation of a queued or running job and returns the
// resulting status.
func (c *Client) Cancel(ctx context.Context, id string) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, &st)
	return st, err
}

// Apps fetches the workload catalog by suite.
func (c *Client) Apps(ctx context.Context) (map[string][]string, error) {
	var resp AppsResponse
	if err := c.do(ctx, http.MethodGet, "/v1/apps", nil, &resp); err != nil {
		return nil, err
	}
	return resp.Suites, nil
}

// Experiments fetches the runnable experiment ids.
func (c *Client) Experiments(ctx context.Context) ([]string, error) {
	var resp ExperimentsResponse
	if err := c.do(ctx, http.MethodGet, "/v1/experiments", nil, &resp); err != nil {
		return nil, err
	}
	return resp.Experiments, nil
}

// raw GETs a path and returns the response body verbatim; non-2xx responses
// become *APIError like do.
func (c *Client) raw(ctx context.Context, path string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode/100 != 2 {
		apiErr := &APIError{Code: resp.StatusCode, Message: strings.TrimSpace(string(data))}
		var er ErrorResponse
		if json.Unmarshal(data, &er) == nil && er.Error != "" {
			apiErr.Message = er.Error
			apiErr.Retryable = er.Retryable
		}
		return nil, apiErr
	}
	return data, nil
}

// PostProfile streams one encoded profile sketch (sketch.Encode's binary
// wire form) to the daemon's fleet ingest. A 429 (ingest queue full)
// surfaces as *APIError with Retryable set and RetryAfter carrying the
// server's hint — the caller re-sends the same (cumulative) sketch later.
func (c *Client) PostProfile(ctx context.Context, encoded []byte) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/profiles", bytes.NewReader(encoded))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		apiErr := &APIError{Code: resp.StatusCode, Message: strings.TrimSpace(string(data))}
		var er ErrorResponse
		if json.Unmarshal(data, &er) == nil && er.Error != "" {
			apiErr.Message = er.Error
			apiErr.Retryable = er.Retryable
		}
		if sec, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil {
			apiErr.RetryAfter = time.Duration(sec) * time.Second
		}
		return apiErr
	}
	return nil
}

// Fleet fetches per-app fleet consensus and converge status.
func (c *Client) Fleet(ctx context.Context) ([]fleet.AppStatus, error) {
	var resp FleetResponse
	if err := c.do(ctx, http.MethodGet, "/v1/fleet", nil, &resp); err != nil {
		return nil, err
	}
	return resp.Apps, nil
}

// MetricsText fetches the daemon's Prometheus exposition verbatim — the
// input to criticctl slo/top's client-side histogram math.
func (c *Client) MetricsText(ctx context.Context) (string, error) {
	data, err := c.raw(ctx, "/metrics")
	return string(data), err
}

// Trace fetches a job's span tree as raw JSON; format "chrome" selects the
// Chrome trace-event export, "" the tree document.
func (c *Client) Trace(ctx context.Context, id, format string) ([]byte, error) {
	path := "/v1/jobs/" + id + "/trace"
	if format != "" {
		path += "?format=" + format
	}
	return c.raw(ctx, path)
}

// Events fetches flight-recorder events, all of them when job is empty.
func (c *Client) Events(ctx context.Context, job string) ([]byte, error) {
	path := "/debug/events"
	if job != "" {
		path += "?job=" + job
	}
	return c.raw(ctx, path)
}

// UploadArtifact chunk-uploads data to the daemon's artifact store and
// returns its digest. The blob is split into chunkSize-byte PUTs (0 selects
// MaxUploadChunkBytes); a 409 mid-upload — daemon restarted, duplicate
// uploader, stale offset — resumes from the server's committed offset
// rather than restarting, and an already-stored blob is an idempotent
// no-op. 429 answers are retried after the server's Retry-After hint.
func (c *Client) UploadArtifact(ctx context.Context, data []byte, chunkSize int) (string, error) {
	if chunkSize <= 0 {
		chunkSize = MaxUploadChunkBytes
	}
	digest := artifact.Sum(data)
	var offset int64
	for {
		end := offset + int64(chunkSize)
		if end > int64(len(data)) {
			end = int64(len(data))
		}
		final := end == int64(len(data))
		st, err := c.putChunk(ctx, digest, offset, data[offset:end], final)
		if err != nil {
			var apiErr *APIError
			switch {
			case errors.As(err, &apiErr) && apiErr.Code == http.StatusConflict:
				// Resume where the server actually is.
				offset = st.Committed
				continue
			case errors.As(err, &apiErr) && apiErr.Code == http.StatusTooManyRequests:
				delay := apiErr.RetryAfter
				if delay <= 0 {
					delay = time.Second
				}
				select {
				case <-ctx.Done():
					return "", ctx.Err()
				case <-time.After(delay):
				}
				continue
			}
			return "", err
		}
		if st.Complete {
			return digest, nil
		}
		offset = st.Committed
	}
}

// putChunk PUTs one chunk. On 409 the returned status carries the server's
// committed offset alongside the *APIError.
func (c *Client) putChunk(ctx context.Context, digest string, offset int64, chunk []byte, final bool) (ArtifactUploadStatus, error) {
	var st ArtifactUploadStatus
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, c.base+"/v1/artifacts/"+digest, bytes.NewReader(chunk))
	if err != nil {
		return st, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	req.Header.Set(HeaderUploadOffset, strconv.FormatInt(offset, 10))
	if final {
		req.Header.Set(HeaderUploadFinal, "1")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return st, err
	}
	if resp.StatusCode == http.StatusConflict {
		_ = json.Unmarshal(data, &st)
		if h := resp.Header.Get(HeaderUploadCommitted); h != "" {
			if v, err := strconv.ParseInt(h, 10, 64); err == nil {
				st.Committed = v
			}
		}
		return st, &APIError{Code: resp.StatusCode, Message: "stale upload offset", Retryable: true}
	}
	if resp.StatusCode/100 != 2 {
		apiErr := &APIError{Code: resp.StatusCode, Message: strings.TrimSpace(string(data))}
		var er ErrorResponse
		if json.Unmarshal(data, &er) == nil && er.Error != "" {
			apiErr.Message = er.Error
			apiErr.Retryable = er.Retryable
		}
		if sec, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil {
			apiErr.RetryAfter = time.Duration(sec) * time.Second
		}
		return st, apiErr
	}
	return st, json.Unmarshal(data, &st)
}

// DownloadArtifact fetches a stored blob's bytes.
func (c *Client) DownloadArtifact(ctx context.Context, digest string) ([]byte, error) {
	return c.raw(ctx, "/v1/artifacts/"+digest)
}

// ArtifactStat fetches one stored blob's metadata.
func (c *Client) ArtifactStat(ctx context.Context, digest string) (artifact.Info, error) {
	var info artifact.Info
	err := c.do(ctx, http.MethodGet, "/v1/artifacts/"+digest+"?stat=1", nil, &info)
	return info, err
}

// ArtifactList fetches the store's contents, sorted by digest.
func (c *Client) ArtifactList(ctx context.Context) ([]artifact.Info, error) {
	var resp ArtifactListResponse
	if err := c.do(ctx, http.MethodGet, "/v1/artifacts", nil, &resp); err != nil {
		return nil, err
	}
	return resp.Artifacts, nil
}

// ArtifactGC asks the daemon to drop unreferenced blobs.
func (c *Client) ArtifactGC(ctx context.Context) (ArtifactGCResponse, error) {
	var resp ArtifactGCResponse
	err := c.do(ctx, http.MethodPost, "/v1/artifacts/gc", nil, &resp)
	return resp, err
}

// DistWorkers fetches the coordinator's fleet status. A daemon running
// without distribution enabled answers 404.
func (c *Client) DistWorkers(ctx context.Context) ([]dist.WorkerStatus, error) {
	var resp dist.WorkersResponse
	if err := c.do(ctx, http.MethodGet, dist.WorkersPath, nil, &resp); err != nil {
		return nil, err
	}
	return resp.Workers, nil
}

// Wait polling parameters: exponential backoff from waitBaseDelay doubling
// to waitMaxDelay, each step jittered ±25% so a fleet of waiting clients
// never polls in lockstep.
const (
	waitBaseDelay = 25 * time.Millisecond
	waitMaxDelay  = 2 * time.Second
)

// Wait polls a job until it reaches a terminal state, with exponential
// backoff plus jitter, and returns its final status. timeout <= 0 waits
// until ctx is done. The terminal status itself is not an error; a Failed
// job is reported through its State/Error fields.
func (c *Client) Wait(ctx context.Context, id string, timeout time.Duration) (JobStatus, error) {
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	delay := waitBaseDelay
	for {
		st, err := c.Status(ctx, id)
		if err != nil {
			return st, err
		}
		if st.State.Terminal() {
			return st, nil
		}
		// ±25% jitter, then exponential growth capped at waitMaxDelay.
		jittered := delay/2 + time.Duration(rand.Int63n(int64(delay)))
		select {
		case <-ctx.Done():
			return st, fmt.Errorf("waiting for job %s (last state %s): %w", id, st.State, ctx.Err())
		case <-time.After(jittered):
		}
		if delay *= 2; delay > waitMaxDelay {
			delay = waitMaxDelay
		}
	}
}
