package server

import (
	"fmt"
	"net/http"
	"time"

	"critics/internal/obs"
)

// ---- job lifecycle instrumentation ---------------------------------------
//
// Every admitted job gets a trace (obs.Recorder) rooted at a "job" span:
//
//	job                    admission → terminal state
//	├── queue              admission → dequeue (stage queue_wait)
//	└── compute            execute() wall time (stage compute)
//	    ├── map:…          shard fan-outs (sched.Pool)
//	    └── b:…            memo builds, each with dispatch/retry legs and
//	        └── …:a1/…     merged worker spans when distribution is on
//
// The SLO stages queue_wait / compute / e2e are observed with the job id as
// the exemplar trace id, and the flight recorder gets one event per
// transition. All of it is keyed off j.trace being non-nil, which is set
// before the job enters the queue.

// admitJob starts the job's trace and records its admission. Called before
// the job is queued so the worker loop always sees the trace.
func (s *Server) admitJob(j *job) {
	j.trace = s.obsv.Rec.Start(j.id)
	s.obsv.Ring.Append(j.id, obs.EvAdmitted,
		fmt.Sprintf("kind=%s app=%s exp=%s", j.req.Kind, j.req.App, j.req.Experiment))
}

// dequeueJob closes the queue-wait phase: the "queue" span spans admission to
// dequeue, and the queue_wait SLO stage observes the same interval.
func (s *Server) dequeueJob(j *job) {
	t := j.trace
	if t == nil {
		return
	}
	wait := t.Now()
	t.Add(obs.Span{ID: "queue", Parent: "job", Name: "queue", StartUS: 0, DurUS: wait})
	s.obsv.Stages.Observe(obs.StageQueueWait, float64(wait)/1e6, j.id)
	s.obsv.Ring.Append(j.id, obs.EvDequeued, fmt.Sprintf("waited %s", (time.Duration(wait)*time.Microsecond).Round(time.Microsecond)))
}

// finishJob records the job's terminal state on its trace: the "compute" span
// (computeStart taken just before execute ran), the root "job" span, the
// compute and e2e SLO stages, and the terminal flight-recorder event. A
// failed job additionally dumps its flight-recorder events to the log, so a
// postmortem starts with the sequence of events in hand.
func (s *Server) finishJob(j *job, computeStart int64) {
	t := j.trace
	if t == nil {
		return
	}
	now := t.Now()
	t.Add(obs.Span{
		ID: "compute", Parent: "job", Name: "compute",
		StartUS: computeStart, DurUS: now - computeStart,
	})
	st := j.Status()
	attrs := []obs.Attr{obs.A("kind", string(j.req.Kind)), obs.A("state", string(st.State))}
	if j.req.App != "" {
		attrs = append(attrs, obs.A("app", j.req.App))
	}
	if j.req.Experiment != "" {
		attrs = append(attrs, obs.A("experiment", j.req.Experiment))
	}
	t.Add(obs.Span{ID: "job", Name: "job", StartUS: 0, DurUS: now, Attrs: attrs})
	s.obsv.Stages.Observe(obs.StageCompute, float64(now-computeStart)/1e6, j.id)
	s.obsv.Stages.Observe(obs.StageE2E, float64(now)/1e6, j.id)

	ev := obs.EvCompleted
	switch st.State {
	case StateFailed:
		ev = obs.EvFailed
	case StateCanceled:
		ev = obs.EvCanceled
	}
	s.obsv.Ring.Append(j.id, ev, st.Error)

	if st.State == StateFailed {
		// Flight-recorder dump: the job's event sequence in one log record,
		// so a postmortem needs no /debug/events round-trip.
		events := s.obsv.Ring.Snapshot(j.id)
		lines := make([]string, 0, len(events))
		for _, e := range events {
			d := e.Type
			if e.Detail != "" {
				d += ": " + e.Detail
			}
			lines = append(lines, d)
		}
		s.log.Warn("job failed; flight recorder", "id", j.id, "events", lines)
	}
}

// ---- HTTP handlers -------------------------------------------------------

// handleTrace serves GET /v1/jobs/{id}/trace: the job's span tree as JSON, or
// as Chrome trace-event JSON (Perfetto-loadable) with ?format=chrome.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	j := s.jobFor(w, r)
	if j == nil {
		return
	}
	t := s.obsv.Rec.Get(j.id)
	if t == nil {
		writeErr(w, http.StatusNotFound, fmt.Sprintf("no trace retained for job %s", j.id), false)
		return
	}
	if r.URL.Query().Get("format") == "chrome" {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Disposition", fmt.Sprintf("attachment; filename=%q", j.id+".trace.json"))
		_ = t.WriteChrome(w)
		return
	}
	writeJSON(w, http.StatusOK, t.Tree())
}

// EventsResponse is the GET /debug/events body.
type EventsResponse struct {
	Events []obs.Event `json:"events"`
}

// handleEvents serves GET /debug/events: the flight-recorder ring in sequence
// order, filtered to one job with ?job=<id>.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, EventsResponse{Events: s.obsv.Ring.Snapshot(r.URL.Query().Get("job"))})
}
