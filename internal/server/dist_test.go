package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"critics/internal/dist"
	"critics/internal/telemetry"
)

// TestReadyzQueueSaturation: /readyz must flip to 503 while the admission
// queue is full — the signal load balancers use to stop routing before
// submissions start bouncing off 429s — and recover once the queue drains.
func TestReadyzQueueSaturation(t *testing.T) {
	started := make(chan struct{}, 4)
	release := make(chan struct{})
	cfg := stubConfig(func(ctx context.Context, _ SubmitRequest) ([]byte, error) {
		started <- struct{}{}
		select {
		case <-release:
		case <-ctx.Done():
		}
		return json.Marshal(Result{Text: "done"})
	})
	cfg.QueueSize = 1
	cfg.Workers = 1
	s, c := start(t, cfg)
	defer close(release)
	ctx := context.Background()

	readyz := func() int {
		t.Helper()
		resp, err := http.Get(c.base + "/readyz")
		if err != nil {
			t.Fatalf("GET /readyz: %v", err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := readyz(); got != http.StatusOK {
		t.Fatalf("/readyz idle = %d, want 200", got)
	}

	// One job executing (off the queue), one sitting in the queue: saturated.
	if _, err := c.Submit(ctx, SubmitRequest{App: "acrobat", Quick: true}); err != nil {
		t.Fatalf("submit 1: %v", err)
	}
	<-started
	st2, err := c.Submit(ctx, SubmitRequest{App: "email", Quick: true})
	if err != nil {
		t.Fatalf("submit 2: %v", err)
	}
	if got := readyz(); got != http.StatusServiceUnavailable {
		t.Fatalf("/readyz with saturated queue = %d, want 503", got)
	}

	// Draining the queue restores readiness.
	release <- struct{}{}
	release <- struct{}{}
	if _, err := c.Wait(ctx, st2.ID, 10*time.Second); err != nil {
		t.Fatalf("wait: %v", err)
	}
	if got := readyz(); got != http.StatusOK {
		t.Fatalf("/readyz after drain = %d, want 200", got)
	}
	_ = s
}

// TestDistributedJob wires a coordinator with one real worker into the
// daemon and runs an optimize job through it: the job must succeed, its
// measurement units must have gone over the wire, and the fleet endpoints
// must be reachable through the daemon's mux.
func TestDistributedJob(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the real pipeline")
	}
	wk := dist.NewWorker(dist.WorkerConfig{Workers: 2})
	wsrv := httptest.NewServer(wk.Handler())
	defer wsrv.Close()

	reg := telemetry.NewRegistry()
	coord := dist.NewCoordinator(dist.Config{Registry: reg, RetryBackoff: 5 * time.Millisecond})
	defer coord.Close()
	coord.AddWorkerCapacity(wsrv.URL, 2)

	_, c := start(t, Config{QueueSize: 4, Workers: 1, JobWorkers: 2, Registry: reg, Coordinator: coord})
	ctx := context.Background()

	ws, err := c.DistWorkers(ctx)
	if err != nil {
		t.Fatalf("DistWorkers: %v", err)
	}
	if len(ws) != 1 || !ws[0].Healthy {
		t.Fatalf("fleet = %+v, want one healthy worker", ws)
	}

	st, err := c.Submit(ctx, SubmitRequest{App: "acrobat", Quick: true, Workers: 2})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	st, err = c.Wait(ctx, st.ID, 2*time.Minute)
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	if st.State != StateSucceeded {
		t.Fatalf("job ended %s: %s", st.State, st.Error)
	}

	dispatched := reg.Counter("critics_dist_tasks_dispatched_total", "").Value()
	if dispatched == 0 {
		t.Error("no tasks dispatched; the job ran purely locally despite a healthy fleet")
	}
}

// TestDistWorkersWithoutCoordinator: a daemon without distribution answers
// 404 on the fleet endpoints.
func TestDistWorkersWithoutCoordinator(t *testing.T) {
	_, c := start(t, stubConfig(echoStub))
	if _, err := c.DistWorkers(context.Background()); err == nil {
		t.Fatal("DistWorkers succeeded against a coordinator-less daemon, want 404")
	}
}
