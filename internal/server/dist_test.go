package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"critics/internal/dist"
	"critics/internal/obs"
	"critics/internal/telemetry"
)

// TestReadyzQueueSaturation: /readyz must flip to 503 while the admission
// queue is full — the signal load balancers use to stop routing before
// submissions start bouncing off 429s — and recover once the queue drains.
func TestReadyzQueueSaturation(t *testing.T) {
	started := make(chan struct{}, 4)
	release := make(chan struct{})
	cfg := stubConfig(func(ctx context.Context, _ SubmitRequest) ([]byte, error) {
		started <- struct{}{}
		select {
		case <-release:
		case <-ctx.Done():
		}
		return json.Marshal(Result{Text: "done"})
	})
	cfg.QueueSize = 1
	cfg.Workers = 1
	s, c := start(t, cfg)
	defer close(release)
	ctx := context.Background()

	readyz := func() int {
		t.Helper()
		resp, err := http.Get(c.base + "/readyz")
		if err != nil {
			t.Fatalf("GET /readyz: %v", err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := readyz(); got != http.StatusOK {
		t.Fatalf("/readyz idle = %d, want 200", got)
	}

	// One job executing (off the queue), one sitting in the queue: saturated.
	if _, err := c.Submit(ctx, SubmitRequest{App: "acrobat", Quick: true}); err != nil {
		t.Fatalf("submit 1: %v", err)
	}
	<-started
	st2, err := c.Submit(ctx, SubmitRequest{App: "email", Quick: true})
	if err != nil {
		t.Fatalf("submit 2: %v", err)
	}
	if got := readyz(); got != http.StatusServiceUnavailable {
		t.Fatalf("/readyz with saturated queue = %d, want 503", got)
	}

	// Draining the queue restores readiness.
	release <- struct{}{}
	release <- struct{}{}
	if _, err := c.Wait(ctx, st2.ID, 10*time.Second); err != nil {
		t.Fatalf("wait: %v", err)
	}
	if got := readyz(); got != http.StatusOK {
		t.Fatalf("/readyz after drain = %d, want 200", got)
	}
	_ = s
}

// TestDistributedJob wires a coordinator with one real worker into the
// daemon and runs an optimize job through it: the job must succeed, its
// measurement units must have gone over the wire, and the fleet endpoints
// must be reachable through the daemon's mux.
func TestDistributedJob(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the real pipeline")
	}
	wk := dist.NewWorker(dist.WorkerConfig{Workers: 2})
	wsrv := httptest.NewServer(wk.Handler())
	defer wsrv.Close()

	reg := telemetry.NewRegistry()
	coord := dist.NewCoordinator(dist.Config{Registry: reg, RetryBackoff: 5 * time.Millisecond})
	defer coord.Close()
	coord.AddWorkerCapacity(wsrv.URL, 2)

	_, c := start(t, Config{QueueSize: 4, Workers: 1, JobWorkers: 2, Registry: reg, Coordinator: coord})
	ctx := context.Background()

	ws, err := c.DistWorkers(ctx)
	if err != nil {
		t.Fatalf("DistWorkers: %v", err)
	}
	if len(ws) != 1 || !ws[0].Healthy {
		t.Fatalf("fleet = %+v, want one healthy worker", ws)
	}

	st, err := c.Submit(ctx, SubmitRequest{App: "acrobat", Quick: true, Workers: 2})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	st, err = c.Wait(ctx, st.ID, 2*time.Minute)
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	if st.State != StateSucceeded {
		t.Fatalf("job ended %s: %s", st.State, st.Error)
	}

	dispatched := reg.Counter("critics_dist_tasks_dispatched_total", "").Value()
	if dispatched == 0 {
		t.Error("no tasks dispatched; the job ran purely locally despite a healthy fleet")
	}
}

// TestDistWorkersWithoutCoordinator: a daemon without distribution answers
// 404 on the fleet endpoints.
func TestDistWorkersWithoutCoordinator(t *testing.T) {
	_, c := start(t, stubConfig(echoStub))
	if _, err := c.DistWorkers(context.Background()); err == nil {
		t.Fatal("DistWorkers succeeded against a coordinator-less daemon, want 404")
	}
}

// TestDistributedTrace is the in-process mirror of the CI obs-smoke: two
// workers, one answering its first task with an injected 500, one job. The
// job's trace must contain a retry dispatch leg (the coordinator routed the
// failed task to the healthy worker) and merged worker-side spans carrying
// the worker's URL as their site.
func TestDistributedTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the real pipeline")
	}
	bad := dist.NewWorker(dist.WorkerConfig{Workers: 2, FailFirstTasks: 1})
	badSrv := httptest.NewServer(bad.Handler())
	defer badSrv.Close()
	good := dist.NewWorker(dist.WorkerConfig{Workers: 2})
	goodSrv := httptest.NewServer(good.Handler())
	defer goodSrv.Close()

	reg := telemetry.NewRegistry()
	coord := dist.NewCoordinator(dist.Config{Registry: reg, RetryBackoff: 5 * time.Millisecond})
	defer coord.Close()
	// The failing worker registers first: deterministic tie-breaks route the
	// first task to it, so the injected failure (and its retry) always fires.
	coord.AddWorkerCapacity(badSrv.URL, 2)
	coord.AddWorkerCapacity(goodSrv.URL, 2)

	_, c := start(t, Config{QueueSize: 4, Workers: 1, JobWorkers: 1, Registry: reg, Coordinator: coord})
	ctx := context.Background()

	st, err := c.Submit(ctx, SubmitRequest{App: "acrobat", Quick: true, Workers: 1})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	st, err = c.Wait(ctx, st.ID, 2*time.Minute)
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	if st.State != StateSucceeded {
		t.Fatalf("job ended %s: %s", st.State, st.Error)
	}

	raw, err := c.Trace(ctx, st.ID, "")
	if err != nil {
		t.Fatalf("trace: %v", err)
	}
	var names, sites []string
	var walk func(ns []*obs.Node)
	walk = func(ns []*obs.Node) {
		for _, n := range ns {
			names = append(names, n.Name)
			if n.Site != "" {
				sites = append(sites, n.Site)
			}
			walk(n.Children)
		}
	}
	var doc obs.TraceDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace decode: %v", err)
	}
	walk(doc.Spans)
	has := func(want string) bool {
		for _, n := range names {
			if n == want {
				return true
			}
		}
		return false
	}
	if !has("dispatch") {
		t.Fatalf("no dispatch span in trace: %v", names)
	}
	if !has("retry") {
		t.Fatalf("no retry span in trace despite the injected failure: %v", names)
	}
	if !has("remote-compute") {
		t.Fatalf("no merged remote-compute span in trace: %v", names)
	}
	if len(sites) == 0 {
		t.Fatal("no span carries a worker site")
	}

	// The retried event must be on the job's flight record too.
	evRaw, err := c.Events(ctx, st.ID)
	if err != nil {
		t.Fatalf("events: %v", err)
	}
	var evs EventsResponse
	if err := json.Unmarshal(evRaw, &evs); err != nil {
		t.Fatalf("events decode: %v", err)
	}
	sawRetry := false
	for _, e := range evs.Events {
		if e.Type == obs.EvRetried {
			sawRetry = true
		}
	}
	if !sawRetry {
		t.Fatalf("no retried event in flight record: %+v", evs.Events)
	}
}
