package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"critics"
	"critics/internal/artifact"
	"critics/internal/dist"
	"critics/internal/exp"
	"critics/internal/fleet"
	"critics/internal/obs"
	"critics/internal/sketch"
	"critics/internal/telemetry"
)

// Config tunes the daemon. The zero value is usable; New fills defaults.
type Config struct {
	// QueueSize bounds jobs admitted but not yet executing. A full queue
	// refuses new submissions with 429 + Retry-After — admission control,
	// never backpressure into the accept loop. Default 64.
	QueueSize int

	// Workers is the number of jobs executing concurrently. Default 2.
	Workers int

	// JobWorkers bounds each job's shard pool (critics.WithWorkers) when
	// the request does not choose; 0 selects GOMAXPROCS.
	JobWorkers int

	// JobTimeout caps a job's execution time when the request does not
	// choose. Default 10m; negative disables the default deadline.
	JobTimeout time.Duration

	// QuickScale forces the reduced-scale windows for every job regardless
	// of the request (smoke tests, resource-constrained deployments).
	QuickScale bool

	// Registry receives the server's metrics and is served on /metrics.
	// New creates one when nil.
	Registry *telemetry.Registry

	// Tracer, when set, receives engine-level Chrome trace spans from every
	// job (critics.WithTracer). The caller owns closing it — after Shutdown
	// returns, so a SIGTERM drain flushes a complete JSON document.
	Tracer *telemetry.Tracer

	// Logger receives structured request/job logs; nil discards them.
	Logger *slog.Logger

	// ProfileQueue bounds fleet profile sketches decoded but not yet merged
	// into the per-app consensus (POST /v1/profiles). A full queue refuses
	// submissions with 429 + Retry-After, mirroring the job queue's
	// admission control. Default 256.
	ProfileQueue int

	// Coordinator, when set, distributes jobs' measurement units across its
	// worker fleet (internal/dist) and mounts the fleet-management endpoints
	// under /dist/v1/. Jobs fall back to pure local execution while the fleet
	// has no healthy workers. The caller owns the coordinator's lifecycle
	// (Drain/Close around Shutdown).
	Coordinator *dist.Coordinator

	// Artifacts is the daemon's content-addressed blob store, served under
	// /v1/artifacts and feeding scan jobs, worker artifact fetches, fleet
	// sketch archival and measurement-cache spill. nil creates a
	// temp-directory store that Shutdown removes.
	Artifacts *artifact.Store

	// execute overrides job execution — a test seam. nil selects the real
	// critics pipeline.
	execute func(ctx context.Context, req SubmitRequest) ([]byte, error)
}

// retryAfterSeconds is the Retry-After hint on 429 responses.
const retryAfterSeconds = 1

// Server is the criticd core: the job table, the bounded queue, the worker
// loop and the HTTP API. Construct with New, serve Handler, stop with
// Shutdown.
type Server struct {
	cfg     Config
	log     *slog.Logger
	reg     *telemetry.Registry
	metrics *metrics
	scanM   *scanMetrics
	obsv    *obs.Observer
	caches  *critics.SharedCaches
	fleet   *fleet.Service
	mux     *http.ServeMux

	// artifacts is the content-addressed store behind /v1/artifacts;
	// artifactDirOwned is non-empty when New created it in a temp directory
	// it must remove at Shutdown. uploadSlots is the chunk-upload admission
	// semaphore.
	artifacts        *artifact.Store
	artifactDirOwned string
	uploadSlots      chan struct{}

	// baseCtx parents every job context; cancelBase aborts in-flight jobs
	// when a Shutdown deadline expires.
	baseCtx    context.Context
	cancelBase context.CancelFunc

	queue chan *job
	wg    sync.WaitGroup // worker goroutines

	mu       sync.Mutex
	jobs     map[string]*job
	order    []string // job ids, submission order
	byIdem   map[string]string
	nextID   int64
	draining atomic.Bool
}

// New builds a server and starts its worker goroutines. Callers own calling
// Shutdown.
func New(cfg Config) *Server {
	if cfg.QueueSize <= 0 {
		cfg.QueueSize = 64
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.JobTimeout == 0 {
		cfg.JobTimeout = 10 * time.Minute
	}
	if cfg.Registry == nil {
		cfg.Registry = telemetry.NewRegistry()
	}
	log := cfg.Logger
	if log == nil {
		log = slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{Level: slog.LevelError + 4}))
	}
	base, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:         cfg,
		log:         log,
		reg:         cfg.Registry,
		metrics:     newMetrics(cfg.Registry),
		scanM:       newScanMetrics(cfg.Registry),
		obsv:        obs.NewObserver(cfg.Registry),
		caches:      critics.NewSharedCaches(),
		baseCtx:     base,
		cancelBase:  cancel,
		queue:       make(chan *job, cfg.QueueSize),
		jobs:        map[string]*job{},
		byIdem:      map[string]string{},
		uploadSlots: make(chan struct{}, artifactUploadSlots),
	}
	s.artifacts = cfg.Artifacts
	if s.artifacts == nil {
		dir, err := os.MkdirTemp("", "criticd-artifacts-*")
		if err == nil {
			s.artifacts, err = artifact.Open(artifact.Config{Dir: dir, Registry: cfg.Registry})
		}
		if err != nil {
			panic(fmt.Sprintf("server: creating artifact store: %v", err))
		}
		s.artifactDirOwned = dir
	}
	// Measurements the retention budget would evict spill into the store
	// instead of being recomputed.
	s.caches.EnableMeasurementSpill(artifact.NewMemoSpill(s.artifacts))
	if s.cfg.execute == nil {
		s.cfg.execute = s.executePipeline
	}
	s.fleet = fleet.NewService(fleet.Config{
		QueueSize: cfg.ProfileQueue,
		Registry:  cfg.Registry,
		Ring:      s.obsv.Ring,
		Logger:    log,
	})
	if cfg.Coordinator != nil {
		cfg.Coordinator.SetObserver(s.obsv)
	}
	s.mux = s.routes()
	for w := 0; w < cfg.Workers; w++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Handler returns the HTTP API.
func (s *Server) Handler() http.Handler { return s.mux }

// CacheStats reports the shared artifact cache counters.
func (s *Server) CacheStats() exp.CacheStats { return s.caches.Stats() }

// Shutdown drains the server: submissions are refused (503) and /readyz
// flips to 503 immediately, jobs still queued fail with a retryable status,
// and in-flight jobs run to completion. When ctx expires first, in-flight
// job contexts are cancelled and their workers awaited before returning
// ctx's error. Safe to call more than once.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining.Swap(true) {
		close(s.queue)
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		// After the job workers: a draining fleet job may still read the
		// consensus, and the fleet drain is bounded (queue length × a
		// microsecond-scale join).
		s.fleet.Drain()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		s.cancelBase()
		<-done
		err = ctx.Err()
	}
	if s.artifactDirOwned != "" {
		// The store was ours (Config.Artifacts nil): its blobs die with the
		// daemon, like the in-memory job table.
		_ = os.RemoveAll(s.artifactDirOwned)
		s.artifactDirOwned = ""
	}
	return err
}

// ---- worker loop ---------------------------------------------------------

func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.metrics.queueDepth.Add(-1)
		if s.draining.Load() && j.failQueued("server shutting down before execution; safe to retry") {
			s.metrics.outcomes("dropped").Inc()
			s.obsv.Ring.Append(j.id, obs.EvDrained, "queued at shutdown")
			continue
		}
		s.dequeueJob(j)
		timeout := s.cfg.JobTimeout
		if j.req.TimeoutMS > 0 {
			timeout = time.Duration(j.req.TimeoutMS) * time.Millisecond
		}
		ctx, cancel := context.WithCancel(s.baseCtx)
		if timeout > 0 {
			ctx, cancel = context.WithTimeout(s.baseCtx, timeout)
		}
		if !j.tryStart(cancel) {
			cancel()
			s.metrics.outcomes("canceled").Inc()
			s.obsv.Ring.Append(j.id, obs.EvCanceled, "canceled before execution")
			continue
		}
		s.runJob(ctx, j)
		cancel()
	}
}

// runJob executes one started job with panic isolation: a panicking workload
// fails that job (with the panic message in its status) and the daemon keeps
// serving.
func (s *Server) runJob(ctx context.Context, j *job) {
	s.metrics.inflight.Add(1)
	defer s.metrics.inflight.Add(-1)
	s.log.Info("job start", "id", j.id, "kind", j.req.Kind, "app", j.req.App, "exp", j.req.Experiment)

	var computeStart int64
	if j.trace != nil {
		// Engine spans (shard maps, memo builds, dispatch legs) parent to the
		// job's "compute" span through the context.
		computeStart = j.trace.Now()
		ctx = obs.ContextWith(ctx, j.trace, "compute")
	}

	var (
		result   []byte
		err      error
		panicked bool
	)
	func() {
		defer func() {
			if p := recover(); p != nil {
				panicked = true
				err = fmt.Errorf("panic: %v", p)
			}
		}()
		result, err = s.cfg.execute(ctx, j.req)
	}()

	var msg string
	var retry bool
	if err != nil {
		msg = err.Error()
		// A deadline is a property of this attempt, not the job: the retry
		// may hit warm caches and finish in time.
		retry = errors.Is(err, context.DeadlineExceeded)
	}
	j.finish(result, msg, retry)
	s.finishJob(j, computeStart)

	st := j.Status()
	outcome := string(st.State)
	if panicked {
		outcome = "panic"
	}
	s.metrics.outcomes(outcome).Inc()
	s.log.Info("job done", "id", j.id, "state", st.State, "err", msg,
		"seconds", st.Duration().Seconds())
}

// executePipeline is the real runner behind the test seam: it dispatches to
// the critics public API with the job's scale options, the server's shared
// caches and the server's registry attached.
func (s *Server) executePipeline(ctx context.Context, req SubmitRequest) ([]byte, error) {
	if req.Kind == KindScan {
		// Scan jobs run source-free against uploaded artifacts; none of the
		// catalog-pipeline options below apply.
		return s.executeScan(ctx, req)
	}
	opts := []critics.Option{}
	if req.Quick || s.cfg.QuickScale {
		opts = append(opts, critics.WithQuickScale())
	}
	if req.MeasureInstrs > 0 {
		opts = append(opts, critics.WithMeasureInstrs(req.MeasureInstrs))
	}
	workers := req.Workers
	if workers == 0 {
		workers = s.cfg.JobWorkers
	}
	opts = append(opts,
		critics.WithWorkers(workers),
		critics.WithSharedCaches(s.caches),
		critics.WithTelemetry(s.reg),
	)
	if s.cfg.Tracer != nil {
		opts = append(opts, critics.WithTracer(s.cfg.Tracer))
	}
	if coord := s.cfg.Coordinator; coord != nil && coord.HealthyWorkers() > 0 {
		opts = append(opts, critics.WithRemoteExecution(coord, coord))
	}

	res := Result{Kind: req.Kind, App: req.App, Experiment: req.Experiment}
	switch req.Kind {
	case KindOptimize:
		rep, err := critics.OptimizeAppContext(ctx, req.App, opts...)
		if err != nil {
			return nil, err
		}
		res.Text = rep.String()
		res.Report = rep
	case KindProfile:
		prof, err := critics.BuildProfileContext(ctx, req.App, opts...)
		if err != nil {
			return nil, err
		}
		res.Text = fmt.Sprintf("app %s: %d dynamic instructions profiled, %d unique chains, %d selected, coverage %.1f%%\n",
			prof.App, prof.TotalDyn, prof.UniqueChains(), len(prof.Selected()), 100*prof.SelectedCoverage)
		res.Profile = prof
	case KindExperiment:
		out, err := critics.ExperimentContext(ctx, req.Experiment, opts...)
		if err != nil {
			return nil, err
		}
		res.Text = out
	case KindFleet:
		consensus, rev, ok := s.fleet.Consensus(req.App)
		if !ok {
			return nil, fmt.Errorf("no fleet consensus for app %q yet; devices must stream sketches to POST /v1/profiles first", req.App)
		}
		rep, err := critics.FleetConverge(ctx, req.App, consensus,
			fleet.ConvergeOptions{Revision: rev, Service: s.fleet}, opts...)
		if err != nil {
			return nil, err
		}
		s.fleet.NoteConverge(req.App, rep)
		res.Text = rep.String()
		res.Report = rep
	case KindTrace:
		var buf strings.Builder
		rep, err := critics.TraceAppContext(ctx, req.App, &buf, opts...)
		if err != nil {
			return nil, err
		}
		res.Text = rep.String()
		res.Report = rep
		res.Trace = json.RawMessage(buf.String())
	default:
		return nil, fmt.Errorf("unknown job kind %q", req.Kind)
	}
	return json.Marshal(res)
}

// ---- HTTP API ------------------------------------------------------------

func (s *Server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	handle := func(method, pattern string, h http.HandlerFunc) {
		mux.HandleFunc(method+" "+pattern, s.metrics.instrument(pattern, h))
	}
	handle("POST", "/v1/jobs", s.handleSubmit)
	handle("GET", "/v1/jobs", s.handleList)
	handle("GET", "/v1/jobs/{id}", s.handleStatus)
	handle("GET", "/v1/jobs/{id}/result", s.handleResult)
	handle("GET", "/v1/jobs/{id}/trace", s.handleTrace)
	handle("GET", "/debug/events", s.handleEvents)
	handle("DELETE", "/v1/jobs/{id}", s.handleCancel)
	handle("POST", "/v1/profiles", s.handleProfiles)
	handle("GET", "/v1/fleet", s.handleFleet)
	handle("PUT", "/v1/artifacts/{digest}", s.handleArtifactPut)
	handle("GET", "/v1/artifacts/{digest}", s.handleArtifactGet)
	handle("GET", "/v1/artifacts", s.handleArtifactList)
	handle("POST", "/v1/artifacts/gc", s.handleArtifactGC)
	handle("GET", "/v1/apps", s.handleApps)
	handle("GET", "/v1/experiments", s.handleExperiments)
	handle("GET", "/healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	handle("GET", "/readyz", func(w http.ResponseWriter, _ *http.Request) {
		switch {
		case s.draining.Load():
			writeErr(w, http.StatusServiceUnavailable, "draining", true)
		case len(s.queue) >= cap(s.queue):
			// Saturated admission queue: the next submit would be refused
			// with 429, so load balancers should stop routing here until the
			// workers catch up. Liveness (/healthz) is unaffected.
			w.Header().Set("Retry-After", fmt.Sprint(retryAfterSeconds))
			writeErr(w, http.StatusServiceUnavailable,
				fmt.Sprintf("job queue saturated (%d queued)", cap(s.queue)), true)
		default:
			writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
		}
	})
	mux.Handle("GET /metrics", s.reg)
	if s.cfg.Coordinator != nil {
		mux.Handle("/dist/v1/", s.cfg.Coordinator.Handler())
	}
	return mux
}

// maxBodyBytes bounds submit bodies; requests are tiny. Oversized bodies
// (a client inlining a binary image instead of uploading it to
// /v1/artifacts) answer 413 with the limit in the message.
const maxBodyBytes = 1 << 20

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err == nil {
		err = json.Unmarshal(body, &req)
	}
	if err != nil {
		var maxErr *http.MaxBytesError
		if errors.As(err, &maxErr) {
			writeErr(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds %d bytes; upload large inputs to PUT /v1/artifacts/{digest} and reference them by digest", int64(maxBodyBytes)), false)
			return
		}
		writeErr(w, http.StatusBadRequest, "malformed request body: "+err.Error(), false)
		return
	}
	if msg := normalize(&req); msg != "" {
		writeErr(w, http.StatusBadRequest, msg, false)
		return
	}

	s.mu.Lock()
	if s.draining.Load() {
		s.mu.Unlock()
		writeErr(w, http.StatusServiceUnavailable, "server is draining; retry against a live instance", true)
		return
	}
	if req.IdempotencyKey != "" {
		if id, ok := s.byIdem[req.IdempotencyKey]; ok {
			j := s.jobs[id]
			s.mu.Unlock()
			writeJSON(w, http.StatusOK, j.Status())
			return
		}
	}
	s.nextID++
	j := newJob(fmt.Sprintf("j%06d", s.nextID), req)
	s.admitJob(j) // before the queue send: workers must see the trace
	select {
	case s.queue <- j:
	default:
		s.mu.Unlock()
		s.metrics.outcomes("rejected").Inc()
		w.Header().Set("Retry-After", fmt.Sprint(retryAfterSeconds))
		writeErr(w, http.StatusTooManyRequests,
			fmt.Sprintf("job queue full (%d queued); retry after %ds", s.cfg.QueueSize, retryAfterSeconds), true)
		return
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	if req.IdempotencyKey != "" {
		s.byIdem[req.IdempotencyKey] = j.id
	}
	s.metrics.queueDepth.Add(1)
	s.mu.Unlock()
	writeJSON(w, http.StatusAccepted, j.Status())
}

// handleProfiles ingests one encoded profile sketch from a device. The body
// is the sketch's canonical binary wire form — bounded by construction, so
// fleet ingest memory is sketches, never traces. Admission mirrors the job
// queue: a full ingest queue refuses with 429 + Retry-After and the device
// re-sends its (cumulative, idempotently mergeable) sketch later.
func (s *Server) handleProfiles(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes))
	if err != nil {
		writeErr(w, http.StatusBadRequest, "reading body: "+err.Error(), false)
		return
	}
	sk, err := sketch.Decode(body)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "malformed sketch: "+err.Error(), false)
		return
	}
	if s.draining.Load() {
		writeErr(w, http.StatusServiceUnavailable, "server is draining; retry against a live instance", true)
		return
	}
	if !s.fleet.Offer(sk) {
		w.Header().Set("Retry-After", fmt.Sprint(retryAfterSeconds))
		writeErr(w, http.StatusTooManyRequests,
			fmt.Sprintf("profile ingest queue full; retry after %ds", retryAfterSeconds), true)
		return
	}
	s.fleet.AddBytes(len(body))
	// Archive the accepted sketch's wire form content-addressed: identical
	// re-sends dedupe to one blob, and an operator can fetch the exact bytes
	// behind any consensus merge for replay/debugging.
	digest, err := s.artifacts.PutBytes(body)
	if err != nil {
		s.log.Warn("archiving sketch failed", "app", sk.App, "err", err)
	}
	writeJSON(w, http.StatusAccepted, map[string]string{"status": "accepted", "app": sk.App, "digest": digest})
}

// handleFleet reports per-app fleet state: consensus revision and digest,
// device estimate, and the last converge outcome.
func (s *Server) handleFleet(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, FleetResponse{Apps: s.fleet.Status()})
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	out := make([]JobStatus, 0, len(s.order))
	for i := len(s.order) - 1; i >= 0; i-- {
		out = append(out, s.jobs[s.order[i]].Status())
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"jobs": out})
}

// jobFor resolves {id} or writes a 404.
func (s *Server) jobFor(w http.ResponseWriter, r *http.Request) *job {
	id := r.PathValue("id")
	s.mu.Lock()
	j := s.jobs[id]
	s.mu.Unlock()
	if j == nil {
		writeErr(w, http.StatusNotFound, fmt.Sprintf("no job %q", id), false)
	}
	return j
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if j := s.jobFor(w, r); j != nil {
		writeJSON(w, http.StatusOK, j.Status())
	}
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j := s.jobFor(w, r)
	if j == nil {
		return
	}
	if res, ok := j.Result(); ok {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(res)
		return
	}
	st := j.Status()
	if st.State.Terminal() {
		writeErr(w, http.StatusConflict,
			fmt.Sprintf("job %s %s: %s", j.id, st.State, st.Error), st.Retryable)
		return
	}
	writeErr(w, http.StatusConflict, fmt.Sprintf("job %s is %s; poll status until succeeded", j.id, st.State), false)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := s.jobFor(w, r)
	if j == nil {
		return
	}
	j.requestCancel()
	writeJSON(w, http.StatusOK, j.Status())
}

func (s *Server) handleApps(w http.ResponseWriter, _ *http.Request) {
	suites := map[string][]string{}
	for name, apps := range exp.Suites() {
		names := make([]string, len(apps))
		for i, a := range apps {
			names[i] = a.Params.Name
		}
		suites[name] = names
	}
	writeJSON(w, http.StatusOK, AppsResponse{Suites: suites})
}

func (s *Server) handleExperiments(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, ExperimentsResponse{Experiments: critics.ExperimentIDs()})
}

// ---- validation ----------------------------------------------------------

// normalize infers the kind, canonicalizes the app name (case-insensitive
// catalog match) and validates the request; it returns a non-empty message
// on rejection.
func normalize(req *SubmitRequest) string {
	if req.Kind == "" {
		switch {
		case req.App != "" && req.Experiment == "":
			req.Kind = KindOptimize
		case req.Experiment != "" && req.App == "":
			req.Kind = KindExperiment
		default:
			return `missing "kind" (one of optimize, profile, experiment, trace)`
		}
	}
	switch req.Kind {
	case KindScan:
		if err := artifact.Validate(req.ImageDigest); err != nil {
			return fmt.Sprintf("scan jobs require a valid image_digest: %v", err)
		}
		if err := artifact.Validate(req.TraceDigest); err != nil {
			return fmt.Sprintf("scan jobs require a valid trace_digest: %v", err)
		}
	case KindOptimize, KindProfile, KindTrace, KindFleet:
		if req.App == "" {
			return fmt.Sprintf("%s jobs require an app name (GET /v1/apps lists them)", req.Kind)
		}
		name, ok := resolveApp(req.App)
		if !ok {
			return fmt.Sprintf("unknown app %q (valid: %s)", req.App, strings.Join(allAppNames(), ", "))
		}
		req.App = name
	case KindExperiment:
		if req.Experiment == "" {
			return "experiment jobs require an experiment id (GET /v1/experiments lists them)"
		}
		if !validExperiment(req.Experiment) {
			return fmt.Sprintf("unknown experiment %q (valid: %s)", req.Experiment, strings.Join(critics.ExperimentIDs(), ", "))
		}
	default:
		return fmt.Sprintf("unknown job kind %q (one of optimize, profile, experiment, trace, fleet, scan)", req.Kind)
	}
	if req.TimeoutMS < 0 || req.Workers < 0 || req.MeasureInstrs < 0 {
		return "timeout_ms, workers and measure_instrs must be non-negative"
	}
	return ""
}

// resolveApp matches name case-insensitively against the catalog and returns
// the canonical name.
func resolveApp(name string) (string, bool) {
	for _, suite := range exp.SuiteOrder {
		for _, a := range exp.Suites()[suite] {
			if strings.EqualFold(a.Params.Name, name) {
				return a.Params.Name, true
			}
		}
	}
	return "", false
}

// allAppNames lists the full catalog in suite presentation order.
func allAppNames() []string { return critics.AppNames() }

func validExperiment(id string) bool {
	for _, e := range exp.IDs() {
		if e == id {
			return true
		}
	}
	return false
}

// ---- response helpers ----------------------------------------------------

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, code int, msg string, retryable bool) {
	writeJSON(w, code, ErrorResponse{Error: msg, Retryable: retryable})
}
