package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"critics"
	"critics/internal/artifact"
	"critics/internal/dist"
	"critics/internal/fleet"
	"critics/internal/scan"
	"critics/internal/telemetry"
	"critics/internal/workload"
)

// scanFixture assembles a small catalog app's binary image and a chunked
// trace file — the scan pipeline's two artifacts.
func scanFixture(t *testing.T, instrs int) (img, trc []byte) {
	t.Helper()
	img, addrs, err := critics.ScanInputs("acrobat", instrs)
	if err != nil {
		t.Fatalf("ScanInputs: %v", err)
	}
	return img, scan.TraceBytes(addrs, 1024)
}

// TestSubmitBodyTooLarge: an oversized inline job body must answer 413 with
// the documented limit, steering callers to the artifact store.
func TestSubmitBodyTooLarge(t *testing.T) {
	_, c := start(t, stubConfig(echoStub))

	body := bytes.Repeat([]byte("x"), maxBodyBytes+1)
	resp, err := http.Post(c.base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/jobs: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized submit = %d, want 413", resp.StatusCode)
	}
	var er ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		t.Fatalf("decode 413 body: %v", err)
	}
	if want := strconv.Itoa(maxBodyBytes); !bytes.Contains([]byte(er.Error), []byte(want)) {
		t.Fatalf("413 message %q does not state the %s-byte limit", er.Error, want)
	}
	// Sanity: a normal-sized request is unaffected.
	if _, err := c.Submit(context.Background(), SubmitRequest{App: "acrobat"}); err != nil {
		t.Fatalf("normal submit after 413: %v", err)
	}
}

// TestArtifactUploadLifecycle covers the chunked-upload protocol end to end
// over HTTP: resumable chunks, duplicate idempotence, stale-offset 409 with
// the committed offset, digest mismatch 422 leaving no orphan.
func TestArtifactUploadLifecycle(t *testing.T) {
	_, c := start(t, stubConfig(echoStub))
	ctx := context.Background()

	data := bytes.Repeat([]byte("artifact lifecycle "), 4096)
	digest := artifact.Sum(data)

	// Chunked upload with a deliberately small chunk size: many PUTs.
	got, err := c.UploadArtifact(ctx, data, 1000)
	if err != nil {
		t.Fatalf("UploadArtifact: %v", err)
	}
	if got != digest {
		t.Fatalf("uploaded digest %s, want %s", got, digest)
	}

	// Duplicate upload: idempotent no-op, same digest.
	if got, err = c.UploadArtifact(ctx, data, 0); err != nil || got != digest {
		t.Fatalf("duplicate upload = (%s, %v), want (%s, nil)", got, err, digest)
	}

	// Round-trip the bytes and the metadata.
	back, err := c.DownloadArtifact(ctx, digest)
	if err != nil {
		t.Fatalf("DownloadArtifact: %v", err)
	}
	if !bytes.Equal(back, data) {
		t.Fatalf("downloaded %d bytes != uploaded %d", len(back), len(data))
	}
	info, err := c.ArtifactStat(ctx, digest)
	if err != nil {
		t.Fatalf("ArtifactStat: %v", err)
	}
	if info.Digest != digest || info.Size != int64(len(data)) {
		t.Fatalf("stat = %+v, want digest %s size %d", info, digest, len(data))
	}

	// Interrupted upload resumes at the committed offset: commit a prefix of
	// a second blob, then start the client from offset 0 — the 409 must carry
	// the committed offset and the client must resume, not restart.
	data2 := bytes.Repeat([]byte("resume me "), 2048)
	digest2 := artifact.Sum(data2)
	if _, err := c.putChunk(ctx, digest2, 0, data2[:4096], false); err != nil {
		t.Fatalf("seed partial upload: %v", err)
	}
	st, err := c.putChunk(ctx, digest2, 0, data2[:1], false)
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Code != http.StatusConflict {
		t.Fatalf("stale offset = %v, want 409", err)
	}
	if st.Committed != 4096 {
		t.Fatalf("409 committed = %d, want 4096", st.Committed)
	}
	if _, err := c.UploadArtifact(ctx, data2, 4096); err != nil {
		t.Fatalf("resuming upload: %v", err)
	}
	if info, err := c.ArtifactStat(ctx, digest2); err != nil || info.Size != int64(len(data2)) {
		t.Fatalf("resumed blob stat = (%+v, %v)", info, err)
	}

	// Digest mismatch on finalize: 422, and nothing committed under the
	// claimed digest — a later honest upload succeeds.
	bogus := artifact.Sum([]byte("something else entirely"))
	_, err = c.putChunk(ctx, bogus, 0, []byte("not that content"), true)
	if !errors.As(err, &apiErr) || apiErr.Code != http.StatusUnprocessableEntity {
		t.Fatalf("digest mismatch = %v, want 422", err)
	}
	if _, err := c.ArtifactStat(ctx, bogus); err == nil {
		t.Fatalf("mismatched upload left an orphan under %s", bogus)
	}
	if _, err := c.UploadArtifact(ctx, []byte("something else entirely"), 0); err != nil {
		t.Fatalf("honest upload after mismatch: %v", err)
	}

	// List and GC through the client (nothing holds refs here, so GC clears).
	infos, err := c.ArtifactList(ctx)
	if err != nil || len(infos) == 0 {
		t.Fatalf("ArtifactList = (%d, %v), want non-empty", len(infos), err)
	}
	gc, err := c.ArtifactGC(ctx)
	if err != nil {
		t.Fatalf("ArtifactGC: %v", err)
	}
	if gc.Removed != len(infos) {
		t.Fatalf("GC removed %d, want %d", gc.Removed, len(infos))
	}
	if infos, _ = c.ArtifactList(ctx); len(infos) != 0 {
		t.Fatalf("store not empty after GC: %+v", infos)
	}
}

// TestArtifactChunkTooLarge: a single chunk beyond MaxUploadChunkBytes must
// answer 413 and leave the upload resumable from its prior committed offset.
func TestArtifactChunkTooLarge(t *testing.T) {
	_, c := start(t, stubConfig(echoStub))
	ctx := context.Background()

	data := bytes.Repeat([]byte("y"), MaxUploadChunkBytes+1)
	digest := artifact.Sum(data)
	_, err := c.putChunk(ctx, digest, 0, data, true)
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized chunk = %v, want 413", err)
	}
	// Split into legal chunks, the same blob uploads fine.
	if _, err := c.UploadArtifact(ctx, data, 0); err != nil {
		t.Fatalf("chunked upload of the same blob: %v", err)
	}
}

// TestScanJobLocal: upload image + trace, run a scan job without a fleet,
// and check the ranked report comes back with scored opportunities.
func TestScanJobLocal(t *testing.T) {
	_, c := start(t, Config{QueueSize: 4, Workers: 1})
	ctx := context.Background()

	img, trc := scanFixture(t, 20000)
	imgDigest, err := c.UploadArtifact(ctx, img, 0)
	if err != nil {
		t.Fatalf("upload image: %v", err)
	}
	trcDigest, err := c.UploadArtifact(ctx, trc, 0)
	if err != nil {
		t.Fatalf("upload trace: %v", err)
	}

	st, err := c.Submit(ctx, SubmitRequest{Kind: KindScan, ImageDigest: imgDigest, TraceDigest: trcDigest})
	if err != nil {
		t.Fatalf("submit scan: %v", err)
	}
	st, err = c.Wait(ctx, st.ID, time.Minute)
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	if st.State != StateSucceeded {
		t.Fatalf("scan job ended %s: %s", st.State, st.Error)
	}
	raw, err := c.Result(ctx, st.ID)
	if err != nil {
		t.Fatalf("result: %v", err)
	}
	var res struct {
		Text   string      `json:"text"`
		Report scan.Report `json:"report"`
	}
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatalf("decode result: %v", err)
	}
	if res.Report.ImageDigest != imgDigest || res.Report.TraceDigest != trcDigest {
		t.Fatalf("report digests = %s/%s, want %s/%s",
			res.Report.ImageDigest, res.Report.TraceDigest, imgDigest, trcDigest)
	}
	if len(res.Report.Opportunities) == 0 {
		t.Fatal("scan found no opportunities in an unoptimized image")
	}
	if res.Text == "" {
		t.Fatal("empty report text")
	}
}

// TestScanJobMissingArtifact: a scan referencing a digest the store does not
// hold must fail with a message pointing at the upload endpoint.
func TestScanJobMissingArtifact(t *testing.T) {
	_, c := start(t, Config{QueueSize: 4, Workers: 1})
	ctx := context.Background()

	missing := artifact.Sum([]byte("never uploaded"))
	st, err := c.Submit(ctx, SubmitRequest{Kind: KindScan, ImageDigest: missing, TraceDigest: missing})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	st, err = c.Wait(ctx, st.ID, time.Minute)
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	if st.State != StateFailed {
		t.Fatalf("job ended %s, want failed", st.State)
	}
	if !bytes.Contains([]byte(st.Error), []byte("/v1/artifacts")) {
		t.Fatalf("error %q does not point at the upload endpoint", st.Error)
	}
}

// TestScanJobInvalidDigest: submit-time validation rejects malformed digests
// before a job is enqueued.
func TestScanJobInvalidDigest(t *testing.T) {
	_, c := start(t, stubConfig(echoStub))
	_, err := c.Submit(context.Background(), SubmitRequest{Kind: KindScan, ImageDigest: "sha256:nope", TraceDigest: "sha256:nope"})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Code != http.StatusBadRequest {
		t.Fatalf("invalid digest submit = %v, want 400", err)
	}
}

// TestScanDistributedByteIdentical is the determinism acceptance check: the
// same scan through a two-worker fleet (workers fetching artifacts from the
// daemon by digest) and through pure local execution must produce
// byte-identical result documents.
func TestScanDistributedByteIdentical(t *testing.T) {
	img, trc := scanFixture(t, 30000)

	runScan := func(t *testing.T, withFleet bool) []byte {
		t.Helper()
		reg := telemetry.NewRegistry()
		cfg := Config{QueueSize: 4, Workers: 1, Registry: reg}
		var coordReg *telemetry.Registry
		if withFleet {
			coordReg = telemetry.NewRegistry()
			coord := dist.NewCoordinator(dist.Config{Registry: coordReg, RetryBackoff: 5 * time.Millisecond})
			defer coord.Close()
			cfg.Coordinator = coord
			s, c := start(t, cfg)
			// Workers fetch scan artifacts from the daemon itself.
			for i := 0; i < 2; i++ {
				wk := dist.NewWorker(dist.WorkerConfig{ArtifactSource: c.base})
				wsrv := httptest.NewServer(wk.Handler())
				defer wsrv.Close()
				coord.AddWorkerCapacity(wsrv.URL, 2)
			}
			_ = s
			raw := scanOnce(t, c, img, trc)
			if coordReg.Counter("critics_dist_tasks_dispatched_total", "").Value() == 0 {
				t.Fatal("no scan batches dispatched; the distributed run fell back to pure local execution")
			}
			return raw
		}
		_, c := start(t, cfg)
		return scanOnce(t, c, img, trc)
	}

	local := runScan(t, false)
	distributed := runScan(t, true)
	if !bytes.Equal(local, distributed) {
		t.Fatalf("distributed scan result differs from local:\nlocal:       %s\ndistributed: %s", local, distributed)
	}
}

// scanOnce uploads the fixtures, runs one scan job and returns the raw
// result document.
func scanOnce(t *testing.T, c *Client, img, trc []byte) []byte {
	t.Helper()
	ctx := context.Background()
	imgDigest, err := c.UploadArtifact(ctx, img, 0)
	if err != nil {
		t.Fatalf("upload image: %v", err)
	}
	trcDigest, err := c.UploadArtifact(ctx, trc, 0)
	if err != nil {
		t.Fatalf("upload trace: %v", err)
	}
	st, err := c.Submit(ctx, SubmitRequest{Kind: KindScan, ImageDigest: imgDigest, TraceDigest: trcDigest})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	st, err = c.Wait(ctx, st.ID, 2*time.Minute)
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	if st.State != StateSucceeded {
		t.Fatalf("scan ended %s: %s", st.State, st.Error)
	}
	raw, err := c.Result(ctx, st.ID)
	if err != nil {
		t.Fatalf("result: %v", err)
	}
	return raw
}

// TestProfileArchive: an accepted sketch is archived content-addressed and
// its digest returned, so identical re-sends dedupe to one blob.
func TestProfileArchive(t *testing.T) {
	s, c := start(t, stubConfig(echoStub))
	ctx := context.Background()

	enc := fleet.BuildDeviceSketch(workload.MobileApps()[0], "d0", 1).Encode()
	if err := c.PostProfile(ctx, enc); err != nil {
		t.Fatalf("PostProfile: %v", err)
	}
	if err := c.PostProfile(ctx, enc); err != nil {
		t.Fatalf("PostProfile resend: %v", err)
	}
	digest := artifact.Sum(enc)
	info, ok := s.artifacts.Stat(digest)
	if !ok {
		t.Fatalf("accepted sketch not archived under %s", digest)
	}
	if info.Size != int64(len(enc)) {
		t.Fatalf("archived %d bytes, want %d", info.Size, len(enc))
	}
	if n := len(s.artifacts.List()); n != 1 {
		t.Fatalf("store holds %d blobs after duplicate sends, want 1", n)
	}
}
