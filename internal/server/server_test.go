package server

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"critics"
)

// start spins up a server over httptest and returns it with a client and a
// cleanup that drains it.
func start(t *testing.T, cfg Config) (*Server, *Client) {
	t.Helper()
	s := New(cfg)
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
		hs.Close()
	})
	return s, NewClient(hs.URL)
}

// stubConfig returns a config whose execute is replaced by fn — no critics
// pipeline, so queue/lifecycle tests stay fast and deterministic.
func stubConfig(fn func(ctx context.Context, req SubmitRequest) ([]byte, error)) Config {
	cfg := Config{QueueSize: 8, Workers: 2}
	cfg.execute = fn
	return cfg
}

// echoStub succeeds immediately with a marshaled Result echoing the request.
func echoStub(_ context.Context, req SubmitRequest) ([]byte, error) {
	return json.Marshal(Result{Kind: req.Kind, App: req.App, Text: "done " + req.App})
}

// TestLifecycleIdentity is the end-to-end acceptance check: a served
// optimize job returns a report identical to the in-process
// critics.OptimizeApp for the same options — the daemon is a transport, not
// a different pipeline.
func TestLifecycleIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the real pipeline")
	}
	_, c := start(t, Config{QueueSize: 4, Workers: 1, JobWorkers: 2})
	ctx := context.Background()

	// "Acrobat" exercises case-insensitive catalog resolution.
	st, err := c.Submit(ctx, SubmitRequest{App: "Acrobat", Quick: true, Workers: 2})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if st.Kind != KindOptimize || st.App != "acrobat" {
		t.Fatalf("submit inferred kind=%s app=%s", st.Kind, st.App)
	}
	st, err = c.Wait(ctx, st.ID, time.Minute)
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	if st.State != StateSucceeded {
		t.Fatalf("job ended %s: %s", st.State, st.Error)
	}
	raw, err := c.Result(ctx, st.ID)
	if err != nil {
		t.Fatalf("result: %v", err)
	}
	var res Result
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatalf("result decode: %v", err)
	}

	want, err := critics.OptimizeApp("acrobat", critics.WithQuickScale(), critics.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Text != want.String() {
		t.Errorf("served report differs from critics.OptimizeApp:\n--- served ---\n%s\n--- direct ---\n%s", res.Text, want)
	}
}

// TestSharedCaches proves the daemon-wide memo cache: the second identical
// job must be served from cache (hits observed, and the artifacts are not
// rebuilt).
func TestSharedCaches(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the real pipeline")
	}
	s, c := start(t, Config{QueueSize: 4, Workers: 1, JobWorkers: 2})
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		st, err := c.Submit(ctx, SubmitRequest{App: "maps", Quick: true, Workers: 2})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		if st, err = c.Wait(ctx, st.ID, time.Minute); err != nil || st.State != StateSucceeded {
			t.Fatalf("job %d ended %s err=%v", i, st.State, err)
		}
	}
	stats := s.CacheStats()
	if stats.Measurements.Hits == 0 || stats.Profiles.Hits == 0 {
		t.Errorf("expected cache hits on the second identical job, got %+v", stats)
	}
}

// TestAPIErrors covers the 4xx surface: unknown job ids, malformed bodies,
// bad names, premature result fetches and wrong methods.
func TestAPIErrors(t *testing.T) {
	_, c := start(t, stubConfig(echoStub))
	ctx := context.Background()
	base := c.base

	post := func(body string) *http.Response {
		resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	codes := []struct {
		resp *http.Response
		want int
		name string
	}{
		{post(`{not json`), http.StatusBadRequest, "malformed body"},
		{post(`{}`), http.StatusBadRequest, "missing kind"},
		{post(`{"app":"nonexistent"}`), http.StatusBadRequest, "unknown app"},
		{post(`{"experiment":"fig99"}`), http.StatusBadRequest, "unknown experiment"},
		{post(`{"kind":"destroy","app":"acrobat"}`), http.StatusBadRequest, "unknown kind"},
		{post(`{"app":"acrobat","timeout_ms":-5}`), http.StatusBadRequest, "negative timeout"},
	}
	for _, tc := range codes {
		var er ErrorResponse
		if err := json.NewDecoder(tc.resp.Body).Decode(&er); err != nil || er.Error == "" {
			t.Errorf("%s: error body missing (%v)", tc.name, err)
		}
		tc.resp.Body.Close()
		if tc.resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d", tc.name, tc.resp.StatusCode, tc.want)
		}
	}

	// The unknown-app rejection must teach the caller the valid names.
	resp := post(`{"app":"nonexistent"}`)
	var er ErrorResponse
	_ = json.NewDecoder(resp.Body).Decode(&er)
	resp.Body.Close()
	if !strings.Contains(er.Error, "acrobat") {
		t.Errorf("unknown-app error does not list valid names: %q", er.Error)
	}

	if _, err := c.Status(ctx, "j999999"); err == nil {
		t.Error("status of unknown job succeeded")
	} else if apiErr, ok := err.(*APIError); !ok || apiErr.Code != http.StatusNotFound {
		t.Errorf("status of unknown job: %v, want 404", err)
	}
	if _, err := c.Result(ctx, "j999999"); err == nil {
		t.Error("result of unknown job succeeded")
	}

	// Result of a non-succeeded job is 409, not 200/404.
	st, err := c.Submit(ctx, SubmitRequest{App: "acrobat", Kind: KindOptimize})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(ctx, st.ID, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	resp2, err := http.Get(base + "/v1/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Errorf("result after success: %d", resp2.StatusCode)
	}

	req, _ := http.NewRequest(http.MethodPut, base+"/v1/jobs", nil)
	resp3, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("PUT /v1/jobs: %d, want 405", resp3.StatusCode)
	}
}

// TestIdempotency proves safe client retries: a resubmit bearing the same
// idempotency key returns the same job; a different key enqueues a new one.
func TestIdempotency(t *testing.T) {
	_, c := start(t, stubConfig(echoStub))
	ctx := context.Background()

	a1, err := c.Submit(ctx, SubmitRequest{App: "acrobat", IdempotencyKey: "retry-1"})
	if err != nil {
		t.Fatal(err)
	}
	a2, err := c.Submit(ctx, SubmitRequest{App: "acrobat", IdempotencyKey: "retry-1"})
	if err != nil {
		t.Fatal(err)
	}
	if a1.ID != a2.ID {
		t.Errorf("same key produced different jobs: %s vs %s", a1.ID, a2.ID)
	}
	b, err := c.Submit(ctx, SubmitRequest{App: "acrobat", IdempotencyKey: "retry-2"})
	if err != nil {
		t.Fatal(err)
	}
	if b.ID == a1.ID {
		t.Error("different key reused the job")
	}
}

// TestPanicIsolation: a panicking workload fails its own job with the panic
// message and the daemon keeps serving the next one.
func TestPanicIsolation(t *testing.T) {
	cfg := stubConfig(func(_ context.Context, req SubmitRequest) ([]byte, error) {
		if req.App == "acrobat" {
			panic("synthetic workload crash")
		}
		return echoStub(nil, req)
	})
	s, c := start(t, cfg)
	ctx := context.Background()

	st, err := c.Submit(ctx, SubmitRequest{App: "acrobat"})
	if err != nil {
		t.Fatal(err)
	}
	if st, err = c.Wait(ctx, st.ID, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	if st.State != StateFailed || !strings.Contains(st.Error, "synthetic workload crash") {
		t.Errorf("panicking job: state=%s err=%q", st.State, st.Error)
	}

	st, err = c.Submit(ctx, SubmitRequest{App: "maps"})
	if err != nil {
		t.Fatalf("daemon did not survive the panic: %v", err)
	}
	if st, err = c.Wait(ctx, st.ID, 10*time.Second); err != nil || st.State != StateSucceeded {
		t.Errorf("job after panic: state=%s err=%v", st.State, err)
	}

	var buf strings.Builder
	if err := s.reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `critics_server_jobs_total{outcome="panic"} 1`) {
		t.Error("panic outcome not counted")
	}
}

// TestJobTimeout: a job exceeding its deadline fails with a retryable
// status.
func TestJobTimeout(t *testing.T) {
	cfg := stubConfig(func(ctx context.Context, _ SubmitRequest) ([]byte, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	})
	_, c := start(t, cfg)
	ctx := context.Background()

	st, err := c.Submit(ctx, SubmitRequest{App: "acrobat", TimeoutMS: 50})
	if err != nil {
		t.Fatal(err)
	}
	if st, err = c.Wait(ctx, st.ID, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	if st.State != StateFailed || !st.Retryable {
		t.Errorf("timed-out job: state=%s retryable=%v err=%q", st.State, st.Retryable, st.Error)
	}
}

// TestCancel covers both cancellation paths: a running job (context
// propagation) and a queued job (never starts).
func TestCancel(t *testing.T) {
	release := make(chan struct{})
	started := make(chan string, 8)
	cfg := Config{QueueSize: 8, Workers: 1}
	cfg.execute = func(ctx context.Context, req SubmitRequest) ([]byte, error) {
		started <- req.App
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-release:
			return echoStub(ctx, req)
		}
	}
	_, c := start(t, cfg)
	defer close(release)
	ctx := context.Background()

	running, err := c.Submit(ctx, SubmitRequest{App: "acrobat"})
	if err != nil {
		t.Fatal(err)
	}
	<-started // the single worker now blocks in the job
	queued, err := c.Submit(ctx, SubmitRequest{App: "maps"})
	if err != nil {
		t.Fatal(err)
	}

	// Cancel the queued job first: it must go terminal without running.
	if _, err := c.Cancel(ctx, queued.ID); err != nil {
		t.Fatal(err)
	}
	st, err := c.Status(ctx, queued.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateCanceled || st.StartedAt != nil {
		t.Errorf("queued cancel: state=%s started=%v", st.State, st.StartedAt)
	}

	// Cancel the running one: the context unblocks the stub.
	if _, err := c.Cancel(ctx, running.ID); err != nil {
		t.Fatal(err)
	}
	if st, err = c.Wait(ctx, running.ID, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	if st.State != StateCanceled {
		t.Errorf("running cancel: state=%s err=%q", st.State, st.Error)
	}

	select {
	case app := <-started:
		t.Errorf("canceled queued job still ran: %s", app)
	default:
	}
}

// TestCatalogEndpoints: /v1/apps and /v1/experiments serve the catalogs the
// submit validator enforces.
func TestCatalogEndpoints(t *testing.T) {
	_, c := start(t, stubConfig(echoStub))
	ctx := context.Background()

	suites, err := c.Apps(ctx)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, names := range suites {
		for _, n := range names {
			if n == "acrobat" {
				found = true
			}
		}
	}
	if !found {
		t.Errorf("acrobat missing from /v1/apps: %v", suites)
	}
	ids, err := c.Experiments(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) == 0 {
		t.Error("/v1/experiments empty")
	}
}

// TestServerMetricsExposition pins the server's family names on a live
// scrape (the exposition format itself is pinned by the telemetry golden
// test).
func TestServerMetricsExposition(t *testing.T) {
	_, c := start(t, stubConfig(echoStub))
	ctx := context.Background()
	st, err := c.Submit(ctx, SubmitRequest{App: "acrobat"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(ctx, st.ID, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(c.base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(data)
	for _, family := range []string{
		"critics_server_jobs_total",
		"critics_server_queue_depth",
		"critics_server_inflight_jobs",
		"critics_server_http_request_seconds",
		"critics_server_http_requests_total",
	} {
		if !strings.Contains(body, family) {
			t.Errorf("/metrics missing %s", family)
		}
	}
}
