package server

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"

	"critics/internal/obs"
	"critics/internal/telemetry"
)

// submitAndWait runs one stubbed job to a terminal state.
func submitAndWait(t *testing.T, c *Client, req SubmitRequest) JobStatus {
	t.Helper()
	ctx := context.Background()
	st, err := c.Submit(ctx, req)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	st, err = c.Wait(ctx, st.ID, 10*time.Second)
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	return st
}

// TestJobTrace checks the tentpole path end to end on the stub executor: a
// job yields a trace rooted at "job" with "queue" and "compute" children,
// retrievable as both the JSON tree and a Chrome export, and the flight
// recorder holds its lifecycle events.
func TestJobTrace(t *testing.T) {
	_, c := start(t, stubConfig(echoStub))
	st := submitAndWait(t, c, SubmitRequest{Kind: KindOptimize, App: "acrobat"})
	if st.State != StateSucceeded {
		t.Fatalf("job ended %s: %s", st.State, st.Error)
	}

	raw, err := c.Trace(context.Background(), st.ID, "")
	if err != nil {
		t.Fatalf("trace: %v", err)
	}
	var doc obs.TraceDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace decode: %v", err)
	}
	if doc.TraceID != st.ID {
		t.Fatalf("trace id %q, want %q", doc.TraceID, st.ID)
	}
	if len(doc.Spans) != 1 || doc.Spans[0].ID != "job" {
		t.Fatalf("want single root span \"job\", got %+v", doc.Spans)
	}
	kids := map[string]bool{}
	for _, n := range doc.Spans[0].Children {
		kids[n.ID] = true
	}
	if !kids["queue"] || !kids["compute"] {
		t.Fatalf("job children %v, want queue and compute", kids)
	}

	chrome, err := c.Trace(context.Background(), st.ID, "chrome")
	if err != nil {
		t.Fatalf("chrome trace: %v", err)
	}
	var export struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(chrome, &export); err != nil {
		t.Fatalf("chrome export is not valid trace-event JSON: %v", err)
	}
	if len(export.TraceEvents) < 4 { // process meta + job/queue/compute
		t.Fatalf("chrome export has %d events", len(export.TraceEvents))
	}

	ev, err := c.Events(context.Background(), st.ID)
	if err != nil {
		t.Fatalf("events: %v", err)
	}
	var resp EventsResponse
	if err := json.Unmarshal(ev, &resp); err != nil {
		t.Fatalf("events decode: %v", err)
	}
	types := map[string]bool{}
	for _, e := range resp.Events {
		if e.Job != st.ID {
			t.Fatalf("event for job %q leaked into filter for %q", e.Job, st.ID)
		}
		types[e.Type] = true
	}
	for _, want := range []string{obs.EvAdmitted, obs.EvDequeued, obs.EvCompleted} {
		if !types[want] {
			t.Fatalf("event types %v missing %q", types, want)
		}
	}
}

// TestTraceUnknownJob pins the 404s: unknown job ids and (separately) jobs
// whose trace was evicted.
func TestTraceUnknownJob(t *testing.T) {
	_, c := start(t, stubConfig(echoStub))
	_, err := c.Trace(context.Background(), "j999999", "")
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Code != 404 {
		t.Fatalf("want 404 APIError, got %v", err)
	}
}

// TestFailedJobEvents checks the failure path: the terminal event is
// "failed" and carries the error detail.
func TestFailedJobEvents(t *testing.T) {
	_, c := start(t, stubConfig(func(context.Context, SubmitRequest) ([]byte, error) {
		return nil, errors.New("boom")
	}))
	st := submitAndWait(t, c, SubmitRequest{Kind: KindOptimize, App: "acrobat"})
	if st.State != StateFailed {
		t.Fatalf("job ended %s, want failed", st.State)
	}
	ev, err := c.Events(context.Background(), st.ID)
	if err != nil {
		t.Fatalf("events: %v", err)
	}
	var resp EventsResponse
	if err := json.Unmarshal(ev, &resp); err != nil {
		t.Fatalf("events decode: %v", err)
	}
	found := false
	for _, e := range resp.Events {
		if e.Type == obs.EvFailed && strings.Contains(e.Detail, "boom") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no failed event with detail in %+v", resp.Events)
	}
}

// TestSLOStagesExposed checks the satellite chain server → registry →
// exposition → obs parser: after a job, /metrics carries the stage
// histograms with the job id as an exemplar, and criticctl slo's evaluation
// path accepts them.
func TestSLOStagesExposed(t *testing.T) {
	_, c := start(t, stubConfig(echoStub))
	st := submitAndWait(t, c, SubmitRequest{Kind: KindOptimize, App: "acrobat"})

	text, err := c.MetricsText(context.Background())
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	stages := obs.ParseStageHistograms(text, obs.SLOFamily, "stage")
	for _, want := range []string{obs.StageQueueWait, obs.StageCompute, obs.StageE2E} {
		cdf := stages[want]
		if cdf == nil || cdf.Count() == 0 {
			t.Fatalf("stage %q missing from exposition:\n%s", want, text)
		}
	}
	if !strings.Contains(text, `trace_id="`+st.ID+`"`) {
		t.Fatalf("no exemplar with job id %s in exposition", st.ID)
	}

	target, err := obs.ParseTarget("e2e:p99<=10m")
	if err != nil {
		t.Fatalf("parse target: %v", err)
	}
	violations, err := obs.Evaluate([]obs.Target{target}, stages)
	if err != nil {
		t.Fatalf("evaluate: %v", err)
	}
	if len(violations) != 0 {
		t.Fatalf("generous target violated: %v", violations)
	}
	tight, _ := obs.ParseTarget("e2e:p50<=1ns")
	violations, err = obs.Evaluate([]obs.Target{tight}, stages)
	if err != nil || len(violations) != 1 {
		t.Fatalf("1ns target: violations=%v err=%v", violations, err)
	}
}

// TestBuildInfoGauge checks criticd's registry carries the build-info gauge
// once RegisterBuildInfo ran (as cmd/criticd does).
func TestBuildInfoGauge(t *testing.T) {
	reg := telemetry.NewRegistry()
	telemetry.RegisterBuildInfo(reg, "criticd")
	_, c := start(t, func() Config {
		cfg := stubConfig(echoStub)
		cfg.Registry = reg
		return cfg
	}())
	text, err := c.MetricsText(context.Background())
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	if v, ok := obs.MetricValue(text, "critics_build_info", map[string]string{"component": "criticd"}); !ok || v != 1 {
		t.Fatalf("critics_build_info{component=criticd} = %v %v, want 1", v, ok)
	}
}
