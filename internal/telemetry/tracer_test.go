package telemetry

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateFlag = flag.Bool("update", false, "rewrite golden files")

func update() bool { return *updateFlag }

// buildFixedTrace emits a small, fully deterministic event sequence (no
// wall-clock reads).
func buildFixedTrace(t *testing.T) []byte {
	t.Helper()
	var b bytes.Buffer
	tr := NewTracer(&b)
	tr.MetaProcessName(EnginePID, "engine (wall-clock µs)")
	tr.MetaProcessName(10, "pipeline (ts in cycles)")
	tr.MetaThreadName(10, 1, "F.StallForI")
	tr.Complete(10, 1, "LDR", "stage", 5, 12, Str("pc", "0x8004"), Int("seq", 42))
	tr.Complete(10, 1, "ADD", "stage", 20, 1)
	tr.Instant(10, 7, "CDP mode switch", "marker", 21, Str("pc", "0x8008"))
	tr.Counter(10, "ROB occupancy", 5, Int("n", 3))
	tr.Span(EnginePID, "measure acrobat/base", "memo", 0, 100, Bool("hit", false))
	tr.Span(EnginePID, "measure acrobat/base", "memo", 50, 10, Bool("hit", true)) // overlaps: second lane
	tr.Span(EnginePID, "exp:fig10a", "experiment", 150, 25)                       // lane 1 free again
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

// TestTracerGolden locks the Chrome trace-event output byte-for-byte:
// stable field ordering is what makes trace exports diffable and testable.
func TestTracerGolden(t *testing.T) {
	got := buildFixedTrace(t)
	golden := filepath.Join("testdata", "trace.golden")
	if update() {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("trace mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestTracerValidJSON checks the document parses as the Chrome trace JSON
// object format and that lane allocation kept overlapping spans on
// distinct tids.
func TestTracerValidJSON(t *testing.T) {
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Ts   int64          `json:"ts"`
			Dur  int64          `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	raw := buildFixedTrace(t)
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, raw)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	var lanes []int
	for _, e := range doc.TraceEvents {
		if e.Pid == EnginePID && e.Ph == "X" && e.Name == "measure acrobat/base" {
			lanes = append(lanes, e.Tid)
		}
	}
	if len(lanes) != 2 || lanes[0] == lanes[1] {
		t.Errorf("overlapping engine spans should occupy distinct lanes, got tids %v", lanes)
	}
}
