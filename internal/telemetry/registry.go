// Package telemetry is the zero-external-dependency observability layer of
// the engine: a concurrency-safe metrics registry with Prometheus
// text-format exposition (registry.go) and a Chrome trace-event JSON tracer
// loadable in Perfetto / chrome://tracing (tracer.go).
//
// Design constraints, in order:
//
//  1. Disabled telemetry must be free. Every instrumented package takes a
//     nil-able handle (cpu.Config.Metrics, sched.Pool metrics, the
//     exp.Context tracer); the hot paths guard on nil and do nothing else.
//  2. Updates are lock-free. Counters, gauges and histogram buckets are
//     atomics; the registry mutex is taken only at registration and scrape
//     time, so a /metrics scrape never stalls simulation workers.
//  3. Exposition is deterministic. Families and series render in sorted
//     order so the output is golden-testable and diff-friendly.
package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one name=value pair attached to a metric series.
type Label struct{ Key, Value string }

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// sample is one registered series of any type.
type sample interface {
	// expose writes the series' exposition lines. name is the family name,
	// labels the pre-rendered (possibly empty) "{k="v",...}" string.
	expose(w *bufio.Writer, name, labels string)
}

// family is one metric family: a name, a type, and its label-keyed series.
type family struct {
	help   string
	typ    string // counter | gauge | histogram
	series map[string]sample
}

// Registry holds metric families and renders them in Prometheus text format.
// It is safe for concurrent registration, updates and scrapes; the zero
// value is not usable, construct with NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// renderLabels renders a sorted, escaped {k="v",...} string ("" if empty).
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabelValue(v string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`)
	return r.Replace(v)
}

// register returns the existing series for (name, labels) or installs the
// one built by mk. Registering the same name with a different type panics —
// that is a programming error, not a runtime condition.
func (r *Registry) register(name, help, typ string, labels []Label, mk func() sample) sample {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{help: help, typ: typ, series: map[string]sample{}}
		r.families[name] = f
	} else if f.typ != typ {
		panic(fmt.Sprintf("telemetry: metric %q registered as %s and %s", name, f.typ, typ))
	}
	key := renderLabels(labels)
	s := f.series[key]
	if s == nil {
		s = mk()
		f.series[key] = s
	}
	return s
}

// ---- Counter -------------------------------------------------------------

// Counter is a monotonically increasing int64.
type Counter struct{ v atomic.Int64 }

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n < 0 is a programming error and is ignored).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

func (c *Counter) expose(w *bufio.Writer, name, labels string) {
	fmt.Fprintf(w, "%s%s %d\n", name, labels, c.v.Load())
}

// Counter returns (registering on first use) the counter series for
// name+labels.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	return r.register(name, help, "counter", labels, func() sample { return &Counter{} }).(*Counter)
}

// funcSample exposes a value read from a callback at scrape time — the
// mechanism that folds externally-owned counters (memo caches, pool state)
// into the registry without double bookkeeping.
type funcSample struct{ fn func() float64 }

func (f *funcSample) expose(w *bufio.Writer, name, labels string) {
	fmt.Fprintf(w, "%s%s %s\n", name, labels, formatFloat(f.fn()))
}

// CounterFunc registers a counter series whose value is read from fn at
// scrape time. fn must be monotonic and safe for concurrent calls.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	r.register(name, help, "counter", labels, func() sample { return &funcSample{fn: fn} })
}

// GaugeFunc registers a gauge series whose value is read from fn at scrape
// time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.register(name, help, "gauge", labels, func() sample { return &funcSample{fn: fn} })
}

// ---- Gauge ---------------------------------------------------------------

// Gauge is an int64 that can go up and down.
type Gauge struct{ v atomic.Int64 }

// Set stores n.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (negative allowed).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

func (g *Gauge) expose(w *bufio.Writer, name, labels string) {
	fmt.Fprintf(w, "%s%s %d\n", name, labels, g.v.Load())
}

// Gauge returns (registering on first use) the gauge series for name+labels.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	return r.register(name, help, "gauge", labels, func() sample { return &Gauge{} }).(*Gauge)
}

// ---- Histogram -----------------------------------------------------------

// Histogram is a fixed-bucket histogram with atomic bucket counts. Bounds
// are inclusive upper bounds (Prometheus "le" semantics); an implicit +Inf
// bucket catches the overflow. Each bucket can additionally hold one
// exemplar — a recent observation tagged with a trace id
// (ObserveExemplar), rendered in OpenMetrics style so slow buckets point
// straight at a representative trace.
type Histogram struct {
	bounds    []float64
	counts    []atomic.Int64 // len(bounds)+1; last is the +Inf bucket
	exemplars []atomic.Pointer[Exemplar]
	sum       atomicFloat
}

// Exemplar is one observation tagged with the trace it came from.
type Exemplar struct {
	TraceID string
	Value   float64
}

// Observe records v.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.sum.add(v)
}

// ObserveExemplar records v and attaches (v, traceID) as the exemplar of
// the bucket v lands in, replacing that bucket's previous exemplar. An
// empty traceID is a plain Observe.
func (h *Histogram) ObserveExemplar(v float64, traceID string) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.sum.add(v)
	if traceID != "" {
		h.exemplars[i].Store(&Exemplar{TraceID: traceID, Value: v})
	}
}

// BucketExemplar returns bucket i's exemplar (i == len(bounds) is the +Inf
// bucket); nil when none was recorded.
func (h *Histogram) BucketExemplar(i int) *Exemplar {
	return h.exemplars[i].Load()
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	var n int64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return h.sum.load() }

func (h *Histogram) expose(w *bufio.Writer, name, labels string) {
	var cum int64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket%s %d%s\n", name,
			labelsWith(labels, `le="`+formatFloat(b)+`"`), cum, exemplarSuffix(h.exemplars[i].Load()))
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket%s %d%s\n", name,
		labelsWith(labels, `le="+Inf"`), cum, exemplarSuffix(h.exemplars[len(h.bounds)].Load()))
	fmt.Fprintf(w, "%s_sum%s %s\n", name, labels, formatFloat(h.sum.load()))
	fmt.Fprintf(w, "%s_count%s %d\n", name, labels, cum)
}

// exemplarSuffix renders an OpenMetrics-style exemplar annotation
// (` # {trace_id="..."} value`) or "" when e is nil.
func exemplarSuffix(e *Exemplar) string {
	if e == nil {
		return ""
	}
	return ` # {trace_id="` + escapeLabelValue(e.TraceID) + `"} ` + formatFloat(e.Value)
}

// labelsWith appends one pre-rendered pair to a rendered label string.
func labelsWith(labels, pair string) string {
	if labels == "" {
		return "{" + pair + "}"
	}
	return labels[:len(labels)-1] + "," + pair + "}"
}

// Histogram returns (registering on first use) the histogram series for
// name+labels. bounds must be sorted ascending; they are fixed at first
// registration and ignored on later lookups of the same series.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	return r.register(name, help, "histogram", labels, func() sample {
		b := append([]float64(nil), bounds...)
		return &Histogram{
			bounds:    b,
			counts:    make([]atomic.Int64, len(b)+1),
			exemplars: make([]atomic.Pointer[Exemplar], len(b)+1),
		}
	}).(*Histogram)
}

// LinearBuckets returns n bounds start, start+width, ...
func LinearBuckets(start, width float64, n int) []float64 {
	b := make([]float64, n)
	for i := range b {
		b[i] = start + float64(i)*width
	}
	return b
}

// ExpBuckets returns n bounds start, start*factor, ...
func ExpBuckets(start, factor float64, n int) []float64 {
	b := make([]float64, n)
	v := start
	for i := range b {
		b[i] = v
		v *= factor
	}
	return b
}

// atomicFloat is a float64 accumulated with CAS on its bit pattern.
type atomicFloat struct{ bits atomic.Uint64 }

func (a *atomicFloat) add(v float64) {
	for {
		old := a.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if a.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

func (a *atomicFloat) load() float64 { return math.Float64frombits(a.bits.Load()) }

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// ---- Exposition ----------------------------------------------------------

// WritePrometheus renders every family in Prometheus text format (version
// 0.0.4), families and series in sorted order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	bw := bufio.NewWriter(w)
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		f := r.families[n]
		if f.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", n, strings.NewReplacer("\\", `\\`, "\n", `\n`).Replace(f.help))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", n, f.typ)
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			f.series[k].expose(bw, n, k)
		}
	}
	return bw.Flush()
}

// ServeHTTP implements http.Handler, serving the registry as a Prometheus
// scrape endpoint.
func (r *Registry) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = r.WritePrometheus(w)
}
