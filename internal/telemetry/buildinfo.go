package telemetry

import (
	"runtime"
	"runtime/debug"
	"strconv"
)

// RegisterBuildInfo exposes a critics_build_info gauge (value fixed at 1)
// labelled with the component name, the binary's module version, the Go
// toolchain version and GOMAXPROCS — enough for a fleet scrape to spot
// binary skew between coordinators and workers. Safe to call more than
// once per registry; repeated calls with the same labels are idempotent.
func RegisterBuildInfo(reg *Registry, component string) {
	if reg == nil {
		return
	}
	version := BuildVersion()
	reg.Gauge("critics_build_info",
		"Build identity of this process; the value is always 1.",
		L("component", component),
		L("version", version),
		L("go_version", runtime.Version()),
		L("gomaxprocs", strconv.Itoa(runtime.GOMAXPROCS(0))),
	).Set(1)
}

// BuildVersion returns the binary's module version from build metadata, or
// "devel" for an unstamped build — the string behind every command's
// -version flag and the critics_build_info gauge's version label.
func BuildVersion() string {
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" && bi.Main.Version != "(devel)" {
		return bi.Main.Version
	}
	return "devel"
}

// PrintVersion formats the standard "-version" line for a command.
func PrintVersion(component string) string {
	return component + " " + BuildVersion() + " (" + runtime.Version() + ")"
}
