package telemetry

import (
	"bufio"
	"encoding/json"
	"io"
	"strconv"
	"sync"
	"time"
)

// EnginePID is the conventional Chrome-trace process id for engine-level
// (wall-clock) tracks: experiment spans and memo-cache hit/miss spans.
// Pipeline exports (cycle-domain timelines) use their own pids so the two
// time domains never share an axis.
const EnginePID = 1

// Arg is one key/value entry of a trace event's "args" object.
type Arg struct {
	Key  string
	kind byte // 's','i','f','b'
	s    string
	i    int64
	f    float64
	b    bool
}

// Str builds a string arg.
func Str(k, v string) Arg { return Arg{Key: k, kind: 's', s: v} }

// Int builds an integer arg.
func Int(k string, v int64) Arg { return Arg{Key: k, kind: 'i', i: v} }

// Num builds a float arg.
func Num(k string, v float64) Arg { return Arg{Key: k, kind: 'f', f: v} }

// Bool builds a boolean arg.
func Bool(k string, v bool) Arg { return Arg{Key: k, kind: 'b', b: v} }

// Tracer streams Chrome trace-event JSON (the "JSON Object Format" with a
// traceEvents array) to a writer. The output loads in Perfetto and
// chrome://tracing. Events are written in call order with a fixed field
// order, so a single-threaded event sequence is byte-reproducible (the
// golden test relies on this). All methods are safe for concurrent use.
//
// Timestamps are int64 microseconds by Chrome convention; cycle-domain
// exporters pass cycles as ts directly (1 cycle renders as 1µs) on a
// dedicated pid so they never mix with wall-clock tracks.
type Tracer struct {
	mu     sync.Mutex
	bw     *bufio.Writer
	start  time.Time
	events int
	lanes  map[int][]int64 // pid -> per-lane latest span end (for Span)
}

// NewTracer starts a trace stream on w. Call Close to finish the JSON
// document; the caller owns closing w itself.
func NewTracer(w io.Writer) *Tracer {
	t := &Tracer{
		bw:    bufio.NewWriterSize(w, 1<<16),
		start: time.Now(),
		lanes: map[int][]int64{},
	}
	t.bw.WriteString(`{"displayTimeUnit":"ms","traceEvents":[`)
	return t
}

// Now returns microseconds since the tracer started — the wall-clock ts
// domain for engine-level spans.
func (t *Tracer) Now() int64 { return time.Since(t.start).Microseconds() }

// writeString writes s JSON-encoded.
func (t *Tracer) writeString(s string) {
	b, err := json.Marshal(s)
	if err != nil { // unreachable for strings; keep the stream well-formed
		t.bw.WriteString(`""`)
		return
	}
	t.bw.Write(b)
}

// emit writes one event object. dur < 0 omits the field; scope is the "s"
// field for instant events ("" omits).
func (t *Tracer) emit(ph byte, pid, tid int, name, cat string, ts, dur int64, scope string, args []Arg) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.events > 0 {
		t.bw.WriteByte(',')
	}
	t.events++
	t.bw.WriteString("\n{\"name\":")
	t.writeString(name)
	if cat != "" {
		t.bw.WriteString(",\"cat\":")
		t.writeString(cat)
	}
	t.bw.WriteString(",\"ph\":\"")
	t.bw.WriteByte(ph)
	t.bw.WriteString("\",\"pid\":")
	t.bw.WriteString(strconv.Itoa(pid))
	t.bw.WriteString(",\"tid\":")
	t.bw.WriteString(strconv.Itoa(tid))
	t.bw.WriteString(",\"ts\":")
	t.bw.WriteString(strconv.FormatInt(ts, 10))
	if dur >= 0 {
		t.bw.WriteString(",\"dur\":")
		t.bw.WriteString(strconv.FormatInt(dur, 10))
	}
	if scope != "" {
		t.bw.WriteString(",\"s\":")
		t.writeString(scope)
	}
	if len(args) > 0 {
		t.bw.WriteString(",\"args\":{")
		for i, a := range args {
			if i > 0 {
				t.bw.WriteByte(',')
			}
			t.writeString(a.Key)
			t.bw.WriteByte(':')
			switch a.kind {
			case 's':
				t.writeString(a.s)
			case 'i':
				t.bw.WriteString(strconv.FormatInt(a.i, 10))
			case 'f':
				t.bw.WriteString(formatFloat(a.f))
			case 'b':
				t.bw.WriteString(strconv.FormatBool(a.b))
			}
		}
		t.bw.WriteByte('}')
	}
	t.bw.WriteByte('}')
}

// MetaProcessName names a pid in the trace UI.
func (t *Tracer) MetaProcessName(pid int, name string) {
	t.emit('M', pid, 0, "process_name", "__metadata", 0, -1, "", []Arg{Str("name", name)})
}

// MetaThreadName names a (pid, tid) track in the trace UI.
func (t *Tracer) MetaThreadName(pid, tid int, name string) {
	t.emit('M', pid, tid, "thread_name", "__metadata", 0, -1, "", []Arg{Str("name", name)})
}

// Complete writes a complete ("X") duration event on an explicit track.
func (t *Tracer) Complete(pid, tid int, name, cat string, ts, dur int64, args ...Arg) {
	t.emit('X', pid, tid, name, cat, ts, dur, "", args)
}

// Instant writes a thread-scoped instant ("i") marker.
func (t *Tracer) Instant(pid, tid int, name, cat string, ts int64, args ...Arg) {
	t.emit('i', pid, tid, name, cat, ts, -1, "t", args)
}

// Counter writes a counter ("C") sample; each numeric arg is one series of
// the counter track.
func (t *Tracer) Counter(pid int, name string, ts int64, args ...Arg) {
	t.emit('C', pid, 0, name, "", ts, -1, "", args)
}

// Span writes a complete event on an automatically chosen track of pid: the
// first lane whose previous span has ended, so concurrent engine-level spans
// (memo builds on different workers) render side by side instead of nested.
func (t *Tracer) Span(pid int, name, cat string, ts, dur int64, args ...Arg) {
	t.mu.Lock()
	lanes := t.lanes[pid]
	tid := 0
	for i, end := range lanes {
		if end <= ts {
			lanes[i] = ts + dur
			tid = i + 1
			break
		}
	}
	if tid == 0 {
		lanes = append(lanes, ts+dur)
		t.lanes[pid] = lanes
		tid = len(lanes)
	}
	t.mu.Unlock()
	t.emit('X', pid, tid, name, cat, ts, dur, "", args)
}

// Close terminates the JSON document and flushes. The underlying writer is
// not closed.
func (t *Tracer) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.bw.WriteString("\n]}\n")
	return t.bw.Flush()
}
