package telemetry

import (
	"bytes"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// TestRegistryConcurrent hammers one registry from many goroutines — series
// registration, counter/gauge/histogram updates, and scrapes all at once —
// and checks the final values. Run under -race (CI does) this is the
// concurrency-safety proof for the registry.
func TestRegistryConcurrent(t *testing.T) {
	reg := NewRegistry()
	const goroutines = 8
	const iters = 2000

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Re-resolve the series every iteration: registration must be
			// as safe under contention as the updates themselves.
			for i := 0; i < iters; i++ {
				reg.Counter("test_ops_total", "ops").Inc()
				reg.Counter("test_ops_by_worker_total", "ops by worker", L("worker", string(rune('a'+g)))).Inc()
				reg.Gauge("test_depth", "depth").Set(int64(i))
				reg.Histogram("test_lat", "lat", []float64{1, 10, 100}).Observe(float64(i % 200))
			}
		}(g)
	}
	// Concurrent scrapes while the writers run.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			var b bytes.Buffer
			if err := reg.WritePrometheus(&b); err != nil {
				t.Errorf("scrape: %v", err)
				return
			}
		}
	}()
	wg.Wait()

	if got := reg.Counter("test_ops_total", "ops").Value(); got != goroutines*iters {
		t.Errorf("ops counter = %d, want %d", got, goroutines*iters)
	}
	for g := 0; g < goroutines; g++ {
		c := reg.Counter("test_ops_by_worker_total", "ops by worker", L("worker", string(rune('a'+g))))
		if c.Value() != iters {
			t.Errorf("worker %d counter = %d, want %d", g, c.Value(), iters)
		}
	}
	h := reg.Histogram("test_lat", "lat", []float64{1, 10, 100})
	if h.Count() != goroutines*iters {
		t.Errorf("histogram count = %d, want %d", h.Count(), goroutines*iters)
	}
}

// buildFixedRegistry populates a registry with deterministic values for the
// golden exposition test.
func buildFixedRegistry() *Registry {
	reg := NewRegistry()
	reg.Counter("critics_sim_cycles_total", "Simulated core cycles.").Add(123456)
	reg.Counter("critics_cache_accesses_total", "Cache accesses by level.", L("level", "l1i")).Add(100)
	reg.Counter("critics_cache_accesses_total", "Cache accesses by level.", L("level", "l1d")).Add(50)
	reg.Gauge("critics_pool_busy_workers", "Workers currently executing a shard.", L("pool", "exp")).Set(3)
	reg.GaugeFunc("critics_memo_entries", "Retained memo entries by cache.",
		func() float64 { return 7 }, L("cache", "programs"))
	h := reg.Histogram("critics_sim_fetch_bytes_used", "Fetch port bytes consumed per active fetch cycle.",
		LinearBuckets(0, 2, 5))
	for _, v := range []float64{0, 2, 2, 5, 8, 9} {
		h.Observe(v)
	}
	// The criticd server families (internal/server pins the same names; this
	// locks their exposition shape).
	reg.Gauge("critics_server_queue_depth", "Jobs admitted to the queue and not yet started.").Set(2)
	reg.Gauge("critics_server_inflight_jobs", "Jobs currently executing.").Set(1)
	for outcome, n := range map[string]int64{"succeeded": 9, "failed": 2, "canceled": 1, "panic": 1, "rejected": 3, "dropped": 1} {
		reg.Counter("critics_server_jobs_total",
			"Jobs by disposition: succeeded, failed, canceled, panic, rejected (queue full), dropped (drained at shutdown).",
			L("outcome", outcome)).Add(n)
	}
	rh := reg.Histogram("critics_server_http_request_seconds", "HTTP handler latency by route.",
		ExpBuckets(0.0001, 4, 10), L("endpoint", "/v1/jobs"))
	for _, v := range []float64{0.0002, 0.001, 0.02} {
		rh.Observe(v)
	}
	reg.Counter("critics_server_http_requests_total", "HTTP requests by route and status code.",
		L("endpoint", "/v1/jobs"), L("code", "202")).Add(12)
	// The distributed-execution families (internal/dist pins the same names;
	// this locks their exposition shape).
	reg.Counter("critics_dist_tasks_dispatched_total", "Task attempts dispatched to workers.").Add(40)
	reg.Counter("critics_dist_tasks_retried_total",
		"Task attempts beyond the first (failure retries onto another worker).").Add(3)
	reg.Counter("critics_dist_tasks_hedged_total", "Speculative re-dispatches of straggler tasks.").Add(2)
	reg.Counter("critics_dist_hedge_wins_total", "Hedged dispatches that produced the winning result.").Add(1)
	reg.Counter("critics_dist_tasks_failed_total",
		"Tasks that exhausted every attempt (the caller falls back to local execution).").Add(1)
	reg.Gauge("critics_dist_workers_healthy", "Workers currently passing heartbeat probes.").Set(2)
	dh := reg.Histogram("critics_dist_task_seconds",
		"Distributed task latency, dispatch to result (includes retries and hedges).",
		ExpBuckets(0.001, 2, 18))
	for _, v := range []float64{0.004, 0.03, 0.03, 1.7} {
		dh.Observe(v)
	}
	reg.Gauge("critics_dist_worker_inflight", "Tasks currently in flight per worker.",
		L("worker", "http://w1:9721")).Set(2)
	reg.Counter("critics_dist_worker_tasks_total", "Tasks completed successfully per worker.",
		L("worker", "http://w1:9721")).Add(21)
	// The SLO stage-latency family (internal/obs pins the same name; this
	// locks its exposition shape including OpenMetrics-style exemplars —
	// slow buckets carry the trace id of a representative observation).
	sh := reg.Histogram("critics_slo_stage_seconds", "Job latency by stage.",
		ExpBuckets(0.001, 4, 8), L("stage", "e2e"))
	sh.Observe(0.0005)
	sh.ObserveExemplar(0.003, "j1")
	sh.ObserveExemplar(0.9, "j2")
	sh.ObserveExemplar(300, "j3") // lands in +Inf
	// The fleet ingest families (internal/fleet pins the same names).
	reg.Gauge("critics_fleet_queue_depth",
		"Profile sketches admitted to the ingest queue and not yet merged.").Set(1)
	reg.Counter("critics_fleet_rejected_total",
		"Sketch submissions refused because the ingest queue was full.").Add(3)
	reg.Counter("critics_fleet_sketch_bytes_total",
		"Encoded sketch bytes accepted for ingest.").Add(8192)
	fh := reg.Histogram("critics_fleet_merge_seconds",
		"Latency of one consensus lattice join.", ExpBuckets(0.000001, 4, 10))
	fh.Observe(0.00002)
	fh.Observe(0.0001)
	reg.Counter("critics_fleet_sketches_total",
		"Profile sketches merged into the consensus, per app.", L("app", "acrobat")).Add(12)
	reg.Gauge("critics_fleet_consensus_revision",
		"Merges that changed the app's consensus sketch.", L("app", "acrobat")).Set(9)
	reg.Gauge("critics_fleet_devices",
		"Bottom-k (KMV) estimate of distinct devices contributing to the consensus.",
		L("app", "acrobat")).Set(4)
	reg.Counter("critics_fleet_generations_total",
		"Optimizer generations completed, per app.", L("app", "acrobat")).Add(2)
	reg.Gauge("critics_fleet_converged",
		"1 when the last optimizer run converged on a winner, else 0.", L("app", "acrobat")).Set(1)
	// The artifact-store families (internal/artifact pins the same names).
	reg.Gauge("critics_artifact_blobs", "Committed blobs in the artifact store.").Set(5)
	reg.Gauge("critics_artifact_bytes", "Committed artifact bytes by tier.", L("tier", "mem")).Set(4096)
	reg.Gauge("critics_artifact_bytes", "Committed artifact bytes by tier.", L("tier", "disk")).Set(1 << 20)
	for outcome, n := range map[string]int64{"committed": 7, "duplicate": 2, "mismatch": 1} {
		reg.Counter("critics_artifact_uploads_total",
			"Upload finalizations by outcome: committed, duplicate (idempotent re-upload), mismatch (digest check failed).",
			L("outcome", outcome)).Add(n)
	}
	reg.Counter("critics_artifact_gc_removed_total", "Unreferenced blobs removed by GC.").Add(3)
	reg.Counter("critics_artifact_verify_failures_total",
		"Reads whose content failed digest verification.").Add(1)
	// The scan-pipeline families (internal/server pins the same names).
	reg.Counter("critics_scan_chunks_scored_total",
		"Trace chunks scored by scan jobs, by execution path (local, remote).", L("path", "local")).Add(20)
	reg.Counter("critics_scan_chunks_scored_total",
		"Trace chunks scored by scan jobs, by execution path (local, remote).", L("path", "remote")).Add(40)
	reg.Counter("critics_scan_reports_total", "Scan reports produced.").Add(2)
	fe := []Label{L("policy", "trrip"), L("layout", "c3")}
	reg.Counter("critics_frontend_measurements_total",
		"Front-end sweep measurements taken, by policy and layout.", fe...).Add(10)
	reg.Gauge("critics_frontend_l1i_miss_bp",
		"Mean L1I miss rate of the front-end sweep cell, basis points (1/100 percent).", fe...).Set(376)
	reg.Gauge("critics_frontend_fetch_stall_bp",
		"Mean F.StallForI share of the stage dwell for the front-end sweep cell, basis points.", fe...).Set(913)
	return reg
}

// TestWritePrometheusGolden locks the exposition format: families and
// series in sorted order, histogram buckets cumulative with le labels.
// Update with -update after intentional format changes.
func TestWritePrometheusGolden(t *testing.T) {
	var b bytes.Buffer
	if err := buildFixedRegistry().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "prometheus.golden")
	if update() {
		if err := os.WriteFile(golden, b.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b.Bytes(), want) {
		t.Errorf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", b.Bytes(), want)
	}
}

// TestServeHTTP covers the scrape endpoint: content type and a parseable
// body (every non-comment line is "name{labels} value").
func TestServeHTTP(t *testing.T) {
	reg := buildFixedRegistry()
	rec := httptest.NewRecorder()
	reg.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	for _, line := range strings.Split(strings.TrimSpace(rec.Body.String()), "\n") {
		if strings.HasPrefix(line, "#") || line == "" {
			continue
		}
		// An exemplar annotation (" # {...} value") may trail a bucket
		// sample; the sample itself must still be "name{labels} value".
		sample, exemplar, hasEx := strings.Cut(line, " # ")
		if len(strings.Fields(sample)) != 2 {
			t.Errorf("unparseable exposition line %q", line)
		}
		if hasEx && (!strings.HasPrefix(exemplar, `{trace_id="`) || len(strings.Fields(exemplar)) != 2) {
			t.Errorf("unparseable exemplar annotation %q", line)
		}
	}
}

// TestHistogramConcurrent races Observe/ObserveExemplar against scrapes on
// one histogram series — the lock-freedom proof for bucket counts and the
// exemplar pointers (run under -race in CI).
func TestHistogramConcurrent(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("test_conc_seconds", "conc", ExpBuckets(0.001, 2, 10))
	const goroutines = 8
	const iters = 5000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				v := float64(i%100) / 50
				if i%3 == 0 {
					h.ObserveExemplar(v, "job-"+string(rune('a'+g)))
				} else {
					h.Observe(v)
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			var b bytes.Buffer
			if err := reg.WritePrometheus(&b); err != nil {
				t.Errorf("scrape: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	if h.Count() != goroutines*iters {
		t.Errorf("count = %d, want %d", h.Count(), goroutines*iters)
	}
	// At least one bucket ends with an exemplar, and every exemplar's value
	// respects its bucket's bounds.
	var b bytes.Buffer
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `# {trace_id="job-`) {
		t.Errorf("no exemplar rendered:\n%s", b.String())
	}
}

// TestRegisterBuildInfo checks the build-identity gauge renders with the
// expected labels and a fixed value of 1.
func TestRegisterBuildInfo(t *testing.T) {
	reg := NewRegistry()
	RegisterBuildInfo(reg, "criticd")
	RegisterBuildInfo(reg, "criticd") // idempotent
	RegisterBuildInfo(nil, "criticd") // nil registry is a no-op
	var b bytes.Buffer
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"critics_build_info{", `component="criticd"`, "go_version=", "gomaxprocs=", "version="} {
		if !strings.Contains(out, want) {
			t.Errorf("build info missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	last := lines[len(lines)-1]
	if !strings.HasSuffix(last, " 1") {
		t.Errorf("build info value line = %q, want trailing 1", last)
	}
}
