package exp

import (
	"time"

	"critics/internal/cpu"
	"critics/internal/dfg"
	"critics/internal/sched"
	"critics/internal/trace"
	"critics/internal/workload"
)

// MeasureBatch measures several machine configurations of one (app, variant)
// in a single batched build: the configurations share a trace key (same
// generated program, seed and window), so their measurements differ only in
// the simulated machine — exactly the shape of the fig10/fig11/fig12/fig13
// design-space sweeps. Cache misses are simulated together on a cpu.BatchSim
// (one trace-generation + fanout pass feeding N lockstep lanes) and each
// lane's Measurement is then published to the memo cache under the same
// per-variant key MeasureVariant uses — so results are bit-identical to K
// independent MeasureVariant calls, later single-variant lookups hit the same
// entries, and distributed workers never see a new request shape.
//
// Batching is a build-strategy choice only. Cached configurations are served
// from the memo (Memo.Peek) without joining the batch; a single remaining
// miss, or a context with a Remote attached (fleet execution is already
// per-variant), degenerates to MeasureVariant. Under a cancelled run context
// results may be nil, as with MeasureVariant.
func (c *Context) MeasureBatch(a workload.App, kind string, cfgs []cpu.Config, collect bool) []*Measurement {
	out := make([]*Measurement, len(cfgs))
	if len(cfgs) == 0 {
		return out
	}

	// Resolve each configuration's memo key (telemetry stripped, exactly as
	// MeasureVariant), peel off cache hits and in-batch duplicates, and
	// collect the misses that are worth building together.
	keys := make([]sched.Key, len(cfgs))
	first := make(map[sched.Key]int, len(cfgs))
	dupOf := make([]int, len(cfgs))
	var miss []int
	for i, cfg := range cfgs {
		kcfg := cfg
		kcfg.Metrics = nil
		keys[i] = sched.KeyOf("meas", a.Params, kind, kcfg, collect,
			c.Seed, c.WarmupArch, c.WarmArch, c.MeasureArch, c.ProfilePlan, c.HighFanout)
		if j, ok := first[keys[i]]; ok {
			dupOf[i] = j
			continue
		}
		first[keys[i]] = i
		dupOf[i] = i
		if m, ok := c.caches.meas.Peek(keys[i]); ok {
			out[i] = m
		} else {
			miss = append(miss, i)
		}
	}

	switch {
	case len(miss) == 0:
		// Fully cached.
	case len(miss) == 1 || c.remote != nil || c.serialSweeps:
		// Nothing to batch, the fleet executes per-variant units, or the
		// serial reference schedule is forced: the established
		// single-variant path (memoized, remote-capable).
		for _, i := range miss {
			out[i] = c.MeasureVariant(a, kind, cfgs[i], collect)
		}
	default:
		missCfgs := make([]cpu.Config, len(miss))
		for bi, i := range miss {
			missCfgs[bi] = cfgs[i]
		}
		ms := c.measureBatch(a, kind, missCfgs, collect)
		for bi, i := range miss {
			m := ms[bi]
			// Publish under the per-variant key. If another goroutine built
			// the same key since the peek, the single-flight entry wins and
			// we share it — bit-identical either way. Under a cancelled run
			// context the validity check discards the value and nil comes
			// back, matching MeasureVariant.
			out[i] = memoGet(c, c.caches.meas, "measure "+a.Params.Name+"/"+kind, keys[i],
				func() *Measurement { return m }, measurementCost)
		}
	}

	for i := range out {
		if out[i] == nil && dupOf[i] != i {
			out[i] = out[dupOf[i]]
		}
	}
	return out
}

// MeasureUnit names one measurement of a design-space sweep: a compiled
// variant kind and a machine configuration.
type MeasureUnit struct {
	Kind string
	Cfg  cpu.Config
}

// MeasureSweep measures a set of units for one app, batching the units that
// share a trace key: the generated trace depends on the compiled program
// (kind), not the machine, so all configurations of one kind ride a single
// MeasureBatch build. Groups follow first-appearance order and results are
// positional, so callers index them exactly as they listed the units. Sweeps
// whose units are all distinct kinds (one machine each) degenerate to the
// plain memoized path — batching only ever changes build strategy, never
// results.
func (c *Context) MeasureSweep(a workload.App, units []MeasureUnit, collect bool) []*Measurement {
	out := make([]*Measurement, len(units))
	byKind := make(map[string][]int, len(units))
	var kinds []string
	for i, u := range units {
		if _, ok := byKind[u.Kind]; !ok {
			kinds = append(kinds, u.Kind)
		}
		byKind[u.Kind] = append(byKind[u.Kind], i)
	}
	for _, kind := range kinds {
		idx := byKind[kind]
		cfgs := make([]cpu.Config, len(idx))
		for bi, i := range idx {
			cfgs[bi] = units[i].Cfg
		}
		ms := c.MeasureBatch(a, kind, cfgs, collect)
		for bi, i := range idx {
			out[i] = ms[bi]
		}
	}
	return out
}

// measureBatch is the uncached batched build: one generated trace feeds every
// configuration as a lockstep BatchSim lane. It mirrors Measure exactly —
// same warm-up skip, warm window, measured window and per-lane WindowAgg
// observer — so lane i's Measurement is bit-identical to Measure(p, cfgs[i]).
func (c *Context) measureBatch(a workload.App, kind string, cfgs []cpu.Config, collect bool) []*Measurement {
	p, _ := c.Variant(a, kind)
	if c.tel != nil {
		for i := range cfgs {
			cfgs[i].Metrics = c.tel.Sim
		}
		c.tel.BatchedMeasurements.Add(int64(len(cfgs)))
		c.tel.BatchLanes.Observe(float64(len(cfgs)))
		defer func(start time.Time) {
			c.tel.MeasureSeconds.Observe(time.Since(start).Seconds())
		}(time.Now())
	}
	for i := range cfgs {
		cfgs[i].CollectRecords = collect
	}

	g := trace.NewGenerator(p, c.Seed)
	g.SkipArch(c.WarmupArch)
	b := cpu.NewBatch(cfgs)
	ms := make([]*Measurement, len(cfgs))
	for i := range ms {
		ms[i] = &Measurement{}
	}

	if collect {
		warm := g.GenerateArch(nil, c.WarmArch)
		dyns := g.GenerateArch(nil, c.MeasureArch)
		warmFan := dfg.Fanouts(warm, 128)
		fan := dfg.Fanouts(dyns, 128)
		b.Run(warm, warmFan)
		for i := range ms {
			b.Lane(i).OnCommit(ms[i].aggObserver(c.HighFanout))
		}
		res := b.Run(dyns, fan)
		for i := range ms {
			ms[i].Res = res[i]
			// The window is shared read-only across the batch's
			// measurements, like every cached Measurement already is.
			ms[i].Dyns, ms[i].Fanouts = dyns, fan
		}
		return ms
	}

	bufs := measureBufs.Get().(*measureBuffers)
	defer measureBufs.Put(bufs)
	bufs.src.Reset(g, c.WarmArch, trace.DefaultChunk)
	bufs.fs.Reset(&bufs.src, 128)
	b.RunStream(&bufs.fs)
	for i := range ms {
		b.Lane(i).OnCommit(ms[i].aggObserver(c.HighFanout))
	}
	bufs.src.Reset(g, c.MeasureArch, trace.DefaultChunk)
	bufs.fs.Reset(&bufs.src, 128)
	res := b.RunStream(&bufs.fs)
	for i := range ms {
		ms[i].Res = res[i]
	}
	return ms
}
