package exp

import (
	"testing"

	"critics/internal/trace"
)

// determinismCtx returns a reduced-scale context with the given worker
// bound. Each schedule gets its own context so the two runs share nothing
// but the configuration.
func determinismCtx(workers int) *Context {
	c := QuickContext()
	c.WarmupArch = 4_000
	c.WarmArch = 5_000
	c.MeasureArch = 12_000
	c.ProfilePlan = trace.SamplePlan{Samples: 3, Length: 8_000, Gap: 2_000, Warmup: 2_000}
	c.Workers = workers
	return c
}

// TestParallelDeterminism is the engine's core guarantee: every experiment
// in the registry produces byte-identical output under the serial reference
// schedule (workers=1) and a heavily parallel one (workers=8). It guards the
// merge logic — index-addressed shard storage, post-Map reductions in index
// order, and the window-order merge in core.BuildProfile — against any
// future change that lets goroutine scheduling leak into results.
func TestParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full registry sweep; skipped in -short")
	}
	serial := determinismCtx(1)
	parallel := determinismCtx(8)
	for _, id := range IDs() {
		want, err := Run(id, serial)
		if err != nil {
			t.Fatalf("%s (serial): %v", id, err)
		}
		got, err := Run(id, parallel)
		if err != nil {
			t.Fatalf("%s (workers=8): %v", id, err)
		}
		if got != want {
			t.Errorf("%s: workers=8 output differs from serial\n--- serial ---\n%s\n--- workers=8 ---\n%s", id, want, got)
		}
	}
}
