package exp

import (
	"strings"
	"testing"
)

func rowsBySuite3(r *Fig3Result) map[string]Fig3Row {
	m := map[string]Fig3Row{}
	for _, row := range r.Rows {
		m[row.Suite] = row
	}
	return m
}

func TestFig3Shapes(t *testing.T) {
	r := RunFig3(shared)
	m := rowsBySuite3(r)
	android, sInt, sFloat := m["android"], m["spec.int"], m["spec.float"]

	// 3a: mobile critical instructions are the most fetch-bound suite.
	if android.Fetch <= sInt.Fetch || android.Fetch <= sFloat.Fetch {
		t.Errorf("mobile fetch share %.3f not the largest (int %.3f, float %.3f)",
			android.Fetch, sInt.Fetch, sFloat.Fetch)
	}
	// SPEC is back-ended: execute+commit dominates.
	for _, s := range []Fig3Row{sInt, sFloat} {
		if s.Execute+s.Commit < 0.5 {
			t.Errorf("%s execute+commit %.3f; SPEC should be back-ended", s.Suite, s.Execute+s.Commit)
		}
	}
	// 3b: mobile's fetch stalls are producer-side dominated.
	if android.FStallForI <= android.FStallForRD {
		t.Errorf("mobile F.StallForI %.3f <= F.StallForR+D %.3f", android.FStallForI, android.FStallForRD)
	}
	// 3c: mobile has far fewer long-latency critical instructions than SPEC.int.
	if android.Lat4Plus >= sInt.Lat4Plus {
		t.Errorf("mobile 4+cyc %.3f >= spec.int %.3f", android.Lat4Plus, sInt.Lat4Plus)
	}
	if !strings.Contains(r.String(), "Fig 3a") {
		t.Error("formatting broken")
	}
}

func TestFig1bShapes(t *testing.T) {
	r := RunFig1b(shared)
	m := map[string]Fig1bRow{}
	for _, row := range r.Rows {
		m[row.Suite] = row
	}
	android := m["android"]
	// Mobile: a solid fraction of high-fanout members have low-fanout
	// members between them and their next high-fanout successor.
	gapped := android.GapFrac[1] + android.GapFrac[2] + android.GapFrac[3] +
		android.GapFrac[4] + android.GapFrac[5]
	if gapped < 0.15 {
		t.Errorf("mobile gapped fraction %.3f too small", gapped)
	}
	// SPEC: essentially no gapped dependences; direct or none dominate.
	for _, suite := range []string{"spec.int", "spec.float"} {
		row := m[suite]
		g := row.GapFrac[1] + row.GapFrac[2]
		if g > gapped {
			t.Errorf("%s gapped %.3f >= mobile %.3f", suite, g, gapped)
		}
		if row.GapFrac[0]+row.NoneFrac < 0.7 {
			t.Errorf("%s direct+none %.3f; should dominate", suite, row.GapFrac[0]+row.NoneFrac)
		}
	}
}

func TestFig5aShapes(t *testing.T) {
	r := RunFig5a(shared)
	m := map[string]Fig5aRow{}
	for _, row := range r.Rows {
		m[row.Suite] = row
	}
	android := m["android"]
	for _, suite := range []string{"spec.int", "spec.float"} {
		s := m[suite]
		if s.MaxLen <= 4*android.MaxLen {
			t.Errorf("%s max chain %d not far beyond mobile %d", suite, s.MaxLen, android.MaxLen)
		}
		if s.MaxSpread <= 2*android.MaxSpread {
			t.Errorf("%s max spread %d not far beyond mobile %d", suite, s.MaxSpread, android.MaxSpread)
		}
	}
	// Mobile chains stay software-trackable (the §III-A2 argument).
	if android.MaxLen > 64 {
		t.Errorf("mobile max chain %d; should stay small", android.MaxLen)
	}
}

func TestFig12aBestLengthIsFive(t *testing.T) {
	if testing.Short() {
		t.Skip("fig12a sweep is expensive")
	}
	r := RunFig12a(shared)
	if r.BestN != 5 {
		t.Errorf("best exact chain length %d, want 5 (paper §IV-H)", r.BestN)
	}
	// Coverage at n>=7 collapses (chains that long are not generated).
	for _, row := range r.Rows {
		if row.N >= 7 && row.CoverageFrac > 0.01 {
			t.Errorf("n=%d coverage %.3f; should be near zero", row.N, row.CoverageFrac)
		}
	}
}

func TestFig12bMonotone(t *testing.T) {
	if testing.Short() {
		t.Skip("fig12b sweep is expensive")
	}
	r := RunFig12b(shared)
	if len(r.Rows) < 3 {
		t.Fatal("too few rows")
	}
	first, last := r.Rows[0], r.Rows[len(r.Rows)-1]
	if last.SpeedupPct <= first.SpeedupPct {
		t.Errorf("full profiling (%.2f%%) not better than %d%% profiling (%.2f%%)",
			last.SpeedupPct, first.ProfiledPct, first.SpeedupPct)
	}
}

func TestFig11Composition(t *testing.T) {
	if testing.Short() {
		t.Skip("fig11 sweep is expensive")
	}
	r := RunFig11(shared)
	// The paper's synergy claim: CritIC on top of each hardware mechanism
	// improves on the mechanism alone.
	for _, row := range r.Rows {
		if row.WithCritICPct <= row.AlonePct {
			t.Errorf("%s: +CritIC %.2f%% <= alone %.2f%%", row.Mech, row.WithCritICPct, row.AlonePct)
		}
	}
	if r.CritICAlonePct <= 0 {
		t.Errorf("CritIC alone %.2f%%", r.CritICAlonePct)
	}
}
