package exp

import (
	"fmt"
	"strings"

	"critics/internal/cpu"
	"critics/internal/stats"
	"critics/internal/workload"
)

// HWMech names a hardware fetch/backend mechanism of §IV-G.
type HWMech string

// The hardware mechanisms compared in Fig. 11.
const (
	HW2xFD        HWMech = "2xFD"
	HW4xICache    HWMech = "4xICache"
	HWEFetch      HWMech = "EFetch"
	HWPerfectBr   HWMech = "PerfectBr"
	HWBackendPrio HWMech = "BackendPrio"
	HWAll         HWMech = "AllHW"
)

// HWMechs is the presentation order.
var HWMechs = []HWMech{HW2xFD, HW4xICache, HWEFetch, HWPerfectBr, HWBackendPrio, HWAll}

// ApplyHW returns a core configuration with the mechanism enabled.
func ApplyHW(m HWMech) cpu.Config {
	cfg := cpu.DefaultConfig()
	switch m {
	case HW2xFD:
		cfg.FetchBytes *= 2
		cfg.FetchWidth *= 2
		cfg.DecodeWidth *= 2
		cfg.Hier.L1I.HitLat = 1
	case HW4xICache:
		cfg.Hier.L1I.SizeBytes *= 4
	case HWEFetch:
		cfg.Hier.EFetchDepth = 4
	case HWPerfectBr:
		cfg.BPU.Perfect = true
	case HWBackendPrio:
		cfg.BackendPrio = true
	case HWAll:
		cfg.Hier.L1I.SizeBytes *= 4
		cfg.Hier.EFetchDepth = 4
		cfg.BPU.Perfect = true
		cfg.BackendPrio = true
	}
	return cfg
}

// Fig11Row is one mechanism's mean result across the mobile apps.
type Fig11Row struct {
	Mech          HWMech
	AlonePct      float64 // mechanism alone
	WithCritICPct float64 // mechanism + CritIC binary

	// Fig. 11b: fetch-stall residency fractions under the mechanism.
	FStallForI, FStallForRD float64
}

// Fig11Result reproduces Fig. 11a/11b.
type Fig11Result struct {
	CritICAlonePct float64 // software-only CritIC for reference
	BaseFI, BaseRD float64
	Rows           []Fig11Row
}

// RunFig11 compares the hardware mechanisms with and without CritIC.
func RunFig11(c *Context) *Fig11Result {
	apps := workload.MobileApps()
	nm := len(HWMechs)

	type appOut struct {
		critic float64
		alone  [8]float64
		with   [8]float64
		fi     [8]float64
		rd     [8]float64
		baseFI float64
		baseRD float64
	}
	outs := make([]appOut, len(apps))
	c.forEach(len(apps), func(i int) {
		a := apps[i]

		// All seven machine configurations of a variant share its trace, so
		// each variant is one batched build (a 7-lane BatchSim on a cache-cold
		// context) instead of seven trace passes.
		cfgs := make([]cpu.Config, 1+nm)
		cfgs[0] = cpu.DefaultConfig()
		for mi, mech := range HWMechs {
			cfgs[1+mi] = ApplyHW(mech)
		}
		baseMs := c.MeasureBatch(a, VarBase, cfgs, false)
		critMs := c.MeasureBatch(a, VarCritIC, cfgs, false)

		base := baseMs[0]
		outs[i].critic = Speedup(base, critMs[0])
		_, allB, _ := c.critBreakdown(base)
		if t := allB.Total(); t > 0 {
			outs[i].baseFI = float64(allB.FetchI) / float64(t)
			outs[i].baseRD = float64(allB.FetchRD) / float64(t)
		}

		for mi := range HWMechs {
			mAlone := baseMs[1+mi]
			outs[i].alone[mi] = Speedup(base, mAlone)
			_, all, _ := c.critBreakdown(mAlone)
			if t := all.Total(); t > 0 {
				outs[i].fi[mi] = float64(all.FetchI) / float64(t)
				outs[i].rd[mi] = float64(all.FetchRD) / float64(t)
			}
			outs[i].with[mi] = Speedup(base, critMs[1+mi])
		}
	})

	res := &Fig11Result{}
	var critics []float64
	for i := range outs {
		critics = append(critics, outs[i].critic)
		res.BaseFI += outs[i].baseFI / float64(len(outs))
		res.BaseRD += outs[i].baseRD / float64(len(outs))
	}
	res.CritICAlonePct = stats.Mean(critics)
	for mi := 0; mi < nm; mi++ {
		var alone, with, fi, rd []float64
		for i := range outs {
			alone = append(alone, outs[i].alone[mi])
			with = append(with, outs[i].with[mi])
			fi = append(fi, outs[i].fi[mi])
			rd = append(rd, outs[i].rd[mi])
		}
		res.Rows = append(res.Rows, Fig11Row{
			Mech:          HWMechs[mi],
			AlonePct:      stats.Mean(alone),
			WithCritICPct: stats.Mean(with),
			FStallForI:    stats.Mean(fi),
			FStallForRD:   stats.Mean(rd),
		})
	}
	return res
}

// String formats the figure.
func (r *Fig11Result) String() string {
	var b strings.Builder
	b.WriteString("Fig 11a: hardware mechanisms vs CritIC (mean speedup %, mobile apps)\n")
	fmt.Fprintf(&b, "  %-14s %10s %14s\n", "mechanism", "alone%", "withCritIC%")
	fmt.Fprintf(&b, "  %-14s %10.2f %14s\n", "CritIC(SW)", r.CritICAlonePct, "-")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-14s %10.2f %14.2f\n", row.Mech, row.AlonePct, row.WithCritICPct)
	}
	b.WriteString("Fig 11b: fetch-stall residency under each mechanism (fractions; baseline first)\n")
	fmt.Fprintf(&b, "  %-14s %12s %14s\n", "mechanism", "F.StallForI", "F.StallForR+D")
	fmt.Fprintf(&b, "  %-14s %12.3f %14.3f\n", "baseline", r.BaseFI, r.BaseRD)
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-14s %12.3f %14.3f\n", row.Mech, row.FStallForI, row.FStallForRD)
	}
	return b.String()
}
