package exp

import (
	"encoding/json"

	"critics/internal/sched"
)

// EnableMeasurementSpill attaches st (typically an artifact-store adapter)
// as the second-chance tier of the measurement cache: measurements the
// retention budget would drop on admission are JSON-encoded into the store
// instead, and later lookups decode them back rather than re-simulating.
// The codec round-trips exactly — Measurement is plain exported data, and
// Go's JSON float encoding is shortest-exact — so spilled values preserve
// the engine's bit-identical-results contract. Call before the caches see
// traffic.
func (s *Caches) EnableMeasurementSpill(st sched.SpillStore) {
	s.meas.EnableSpill(st,
		func(m *Measurement) ([]byte, error) { return json.Marshal(m) },
		func(b []byte) (*Measurement, error) {
			m := new(Measurement)
			if err := json.Unmarshal(b, m); err != nil {
				return nil, err
			}
			return m, nil
		})
}
