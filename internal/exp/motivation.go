package exp

import (
	"fmt"
	"strings"

	"critics/internal/cpu"
	"critics/internal/dfg"
	"critics/internal/stats"
	"critics/internal/workload"
)

// ---------------------------------------------------------------- Fig. 1a

// Fig1aRow is one suite's result: the mean speedup of the two
// single-instruction criticality optimizations and the fraction of
// individually critical instructions (right axis).
type Fig1aRow struct {
	Suite        string
	PrefetchPct  float64 // critical-load prefetching [18]
	PrioPct      float64 // ALU/backend prioritization [32][33]
	CriticalFrac float64
}

// Fig1aResult reproduces Fig. 1a.
type Fig1aResult struct {
	Rows []Fig1aRow
}

// RunFig1a measures both single-instruction criticality baselines on all
// three suites.
//
// Reference point: the original criticality works ([18], [32], [33]) report
// their gains over machines without the mechanism, so this figure's baseline
// disables the L2 CLPT prefetcher; the "prefetch" configuration is the full
// [18] stack — CLPT at the L2 plus criticality-directed prefetching of
// predicted-critical loads into the L1. (All other experiments use the
// Table I baseline, which includes the CLPT.)
func RunFig1a(c *Context) *Fig1aResult {
	out := &Fig1aResult{}
	suites := Suites()
	for _, suite := range SuiteOrder {
		apps := suites[suite]
		pf := make([]float64, len(apps))
		pr := make([]float64, len(apps))
		cf := make([]float64, len(apps))
		c.forEach(len(apps), func(i int) {
			a := apps[i]
			noPF := cpu.DefaultConfig()
			noPF.Hier.CLPTEntries = 0
			base := c.MeasureVariant(a, VarBase, noPF, false)

			cfgPF := cpu.DefaultConfig()
			cfgPF.CriticalLoadPrefetch = true
			mPF := c.MeasureVariant(a, VarBase, cfgPF, false)

			cfgPR := noPF
			cfgPR.BackendPrio = true
			mPR := c.MeasureVariant(a, VarBase, cfgPR, false)

			pf[i] = Speedup(base, mPF)
			pr[i] = Speedup(base, mPR)
			if base.Res.AllDyns > 0 {
				cf[i] = float64(base.Agg.CritDyns) / float64(base.Res.AllDyns)
			}
		})
		out.Rows = append(out.Rows, Fig1aRow{
			Suite:        suite,
			PrefetchPct:  stats.Mean(pf),
			PrioPct:      stats.Mean(pr),
			CriticalFrac: stats.Mean(cf),
		})
	}
	return out
}

// String formats the figure.
func (r *Fig1aResult) String() string {
	var b strings.Builder
	b.WriteString("Fig 1a: single-instruction criticality optimizations (mean speedup %, critical-instruction fraction)\n")
	fmt.Fprintf(&b, "  %-12s %12s %12s %14s\n", "suite", "prefetch%", "prioritize%", "critical-frac")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-12s %12.2f %12.2f %14.3f\n", row.Suite, row.PrefetchPct, row.PrioPct, row.CriticalFrac)
	}
	return b.String()
}

// ---------------------------------------------------------------- Fig. 1b

// Fig1bRow is one suite's dependence-chain gap distribution: the fraction of
// high-fanout chain members whose next high-fanout successor in the chain is
// k low-fanout members away (k = 0 is a direct dependence), plus the
// fraction with no dependent high-fanout successor at all.
type Fig1bRow struct {
	Suite    string
	GapFrac  [6]float64 // k = 0..5
	OverFrac float64    // k > 5
	NoneFrac float64
}

// Fig1bResult reproduces Fig. 1b.
type Fig1bResult struct {
	Rows []Fig1bRow
}

// RunFig1b measures chain gap structure on all three suites.
func RunFig1b(c *Context) *Fig1bResult {
	out := &Fig1bResult{}
	suites := Suites()
	for _, suite := range SuiteOrder {
		apps := suites[suite]
		agg := dfg.GapResult{Gaps: stats.NewHistogram(5)}
		var mu = make([]dfg.GapResult, len(apps))
		c.forEach(len(apps), func(i int) {
			a := apps[i]
			chunk := 1024
			if suite != "android" {
				chunk = 8192
			}
			// Chain structure only needs the trace, not the simulation:
			// stream extraction straight off the measure window.
			g := dfg.GapResult{Gaps: stats.NewHistogram(5)}
			opt := dfg.Options{ChunkSize: chunk, FanoutWindow: 128, MinLen: 2}
			dfg.StreamChains(c.windowSource(a, VarBase, chunk), opt, func(ch *dfg.Chain, fanOf func(int32) int32) {
				g.AddChain(ch, fanOf, c.HighFanout)
			})
			mu[i] = g
		})
		for _, g := range mu {
			agg.Gaps.Merge(g.Gaps)
			agg.None += g.None
		}
		row := Fig1bRow{Suite: suite}
		total := float64(agg.Gaps.Total + agg.None)
		if total > 0 {
			for k := 0; k <= 5; k++ {
				row.GapFrac[k] = float64(agg.Gaps.Counts[k]) / total
			}
			row.OverFrac = float64(agg.Gaps.Overflow) / total
			row.NoneFrac = float64(agg.None) / total
		}
		out.Rows = append(out.Rows, row)
	}
	return out
}

// String formats the figure.
func (r *Fig1bResult) String() string {
	var b strings.Builder
	b.WriteString("Fig 1b: low-fanout gaps between successive high-fanout instructions in dependence chains (fractions)\n")
	fmt.Fprintf(&b, "  %-12s %6s %6s %6s %6s %6s %6s %6s %6s\n", "suite", "0", "1", "2", "3", "4", "5", ">5", "none")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-12s", row.Suite)
		for k := 0; k <= 5; k++ {
			fmt.Fprintf(&b, " %6.3f", row.GapFrac[k])
		}
		fmt.Fprintf(&b, " %6.3f %6.3f\n", row.OverFrac, row.NoneFrac)
	}
	return b.String()
}

// ---------------------------------------------------------------- Fig. 3

// Fig3Row is one suite's pipeline-stage residency breakdown for high-fanout
// instructions (Fig. 3a), the fetch-stall split (Fig. 3b) and the latency
// mix (Fig. 3c).
type Fig3Row struct {
	Suite string

	// 3a: residency fractions (sum to 1).
	Fetch, Decode, Rename, Execute, Commit float64

	// 3b: fetch split as fractions of total residency.
	FStallForI, FStallForRD float64

	// 3c: latency-class fractions of high-fanout instructions.
	Lat1, Lat2to3, Lat4Plus float64
}

// Fig3Result reproduces Fig. 3a/3b/3c.
type Fig3Result struct {
	Rows []Fig3Row
}

// RunFig3 measures stage residency of critical instructions per suite.
func RunFig3(c *Context) *Fig3Result {
	out := &Fig3Result{}
	suites := Suites()
	for _, suite := range SuiteOrder {
		apps := suites[suite]
		rows := make([]Fig3Row, len(apps))
		c.forEach(len(apps), func(i int) {
			a := apps[i]
			m := c.MeasureVariant(a, VarBase, cpu.DefaultConfig(), false)
			crit, _, n := c.critBreakdown(m)
			var row Fig3Row
			tot := float64(crit.Total())
			if tot > 0 {
				row.Fetch = float64(crit.FetchI+crit.FetchRD) / tot
				row.Decode = float64(crit.Decode) / tot
				row.Rename = float64(crit.Rename) / tot
				row.Execute = float64(crit.Execute) / tot
				row.Commit = float64(crit.Commit) / tot
				row.FStallForI = float64(crit.FetchI) / tot
				row.FStallForRD = float64(crit.FetchRD) / tot
			}
			// Latency mix from *measured* execute time (loads include
			// their memory time), which is what Fig. 3c contrasts —
			// folded during the streaming pass (WindowAgg).
			l1, l23, l4 := m.Agg.CritLat1, m.Agg.CritLat2to3, m.Agg.CritLat4Plus
			if n > 0 && l1+l23+l4 > 0 {
				tot := float64(l1 + l23 + l4)
				row.Lat1 = float64(l1) / tot
				row.Lat2to3 = float64(l23) / tot
				row.Lat4Plus = float64(l4) / tot
			}
			rows[i] = row
		})
		var agg Fig3Row
		agg.Suite = suite
		for _, r := range rows {
			agg.Fetch += r.Fetch
			agg.Decode += r.Decode
			agg.Rename += r.Rename
			agg.Execute += r.Execute
			agg.Commit += r.Commit
			agg.FStallForI += r.FStallForI
			agg.FStallForRD += r.FStallForRD
			agg.Lat1 += r.Lat1
			agg.Lat2to3 += r.Lat2to3
			agg.Lat4Plus += r.Lat4Plus
		}
		n := float64(len(rows))
		agg.Fetch /= n
		agg.Decode /= n
		agg.Rename /= n
		agg.Execute /= n
		agg.Commit /= n
		agg.FStallForI /= n
		agg.FStallForRD /= n
		agg.Lat1 /= n
		agg.Lat2to3 /= n
		agg.Lat4Plus /= n
		out.Rows = append(out.Rows, agg)
	}
	return out
}

// String formats the figure.
func (r *Fig3Result) String() string {
	var b strings.Builder
	b.WriteString("Fig 3a: stage residency of high-fanout instructions (fractions)\n")
	fmt.Fprintf(&b, "  %-12s %7s %7s %7s %7s %7s\n", "suite", "fetch", "decode", "rename", "exec", "commit")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-12s %7.3f %7.3f %7.3f %7.3f %7.3f\n", row.Suite, row.Fetch, row.Decode, row.Rename, row.Execute, row.Commit)
	}
	b.WriteString("Fig 3b: fetch-stall split (fractions of total residency)\n")
	fmt.Fprintf(&b, "  %-12s %12s %12s\n", "suite", "F.StallForI", "F.StallForR+D")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-12s %12.3f %12.3f\n", row.Suite, row.FStallForI, row.FStallForRD)
	}
	b.WriteString("Fig 3c: latency mix of high-fanout instructions\n")
	fmt.Fprintf(&b, "  %-12s %8s %8s %8s\n", "suite", "1cyc", "2-3cyc", "4+cyc")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-12s %8.3f %8.3f %8.3f\n", row.Suite, row.Lat1, row.Lat2to3, row.Lat4Plus)
	}
	return b.String()
}

// ---------------------------------------------------------------- Fig. 5a

// Fig5aRow is one suite's IC length/spread summary.
type Fig5aRow struct {
	Suite string
	dfg.LengthSpread
}

// Fig5aResult reproduces Fig. 5a.
type Fig5aResult struct {
	Rows []Fig5aRow
}

// RunFig5a measures unrestricted IC length and spread per suite.
func RunFig5a(c *Context) *Fig5aResult {
	out := &Fig5aResult{}
	suites := Suites()
	for _, suite := range SuiteOrder {
		apps := suites[suite]
		parts := make([]dfg.LengthSpreadAcc, len(apps))
		c.forEach(len(apps), func(i int) {
			a := apps[i]
			chunk := 2048
			if suite != "android" {
				chunk = 16384
			}
			opt := dfg.Options{ChunkSize: chunk, FanoutWindow: 128, MinLen: 2}
			dfg.StreamChains(c.windowSource(a, VarBase, chunk), opt, func(ch *dfg.Chain, _ func(int32) int32) {
				parts[i].Add(ch)
			})
		})
		var all dfg.LengthSpreadAcc
		for i := range parts {
			all.Merge(&parts[i])
		}
		out.Rows = append(out.Rows, Fig5aRow{Suite: suite, LengthSpread: all.Summary()})
	}
	return out
}

// String formats the figure.
func (r *Fig5aResult) String() string {
	var b strings.Builder
	b.WriteString("Fig 5a: instruction-chain length and dynamic spread\n")
	fmt.Fprintf(&b, "  %-12s %8s %10s %8s %10s %8s\n", "suite", "maxLen", "maxSpread", "p99Len", "p99Spread", "meanLen")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-12s %8d %10d %8.1f %10.1f %8.2f\n",
			row.Suite, row.MaxLen, row.MaxSpread, row.P99Len, row.P99Spread, row.MeanLen)
	}
	return b.String()
}

// ---------------------------------------------------------------- Fig. 5b

// Fig5bResult reproduces Fig. 5b: the CDF of dynamic coverage by unique
// CritIC candidates, over all candidates and the 16-bit-representable
// subset, aggregated across the mobile apps.
type Fig5bResult struct {
	UniqueChains  int
	ThumbOKFrac   float64
	CoverageAll   []stats.CDFPoint
	CoverageThumb []stats.CDFPoint
}

// RunFig5b profiles every mobile app and aggregates the coverage CDFs.
func RunFig5b(c *Context) *Fig5bResult {
	apps := workload.MobileApps()
	type part struct {
		unique  int
		thumbOK float64
		all     *stats.CDF
		thumb   *stats.CDF
	}
	parts := make([]part, len(apps))
	c.forEach(len(apps), func(i int) {
		prof := c.Profile(apps[i], true, 1) // ideal: keep non-representable candidates visible
		all, thumb := prof.CoverageCDF()
		parts[i] = part{unique: prof.UniqueChains(), thumbOK: prof.ThumbRepresentableFrac(), all: all, thumb: thumb}
	})
	out := &Fig5bResult{}
	var thumbSum float64
	agg, aggT := &stats.CDF{}, &stats.CDF{}
	for _, p := range parts {
		out.UniqueChains += p.unique
		thumbSum += p.thumbOK
		for _, pt := range p.all.Points(64) {
			agg.Add(pt.X, 1)
		}
		for _, pt := range p.thumb.Points(64) {
			aggT.Add(pt.X, 1)
		}
	}
	out.ThumbOKFrac = thumbSum / float64(len(parts))
	out.CoverageAll = agg.Points(16)
	out.CoverageThumb = aggT.Points(16)
	return out
}

// String formats the figure.
func (r *Fig5bResult) String() string {
	var b strings.Builder
	b.WriteString("Fig 5b: unique CritIC candidates and 16-bit representability\n")
	fmt.Fprintf(&b, "  unique chains (all mobile apps): %d\n", r.UniqueChains)
	fmt.Fprintf(&b, "  fraction representable in 16-bit as-is: %.3f (paper: ~0.955)\n", r.ThumbOKFrac)
	return b.String()
}
