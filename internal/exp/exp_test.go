package exp

import (
	"strings"
	"testing"
)

// testCtx returns a small context shared by the tests in this file (caching
// makes reuse across tests cheap only within one Context).
func testCtx() *Context {
	c := QuickContext()
	c.WarmupArch = 8_000
	c.WarmArch = 10_000
	c.MeasureArch = 30_000
	c.ProfilePlan.Samples = 5
	c.ProfilePlan.Length = 12_000
	return c
}

var shared = testCtx()

func TestFig1aShape(t *testing.T) {
	r := RunFig1a(shared)
	if len(r.Rows) != 3 {
		t.Fatalf("got %d rows", len(r.Rows))
	}
	byS := map[string]Fig1aRow{}
	for _, row := range r.Rows {
		byS[row.Suite] = row
	}
	// The paper's central motivation: prefetching critical loads does far
	// less for mobile apps than for SPEC, despite mobile having MORE
	// critical instructions.
	if byS["android"].PrefetchPct >= byS["spec.int"].PrefetchPct {
		t.Errorf("prefetch: android %.2f%% >= spec.int %.2f%%", byS["android"].PrefetchPct, byS["spec.int"].PrefetchPct)
	}
	if byS["android"].PrefetchPct >= byS["spec.float"].PrefetchPct {
		t.Errorf("prefetch: android %.2f%% >= spec.float %.2f%%", byS["android"].PrefetchPct, byS["spec.float"].PrefetchPct)
	}
	if byS["android"].CriticalFrac <= byS["spec.float"].CriticalFrac {
		t.Errorf("critical fraction: android %.3f <= spec.float %.3f", byS["android"].CriticalFrac, byS["spec.float"].CriticalFrac)
	}
	if !strings.Contains(r.String(), "Fig 1a") {
		t.Error("formatting broken")
	}
}

func TestFig10Shape(t *testing.T) {
	r := RunFig10(shared)
	if len(r.Rows) != 10 {
		t.Fatalf("got %d rows", len(r.Rows))
	}
	// CritIC must clearly beat Hoist-only on average, and every app must
	// see a positive CritIC gain.
	if r.MeanCritIC <= r.MeanHoist {
		t.Errorf("CritIC %.2f%% <= Hoist %.2f%%", r.MeanCritIC, r.MeanHoist)
	}
	if r.MeanCritIC < 1.0 {
		t.Errorf("mean CritIC speedup %.2f%% too small", r.MeanCritIC)
	}
	for _, row := range r.Rows {
		if row.CritICPct < 0 {
			t.Errorf("%s: CritIC slowdown %.2f%%", row.App, row.CritICPct)
		}
	}
	// Energy: system saving positive, CPU-only saving larger than system
	// saving, i-cache component positive.
	if r.MeanEnergy.TotalPct <= 0 {
		t.Errorf("no system energy saving: %+v", r.MeanEnergy)
	}
	if r.MeanEnergy.CPUOnlyPct <= r.MeanEnergy.TotalPct {
		t.Errorf("CPU-only saving %.2f%% should exceed system %.2f%%", r.MeanEnergy.CPUOnlyPct, r.MeanEnergy.TotalPct)
	}
}

func TestFig13Shape(t *testing.T) {
	r := RunFig13(shared)
	rows := map[string]Fig13Row{}
	for _, row := range r.Rows {
		rows[row.Scheme] = row
	}
	// Fig 13b ordering: CritIC converts the least, Compress the most.
	if rows["CritIC"].ThumbDynFrac >= rows["OPP16"].ThumbDynFrac {
		t.Errorf("CritIC dyn-thumb %.3f >= OPP16 %.3f", rows["CritIC"].ThumbDynFrac, rows["OPP16"].ThumbDynFrac)
	}
	if rows["OPP16"].ThumbDynFrac >= rows["Compress"].ThumbDynFrac {
		t.Errorf("OPP16 dyn-thumb %.3f >= Compress %.3f", rows["OPP16"].ThumbDynFrac, rows["Compress"].ThumbDynFrac)
	}
	// Fig 13a: the combination must beat CritIC alone.
	if rows["OPP16+CritIC"].SpeedupPct <= rows["CritIC"].SpeedupPct {
		t.Errorf("OPP16+CritIC %.2f%% <= CritIC %.2f%%", rows["OPP16+CritIC"].SpeedupPct, rows["CritIC"].SpeedupPct)
	}
}

func TestFig8Shape(t *testing.T) {
	r := RunFig8(shared)
	// Branch-pair switching must lose most of the potential (paper: 3% of
	// ~14%): actual < potential across the mean.
	if r.MeanActual >= r.MeanPotential {
		t.Errorf("branch switch %.2f%% >= potential %.2f%%", r.MeanActual, r.MeanPotential)
	}
}

func TestFig5bShape(t *testing.T) {
	r := RunFig5b(shared)
	if r.UniqueChains < 100 {
		t.Errorf("only %d unique chains", r.UniqueChains)
	}
	if r.ThumbOKFrac < 0.8 || r.ThumbOKFrac > 1.0 {
		t.Errorf("thumb-representable fraction %.3f; paper reports ~0.955", r.ThumbOKFrac)
	}
}

func TestTables(t *testing.T) {
	if !strings.Contains(Table1String(), "128 ROB") {
		t.Error("Table I missing ROB size")
	}
	if !strings.Contains(Table2String(), "acrobat") {
		t.Error("Table II missing apps")
	}
}

func TestRegistry(t *testing.T) {
	if len(IDs()) != 22 {
		t.Errorf("registry has %d ids", len(IDs()))
	}
	if _, err := Run("nope", shared); err == nil {
		t.Error("unknown id accepted")
	}
	out, err := Run("tab1", shared)
	if err != nil || out == "" {
		t.Error("tab1 failed")
	}
}

func TestAblateCDPOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation sweep is expensive")
	}
	r := RunAblateCDP(shared)
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	free, bubble, branch := r.Rows[0].CritICPct, r.Rows[1].CritICPct, r.Rows[2].CritICPct
	if free < bubble {
		t.Errorf("free switch %.2f%% < +1 bubble %.2f%%", free, bubble)
	}
	if bubble <= branch {
		t.Errorf("CDP %.2f%% <= branch-pair %.2f%%; Approach 1 must cost more", bubble, branch)
	}
}

func TestAblateFetchScaling(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation sweep is expensive")
	}
	r := RunAblateFetch(shared)
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// Wider port -> higher baseline IPC and smaller conversion gains.
	if r.Rows[0].BaselineIPC >= r.Rows[2].BaselineIPC {
		t.Errorf("IPC did not grow with port width: %.3f vs %.3f", r.Rows[0].BaselineIPC, r.Rows[2].BaselineIPC)
	}
	if r.Rows[0].OPP16Pct <= r.Rows[2].OPP16Pct {
		t.Errorf("OPP16 gain did not shrink with port width: %.2f%% vs %.2f%%", r.Rows[0].OPP16Pct, r.Rows[2].OPP16Pct)
	}
}
