package exp

import (
	"fmt"
	"strings"

	"critics/internal/cache"
	"critics/internal/cpu"
	"critics/internal/layout"
	"critics/internal/stats"
	"critics/internal/telemetry"
	"critics/internal/workload"
)

// LayoutSuffix separates a compiler variant kind from its code-layout pass
// in composed kinds like "critic+lay-c3". The composed string is the memo
// and wire identity of the variant, so the layout axis flows through the
// measurement caches, batched sweeps and distributed execution with no
// request-shape change.
const LayoutSuffix = "+lay-"

// FrontendKind composes a variant kind with a layout pass ("", "none" and
// KindNone leave the kind unchanged — the seed layout).
func FrontendKind(kind, lay string) string {
	if lay == "" || lay == layout.KindNone {
		return kind
	}
	return kind + LayoutSuffix + lay
}

// splitLayoutKind splits "critic+lay-c3" into ("critic", "c3", true).
func splitLayoutKind(kind string) (inner, lay string, ok bool) {
	i := strings.LastIndex(kind, LayoutSuffix)
	if i < 0 {
		return "", "", false
	}
	return kind[:i], kind[i+len(LayoutSuffix):], true
}

// FrontendPolicies lists the I-cache replacement policies the front-end
// sweep covers, in presentation order.
func FrontendPolicies() []string {
	return []string{cache.PolicyLRU, cache.PolicySRRIP, cache.PolicyTRRIP}
}

// FrontendLayouts lists the layout passes fig-frontend sweeps (the full
// flag-selectable set is layout.Kinds, which adds "hot").
func FrontendLayouts() []string { return []string{layout.KindNone, layout.KindC3} }

// ValidateFrontend checks a policy/layout pair coming from flags or API
// options before it reaches a panic deep in cache/layout construction.
func ValidateFrontend(policy, lay string) error {
	if policy != "" {
		found := false
		for _, p := range cache.Policies() {
			if p == policy {
				found = true
			}
		}
		if !found {
			return fmt.Errorf("exp: unknown L1I policy %q (known: %v)", policy, cache.Policies())
		}
	}
	if lay != "" {
		found := false
		for _, k := range layout.Kinds() {
			if k == lay {
				found = true
			}
		}
		if !found {
			return fmt.Errorf("exp: unknown code layout %q (known: %v)", lay, layout.Kinds())
		}
	}
	return nil
}

// FrontendConfig returns the Table I baseline with the named replacement
// policy on the L1I. "" and "lru" return the unmodified default so the
// measurement shares cache identity (and bit-identity) with every other
// experiment's default-machine runs. trrip additionally threads temperature
// hints derived from the app's profile over the variant's laid-out code —
// the hints depend on the layout, which is why the variant kind is a
// parameter.
func (c *Context) FrontendConfig(a workload.App, kind, policy string) cpu.Config {
	cfg := cpu.DefaultConfig()
	if policy == "" || policy == cache.PolicyLRU {
		return cfg
	}
	cfg.Hier.L1I.Policy = policy
	if policy == cache.PolicyTRRIP {
		p, _ := c.Variant(a, kind)
		cfg.Hier.Temps = layout.Temperatures(p, c.Profile(a, false, 1))
	}
	return cfg
}

// FrontendCell is one (policy, layout) point of the front-end sweep, mean
// over the mobile apps, simulating the CritIC binary.
type FrontendCell struct {
	Policy string
	Layout string

	L1IMissPct  float64 // L1I misses / accesses
	FetchIPct   float64 // F.StallForI share of the §II-D stage dwell
	DFetchIPP   float64 // FetchIPct delta vs the lru/none cell, percentage points
	SpeedupPct  float64 // cycle speedup vs the lru/none cell
	BaselineIPC float64
}

// FrontendResult is the fig-frontend report: the co-optimization grid.
type FrontendResult struct {
	Cells []FrontendCell
}

// RunFigFrontend sweeps I-cache replacement policy × code layout over the
// mobile apps' CritIC binaries and reports stall-attribution deltas — the
// front-end co-optimization experiment. All policies of one layout share a
// trace key (the layout changes the program, the policy only the machine),
// so each layout's policies build as mixed-policy lockstep lanes of one
// cpu.BatchSim; the lru/none cell is the default-machine CritIC measurement
// every other figure already memoizes.
func RunFigFrontend(c *Context) *FrontendResult {
	apps := workload.MobileApps()
	pols := FrontendPolicies()
	lays := FrontendLayouts()
	type cell struct{ miss, fetchI, ipc, cycles float64 }
	ncell := len(pols) * len(lays)
	grid := make([][]cell, ncell)
	for i := range grid {
		grid[i] = make([]cell, len(apps))
	}
	c.forEach(len(apps), func(ai int) {
		a := apps[ai]
		units := make([]MeasureUnit, 0, ncell)
		for _, lay := range lays {
			kind := FrontendKind(VarCritIC, lay)
			for _, pol := range pols {
				units = append(units, MeasureUnit{Kind: kind, Cfg: c.FrontendConfig(a, kind, pol)})
			}
		}
		ms := c.MeasureSweep(a, units, false)
		for i, m := range ms {
			var miss float64
			if m.Res.ICacheAccesses > 0 {
				miss = 100 * float64(m.Res.ICacheMisses) / float64(m.Res.ICacheAccesses)
			}
			var fi float64
			if tot := m.Agg.AllBkd.Total(); tot > 0 {
				fi = 100 * float64(m.Agg.AllBkd.FetchI) / float64(tot)
			}
			grid[i][ai] = cell{miss: miss, fetchI: fi, ipc: m.Res.IPC(), cycles: float64(m.Res.Cycles)}
		}
	})

	out := &FrontendResult{}
	var refFetchI float64
	var refCycles []float64
	for li, lay := range lays {
		for pi, pol := range pols {
			i := li*len(pols) + pi
			var miss, fi, ipc, cyc []float64
			for ai := range apps {
				miss = append(miss, grid[i][ai].miss)
				fi = append(fi, grid[i][ai].fetchI)
				ipc = append(ipc, grid[i][ai].ipc)
				cyc = append(cyc, grid[i][ai].cycles)
			}
			fc := FrontendCell{
				Policy:      pol,
				Layout:      lay,
				L1IMissPct:  stats.Mean(miss),
				FetchIPct:   stats.Mean(fi),
				BaselineIPC: stats.Mean(ipc),
			}
			if i == 0 {
				refFetchI = fc.FetchIPct
				refCycles = cyc
			}
			fc.DFetchIPP = fc.FetchIPct - refFetchI
			var sp []float64
			for ai := range apps {
				if grid[i][ai].cycles > 0 {
					sp = append(sp, 100*(refCycles[ai]/grid[i][ai].cycles-1))
				}
			}
			fc.SpeedupPct = stats.Mean(sp)
			out.Cells = append(out.Cells, fc)
			if c.tel != nil {
				lp := []telemetry.Label{telemetry.L("policy", pol), telemetry.L("layout", lay)}
				c.tel.reg.Counter("critics_frontend_measurements_total",
					"Front-end sweep measurements taken, by policy and layout.", lp...).
					Add(int64(len(apps)))
				c.tel.reg.Gauge("critics_frontend_l1i_miss_bp",
					"Mean L1I miss rate of the front-end sweep cell, basis points (1/100 percent).", lp...).
					Set(int64(100*fc.L1IMissPct + 0.5))
				c.tel.reg.Gauge("critics_frontend_fetch_stall_bp",
					"Mean F.StallForI share of the stage dwell for the front-end sweep cell, basis points.", lp...).
					Set(int64(100*fc.FetchIPct + 0.5))
			}
		}
	}
	return out
}

// String formats the front-end grid.
func (r *FrontendResult) String() string {
	var b strings.Builder
	b.WriteString("Fig. FE: I-cache replacement x code layout (CritIC binary, mean over mobile apps)\n")
	fmt.Fprintf(&b, "  %-8s %-6s %10s %12s %8s %10s %8s\n",
		"policy", "layout", "L1I miss%", "F.StallForI%", "Δpp", "speedup%", "IPC")
	for _, c := range r.Cells {
		fmt.Fprintf(&b, "  %-8s %-6s %10.3f %12.2f %8.2f %10.2f %8.3f\n",
			c.Policy, c.Layout, c.L1IMissPct, c.FetchIPct, c.DFetchIPP, c.SpeedupPct, c.BaselineIPC)
	}
	b.WriteString("  (Δpp and speedup vs the lru/none cell; trrip seeds insertion re-reference intervals\n")
	b.WriteString("   from profile temperature, c3 clusters call-affine functions after hoisting)\n")
	return b.String()
}
