package exp

import (
	"fmt"
	"strings"

	"critics/internal/cpu"
	"critics/internal/stats"
	"critics/internal/workload"
)

// AblateFetchRow is one fetch-port width's result: how the CritIC and OPP16
// speedups scale with the front end's byte bandwidth. This ablation
// quantifies divergences D3/D5 of EXPERIMENTS.md: the narrower the fetch
// port, the more any 16-bit conversion gains — and the more *blind*
// conversion gains relative to targeted conversion.
type AblateFetchRow struct {
	FetchBytes  int
	BaselineIPC float64
	CritICPct   float64
	OPP16Pct    float64
	HoistPct    float64
}

// AblateFetchResult is the fetch-width ablation.
type AblateFetchResult struct {
	Rows []AblateFetchRow
}

// RunAblateFetch sweeps the fetch port width over the mobile apps.
func RunAblateFetch(c *Context) *AblateFetchResult {
	apps := workload.MobileApps()
	widths := []int{8, 12, 16}
	out := &AblateFetchResult{}
	type cell struct{ ipc, critic, opp, hoist float64 }
	grid := make([][]cell, len(widths))
	for wi := range widths {
		grid[wi] = make([]cell, len(apps))
	}
	c.forEach(len(apps), func(i int) {
		a := apps[i]
		// Each variant kind is measured at all three widths over one shared
		// trace: the sweep helper batches the widths per kind (3-lane builds).
		var units []MeasureUnit
		for _, w := range widths {
			cfg := cpu.DefaultConfig()
			cfg.FetchBytes = w
			units = append(units,
				MeasureUnit{VarBase, cfg}, MeasureUnit{VarCritIC, cfg},
				MeasureUnit{VarOPP16, cfg}, MeasureUnit{VarHoist, cfg})
		}
		ms := c.MeasureSweep(a, units, false)
		for wi := range widths {
			base, mC, mO, mH := ms[4*wi], ms[4*wi+1], ms[4*wi+2], ms[4*wi+3]
			grid[wi][i] = cell{
				ipc:    base.Res.IPC(),
				critic: Speedup(base, mC),
				opp:    Speedup(base, mO),
				hoist:  Speedup(base, mH),
			}
		}
	})
	for wi, w := range widths {
		var ipc, cr, op, ho []float64
		for i := range apps {
			ipc = append(ipc, grid[wi][i].ipc)
			cr = append(cr, grid[wi][i].critic)
			op = append(op, grid[wi][i].opp)
			ho = append(ho, grid[wi][i].hoist)
		}
		out.Rows = append(out.Rows, AblateFetchRow{
			FetchBytes:  w,
			BaselineIPC: stats.Mean(ipc),
			CritICPct:   stats.Mean(cr),
			OPP16Pct:    stats.Mean(op),
			HoistPct:    stats.Mean(ho),
		})
	}
	return out
}

// String formats the ablation.
func (r *AblateFetchResult) String() string {
	var b strings.Builder
	b.WriteString("Ablation: fetch-port width vs conversion gains (mean over mobile apps)\n")
	fmt.Fprintf(&b, "  %-12s %10s %10s %10s %10s\n", "fetch B/cyc", "base IPC", "CritIC%", "OPP16%", "Hoist%")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-12d %10.3f %10.2f %10.2f %10.2f\n",
			row.FetchBytes, row.BaselineIPC, row.CritICPct, row.OPP16Pct, row.HoistPct)
	}
	b.WriteString("  (narrower port -> bigger conversion gains; blind conversion scales fastest: D3/D5)\n")
	return b.String()
}

// AblateCDPRow is one CDP-cost model's result.
type AblateCDPRow struct {
	Label     string
	CritICPct float64
}

// AblateCDPResult is the CDP decode-cost ablation: the paper conservatively
// charges one extra decode-stage cycle for the mode switch (§IV-B); this
// sweep shows what that conservatism costs, and what the Approach-1
// branch-pair switch costs beyond it.
type AblateCDPResult struct {
	Rows []AblateCDPRow
}

// RunAblateCDP compares switch-cost models over the mobile apps.
func RunAblateCDP(c *Context) *AblateCDPResult {
	apps := workload.MobileApps()
	type variant struct {
		label  string
		kind   string
		bubble bool
	}
	variants := []variant{
		{"CDP, free switch", VarCritIC, false},
		{"CDP, +1 decode bubble", VarCritIC, true},
		{"branch-pair switch", VarCritICBranch, true},
	}
	grid := make([][]float64, len(variants))
	for vi := range variants {
		grid[vi] = make([]float64, len(apps))
	}
	c.forEach(len(apps), func(i int) {
		a := apps[i]
		units := []MeasureUnit{{VarBase, cpu.DefaultConfig()}}
		for _, v := range variants {
			cfg := cpu.DefaultConfig()
			cfg.CDPExtraDecodeCycle = v.bubble
			units = append(units, MeasureUnit{v.kind, cfg})
		}
		ms := c.MeasureSweep(a, units, false)
		for vi := range variants {
			grid[vi][i] = Speedup(ms[0], ms[1+vi])
		}
	})
	out := &AblateCDPResult{}
	for vi, v := range variants {
		out.Rows = append(out.Rows, AblateCDPRow{Label: v.label, CritICPct: stats.Mean(grid[vi])})
	}
	return out
}

// String formats the ablation.
func (r *AblateCDPResult) String() string {
	var b strings.Builder
	b.WriteString("Ablation: format-switch cost models (mean CritIC speedup %, mobile apps)\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-24s %8.2f\n", row.Label, row.CritICPct)
	}
	b.WriteString("  (the paper's conservative +1 decode cycle, and Approach 1's branches, both eat into the gain)\n")
	return b.String()
}
