package exp

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"critics/internal/cpu"
	"critics/internal/telemetry"
	"critics/internal/trace"
	"critics/internal/workload"
)

// batchEquivCtx returns a reduced-scale context for the batched-vs-serial
// equivalence sweeps. serial forces the per-variant reference schedule.
func batchEquivCtx(serial bool) *Context {
	c := QuickContext()
	c.WarmupArch = 2_000
	c.WarmArch = 3_000
	c.MeasureArch = 6_000
	c.ProfilePlan = trace.SamplePlan{Samples: 3, Length: 8_000, Gap: 2_000, Warmup: 2_000}
	c.serialSweeps = serial
	return c
}

// simCounterSums reads the simulator telemetry the equivalence contract
// covers: cycle/instruction totals, the per-stage stall attribution sums,
// and the cache/branch event counters.
func simCounterSums(tel *Telemetry) map[string]int64 {
	m := tel.Sim
	out := map[string]int64{
		"cycles":    m.Cycles.Value(),
		"instrs":    m.Instrs.Value(),
		"windows":   m.Windows.Value(),
		"cond":      m.CondBranches.Value(),
		"mispred":   m.Mispredicts.Value(),
		"cdp":       m.CDPSwitches.Value(),
		"l1i_acc":   m.L1IAccesses.Value(),
		"l1i_miss":  m.L1IMisses.Value(),
		"l1d_acc":   m.L1DAccesses.Value(),
		"l1d_miss":  m.L1DMisses.Value(),
		"l2_acc":    m.L2Accesses.Value(),
		"dram_acc":  m.DRAMAccesses.Value(),
		"fetch_cnt": m.FetchBytesUsed.Count(),
		"fetch_sum": int64(m.FetchBytesUsed.Sum()),
	}
	for i, s := range m.Stall {
		out[fmt.Sprintf("stall%d", i)] = s.Value()
	}
	return out
}

// TestCatalogBatchedEquivalence runs every experiment id in the registry on
// two independent cache bundles — the batched sweep path and the forced
// per-variant serial reference — and requires byte-identical report output
// plus exactly equal simulator telemetry sums (stall attribution included).
// It also asserts the batched path actually engaged, so the comparison can
// never pass vacuously.
func TestCatalogBatchedEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("full registry sweep; skipped in -short")
	}
	serial := batchEquivCtx(true)
	serialReg := telemetry.NewRegistry()
	serial.SetTelemetry(serialReg)

	batched := batchEquivCtx(false)
	batchedReg := telemetry.NewRegistry()
	batched.SetTelemetry(batchedReg)

	for _, id := range IDs() {
		want, err := Run(id, serial)
		if err != nil {
			t.Fatalf("%s (serial): %v", id, err)
		}
		got, err := Run(id, batched)
		if err != nil {
			t.Fatalf("%s (batched): %v", id, err)
		}
		if got != want {
			t.Errorf("%s: batched output differs from serial\n--- serial ---\n%s\n--- batched ---\n%s",
				id, want, got)
		}
	}

	if n := serial.tel.BatchedMeasurements.Value(); n != 0 {
		t.Errorf("serial reference context built %d batched measurements, want 0", n)
	}
	if n := batched.tel.BatchedMeasurements.Value(); n == 0 {
		t.Error("batched context never engaged the batched path — the equivalence sweep is vacuous")
	}

	ws, wb := simCounterSums(serial.tel), simCounterSums(batched.tel)
	for k, v := range ws {
		if wb[k] != v {
			t.Errorf("telemetry %s: batched sum %d != serial sum %d", k, wb[k], v)
		}
	}
}

// catalogBatchGroups are the batch shapes the rewired runners actually issue:
// the fig11 hardware sweep (7 machine configs per variant), the ablate-fetch
// width sweep, and the ablate-cdp bubble pair.
func catalogBatchGroups() []struct {
	name string
	kind string
	cfgs []cpu.Config
} {
	hw := []cpu.Config{cpu.DefaultConfig()}
	for _, mech := range HWMechs {
		hw = append(hw, ApplyHW(mech))
	}
	var widths []cpu.Config
	for _, w := range []int{8, 12, 16} {
		cfg := cpu.DefaultConfig()
		cfg.FetchBytes = w
		widths = append(widths, cfg)
	}
	free := cpu.DefaultConfig()
	free.CDPExtraDecodeCycle = false
	paid := cpu.DefaultConfig()
	paid.CDPExtraDecodeCycle = true
	return []struct {
		name string
		kind string
		cfgs []cpu.Config
	}{
		{"fig11-base", VarBase, hw},
		{"fig11-critic", VarCritIC, hw},
		{"ablate-fetch", VarOPP16, widths},
		{"ablate-cdp", VarCritIC, []cpu.Config{free, paid}},
	}
}

// TestMeasureBatchGoldenEncode compares, for the catalog's batch group shapes
// and both collect modes, each batched Measurement against an independent
// uncached Measure call — on the JSON wire encoding, byte for byte, which
// covers Res, the WindowAgg fold, and (collect=true) the materialized window.
func TestMeasureBatchGoldenEncode(t *testing.T) {
	a, ok := workload.FindApp("acrobat")
	if !ok {
		t.Fatal("catalog app missing")
	}
	for _, g := range catalogBatchGroups() {
		for _, collect := range []bool{false, true} {
			// Fresh bundles per run so every lane is a true cache miss and
			// the batched build is forced (K >= 2 misses).
			cb := batchEquivCtx(false)
			ms := cb.MeasureBatch(a, g.kind, g.cfgs, collect)

			cs := batchEquivCtx(true)
			p, _ := cs.Variant(a, g.kind)
			for i, cfg := range g.cfgs {
				want := cs.Measure(p, cfg, collect)
				gj, err := json.Marshal(ms[i])
				if err != nil {
					t.Fatalf("%s lane %d: encode batched: %v", g.name, i, err)
				}
				wj, err := json.Marshal(want)
				if err != nil {
					t.Fatalf("%s lane %d: encode serial: %v", g.name, i, err)
				}
				if !bytes.Equal(gj, wj) {
					t.Errorf("%s collect=%v lane %d: batched Measurement encoding differs from independent Measure",
						g.name, collect, i)
				}
			}
			if cb.tel != nil {
				t.Fatal("unexpected telemetry on equivalence context")
			}
		}
	}
}

// TestMeasureBatchCacheInterop checks the memo interplay: batched builds
// publish per-variant entries that later single-variant lookups hit, and
// pre-cached variants are served without joining a batch.
func TestMeasureBatchCacheInterop(t *testing.T) {
	a, ok := workload.FindApp("acrobat")
	if !ok {
		t.Fatal("catalog app missing")
	}
	c := batchEquivCtx(false)
	cfgs := []cpu.Config{cpu.DefaultConfig(), ApplyHW(HW2xFD), ApplyHW(HWPerfectBr)}

	// Warm one variant through the single-variant path first.
	single := c.MeasureVariant(a, VarBase, cfgs[1], false)

	ms := c.MeasureBatch(a, VarBase, cfgs, false)
	if ms[1] != single {
		t.Error("batch did not serve the pre-cached variant from the memo")
	}

	// Every lane the batch built must now hit as a single-variant lookup —
	// same pointer, no rebuild.
	for i, cfg := range cfgs {
		if m := c.MeasureVariant(a, VarBase, cfg, false); m != ms[i] {
			t.Errorf("lane %d: single-variant lookup missed the batch-published entry", i)
		}
	}

	// In-batch duplicates resolve to one shared measurement.
	dup := c.MeasureBatch(a, VarBase, []cpu.Config{cfgs[0], cfgs[0]}, false)
	if dup[0] != dup[1] {
		t.Error("duplicate configs in one batch produced distinct measurements")
	}
}
