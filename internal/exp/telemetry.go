package exp

import (
	"encoding/hex"

	"critics/internal/cpu"
	"critics/internal/obs"
	"critics/internal/sched"
	"critics/internal/telemetry"
)

// Telemetry bundles the experiment engine's registry series. It is built by
// Context.SetTelemetry; a nil bundle (the default) disables all
// instrumentation.
type Telemetry struct {
	reg *telemetry.Registry

	// Sim is shared by every simulator the context runs (Context.Measure
	// attaches it to the cpu.Config after memo keys are computed, so
	// telemetry never perturbs cache identity).
	Sim *cpu.Metrics

	// Pool instruments the per-app shard pool (Context.forEach).
	Pool *sched.PoolMetrics

	// MeasureSeconds observes the wall time of each uncached Measure call
	// (trace generation + DFG + warm-up + measured simulation). A batched
	// build observes once for the whole batch — the shared trace pass is
	// the point of batching.
	MeasureSeconds *telemetry.Histogram

	// BatchedMeasurements counts measurements produced by the batched sweep
	// path (MeasureBatch cache misses built in lockstep).
	BatchedMeasurements *telemetry.Counter

	// BatchLanes observes the lane count of each batched build — how much
	// trace-generation sharing the sweeps actually get.
	BatchLanes *telemetry.Histogram
}

// expSecondsBuckets cover 10ms..~5min experiment wall times.
var expSecondsBuckets = telemetry.ExpBuckets(0.01, 2, 15)

// SetTelemetry attaches a metrics registry to the context: simulator, pool
// and per-experiment series are registered eagerly, and the memo caches are
// folded in as scrape-time functions reading the caches' own atomic
// counters — the same source of truth CacheStats reports, with no double
// bookkeeping.
func (c *Context) SetTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		c.tel = nil
		return
	}
	c.tel = &Telemetry{
		reg:  reg,
		Sim:  cpu.NewMetrics(reg),
		Pool: sched.NewPoolMetrics(reg, "exp"),
		MeasureSeconds: reg.Histogram("critics_measure_seconds",
			"Wall time of uncached measurement builds (trace+DFG+simulate).",
			expSecondsBuckets),
		BatchedMeasurements: reg.Counter("critics_measure_batched_total",
			"Measurements built by the batched sweep path (lockstep lanes over a shared trace)."),
		BatchLanes: reg.Histogram("critics_measure_batch_lanes",
			"Lane count per batched measurement build.",
			telemetry.LinearBuckets(1, 1, 16)),
	}
	registerMemo(reg, "programs", c.caches.progs)
	registerMemo(reg, "profiles", c.caches.profs)
	registerMemo(reg, "variants", c.caches.variants)
	registerMemo(reg, "measurements", c.caches.meas)
}

// Registry returns the attached registry (nil when telemetry is off).
func (c *Context) Registry() *telemetry.Registry {
	if c.tel == nil {
		return nil
	}
	return c.tel.reg
}

// SetTracer attaches a Chrome trace-event tracer; engine-level spans
// (experiments, memo lookups with hit/miss) are emitted on
// telemetry.EnginePID while it is non-nil.
func (c *Context) SetTracer(tr *telemetry.Tracer) { c.tracer = tr }

// Tracer returns the attached tracer (nil when tracing is off).
func (c *Context) Tracer() *telemetry.Tracer { return c.tracer }

// registerMemo exposes one memo cache's counters on the registry, reading
// the cache's own atomics at scrape time.
func registerMemo[V any](reg *telemetry.Registry, name string, m *sched.Memo[V]) {
	l := telemetry.L("cache", name)
	reg.CounterFunc("critics_memo_hits_total", "Memo cache hits by cache.",
		func() float64 { return float64(m.Stats().Hits) }, l)
	reg.CounterFunc("critics_memo_misses_total", "Memo cache misses by cache.",
		func() float64 { return float64(m.Stats().Misses) }, l)
	reg.CounterFunc("critics_memo_skipped_total", "Values computed but not retained (budget exhausted) by cache.",
		func() float64 { return float64(m.Stats().Skipped) }, l)
	reg.GaugeFunc("critics_memo_entries", "Retained memo entries by cache.",
		func() float64 { return float64(m.Len()) }, l)
	reg.GaugeFunc("critics_memo_bytes", "Summed retention cost of memo entries by cache.",
		func() float64 { return float64(m.UsedBytes()) }, l)
}

// memoGet wraps a memo lookup with the context's cancellation-validity check
// (builds finished under a cancelled run context are discarded, never
// retained) and an engine-level trace span labeled with the hit/miss
// outcome. With no tracer and no run context attached it is exactly
// Memo.Get. Under cancellation the returned value may be the zero value —
// callers observe Context.Err and discard the run's outputs.
func memoGet[V any](c *Context, m *sched.Memo[V], span string, key sched.Key, build func() V, cost func(V) int64) V {
	valid := c.validFn()
	if valid != nil && !valid() {
		// Already cancelled: skip the build entirely. Nested stage lookups
		// (a profile build fetching its program) get the zero value without
		// running, and the entry point fails on Context.Err before using it.
		var zero V
		return zero
	}
	tr := c.tracer
	ot, oparent, obsOn := obs.FromContext(c.runCtx)
	if tr == nil && !obsOn {
		v, _ := m.GetChecked(key, build, cost, valid)
		return v
	}
	var t0, o0 int64
	if tr != nil {
		t0 = tr.Now()
	}
	if obsOn {
		o0 = ot.Now()
	}
	v, hit := m.GetChecked(key, build, cost, valid)
	if tr != nil {
		tr.Span(telemetry.EnginePID, span, "memo", t0, tr.Now()-t0, telemetry.Bool("hit", hit))
	}
	if obsOn {
		// Hits only bump the trace's memo counters; the builder (hit=false)
		// records a span whose id derives from the content key, so the span
		// set of a run is reproducible regardless of shard scheduling.
		if hit {
			ot.MemoHit()
		} else {
			ot.MemoMiss()
			ot.Add(obs.Span{
				ID: obs.BuildSpanID(span, keyHex8(key)), Parent: oparent,
				Name: span, StartUS: o0, DurUS: ot.Now() - o0,
			})
		}
	}
	return v
}

// keyHex8 is the first 8 hex digits of a memo key — enough to make
// same-label build spans distinct within one job's trace.
func keyHex8(k sched.Key) string { return hex.EncodeToString(k[:4]) }
