package exp

import (
	"context"
	"fmt"
	"sort"
	"time"

	"critics/internal/telemetry"
)

// Runner executes one experiment and returns its formatted report.
type Runner func(*Context) string

// registry maps experiment ids (figure/table numbers) to runners.
var registry = map[string]Runner{
	"fig1a":  func(c *Context) string { return RunFig1a(c).String() },
	"fig1b":  func(c *Context) string { return RunFig1b(c).String() },
	"fig3a":  func(c *Context) string { return RunFig3(c).String() },
	"fig3b":  func(c *Context) string { return RunFig3(c).String() },
	"fig3c":  func(c *Context) string { return RunFig3(c).String() },
	"fig5a":  func(c *Context) string { return RunFig5a(c).String() },
	"fig5b":  func(c *Context) string { return RunFig5b(c).String() },
	"fig8":   func(c *Context) string { return RunFig8(c).String() },
	"fig10a": func(c *Context) string { return RunFig10(c).String() },
	"fig10b": func(c *Context) string { return RunFig10(c).String() },
	"fig10c": func(c *Context) string { return RunFig10(c).String() },
	"fig11a": func(c *Context) string { return RunFig11(c).String() },
	"fig11b": func(c *Context) string { return RunFig11(c).String() },
	"fig12a": func(c *Context) string { return RunFig12a(c).String() },
	"fig12b": func(c *Context) string { return RunFig12b(c).String() },
	"fig13a": func(c *Context) string { return RunFig13(c).String() },
	"fig13b": func(c *Context) string { return RunFig13(c).String() },
	"tab1":   func(c *Context) string { return Table1String() },
	"tab2":   func(c *Context) string { return Table2String() },

	// Ablations beyond the paper's own (DESIGN.md "Ablations called out").
	"ablate-fetch": func(c *Context) string { return RunAblateFetch(c).String() },
	"ablate-cdp":   func(c *Context) string { return RunAblateCDP(c).String() },

	// Front-end co-optimization sweep (DESIGN.md "Front-end model").
	"fig-frontend": func(c *Context) string { return RunFigFrontend(c).String() },
}

// IDs returns all experiment ids in sorted order.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Run executes the experiment with the given id. With telemetry attached it
// observes the run's wall time under critics_experiment_seconds{exp=id};
// with a tracer attached it wraps the run in an engine-level span.
func Run(id string, c *Context) (string, error) {
	return RunContext(context.Background(), id, c)
}

// RunContext is Run with cancellation: the context is bound to c for the
// duration of the run (Context.SetRunContext), so worker pools stop
// dispatching shards and no partial artifact is retained in the memo caches
// once ctx is done. A cancelled run returns ctx's error and no output.
// Runners assume complete artifacts, so a shard skipped by cancellation can
// surface as a panic mid-format; RunContext converts such panics back into
// the context error (a panic with a live context still propagates).
func RunContext(ctx context.Context, id string, c *Context) (out string, err error) {
	r, ok := registry[id]
	if !ok {
		return "", fmt.Errorf("exp: unknown experiment %q (known: %v)", id, IDs())
	}
	if err := ctx.Err(); err != nil {
		return "", err
	}
	prev := c.runCtx
	c.SetRunContext(ctx)
	defer c.SetRunContext(prev)
	defer func() {
		if p := recover(); p != nil {
			if cerr := ctx.Err(); cerr != nil {
				out, err = "", cerr
				return
			}
			panic(p)
		}
	}()
	var spanStart int64
	if c.tracer != nil {
		spanStart = c.tracer.Now()
	}
	start := time.Now()
	out = r(c)
	if c.tel != nil {
		c.tel.reg.Histogram("critics_experiment_seconds",
			"Wall time per experiment run by id.",
			expSecondsBuckets, telemetry.L("exp", id)).
			Observe(time.Since(start).Seconds())
	}
	if c.tracer != nil {
		c.tracer.Span(telemetry.EnginePID, "exp:"+id, "experiment", spanStart, c.tracer.Now()-spanStart)
	}
	if cerr := ctx.Err(); cerr != nil {
		return "", cerr
	}
	return out, nil
}
