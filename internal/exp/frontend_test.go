package exp

import (
	"context"
	"strings"
	"testing"

	"critics/internal/cache"
	"critics/internal/cpu"
	"critics/internal/workload"
)

func TestFrontendKindRoundTrip(t *testing.T) {
	cases := []struct {
		kind, lay string
		composed  string
	}{
		{VarCritIC, "c3", "critic+lay-c3"},
		{VarBase, "hot", "base+lay-hot"},
		{VarCritIC, "", VarCritIC},
		{VarCritIC, "none", VarCritIC},
	}
	for _, tc := range cases {
		if got := FrontendKind(tc.kind, tc.lay); got != tc.composed {
			t.Errorf("FrontendKind(%q, %q) = %q, want %q", tc.kind, tc.lay, got, tc.composed)
		}
	}
	inner, lay, ok := splitLayoutKind("critic+lay-c3")
	if !ok || inner != VarCritIC || lay != "c3" {
		t.Errorf("splitLayoutKind = (%q, %q, %v)", inner, lay, ok)
	}
	if _, _, ok := splitLayoutKind(VarCritIC); ok {
		t.Error("splitLayoutKind matched an uncomposed kind")
	}
}

func TestValidateFrontend(t *testing.T) {
	if err := ValidateFrontend("", ""); err != nil {
		t.Errorf("empty selection rejected: %v", err)
	}
	if err := ValidateFrontend("trrip", "c3"); err != nil {
		t.Errorf("valid selection rejected: %v", err)
	}
	if ValidateFrontend("plru", "") == nil {
		t.Error("unknown policy accepted")
	}
	if ValidateFrontend("", "pettis") == nil {
		t.Error("unknown layout accepted")
	}
}

// TestFrontendConfigLRUIsDefault pins the memo-identity property: selecting
// no policy (or lru by name) yields the untouched default machine, so the
// lru cell of fig-frontend shares measurement cache identity with every
// other experiment's default-machine runs.
func TestFrontendConfigLRUIsDefault(t *testing.T) {
	c := QuickContext()
	a := workload.MobileApps()[0]
	want := cpu.DefaultConfig()
	for _, pol := range []string{"", cache.PolicyLRU} {
		if got := c.FrontendConfig(a, VarCritIC, pol); got != want {
			t.Errorf("FrontendConfig(%q) != DefaultConfig()", pol)
		}
	}
	s := c.FrontendConfig(a, VarCritIC, cache.PolicySRRIP)
	if s.Hier.L1I.Policy != cache.PolicySRRIP || s.Hier.Temps.Len() != 0 {
		t.Errorf("srrip config: policy %q, %d temp ranges", s.Hier.L1I.Policy, s.Hier.Temps.Len())
	}
	tr := c.FrontendConfig(a, VarCritIC, cache.PolicyTRRIP)
	if tr.Hier.L1I.Policy != cache.PolicyTRRIP {
		t.Errorf("trrip config policy = %q", tr.Hier.L1I.Policy)
	}
	if tr.Hier.Temps.Len() == 0 {
		t.Error("trrip config carries no temperature hints")
	}
}

// TestLRUPolicyMeasureEquivalence is the measurement-level half of the
// policy-seam bit-identity contract (the cache-level half drives the raw
// arrays in the cache package): naming lru explicitly must reproduce the
// default machine's measurement exactly, across apps and compiler variants.
// The two configs are distinct memo keys, so both measurements really run.
func TestLRUPolicyMeasureEquivalence(t *testing.T) {
	c := determinismCtx(2)
	named := cpu.DefaultConfig()
	named.Hier.L1I.Policy = cache.PolicyLRU
	for _, a := range workload.MobileApps()[:3] {
		for _, kind := range []string{VarBase, VarCritIC, VarCritIC + LayoutSuffix + "c3"} {
			def := c.MeasureVariant(a, kind, cpu.DefaultConfig(), false)
			lru := c.MeasureVariant(a, kind, named, false)
			if def.Res.Cycles != lru.Res.Cycles ||
				def.Res.ICacheAccesses != lru.Res.ICacheAccesses ||
				def.Res.ICacheMisses != lru.Res.ICacheMisses ||
				def.Res.Mispredicts != lru.Res.Mispredicts ||
				def.Agg.AllBkd != lru.Agg.AllBkd {
				t.Errorf("%s/%s: named-lru measurement differs from default (cycles %d vs %d, L1I %d/%d vs %d/%d)",
					a.Params.Name, kind, def.Res.Cycles, lru.Res.Cycles,
					def.Res.ICacheMisses, def.Res.ICacheAccesses, lru.Res.ICacheMisses, lru.Res.ICacheAccesses)
			}
		}
	}
}

// TestFigFrontend runs the sweep at reduced scale and checks the acceptance
// shape: a full policy × layout grid whose cells are non-vacuous (the axes
// actually change the simulation) with the lru/none reference pinned to
// zero deltas.
func TestFigFrontend(t *testing.T) {
	found := false
	for _, id := range IDs() {
		if id == "fig-frontend" {
			found = true
		}
	}
	if !found {
		t.Fatal("fig-frontend not registered")
	}

	r := RunFigFrontend(determinismCtx(0))
	wantCells := len(FrontendPolicies()) * len(FrontendLayouts())
	if len(r.Cells) != wantCells {
		t.Fatalf("got %d cells, want %d", len(r.Cells), wantCells)
	}
	ref := r.Cells[0]
	if ref.Policy != cache.PolicyLRU || ref.Layout != "none" {
		t.Fatalf("reference cell is %s/%s, want lru/none", ref.Policy, ref.Layout)
	}
	if ref.DFetchIPP != 0 || ref.SpeedupPct != 0 {
		t.Errorf("reference deltas not zero: %f, %f", ref.DFetchIPP, ref.SpeedupPct)
	}
	if ref.L1IMissPct <= 0 || ref.FetchIPct <= 0 || ref.BaselineIPC <= 0 {
		t.Errorf("reference cell vacuous: %+v", ref)
	}
	distinctPolicy, distinctLayout := 0, 0
	for _, cell := range r.Cells[1:] {
		if cell.Layout == ref.Layout && (cell.L1IMissPct != ref.L1IMissPct || cell.SpeedupPct != 0) {
			distinctPolicy++
		}
		if cell.Layout != ref.Layout && cell.SpeedupPct != 0 {
			distinctLayout++
		}
	}
	if distinctPolicy == 0 {
		t.Error("no replacement policy produced a delta: the policy axis is vacuous")
	}
	if distinctLayout == 0 {
		t.Error("no layout cell produced a delta: the layout axis is vacuous")
	}
	if s := r.String(); !strings.Contains(s, "trrip") || !strings.Contains(s, "c3") {
		t.Errorf("report missing axis rows:\n%s", s)
	}
}

// TestExecuteMeasureRejectsInvalidConfig: a malformed hierarchy arriving
// over the distributed wire must error, not panic the worker.
func TestExecuteMeasureRejectsInvalidConfig(t *testing.T) {
	c := determinismCtx(1)
	bad := cpu.DefaultConfig()
	bad.Hier.L1I.Ways = 0
	req := MeasureRequest{
		App:         workload.MobileApps()[0].Params,
		Kind:        VarBase,
		Config:      bad,
		Seed:        c.Seed,
		WarmupArch:  c.WarmupArch,
		WarmArch:    c.WarmArch,
		MeasureArch: c.MeasureArch,
		ProfilePlan: c.ProfilePlan,
		HighFanout:  c.HighFanout,
	}
	if _, err := ExecuteMeasure(context.Background(), req, nil, 1); err == nil {
		t.Fatal("zero-way L1I accepted by ExecuteMeasure")
	} else if !strings.Contains(err.Error(), "L1I") {
		t.Errorf("error %q does not name the offending level", err)
	}
	unknown := cpu.DefaultConfig()
	unknown.Hier.L1I.Policy = "plru"
	req.Config = unknown
	if _, err := ExecuteMeasure(context.Background(), req, nil, 1); err == nil {
		t.Fatal("unknown policy accepted by ExecuteMeasure")
	}
}
