package exp

import (
	"fmt"
	"strings"

	"critics/internal/cpu"
	"critics/internal/stats"
	"critics/internal/workload"
)

// ---------------------------------------------------------------- Fig. 12a

// Fig12aRow is the result for one exact chain length n.
type Fig12aRow struct {
	N             int
	SpeedupPct    float64 // mean speedup with only length-n chains optimized
	FetchSavedPct float64 // mean reduction of fetch-stall residency (relative %)
	CoverageFrac  float64 // fraction of dynamic instructions in optimized chains
}

// Fig12aResult reproduces Fig. 12a: sensitivity to the individual CritIC
// length.
type Fig12aResult struct {
	Rows  []Fig12aRow
	BestN int
}

// RunFig12a sweeps exact chain lengths 2..8.
func RunFig12a(c *Context) *Fig12aResult {
	apps := workload.MobileApps()
	lengths := []int{2, 3, 4, 5, 6, 7, 8}
	out := &Fig12aResult{}
	type cell struct {
		sp, fetch, cov float64
	}
	grid := make([][]cell, len(lengths))
	for li := range lengths {
		grid[li] = make([]cell, len(apps))
	}
	c.forEach(len(apps), func(i int) {
		a := apps[i]
		units := []MeasureUnit{{VarBase, cpu.DefaultConfig()}}
		for _, n := range lengths {
			units = append(units, MeasureUnit{fmt.Sprintf("critic-len-%d", n), cpu.DefaultConfig()})
		}
		ms := c.MeasureSweep(a, units, false)
		base := ms[0]
		_, allB, _ := c.critBreakdown(base)
		baseFrac := 0.0
		if t := allB.Total(); t > 0 {
			baseFrac = float64(allB.FetchI+allB.FetchRD) / float64(t)
		}
		for li := range lengths {
			m := ms[1+li]
			_, all, _ := c.critBreakdown(m)
			var fetchSaved float64
			if t := all.Total(); t > 0 && baseFrac > 0 {
				frac := float64(all.FetchI+all.FetchRD) / float64(t)
				fetchSaved = 100 * (baseFrac - frac) / baseFrac
			}
			grid[li][i] = cell{
				sp:    Speedup(base, m),
				fetch: fetchSaved,
				cov:   float64(m.Agg.ChainDyns) / float64(m.Res.AllDyns),
			}
		}
	})
	best, bestSp := 0, -1e18
	for li, n := range lengths {
		var sp, fe, cov []float64
		for i := range apps {
			sp = append(sp, grid[li][i].sp)
			fe = append(fe, grid[li][i].fetch)
			cov = append(cov, grid[li][i].cov)
		}
		row := Fig12aRow{N: n, SpeedupPct: stats.Mean(sp), FetchSavedPct: stats.Mean(fe), CoverageFrac: stats.Mean(cov)}
		out.Rows = append(out.Rows, row)
		if row.SpeedupPct > bestSp {
			bestSp = row.SpeedupPct
			best = n
		}
	}
	out.BestN = best
	return out
}

// String formats the figure.
func (r *Fig12aResult) String() string {
	var b strings.Builder
	b.WriteString("Fig 12a: sensitivity to exact CritIC length (mean over mobile apps)\n")
	fmt.Fprintf(&b, "  %-4s %10s %12s %10s\n", "n", "speedup%", "fetchSaved%", "coverage")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-4d %10.2f %12.2f %10.3f\n", row.N, row.SpeedupPct, row.FetchSavedPct, row.CoverageFrac)
	}
	fmt.Fprintf(&b, "  best n = %d (paper: 5)\n", r.BestN)
	return b.String()
}

// ---------------------------------------------------------------- Fig. 12b

// Fig12bRow is the result for one profiling coverage level.
type Fig12bRow struct {
	ProfiledPct int
	SpeedupPct  float64
}

// Fig12bResult reproduces Fig. 12b: sensitivity to how much of the
// execution is profiled.
type Fig12bResult struct {
	Rows []Fig12bRow
}

// RunFig12b sweeps the profiled fraction.
func RunFig12b(c *Context) *Fig12bResult {
	apps := workload.MobileApps()
	fracs := []int{15, 30, 50, 70, 100}
	grid := make([][]float64, len(fracs))
	for fi := range fracs {
		grid[fi] = make([]float64, len(apps))
	}
	c.forEach(len(apps), func(i int) {
		a := apps[i]
		units := []MeasureUnit{{VarBase, cpu.DefaultConfig()}}
		for _, f := range fracs {
			units = append(units, MeasureUnit{fmt.Sprintf("critic-frac-%d", f), cpu.DefaultConfig()})
		}
		ms := c.MeasureSweep(a, units, false)
		for fi := range fracs {
			grid[fi][i] = Speedup(ms[0], ms[1+fi])
		}
	})
	out := &Fig12bResult{}
	for fi, f := range fracs {
		out.Rows = append(out.Rows, Fig12bRow{ProfiledPct: f, SpeedupPct: stats.Mean(grid[fi])})
	}
	return out
}

// String formats the figure.
func (r *Fig12bResult) String() string {
	var b strings.Builder
	b.WriteString("Fig 12b: sensitivity to profiling coverage (mean speedup %, mobile apps)\n")
	fmt.Fprintf(&b, "  %-12s %10s\n", "profiled%", "speedup%")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-12d %10.2f\n", row.ProfiledPct, row.SpeedupPct)
	}
	return b.String()
}
