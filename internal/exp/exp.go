// Package exp implements one runner per table and figure of the paper's
// evaluation. Each runner assembles workloads (internal/workload), profiles
// (internal/core), compiled variants (internal/compiler) and simulations
// (internal/cpu) into exactly the rows/series the paper reports; the
// formatting methods print them. cmd/criticsim exposes the runners on the
// command line and bench_test.go wraps each in a benchmark.
//
// Methodology (mirroring §IV-C at reduced scale): every app is profiled
// over sampled windows, each configuration is simulated over the same
// architectural instruction budget after a cache/predictor warm-up window,
// and baseline/optimized pairs see identical control flow and data
// addresses (the trace layer keys its randomness by stable instruction
// identity).
package exp

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"time"
	"unsafe"

	"critics/internal/compiler"
	"critics/internal/core"
	"critics/internal/cpu"
	"critics/internal/dfg"
	"critics/internal/layout"
	"critics/internal/obs"
	"critics/internal/prog"
	"critics/internal/sched"
	"critics/internal/telemetry"
	"critics/internal/trace"
	"critics/internal/workload"
)

// DefaultMeasureCacheBytes is the default retention budget for memoized
// measurements (their Dyns/Fanouts/Records buffers dominate the engine's
// memory footprint; programs, profiles and variants are small and uncapped).
const DefaultMeasureCacheBytes = 2 << 30

// Context is the experiment execution engine: it carries the scale
// parameters and the content-addressed memo caches that deduplicate
// programs, profiles, compiled variants and simulated measurements across
// runners, and the worker bound the runners shard their (app, variant)
// work over.
type Context struct {
	Seed        int64
	WarmupArch  int // instructions skipped before the warm window
	WarmArch    int // simulated but not measured (cache/BPU warm-up)
	MeasureArch int // measured window, in architectural instructions
	ProfilePlan trace.SamplePlan
	HighFanout  int32 // individually-critical threshold

	// Workers bounds the worker pool the runners shard per-app work over;
	// 0 selects GOMAXPROCS, 1 forces the serial reference schedule.
	// Results are bit-identical for every value (see internal/sched).
	Workers int

	caches *Caches

	// runCtx, when non-nil, is the cancellation signal for everything this
	// context runs: pools stop dispatching shards and memo builds finished
	// under a cancelled context are discarded instead of retained
	// (SetRunContext).
	runCtx context.Context

	// mapper, when non-nil, replaces the local worker pool for shard maps
	// (SetMapper); remote, when non-nil, executes measurement units
	// elsewhere (SetRemote). Both hooks preserve results bit-for-bit — they
	// only move where the work runs.
	mapper sched.Mapper
	remote Remote

	// serialSweeps forces MeasureBatch to build its misses through the
	// per-variant MeasureVariant path — the serial reference schedule the
	// batched-equivalence tests compare the lockstep builds against.
	serialSweeps bool

	// L1IPolicy and CodeLayout select the front-end configuration of the
	// single-app pipeline (critics.OptimizeApp/TraceApp; see frontend.go).
	// Zero values are the defaults — lru replacement, generator-order
	// layout — and leave every memo key and result bit-identical to a
	// context without them. Experiment runners ignore these: sweeps own
	// their axes (fig-frontend sweeps both).
	L1IPolicy  string
	CodeLayout string

	// Observability hooks (telemetry.go); both nil by default, costing the
	// engine nothing.
	tel    *Telemetry
	tracer *telemetry.Tracer
}

type variantEntry struct {
	p  *prog.Program
	st compiler.Stats
}

// Caches bundles the engine's content-addressed memo caches — programs,
// profiles, compiled variants and simulated measurements. Every Context owns
// one by default; a long-lived service shares a single Caches across many
// request-scoped Contexts (Context.UseCaches) so repeated requests for the
// same artifacts are served from memory. Sharing is safe: the caches are
// concurrency-safe with single-flight builds, and every cache key covers the
// full configuration (workload parameters, compiler kind, machine config,
// window/profiling scale), so contexts at different scales coexist without
// collisions.
type Caches struct {
	progs    *sched.Memo[*prog.Program]
	profs    *sched.Memo[*core.Profile]
	variants *sched.Memo[variantEntry]
	meas     *sched.Memo[*Measurement]
}

// NewCaches returns an empty cache bundle with the default measurement
// retention budget.
func NewCaches() *Caches {
	return &Caches{
		progs:    sched.NewMemo[*prog.Program](0),
		profs:    sched.NewMemo[*core.Profile](0),
		variants: sched.NewMemo[variantEntry](0),
		meas:     sched.NewMemo[*Measurement](DefaultMeasureCacheBytes),
	}
}

// Stats returns the bundle's current hit/miss counters.
func (s *Caches) Stats() CacheStats {
	return CacheStats{
		Programs:     s.progs.Stats(),
		Profiles:     s.profs.Stats(),
		Variants:     s.variants.Stats(),
		Measurements: s.meas.Stats(),
	}
}

// NewContext returns the full-scale experiment context.
func NewContext() *Context {
	return &Context{
		Seed:        42,
		WarmupArch:  20_000,
		WarmArch:    30_000,
		MeasureArch: 120_000,
		ProfilePlan: trace.SamplePlan{Samples: 12, Length: 25_000, Gap: 5_000, Warmup: 5_000},
		HighFanout:  8,
		caches:      NewCaches(),
	}
}

// UseCaches swaps the context's memo caches for a shared bundle. Call before
// running anything; artifacts already cached in the bundle are reused.
func (c *Context) UseCaches(s *Caches) {
	if s != nil {
		c.caches = s
	}
}

// SetRunContext binds a cancellation context: worker pools stop dispatching
// queued shards once it is cancelled, and memo values whose build finished
// under a cancelled context are discarded (they may be partial) rather than
// retained or handed to single-flight waiters. Cancellation is best-effort —
// an executing simulation window runs to completion — and a cancelled run's
// outputs must be discarded by the caller (Run/RunContext do).
func (c *Context) SetRunContext(ctx context.Context) { c.runCtx = ctx }

// RunContext returns the bound cancellation context (nil when none is set).
func (c *Context) RunContext() context.Context { return c.runCtx }

// Err returns the bound context's error, or nil when no context is bound or
// it is still live.
func (c *Context) Err() error {
	if c.runCtx == nil {
		return nil
	}
	return c.runCtx.Err()
}

// validFn returns the memo validity check for the current run context: a
// build is retained only if the context was still live when it finished.
// With no context bound every build is valid.
func (c *Context) validFn() func() bool {
	ctx := c.runCtx
	if ctx == nil {
		return nil
	}
	return func() bool { return ctx.Err() == nil }
}

// SetMapper routes the context's shard maps (Context.forEach) through m
// instead of a locally constructed sched.Pool. nil restores the local pool.
// The mapper must uphold the sched determinism contract; under it, results
// are identical for every mapper.
func (c *Context) SetMapper(m sched.Mapper) { c.mapper = m }

// SetRemote routes measurement units (the expensive profile→compile→simulate
// leaf of every experiment) through r: MeasureVariant cache misses dispatch a
// MeasureRequest instead of computing locally, and the returned measurement
// is cached as if it had been built here. A dispatch error falls back to
// local computation, so a degraded or empty fleet slows a run down but never
// fails it. nil restores local execution.
func (c *Context) SetRemote(r Remote) { c.remote = r }

// QuickContext returns a reduced-scale context for tests and benchmarks.
func QuickContext() *Context {
	c := NewContext()
	c.WarmupArch = 10_000
	c.WarmArch = 15_000
	c.MeasureArch = 40_000
	c.ProfilePlan = trace.SamplePlan{Samples: 6, Length: 15_000, Gap: 4_000, Warmup: 5_000}
	return c
}

// workers resolves the configured worker bound.
func (c *Context) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Program returns (and caches) the generated program for an app, keyed by
// the full generator parameter set (workload seed included).
func (c *Context) Program(a workload.App) *prog.Program {
	key := sched.KeyOf("prog", a.Params)
	return memoGet(c, c.caches.progs, "program "+a.Params.Name, key, func() *prog.Program {
		return workload.Generate(a.Params)
	}, nil)
}

// Profile returns (and caches) the CritIC profile for an app. ideal relaxes
// the all-or-nothing representability requirement during selection
// (CritIC.Ideal). windowsFrac < 1 profiles only the leading fraction of the
// sampled windows (Fig. 12b). Per-window chain extraction is sharded over
// the context's worker pool (internal/core merges windows in index order,
// so the profile is identical for every worker count).
func (c *Context) Profile(a workload.App, ideal bool, windowsFrac float64) *core.Profile {
	key := sched.KeyOf("prof", a.Params, ideal, windowsFrac, c.ProfilePlan)
	return memoGet(c, c.caches.profs, "profile "+a.Params.Name, key, func() *core.Profile {
		p := c.Program(a)
		ws := trace.Collect(p, a.Params.Seed, c.ProfilePlan)
		if windowsFrac > 0 && windowsFrac < 1 {
			n := int(float64(len(ws))*windowsFrac + 0.5)
			if n < 1 {
				n = 1
			}
			ws = ws[:n]
		}
		cfg := core.DefaultConfig()
		cfg.RequireThumb = !ideal
		cfg.Workers = c.workers()
		cfg.Ctx = c.runCtx
		return core.BuildProfile(p, ws, cfg)
	}, nil)
}

// Variant kinds accepted by Context.Variant.
const (
	VarBase         = "base"
	VarHoist        = "hoist"
	VarCritIC       = "critic"
	VarCritICIdeal  = "critic-ideal"
	VarCritICBranch = "critic-branch"
	VarOPP16        = "opp16"
	VarCompress     = "compress"
	VarOPP16CritIC  = "opp16+critic"
)

// Variant returns (and caches) a compiled variant of an app's program.
// For CritIC variants with a length cap other than 5, use kind
// "critic-len-N" (exactly-length-N selection, Fig. 12a) or
// "critic-frac-F" (profiling fraction, Fig. 12b with F in percent). Any
// kind may carry a "+lay-<pass>" suffix (FrontendKind) selecting a
// profile-guided code-layout pass applied after compilation.
// The kind string names the compiler configuration; the cache key adds the
// generator parameters and the profiling plan the variant's profile
// depends on.
func (c *Context) Variant(a workload.App, kind string) (*prog.Program, compiler.Stats) {
	key := sched.KeyOf("variant", a.Params, kind, c.ProfilePlan)
	v := memoGet(c, c.caches.variants, "variant "+a.Params.Name+"/"+kind, key, func() variantEntry {
		p, st := c.buildVariant(a, kind)
		return variantEntry{p: p, st: st}
	}, nil)
	return v.p, v.st
}

func (c *Context) buildVariant(a workload.App, kind string) (*prog.Program, compiler.Stats) {
	// A "+lay-<pass>" suffix re-lays the inner variant's code after
	// compilation: the inner variant is fetched through the memo (so e.g.
	// "critic" and "critic+lay-c3" share one compile), then cloned and
	// re-addressed by internal/layout under the app's standard profile.
	if inner, lay, ok := splitLayoutKind(kind); ok {
		p, st := c.Variant(a, inner)
		q, err := layout.ApplyKind(p, c.Profile(a, false, 1), lay)
		if err != nil {
			panic(fmt.Sprintf("exp: laying out %s/%s: %v", a.Params.Name, kind, err))
		}
		return q, st
	}
	base := c.Program(a)
	var (
		q   *prog.Program
		st  compiler.Stats
		err error
	)
	switch {
	case kind == VarBase:
		return base, compiler.Stats{}
	case kind == VarHoist:
		q, st, err = compiler.ApplyCritIC(base, c.Profile(a, false, 1), compiler.Options{MaxLen: 5, HoistOnly: true})
	case kind == VarCritIC:
		q, st, err = compiler.ApplyCritIC(base, c.Profile(a, false, 1), compiler.Options{MaxLen: 5, Switch: compiler.SwitchCDP})
	case kind == VarCritICIdeal:
		q, st, err = compiler.ApplyCritIC(base, c.Profile(a, true, 1), compiler.Options{MaxLen: core.MaxChainLen, Switch: compiler.SwitchCDP, Ideal: true})
	case kind == VarCritICBranch:
		q, st, err = compiler.ApplyCritIC(base, c.Profile(a, false, 1), compiler.Options{MaxLen: 5, Switch: compiler.SwitchBranch})
	case kind == VarOPP16:
		q, st, err = compiler.ApplyOPP16(base, 3)
	case kind == VarCompress:
		q, st, err = compiler.ApplyCompress(base)
	case kind == VarOPP16CritIC:
		var mid *prog.Program
		mid, st, err = compiler.ApplyCritIC(base, c.Profile(a, false, 1), compiler.Options{MaxLen: 5, Switch: compiler.SwitchCDP})
		if err == nil {
			var st2 compiler.Stats
			q, st2, err = compiler.ApplyOPP16(mid, 3)
			st.ConvertedInstrs += st2.ConvertedInstrs
			st.ExpandedInstrs += st2.ExpandedInstrs
			st.CDPsInserted += st2.CDPsInserted
		}
	default:
		var n, pct int
		if _, e := fmt.Sscanf(kind, "critic-len-%d", &n); e == nil {
			q, st, err = c.buildExactLen(a, n)
			break
		}
		if _, e := fmt.Sscanf(kind, "critic-frac-%d", &pct); e == nil {
			prof := c.Profile(a, false, float64(pct)/100)
			q, st, err = compiler.ApplyCritIC(base, prof, compiler.Options{MaxLen: 5, Switch: compiler.SwitchCDP})
			break
		}
		panic("exp: unknown variant kind " + kind)
	}
	if err != nil {
		panic(fmt.Sprintf("exp: building %s/%s: %v", a.Params.Name, kind, err))
	}
	return q, st
}

// buildExactLen builds the Fig. 12a variant: only chains of exactly length n
// are optimized.
func (c *Context) buildExactLen(a workload.App, n int) (*prog.Program, compiler.Stats, error) {
	full := c.Profile(a, false, 1)
	filtered := &core.Profile{App: full.App, TotalDyn: full.TotalDyn}
	for _, e := range full.Entries {
		if e.Selected && e.Length == n {
			filtered.Entries = append(filtered.Entries, e)
		}
	}
	return compiler.ApplyCritIC(c.Program(a), filtered, compiler.Options{MaxLen: n, Switch: compiler.SwitchCDP})
}

// WindowAgg holds the per-instruction aggregates the figure runners consume,
// folded online while the measured window retires (cpu.Sim.OnCommit). Every
// Measurement carries one regardless of collect mode, so figures that only
// need aggregate breakdowns no longer force O(window) Dyns/Fanouts/Records
// retention. All fields are integer-valued plain data: the JSON round-trip
// through the distributed wire form is exact.
type WindowAgg struct {
	// Threshold is the individually-critical fanout threshold the Crit*
	// fields were folded under (Context.HighFanout at measure time; part
	// of the measurement memo key).
	Threshold int32 `json:"threshold"`

	CritBkd cpu.Breakdown `json:"crit_bkd"` // stage dwell over critical instructions
	AllBkd  cpu.Breakdown `json:"all_bkd"`  // stage dwell over the whole window

	CritDyns     int64 `json:"crit_dyns"`     // fanout >= Threshold
	OverheadDyns int64 `json:"overhead_dyns"` // compiler-inserted (CDPs, switch branches)
	ThumbArch    int64 `json:"thumb_arch"`    // architectural instructions in Thumb state
	ChainDyns    int64 `json:"chain_dyns"`    // members of an optimized chain

	// Critical-instruction measured execute-latency mix (Fig. 3c buckets).
	CritLat1     int64 `json:"crit_lat1"`
	CritLat2to3  int64 `json:"crit_lat2to3"`
	CritLat4Plus int64 `json:"crit_lat4plus"`
}

// Measurement is one simulated window plus the artifacts the figure runners
// consume. Agg is always populated; Dyns, Fanouts and Res.Records are only
// retained when the measurement was taken with collect=true (trace export
// and other per-instruction consumers) — the streaming measure path never
// materializes them.
type Measurement struct {
	Res     cpu.Result
	Agg     WindowAgg
	Dyns    []trace.Dyn
	Fanouts []int32
}

// aggObserver returns the commit observer that folds the measured window
// into m.Agg. Attach it after the warm window so only measured retirements
// are counted.
func (m *Measurement) aggObserver(threshold int32) func(*trace.Dyn, int32, *cpu.Record) {
	agg := &m.Agg
	agg.Threshold = threshold
	return func(d *trace.Dyn, fan int32, r *cpu.Record) {
		b := cpu.BreakdownOf(r)
		agg.AllBkd.Add(b)
		if d.Overhead {
			agg.OverheadDyns++
		} else if d.Thumb {
			agg.ThumbArch++
		}
		if d.ChainID != 0 {
			agg.ChainDyns++
		}
		if fan >= threshold {
			agg.CritDyns++
			agg.CritBkd.Add(b)
			// Measured execute time (loads include their memory time),
			// which is what Fig. 3c contrasts.
			switch lat := r.Done - r.Issued; {
			case lat <= 1:
				agg.CritLat1++
			case lat <= 3:
				agg.CritLat2to3++
			default:
				agg.CritLat4Plus++
			}
		}
	}
}

// Speedup returns base.Cycles / opt.Cycles as a percentage gain.
func Speedup(base, opt *Measurement) float64 {
	if opt.Res.Cycles == 0 {
		return 0
	}
	return 100 * (float64(base.Res.Cycles)/float64(opt.Res.Cycles) - 1)
}

// measureBuffers bundles the streaming scratch state one measurement needs
// — a chunked generator source and an online fanout stream — so repeated
// measurements (and the per-worker loops of criticd/dist fleets) reuse the
// chunk and window buffers instead of reallocating them per window.
type measureBuffers struct {
	src trace.GenSource
	fs  dfg.FanoutStream
}

var measureBufs = sync.Pool{New: func() any { return new(measureBuffers) }}

// Measure simulates one program under cfg over the context's measurement
// window (with warm-up), optionally collecting per-instruction records.
// This is the uncached primitive; experiment runners go through
// MeasureVariant, which memoizes the result.
//
// With collect=false the whole generate → fanout → simulate path streams in
// chunks: peak memory is O(chunk + fanout window) regardless of MeasureArch,
// and the returned Measurement retains only Res and Agg. collect=true
// materializes the window (Dyns, Fanouts, Res.Records) for per-instruction
// consumers. Both paths produce bit-identical Res and Agg.
func (c *Context) Measure(p *prog.Program, cfg cpu.Config, collect bool) *Measurement {
	if c.tel != nil {
		cfg.Metrics = c.tel.Sim
		defer func(start time.Time) {
			c.tel.MeasureSeconds.Observe(time.Since(start).Seconds())
		}(time.Now())
	}
	g := trace.NewGenerator(p, c.Seed)
	g.SkipArch(c.WarmupArch)

	cfg.CollectRecords = collect
	s := cpu.New(cfg)
	m := &Measurement{}

	if collect {
		warm := g.GenerateArch(nil, c.WarmArch)
		dyns := g.GenerateArch(nil, c.MeasureArch)
		warmFan := dfg.Fanouts(warm, 128)
		fan := dfg.Fanouts(dyns, 128)
		s.Run(warm, warmFan)
		s.OnCommit(m.aggObserver(c.HighFanout))
		m.Res = s.Run(dyns, fan)
		m.Dyns, m.Fanouts = dyns, fan
		return m
	}

	b := measureBufs.Get().(*measureBuffers)
	defer measureBufs.Put(b)
	b.src.Reset(g, c.WarmArch, trace.DefaultChunk)
	b.fs.Reset(&b.src, 128)
	s.RunStream(&b.fs)
	s.OnCommit(m.aggObserver(c.HighFanout))
	b.src.Reset(g, c.MeasureArch, trace.DefaultChunk)
	b.fs.Reset(&b.src, 128)
	m.Res = s.RunStream(&b.fs)
	return m
}

// windowSource returns a chunked Source over the context's measure window of
// the given variant — exactly the dyns a Measurement of that variant covers
// (same seed, same warm-up skip), without simulating or materializing the
// window. Chain-structure figures stream their extraction over it.
func (c *Context) windowSource(a workload.App, kind string, chunk int) *trace.GenSource {
	p, _ := c.Variant(a, kind)
	g := trace.NewGenerator(p, c.Seed)
	g.SkipArch(c.WarmupArch)
	g.SkipArch(c.WarmArch)
	return trace.NewGenSource(g, c.MeasureArch, chunk)
}

// MeasureVariant measures one (app, variant, machine config) shard through
// the memo cache: the baseline trace/simulation for an app is computed once
// and reused by every experiment that needs it (fig1a/fig3/fig10/...)
// instead of once per figure. The key covers everything the result depends
// on: workload seed and generator parameters (a.Params), compiler
// configuration (kind), machine configuration (cfg), and the context's
// window/profiling scale. The returned Measurement is shared — callers must
// treat it as read-only.
func (c *Context) MeasureVariant(a workload.App, kind string, cfg cpu.Config, collect bool) *Measurement {
	// Telemetry sinks never participate in cache identity: the key covers
	// the simulated configuration only, and Measure re-attaches the
	// context's sink after the lookup.
	kcfg := cfg
	kcfg.Metrics = nil
	key := sched.KeyOf("meas", a.Params, kind, kcfg, collect,
		c.Seed, c.WarmupArch, c.WarmArch, c.MeasureArch, c.ProfilePlan, c.HighFanout)
	label := "measure " + a.Params.Name + "/" + kind
	return memoGet(c, c.caches.meas, label, key, func() *Measurement {
		remoteFailed := false
		if c.remote != nil {
			ctx := c.runCtx
			if ctx == nil {
				ctx = context.Background()
			}
			// Re-parent the trace context onto this build's span so the
			// dispatch/retry spans the remote records hang under it.
			if t, _, ok := obs.FromContext(ctx); ok {
				ctx = obs.ContextWith(ctx, t, obs.BuildSpanID(label, keyHex8(key)))
			}
			m, err := c.remote.MeasureRemote(ctx, MeasureRequest{
				App: a.Params, Kind: kind, Config: kcfg, Collect: collect,
				Seed: c.Seed, WarmupArch: c.WarmupArch, WarmArch: c.WarmArch,
				MeasureArch: c.MeasureArch, ProfilePlan: c.ProfilePlan,
				HighFanout: c.HighFanout,
			})
			if err == nil {
				return m
			}
			if c.Err() != nil {
				// Cancelled mid-dispatch: return a discardable zero — the
				// memo validity check drops it and the run fails on Err.
				return nil
			}
			// The fleet could not serve the task (drained, all workers
			// down, retries exhausted): compute locally so the run still
			// completes. Remote implementations account the fallback.
			remoteFailed = true
		}
		if remoteFailed {
			if t, _, ok := obs.FromContext(c.runCtx); ok {
				t0 := t.Now()
				defer func() {
					t.Add(obs.Span{
						ID:     obs.BuildSpanID(label, keyHex8(key)) + ":lf",
						Parent: obs.BuildSpanID(label, keyHex8(key)),
						Name:   "local-fallback", StartUS: t0, DurUS: t.Now() - t0,
					})
				}()
			}
		}
		p, _ := c.Variant(a, kind)
		return c.Measure(p, cfg, collect)
	}, measurementCost)
}

// MeasureRequest is the serializable description of one MeasureVariant call
// — the remote unit of work for distributed execution (internal/dist). It
// carries every input the measurement's memo key covers (generator
// parameters, compiler kind, machine configuration with telemetry stripped,
// and the window/profiling scale), so a worker executing it computes exactly
// the artifact the dispatching context would have built locally; every field
// is integer- or bool-valued plain data, so the JSON round-trip is exact and
// distribution preserves bit-identical results.
type MeasureRequest struct {
	App     workload.Params `json:"app"`
	Kind    string          `json:"kind"`
	Config  cpu.Config      `json:"config"`
	Collect bool            `json:"collect,omitempty"`

	Seed        int64            `json:"seed"`
	WarmupArch  int              `json:"warmup_arch"`
	WarmArch    int              `json:"warm_arch"`
	MeasureArch int              `json:"measure_arch"`
	ProfilePlan trace.SamplePlan `json:"profile_plan"`
	HighFanout  int32            `json:"high_fanout"`
}

// Remote executes measurement units somewhere other than this process.
// internal/dist's Coordinator is the fleet-backed implementation.
type Remote interface {
	// MeasureRemote executes req and returns its measurement. The result
	// must be bit-identical to a local execution of the same request; an
	// error makes the caller fall back to computing locally.
	MeasureRemote(ctx context.Context, req MeasureRequest) (*Measurement, error)
}

// ExecuteMeasure runs one measurement request against the given cache bundle
// — the worker side of distributed execution. workers bounds the request's
// internal shard pool (per-window profile extraction); 0 selects GOMAXPROCS.
// caches == nil builds against a private throwaway bundle. A ctx cancelled
// mid-build aborts the request, and (per the memo validity contract) the
// partial artifacts are not retained.
func ExecuteMeasure(ctx context.Context, req MeasureRequest, caches *Caches, workers int) (m *Measurement, err error) {
	if caches == nil {
		caches = NewCaches()
	}
	// A malformed hierarchy (zero ways, unknown policy, bad temp hints) would
	// otherwise panic deep in cache construction on the worker; requests come
	// off the wire, so refuse them with an error instead.
	if verr := req.Config.Hier.Validate(); verr != nil {
		return nil, fmt.Errorf("exp: measurement %s/%s config invalid: %w", req.App.Name, req.Kind, verr)
	}
	c := &Context{
		Seed:        req.Seed,
		WarmupArch:  req.WarmupArch,
		WarmArch:    req.WarmArch,
		MeasureArch: req.MeasureArch,
		ProfilePlan: req.ProfilePlan,
		HighFanout:  req.HighFanout,
		Workers:     workers,
		caches:      caches,
	}
	if ctx != nil {
		c.SetRunContext(ctx)
		defer func() {
			// A shard skipped by cancellation can surface as a panic when a
			// later stage consumes the discarded artifact; report it as the
			// context error (same contract as exp.RunContext).
			if p := recover(); p != nil {
				if cerr := ctx.Err(); cerr != nil {
					m, err = nil, cerr
					return
				}
				panic(p)
			}
		}()
	}
	m = c.MeasureVariant(workload.App{Params: req.App}, req.Kind, req.Config, req.Collect)
	if cerr := c.Err(); cerr != nil {
		return nil, cerr
	}
	if m == nil {
		return nil, fmt.Errorf("exp: measurement %s/%s produced no result", req.App.Name, req.Kind)
	}
	return m, nil
}

// measurementCost approximates a measurement's retained bytes. Streamed
// (collect=false) measurements retain no slices — they cost the fixed
// struct footprint — while collect=true measurements are dominated by their
// Dyns/Fanouts/Records buffers.
func measurementCost(m *Measurement) int64 {
	const dynBytes = int64(unsafe.Sizeof(trace.Dyn{}))
	const recBytes = int64(unsafe.Sizeof(cpu.Record{}))
	const structBytes = int64(unsafe.Sizeof(Measurement{}))
	return structBytes +
		int64(len(m.Dyns))*dynBytes +
		int64(len(m.Fanouts))*4 +
		int64(len(m.Res.Records))*recBytes
}

// CacheStats reports the engine's memo-cache hit/miss counters.
type CacheStats struct {
	Programs     sched.Stats
	Profiles     sched.Stats
	Variants     sched.Stats
	Measurements sched.Stats
}

// String formats the counters (the -cache-stats view of cmd/criticsim).
func (s CacheStats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cache stats:\n")
	fmt.Fprintf(&b, "  programs:     %s\n", s.Programs)
	fmt.Fprintf(&b, "  profiles:     %s\n", s.Profiles)
	fmt.Fprintf(&b, "  variants:     %s\n", s.Variants)
	fmt.Fprintf(&b, "  measurements: %s\n", s.Measurements)
	return b.String()
}

// CacheStats returns the context's current memo counters.
func (c *Context) CacheStats() CacheStats {
	return CacheStats{
		Programs:     c.caches.progs.Stats(),
		Profiles:     c.caches.profs.Stats(),
		Variants:     c.caches.variants.Stats(),
		Measurements: c.caches.meas.Stats(),
	}
}

// Suites returns the three workload suites keyed as the paper labels them.
func Suites() map[string][]workload.App {
	return map[string][]workload.App{
		"android":    workload.MobileApps(),
		"spec.int":   workload.SPECIntApps(),
		"spec.float": workload.SPECFloatApps(),
	}
}

// SuiteOrder is the presentation order of suites.
var SuiteOrder = []string{"spec.int", "spec.float", "android"}

// forEach runs f over indices 0..n-1 on the context's mapper — the attached
// sched.Mapper when one is set (distributed execution), a locally
// constructed worker pool otherwise — and waits. Results must be written to
// preallocated, index-addressed storage; order-sensitive reductions happen
// after it returns (the sched package's determinism contract).
func (c *Context) forEach(n int, f func(i int)) {
	if m := c.mapper; m != nil {
		g := f
		if ctx := c.runCtx; ctx != nil {
			// Match the pool's cancellation semantics: stop running queued
			// shards once the context is done (partial results are
			// discarded by the caller).
			g = func(i int) {
				if ctx.Err() != nil {
					return
				}
				f(i)
			}
		}
		m.Map(n, g)
		return
	}
	p := sched.NewPool(c.workers()).Named("exp")
	if c.tel != nil {
		p.Instrument(c.tel.Pool)
	}
	if c.runCtx != nil {
		p.WithContext(c.runCtx)
	}
	p.Map(n, f)
}

// critBreakdown returns the per-stage residency of the high-fanout
// (individually critical) instructions of a measurement, and of its whole
// window — folded online while the window retired (WindowAgg), so it is
// available in both collect modes.
func (c *Context) critBreakdown(m *Measurement) (crit cpu.Breakdown, all cpu.Breakdown, critCount int) {
	return m.Agg.CritBkd, m.Agg.AllBkd, int(m.Agg.CritDyns)
}
