package exp

import (
	"fmt"
	"strings"

	"critics/internal/cpu"
	"critics/internal/stats"
	"critics/internal/workload"
)

// Fig13Row is one scheme's mean result: speedup and the fraction of dynamic
// instructions executed from the 16-bit format.
type Fig13Row struct {
	Scheme       string
	SpeedupPct   float64
	ThumbDynFrac float64
}

// Fig13Result reproduces Fig. 13a/13b: criticality-agnostic Thumb conversion
// versus CritIC.
type Fig13Result struct {
	Rows []Fig13Row
}

// fig13Schemes maps presentation names to variant kinds.
var fig13Schemes = []struct{ name, kind string }{
	{"OPP16", VarOPP16},
	{"Compress", VarCompress},
	{"CritIC", VarCritIC},
	{"OPP16+CritIC", VarOPP16CritIC},
}

// RunFig13 measures the opportunistic conversion schemes.
func RunFig13(c *Context) *Fig13Result {
	apps := workload.MobileApps()
	grid := make([][]float64, len(fig13Schemes))
	thumb := make([][]float64, len(fig13Schemes))
	for si := range fig13Schemes {
		grid[si] = make([]float64, len(apps))
		thumb[si] = make([]float64, len(apps))
	}
	c.forEach(len(apps), func(i int) {
		a := apps[i]
		units := []MeasureUnit{{VarBase, cpu.DefaultConfig()}}
		for _, sch := range fig13Schemes {
			units = append(units, MeasureUnit{sch.kind, cpu.DefaultConfig()})
		}
		ms := c.MeasureSweep(a, units, false)
		base := ms[0]
		for si := range fig13Schemes {
			m := ms[1+si]
			grid[si][i] = Speedup(base, m)
			if arch := m.Res.AllDyns - m.Agg.OverheadDyns; arch > 0 {
				thumb[si][i] = float64(m.Agg.ThumbArch) / float64(arch)
			}
		}
	})
	out := &Fig13Result{}
	for si, sch := range fig13Schemes {
		out.Rows = append(out.Rows, Fig13Row{
			Scheme:       sch.name,
			SpeedupPct:   stats.Mean(grid[si]),
			ThumbDynFrac: stats.Mean(thumb[si]),
		})
	}
	return out
}

// String formats the figure.
func (r *Fig13Result) String() string {
	var b strings.Builder
	b.WriteString("Fig 13: opportunistic 16-bit conversion vs CritIC (mean over mobile apps)\n")
	fmt.Fprintf(&b, "  %-14s %10s %16s\n", "scheme", "speedup%", "dyn 16-bit frac")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-14s %10.2f %16.3f\n", row.Scheme, row.SpeedupPct, row.ThumbDynFrac)
	}
	return b.String()
}

// ---------------------------------------------------------------- Tables

// Table1String renders the baseline configuration (Table I).
func Table1String() string {
	cfg := cpu.DefaultConfig()
	var b strings.Builder
	b.WriteString("Table I: baseline simulation configuration\n")
	fmt.Fprintf(&b, "  CPU:    %d-wide Fetch/Decode/Rename/Issue/Commit; %d ROB; %d IQ; %d LSQ; fetch port %dB/cycle\n",
		cfg.FetchWidth, cfg.ROBSize, cfg.IQSize, cfg.LSQSize, cfg.FetchBytes)
	fmt.Fprintf(&b, "  FUs:    %d int ALU, %d mul/div, %d FP, %d mem ports\n", cfg.IntALUs, cfg.MulDivUs, cfg.FPUs, cfg.MemPorts)
	fmt.Fprintf(&b, "  BPU:    %d-entry two-level tournament, %d history bits; %d-cycle redirect\n",
		cfg.BPU.Entries, cfg.BPU.HistoryBits, cfg.MispredictPenalty)
	fmt.Fprintf(&b, "  L1I:    %dKB %d-way, %d-cycle hit; L1D: %dKB %d-way, %d-cycle hit\n",
		cfg.Hier.L1I.SizeBytes>>10, cfg.Hier.L1I.Ways, cfg.Hier.L1I.HitLat,
		cfg.Hier.L1D.SizeBytes>>10, cfg.Hier.L1D.Ways, cfg.Hier.L1D.HitLat)
	fmt.Fprintf(&b, "  L2:     %dMB %d-way, %d-cycle hit, CLPT prefetcher (%d entries)\n",
		cfg.Hier.L2.SizeBytes>>20, cfg.Hier.L2.Ways, cfg.Hier.L2.HitLat, cfg.Hier.CLPTEntries)
	fmt.Fprintf(&b, "  DRAM:   LPDDR3 %d ch x %d ranks x %d banks; tCL/tRP/tRCD = %d/%d/%d cycles (13ns @1.5GHz)\n",
		cfg.Hier.DRAM.Channels, cfg.Hier.DRAM.RanksPerChan, cfg.Hier.DRAM.BanksPerRank,
		cfg.Hier.DRAM.TCL, cfg.Hier.DRAM.TRP, cfg.Hier.DRAM.TRCD)
	return b.String()
}

// Table2String renders the workload catalog (Table II).
func Table2String() string {
	var b strings.Builder
	b.WriteString("Table II: workloads\n")
	b.WriteString("  Mobile apps:\n")
	for _, a := range workload.MobileApps() {
		p := a.Params
		fmt.Fprintf(&b, "    %-14s funcs=%-4d chainProb=%.2f chainLen=%d-%d hubFanout=%d-%d cold=%.2f\n",
			p.Name, p.NumFuncs, p.ChainProb, p.ChainLen[0], p.ChainLen[1], p.HubFanout[0], p.HubFanout[1], p.ColdFrac)
	}
	b.WriteString("  SPEC.int:   ")
	for _, a := range workload.SPECIntApps() {
		fmt.Fprintf(&b, "%s ", a.Params.Name)
	}
	b.WriteString("\n  SPEC.float: ")
	for _, a := range workload.SPECFloatApps() {
		fmt.Fprintf(&b, "%s ", a.Params.Name)
	}
	b.WriteString("\n")
	return b.String()
}
