package exp

import (
	"reflect"
	"testing"

	"critics/internal/cpu"
	"critics/internal/dfg"
	"critics/internal/prog"
	"critics/internal/trace"
	"critics/internal/workload"
)

// refMeasure is the materialize-everything measurement path, kept inline as
// the reference for the streaming equivalence tests: generate both windows
// up front, compute fanouts over the full slices, simulate, and rebuild the
// window aggregates from the record slice afterwards (independently of the
// OnCommit fold the production path uses).
func refMeasure(c *Context, p *prog.Program, cfg cpu.Config) (cpu.Result, WindowAgg) {
	g := trace.NewGenerator(p, c.Seed)
	g.SkipArch(c.WarmupArch)
	warm := g.GenerateArch(nil, c.WarmArch)
	dyns := g.GenerateArch(nil, c.MeasureArch)
	warmFan := dfg.Fanouts(warm, 128)
	fan := dfg.Fanouts(dyns, 128)

	cfg.CollectRecords = true
	s := cpu.New(cfg)
	s.Run(warm, warmFan)
	res := s.Run(dyns, fan)

	agg := WindowAgg{Threshold: c.HighFanout}
	for k := range res.Records {
		r := &res.Records[k]
		d := &dyns[k]
		b := cpu.BreakdownOf(r)
		agg.AllBkd.Add(b)
		if d.Overhead {
			agg.OverheadDyns++
		} else if d.Thumb {
			agg.ThumbArch++
		}
		if d.ChainID != 0 {
			agg.ChainDyns++
		}
		if fan[k] >= c.HighFanout {
			agg.CritDyns++
			agg.CritBkd.Add(b)
			switch lat := r.Done - r.Issued; {
			case lat <= 1:
				agg.CritLat1++
			case lat <= 3:
				agg.CritLat2to3++
			default:
				agg.CritLat4Plus++
			}
		}
	}
	return res, agg
}

// stripResult clears the in-memory handle fields so Results from distinct
// Sim instances compare with reflect.DeepEqual.
func stripResult(r cpu.Result) cpu.Result {
	r.Hier, r.BPU = nil, nil
	return r
}

// TestMeasureStreamingEquivalence checks, for every app in the catalog and
// both collect modes, that Measure produces exactly the Result and window
// aggregates of the materialize-everything reference path.
func TestMeasureStreamingEquivalence(t *testing.T) {
	c := QuickContext()
	c.WarmupArch = 2_000
	c.WarmArch = 3_000
	c.MeasureArch = 6_000
	for suite, apps := range Suites() {
		for _, a := range apps {
			p := c.Program(a)
			wantRes, wantAgg := refMeasure(c, p, cpu.DefaultConfig())
			for _, collect := range []bool{false, true} {
				m := c.Measure(p, cpu.DefaultConfig(), collect)
				got, want := stripResult(m.Res), stripResult(wantRes)
				if !collect {
					// The reference always collects records to rebuild the
					// aggregates; the streamed path only keeps them when
					// asked to.
					want.Records = nil
				}
				if !reflect.DeepEqual(got, want) {
					t.Errorf("%s/%s collect=%v: Result differs\ngot:  %+v\nwant: %+v",
						suite, a.Params.Name, collect, got, want)
				}
				if m.Agg != wantAgg {
					t.Errorf("%s/%s collect=%v: window aggregates differ\ngot:  %+v\nwant: %+v",
						suite, a.Params.Name, collect, m.Agg, wantAgg)
				}
				if collect {
					if m.Dyns == nil || m.Fanouts == nil || m.Res.Records == nil {
						t.Errorf("%s/%s: collect=true lost its materialized window", suite, a.Params.Name)
					}
				} else if m.Dyns != nil || m.Fanouts != nil || m.Res.Records != nil {
					t.Errorf("%s/%s: collect=false retained window slices", suite, a.Params.Name)
				}
			}
		}
	}
}

// TestMeasureLongWindow scales the measured window an order of magnitude
// past the full-scale default: the streamed path must complete and retain
// nothing but the fixed-size result and aggregates.
func TestMeasureLongWindow(t *testing.T) {
	if testing.Short() {
		t.Skip("long window")
	}
	c := QuickContext()
	c.WarmupArch = 2_000
	c.WarmArch = 3_000
	c.MeasureArch = 1_200_000
	a, ok := workload.FindApp("acrobat")
	if !ok {
		t.Fatal("catalog app missing")
	}
	m := c.Measure(c.Program(a), cpu.DefaultConfig(), false)
	if m.Res.Instrs != int64(c.MeasureArch) {
		t.Fatalf("measured %d architectural instructions, want %d", m.Res.Instrs, c.MeasureArch)
	}
	if m.Dyns != nil || m.Fanouts != nil || m.Res.Records != nil {
		t.Fatal("streamed long window retained per-instruction slices")
	}
	if cost := measurementCost(m); cost > 1<<10 {
		t.Fatalf("streamed measurement retains %d bytes, want O(struct)", cost)
	}
}
