package exp

import (
	"testing"

	"critics/internal/emu"
	"critics/internal/trace"
	"critics/internal/workload"
)

// TestPassesPreserveSemantics is the metamorphic compiler check, table-driven
// across every catalog entry (all mobile apps and both SPEC suites, not a
// sample): each pass must (1) preserve value-level block semantics under the
// emu oracle and (2) preserve the baseline dynamic instruction count — for a
// fixed architectural-instruction budget, the transformed binary completes
// exactly as many event-loop iterations as the original, because the passes
// only reorder within blocks and add Overhead (non-architectural) marker
// instructions.
func TestPassesPreserveSemantics(t *testing.T) {
	if testing.Short() {
		t.Skip("full catalog sweep; skipped in -short")
	}
	kinds := []string{VarHoist, VarCritIC, VarOPP16, VarCompress}
	var apps []workload.App
	apps = append(apps, workload.MobileApps()...)
	apps = append(apps, workload.SPECIntApps()...)
	apps = append(apps, workload.SPECFloatApps()...)

	const archBudget = 20_000
	for _, a := range apps {
		a := a
		t.Run(a.Params.Name, func(t *testing.T) {
			base := shared.Program(a)
			gb := trace.NewGenerator(base, a.Params.Seed)
			baseDyns := gb.GenerateArch(nil, archBudget)
			for _, d := range baseDyns {
				if d.Overhead {
					t.Fatal("baseline trace contains Overhead instructions")
				}
			}
			baseIters := gb.Iterations

			for _, kind := range kinds {
				xform, _ := shared.Variant(a, kind)
				if err := emu.VerifyProgramEquivalence(base, xform, 2); err != nil {
					t.Errorf("%s: semantics changed: %v", kind, err)
					continue
				}
				gx := trace.NewGenerator(xform, a.Params.Seed)
				xDyns := gx.GenerateArch(nil, archBudget)
				arch := 0
				for _, d := range xDyns {
					if !d.Overhead {
						arch++
					}
				}
				if arch != archBudget {
					t.Errorf("%s: generated %d architectural instructions, want %d", kind, arch, archBudget)
				}
				if gx.Iterations != baseIters {
					t.Errorf("%s: %d iterations for the same architectural budget, baseline did %d",
						kind, gx.Iterations, baseIters)
				}
			}
		})
	}
}
