package exp

import (
	"fmt"
	"strings"

	"critics/internal/cpu"
	"critics/internal/energy"
	"critics/internal/stats"
	"critics/internal/workload"
)

// ---------------------------------------------------------------- Fig. 8

// Fig8Row is one app's Approach-1 result: the speedup achieved with the
// branch-pair format switch on existing hardware, and the potential with no
// switch overhead.
type Fig8Row struct {
	App          string
	ActualPct    float64 // SwitchBranch variant
	PotentialPct float64 // CDP variant with zero switch overhead
}

// Fig8Result reproduces Fig. 8.
type Fig8Result struct {
	Rows                      []Fig8Row
	MeanActual, MeanPotential float64
}

// RunFig8 measures the branch-pair switching approach per mobile app.
func RunFig8(c *Context) *Fig8Result {
	apps := workload.MobileApps()
	rows := make([]Fig8Row, len(apps))
	c.forEach(len(apps), func(i int) {
		a := apps[i]
		base := c.MeasureVariant(a, VarBase, cpu.DefaultConfig(), false)

		mBr := c.MeasureVariant(a, VarCritICBranch, cpu.DefaultConfig(), false)

		freeCfg := cpu.DefaultConfig()
		freeCfg.CDPExtraDecodeCycle = false
		mIdeal := c.MeasureVariant(a, VarCritIC, freeCfg, false)

		rows[i] = Fig8Row{
			App:          a.Params.Name,
			ActualPct:    Speedup(base, mBr),
			PotentialPct: Speedup(base, mIdeal),
		}
	})
	out := &Fig8Result{Rows: rows}
	var act, pot []float64
	for _, r := range rows {
		act = append(act, r.ActualPct)
		pot = append(pot, r.PotentialPct)
	}
	out.MeanActual = stats.Mean(act)
	out.MeanPotential = stats.Mean(pot)
	return out
}

// String formats the figure.
func (r *Fig8Result) String() string {
	var b strings.Builder
	b.WriteString("Fig 8: Approach 1 (branch-pair switch) on existing hardware vs lost potential (speedup %)\n")
	fmt.Fprintf(&b, "  %-14s %10s %12s\n", "app", "actual%", "potential%")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-14s %10.2f %12.2f\n", row.App, row.ActualPct, row.PotentialPct)
	}
	fmt.Fprintf(&b, "  %-14s %10.2f %12.2f\n", "MEAN", r.MeanActual, r.MeanPotential)
	return b.String()
}

// ---------------------------------------------------------------- Fig. 10

// Fig10Row is one app's Fig. 10 result set.
type Fig10Row struct {
	App string

	// 10a: speedups of the three design points.
	HoistPct, CritICPct, IdealPct float64

	// 10b: fetch-stall residency of the baseline vs CritIC (fractions of
	// total residency), i.e. what CritIC bought back.
	BaseFetchFrac, CritICFetchFrac float64

	// 10c: energy savings.
	Energy energy.Savings
}

// Fig10Result reproduces Fig. 10a/10b/10c.
type Fig10Result struct {
	Rows []Fig10Row

	MeanHoist, MeanCritIC, MeanIdeal float64
	MeanEnergy                       energy.Savings
}

// RunFig10 measures the three design points and the energy model per app.
func RunFig10(c *Context) *Fig10Result {
	apps := workload.MobileApps()
	rows := make([]Fig10Row, len(apps))
	c.forEach(len(apps), func(i int) {
		a := apps[i]
		// Four design points, one machine each: distinct kinds mean distinct
		// traces, so the sweep helper routes each through the memoized path.
		ms := c.MeasureSweep(a, []MeasureUnit{
			{VarBase, cpu.DefaultConfig()},
			{VarHoist, cpu.DefaultConfig()},
			{VarCritIC, cpu.DefaultConfig()},
			{VarCritICIdeal, cpu.DefaultConfig()},
		}, false)
		base, mHoist, mCrit, mIdeal := ms[0], ms[1], ms[2], ms[3]

		row := Fig10Row{App: a.Params.Name}
		row.HoistPct = Speedup(base, mHoist)
		row.CritICPct = Speedup(base, mCrit)
		row.IdealPct = Speedup(base, mIdeal)

		_, allB, _ := c.critBreakdown(base)
		_, allC, _ := c.critBreakdown(mCrit)
		if t := allB.Total(); t > 0 {
			row.BaseFetchFrac = float64(allB.FetchI+allB.FetchRD) / float64(t)
		}
		if t := allC.Total(); t > 0 {
			row.CritICFetchFrac = float64(allC.FetchI+allC.FetchRD) / float64(t)
		}

		eBase := energy.Compute(&base.Res, energy.DefaultConfig())
		eCrit := energy.Compute(&mCrit.Res, energy.DefaultConfig())
		row.Energy = energy.ComputeSavings(eBase, eCrit)
		rows[i] = row
	})
	out := &Fig10Result{Rows: rows}
	var h, cr, id []float64
	for _, r := range rows {
		h = append(h, r.HoistPct)
		cr = append(cr, r.CritICPct)
		id = append(id, r.IdealPct)
		out.MeanEnergy.ICachePct += r.Energy.ICachePct / float64(len(rows))
		out.MeanEnergy.CPUPct += r.Energy.CPUPct / float64(len(rows))
		out.MeanEnergy.MemoryPct += r.Energy.MemoryPct / float64(len(rows))
		out.MeanEnergy.TotalPct += r.Energy.TotalPct / float64(len(rows))
		out.MeanEnergy.CPUOnlyPct += r.Energy.CPUOnlyPct / float64(len(rows))
	}
	out.MeanHoist = stats.Mean(h)
	out.MeanCritIC = stats.Mean(cr)
	out.MeanIdeal = stats.Mean(id)
	return out
}

// String formats the figure.
func (r *Fig10Result) String() string {
	var b strings.Builder
	b.WriteString("Fig 10a: speedup over baseline (%)\n")
	fmt.Fprintf(&b, "  %-14s %8s %8s %12s\n", "app", "Hoist", "CritIC", "CritIC.Ideal")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-14s %8.2f %8.2f %12.2f\n", row.App, row.HoistPct, row.CritICPct, row.IdealPct)
	}
	fmt.Fprintf(&b, "  %-14s %8.2f %8.2f %12.2f\n", "MEAN", r.MeanHoist, r.MeanCritIC, r.MeanIdeal)

	b.WriteString("Fig 10b: fetch-stall residency fraction, baseline vs CritIC\n")
	fmt.Fprintf(&b, "  %-14s %10s %10s\n", "app", "baseline", "critic")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-14s %10.3f %10.3f\n", row.App, row.BaseFetchFrac, row.CritICFetchFrac)
	}

	b.WriteString("Fig 10c: energy savings (% of baseline system energy)\n")
	fmt.Fprintf(&b, "  %-14s %8s %8s %8s %8s %10s\n", "app", "icache", "cpu", "memory", "total", "cpu-only")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-14s %8.2f %8.2f %8.2f %8.2f %10.2f\n", row.App,
			row.Energy.ICachePct, row.Energy.CPUPct, row.Energy.MemoryPct, row.Energy.TotalPct, row.Energy.CPUOnlyPct)
	}
	fmt.Fprintf(&b, "  %-14s %8.2f %8.2f %8.2f %8.2f %10.2f\n", "MEAN",
		r.MeanEnergy.ICachePct, r.MeanEnergy.CPUPct, r.MeanEnergy.MemoryPct, r.MeanEnergy.TotalPct, r.MeanEnergy.CPUOnlyPct)
	return b.String()
}
