package exp

import (
	"testing"

	"critics/internal/cpu"
	"critics/internal/sched"
	"critics/internal/telemetry"
)

// variantKinds are every compiler variant the experiments key caches by.
var variantKinds = []string{
	VarBase, VarHoist, VarCritIC, VarCritICIdeal, VarCritICBranch,
	VarOPP16, VarCompress, VarOPP16CritIC,
	// Layout-composed kinds (the front-end sweep axis rides in the kind).
	VarCritIC + LayoutSuffix + "c3", VarBase + LayoutSuffix + "hot",
}

// TestKeyedTypesAreKeyable walks every struct type this package passes to
// sched.KeyOf — workload parameters for the whole catalog, the telemetry-
// stripped machine configuration, the profiling plan, and each variant kind
// — through sched.AssertKeyable. KeyOf hashes the %#v rendering, so a field
// that reflection rejects (slice, map, non-nil pointer) would silently
// produce address-dependent, nondeterministic cache keys; this test turns
// that into a build-time-adjacent failure when someone grows one of these
// structs.
func TestKeyedTypesAreKeyable(t *testing.T) {
	c := NewContext()

	for _, suite := range SuiteOrder {
		for _, a := range Suites()[suite] {
			if err := sched.AssertKeyable(a.Params); err != nil {
				t.Errorf("workload.Params for %s: %v", a.Params.Name, err)
			}
		}
	}

	kcfg := cpu.DefaultConfig()
	kcfg.Metrics = nil // stripped before keying, exactly as MeasureVariant does
	if err := sched.AssertKeyable(kcfg); err != nil {
		t.Errorf("cpu.Config (telemetry stripped): %v", err)
	}
	// A temperature-hinted config (trrip cells of fig-frontend) must key too:
	// TempHints is a fixed array precisely so this passes.
	tcfg := cpu.DefaultConfig()
	tcfg.Hier.L1I.Policy = "trrip"
	tcfg.Hier.Temps.Add(0, 4096, 3)
	if err := sched.AssertKeyable(tcfg); err != nil {
		t.Errorf("cpu.Config with temp hints: %v", err)
	}
	if err := sched.AssertKeyable(c.ProfilePlan); err != nil {
		t.Errorf("trace.SamplePlan: %v", err)
	}
	for _, kind := range variantKinds {
		if err := sched.AssertKeyable(kind); err != nil {
			t.Errorf("variant kind %q: %v", kind, err)
		}
	}
	for _, part := range []any{c.Seed, c.WarmupArch, c.WarmArch, c.MeasureArch, true} {
		if err := sched.AssertKeyable(part); err != nil {
			t.Errorf("scalar key part %#v: %v", part, err)
		}
	}

	// The raw DefaultConfig with a telemetry sink attached must be rejected
	// — keying it would make cache identity depend on a pointer address.
	live := cpu.DefaultConfig()
	live.Metrics = cpu.NewMetrics(telemetry.NewRegistry())
	if err := sched.AssertKeyable(live); err == nil {
		t.Error("cpu.Config with live Metrics passed AssertKeyable; MeasureVariant's strip would be pointless")
	}
}

// TestKeyChecksUnderRealRun turns the debug assertion on and drives every
// KeyOf call site in this package (program, profile, variant, measurement)
// through a real reduced-scale experiment. A contract violation panics
// inside KeyOf, failing the run.
func TestKeyChecksUnderRealRun(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real experiment; skipped in -short")
	}
	sched.EnableKeyChecks(true)
	defer sched.EnableKeyChecks(false)
	if _, err := Run("fig8", determinismCtx(2)); err != nil {
		t.Fatalf("fig8 under key checks: %v", err)
	}
}
