package emu

import (
	"testing"

	"critics/internal/compiler"
	"critics/internal/core"
	"critics/internal/isa"
	"critics/internal/prog"
	"critics/internal/trace"
	"critics/internal/workload"
)

func exec(t *testing.T, s *State, in isa.Inst) {
	t.Helper()
	if err := Exec(s, &in, 0); err != nil {
		t.Fatal(err)
	}
}

func TestALUSemantics(t *testing.T) {
	s := NewState()
	s.Regs[1] = 10
	s.Regs[2] = 3
	cases := []struct {
		in   isa.Inst
		want uint32
	}{
		{isa.Inst{Op: isa.OpADD, Rd: isa.R0, Rn: isa.R1, Rm: isa.R2}, 13},
		{isa.Inst{Op: isa.OpSUB, Rd: isa.R0, Rn: isa.R1, Rm: isa.R2}, 7},
		{isa.Inst{Op: isa.OpRSB, Rd: isa.R0, Rn: isa.R1, Rm: isa.R2}, ^uint32(6)}, // 3 - 10 = -7
		{isa.Inst{Op: isa.OpAND, Rd: isa.R0, Rn: isa.R1, Rm: isa.R2}, 10 & 3},
		{isa.Inst{Op: isa.OpORR, Rd: isa.R0, Rn: isa.R1, Rm: isa.R2}, 10 | 3},
		{isa.Inst{Op: isa.OpEOR, Rd: isa.R0, Rn: isa.R1, Rm: isa.R2}, 10 ^ 3},
		{isa.Inst{Op: isa.OpBIC, Rd: isa.R0, Rn: isa.R1, Rm: isa.R2}, 10 &^ 3},
		{isa.Inst{Op: isa.OpMUL, Rd: isa.R0, Rn: isa.R1, Rm: isa.R2}, 30},
		{isa.Inst{Op: isa.OpLSL, Rd: isa.R0, Rn: isa.R1, Rm: isa.R2}, 80},
		{isa.Inst{Op: isa.OpLSR, Rd: isa.R0, Rn: isa.R1, Rm: isa.R2}, 1},
		{isa.Inst{Op: isa.OpADD, Rd: isa.R0, Rn: isa.R1, HasImm: true, Imm: 90}, 100},
		{isa.Inst{Op: isa.OpMOV, Rd: isa.R0, HasImm: true, Imm: 42}, 42},
		{isa.Inst{Op: isa.OpMVN, Rd: isa.R0, Rn: isa.R1}, ^uint32(10)},
		{isa.Inst{Op: isa.OpSDIV, Rd: isa.R0, Rn: isa.R1, Rm: isa.R2}, 3},
		{isa.Inst{Op: isa.OpUDIV, Rd: isa.R0, Rn: isa.R1, Rm: isa.R2}, 3},
	}
	for _, c := range cases {
		exec(t, s, c.in)
		if s.Regs[0] != c.want {
			t.Errorf("%v: r0 = %d, want %d", c.in, s.Regs[0], c.want)
		}
	}
}

func TestDivByZero(t *testing.T) {
	s := NewState()
	s.Regs[1] = 7
	exec(t, s, isa.Inst{Op: isa.OpSDIV, Rd: isa.R0, Rn: isa.R1, Rm: isa.R2}) // r2 = 0
	if s.Regs[0] != 0 {
		t.Errorf("sdiv by zero = %d", s.Regs[0])
	}
}

func TestMemorySemantics(t *testing.T) {
	s := NewState()
	s.Regs[1] = 0x100
	s.Regs[2] = 0xDEADBEEF
	exec(t, s, isa.Inst{Op: isa.OpSTR, Rn: isa.R1, Rm: isa.R2, HasImm: true, Imm: 8, Rd: isa.NoReg})
	exec(t, s, isa.Inst{Op: isa.OpLDR, Rd: isa.R3, Rn: isa.R1, HasImm: true, Imm: 8, Rm: isa.NoReg})
	if s.Regs[3] != 0xDEADBEEF {
		t.Errorf("load after store = %#x", s.Regs[3])
	}
	exec(t, s, isa.Inst{Op: isa.OpLDRB, Rd: isa.R4, Rn: isa.R1, HasImm: true, Imm: 8, Rm: isa.NoReg})
	if s.Regs[4] != 0xEF {
		t.Errorf("ldrb = %#x", s.Regs[4])
	}
	exec(t, s, isa.Inst{Op: isa.OpLDRH, Rd: isa.R5, Rn: isa.R1, HasImm: true, Imm: 8, Rm: isa.NoReg})
	if s.Regs[5] != 0xBEEF {
		t.Errorf("ldrh = %#x", s.Regs[5])
	}
	// Partial stores.
	exec(t, s, isa.Inst{Op: isa.OpSTRB, Rn: isa.R1, Rm: isa.R6, HasImm: true, Imm: 8, Rd: isa.NoReg}) // r6 = 0
	exec(t, s, isa.Inst{Op: isa.OpLDR, Rd: isa.R7, Rn: isa.R1, HasImm: true, Imm: 8, Rm: isa.NoReg})
	if s.Regs[7] != 0xDEADBE00 {
		t.Errorf("after strb: %#x", s.Regs[7])
	}
}

func TestMemBiasSeparatesRegions(t *testing.T) {
	s := NewState()
	s.Regs[1] = 0x40
	s.Regs[2] = 111
	s.Regs[3] = 222
	st := isa.Inst{Op: isa.OpSTR, Rn: isa.R1, Rm: isa.R2, HasImm: true, Imm: 0, Rd: isa.NoReg}
	if err := Exec(s, &st, 0); err != nil {
		t.Fatal(err)
	}
	st2 := isa.Inst{Op: isa.OpSTR, Rn: isa.R1, Rm: isa.R3, HasImm: true, Imm: 0, Rd: isa.NoReg}
	if err := Exec(s, &st2, 1<<20); err != nil {
		t.Fatal(err)
	}
	ld := isa.Inst{Op: isa.OpLDR, Rd: isa.R4, Rn: isa.R1, HasImm: true, Imm: 0, Rm: isa.NoReg}
	if err := Exec(s, &ld, 0); err != nil {
		t.Fatal(err)
	}
	if s.Regs[4] != 111 {
		t.Errorf("region 0 value clobbered: %d", s.Regs[4])
	}
}

func TestPredication(t *testing.T) {
	s := NewState()
	s.Regs[1] = 5
	exec(t, s, isa.Inst{Op: isa.OpCMP, Rn: isa.R1, HasImm: true, Imm: 5, Rd: isa.NoReg})
	exec(t, s, isa.Inst{Op: isa.OpMOV, Cond: isa.CondEQ, Rd: isa.R2, HasImm: true, Imm: 7})
	if s.Regs[2] != 7 {
		t.Error("EQ predicate should have fired")
	}
	exec(t, s, isa.Inst{Op: isa.OpMOV, Cond: isa.CondNE, Rd: isa.R3, HasImm: true, Imm: 9})
	if s.Regs[3] != 0 {
		t.Error("NE predicate should have been squashed")
	}
	exec(t, s, isa.Inst{Op: isa.OpCMP, Rn: isa.R1, HasImm: true, Imm: 9, Rd: isa.NoReg})
	exec(t, s, isa.Inst{Op: isa.OpMOV, Cond: isa.CondLT, Rd: isa.R4, HasImm: true, Imm: 3})
	if s.Regs[4] != 3 {
		t.Error("LT predicate should have fired (5 < 9)")
	}
}

func TestUndefinedFlagsSquashPredicates(t *testing.T) {
	s := NewState()
	exec(t, s, isa.Inst{Op: isa.OpMOV, Cond: isa.CondEQ, Rd: isa.R1, HasImm: true, Imm: 1})
	if s.Regs[1] != 0 {
		t.Error("predicate fired with undefined flags")
	}
}

func TestStateEqualAndDiff(t *testing.T) {
	a := RandomState(1)
	b := a.Clone()
	if !a.Equal(b) || a.Diff(b) != "" {
		t.Fatal("clone not equal")
	}
	b.Regs[3]++
	if a.Equal(b) || a.Diff(b) == "" {
		t.Fatal("difference not detected")
	}
}

func TestRandomStateDeterministic(t *testing.T) {
	if !RandomState(7).Equal(RandomState(7)) {
		t.Error("RandomState not deterministic")
	}
	if RandomState(7).Equal(RandomState(8)) {
		t.Error("different seeds equal")
	}
}

// equivalentBlocks builds a block and a legally reordered version.
func TestBlockEquivalenceDetectsReorderBug(t *testing.T) {
	orig := &prog.Block{End: prog.EndFallthrough, Next: 0, Instrs: []prog.Instr{
		{Inst: isa.Inst{Op: isa.OpMOV, Rd: isa.R0, HasImm: true, Imm: 5}},
		{Inst: isa.Inst{Op: isa.OpADD, Rd: isa.R1, Rn: isa.R0, HasImm: true, Imm: 2}},
	}}
	// Legal-looking but wrong swap (violates RAW).
	bad := &prog.Block{End: prog.EndFallthrough, Next: 0, Instrs: []prog.Instr{
		orig.Instrs[1], orig.Instrs[0],
	}}
	init := RandomState(3)
	if err := CheckBlockEquivalence(init, orig, orig); err != nil {
		t.Fatalf("identical blocks reported different: %v", err)
	}
	if err := CheckBlockEquivalence(init, orig, bad); err == nil {
		t.Fatal("RAW-violating reorder not detected")
	}
}

func TestCDPAndModeSwitchIgnored(t *testing.T) {
	plain := &prog.Block{End: prog.EndFallthrough, Next: 0, Instrs: []prog.Instr{
		{Inst: isa.Inst{Op: isa.OpMOV, Rd: isa.R0, HasImm: true, Imm: 9}},
	}}
	decorated := &prog.Block{End: prog.EndFallthrough, Next: 0, Instrs: []prog.Instr{
		{Inst: isa.Inst{Op: isa.OpB, Rd: isa.NoReg, Rn: isa.NoReg, Rm: isa.NoReg}, ModeSwitch: true},
		{Inst: isa.Inst{Op: isa.OpCDP, Rd: isa.NoReg, Rn: isa.NoReg, Rm: isa.NoReg}, Thumb: true, CDPCount: 1},
		{Inst: isa.Inst{Op: isa.OpMOV, Rd: isa.R0, HasImm: true, Imm: 9}, Thumb: true},
	}}
	if err := CheckBlockEquivalence(RandomState(4), plain, decorated); err != nil {
		t.Fatalf("encoding artifacts changed semantics: %v", err)
	}
}

// The headline verification: the CritIC pass (hoist + convert) preserves the
// semantics of every block of every transformed mobile app.
func TestCritICPassPreservesSemantics(t *testing.T) {
	for _, name := range []string{"acrobat", "maps", "music"} {
		a, _ := workload.FindApp(name)
		p := workload.Generate(a.Params)
		ws := trace.Collect(p, a.Params.Seed, trace.SamplePlan{Samples: 4, Length: 10_000, Gap: 3000, Warmup: 5000})
		prof := core.BuildProfile(p, ws, core.DefaultConfig())
		for _, opt := range []compiler.Options{
			{MaxLen: 5, Switch: compiler.SwitchCDP},
			{MaxLen: 5, Switch: compiler.SwitchBranch},
			{MaxLen: 5, HoistOnly: true},
		} {
			q, _, err := compiler.ApplyCritIC(p, prof, opt)
			if err != nil {
				t.Fatal(err)
			}
			if err := VerifyProgramEquivalence(p, q, 3); err != nil {
				t.Errorf("%s (opt %+v): %v", name, opt, err)
			}
		}
	}
}

// The opportunistic passes do not reorder, but expansion and CDP insertion
// must also leave semantics intact.
func TestOpportunisticPassesPreserveSemantics(t *testing.T) {
	a, _ := workload.FindApp("email")
	p := workload.Generate(a.Params)
	opp, _, err := compiler.ApplyOPP16(p, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyProgramEquivalence(p, opp, 2); err != nil {
		t.Errorf("OPP16: %v", err)
	}
	cmp, _, err := compiler.ApplyCompress(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyProgramEquivalence(p, cmp, 2); err != nil {
		t.Errorf("Compress: %v", err)
	}
}
