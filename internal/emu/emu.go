// Package emu is a value-level architectural emulator for the ISA: it
// executes instructions over concrete register values, condition flags and a
// sparse memory. Its purpose in this repository is verification — it is the
// semantic oracle that proves the compiler passes preserve program meaning:
//
//   - block equivalence: executing a basic block's original instruction
//     sequence and its transformed sequence (hoisted/Thumb-converted, with
//     CDP and mode-switch markers skipped) from the same initial state must
//     produce the same final registers, flags and memory;
//   - encoding equivalence: an instruction and its decode(encode(·)) image
//     must execute identically.
//
// The timing simulator (internal/cpu) deliberately does not track values;
// this package closes that gap for correctness arguments, mirroring how the
// paper's compiler pass is "functionality preserving" by construction.
package emu

import (
	"fmt"

	"critics/internal/isa"
	"critics/internal/prog"
)

// State is one machine state: 16 registers, NZCV-style flags (we model the
// comparison result abstractly as a signed value), and sparse word memory.
type State struct {
	Regs [16]uint32
	// CmpVal is the last comparison result (lhs - rhs as signed), from
	// which predicates derive; Valid says whether flags are defined.
	CmpVal   int64
	CmpValid bool
	Mem      map[uint32]uint32
}

// NewState returns a zeroed state with an empty memory.
func NewState() *State {
	return &State{Mem: make(map[uint32]uint32)}
}

// Clone deep-copies the state.
func (s *State) Clone() *State {
	c := *s
	c.Mem = make(map[uint32]uint32, len(s.Mem))
	for k, v := range s.Mem {
		c.Mem[k] = v
	}
	return &c
}

// Equal reports deep equality of two states. Memory cells holding zero are
// treated as absent.
func (s *State) Equal(o *State) bool {
	if s.Regs != o.Regs {
		return false
	}
	if s.CmpValid != o.CmpValid || (s.CmpValid && s.CmpVal != o.CmpVal) {
		return false
	}
	for k, v := range s.Mem {
		if v != 0 && o.Mem[k] != v {
			return false
		}
	}
	for k, v := range o.Mem {
		if v != 0 && s.Mem[k] != v {
			return false
		}
	}
	return true
}

// Diff returns a human-readable first difference, or "".
func (s *State) Diff(o *State) string {
	for r := 0; r < 16; r++ {
		if s.Regs[r] != o.Regs[r] {
			return fmt.Sprintf("r%d: %#x vs %#x", r, s.Regs[r], o.Regs[r])
		}
	}
	if s.CmpValid != o.CmpValid || (s.CmpValid && s.CmpVal != o.CmpVal) {
		return fmt.Sprintf("flags: (%v,%d) vs (%v,%d)", s.CmpValid, s.CmpVal, o.CmpValid, o.CmpVal)
	}
	for k, v := range s.Mem {
		if o.Mem[k] != v && v != 0 {
			return fmt.Sprintf("mem[%#x]: %#x vs %#x", k, v, o.Mem[k])
		}
	}
	for k, v := range o.Mem {
		if s.Mem[k] != v && v != 0 {
			return fmt.Sprintf("mem[%#x]: %#x vs %#x", k, s.Mem[k], v)
		}
	}
	return ""
}

// predTrue evaluates a condition against the flags. Undefined flags make
// every predicate false (conservative; generators always emit a CMP before
// predicated code in the same block when it matters).
func (s *State) predTrue(c isa.Cond) bool {
	if c == isa.CondAL {
		return true
	}
	if !s.CmpValid {
		return false
	}
	v := s.CmpVal
	switch c {
	case isa.CondEQ:
		return v == 0
	case isa.CondNE:
		return v != 0
	case isa.CondGE:
		return v >= 0
	case isa.CondLT:
		return v < 0
	case isa.CondGT:
		return v > 0
	case isa.CondLE:
		return v <= 0
	case isa.CondCS:
		return uint64(v) >= 0 // carry-set approximation on the abstract flags
	case isa.CondCC:
		return uint64(v) < 0
	default:
		return false
	}
}

func (s *State) reg(r isa.Reg) uint32 {
	if r == isa.NoReg || r >= 16 {
		return 0
	}
	return s.Regs[r]
}

func (s *State) setReg(r isa.Reg, v uint32) {
	if r == isa.NoReg || r >= 16 {
		return
	}
	s.Regs[r] = v
}

// operand2 resolves the second operand (immediate or Rm).
func operand2(s *State, in *isa.Inst) uint32 {
	if in.HasImm {
		return uint32(in.Imm)
	}
	return s.reg(in.Rm)
}

// memAddr computes the effective address of a memory instruction. memBias
// disambiguates data regions: the static IR guarantees different regions
// never alias (prog.ReorderLegal relies on it), so the emulator maps each
// region into its own address window.
func memAddr(s *State, in *isa.Inst, memBias uint32) uint32 {
	addr := s.reg(in.Rn) + memBias
	if in.HasImm {
		addr += uint32(in.Imm)
	}
	return addr &^ 3 // word-aligned memory model
}

// Exec executes one instruction (no control flow: branches, calls and
// returns are no-ops at this level — block equivalence checking only needs
// dataflow semantics). memBias is the data-region address offset for memory
// operations (0 for plain isa-level execution). Returns an error for
// unknown opcodes.
func Exec(s *State, in *isa.Inst, memBias uint32) error {
	if in.ReadsCC() && !s.predTrue(in.Cond) {
		return nil // predicated out
	}
	switch in.Op {
	case isa.OpNOP, isa.OpCDP, isa.OpSVC:
		// No architectural effect at this level.
	case isa.OpB, isa.OpBL, isa.OpBX:
		// Control flow handled by the trace/CFG layer.
	case isa.OpADD:
		s.setReg(in.Rd, s.reg(in.Rn)+operand2(s, in))
	case isa.OpSUB:
		s.setReg(in.Rd, s.reg(in.Rn)-operand2(s, in))
	case isa.OpRSB:
		s.setReg(in.Rd, operand2(s, in)-s.reg(in.Rn))
	case isa.OpAND:
		s.setReg(in.Rd, s.reg(in.Rn)&operand2(s, in))
	case isa.OpORR:
		s.setReg(in.Rd, s.reg(in.Rn)|operand2(s, in))
	case isa.OpEOR:
		s.setReg(in.Rd, s.reg(in.Rn)^operand2(s, in))
	case isa.OpBIC:
		s.setReg(in.Rd, s.reg(in.Rn)&^operand2(s, in))
	case isa.OpMOV:
		if in.HasImm {
			s.setReg(in.Rd, uint32(in.Imm))
		} else {
			s.setReg(in.Rd, s.reg(in.Rn))
		}
	case isa.OpMVN:
		if in.HasImm {
			s.setReg(in.Rd, ^uint32(in.Imm))
		} else {
			s.setReg(in.Rd, ^s.reg(in.Rn))
		}
	case isa.OpCMP:
		s.CmpVal = int64(int32(s.reg(in.Rn))) - int64(int32(operand2(s, in)))
		s.CmpValid = true
	case isa.OpTST:
		s.CmpVal = int64(s.reg(in.Rn) & operand2(s, in))
		s.CmpValid = true
	case isa.OpLSL:
		s.setReg(in.Rd, s.reg(in.Rn)<<(operand2(s, in)&31))
	case isa.OpLSR:
		s.setReg(in.Rd, s.reg(in.Rn)>>(operand2(s, in)&31))
	case isa.OpASR:
		s.setReg(in.Rd, uint32(int32(s.reg(in.Rn))>>(operand2(s, in)&31)))
	case isa.OpROR:
		n := operand2(s, in) & 31
		v := s.reg(in.Rn)
		s.setReg(in.Rd, v>>n|v<<(32-n))
	case isa.OpMUL:
		s.setReg(in.Rd, s.reg(in.Rn)*operand2(s, in))
	case isa.OpMLA:
		s.setReg(in.Rd, s.reg(in.Rd)+s.reg(in.Rn)*s.reg(in.Rm))
	case isa.OpSDIV:
		d := int32(operand2(s, in))
		if d == 0 {
			s.setReg(in.Rd, 0)
		} else {
			s.setReg(in.Rd, uint32(int32(s.reg(in.Rn))/d))
		}
	case isa.OpUDIV:
		d := operand2(s, in)
		if d == 0 {
			s.setReg(in.Rd, 0)
		} else {
			s.setReg(in.Rd, s.reg(in.Rn)/d)
		}
	case isa.OpLDR, isa.OpVLDR:
		s.setReg(in.Rd, s.Mem[memAddr(s, in, memBias)])
	case isa.OpLDRB:
		s.setReg(in.Rd, s.Mem[memAddr(s, in, memBias)]&0xFF)
	case isa.OpLDRH:
		s.setReg(in.Rd, s.Mem[memAddr(s, in, memBias)]&0xFFFF)
	case isa.OpSTR, isa.OpVSTR:
		s.Mem[memAddr(s, in, memBias)] = s.reg(in.Rm)
	case isa.OpSTRB:
		a := memAddr(s, in, memBias)
		s.Mem[a] = (s.Mem[a] &^ 0xFF) | (s.reg(in.Rm) & 0xFF)
	case isa.OpSTRH:
		a := memAddr(s, in, memBias)
		s.Mem[a] = (s.Mem[a] &^ 0xFFFF) | (s.reg(in.Rm) & 0xFFFF)
	case isa.OpVADD:
		s.setReg(in.Rd, s.reg(in.Rn)+operand2(s, in)) // integer-interpreted FP model
	case isa.OpVSUB:
		s.setReg(in.Rd, s.reg(in.Rn)-operand2(s, in))
	case isa.OpVMUL:
		s.setReg(in.Rd, s.reg(in.Rn)*operand2(s, in))
	case isa.OpVDIV:
		d := operand2(s, in)
		if d == 0 {
			s.setReg(in.Rd, 0)
		} else {
			s.setReg(in.Rd, s.reg(in.Rn)/d)
		}
	case isa.OpVMLA:
		s.setReg(in.Rd, s.reg(in.Rd)+s.reg(in.Rn)*s.reg(in.Rm))
	default:
		return fmt.Errorf("emu: unknown opcode %v", in.Op)
	}
	return nil
}

// ExecBlock executes a block's instruction sequence over s. CDP commands and
// Approach-1 mode-switch branches are encoding artifacts with no dataflow
// semantics and are skipped; real control-flow terminators are likewise
// no-ops here (the block's dataflow is what equivalence checking compares).
func ExecBlock(s *State, b *prog.Block) error {
	for i := range b.Instrs {
		in := &b.Instrs[i]
		if in.Op == isa.OpCDP || in.ModeSwitch {
			continue
		}
		if err := Exec(s, &in.Inst, uint32(in.MemRegion)<<20); err != nil {
			return fmt.Errorf("%s at index %d: %w", in.Inst, i, err)
		}
	}
	return nil
}

// CheckBlockEquivalence executes orig and xform from the same initial state
// and returns an error describing the first state difference, or nil when
// the blocks are semantically equivalent. The initial state should have
// representative register values (use RandomState).
func CheckBlockEquivalence(init *State, orig, xform *prog.Block) error {
	a, b := init.Clone(), init.Clone()
	if err := ExecBlock(a, orig); err != nil {
		return fmt.Errorf("emu: original block: %w", err)
	}
	if err := ExecBlock(b, xform); err != nil {
		return fmt.Errorf("emu: transformed block: %w", err)
	}
	if !a.Equal(b) {
		return fmt.Errorf("emu: state diverges: %s", a.Diff(b))
	}
	return nil
}

// RandomState builds a state with pseudo-random register values and memory
// pre-seeded so loads return non-trivial data. Deterministic in seed.
func RandomState(seed uint64) *State {
	s := NewState()
	x := seed*0x9E3779B97F4A7C15 + 1
	next := func() uint32 {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		return uint32(x)
	}
	for r := 0; r < 13; r++ {
		// Small-ish values keep load addresses within a compact sparse
		// region so original and transformed runs touch the same cells.
		s.Regs[r] = next() % 4096
	}
	for a := uint32(0); a < 16384; a += 4 {
		if v := next(); v%3 == 0 {
			s.Mem[a] = v
		}
	}
	return s
}

// VerifyProgramEquivalence checks every block of a transformed program
// against its original counterpart under trials random initial states.
// Blocks are matched positionally (compiler passes never add or remove
// blocks). Returns the first violation found.
func VerifyProgramEquivalence(orig, xform *prog.Program, trials int) error {
	if len(orig.Funcs) != len(xform.Funcs) {
		return fmt.Errorf("emu: function count changed: %d vs %d", len(orig.Funcs), len(xform.Funcs))
	}
	for fi := range orig.Funcs {
		if len(orig.Funcs[fi].Blocks) != len(xform.Funcs[fi].Blocks) {
			return fmt.Errorf("emu: %s: block count changed", orig.Funcs[fi].Name)
		}
		for bi := range orig.Funcs[fi].Blocks {
			ob := orig.Funcs[fi].Blocks[bi]
			xb := xform.Funcs[fi].Blocks[bi]
			for tr := 0; tr < trials; tr++ {
				init := RandomState(uint64(fi)<<32 | uint64(bi)<<8 | uint64(tr))
				if err := CheckBlockEquivalence(init, ob, xb); err != nil {
					return fmt.Errorf("f%d.b%d trial %d: %w", fi, bi, tr, err)
				}
			}
		}
	}
	return nil
}
