package trace

import (
	"bytes"
	"testing"
)

// FuzzReadTrace runs the trace-file reader over arbitrary bytes: hostile
// headers (huge declared counts, bad magic/version) and truncated or
// corrupted records must produce errors, never panics or giant allocations.
func FuzzReadTrace(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("CRTC"))
	// A valid two-record file as the structured seed.
	seed := []Dyn{
		{Seq: 1, Addr: 0x100, NProd: 1, Prod: [4]int64{0}},
		{Seq: 2, Addr: 0x104, NProd: 2, Prod: [4]int64{0, 1}, IsLoad: true, Size: 4},
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, seed); err == nil {
		f.Add(buf.Bytes())
	}
	// A hostile header declaring the maximum plausible record count with no
	// payload (the case that used to drive a ~48 GiB preallocation).
	hostile := append([]byte("CRTC"), 1, 0 /* version */, 0, 0, 0, 64, 0, 0, 0, 0 /* count = 1<<30 */)
	f.Add(hostile)
	f.Fuzz(func(t *testing.T, data []byte) {
		dyns, err := ReadTrace(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A successful parse implies the input actually carried the records.
		if want := 14 + 48*len(dyns); len(data) < want {
			t.Fatalf("parsed %d records from %d bytes (need >= %d)", len(dyns), len(data), want)
		}
		// What we read must write back out and read again identically after
		// one normalization pass (the delta encoding drops unencodable
		// producers on write, so compare the second and third generations).
		var out bytes.Buffer
		if err := WriteTrace(&out, dyns); err != nil {
			t.Fatalf("re-writing parsed trace: %v", err)
		}
		dyns2, err := ReadTrace(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-reading written trace: %v", err)
		}
		if len(dyns2) != len(dyns) {
			t.Fatalf("record count changed on round trip: %d -> %d", len(dyns), len(dyns2))
		}
	})
}
