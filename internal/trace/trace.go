// Package trace turns a static program into a dynamic instruction stream:
// the functional half of trace-driven simulation. It resolves control flow
// (branch biases, calls/returns), generates data addresses from each memory
// instruction's region/stride model, and annotates every dynamic instruction
// with the sequence numbers of its producers — which is all the timing
// simulator (internal/cpu) and the profiler (internal/dfg, internal/core)
// need.
//
// This substitutes for the paper's QEMU/AOSP instrumented-disassembler trace
// collection (§III-C): the downstream consumers see a stream with the same
// information content (PC, encoding size/mode, dependences, memory
// addresses, branch outcomes).
package trace

import (
	"math/rand"

	"critics/internal/isa"
	"critics/internal/prog"
)

// mix64 is a splitmix64-style hash used for per-instruction randomness.
// Every random draw in the generator is keyed by (seed, static instruction,
// execution count) rather than pulled from a shared stream, so compiler
// reorderings never perturb unrelated draws — A/B comparisons between a
// baseline and a transformed program see identical control flow and
// identical memory addresses for corresponding instructions.
func mix64(a, b uint64) uint64 {
	x := a ^ (b + 0x9E3779B97F4A7C15 + (a << 6) + (a >> 2))
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// mixFloat maps a hash to [0, 1).
func mixFloat(h uint64) float64 {
	return float64(h>>11) / float64(1<<53)
}

// DataBase is the base virtual address of the data regions; code starts at
// address 0 (see prog.Layout).
const DataBase uint32 = 0x4000_0000

// NoProd marks an absent producer.
const NoProd int64 = -1

// Dyn is one dynamic instruction instance.
type Dyn struct {
	Seq  int64
	ID   prog.InstID
	Addr uint32

	Op    isa.Op
	Class isa.Class

	// Prod holds the sequence numbers of the producing dynamic
	// instructions for each register (and CC) source; NProd entries are
	// valid. A producer may be arbitrarily far back in the stream.
	Prod  [4]int64
	NProd uint8

	Size     uint8 // encoded size in bytes (2 or 4)
	Thumb    bool
	Expanded bool // Thumb emission occupying two halfwords (2 decode slots)
	IsCDP    bool
	CDPCount uint8

	// Control flow.
	IsBranch bool // any control instruction (B/BL/BX)
	IsCond   bool
	Taken    bool
	Target   uint32 // address actually followed when Taken (or call/ret target)

	// Memory.
	MemAddr uint32
	IsLoad  bool
	IsStore bool

	Latency uint8 // base execute latency (memory time added by the simulator)

	// Overhead marks non-architectural instructions added by the compiler
	// passes (CDP mode switches, Approach-1 switch branches). Fair A/B
	// comparisons size windows by architectural count (GenerateArch).
	Overhead bool

	ChainID int // CritIC chain tag propagated from the static instruction
}

// Generator produces the dynamic stream for one program with a fixed seed.
// It is stateful: successive Generate calls continue the execution.
type Generator struct {
	p   *prog.Program
	rng *rand.Rand

	curFunc  int
	curBlock int
	curIdx   int

	callStack []retSite

	// regProd[r] is the Seq of the last writer of register r; index 16 is
	// the condition flags.
	regProd [17]int64

	// memCursor is the per-static-instruction address stream state,
	// indexed by instruction UID.
	memCursor []uint32
	// execCount is the per-static-instruction execution counter (by UID),
	// the key for order-independent random draws.
	execCount []uint64

	regionBase []uint32

	seedHash uint64

	seq int64

	// expandedHelper tracks whether the helper half of an Expanded
	// instruction has been emitted (see step).
	expandedHelper bool

	// Iterations counts completions of the entry function (event-loop
	// iterations for app workloads).
	Iterations int64
}

type retSite struct {
	fn    int
	block int
	idx   int
}

// NewGenerator creates a generator at the entry of p. The program must be
// laid out and valid.
func NewGenerator(p *prog.Program, seed int64) *Generator {
	if !p.LaidOut() {
		p.Layout()
	}
	g := &Generator{
		p:   p,
		rng: rand.New(rand.NewSource(seed)),
	}
	for i := range g.regProd {
		g.regProd[i] = NoProd
	}
	nUID := int(p.MaxUID()) + 1
	g.memCursor = make([]uint32, nUID)
	g.execCount = make([]uint64, nUID)
	g.seedHash = mix64(uint64(seed), 0x5bd1e995)
	// Spread initial cursors across the FULL 32-bit space (reduced mod the
	// region size at use) so different static instructions stream through
	// disjoint parts of their regions; keyed per instruction, not
	// streamed, so the spread survives compiler reordering.
	for i := range g.memCursor {
		g.memCursor[i] = uint32(mix64(g.seedHash, uint64(i))) &^ 3
	}
	g.regionBase = make([]uint32, p.NumMemRegions)
	base := DataBase
	for i, sz := range p.RegionBytes {
		g.regionBase[i] = base
		base += (sz + 63) &^ 63
	}
	g.curFunc = p.Entry
	return g
}

// Generate appends the next n dynamic instructions to dst and returns it.
func (g *Generator) Generate(dst []Dyn, n int) []Dyn {
	for i := 0; i < n; i++ {
		dst = append(dst, g.step())
	}
	return dst
}

// GenerateArch appends dynamic instructions to dst until n architectural
// (non-overhead) instructions have been emitted, and returns dst. Compiler
// passes insert CDPs and switch branches into the stream; comparing
// configurations over equal *architectural* work requires this sizing.
func (g *Generator) GenerateArch(dst []Dyn, n int) []Dyn {
	arch := 0
	for arch < n {
		d := g.step()
		if !d.Overhead {
			arch++
		}
		dst = append(dst, d)
	}
	return dst
}

// SkipArch advances execution by n architectural instructions.
func (g *Generator) SkipArch(n int) {
	arch := 0
	for arch < n {
		if !g.step().Overhead {
			arch++
		}
	}
}

// Skip advances execution by n dynamic instructions without recording them.
// Producer bookkeeping still runs so later dependences stay correct.
func (g *Generator) Skip(n int) {
	for i := 0; i < n; i++ {
		g.step()
	}
}

// step executes one dynamic instruction and advances control flow.
func (g *Generator) step() Dyn {
	f := g.p.Funcs[g.curFunc]
	b := f.Blocks[g.curBlock]
	// Advance over empty blocks (with a safety bound against degenerate
	// CFG cycles of empty blocks).
	for guard := 0; g.curIdx >= len(b.Instrs); guard++ {
		if guard > 1024 {
			panic("trace: CFG cycle of empty blocks")
		}
		g.leaveBlock(b, false)
		f = g.p.Funcs[g.curFunc]
		b = f.Blocks[g.curBlock]
	}
	in := &b.Instrs[g.curIdx]
	// Expanded Thumb emissions (Compress, §V) execute as TWO dynamic
	// instructions: a register-shuffle/constant-build helper halfword
	// followed by the operation itself — the ~1.6x expansion cost of
	// converting high-register or wide-immediate code to the 16-bit
	// format. The helper is overhead: it occupies fetch, decode and
	// execute resources but performs no architectural work of its own.
	if in.Expanded && !g.expandedHelper {
		g.expandedHelper = true
		h := Dyn{
			Seq:      g.seq,
			ID:       prog.InstID{Func: g.curFunc, Block: g.curBlock, Index: g.curIdx},
			Addr:     in.Addr,
			Op:       isa.OpMOV,
			Class:    isa.ClassALU,
			Size:     2,
			Thumb:    true,
			Overhead: true,
			Latency:  1,
		}
		g.seq++
		return h
	}
	g.expandedHelper = false
	d := Dyn{
		Seq:      g.seq,
		ID:       prog.InstID{Func: g.curFunc, Block: g.curBlock, Index: g.curIdx},
		Addr:     in.Addr,
		Op:       in.Op,
		Class:    in.Op.ClassOf(),
		Size:     uint8(in.Size()),
		Thumb:    in.Thumb,
		Expanded: in.Expanded,
		Latency:  uint8(in.Op.BaseLatency()),
		ChainID:  in.ChainID,
	}
	if in.Expanded {
		// The helper occupied the first halfword.
		d.Addr = in.Addr + 2
		d.Size = 2
	}
	if in.Op == isa.OpCDP {
		d.IsCDP = true
		d.CDPCount = uint8(in.CDPCount)
		d.Overhead = true
	}
	if in.ModeSwitch {
		d.Overhead = true
	}

	// Dependences.
	var srcs [4]isa.Reg
	for _, r := range in.Sources(srcs[:0]) {
		if r < isa.NumRegs {
			if p := g.regProd[r]; p != NoProd {
				d.Prod[d.NProd] = p
				d.NProd++
			}
		}
	}
	if in.ReadsCC() {
		if p := g.regProd[16]; p != NoProd {
			d.Prod[d.NProd] = p
			d.NProd++
		}
	}

	// Memory address.
	if in.Op.IsMem() {
		uid := in.UID
		g.execCount[uid]++
		region := in.MemRegion
		size := g.p.RegionBytes[region]
		var off uint32
		if in.MemStride == 0 {
			h := mix64(g.seedHash^uint64(uid)<<20, g.execCount[uid])
			off = uint32(h%uint64(size/4)) * 4
		} else {
			off = g.memCursor[uid] % size
			g.memCursor[uid] = (g.memCursor[uid] + uint32(in.MemStride)) % size
		}
		d.MemAddr = g.regionBase[region] + off
		d.IsLoad = in.Op.HasDst()
		d.IsStore = !d.IsLoad
	}

	// Writes.
	if dst := in.Dest(); dst != isa.NoReg && dst < isa.NumRegs {
		g.regProd[dst] = g.seq
	}
	if in.WritesCC() {
		g.regProd[16] = g.seq
	}

	// Control flow.
	if in.ModeSwitch {
		// Format-switch branch (Approach 1): its target is the literal
		// next instruction, so BTB-directed fetch continues in line —
		// no redirect (Taken stays false); the cost is the fetch bytes,
		// the pipeline slots and the branch-unit occupancy.
		d.IsBranch = true
	}
	last := g.curIdx == len(b.Instrs)-1
	if !last {
		g.curIdx++
	} else {
		switch in.Op {
		case isa.OpB:
			d.IsBranch = true
			d.IsCond = b.End == prog.EndCondBranch
			taken := true
			if d.IsCond {
				uid := in.UID
				g.execCount[uid]++
				h := mix64(g.seedHash^uint64(uid)<<20, g.execCount[uid])
				taken = mixFloat(h) < b.TakenProb
			}
			d.Taken = taken
			if taken {
				d.Target = blockAddr(f, b.Taken)
			}
			g.leaveBlock(b, taken)
		case isa.OpBL:
			d.IsBranch = true
			d.Taken = true
			d.Target = funcAddr(g.p, b.Callee)
			g.regProd[int(isa.LR)] = g.seq // BL writes the link register
			g.leaveBlock(b, false)
		case isa.OpBX:
			d.IsBranch = true
			d.Taken = true
			// Return target is wherever the call stack says; filled by
			// leaveBlock via the stack.
			g.leaveBlock(b, false)
			d.Target = g.currentAddr()
		default:
			g.leaveBlock(b, false)
		}
	}
	g.seq++
	return d
}

// leaveBlock moves control to the successor of b. For conditional ends,
// taken selects the edge.
func (g *Generator) leaveBlock(b *prog.Block, taken bool) {
	switch b.End {
	case prog.EndFallthrough:
		g.curBlock = b.Next
	case prog.EndJump:
		g.curBlock = b.Taken
	case prog.EndCondBranch:
		if taken {
			g.curBlock = b.Taken
		} else {
			g.curBlock = b.Next
		}
	case prog.EndCall:
		g.callStack = append(g.callStack, retSite{fn: g.curFunc, block: b.Next, idx: 0})
		g.curFunc = b.Callee
		g.curBlock = 0
	case prog.EndReturn:
		if len(g.callStack) == 0 {
			// The entry function returned: model the app's event loop
			// by restarting at the entry.
			g.Iterations++
			g.curFunc = g.p.Entry
			g.curBlock = 0
		} else {
			top := g.callStack[len(g.callStack)-1]
			g.callStack = g.callStack[:len(g.callStack)-1]
			g.curFunc = top.fn
			g.curBlock = top.block
		}
	}
	g.curIdx = 0
}

// currentAddr returns the address of the next instruction to execute
// (skipping empty blocks without committing the walk).
func (g *Generator) currentAddr() uint32 {
	f := g.p.Funcs[g.curFunc]
	b := f.Blocks[g.curBlock]
	// Walk fallthrough edges of empty blocks non-destructively.
	fn, bi := g.curFunc, g.curBlock
	for guard := 0; len(b.Instrs) == 0; guard++ {
		if guard > 1024 {
			panic("trace: CFG cycle of empty blocks")
		}
		switch b.End {
		case prog.EndFallthrough:
			bi = b.Next
		case prog.EndJump:
			bi = b.Taken
		default:
			// Empty block with complex end: address of the block
			// itself is unknowable without executing; give up and
			// report function start (diagnostic only).
			return funcAddr(g.p, fn)
		}
		b = f.Blocks[bi]
	}
	return b.Instrs[g.curIdx].Addr
}

// blockAddr returns the address of the first instruction of block bi in f
// (following empty fallthrough blocks).
func blockAddr(f *prog.Func, bi int) uint32 {
	b := f.Blocks[bi]
	for guard := 0; len(b.Instrs) == 0; guard++ {
		if guard > 1024 {
			panic("trace: empty block chain too long")
		}
		switch b.End {
		case prog.EndFallthrough:
			b = f.Blocks[b.Next]
		case prog.EndJump:
			b = f.Blocks[b.Taken]
		default:
			return 0
		}
	}
	return b.Instrs[0].Addr
}

// funcAddr returns the entry address of function fi.
func funcAddr(p *prog.Program, fi int) uint32 {
	f := p.Funcs[fi]
	return blockAddr(f, 0)
}

// Window is one sampled window of the dynamic stream.
type Window struct {
	Dyns []Dyn
}

// SamplePlan describes how app execution is sampled, mirroring the paper's
// methodology (§IV-C): "100 samples at random, each containing ~500k
// contiguous instructions". Scaled-down plans are used in tests/benches.
type SamplePlan struct {
	Samples int // number of windows
	Length  int // dynamic instructions per window
	Gap     int // instructions skipped between windows (pseudo-random spacing uses Gap as mean)
	Warmup  int // instructions skipped before the first window
}

// DefaultSamplePlan mirrors the paper at reduced scale: the shapes stabilize
// well below 500k-instruction windows for synthetic workloads.
func DefaultSamplePlan() SamplePlan {
	return SamplePlan{Samples: 10, Length: 20_000, Gap: 10_000, Warmup: 5_000}
}

// Collect runs the plan against a fresh generator and returns the sampled
// windows, fully materialized.
//
// Materializing whole windows is O(plan.Samples * plan.Length) memory and is
// deprecated for non-test callers on the measurement hot path: profilers and
// analyses that can consume the stream incrementally should pull chunks
// through a Source (NewGenSource after Skip-ing to the window start) and run
// in O(chunk) memory instead. Collect remains the right tool for fixtures
// and for the profiler's random-access sample windows.
func Collect(p *prog.Program, seed int64, plan SamplePlan) []Window {
	g := NewGenerator(p, seed)
	g.Skip(plan.Warmup)
	ws := make([]Window, 0, plan.Samples)
	for s := 0; s < plan.Samples; s++ {
		dyns := g.Generate(make([]Dyn, 0, plan.Length), plan.Length)
		ws = append(ws, Window{Dyns: dyns})
		if plan.Gap > 0 {
			g.Skip(plan.Gap)
		}
	}
	return ws
}

// Flatten concatenates windows into one stream (used by consumers that do
// not care about window boundaries).
//
// Like Collect, Flatten materializes; it doubles the peak memory of the
// windows it joins. Deprecated for non-test callers: stream consumers should
// iterate the windows (or pull a Source) chunk by chunk instead of flattening
// — see the chunked Source API in source.go.
func Flatten(ws []Window) []Dyn {
	n := 0
	for _, w := range ws {
		n += len(w.Dyns)
	}
	out := make([]Dyn, 0, n)
	for _, w := range ws {
		out = append(out, w.Dyns...)
	}
	return out
}
