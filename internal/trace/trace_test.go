package trace

import (
	"testing"

	"critics/internal/isa"
	"critics/internal/prog"
)

// loopProgram builds: main calls helper, then loops a body block ~10 times,
// then returns (restarting the event loop).
func loopProgram() *prog.Program {
	ins := func(op isa.Op, rd, rn, rm isa.Reg) prog.Instr {
		return prog.Instr{Inst: isa.Inst{Op: op, Rd: rd, Rn: rn, Rm: rm}}
	}
	main := &prog.Func{ID: 0, Name: "main"}
	main.Blocks = []*prog.Block{
		{ID: 0, Instrs: []prog.Instr{
			ins(isa.OpMOV, isa.R0, isa.R1, isa.NoReg),
			{Inst: isa.Inst{Op: isa.OpBL, Rd: isa.NoReg, Rn: isa.NoReg, Rm: isa.NoReg}},
		}, End: prog.EndCall, Callee: 1, Next: 1},
		{ID: 1, Instrs: []prog.Instr{
			{Inst: isa.Inst{Op: isa.OpLDR, Rd: isa.R2, Rn: isa.R0, Rm: isa.NoReg, HasImm: true, Imm: 4}, MemRegion: 0, MemStride: 4},
			ins(isa.OpADD, isa.R3, isa.R2, isa.R0),
			{Inst: isa.Inst{Op: isa.OpCMP, Rd: isa.NoReg, Rn: isa.R3, Rm: isa.NoReg, HasImm: true, Imm: 10}},
			{Inst: isa.Inst{Op: isa.OpB, Cond: isa.CondNE, Rd: isa.NoReg, Rn: isa.NoReg, Rm: isa.NoReg}},
		}, End: prog.EndCondBranch, Taken: 1, Next: 2, TakenProb: 0.9},
		{ID: 2, Instrs: []prog.Instr{
			{Inst: isa.Inst{Op: isa.OpBX, Rd: isa.NoReg, Rn: isa.LR, Rm: isa.NoReg}},
		}, End: prog.EndReturn},
	}
	helper := &prog.Func{ID: 1, Name: "helper"}
	helper.Blocks = []*prog.Block{
		{ID: 0, Instrs: []prog.Instr{
			ins(isa.OpSUB, isa.R4, isa.R0, isa.R0),
			{Inst: isa.Inst{Op: isa.OpBX, Rd: isa.NoReg, Rn: isa.LR, Rm: isa.NoReg}},
		}, End: prog.EndReturn},
	}
	p := &prog.Program{
		Name:          "loop",
		Funcs:         []*prog.Func{main, helper},
		Entry:         0,
		NumMemRegions: 1,
		RegionBytes:   []uint32{4096},
	}
	p.Layout()
	if err := p.Validate(); err != nil {
		panic(err)
	}
	return p
}

func TestGenerateDeterministic(t *testing.T) {
	p := loopProgram()
	a := NewGenerator(p, 42).Generate(nil, 1000)
	b := NewGenerator(p, 42).Generate(nil, 1000)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("streams diverge at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	c := NewGenerator(p, 43).Generate(nil, 1000)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestSequenceNumbersAndProducers(t *testing.T) {
	p := loopProgram()
	dyns := NewGenerator(p, 1).Generate(nil, 5000)
	for i, d := range dyns {
		if d.Seq != int64(i) {
			t.Fatalf("Seq %d at index %d", d.Seq, i)
		}
		for k := uint8(0); k < d.NProd; k++ {
			if d.Prod[k] >= d.Seq {
				t.Fatalf("instr %d has producer %d >= itself", d.Seq, d.Prod[k])
			}
		}
	}
}

func TestProducerLinksMatchRegisters(t *testing.T) {
	p := loopProgram()
	dyns := NewGenerator(p, 1).Generate(nil, 200)
	// The ADD r3 = r2 + r0 in the loop body must name the immediately
	// preceding load (producer of r2) among its producers.
	for i := 1; i < len(dyns); i++ {
		d := dyns[i]
		if d.Op == isa.OpADD && d.ID.Block == 1 {
			prev := dyns[i-1]
			if prev.Op != isa.OpLDR {
				continue
			}
			found := false
			for k := uint8(0); k < d.NProd; k++ {
				if d.Prod[k] == prev.Seq {
					found = true
				}
			}
			if !found {
				t.Fatalf("ADD at seq %d missing load producer %d (prods %v)", d.Seq, prev.Seq, d.Prod[:d.NProd])
			}
		}
	}
}

func TestBranchOutcomesFollowBias(t *testing.T) {
	p := loopProgram()
	dyns := NewGenerator(p, 9).Generate(nil, 100_000)
	taken, total := 0, 0
	for _, d := range dyns {
		if d.IsCond {
			total++
			if d.Taken {
				taken++
			}
		}
	}
	if total == 0 {
		t.Fatal("no conditional branches executed")
	}
	frac := float64(taken) / float64(total)
	if frac < 0.85 || frac > 0.95 {
		t.Errorf("taken fraction %.3f, want ~0.9", frac)
	}
}

func TestCallReturnTargets(t *testing.T) {
	p := loopProgram()
	dyns := NewGenerator(p, 3).Generate(nil, 1000)
	helperEntry := p.Funcs[1].Blocks[0].Instrs[0].Addr
	for i, d := range dyns {
		if d.Op == isa.OpBL {
			if d.Target != helperEntry {
				t.Fatalf("call target %#x, want %#x", d.Target, helperEntry)
			}
			if i+1 < len(dyns) && dyns[i+1].Addr != helperEntry {
				t.Fatalf("instruction after call at %#x, want callee entry %#x", dyns[i+1].Addr, helperEntry)
			}
		}
		if d.Op == isa.OpBX && i+1 < len(dyns) {
			if d.Target != dyns[i+1].Addr {
				t.Fatalf("return target %#x but next instr at %#x", d.Target, dyns[i+1].Addr)
			}
		}
	}
}

func TestMemAddressesInRegion(t *testing.T) {
	p := loopProgram()
	dyns := NewGenerator(p, 5).Generate(nil, 10_000)
	loads := 0
	for _, d := range dyns {
		if !d.IsLoad && !d.IsStore {
			continue
		}
		loads++
		if d.MemAddr < DataBase || d.MemAddr >= DataBase+4096 {
			t.Fatalf("memory address %#x outside region", d.MemAddr)
		}
		if d.MemAddr%4 != 0 {
			t.Fatalf("unaligned memory address %#x", d.MemAddr)
		}
	}
	if loads == 0 {
		t.Fatal("no memory operations executed")
	}
}

func TestStridedAddressesAdvance(t *testing.T) {
	p := loopProgram()
	dyns := NewGenerator(p, 5).Generate(nil, 100)
	var prev uint32
	seen := 0
	for _, d := range dyns {
		if d.Op != isa.OpLDR {
			continue
		}
		if seen > 0 && d.MemAddr != prev+4 && d.MemAddr >= prev {
			// Strided by 4 with wraparound; consecutive loads of the
			// same static instruction must advance by the stride.
			t.Fatalf("stride violated: %#x after %#x", d.MemAddr, prev)
		}
		prev = d.MemAddr
		seen++
	}
	if seen < 2 {
		t.Fatal("not enough loads to check striding")
	}
}

func TestEventLoopRestart(t *testing.T) {
	p := loopProgram()
	g := NewGenerator(p, 2)
	g.Generate(nil, 50_000)
	if g.Iterations == 0 {
		t.Error("entry function never completed; event loop not modeled")
	}
}

func TestSkipEquivalence(t *testing.T) {
	p := loopProgram()
	g1 := NewGenerator(p, 11)
	g1.Skip(500)
	a := g1.Generate(nil, 100)

	g2 := NewGenerator(p, 11)
	all := g2.Generate(nil, 600)
	b := all[500:]
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("Skip changes execution at %d", i)
		}
	}
}

func TestCollectPlan(t *testing.T) {
	p := loopProgram()
	plan := SamplePlan{Samples: 4, Length: 250, Gap: 100, Warmup: 50}
	ws := Collect(p, 17, plan)
	if len(ws) != 4 {
		t.Fatalf("got %d windows", len(ws))
	}
	for _, w := range ws {
		if len(w.Dyns) != 250 {
			t.Fatalf("window length %d", len(w.Dyns))
		}
	}
	if got := len(Flatten(ws)); got != 1000 {
		t.Fatalf("Flatten length %d", got)
	}
	// Windows are disjoint, increasing segments of the stream.
	if ws[1].Dyns[0].Seq <= ws[0].Dyns[len(ws[0].Dyns)-1].Seq {
		t.Error("windows overlap")
	}
}

func TestThumbSizesInStream(t *testing.T) {
	p := loopProgram()
	// Thumb-convert the loop body ADD with a CDP prefix.
	b := p.Funcs[0].Blocks[1]
	cdp := prog.Instr{Inst: isa.Inst{Op: isa.OpCDP, Rd: isa.NoReg, Rn: isa.NoReg, Rm: isa.NoReg}, Thumb: true, CDPCount: 1}
	body := append([]prog.Instr(nil), b.Instrs...)
	body[1].Thumb = true
	b.Instrs = append(body[:1:1], append([]prog.Instr{cdp, body[1]}, body[2:]...)...)
	p.Layout()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	dyns := NewGenerator(p, 4).Generate(nil, 100)
	sawCDP, sawThumb := false, false
	for _, d := range dyns {
		if d.IsCDP {
			sawCDP = true
			if d.CDPCount != 1 || d.Size != 2 {
				t.Fatalf("bad CDP dyn: %+v", d)
			}
		}
		if d.Thumb && !d.IsCDP {
			sawThumb = true
			if d.Size != 2 {
				t.Fatalf("thumb dyn with size %d", d.Size)
			}
		}
	}
	if !sawCDP || !sawThumb {
		t.Error("CDP/thumb instructions missing from stream")
	}
}
