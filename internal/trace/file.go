package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"critics/internal/isa"
)

// Trace file format: the paper's profiling phase dumps the executed
// instruction stream for offline analysis (§III-C "Trace Collection" — their
// instrumented disassembler wrote 100s of GBs; ours is compact). The format
// is a little-endian binary stream:
//
//	magic "CRTC" | version u16 | count u64 | records...
//
// Each record is a fixed 48-byte struct (see writeDyn) — simple, seekable
// and fast, at ~48 bytes per dynamic instruction.

const (
	fileMagic   = "CRTC"
	fileVersion = 1
	recordBytes = 48
)

// WriteTrace serializes dyns to w.
func WriteTrace(w io.Writer, dyns []Dyn) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.WriteString(fileMagic); err != nil {
		return err
	}
	var hdr [10]byte
	binary.LittleEndian.PutUint16(hdr[0:], fileVersion)
	binary.LittleEndian.PutUint64(hdr[2:], uint64(len(dyns)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var rec [recordBytes]byte
	for i := range dyns {
		writeDyn(&rec, &dyns[i])
		if _, err := bw.Write(rec[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func writeDyn(rec *[recordBytes]byte, d *Dyn) {
	le := binary.LittleEndian
	le.PutUint64(rec[0:], uint64(d.Seq))
	le.PutUint32(rec[8:], uint32(d.ID.Func))
	le.PutUint32(rec[12:], uint32(d.ID.Block))
	le.PutUint32(rec[16:], uint32(d.ID.Index))
	le.PutUint32(rec[20:], d.Addr)
	le.PutUint64(rec[24:], uint64(d.Prod[0]))
	// Producers 1..3 are stored as backward deltas from the consumer's own
	// sequence number (always positive) in 16 bits; the window-local
	// dependence structure makes this exact in practice. A sentinel of
	// 0xFFFF means "absent", 0xFFFE "dropped" (delta overflow).
	for k := 1; k < 4; k++ {
		v := uint16(0xFFFF)
		if k < int(d.NProd) {
			delta := d.Seq - d.Prod[k]
			if delta > 0 && delta < 0xFFFE {
				v = uint16(delta)
			} else {
				v = 0xFFFE
			}
		}
		le.PutUint16(rec[32+(k-1)*2:], v)
	}
	le.PutUint32(rec[38:], d.MemAddr)
	rec[42] = uint8(d.Op)
	rec[43] = uint8(d.Class)
	rec[44] = d.Size
	rec[45] = d.Latency
	var flags uint8
	if d.Thumb {
		flags |= 1 << 0
	}
	if d.Expanded {
		flags |= 1 << 1
	}
	if d.IsCDP {
		flags |= 1 << 2
	}
	if d.IsBranch {
		flags |= 1 << 3
	}
	if d.IsCond {
		flags |= 1 << 4
	}
	if d.Taken {
		flags |= 1 << 5
	}
	if d.IsLoad {
		flags |= 1 << 6
	}
	if d.IsStore {
		flags |= 1 << 7
	}
	rec[46] = flags
	var flags2 uint8
	if d.Overhead {
		flags2 |= 1 << 0
	}
	if d.NProd > 0 {
		flags2 |= uint8(d.NProd) << 1
	}
	flags2 |= uint8(d.CDPCount) << 4
	rec[47] = flags2
}

// ReadTrace deserializes a trace written by WriteTrace. Target and ChainID
// are not persisted (they are derivable/bookkeeping); NProd producers are
// reconstructed from the delta encoding, dropping any producer whose delta
// overflowed the field (marked absent on write).
func ReadTrace(r io.Reader) ([]Dyn, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, err
	}
	if string(magic) != fileMagic {
		return nil, fmt.Errorf("trace: bad magic %q", magic)
	}
	var hdr [10]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, err
	}
	le := binary.LittleEndian
	if v := le.Uint16(hdr[0:]); v != fileVersion {
		return nil, fmt.Errorf("trace: unsupported version %d", v)
	}
	count := le.Uint64(hdr[2:])
	const maxTrace = 1 << 30
	if count > maxTrace {
		return nil, fmt.Errorf("trace: implausible record count %d", count)
	}
	// Cap the preallocation independently of the declared count: a hostile
	// header can claim up to maxTrace records (~48 GiB of Dyn) while holding
	// no payload at all, so trust the count only up to ~16 MiB and let
	// append grow the slice as records actually arrive.
	const maxPrealloc = 1 << 18
	prealloc := count
	if prealloc > maxPrealloc {
		prealloc = maxPrealloc
	}
	dyns := make([]Dyn, 0, prealloc)
	var rec [recordBytes]byte
	for i := uint64(0); i < count; i++ {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return nil, fmt.Errorf("trace: truncated at record %d: %w", i, err)
		}
		dyns = append(dyns, readDyn(&rec))
	}
	return dyns, nil
}

func readDyn(rec *[recordBytes]byte) Dyn {
	le := binary.LittleEndian
	var d Dyn
	d.Seq = int64(le.Uint64(rec[0:]))
	d.ID.Func = int(le.Uint32(rec[8:]))
	d.ID.Block = int(le.Uint32(rec[12:]))
	d.ID.Index = int(le.Uint32(rec[16:]))
	d.Addr = le.Uint32(rec[20:])
	d.Prod[0] = int64(le.Uint64(rec[24:]))
	d.MemAddr = le.Uint32(rec[38:])
	if op := isa.Op(rec[42]); op < isa.NumOps {
		d.Op = op
	}
	if cl := isa.Class(rec[43]); cl < isa.NumClasses {
		d.Class = cl
	}
	d.Size = rec[44]
	d.Latency = rec[45]
	flags := rec[46]
	d.Thumb = flags&(1<<0) != 0
	d.Expanded = flags&(1<<1) != 0
	d.IsCDP = flags&(1<<2) != 0
	d.IsBranch = flags&(1<<3) != 0
	d.IsCond = flags&(1<<4) != 0
	d.Taken = flags&(1<<5) != 0
	d.IsLoad = flags&(1<<6) != 0
	d.IsStore = flags&(1<<7) != 0
	flags2 := rec[47]
	d.Overhead = flags2&1 != 0
	nprod := (flags2 >> 1) & 0x7
	// The 3-bit field can claim up to 7 producers in a corrupted record;
	// Prod holds at most 4 (what writeDyn ever stores).
	if nprod > uint8(len(d.Prod)) {
		nprod = uint8(len(d.Prod))
	}
	d.CDPCount = flags2 >> 4
	if nprod > 0 {
		d.NProd = 1
		for k := 1; k < int(nprod); k++ {
			v := le.Uint16(rec[32+(k-1)*2:])
			if v >= 0xFFFE {
				continue
			}
			d.Prod[d.NProd] = d.Seq - int64(v)
			d.NProd++
		}
	} else {
		d.Prod[0] = 0
	}
	return d
}
