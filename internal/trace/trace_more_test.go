package trace

import (
	"testing"

	"critics/internal/isa"
	"critics/internal/prog"
)

// withOverheadProgram builds a program whose loop body contains a CDP-covered
// thumb run, a mode-switch pair and an Expanded instruction.
func withOverheadProgram() *prog.Program {
	p := loopProgram()
	b := p.Funcs[0].Blocks[1]
	body := append([]prog.Instr(nil), b.Instrs...)
	// Thumb-convert the ADD behind a CDP.
	cdp := prog.Instr{Inst: isa.Inst{Op: isa.OpCDP, Rd: isa.NoReg, Rn: isa.NoReg, Rm: isa.NoReg}, Thumb: true, CDPCount: 1}
	body[1].Thumb = true
	// Mode-switch pair around it (Approach 1 shape, just for the flags).
	pre := prog.Instr{Inst: isa.Inst{Op: isa.OpB, Rd: isa.NoReg, Rn: isa.NoReg, Rm: isa.NoReg}, ModeSwitch: true}
	post := prog.Instr{Inst: isa.Inst{Op: isa.OpB, Rd: isa.NoReg, Rn: isa.NoReg, Rm: isa.NoReg}, ModeSwitch: true, Thumb: true}
	// An Expanded instruction.
	exp := prog.Instr{Inst: isa.Inst{Op: isa.OpADD, Rd: isa.R8, Rn: isa.R0, HasImm: true, Imm: 300}, Thumb: true, Expanded: true}
	b.Instrs = append([]prog.Instr{pre, cdp, body[1], post, exp, body[0]}, body[2:]...)
	p.Layout()
	if err := p.Validate(); err != nil {
		panic(err)
	}
	return p
}

func TestGenerateArchCountsArchitecturalWork(t *testing.T) {
	p := withOverheadProgram()
	g := NewGenerator(p, 9)
	dyns := g.GenerateArch(nil, 10_000)
	arch := 0
	overhead := 0
	for _, d := range dyns {
		if d.Overhead {
			overhead++
		} else {
			arch++
		}
	}
	if arch != 10_000 {
		t.Fatalf("architectural count %d, want 10000", arch)
	}
	if overhead == 0 {
		t.Fatal("no overhead dyns in a stream with CDPs/switches/expansions")
	}
}

func TestExpandedEmitsHelper(t *testing.T) {
	p := withOverheadProgram()
	dyns := NewGenerator(p, 5).Generate(nil, 2000)
	helpers, mains := 0, 0
	for i, d := range dyns {
		if d.Expanded && !d.Overhead {
			mains++
			if i == 0 || !dyns[i-1].Overhead || dyns[i-1].Op != isa.OpMOV {
				t.Fatalf("expanded main at %d not preceded by a helper", i)
			}
			if dyns[i-1].Addr != d.Addr-2 {
				t.Fatalf("helper/main addresses %#x/%#x not adjacent halfwords", dyns[i-1].Addr, d.Addr)
			}
			if d.Size != 2 || dyns[i-1].Size != 2 {
				t.Fatalf("expanded pair sizes %d/%d, want 2/2", dyns[i-1].Size, d.Size)
			}
		}
		if d.Overhead && d.Op == isa.OpMOV {
			helpers++
		}
	}
	if mains == 0 || helpers != mains {
		t.Fatalf("helpers %d, expanded mains %d", helpers, mains)
	}
}

func TestModeSwitchDynFlags(t *testing.T) {
	p := withOverheadProgram()
	dyns := NewGenerator(p, 5).Generate(nil, 2000)
	seen := 0
	for _, d := range dyns {
		if !d.Overhead || d.IsCDP || d.Op != isa.OpB {
			continue
		}
		seen++
		if !d.IsBranch {
			t.Fatal("mode-switch dyn not flagged as branch")
		}
		if d.Taken {
			t.Fatal("mode-switch dyn marked taken; it must fall through (no redirect)")
		}
	}
	if seen == 0 {
		t.Fatal("no mode-switch dyns observed")
	}
}

func TestDrawsAreOrderIndependent(t *testing.T) {
	// Reordering instructions within a block must not change any other
	// instruction's draws (branch outcomes, addresses): the property the
	// A/B methodology depends on.
	p1 := loopProgram()
	p1.AssignUIDs()
	p1.Layout()
	p2 := p1.Clone()
	// Swap the two independent middle instructions of block 1 (load and
	// its consumer are dependent; swap CMP with store — both independent
	// of each other? store reads r4 which CMP also reads: RAW none, fine).
	b := p2.Funcs[0].Blocks[1]
	b.Instrs[2], b.Instrs[3] = b.Instrs[3], b.Instrs[2]
	p2.Layout()

	d1 := NewGenerator(p1, 33).Generate(nil, 5000)
	d2 := NewGenerator(p2, 33).Generate(nil, 5000)

	// Compare per-UID event sequences: same branch outcomes, same memory
	// addresses, independent of intra-block position.
	type key struct {
		uid uint32
		n   int
	}
	addr1 := map[key]uint32{}
	cnt1 := map[uint32]int{}
	taken1 := map[key]bool{}
	for _, d := range d1 {
		in := p1.At(d.ID)
		if d.IsLoad || d.IsStore {
			cnt1[in.UID]++
			addr1[key{in.UID, cnt1[in.UID]}] = d.MemAddr
		}
		if d.IsCond {
			cnt1[in.UID]++
			taken1[key{in.UID, cnt1[in.UID]}] = d.Taken
		}
	}
	cnt2 := map[uint32]int{}
	for _, d := range d2 {
		in := p2.At(d.ID)
		if d.IsLoad || d.IsStore {
			cnt2[in.UID]++
			if want, ok := addr1[key{in.UID, cnt2[in.UID]}]; ok && want != d.MemAddr {
				t.Fatalf("uid %d occurrence %d: address %#x vs %#x", in.UID, cnt2[in.UID], d.MemAddr, want)
			}
		}
		if d.IsCond {
			cnt2[in.UID]++
			if want, ok := taken1[key{in.UID, cnt2[in.UID]}]; ok && want != d.Taken {
				t.Fatalf("uid %d occurrence %d: taken %v vs %v", in.UID, cnt2[in.UID], d.Taken, want)
			}
		}
	}
}

func TestSkipArchEquivalence(t *testing.T) {
	p := withOverheadProgram()
	g1 := NewGenerator(p, 77)
	g1.SkipArch(1000)
	a := g1.GenerateArch(nil, 500)

	g2 := NewGenerator(p, 77)
	all := g2.GenerateArch(nil, 1500)
	// Find where the 1000th architectural instruction ends.
	arch := 0
	idx := 0
	for i, d := range all {
		if !d.Overhead {
			arch++
		}
		if arch == 1000 {
			idx = i + 1
			break
		}
	}
	b := all[idx:]
	for i := range a {
		if a[i].ID != b[i].ID || a[i].MemAddr != b[i].MemAddr {
			t.Fatalf("SkipArch diverges at %d", i)
		}
	}
}
