package trace

import (
	"bytes"
	"testing"
)

func TestTraceFileRoundTrip(t *testing.T) {
	p := withOverheadProgram()
	g := NewGenerator(p, 21)
	g.Skip(2000)
	dyns := g.Generate(nil, 20_000)

	var buf bytes.Buffer
	if err := WriteTrace(&buf, dyns); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 4+10+len(dyns)*48 {
		t.Fatalf("file size %d unexpected", buf.Len())
	}
	back, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(dyns) {
		t.Fatalf("got %d records, want %d", len(back), len(dyns))
	}
	for i := range dyns {
		want := dyns[i]
		want.Target = 0  // not persisted
		want.ChainID = 0 // not persisted
		got := back[i]
		// Producer deltas beyond 16 bits are dropped on write; rebuild
		// the comparable view.
		if got.NProd != want.NProd {
			// Allowed only when a delta overflowed the 16-bit field.
			widest := int64(0)
			for k := uint8(1); k < want.NProd; k++ {
				if d := want.Seq - want.Prod[k]; d > widest {
					widest = d
				}
			}
			if widest < 0xFFFE {
				t.Fatalf("record %d: NProd %d vs %d without overflow", i, got.NProd, want.NProd)
			}
			continue
		}
		for k := uint8(0); k < got.NProd; k++ {
			if got.Prod[k] != want.Prod[k] {
				t.Fatalf("record %d: producer %d = %d, want %d", i, k, got.Prod[k], want.Prod[k])
			}
		}
		got.Prod = want.Prod // compared above (order beyond NProd is garbage)
		if got.Seq != want.Seq || got.ID != want.ID || got.Addr != want.Addr ||
			got.Op != want.Op || got.Class != want.Class || got.Size != want.Size ||
			got.Thumb != want.Thumb || got.Expanded != want.Expanded ||
			got.IsCDP != want.IsCDP || got.CDPCount != want.CDPCount ||
			got.IsBranch != want.IsBranch || got.IsCond != want.IsCond ||
			got.Taken != want.Taken || got.IsLoad != want.IsLoad ||
			got.IsStore != want.IsStore || got.MemAddr != want.MemAddr ||
			got.Latency != want.Latency || got.Overhead != want.Overhead {
			t.Fatalf("record %d mismatch:\n got  %+v\n want %+v", i, got, want)
		}
	}
}

func TestTraceFileRejectsGarbage(t *testing.T) {
	if _, err := ReadTrace(bytes.NewReader([]byte("NOPE123456789012345"))); err == nil {
		t.Error("bad magic accepted")
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, nil); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[4] = 99 // corrupt version
	if _, err := ReadTrace(bytes.NewReader(b)); err == nil {
		t.Error("bad version accepted")
	}
}

func TestTraceFileTruncation(t *testing.T) {
	p := loopProgram()
	dyns := NewGenerator(p, 3).Generate(nil, 100)
	var buf bytes.Buffer
	if err := WriteTrace(&buf, dyns); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	if _, err := ReadTrace(bytes.NewReader(b[:len(b)-10])); err == nil {
		t.Error("truncated trace accepted")
	}
}
