package trace

import (
	"reflect"
	"testing"

	"critics/internal/workload"
)

// sourceApp returns a generated program for the source tests.
func sourceApp(t *testing.T) *Generator {
	t.Helper()
	a, ok := workload.FindApp("acrobat")
	if !ok {
		t.Fatal("catalog app missing")
	}
	return NewGenerator(workload.Generate(a.Params), 7)
}

// drain concatenates all chunks of a source (copying, since chunks are only
// valid until the next pull).
func drain(src Source) []Dyn {
	var out []Dyn
	for {
		c := src.NextChunk()
		if len(c) == 0 {
			return out
		}
		out = append(out, c...)
	}
}

func TestGenSourceMatchesGenerateArch(t *testing.T) {
	const arch = 12_000
	want := sourceApp(t).GenerateArch(nil, arch)
	for _, chunk := range []int{1, 7, 128, 1024, DefaultChunk, len(want) + 5} {
		g := sourceApp(t)
		g2 := g // fresh generator per chunk size
		got := drain(NewGenSource(g2, arch, chunk))
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("chunk=%d: streamed dyns differ from GenerateArch (%d vs %d dyns)", chunk, len(got), len(want))
		}
	}
}

func TestGenSourceSeqContiguous(t *testing.T) {
	src := NewGenSource(sourceApp(t), 5_000, 512)
	last := int64(-1)
	for {
		c := src.NextChunk()
		if len(c) == 0 {
			break
		}
		for i := range c {
			if last >= 0 && c[i].Seq != last+1 {
				t.Fatalf("Seq gap: %d after %d", c[i].Seq, last)
			}
			last = c[i].Seq
		}
	}
}

func TestGenSourceResetReusesBuffer(t *testing.T) {
	g := sourceApp(t)
	src := NewGenSource(g, 2_000, 256)
	first := src.NextChunk()
	if len(first) != 256 {
		t.Fatalf("chunk len %d, want 256", len(first))
	}
	p0 := &first[0]
	drain(src)
	src.Reset(sourceApp(t), 2_000, 0)
	again := src.NextChunk()
	if &again[0] != p0 {
		t.Error("Reset did not reuse the chunk buffer")
	}
}

func TestSliceSource(t *testing.T) {
	dyns := sourceApp(t).Generate(nil, 1_000)
	for _, chunk := range []int{1, 3, 333, 1_000, 5_000} {
		got := drain(NewSliceSource(dyns, chunk))
		if !reflect.DeepEqual(got, dyns) {
			t.Fatalf("chunk=%d: round trip lost data", chunk)
		}
	}
	if c := NewSliceSource(nil, 16).NextChunk(); len(c) != 0 {
		t.Fatalf("empty source yielded %d dyns", len(c))
	}
}
