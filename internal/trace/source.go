package trace

// DefaultChunk is the default chunk size of streaming Sources. Large enough
// that per-chunk overheads vanish against per-instruction work, small enough
// that a pipeline stage's working set stays cache- and memory-friendly.
const DefaultChunk = 4096

// Source is a chunked pull iterator over a dynamic instruction stream — the
// streaming alternative to materializing a whole window with Generate or
// GenerateArch. Consumers that can process the stream incrementally (fanout
// analysis, the cycle model, chain extraction) run in O(chunk) memory
// regardless of window length.
//
// NextChunk returns the next contiguous chunk of the stream; an empty return
// means the stream is exhausted. The returned slice is only valid until the
// next NextChunk call — consumers that need data across calls must copy.
// Chunks are contiguous in the underlying stream: Seq values never skip, so
// the distance between two instructions in the stream equals the difference
// of their Seq fields.
type Source interface {
	NextChunk() []Dyn
}

// GenSource streams the next n architectural instructions from a Generator
// in chunks, emitting exactly the dynamic stream GenerateArch(nil, n) would
// materialize (overhead instructions ride along uncounted, and the stream
// ends right after the n-th architectural instruction). The chunk buffer is
// reused across NextChunk calls.
type GenSource struct {
	g         *Generator
	remaining int // architectural instructions still to emit
	buf       []Dyn
}

// NewGenSource returns a GenSource emitting the next archInstrs architectural
// instructions from g in chunks of the given size (DefaultChunk if <= 0).
func NewGenSource(g *Generator, archInstrs, chunk int) *GenSource {
	s := &GenSource{}
	s.Reset(g, archInstrs, chunk)
	return s
}

// Reset rebinds the source to a generator and budget, reusing the chunk
// buffer. A zero chunk keeps the current buffer capacity (or DefaultChunk).
func (s *GenSource) Reset(g *Generator, archInstrs, chunk int) {
	if chunk <= 0 {
		chunk = cap(s.buf)
		if chunk == 0 {
			chunk = DefaultChunk
		}
	}
	if cap(s.buf) < chunk {
		s.buf = make([]Dyn, 0, chunk)
	}
	s.g = g
	s.remaining = archInstrs
	s.buf = s.buf[:0:chunk]
}

// NextChunk implements Source.
func (s *GenSource) NextChunk() []Dyn {
	if s.remaining <= 0 {
		return nil
	}
	s.buf = s.buf[:0]
	for len(s.buf) < cap(s.buf) && s.remaining > 0 {
		d := s.g.step()
		if !d.Overhead {
			s.remaining--
		}
		s.buf = append(s.buf, d)
	}
	return s.buf
}

// SliceSource adapts an in-memory slice to the Source interface, yielding
// sub-slices of the given chunk size. It is the fixture half of the
// streaming-vs-materialized equivalence tests: the same dyn slice can be fed
// to the slice-based APIs and, via SliceSource, to the streaming ones.
type SliceSource struct {
	dyns  []Dyn
	chunk int
	off   int
}

// NewSliceSource returns a SliceSource over dyns with the given chunk size
// (DefaultChunk if <= 0).
func NewSliceSource(dyns []Dyn, chunk int) *SliceSource {
	if chunk <= 0 {
		chunk = DefaultChunk
	}
	return &SliceSource{dyns: dyns, chunk: chunk}
}

// NextChunk implements Source.
func (s *SliceSource) NextChunk() []Dyn {
	if s.off >= len(s.dyns) {
		return nil
	}
	end := s.off + s.chunk
	if end > len(s.dyns) {
		end = len(s.dyns)
	}
	out := s.dyns[s.off:end]
	s.off = end
	return out
}
