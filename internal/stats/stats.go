// Package stats provides small statistics helpers shared by the profiler,
// the simulator and the experiment harnesses: histograms, CDFs and means.
//
// Everything in this package is deterministic and allocation-conscious; the
// experiment runners call into it on hot paths (per dynamic instruction).
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// GeoMean returns the geometric mean of xs. All values must be positive;
// non-positive values are skipped (and reduce the count). Returns 0 for an
// empty slice.
func GeoMean(xs []float64) float64 {
	var logSum float64
	n := 0
	for _, x := range xs {
		if x <= 0 {
			continue
		}
		logSum += math.Log(x)
		n++
	}
	if n == 0 {
		return 0
	}
	return math.Exp(logSum / float64(n))
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between closest ranks. xs need not be sorted.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Histogram is an integer-bucketed histogram with a catch-all overflow
// bucket. Buckets are [0], [1], ... [Max], and values above Max land in the
// overflow bucket.
type Histogram struct {
	Max      int
	Counts   []int64
	Overflow int64
	Total    int64
}

// NewHistogram returns a histogram with buckets 0..max inclusive.
func NewHistogram(max int) *Histogram {
	return &Histogram{Max: max, Counts: make([]int64, max+1)}
}

// Add records a single observation of value v.
func (h *Histogram) Add(v int) {
	h.AddN(v, 1)
}

// AddN records n observations of value v.
func (h *Histogram) AddN(v int, n int64) {
	if v < 0 {
		v = 0
	}
	if v > h.Max {
		h.Overflow += n
	} else {
		h.Counts[v] += n
	}
	h.Total += n
}

// Frac returns the fraction of observations with value v (0 if empty).
func (h *Histogram) Frac(v int) float64 {
	if h.Total == 0 {
		return 0
	}
	if v > h.Max {
		return float64(h.Overflow) / float64(h.Total)
	}
	if v < 0 {
		return 0
	}
	return float64(h.Counts[v]) / float64(h.Total)
}

// CumFrac returns the fraction of observations with value <= v.
func (h *Histogram) CumFrac(v int) float64 {
	if h.Total == 0 {
		return 0
	}
	if v >= h.Max {
		vv := int64(0)
		for _, c := range h.Counts {
			vv += c
		}
		if v == h.Max {
			return float64(vv) / float64(h.Total)
		}
		return 1
	}
	var s int64
	for i := 0; i <= v; i++ {
		s += h.Counts[i]
	}
	return float64(s) / float64(h.Total)
}

// Merge adds all observations from o into h. Both histograms must have the
// same Max.
func (h *Histogram) Merge(o *Histogram) {
	if h.Max != o.Max {
		panic(fmt.Sprintf("stats: merging histograms with different shapes (%d vs %d)", h.Max, o.Max))
	}
	for i, c := range o.Counts {
		h.Counts[i] += c
	}
	h.Overflow += o.Overflow
	h.Total += o.Total
}

// CDFPoint is one point of an empirical CDF.
type CDFPoint struct {
	X    float64
	Frac float64 // fraction of mass with value <= X
}

// CDF is an empirical cumulative distribution over weighted observations.
type CDF struct {
	points []CDFPoint // sorted by X, built by Build
	xs     []float64
	ws     []float64
	built  bool
}

// Add records one observation x with weight w.
func (c *CDF) Add(x, w float64) {
	c.xs = append(c.xs, x)
	c.ws = append(c.ws, w)
	c.built = false
}

// Build sorts and normalizes the CDF; called implicitly by accessors.
func (c *CDF) Build() {
	if c.built {
		return
	}
	type pair struct{ x, w float64 }
	ps := make([]pair, len(c.xs))
	var total float64
	for i := range c.xs {
		ps[i] = pair{c.xs[i], c.ws[i]}
		total += c.ws[i]
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].x < ps[j].x })
	c.points = c.points[:0]
	var cum float64
	for _, p := range ps {
		cum += p.w
		frac := 1.0
		if total > 0 {
			frac = cum / total
		}
		c.points = append(c.points, CDFPoint{X: p.x, Frac: frac})
	}
	c.built = true
}

// At returns the CDF value at x: the fraction of weight with value <= x.
func (c *CDF) At(x float64) float64 {
	c.Build()
	// Binary search for the last point with X <= x.
	lo, hi := 0, len(c.points)
	for lo < hi {
		mid := (lo + hi) / 2
		if c.points[mid].X <= x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return 0
	}
	return c.points[lo-1].Frac
}

// Points returns up to n evenly spaced points of the CDF for plotting.
func (c *CDF) Points(n int) []CDFPoint {
	c.Build()
	if len(c.points) <= n {
		return append([]CDFPoint(nil), c.points...)
	}
	out := make([]CDFPoint, 0, n)
	for i := 0; i < n; i++ {
		idx := i * (len(c.points) - 1) / (n - 1)
		out = append(out, c.points[idx])
	}
	return out
}

// Table renders label/value rows with fixed-point values; used by the CLI
// experiment runners to print the paper's series.
func Table(header string, labels []string, values []float64, unit string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", header)
	wid := 0
	for _, l := range labels {
		if len(l) > wid {
			wid = len(l)
		}
	}
	for i, l := range labels {
		fmt.Fprintf(&b, "  %-*s  %8.3f%s\n", wid, l, values[i], unit)
	}
	return b.String()
}
