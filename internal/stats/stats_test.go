package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("empty mean")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %f", got)
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 4}); math.Abs(got-2) > 1e-9 {
		t.Errorf("GeoMean = %f", got)
	}
	if got := GeoMean([]float64{2, 0, 8}); math.Abs(got-4) > 1e-9 {
		t.Errorf("GeoMean skipping zeros = %f", got)
	}
	if GeoMean(nil) != 0 {
		t.Error("empty geomean")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if got := Percentile(xs, 0); got != 1 {
		t.Errorf("p0 = %f", got)
	}
	if got := Percentile(xs, 100); got != 5 {
		t.Errorf("p100 = %f", got)
	}
	if got := Percentile(xs, 50); got != 3 {
		t.Errorf("p50 = %f", got)
	}
	if got := Percentile(xs, 25); got != 2 {
		t.Errorf("p25 = %f", got)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(5)
	h.Add(0)
	h.Add(3)
	h.AddN(3, 2)
	h.Add(99) // overflow
	if h.Total != 5 {
		t.Errorf("Total = %d", h.Total)
	}
	if h.Frac(3) != 0.6 {
		t.Errorf("Frac(3) = %f", h.Frac(3))
	}
	if h.Frac(99) != 0.2 {
		t.Errorf("overflow frac = %f", h.Frac(99))
	}
	if got := h.CumFrac(3); got != 0.8 {
		t.Errorf("CumFrac(3) = %f", got)
	}
	if got := h.CumFrac(100); got != 1 {
		t.Errorf("CumFrac(100) = %f", got)
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(3), NewHistogram(3)
	a.Add(1)
	b.Add(2)
	b.Add(5)
	a.Merge(b)
	if a.Total != 3 || a.Counts[1] != 1 || a.Counts[2] != 1 || a.Overflow != 1 {
		t.Errorf("merged: %+v", a)
	}
	defer func() {
		if recover() == nil {
			t.Error("mismatched merge did not panic")
		}
	}()
	a.Merge(NewHistogram(7))
}

func TestCDF(t *testing.T) {
	var c CDF
	c.Add(1, 1)
	c.Add(2, 1)
	c.Add(3, 2)
	if got := c.At(0); got != 0 {
		t.Errorf("At(0) = %f", got)
	}
	if got := c.At(2); got != 0.5 {
		t.Errorf("At(2) = %f", got)
	}
	if got := c.At(3); got != 1 {
		t.Errorf("At(3) = %f", got)
	}
	pts := c.Points(2)
	if len(pts) == 0 || pts[len(pts)-1].Frac != 1 {
		t.Errorf("Points = %+v", pts)
	}
}

// Property: CDF is monotone non-decreasing in x.
func TestCDFMonotone(t *testing.T) {
	f := func(xs []float64) bool {
		if len(xs) == 0 {
			return true
		}
		var c CDF
		for _, x := range xs {
			c.Add(x, 1)
		}
		prev := -1.0
		for x := -10.0; x < 10; x += 0.5 {
			v := c.At(x)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTable(t *testing.T) {
	out := Table("hdr", []string{"a", "bb"}, []float64{1, 2}, "%")
	if out == "" || len(out) < 10 {
		t.Errorf("Table output %q", out)
	}
}
