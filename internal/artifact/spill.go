package artifact

import (
	"sync"

	"critics/internal/sched"
)

// MemoSpill adapts a Store to sched.SpillStore, letting memo caches spill
// over-budget values into the content-addressed tiers instead of dropping
// them. Memo keys are already SHA-256 digests, but of the *inputs*; the
// store addresses by content, so the adapter keeps a key→digest index and
// pins each spilled blob with a ref while the index points at it.
type MemoSpill struct {
	store *Store

	mu    sync.Mutex
	index map[sched.Key]string
}

// NewMemoSpill returns a spill adapter over st.
func NewMemoSpill(st *Store) *MemoSpill {
	return &MemoSpill{store: st, index: map[sched.Key]string{}}
}

// SpillPut stores data and remembers it under k, reporting whether it was
// retained.
func (m *MemoSpill) SpillPut(k sched.Key, data []byte) bool {
	d, err := m.store.PutBytes(data)
	if err != nil {
		return false
	}
	m.mu.Lock()
	prev, had := m.index[k]
	m.index[k] = d
	m.mu.Unlock()
	if had && prev == d {
		return true // re-spill of the identical value; ref already held
	}
	m.store.AddRef(d)
	if had {
		m.store.Release(prev)
	}
	return true
}

// SpillGet returns the bytes previously spilled under k. A blob that has
// since failed verification or vanished drops its index entry so the memo
// rebuilds.
func (m *MemoSpill) SpillGet(k sched.Key) ([]byte, bool) {
	m.mu.Lock()
	d, ok := m.index[k]
	m.mu.Unlock()
	if !ok {
		return nil, false
	}
	data, err := m.store.Get(d)
	if err != nil {
		m.mu.Lock()
		if cur, ok := m.index[k]; ok && cur == d {
			delete(m.index, k)
		}
		m.mu.Unlock()
		m.store.Release(d)
		return nil, false
	}
	return data, true
}

// Len returns the number of spilled keys currently indexed.
func (m *MemoSpill) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.index)
}
