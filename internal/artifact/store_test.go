package artifact

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"critics/internal/sched"
	"critics/internal/telemetry"
)

func open(t *testing.T, cfg Config) *Store {
	t.Helper()
	if cfg.Dir == "" {
		cfg.Dir = t.TempDir()
	}
	s, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s
}

// partFiles returns the .part files currently under the store dir.
func partFiles(t *testing.T, s *Store) []string {
	t.Helper()
	entries, err := os.ReadDir(s.Dir())
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	var parts []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".part") {
			parts = append(parts, e.Name())
		}
	}
	return parts
}

func TestValidate(t *testing.T) {
	good := Sum([]byte("hello"))
	if err := Validate(good); err != nil {
		t.Fatalf("Validate(%q): %v", good, err)
	}
	for _, bad := range []string{
		"",
		"sha256:",
		"md5:" + strings.Repeat("0", 64),
		Prefix + strings.Repeat("0", 63),
		Prefix + strings.Repeat("0", 65),
		Prefix + strings.Repeat("0", 63) + "G",
		Prefix + strings.Repeat("0", 63) + "A", // uppercase hex is not canonical
	} {
		if err := Validate(bad); err == nil {
			t.Errorf("Validate(%q) accepted a malformed digest", bad)
		}
	}
}

func TestPutBytesRoundTrip(t *testing.T) {
	s := open(t, Config{})
	payload := []byte("the quick brown fox")
	d, err := s.PutBytes(payload)
	if err != nil {
		t.Fatalf("PutBytes: %v", err)
	}
	if d != Sum(payload) {
		t.Fatalf("digest %s, want %s", d, Sum(payload))
	}
	got, err := s.Get(d)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("Get returned %q, want %q", got, payload)
	}
	if _, err := s.Get(Sum([]byte("absent"))); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get(absent) = %v, want ErrNotFound", err)
	}
}

// TestChunkedUploadResume covers the interrupted-upload contract: chunks land
// at the committed offset, a wrong offset is refused with the offset to
// resume from, and the finalized blob round-trips.
func TestChunkedUploadResume(t *testing.T) {
	s := open(t, Config{})
	payload := bytes.Repeat([]byte("abcdefgh"), 1000)
	d := Sum(payload)

	committed, complete, err := s.PutChunk(d, 0, bytes.NewReader(payload[:3000]), false)
	if err != nil || complete || committed != 3000 {
		t.Fatalf("chunk 1: committed=%d complete=%v err=%v", committed, complete, err)
	}

	// Simulate the client losing the response: re-sending at a stale offset is
	// refused and reports where to resume.
	_, _, err = s.PutChunk(d, 0, bytes.NewReader(payload[:3000]), false)
	var oe *OffsetError
	if !errors.As(err, &oe) || oe.Committed != 3000 {
		t.Fatalf("stale offset: err=%v, want *OffsetError{3000}", err)
	}

	// An offset probe (zero-length chunk at a sentinel offset) also answers
	// with the committed offset.
	_, _, err = s.PutChunk(d, 1<<40, bytes.NewReader(nil), false)
	if !errors.As(err, &oe) || oe.Committed != 3000 {
		t.Fatalf("probe: err=%v, want *OffsetError{3000}", err)
	}

	committed, complete, err = s.PutChunk(d, 3000, bytes.NewReader(payload[3000:]), true)
	if err != nil || !complete || committed != int64(len(payload)) {
		t.Fatalf("final chunk: committed=%d complete=%v err=%v", committed, complete, err)
	}
	got, err := s.Get(d)
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("round trip failed: err=%v", err)
	}
	if parts := partFiles(t, s); len(parts) != 0 {
		t.Fatalf("leftover part files after commit: %v", parts)
	}
}

// TestDuplicateUploadIdempotent covers the duplicate-digest contract: a
// re-upload of a committed digest is a no-op that reports completion.
func TestDuplicateUploadIdempotent(t *testing.T) {
	s := open(t, Config{})
	payload := []byte("only stored once")
	d, err := s.PutBytes(payload)
	if err != nil {
		t.Fatalf("PutBytes: %v", err)
	}
	committed, complete, err := s.PutChunk(d, 0, bytes.NewReader(payload), true)
	if err != nil || !complete || committed != int64(len(payload)) {
		t.Fatalf("duplicate upload: committed=%d complete=%v err=%v", committed, complete, err)
	}
	// Even a bogus chunk body is ignored — the blob is already committed and
	// addressed by content.
	if _, complete, err := s.PutChunk(d, 0, bytes.NewReader([]byte("garbage")), true); err != nil || !complete {
		t.Fatalf("duplicate upload with different body: complete=%v err=%v", complete, err)
	}
	if got, _ := s.Get(d); !bytes.Equal(got, payload) {
		t.Fatalf("duplicate upload corrupted the blob")
	}
	if infos := s.List(); len(infos) != 1 {
		t.Fatalf("List = %d blobs, want 1", len(infos))
	}
}

// TestDigestMismatchLeavesNoOrphan covers the finalize-integrity contract:
// content that does not hash to the declared digest is rejected and the
// aborted upload's part file is removed.
func TestDigestMismatchLeavesNoOrphan(t *testing.T) {
	s := open(t, Config{})
	declared := Sum([]byte("what the client promised"))
	_, _, err := s.PutChunk(declared, 0, bytes.NewReader([]byte("what it actually sent")), true)
	if !errors.Is(err, ErrDigestMismatch) {
		t.Fatalf("err = %v, want ErrDigestMismatch", err)
	}
	if s.Has(declared) {
		t.Fatalf("mismatched upload was committed")
	}
	if parts := partFiles(t, s); len(parts) != 0 {
		t.Fatalf("mismatched upload left orphan part files: %v", parts)
	}
	// The digest is uploadable again from scratch after the rejection.
	correct := []byte("what the client promised")
	if _, complete, err := s.PutChunk(declared, 0, bytes.NewReader(correct), true); err != nil || !complete {
		t.Fatalf("re-upload after mismatch: complete=%v err=%v", complete, err)
	}
}

func TestTooLargeAborts(t *testing.T) {
	s := open(t, Config{MaxBlobBytes: 64})
	big := bytes.Repeat([]byte("x"), 100)
	_, _, err := s.PutChunk(Sum(big), 0, bytes.NewReader(big), true)
	if !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
	if parts := partFiles(t, s); len(parts) != 0 {
		t.Fatalf("oversized upload left part files: %v", parts)
	}
}

func TestTierPlacementAndSpillToDisk(t *testing.T) {
	s := open(t, Config{MemBytes: 64})
	small := []byte("fits in the memory tier")
	dSmall, _ := s.PutBytes(small)
	big := bytes.Repeat([]byte("y"), 200)
	dBig, _ := s.PutBytes(big)

	if info, _ := s.Stat(dSmall); info.Tier != "mem" {
		t.Fatalf("small blob tier = %s, want mem", info.Tier)
	}
	if info, _ := s.Stat(dBig); info.Tier != "disk" {
		t.Fatalf("big blob tier = %s, want disk", info.Tier)
	}
	// Both tiers verify and round-trip.
	for _, tc := range []struct {
		d    string
		want []byte
	}{{dSmall, small}, {dBig, big}} {
		got, err := s.Get(tc.d)
		if err != nil || !bytes.Equal(got, tc.want) {
			t.Fatalf("Get(%s): %v", tc.d, err)
		}
	}
}

func TestWarmRestartAdoptsDiskTier(t *testing.T) {
	dir := t.TempDir()
	payload := bytes.Repeat([]byte("persist me"), 50)
	var d string
	{
		s := open(t, Config{Dir: dir, MemBytes: -1}) // disk-only
		d, _ = s.PutBytes(payload)
		// A crashed upload leaves a part file behind.
		if err := os.WriteFile(filepath.Join(dir, "sha256-dead.1234.part"), []byte("junk"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	s2 := open(t, Config{Dir: dir})
	got, err := s2.Get(d)
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("blob did not survive restart: %v", err)
	}
	if parts := partFiles(t, s2); len(parts) != 0 {
		t.Fatalf("stale part files not cleaned on Open: %v", parts)
	}
}

func TestIntegrityVerificationOnRead(t *testing.T) {
	dir := t.TempDir()
	s := open(t, Config{Dir: dir, MemBytes: -1})
	payload := []byte("bytes that will rot on disk")
	d, _ := s.PutBytes(payload)

	// Corrupt the disk-tier file behind the store's back.
	if err := os.WriteFile(filepath.Join(dir, fileName(d)), []byte("bytes that will rot on dis!"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(d); err == nil || !strings.Contains(err.Error(), "integrity") {
		t.Fatalf("Get of corrupted blob: err=%v, want integrity failure", err)
	}
}

func TestRefCountedGC(t *testing.T) {
	s := open(t, Config{MemBytes: -1})
	dPinned, _ := s.PutBytes([]byte("pinned"))
	dLoose, _ := s.PutBytes([]byte("collectable"))
	if !s.AddRef(dPinned) {
		t.Fatalf("AddRef(%s) = false", dPinned)
	}

	removed, freed := s.GC()
	if removed != 1 || freed != int64(len("collectable")) {
		t.Fatalf("GC = (%d, %d), want (1, %d)", removed, freed, len("collectable"))
	}
	if s.Has(dLoose) || !s.Has(dPinned) {
		t.Fatalf("GC removed the wrong blob")
	}

	s.Release(dPinned)
	if removed, _ := s.GC(); removed != 1 {
		t.Fatalf("GC after Release removed %d blobs, want 1", removed)
	}
}

func TestMetricsRegistered(t *testing.T) {
	reg := telemetry.NewRegistry()
	s := open(t, Config{Registry: reg})
	d, _ := s.PutBytes([]byte("metered"))
	s.PutChunk(d, 0, bytes.NewReader([]byte("metered")), true) // duplicate
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"critics_artifact_blobs 1",
		`critics_artifact_uploads_total{outcome="committed"} 1`,
		`critics_artifact_uploads_total{outcome="duplicate"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestMemoSpill(t *testing.T) {
	s := open(t, Config{})
	sp := NewMemoSpill(s)

	// Budget of 1 byte: the first value fills it, the second spills.
	m := sched.NewMemo[string](1)
	m.EnableSpill(sp,
		func(v string) ([]byte, error) { return []byte(v), nil },
		func(b []byte) (string, error) { return string(b), nil })

	k1, k2 := sched.KeyOf("a"), sched.KeyOf("b")
	cost := func(v string) int64 { return int64(len(v)) }
	m.Get(k1, func() string { return "1" }, cost)
	m.Get(k2, func() string { return "over-budget value" }, cost)

	if st := m.Stats(); st.Spilled != 1 {
		t.Fatalf("Spilled = %d, want 1: %+v", st.Spilled, st)
	}
	// The spilled value is served back without rebuilding.
	v := m.Get(k2, func() string { t.Fatal("rebuilt a spilled value"); return "" }, cost)
	if v != "over-budget value" {
		t.Fatalf("spill round trip returned %q", v)
	}
	if st := m.Stats(); st.SpillHits != 1 {
		t.Fatalf("SpillHits = %d, want 1: %+v", st.SpillHits, st)
	}
	// Spilled blobs are pinned against GC while indexed.
	if removed, _ := s.GC(); removed != 0 {
		t.Fatalf("GC removed %d pinned spill blobs", removed)
	}
}

// TestIngestBoundedMemory asserts the streaming-write contract: committing a
// chunk runs at O(copy-buffer) allocations regardless of chunk size — the
// ingest path never buffers a blob.
func TestIngestBoundedMemory(t *testing.T) {
	s := open(t, Config{MemBytes: -1}) // disk tier only: no commit-time read-back
	chunk := bytes.Repeat([]byte("z"), 4<<20)
	r := bytes.NewReader(nil)

	var digests []string
	for i := 0; i < 6; i++ {
		chunk[0] = byte('a' + i) // distinct content per round
		digests = append(digests, Sum(chunk))
	}
	i := 0
	allocs := testing.AllocsPerRun(5, func() {
		r.Reset(chunk)
		chunk[0] = byte('a' + i)
		if _, _, err := s.PutChunk(digests[i], 0, r, true); err != nil {
			t.Fatalf("PutChunk: %v", err)
		}
		i++
	})
	// A 4 MiB ingest at ~64 allocations means no proportional buffering
	// (buffering would cost thousands of page-sized allocations); the budget
	// leaves room for the temp-file create, hash state and catalog entry.
	if allocs > 200 {
		t.Fatalf("PutChunk of a 4 MiB blob cost %.0f allocations; ingest path is buffering", allocs)
	}
}

func TestSumReader(t *testing.T) {
	payload := []byte("stream me")
	d, n, err := SumReader(bytes.NewReader(payload))
	if err != nil || n != int64(len(payload)) || d != Sum(payload) {
		t.Fatalf("SumReader = (%s, %d, %v)", d, n, err)
	}
}

func TestListAndStat(t *testing.T) {
	s := open(t, Config{})
	d1, _ := s.PutBytes([]byte("one"))
	d2, _ := s.PutBytes([]byte("two"))
	infos := s.List()
	if len(infos) != 2 {
		t.Fatalf("List = %d entries, want 2", len(infos))
	}
	if infos[0].Digest > infos[1].Digest {
		t.Fatalf("List not sorted by digest")
	}
	for _, d := range []string{d1, d2} {
		info, ok := s.Stat(d)
		if !ok || info.Size != 3 {
			t.Fatalf("Stat(%s) = (%+v, %v)", d, info, ok)
		}
	}
	if _, ok := s.Stat(Sum([]byte("absent"))); ok {
		t.Fatalf("Stat of absent digest reported ok")
	}
}

func TestOpenStreams(t *testing.T) {
	s := open(t, Config{})
	payload := bytes.Repeat([]byte("streamable"), 100)
	d, _ := s.PutBytes(payload)
	r, size, err := s.Open(d)
	if err != nil || size != int64(len(payload)) {
		t.Fatalf("Open: size=%d err=%v", size, err)
	}
	defer r.Close()
	got, err := io.ReadAll(r)
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("streamed read: %v", err)
	}
}
