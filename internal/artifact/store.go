// Package artifact is the content-addressed artifact store behind criticd's
// binary-scanning service and the fleet's blob plumbing: every byte payload
// (uploaded binary images, scan traces, spilled memo values, archived profile
// sketches) is addressed by the SHA-256 digest of its content and stored
// exactly once.
//
// Properties:
//
//   - Content addressing: a blob's name is "sha256:<hex>"; identical content
//     is deduplicated by construction, and re-uploading a committed digest is
//     an idempotent no-op.
//   - Streaming chunked writes: uploads stream through a running hash into a
//     .part file in bounded memory — the ingest path never buffers a whole
//     blob — and support resuming at the committed offset after an
//     interruption (a write at any other offset is refused with the offset
//     to resume from).
//   - Integrity: the final chunk's commit verifies the computed digest
//     against the declared one; a mismatch aborts the upload and removes the
//     .part file, leaving no orphan. Reads re-verify: Open returns a reader
//     that hashes the bytes it hands out and fails at EOF on corruption.
//   - Tiering: committed blobs live in a size-bounded in-memory tier while
//     it has room and spill to disk otherwise; a process restart re-adopts
//     the disk tier (the warm-cache story for recycled workers).
//   - Ref-counted GC: consumers pin blobs with AddRef/Release; GC removes
//     only unreferenced ones.
//
// The store also implements sched.SpillStore (spill.go), so memo caches can
// push over-budget values through the same tiering instead of dropping them.
package artifact

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"hash"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"critics/internal/telemetry"
)

// Prefix is the digest scheme tag every artifact name carries.
const Prefix = "sha256:"

// Sum returns the content digest of b in canonical "sha256:<hex>" form.
func Sum(b []byte) string {
	h := sha256.Sum256(b)
	return Prefix + hex.EncodeToString(h[:])
}

// SumReader streams r through the digest function and returns the canonical
// digest plus the byte count, in bounded memory.
func SumReader(r io.Reader) (digest string, n int64, err error) {
	h := sha256.New()
	n, err = io.Copy(h, r)
	if err != nil {
		return "", n, err
	}
	return Prefix + hex.EncodeToString(h.Sum(nil)), n, nil
}

// Validate checks that d is a well-formed "sha256:<64 lowercase hex>" digest.
func Validate(d string) error {
	hexPart, ok := strings.CutPrefix(d, Prefix)
	if !ok {
		return fmt.Errorf("artifact: digest %q must start with %q", d, Prefix)
	}
	if len(hexPart) != sha256.Size*2 {
		return fmt.Errorf("artifact: digest %q must carry %d hex characters", d, sha256.Size*2)
	}
	for _, c := range hexPart {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return fmt.Errorf("artifact: digest %q contains non-hex character %q", d, c)
		}
	}
	return nil
}

// fileName maps a digest to its on-disk blob name ("sha256-<hex>": colon-free
// so the layout is portable).
func fileName(d string) string { return "sha256-" + strings.TrimPrefix(d, Prefix) }

// digestOfFile inverts fileName, reporting ok=false for non-blob names.
func digestOfFile(name string) (string, bool) {
	hexPart, ok := strings.CutPrefix(name, "sha256-")
	if !ok || len(hexPart) != sha256.Size*2 {
		return "", false
	}
	return Prefix + hexPart, true
}

// Config tunes a Store. Dir is required; the rest defaults.
type Config struct {
	// Dir is the disk tier root. Created if absent; existing blobs in it are
	// adopted (a recycled worker restarts warm).
	Dir string

	// MemBytes bounds the in-memory tier. Blobs larger than the remaining
	// room stay on disk. Default 16 MiB; negative disables the memory tier.
	MemBytes int64

	// MaxBlobBytes caps a single blob. An upload that grows past it is
	// aborted (part file removed) and refused with ErrTooLarge — the 413 the
	// serving layer documents. Default 256 MiB.
	MaxBlobBytes int64

	// Registry receives the critics_artifact_* metric families; nil disables
	// them.
	Registry *telemetry.Registry
}

// Info is one committed blob's catalog entry.
type Info struct {
	Digest string `json:"digest"`
	Size   int64  `json:"size"`
	Refs   int    `json:"refs"`
	Tier   string `json:"tier"` // "mem" or "disk"
}

// blob is one committed artifact: exactly one of mem/path is set.
type blob struct {
	size int64
	refs int
	mem  []byte // in-memory tier
	path string // disk tier
}

// upload is one in-progress chunked write: a part file plus the running
// hash over everything committed so far. chunk appends are serialized by mu
// so a concurrent duplicate PUT cannot interleave bytes.
type upload struct {
	mu        sync.Mutex
	f         *os.File
	path      string
	h         hash.Hash
	committed int64
}

// Store is a content-addressed blob store. Construct with Open.
type Store struct {
	cfg Config

	mu      sync.Mutex
	blobs   map[string]*blob
	uploads map[string]*upload
	memUsed int64

	// metrics (nil without a registry)
	blobsG   *telemetry.Gauge
	memG     *telemetry.Gauge
	diskG    *telemetry.Gauge
	uploads_ func(outcome string) *telemetry.Counter
	gcTotal  *telemetry.Counter
	verifyF  *telemetry.Counter
}

// Open creates (or adopts) a store rooted at cfg.Dir: the directory is
// created if needed, committed blobs already in it join the disk tier with
// zero refs, and stale .part files from a crashed upload are removed.
func Open(cfg Config) (*Store, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("artifact: Config.Dir is required")
	}
	if cfg.MemBytes == 0 {
		cfg.MemBytes = 16 << 20
	}
	if cfg.MemBytes < 0 {
		cfg.MemBytes = 0
	}
	if cfg.MaxBlobBytes <= 0 {
		cfg.MaxBlobBytes = 256 << 20
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("artifact: %w", err)
	}
	s := &Store{cfg: cfg, blobs: map[string]*blob{}, uploads: map[string]*upload{}}
	if reg := cfg.Registry; reg != nil {
		s.blobsG = reg.Gauge("critics_artifact_blobs", "Committed blobs in the artifact store.")
		s.memG = reg.Gauge("critics_artifact_bytes", "Committed artifact bytes by tier.", telemetry.L("tier", "mem"))
		s.diskG = reg.Gauge("critics_artifact_bytes", "Committed artifact bytes by tier.", telemetry.L("tier", "disk"))
		s.uploads_ = func(outcome string) *telemetry.Counter {
			return reg.Counter("critics_artifact_uploads_total",
				"Upload finalizations by outcome: committed, duplicate (idempotent re-upload), mismatch (digest check failed).",
				telemetry.L("outcome", outcome))
		}
		s.gcTotal = reg.Counter("critics_artifact_gc_removed_total", "Unreferenced blobs removed by GC.")
		s.verifyF = reg.Counter("critics_artifact_verify_failures_total",
			"Reads whose content failed digest verification.")
	}
	entries, err := os.ReadDir(cfg.Dir)
	if err != nil {
		return nil, fmt.Errorf("artifact: %w", err)
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if strings.HasSuffix(e.Name(), ".part") {
			_ = os.Remove(filepath.Join(cfg.Dir, e.Name()))
			continue
		}
		d, ok := digestOfFile(e.Name())
		if !ok {
			continue
		}
		fi, err := e.Info()
		if err != nil {
			continue
		}
		s.blobs[d] = &blob{size: fi.Size(), path: filepath.Join(cfg.Dir, e.Name())}
	}
	s.updateGauges()
	return s, nil
}

// Dir returns the store's disk-tier root.
func (s *Store) Dir() string { return s.cfg.Dir }

// MaxBlobBytes returns the per-blob size cap (the documented 413 limit).
func (s *Store) MaxBlobBytes() int64 { return s.cfg.MaxBlobBytes }

// updateGauges refreshes the catalog gauges; callers hold s.mu or have
// exclusive access.
func (s *Store) updateGauges() {
	if s.blobsG == nil {
		return
	}
	var mem, disk int64
	for _, b := range s.blobs {
		if b.mem != nil {
			mem += b.size
		} else {
			disk += b.size
		}
	}
	s.blobsG.Set(int64(len(s.blobs)))
	s.memG.Set(mem)
	s.diskG.Set(disk)
}

// OffsetError refuses a chunk written at the wrong position and carries the
// committed offset the client must resume from.
type OffsetError struct {
	Committed int64
}

func (e *OffsetError) Error() string {
	return fmt.Sprintf("artifact: upload offset mismatch; resume at %d", e.Committed)
}

// Sentinel errors of the store API.
var (
	ErrNotFound       = fmt.Errorf("artifact: not found")
	ErrTooLarge       = fmt.Errorf("artifact: blob exceeds the size limit")
	ErrDigestMismatch = fmt.Errorf("artifact: content does not match the declared digest")
)

// PutChunk appends one chunk of the blob named digest at the given offset,
// finalizing the upload when final is set. It returns the committed offset
// after the write and whether the blob is now complete.
//
// Semantics (the chunked-upload contract the HTTP layer exposes):
//
//   - digest already committed: idempotent no-op — chunk is not consumed,
//     complete=true.
//   - offset != committed offset: *OffsetError carrying where to resume;
//     nothing is written (an interrupted upload retries its last chunk or
//     asks to learn the offset by sending a zero-length non-final chunk at
//     an arbitrary position... which also answers *OffsetError).
//   - growth past MaxBlobBytes: the upload is aborted (part file removed)
//     and ErrTooLarge returned.
//   - final with a content hash that does not match digest: the upload is
//     aborted (part file removed — no orphan) and ErrDigestMismatch
//     returned.
func (s *Store) PutChunk(digest string, offset int64, chunk io.Reader, final bool) (committed int64, complete bool, err error) {
	if err := Validate(digest); err != nil {
		return 0, false, err
	}
	s.mu.Lock()
	if b, ok := s.blobs[digest]; ok {
		s.mu.Unlock()
		if s.uploads_ != nil {
			s.uploads_("duplicate").Inc()
		}
		return b.size, true, nil
	}
	up, ok := s.uploads[digest]
	if !ok {
		f, err := os.CreateTemp(s.cfg.Dir, fileName(digest)+".*.part")
		if err != nil {
			s.mu.Unlock()
			return 0, false, fmt.Errorf("artifact: %w", err)
		}
		up = &upload{f: f, path: f.Name(), h: sha256.New()}
		s.uploads[digest] = up
	}
	s.mu.Unlock()

	up.mu.Lock()
	defer up.mu.Unlock()
	if up.f == nil {
		// The upload was aborted or finalized by a concurrent chunk while we
		// waited; re-resolve through the catalog.
		if b, ok := s.get(digest); ok {
			return b.size, true, nil
		}
		return 0, false, fmt.Errorf("artifact: upload of %s was aborted; restart from offset 0", digest)
	}
	if offset != up.committed {
		return up.committed, false, &OffsetError{Committed: up.committed}
	}
	n, err := io.Copy(io.MultiWriter(up.f, up.h), io.LimitReader(chunk, s.cfg.MaxBlobBytes-up.committed+1))
	if err != nil {
		// A torn chunk write leaves the part file longer than the hashed
		// prefix would be re-derivable from; abort so the client restarts.
		s.abortLocked(digest, up)
		return 0, false, fmt.Errorf("artifact: writing chunk: %w", err)
	}
	up.committed += n
	if up.committed > s.cfg.MaxBlobBytes {
		s.abortLocked(digest, up)
		return 0, false, fmt.Errorf("%w (%d bytes max)", ErrTooLarge, s.cfg.MaxBlobBytes)
	}
	if !final {
		return up.committed, false, nil
	}
	got := Prefix + hex.EncodeToString(up.h.Sum(nil))
	if got != digest {
		s.abortLocked(digest, up)
		if s.uploads_ != nil {
			s.uploads_("mismatch").Inc()
		}
		return 0, false, fmt.Errorf("%w: declared %s, content is %s", ErrDigestMismatch, digest, got)
	}
	return up.committed, true, s.commitLocked(digest, up)
}

// abortLocked tears an upload down (part file removed). Callers hold up.mu.
func (s *Store) abortLocked(digest string, up *upload) {
	up.f.Close()
	_ = os.Remove(up.path)
	up.f = nil
	s.mu.Lock()
	delete(s.uploads, digest)
	s.mu.Unlock()
}

// commitLocked promotes a fully-verified upload into the catalog: into the
// memory tier when it fits the budget (part file removed), renamed to its
// final blob name otherwise. Callers hold up.mu.
func (s *Store) commitLocked(digest string, up *upload) error {
	size := up.committed
	if err := up.f.Close(); err != nil {
		_ = os.Remove(up.path)
		return fmt.Errorf("artifact: %w", err)
	}
	up.f = nil

	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.uploads, digest)
	if _, ok := s.blobs[digest]; ok {
		// A concurrent path (PutBytes) committed the same content first;
		// content addressing makes that a no-op.
		_ = os.Remove(up.path)
		return nil
	}
	b := &blob{size: size}
	if s.cfg.MemBytes > 0 && size <= s.cfg.MemBytes-s.memUsed {
		data, err := os.ReadFile(up.path)
		if err == nil && int64(len(data)) == size {
			b.mem = data
			s.memUsed += size
			_ = os.Remove(up.path)
		}
	}
	if b.mem == nil {
		final := filepath.Join(s.cfg.Dir, fileName(digest))
		if err := os.Rename(up.path, final); err != nil {
			_ = os.Remove(up.path)
			return fmt.Errorf("artifact: %w", err)
		}
		b.path = final
	}
	s.blobs[digest] = b
	if s.uploads_ != nil {
		s.uploads_("committed").Inc()
	}
	s.updateGauges()
	return nil
}

// PutBytes stores an in-memory payload and returns its digest — the
// convenience path for small blobs (spilled memo values, archived sketches).
func (s *Store) PutBytes(data []byte) (string, error) {
	d := Sum(data)
	if _, ok := s.get(d); ok {
		return d, nil
	}
	_, _, err := s.PutChunk(d, 0, bytes.NewReader(data), true)
	return d, err
}

func (s *Store) get(digest string) (*blob, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.blobs[digest]
	return b, ok
}

// Has reports whether the blob is committed.
func (s *Store) Has(digest string) bool {
	_, ok := s.get(digest)
	return ok
}

// verifyReader hashes everything it hands out and fails the read that
// reaches EOF if the content does not match the digest — corruption on the
// disk tier surfaces as an error, never as silently wrong bytes.
type verifyReader struct {
	r      io.ReadCloser
	h      hash.Hash
	digest string
	store  *Store
	done   bool
}

func (v *verifyReader) Read(p []byte) (int, error) {
	n, err := v.r.Read(p)
	if n > 0 {
		v.h.Write(p[:n])
	}
	if err == io.EOF && !v.done {
		v.done = true
		if got := Prefix + hex.EncodeToString(v.h.Sum(nil)); got != v.digest {
			if v.store.verifyF != nil {
				v.store.verifyF.Inc()
			}
			return n, fmt.Errorf("artifact: %s failed integrity verification (content is %s)", v.digest, got)
		}
	}
	return n, err
}

func (v *verifyReader) Close() error { return v.r.Close() }

// Open returns a streaming, integrity-verified reader over a committed blob
// plus its size. The caller owns closing it.
func (s *Store) Open(digest string) (io.ReadCloser, int64, error) {
	b, ok := s.get(digest)
	if !ok {
		return nil, 0, fmt.Errorf("%w: %s", ErrNotFound, digest)
	}
	var r io.ReadCloser
	if b.mem != nil {
		r = io.NopCloser(bytes.NewReader(b.mem))
	} else {
		f, err := os.Open(b.path)
		if err != nil {
			return nil, 0, fmt.Errorf("artifact: %w", err)
		}
		r = f
	}
	return &verifyReader{r: r, h: sha256.New(), digest: digest, store: s}, b.size, nil
}

// Get reads a committed blob whole (verified).
func (s *Store) Get(digest string) ([]byte, error) {
	r, size, err := s.Open(digest)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	data := make([]byte, 0, size)
	buf := bytes.NewBuffer(data)
	if _, err := io.Copy(buf, r); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// AddRef pins a committed blob against GC.
func (s *Store) AddRef(digest string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.blobs[digest]
	if ok {
		b.refs++
	}
	return ok
}

// Release undoes one AddRef.
func (s *Store) Release(digest string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if b, ok := s.blobs[digest]; ok && b.refs > 0 {
		b.refs--
	}
}

// GC removes every committed blob with zero references and reports how many
// blobs and bytes it freed. In-progress uploads are untouched.
func (s *Store) GC() (removed int, freed int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for d, b := range s.blobs {
		if b.refs > 0 {
			continue
		}
		if b.mem != nil {
			s.memUsed -= b.size
		} else {
			_ = os.Remove(b.path)
		}
		delete(s.blobs, d)
		removed++
		freed += b.size
	}
	if s.gcTotal != nil {
		s.gcTotal.Add(int64(removed))
	}
	s.updateGauges()
	return removed, freed
}

// Stat returns one blob's catalog entry.
func (s *Store) Stat(digest string) (Info, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.blobs[digest]
	if !ok {
		return Info{}, false
	}
	return infoOf(digest, b), true
}

// List returns the committed catalog sorted by digest.
func (s *Store) List() []Info {
	s.mu.Lock()
	out := make([]Info, 0, len(s.blobs))
	for d, b := range s.blobs {
		out = append(out, infoOf(d, b))
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Digest < out[j].Digest })
	return out
}

func infoOf(d string, b *blob) Info {
	tier := "disk"
	if b.mem != nil {
		tier = "mem"
	}
	return Info{Digest: d, Size: b.size, Refs: b.refs, Tier: tier}
}
