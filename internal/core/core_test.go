package core

import (
	"encoding/json"
	"testing"

	"critics/internal/prog"
	"critics/internal/trace"
	"critics/internal/workload"
)

func appWindows(t *testing.T, name string, n, length int) (*prog.Program, []trace.Window) {
	t.Helper()
	a, ok := workload.FindApp(name)
	if !ok {
		t.Fatalf("app %s not in catalog", name)
	}
	p := workload.Generate(a.Params)
	ws := trace.Collect(p, a.Params.Seed, trace.SamplePlan{Samples: n, Length: length, Gap: 2000, Warmup: 5000})
	return p, ws
}

func TestBuildProfileFindsChains(t *testing.T) {
	p, ws := appWindows(t, "acrobat", 5, 10_000)
	prof := BuildProfile(p, ws, DefaultConfig())
	if prof.TotalDyn != 50_000 {
		t.Errorf("TotalDyn = %d", prof.TotalDyn)
	}
	if prof.UniqueChains() == 0 {
		t.Fatal("no chain candidates found")
	}
	sel := prof.Selected()
	if len(sel) == 0 {
		t.Fatal("no chains selected")
	}
	if prof.SelectedCoverage <= 0.01 {
		t.Errorf("selected coverage %.4f too low", prof.SelectedCoverage)
	}
	for _, e := range sel {
		if e.AvgFanout < DefaultConfig().AvgFanoutThreshold {
			t.Errorf("selected chain %v below threshold: %.2f", e.Key, e.AvgFanout)
		}
		if e.Length < 2 || e.Length > DefaultConfig().MaxLen {
			t.Errorf("selected chain length %d out of range", e.Length)
		}
		if !e.ThumbOK {
			t.Errorf("selected chain %v not Thumb-representable under RequireThumb", e.Key)
		}
	}
}

func TestProfileDeterministic(t *testing.T) {
	p, ws := appWindows(t, "maps", 3, 8_000)
	a := BuildProfile(p, ws, DefaultConfig())
	b := BuildProfile(p, ws, DefaultConfig())
	if len(a.Entries) != len(b.Entries) {
		t.Fatal("entry counts differ")
	}
	for i := range a.Entries {
		if a.Entries[i] != b.Entries[i] {
			t.Fatalf("entry %d differs", i)
		}
	}
}

func TestSelectionNoOverlap(t *testing.T) {
	p, ws := appWindows(t, "office", 4, 10_000)
	prof := BuildProfile(p, ws, DefaultConfig())
	used := map[[3]int]bool{}
	for _, e := range prof.Selected() {
		for i := uint8(0); i < e.Key.N; i++ {
			k := [3]int{int(e.Key.Func), int(e.Key.Block), int(e.Key.Idx[i])}
			if used[k] {
				t.Fatalf("static instruction %v selected twice", k)
			}
			used[k] = true
		}
	}
}

func TestSelectionRankedByCoverage(t *testing.T) {
	p, ws := appWindows(t, "email", 4, 10_000)
	prof := BuildProfile(p, ws, DefaultConfig())
	for i := 1; i < len(prof.Entries); i++ {
		if prof.Entries[i-1].DynInstrs() < prof.Entries[i].DynInstrs() {
			t.Fatal("entries not ranked by dynamic coverage")
		}
	}
}

func TestThumbRepresentableFracHigh(t *testing.T) {
	// The paper reports ~95.5% of unique CritIC sequences representable;
	// our generator poisons ~5% of chains.
	p, ws := appWindows(t, "acrobat", 5, 10_000)
	prof := BuildProfile(p, ws, DefaultConfig())
	frac := prof.ThumbRepresentableFrac()
	if frac < 0.80 || frac > 1.0 {
		t.Errorf("Thumb-representable fraction %.3f; expected close to 0.955", frac)
	}
}

func TestRequireThumbFiltering(t *testing.T) {
	p, ws := appWindows(t, "browser", 4, 10_000)
	cfg := DefaultConfig()
	cfg.RequireThumb = false
	ideal := BuildProfile(p, ws, cfg)
	nonThumbSelected := 0
	for _, e := range ideal.Selected() {
		if !e.ThumbOK {
			nonThumbSelected++
		}
	}
	// CritIC.Ideal may select non-representable chains; the constrained
	// profile must not (checked in TestBuildProfileFindsChains). Here we
	// only require that relaxing the constraint never reduces coverage.
	cfg.RequireThumb = true
	real := BuildProfile(p, ws, cfg)
	if ideal.SelectedCoverage < real.SelectedCoverage {
		t.Errorf("ideal coverage %.4f < constrained %.4f", ideal.SelectedCoverage, real.SelectedCoverage)
	}
}

func TestMaxLenCap(t *testing.T) {
	p, ws := appWindows(t, "maps", 3, 8_000)
	cfg := DefaultConfig()
	cfg.MaxLen = 3
	prof := BuildProfile(p, ws, cfg)
	for _, e := range prof.Entries {
		if e.Length > 3 {
			t.Fatalf("entry length %d exceeds cap", e.Length)
		}
	}
}

func TestCoverageCDF(t *testing.T) {
	p, ws := appWindows(t, "acrobat", 4, 10_000)
	prof := BuildProfile(p, ws, DefaultConfig())
	all, thumb := prof.CoverageCDF()
	if all.At(float64(prof.UniqueChains())) != 1.0 {
		t.Error("full CDF does not reach 1")
	}
	// Thumb curve accounts for at most all the mass.
	pts := thumb.Points(10)
	if len(pts) == 0 {
		t.Fatal("thumb CDF empty")
	}
}

func TestProfileJSONRoundTrip(t *testing.T) {
	p, ws := appWindows(t, "music", 3, 6_000)
	prof := BuildProfile(p, ws, DefaultConfig())
	data, err := json.Marshal(prof)
	if err != nil {
		t.Fatal(err)
	}
	var back Profile
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.App != prof.App || back.TotalDyn != prof.TotalDyn || len(back.Entries) != len(prof.Entries) {
		t.Fatal("round trip lost top-level fields")
	}
	for i := range prof.Entries {
		if prof.Entries[i] != back.Entries[i] {
			t.Fatalf("entry %d: %+v != %+v", i, prof.Entries[i], back.Entries[i])
		}
	}
}

func TestChainKeyString(t *testing.T) {
	k := ChainKey{Func: 3, Block: 2, N: 3, Idx: [MaxChainLen]uint8{5, 7, 9}}
	if got := k.String(); got != "f3.b2[5,7,9]" {
		t.Errorf("String() = %q", got)
	}
}

func TestProfilingSubsetReducesCoverage(t *testing.T) {
	// Fig. 12b mechanism: profiling fewer windows finds fewer chains.
	p, ws := appWindows(t, "acrobat", 8, 8_000)
	full := BuildProfile(p, ws, DefaultConfig())
	part := BuildProfile(p, ws[:2], DefaultConfig())
	if part.UniqueChains() > full.UniqueChains() {
		t.Errorf("subset found more chains (%d) than full (%d)", part.UniqueChains(), full.UniqueChains())
	}
}
