// Package core implements the paper's primary contribution: identification
// of Critical Instruction Chains (CritICs) from profiled execution.
//
// The pipeline mirrors §III of the paper:
//
//  1. Sampled dynamic windows (internal/trace) are analyzed for
//     self-contained instruction chains (internal/dfg) restricted to single
//     basic-block instances, the form the compiler can hoist.
//  2. Each dynamic chain is mapped to its *static* identity — the (function,
//     block, member positions) tuple — and occurrence counts are aggregated
//     (the paper used a Spark PairRDD job for this step at 100s-of-GB trace
//     scale; in-process maps suffice here).
//  3. Chains whose average fanout per instruction meets the criticality
//     threshold (8) become CritIC candidates; candidates are ranked by
//     dynamic coverage and selected greedily, skipping chains that overlap
//     already-selected static instructions and (optionally) chains that
//     fail the all-or-nothing 16-bit representability rule.
//
// The resulting Profile is what the compiler pass (internal/compiler)
// consumes.
package core

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"

	"critics/internal/dfg"
	"critics/internal/encoding"
	"critics/internal/prog"
	"critics/internal/sched"
	"critics/internal/stats"
	"critics/internal/trace"
)

// MaxChainLen is the longest chain the profile records; the CDP run-length
// encoding supports up to isa.CDPMaxRun, and the paper finds length 5
// optimal (§IV-H).
const MaxChainLen = 8

// Config controls profiling and CritIC selection.
type Config struct {
	// AvgFanoutThreshold is the chain criticality cutoff (paper: 8).
	AvgFanoutThreshold float64

	// MaxLen caps selected chain length (paper: 5; up to MaxChainLen).
	MaxLen int

	// MinLen is the shortest chain worth optimizing (2).
	MinLen int

	// FanoutWindow for fanout counting (ROB size).
	FanoutWindow int

	// ChunkSize for chain extraction.
	ChunkSize int

	// CoverageTarget stops selection once this fraction of the profiled
	// dynamic stream is covered (paper: ~30% of dynamic coverage from a
	// ~10KB profile). 0 means no limit.
	CoverageTarget float64

	// MaxEntries caps the number of selected chains (profile size). 0
	// means no limit.
	MaxEntries int

	// RequireThumb drops chains that fail the all-or-nothing 16-bit rule
	// during *selection*. The CritIC.Ideal configuration keeps them
	// (hypothetically converting everything, Fig. 5b / §IV-D).
	RequireThumb bool

	// Workers bounds the worker pool used to extract chains from the
	// profiled windows in parallel. 0 or 1 keeps the serial reference
	// schedule. The profile is bit-identical for every value: windows are
	// extracted independently and merged in window index order.
	Workers int

	// Ctx, when non-nil, lets callers cancel profiling: window extraction
	// stops dispatching once the context is done. A profile built under a
	// cancelled context is partial — callers must check the context and
	// discard it (internal/exp does, and never retains such builds in its
	// memo caches).
	Ctx context.Context
}

// DefaultConfig returns the paper's operating point.
func DefaultConfig() Config {
	return Config{
		AvgFanoutThreshold: 8,
		MaxLen:             5,
		MinLen:             2,
		FanoutWindow:       128,
		ChunkSize:          1024,
		CoverageTarget:     0.5,
		MaxEntries:         4096,
		RequireThumb:       true,
	}
}

// ChainKey names a static chain: a block plus the member positions within
// it. It is comparable and compact (supports blocks up to 256 instructions
// and chains up to MaxChainLen members).
type ChainKey struct {
	Func  uint16
	Block uint16
	N     uint8
	Idx   [MaxChainLen]uint8
}

// String implements fmt.Stringer for ChainKey.
func (k ChainKey) String() string {
	s := fmt.Sprintf("f%d.b%d[", k.Func, k.Block)
	for i := uint8(0); i < k.N; i++ {
		if i > 0 {
			s += ","
		}
		s += fmt.Sprintf("%d", k.Idx[i])
	}
	return s + "]"
}

// Entry is one profiled chain.
type Entry struct {
	Key       ChainKey
	Length    int
	DynCount  int64   // dynamic occurrences observed
	AvgFanout float64 // occurrence-weighted mean of the chain criticality metric
	ThumbOK   bool    // all members pass the all-or-nothing 16-bit test
	Selected  bool    // chosen as a CritIC for optimization
}

// DynInstrs returns the number of dynamic instructions the chain accounted
// for in the profiled stream.
func (e *Entry) DynInstrs() int64 { return e.DynCount * int64(e.Length) }

// Profile is the CritIC profile for one program: every chain candidate that
// met the criticality threshold, with the selected subset marked.
type Profile struct {
	App      string
	TotalDyn int64 // dynamic instructions profiled
	Entries  []Entry

	// SelectedCoverage is the fraction of the profiled stream covered by
	// selected chains.
	SelectedCoverage float64
}

// Selected returns the selected entries in rank order.
func (p *Profile) Selected() []Entry {
	out := make([]Entry, 0, len(p.Entries))
	for _, e := range p.Entries {
		if e.Selected {
			out = append(out, e)
		}
	}
	return out
}

// BuildProfile profiles the windows of program pr and returns the CritIC
// profile under cfg.
func BuildProfile(pr *prog.Program, windows []trace.Window, cfg Config) *Profile {
	if cfg.MaxLen <= 0 || cfg.MaxLen > MaxChainLen {
		cfg.MaxLen = MaxChainLen
	}
	if cfg.MinLen < 2 {
		cfg.MinLen = 2
	}
	type acc struct {
		count     int64
		fanoutSum float64
	}
	agg := make(map[ChainKey]*acc)
	var totalDyn int64

	opt := dfg.Options{
		ChunkSize:    cfg.ChunkSize,
		FanoutWindow: cfg.FanoutWindow,
		SameBlock:    true,
		MaxLen:       cfg.MaxLen,
		MinLen:       cfg.MinLen,
	}
	// Chain extraction is independent per window, so it is sharded over the
	// worker pool; the order-sensitive reduction below (map updates and
	// float accumulation into fanoutSum) runs serially in window index
	// order, keeping the profile bit-identical for every worker count.
	perWindow := make([][]dfg.Chain, len(windows))
	pool := sched.NewPool(max(cfg.Workers, 1)).Named("profile")
	if cfg.Ctx != nil {
		pool.WithContext(cfg.Ctx)
	}
	pool.Map(len(windows), func(i int) {
		perWindow[i] = dfg.Extract(windows[i].Dyns, opt)
	})
	for wi, w := range windows {
		totalDyn += int64(len(w.Dyns))
		chains := perWindow[wi]
		for i := range chains {
			c := &chains[i]
			if c.AvgFanout() < cfg.AvgFanoutThreshold {
				continue
			}
			key, ok := keyOf(w.Dyns, c)
			if !ok {
				continue
			}
			a := agg[key]
			if a == nil {
				a = &acc{}
				agg[key] = a
			}
			a.count++
			a.fanoutSum += c.AvgFanout()
		}
	}

	p := &Profile{App: pr.Name, TotalDyn: totalDyn}
	for key, a := range agg {
		e := Entry{
			Key:       key,
			Length:    int(key.N),
			DynCount:  a.count,
			AvgFanout: a.fanoutSum / float64(a.count),
			ThumbOK:   ChainThumbOK(pr, key),
		}
		p.Entries = append(p.Entries, e)
	}
	p.Rank()
	selectEntries(p, cfg)
	return p
}

// Rank sorts the entries by dynamic coverage, ties broken deterministically
// by key — the order selection walks. BuildProfile ranks automatically;
// callers assembling a Profile from external data (e.g. a fleet consensus
// sketch) rank before Select.
func (p *Profile) Rank() {
	sort.Slice(p.Entries, func(i, j int) bool {
		a, b := &p.Entries[i], &p.Entries[j]
		if ai, bi := a.DynInstrs(), b.DynInstrs(); ai != bi {
			return ai > bi
		}
		return LessKey(a.Key, b.Key)
	})
}

// Select re-runs CritIC selection over already-ranked entries under cfg,
// clearing any previous selection first. BuildProfile selects automatically;
// this entry point lets callers re-select an existing profile under a
// different policy (candidate generations of the fleet optimizer).
func (p *Profile) Select(cfg Config) {
	for i := range p.Entries {
		p.Entries[i].Selected = false
	}
	p.SelectedCoverage = 0
	selectEntries(p, cfg)
}

// keyOf maps a dynamic chain to its static key. Returns ok=false if the
// chain exceeds the key capacity (block index or position out of range).
func keyOf(dyns []trace.Dyn, c *dfg.Chain) (ChainKey, bool) {
	first := dyns[c.Members[0]]
	var k ChainKey
	if first.ID.Func > 0xFFFF || first.ID.Block > 0xFFFF {
		return k, false
	}
	k.Func = uint16(first.ID.Func)
	k.Block = uint16(first.ID.Block)
	if len(c.Members) > MaxChainLen {
		return k, false
	}
	k.N = uint8(len(c.Members))
	for i, m := range c.Members {
		idx := dyns[m].ID.Index
		if idx > 255 {
			return k, false
		}
		k.Idx[i] = uint8(idx)
	}
	return k, true
}

// LessKey is a deterministic total order on keys — the canonical order of
// every serialized key list (profile JSON entries keep rank order; sketch
// wire forms sort by it).
func LessKey(a, b ChainKey) bool {
	if a.Func != b.Func {
		return a.Func < b.Func
	}
	if a.Block != b.Block {
		return a.Block < b.Block
	}
	if a.N != b.N {
		return a.N < b.N
	}
	for i := uint8(0); i < a.N; i++ {
		if a.Idx[i] != b.Idx[i] {
			return a.Idx[i] < b.Idx[i]
		}
	}
	return false
}

// ChainThumbOK applies the all-or-nothing rule: every member must be
// emittable as a single T16 halfword (footnote 1 of the paper).
func ChainThumbOK(pr *prog.Program, k ChainKey) bool {
	for i := uint8(0); i < k.N; i++ {
		in := pr.At(prog.InstID{Func: int(k.Func), Block: int(k.Block), Index: int(k.Idx[i])})
		if !encoding.Representable(in.Inst) {
			return false
		}
	}
	return true
}

// selectEntries marks the selected subset: greedy by rank, skipping chains
// that share static instructions with already-selected chains (the compiler
// can hoist each instruction into at most one chain), honoring the coverage
// target, entry cap and the all-or-nothing rule when required.
func selectEntries(p *Profile, cfg Config) {
	used := make(map[[3]uint16]bool) // (func, block, index)
	var covered int64
	selected := 0
	for i := range p.Entries {
		e := &p.Entries[i]
		if cfg.RequireThumb && !e.ThumbOK {
			continue
		}
		if cfg.MaxEntries > 0 && selected >= cfg.MaxEntries {
			break
		}
		if cfg.CoverageTarget > 0 && p.TotalDyn > 0 &&
			float64(covered)/float64(p.TotalDyn) >= cfg.CoverageTarget {
			break
		}
		overlap := false
		for j := uint8(0); j < e.Key.N; j++ {
			if used[[3]uint16{e.Key.Func, e.Key.Block, uint16(e.Key.Idx[j])}] {
				overlap = true
				break
			}
		}
		if overlap {
			continue
		}
		for j := uint8(0); j < e.Key.N; j++ {
			used[[3]uint16{e.Key.Func, e.Key.Block, uint16(e.Key.Idx[j])}] = true
		}
		e.Selected = true
		selected++
		covered += e.DynInstrs()
	}
	if p.TotalDyn > 0 {
		p.SelectedCoverage = float64(covered) / float64(p.TotalDyn)
	}
}

// CoverageCDF returns the Fig. 5b curves: cumulative dynamic coverage as a
// function of the number of unique chains, over all candidates and over the
// 16-bit-representable subset. Entries must already be ranked (BuildProfile
// ranks them).
func (p *Profile) CoverageCDF() (all, thumbOnly *stats.CDF) {
	all, thumbOnly = &stats.CDF{}, &stats.CDF{}
	rankAll, rankThumb := 0, 0
	for i := range p.Entries {
		e := &p.Entries[i]
		w := float64(e.DynInstrs())
		rankAll++
		all.Add(float64(rankAll), w)
		if e.ThumbOK {
			rankThumb++
			thumbOnly.Add(float64(rankThumb), w)
		}
	}
	return all, thumbOnly
}

// ThumbRepresentableFrac returns the fraction of candidate chains passing
// the all-or-nothing rule (paper: ~95.5% of unique CritIC sequences).
func (p *Profile) ThumbRepresentableFrac() float64 {
	if len(p.Entries) == 0 {
		return 0
	}
	ok := 0
	for i := range p.Entries {
		if p.Entries[i].ThumbOK {
			ok++
		}
	}
	return float64(ok) / float64(len(p.Entries))
}

// UniqueChains returns the number of distinct chain candidates (Fig. 5b's
// x-axis scale observation: large, ruling out per-chain ISA mnemonics).
func (p *Profile) UniqueChains() int { return len(p.Entries) }

// MarshalJSON/UnmarshalJSON give the profile a stable on-disk format for
// cmd/criticprof.
type profileJSON struct {
	App              string      `json:"app"`
	TotalDyn         int64       `json:"total_dyn"`
	SelectedCoverage float64     `json:"selected_coverage"`
	Entries          []entryJSON `json:"entries"`
}

type entryJSON struct {
	Func      uint16  `json:"func"`
	Block     uint16  `json:"block"`
	Idx       []uint8 `json:"idx"`
	DynCount  int64   `json:"dyn_count"`
	AvgFanout float64 `json:"avg_fanout"`
	ThumbOK   bool    `json:"thumb_ok"`
	Selected  bool    `json:"selected"`
}

// MarshalJSON implements json.Marshaler.
func (p *Profile) MarshalJSON() ([]byte, error) {
	out := profileJSON{App: p.App, TotalDyn: p.TotalDyn, SelectedCoverage: p.SelectedCoverage}
	for i := range p.Entries {
		e := &p.Entries[i]
		out.Entries = append(out.Entries, entryJSON{
			Func:      e.Key.Func,
			Block:     e.Key.Block,
			Idx:       append([]uint8(nil), e.Key.Idx[:e.Key.N]...),
			DynCount:  e.DynCount,
			AvgFanout: e.AvgFanout,
			ThumbOK:   e.ThumbOK,
			Selected:  e.Selected,
		})
	}
	return json.Marshal(out)
}

// UnmarshalJSON implements json.Unmarshaler.
func (p *Profile) UnmarshalJSON(data []byte) error {
	var in profileJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	p.App = in.App
	p.TotalDyn = in.TotalDyn
	p.SelectedCoverage = in.SelectedCoverage
	p.Entries = p.Entries[:0]
	for _, ej := range in.Entries {
		if len(ej.Idx) > MaxChainLen {
			return fmt.Errorf("core: chain longer than %d in profile", MaxChainLen)
		}
		e := Entry{
			Key:       ChainKey{Func: ej.Func, Block: ej.Block, N: uint8(len(ej.Idx))},
			Length:    len(ej.Idx),
			DynCount:  ej.DynCount,
			AvgFanout: ej.AvgFanout,
			ThumbOK:   ej.ThumbOK,
			Selected:  ej.Selected,
		}
		copy(e.Key.Idx[:], ej.Idx)
		p.Entries = append(p.Entries, e)
	}
	return nil
}
