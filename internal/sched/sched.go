// Package sched is the sharded parallel execution engine behind the
// experiment suite: a bounded worker pool that runs index-addressed shards
// (one per (app, window, variant) unit of work) plus a content-addressed
// memo cache (memo.go) that deduplicates the expensive
// profile→compile→simulate artifacts across experiments.
//
// Determinism contract: Map runs f over every index exactly once and waits
// for all of them; callers write results only to preallocated,
// index-addressed storage and perform any order-sensitive reduction (float
// accumulation, map merging) AFTER Map returns, iterating shards in index
// order. Under that contract the merged result is bit-identical for every
// worker count, including 1 — the property internal/exp's determinism
// regression test enforces for every experiment in the registry.
package sched

import (
	"context"
	"runtime"
	"runtime/pprof"
	"strconv"
	"sync"

	"critics/internal/obs"
	"critics/internal/telemetry"
)

// Mapper is the shard execution abstraction: Map runs f(i) for every index
// in [0, n) and returns after all of them completed. *Pool is the local
// in-process implementation; internal/dist's Coordinator maps shards over a
// worker fleet. Every implementation must uphold the determinism contract in
// the package doc — each index runs exactly once (cancellation excepted, in
// which case the caller discards the partial results) and callers perform
// order-sensitive merges only after Map returns — so swapping one Mapper for
// another never changes results, only wall-clock.
type Mapper interface {
	Map(n int, f func(i int))
}

// Pool is a bounded worker pool. The zero value is not useful; construct
// with NewPool. Pools carry no state beyond the worker bound and optional
// observability/cancellation hooks, so they are cheap to create per call
// site.
type Pool struct {
	workers int
	name    string
	metrics *PoolMetrics
	ctx     context.Context
}

// NewPool returns a pool running at most workers goroutines. workers <= 0
// selects GOMAXPROCS.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers, name: "pool"}
}

// Named sets the pool's name, used for pprof goroutine labels and metric
// labels, and returns the pool for chaining.
func (p *Pool) Named(name string) *Pool {
	p.name = name
	return p
}

// Instrument attaches metrics (nil disables) and returns the pool for
// chaining.
func (p *Pool) Instrument(m *PoolMetrics) *Pool {
	p.metrics = m
	return p
}

// WithContext binds a cancellation context to the pool and returns the pool
// for chaining. A cancelled context stops Map from dispatching shards that
// are still queued; shards already executing run to completion (the work
// functions are not required to be interruptible). After a cancelled Map
// returns, index-addressed results are partial — callers must check the
// context before consuming them.
func (p *Pool) WithContext(ctx context.Context) *Pool {
	p.ctx = ctx
	return p
}

// cancelled reports whether the pool's bound context (if any) is done.
func (p *Pool) cancelled() bool {
	return p.ctx != nil && p.ctx.Err() != nil
}

// Workers returns the resolved worker bound.
func (p *Pool) Workers() int { return p.workers }

var _ Mapper = (*Pool)(nil)

// PoolMetrics are a pool's registry series; share one bundle across pools
// created for the same purpose (they are labeled by pool name, not
// instance).
type PoolMetrics struct {
	QueueDepth  *telemetry.Gauge   // shards still queued
	BusyWorkers *telemetry.Gauge   // shards currently executing
	TasksDone   *telemetry.Counter // shards completed
}

// NewPoolMetrics registers the pool metric families on reg under the given
// pool name label.
func NewPoolMetrics(reg *telemetry.Registry, pool string) *PoolMetrics {
	l := telemetry.L("pool", pool)
	return &PoolMetrics{
		QueueDepth:  reg.Gauge("critics_pool_queue_depth", "Shards waiting in the pool queue.", l),
		BusyWorkers: reg.Gauge("critics_pool_busy_workers", "Workers currently executing a shard.", l),
		TasksDone:   reg.Counter("critics_pool_tasks_done_total", "Shards completed by the pool.", l),
	}
}

// Map runs f(i) for every i in [0, n) across the pool's workers and waits
// for completion. With one worker (or n <= 1) the shards run serially in
// index order on the calling goroutine — the reference schedule that
// parallel runs must be bit-identical to. Worker goroutines carry pprof
// labels (pool name, worker index) and each shard additionally carries its
// shard index, so CPU profiles attribute time to experiment shards.
//
// With a context bound via WithContext, Map stops dispatching queued shards
// once the context is cancelled and returns after the in-flight ones finish;
// the determinism contract then no longer holds (some indices were never
// run) and callers must discard the partial results.
func (p *Pool) Map(n int, f func(i int)) {
	if n <= 0 || p.cancelled() {
		return
	}
	// When the bound context carries a job trace, record the whole fan-out
	// as one span. Maps within a job run one after another (each blocks its
	// caller), so a per-trace ordinal keeps the id deterministic.
	if t, parent, ok := obs.FromContext(p.ctx); ok && t != nil {
		prefix := "map:" + p.name
		id := prefix + "#" + strconv.Itoa(t.Seq(prefix))
		t0 := t.Now()
		defer func() {
			t.Add(obs.Span{
				ID: id, Parent: parent, Name: prefix,
				StartUS: t0, DurUS: t.Now() - t0,
				Attrs: []obs.Attr{obs.A("shards", strconv.Itoa(n))},
			})
		}()
	}
	workers := p.workers
	if workers > n {
		workers = n
	}
	m := p.metrics
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if p.cancelled() {
				return
			}
			if m != nil {
				m.QueueDepth.Set(int64(n - i - 1))
				m.BusyWorkers.Set(1)
			}
			f(i)
			if m != nil {
				m.BusyWorkers.Set(0)
				m.TasksDone.Inc()
			}
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int, n)
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			labels := pprof.Labels("pool", p.name, "worker", strconv.Itoa(worker))
			pprof.Do(context.Background(), labels, func(ctx context.Context) {
				for i := range next {
					if p.cancelled() {
						return
					}
					if m != nil {
						m.QueueDepth.Set(int64(len(next)))
						m.BusyWorkers.Add(1)
					}
					pprof.Do(ctx, pprof.Labels("shard", strconv.Itoa(i)), func(context.Context) {
						f(i)
					})
					if m != nil {
						m.BusyWorkers.Add(-1)
						m.TasksDone.Inc()
					}
				}
			})
		}(w)
	}
	wg.Wait()
}
