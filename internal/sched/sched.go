// Package sched is the sharded parallel execution engine behind the
// experiment suite: a bounded worker pool that runs index-addressed shards
// (one per (app, window, variant) unit of work) plus a content-addressed
// memo cache (memo.go) that deduplicates the expensive
// profile→compile→simulate artifacts across experiments.
//
// Determinism contract: Map runs f over every index exactly once and waits
// for all of them; callers write results only to preallocated,
// index-addressed storage and perform any order-sensitive reduction (float
// accumulation, map merging) AFTER Map returns, iterating shards in index
// order. Under that contract the merged result is bit-identical for every
// worker count, including 1 — the property internal/exp's determinism
// regression test enforces for every experiment in the registry.
package sched

import (
	"runtime"
	"sync"
)

// Pool is a bounded worker pool. The zero value is not useful; construct
// with NewPool. Pools carry no state beyond the worker bound, so they are
// cheap to create per call site.
type Pool struct {
	workers int
}

// NewPool returns a pool running at most workers goroutines. workers <= 0
// selects GOMAXPROCS.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers}
}

// Workers returns the resolved worker bound.
func (p *Pool) Workers() int { return p.workers }

// Map runs f(i) for every i in [0, n) across the pool's workers and waits
// for completion. With one worker (or n <= 1) the shards run serially in
// index order on the calling goroutine — the reference schedule that
// parallel runs must be bit-identical to.
func (p *Pool) Map(n int, f func(i int)) {
	if n <= 0 {
		return
	}
	workers := p.workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int, n)
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				f(i)
			}
		}()
	}
	wg.Wait()
}
