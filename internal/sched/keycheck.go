package sched

import (
	"fmt"
	"os"
	"reflect"
	"sync/atomic"
)

// The KeyOf contract (memo.go) requires keyed parts to be plain values: %#v
// renders a pointer field as its address, so a key containing a live pointer
// would differ from run to run and silently defeat the cache — or worse,
// collide for distinct configurations. The contract was documented but
// unchecked; this file is the reflection-based debug assertion that enforces
// it.
//
// The walk costs reflection on every KeyOf call, so it is off by default and
// enabled in tests (and by CRITICS_CHECK_KEYS=1 in the environment) via
// EnableKeyChecks.

// debugKeyChecks gates the per-KeyOf assertion.
var debugKeyChecks atomic.Bool

func init() {
	if os.Getenv("CRITICS_CHECK_KEYS") != "" {
		debugKeyChecks.Store(true)
	}
}

// EnableKeyChecks turns the KeyOf keyability assertion on or off. While on,
// KeyOf panics when handed a part the contract forbids — the failure names
// the offending field path, so the misuse is caught at the call site instead
// of surfacing later as a nondeterministic cache.
func EnableKeyChecks(on bool) { debugKeyChecks.Store(on) }

// KeyChecksEnabled reports whether the assertion is active.
func KeyChecksEnabled() bool { return debugKeyChecks.Load() }

// AssertKeyable reports whether v may appear in a KeyOf part: only plain
// data — booleans, integers, floats, complex numbers, strings, and arrays
// and structs thereof — is keyable. Maps, slices, channels, funcs and
// non-nil pointers (at any nesting depth, exported or not) are rejected; a
// nil pointer is allowed because %#v renders it as the deterministic
// "(*T)(nil)". The error names the path to the offending field.
func AssertKeyable(v any) error {
	if v == nil {
		return fmt.Errorf("untyped nil is not keyable")
	}
	return keyable(reflect.ValueOf(v), reflect.TypeOf(v).String())
}

func keyable(v reflect.Value, path string) error {
	switch v.Kind() {
	case reflect.Bool,
		reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
		reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64,
		reflect.Float32, reflect.Float64,
		reflect.Complex64, reflect.Complex128,
		reflect.String:
		return nil
	case reflect.Pointer:
		if v.IsNil() {
			return nil // renders as the stable "(*T)(nil)"
		}
		return fmt.Errorf("%s: non-nil pointer (%s) — %%#v would hash its address", path, v.Type())
	case reflect.Interface:
		if v.IsNil() {
			return nil
		}
		return keyable(v.Elem(), path+".("+v.Elem().Type().String()+")")
	case reflect.Array:
		for i := 0; i < v.Len(); i++ {
			if err := keyable(v.Index(i), fmt.Sprintf("%s[%d]", path, i)); err != nil {
				return err
			}
		}
		return nil
	case reflect.Struct:
		t := v.Type()
		for i := 0; i < v.NumField(); i++ {
			if err := keyable(v.Field(i), path+"."+t.Field(i).Name); err != nil {
				return err
			}
		}
		return nil
	default:
		// Slice, Map, Chan, Func, UnsafePointer, Uintptr.
		return fmt.Errorf("%s: %s is not keyable", path, v.Kind())
	}
}

// checkKeyParts is KeyOf's debug hook: panic (programming error, not a
// runtime condition) on the first unkeyable part.
func checkKeyParts(parts []any) {
	for i, p := range parts {
		if err := AssertKeyable(p); err != nil {
			panic(fmt.Sprintf("sched: KeyOf part %d violates the key contract: %v", i, err))
		}
	}
}
