package sched

import (
	"strings"
	"testing"
)

type keyableStruct struct {
	A int
	B string
	C [2]float64
	D struct{ E bool }
	p *int // nil in the keyable cases
}

func TestAssertKeyable(t *testing.T) {
	x := 7
	cases := []struct {
		name string
		v    any
		bad  string // "" = keyable; otherwise a substring of the error
	}{
		{"int", 42, ""},
		{"string", "prog", ""},
		{"float", 3.5, ""},
		{"bool", true, ""},
		{"array", [3]int{1, 2, 3}, ""},
		{"plain struct", keyableStruct{A: 1, B: "x"}, ""},
		{"nil pointer field", keyableStruct{}, ""},
		{"untyped nil", nil, "untyped nil"},
		{"slice", []int{1}, "not keyable"},
		{"map", map[string]int{}, "not keyable"},
		{"chan", make(chan int), "not keyable"},
		{"func", func() {}, "not keyable"},
		{"non-nil pointer", &x, "non-nil pointer"},
		{"struct with live pointer", keyableStruct{p: &x}, "keyableStruct.p"},
		{"struct with slice field", struct{ S []int }{S: []int{1}}, ".S"},
		{"nested array of structs", [1]struct{ M map[int]int }{{M: map[int]int{}}}, ".M"},
	}
	for _, c := range cases {
		err := AssertKeyable(c.v)
		if c.bad == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", c.name, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("%s: expected error, got nil", c.name)
		} else if !strings.Contains(err.Error(), c.bad) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.bad)
		}
	}
}

// TestKeyOfChecked locks the debug gate: with checks enabled KeyOf panics on
// a contract violation and still hashes plain parts; with checks disabled
// the same violating call is silently accepted (the production fast path).
func TestKeyOfChecked(t *testing.T) {
	EnableKeyChecks(true)
	defer EnableKeyChecks(false)

	a := KeyOf("prog", keyableStruct{A: 1})
	b := KeyOf("prog", keyableStruct{A: 2})
	if a == b {
		t.Fatal("distinct parts hashed to the same key")
	}

	func() {
		defer func() {
			if recover() == nil {
				t.Error("KeyOf with a slice part did not panic under EnableKeyChecks")
			}
		}()
		KeyOf("bad", []int{1, 2})
	}()

	EnableKeyChecks(false)
	KeyOf("bad", []int{1, 2}) // must not panic when checks are off
}
