package sched

import (
	"sync"
	"sync/atomic"
	"testing"

	"critics/internal/telemetry"
)

func TestMapCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		p := NewPool(workers)
		const n = 57
		var hits [n]atomic.Int32
		p.Map(n, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, got)
			}
		}
	}
}

func TestMapZeroAndNegative(t *testing.T) {
	p := NewPool(4)
	ran := false
	p.Map(0, func(int) { ran = true })
	p.Map(-3, func(int) { ran = true })
	if ran {
		t.Error("Map ran f for n <= 0")
	}
}

func TestNewPoolDefaults(t *testing.T) {
	if NewPool(0).Workers() < 1 {
		t.Error("NewPool(0) resolved to < 1 worker")
	}
	if got := NewPool(3).Workers(); got != 3 {
		t.Errorf("Workers() = %d, want 3", got)
	}
}

func TestKeyOfDiscriminates(t *testing.T) {
	type cfg struct {
		A int
		B bool
	}
	k1 := KeyOf("meas", cfg{1, true}, 42)
	k2 := KeyOf("meas", cfg{1, true}, 42)
	if k1 != k2 {
		t.Error("identical inputs produced different keys")
	}
	if k1 == KeyOf("meas", cfg{2, true}, 42) {
		t.Error("field change did not change the key")
	}
	if k1 == KeyOf("prof", cfg{1, true}, 42) {
		t.Error("namespace change did not change the key")
	}
	if k1 == KeyOf("meas", cfg{1, true}) {
		t.Error("dropping a part did not change the key")
	}
}

func TestMemoSingleFlight(t *testing.T) {
	m := NewMemo[int](0)
	var builds atomic.Int32
	k := KeyOf("x")
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v := m.Get(k, func() int { builds.Add(1); return 7 }, nil)
			if v != 7 {
				t.Errorf("got %d", v)
			}
		}()
	}
	wg.Wait()
	if builds.Load() != 1 {
		t.Errorf("built %d times, want 1", builds.Load())
	}
	st := m.Stats()
	if st.Misses != 1 || st.Hits != 31 {
		t.Errorf("stats = %+v, want 1 miss / 31 hits", st)
	}
}

func TestMemoPeek(t *testing.T) {
	m := NewMemo[int](0)
	k := KeyOf("x")
	if _, ok := m.Peek(k); ok {
		t.Error("peek hit on an empty memo")
	}
	// Peek must not block on an in-flight build.
	started := make(chan struct{})
	release := make(chan struct{})
	go m.Get(k, func() int { close(started); <-release; return 7 }, nil)
	<-started
	if _, ok := m.Peek(k); ok {
		t.Error("peek hit on an in-flight build")
	}
	close(release)
	m.Get(k, func() int { return 7 }, nil) // join/observe the finished build
	v, ok := m.Peek(k)
	if !ok || v != 7 {
		t.Errorf("peek after build = %d, %v; want 7, true", v, ok)
	}
	hitsBefore := m.Stats().Hits
	m.Peek(k)
	if m.Stats().Hits != hitsBefore+1 {
		t.Error("successful peek did not count as a hit")
	}
}

func TestMemoBudgetAdmission(t *testing.T) {
	m := NewMemo[int](10)
	cost := func(v int) int64 { return int64(v) }
	m.Get(KeyOf(1), func() int { return 6 }, cost) // retained: used = 6
	m.Get(KeyOf(2), func() int { return 6 }, cost) // over budget: not retained
	if m.Len() != 1 {
		t.Errorf("retained %d entries, want 1", m.Len())
	}
	if m.UsedBytes() != 6 {
		t.Errorf("used = %d, want 6", m.UsedBytes())
	}
	if st := m.Stats(); st.Skipped != 1 {
		t.Errorf("skipped = %d, want 1", st.Skipped)
	}
	// The un-retained key rebuilds on next lookup.
	builds := 0
	m.Get(KeyOf(2), func() int { builds++; return 6 }, cost)
	if builds != 1 {
		t.Error("over-budget value was unexpectedly retained")
	}
	// The retained key still hits.
	m.Get(KeyOf(1), func() int { t.Error("rebuilt retained key"); return 0 }, cost)
}

func TestStatsString(t *testing.T) {
	s := Stats{Hits: 3, Misses: 1}
	if s.HitRate() != 0.75 {
		t.Errorf("hit rate %f", s.HitRate())
	}
	if s.String() == "" {
		t.Error("empty stats string")
	}
}

// TestPoolMetrics checks the instrumented pool accounts every shard and
// leaves the busy gauge at zero, serially and in parallel.
func TestPoolMetrics(t *testing.T) {
	for _, workers := range []int{1, 4} {
		reg := telemetry.NewRegistry()
		m := NewPoolMetrics(reg, "test")
		var ran atomic.Int64
		NewPool(workers).Named("test").Instrument(m).Map(100, func(i int) {
			ran.Add(1)
		})
		if ran.Load() != 100 {
			t.Fatalf("workers=%d: ran %d shards, want 100", workers, ran.Load())
		}
		if m.TasksDone.Value() != 100 {
			t.Errorf("workers=%d: tasks done = %d, want 100", workers, m.TasksDone.Value())
		}
		if m.BusyWorkers.Value() != 0 {
			t.Errorf("workers=%d: busy workers = %d after Map returned", workers, m.BusyWorkers.Value())
		}
	}
}

// TestGetHit checks the hit/miss report: builder misses, later callers hit.
func TestGetHit(t *testing.T) {
	m := NewMemo[int](0)
	if _, hit := m.GetHit(KeyOf("k"), func() int { return 1 }, nil); hit {
		t.Error("first lookup reported a hit")
	}
	if v, hit := m.GetHit(KeyOf("k"), func() int { t.Error("rebuilt"); return 0 }, nil); !hit || v != 1 {
		t.Errorf("second lookup: v=%d hit=%v, want 1 true", v, hit)
	}
}
