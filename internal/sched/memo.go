package sched

import (
	"crypto/sha256"
	"fmt"
	"sync"
	"sync/atomic"
)

// Key is a content-addressed cache key: a digest of every input that
// determines the cached artifact (workload seed and generator parameters,
// compiler configuration, machine configuration, window sizes, ...).
type Key [sha256.Size]byte

// KeyOf fingerprints its arguments into a Key. Each part is rendered with
// %#v — a canonical, type-tagged form for the plain structs (no pointers,
// maps or slices) the experiment layer keys on — and hashed, so two keys
// collide only when every configuration input is identical. The plainness
// requirement is enforced by a reflection walk while EnableKeyChecks is on
// (keycheck.go); tests run with it enabled.
func KeyOf(parts ...any) Key {
	if debugKeyChecks.Load() {
		checkKeyParts(parts)
	}
	h := sha256.New()
	for _, p := range parts {
		fmt.Fprintf(h, "%#v\x00", p)
	}
	var k Key
	h.Sum(k[:0])
	return k
}

// Stats are a memo cache's hit/miss counters. Skipped counts values that
// were computed but not retained because the byte budget was exhausted;
// Spilled counts the subset of those handed to the spill store instead of
// being dropped, and SpillHits counts lookups served back out of it.
type Stats struct {
	Hits      int64
	Misses    int64
	Skipped   int64
	Spilled   int64
	SpillHits int64
}

// HitRate returns Hits / (Hits + Misses), or 0 before any lookup.
func (s Stats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// String formats the counters for -cache-stats style reporting.
func (s Stats) String() string {
	return fmt.Sprintf("%d hits, %d misses (%.0f%% hit rate, %d evicted-on-admit)",
		s.Hits, s.Misses, 100*s.HitRate(), s.Skipped)
}

// entry is one in-flight or completed memo slot. done is closed once val is
// final; waiters that arrive during a build block on it (singleflight).
// bad marks a value the builder declared invalid (e.g. built under a
// cancelled context, so internal shards may have been skipped): waiters must
// not use it and instead retry the lookup.
type entry[V any] struct {
	done chan struct{}
	val  V
	bad  bool
}

// Memo is a content-addressed, concurrency-safe memo cache with
// single-flight builds: under a parallel schedule, the first caller of a key
// builds the value while later callers block and share the result, so an
// artifact is computed exactly once no matter how many shards need it.
//
// Builds must be deterministic pure functions of the key (the engine's
// artifacts all are): then caching is invisible to results and only affects
// wall-clock, which is what keeps parallel runs bit-identical to serial
// ones. Cached values are shared across callers and must be treated as
// immutable.
type Memo[V any] struct {
	mu      sync.Mutex
	entries map[Key]*entry[V]

	// budget caps the summed cost of retained values (0 = unlimited).
	// Admission stops when the budget is spent: values built past it are
	// returned to their waiters but not retained, so long sweeps degrade
	// to recomputation instead of unbounded memory growth.
	budget int64
	used   int64

	hits    atomic.Int64
	misses  atomic.Int64
	skipped atomic.Int64

	// spill, when enabled, is the second-chance tier for over-budget values:
	// instead of being dropped on admission they are encoded and handed to
	// the spill store, and later lookups try the store before rebuilding.
	spill     SpillStore
	spillEnc  func(V) ([]byte, error)
	spillDec  func([]byte) (V, error)
	spilled   atomic.Int64
	spillHits atomic.Int64
}

// SpillStore is the byte-level backend a Memo spills over-budget values to —
// typically a content-addressed artifact store (internal/artifact implements
// it). SpillPut reports whether the value was retained; SpillGet returns the
// bytes previously stored for k. Implementations must be safe for concurrent
// use.
type SpillStore interface {
	SpillPut(k Key, data []byte) bool
	SpillGet(k Key) ([]byte, bool)
}

// NewMemo returns a memo retaining at most budgetBytes of summed value cost
// (as reported by the cost function passed to Get); budgetBytes <= 0 means
// unlimited.
func NewMemo[V any](budgetBytes int64) *Memo[V] {
	if budgetBytes < 0 {
		budgetBytes = 0
	}
	return &Memo[V]{entries: map[Key]*entry[V]{}, budget: budgetBytes}
}

// Get returns the value for k, building it with build on first use. cost
// reports the retention cost of a freshly built value in bytes (nil = 1).
// Concurrent callers of the same key share one build.
func (m *Memo[V]) Get(k Key, build func() V, cost func(V) int64) V {
	v, _ := m.GetHit(k, build, cost)
	return v
}

// GetHit is Get plus whether the lookup was a cache hit (a shared
// single-flight build counts as a hit for every caller but the builder) —
// the hook trace exports use to label memo spans.
func (m *Memo[V]) GetHit(k Key, build func() V, cost func(V) int64) (V, bool) {
	return m.GetChecked(k, build, cost, nil)
}

// EnableSpill attaches a spill tier: values the byte budget would drop on
// admission are encoded with enc and handed to st instead, and a lookup miss
// tries st (decoding with dec) before running build. Spilled values are
// never re-admitted to the in-memory tier — they stay in the store, so a hot
// over-budget artifact costs a decode per use instead of a rebuild. enc and
// dec must round-trip exactly (builds are deterministic pure functions of
// the key, so a lossy codec would break the bit-identical-results contract).
// Call before the memo sees traffic; it is not synchronized against Get.
func (m *Memo[V]) EnableSpill(st SpillStore, enc func(V) ([]byte, error), dec func([]byte) (V, error)) {
	m.spill = st
	m.spillEnc = enc
	m.spillDec = dec
}

// GetChecked is GetHit with a validity check: after build returns, valid()
// decides whether the value may be used and retained. An invalid value
// (valid() == false — e.g. the build ran under a context that was cancelled
// partway, so shards may have been skipped) is discarded: it is not
// retained, it is not handed to single-flight waiters, and both the builder
// and any waiters retry the lookup — typically to fail fast on their own
// cancelled contexts, or to rebuild cleanly on a live one. valid == nil
// accepts every build.
func (m *Memo[V]) GetChecked(k Key, build func() V, cost func(V) int64, valid func() bool) (V, bool) {
	for {
		m.mu.Lock()
		if e, ok := m.entries[k]; ok {
			m.mu.Unlock()
			<-e.done
			if e.bad {
				// The build we waited on was discarded; try again (we may
				// become the next builder).
				continue
			}
			m.hits.Add(1)
			return e.val, true
		}
		e := &entry[V]{done: make(chan struct{})}
		m.entries[k] = e
		m.mu.Unlock()
		if m.spill != nil {
			// Second chance before rebuilding: a value previously spilled for
			// this key decodes in place of the build. The entry is torn down
			// (not retained) so the value keeps living in the spill store.
			if data, ok := m.spill.SpillGet(k); ok {
				if v, err := m.spillDec(data); err == nil {
					e.val = v
					close(e.done)
					m.mu.Lock()
					delete(m.entries, k)
					m.mu.Unlock()
					m.spillHits.Add(1)
					m.hits.Add(1)
					return v, true
				}
			}
		}
		m.misses.Add(1)

		e.val = m.runBuild(k, e, build)
		if valid != nil && !valid() {
			e.bad = true
			m.mu.Lock()
			delete(m.entries, k)
			m.mu.Unlock()
			close(e.done)
			var zero V
			return zero, false
		}
		close(e.done)

		var c int64 = 1
		if cost != nil {
			c = cost(e.val)
		}
		m.mu.Lock()
		over := m.budget > 0 && m.used+c > m.budget
		if over {
			// Over budget: hand the value to current waiters (they hold e)
			// but do not retain it for future lookups.
			delete(m.entries, k)
			m.skipped.Add(1)
		} else {
			m.used += c
		}
		m.mu.Unlock()
		if over && m.spill != nil {
			if data, err := m.spillEnc(e.val); err == nil && m.spill.SpillPut(k, data) {
				m.spilled.Add(1)
			}
		}
		return e.val, false
	}
}

// Peek returns the retained value for k when a completed build is present,
// without blocking on an in-flight build and without ever building. A
// successful peek counts as a hit; an absent or still-building entry counts
// nothing (the caller typically follows up with Get, which does the
// accounting for the build it joins or starts). Batch planners use Peek to
// split a key set into cached and to-be-built subsets before deciding how to
// build the misses.
func (m *Memo[V]) Peek(k Key) (V, bool) {
	m.mu.Lock()
	e, ok := m.entries[k]
	m.mu.Unlock()
	if ok {
		select {
		case <-e.done:
			if !e.bad {
				m.hits.Add(1)
				return e.val, true
			}
		default:
		}
	}
	var zero V
	return zero, false
}

// runBuild executes build for entry e, tearing the entry down (marked bad,
// removed, done closed) if build panics so single-flight waiters retry
// instead of blocking forever; the panic then propagates to the builder's
// caller.
func (m *Memo[V]) runBuild(k Key, e *entry[V], build func() V) V {
	finished := false
	defer func() {
		if finished {
			return
		}
		e.bad = true
		m.mu.Lock()
		delete(m.entries, k)
		m.mu.Unlock()
		close(e.done)
	}()
	v := build()
	finished = true
	return v
}

// Stats returns the current hit/miss counters.
func (m *Memo[V]) Stats() Stats {
	return Stats{
		Hits:      m.hits.Load(),
		Misses:    m.misses.Load(),
		Skipped:   m.skipped.Load(),
		Spilled:   m.spilled.Load(),
		SpillHits: m.spillHits.Load(),
	}
}

// Len returns the number of retained entries.
func (m *Memo[V]) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.entries)
}

// UsedBytes returns the summed retention cost of the retained entries.
func (m *Memo[V]) UsedBytes() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.used
}
