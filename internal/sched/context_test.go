package sched

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
)

func TestMapPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		ran := atomic.Int32{}
		NewPool(workers).WithContext(ctx).Map(8, func(int) { ran.Add(1) })
		if got := ran.Load(); got != 0 {
			t.Errorf("workers=%d: pre-cancelled Map ran %d shards", workers, got)
		}
	}
}

// TestMapCancelSerial pins the serial schedule's cancellation point: shards
// run in index order and the first check after cancel stops dispatch, so
// cancelling inside shard k means exactly k+1 shards run.
func TestMapCancelSerial(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran []int
	NewPool(1).WithContext(ctx).Map(10, func(i int) {
		ran = append(ran, i)
		if i == 3 {
			cancel()
		}
	})
	if len(ran) != 4 || ran[3] != 3 {
		t.Errorf("serial cancel at shard 3 ran %v, want [0 1 2 3]", ran)
	}
}

// TestMapCancelParallel: cancellation stops queued shards from dispatching;
// Map still returns (no leaked workers) and did not run the full range.
func TestMapCancelParallel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	const n = 1000
	var ran atomic.Int32
	NewPool(4).WithContext(ctx).Map(n, func(i int) {
		if ran.Add(1) == 8 {
			cancel()
		}
	})
	if got := ran.Load(); got == 0 || got == n {
		t.Errorf("parallel cancel ran %d shards, want 0 < ran < %d", got, n)
	}
}

// TestGetCheckedDiscards: an invalid build is not retained and not counted
// as a usable value; the next lookup rebuilds.
func TestGetCheckedDiscards(t *testing.T) {
	m := NewMemo[int](0)
	k := KeyOf("x", 1)
	builds := 0
	v, hit := m.GetChecked(k, func() int { builds++; return 41 }, nil, func() bool { return false })
	if hit || v != 0 {
		t.Errorf("invalid build returned (%d, hit=%v), want zero value miss", v, hit)
	}
	if m.Len() != 0 {
		t.Errorf("invalid build retained: Len=%d", m.Len())
	}
	v, _ = m.GetChecked(k, func() int { builds++; return 42 }, nil, func() bool { return true })
	if v != 42 || builds != 2 {
		t.Errorf("rebuild after discard: v=%d builds=%d, want 42 after 2 builds", v, builds)
	}
	if v, hit = m.GetHit(k, func() int { builds++; return -1 }, nil); !hit || v != 42 || builds != 2 {
		t.Errorf("valid rebuild not retained: v=%d hit=%v builds=%d", v, hit, builds)
	}
}

// TestGetCheckedWaiterRetries: single-flight waiters of a discarded build do
// not receive the bad value — they retry the lookup, and one of them becomes
// the next builder.
func TestGetCheckedWaiterRetries(t *testing.T) {
	m := NewMemo[int](0)
	k := KeyOf("y", 2)
	inBuild := make(chan struct{})
	releaseBuild := make(chan struct{})

	go func() {
		m.GetChecked(k, func() int {
			close(inBuild)
			<-releaseBuild
			return 13 // partial artifact: must never reach a waiter
		}, nil, func() bool { return false })
	}()
	<-inBuild

	const waiters = 4
	var wg sync.WaitGroup
	got := make([]int, waiters)
	for w := 0; w < waiters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Waiters block on the first (doomed) build, then retry with a
			// validity check that accepts.
			got[w], _ = m.GetChecked(k, func() int { return 99 }, nil, func() bool { return true })
		}(w)
	}
	close(releaseBuild)
	wg.Wait()
	for w, v := range got {
		if v != 99 {
			t.Errorf("waiter %d got %d, want 99 (discarded build leaked)", w, v)
		}
	}
}
