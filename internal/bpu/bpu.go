// Package bpu implements the branch direction predictor of the baseline
// configuration (Table I: "4k Entry 2 level BPU"): a two-level tournament —
// a PC-indexed bimodal table, a gshare table (global history XOR PC), and a
// PC-indexed chooser that learns which component predicts each branch
// better. Calls and returns are assumed target-predicted by BTB/RAS (the
// simulator charges them no misprediction penalty), matching how the paper's
// fetch-stall taxonomy attributes branch costs.
//
// A Perfect mode supports the PerfectBr configuration of §IV-G.
package bpu

// Config sizes the predictor.
type Config struct {
	Entries     int  // entries per component table (power of two)
	HistoryBits int  // global history length
	RASDepth    int  // return-address stack entries
	Perfect     bool // never mispredict (PerfectBr)
}

// DefaultConfig matches Table I.
func DefaultConfig() Config {
	return Config{Entries: 4096, HistoryBits: 12, RASDepth: 16}
}

// Predictor is a tournament branch direction predictor.
type Predictor struct {
	cfg     Config
	bimodal []uint8
	gshare  []uint8
	chooser []uint8 // >= 2: trust gshare
	ghr     uint32
	mask    uint32
	hmask   uint32

	ras    []uint32
	rasTop int

	// Stats.
	Lookups       int64
	Mispredict    int64
	RetLookups    int64
	RetMispredict int64
}

// New creates a predictor. Entries is rounded up to a power of two.
func New(cfg Config) *Predictor {
	if cfg.Entries <= 0 {
		cfg.Entries = 4096
	}
	n := 1
	for n < cfg.Entries {
		n <<= 1
	}
	p := &Predictor{
		cfg:     cfg,
		bimodal: make([]uint8, n),
		gshare:  make([]uint8, n),
		chooser: make([]uint8, n),
		mask:    uint32(n - 1),
		hmask:   (1 << uint(cfg.HistoryBits)) - 1,
	}
	for i := 0; i < n; i++ {
		p.bimodal[i] = 2 // weakly taken
		p.gshare[i] = 2
		p.chooser[i] = 1 // weakly bimodal
	}
	if cfg.RASDepth <= 0 {
		cfg.RASDepth = 16
		p.cfg.RASDepth = 16
	}
	p.ras = make([]uint32, cfg.RASDepth)
	return p
}

// Call pushes a return address onto the return-address stack (wrapping on
// overflow, which corrupts the oldest entry — the realistic failure mode).
func (p *Predictor) Call(returnAddr uint32) {
	p.ras[p.rasTop%len(p.ras)] = returnAddr
	p.rasTop++
}

// Return predicts a return target against the actual one and reports
// whether the prediction was correct. In Perfect mode it always is.
func (p *Predictor) Return(actual uint32) bool {
	p.RetLookups++
	if p.cfg.Perfect {
		return true
	}
	if p.rasTop == 0 {
		p.RetMispredict++
		return false
	}
	p.rasTop--
	pred := p.ras[p.rasTop%len(p.ras)]
	if pred != actual {
		p.RetMispredict++
		return false
	}
	return true
}

func sat(c *uint8, taken bool) {
	if taken {
		if *c < 3 {
			*c++
		}
	} else if *c > 0 {
		*c--
	}
}

// PredictAndUpdate predicts the direction of the conditional branch at pc,
// then trains on the actual outcome. It returns whether the prediction was
// correct. In Perfect mode it always returns true.
func (p *Predictor) PredictAndUpdate(pc uint32, taken bool) bool {
	p.Lookups++
	if p.cfg.Perfect {
		return true
	}
	bi := (pc >> 2) & p.mask
	gi := ((pc >> 2) ^ (p.ghr & p.hmask)) & p.mask
	bPred := p.bimodal[bi] >= 2
	gPred := p.gshare[gi] >= 2
	pred := bPred
	if p.chooser[bi] >= 2 {
		pred = gPred
	}
	// Chooser trains toward the component that was right when they
	// disagree.
	if bPred != gPred {
		sat(&p.chooser[bi], gPred == taken)
	}
	sat(&p.bimodal[bi], taken)
	sat(&p.gshare[gi], taken)
	hist := uint32(0)
	if taken {
		hist = 1
	}
	p.ghr = ((p.ghr << 1) | hist) & p.hmask
	if pred != taken {
		p.Mispredict++
		return false
	}
	return true
}

// MispredictRate returns the fraction of lookups that mispredicted.
func (p *Predictor) MispredictRate() float64 {
	if p.Lookups == 0 {
		return 0
	}
	return float64(p.Mispredict) / float64(p.Lookups)
}
