package bpu

import (
	"math/rand"
	"testing"
)

func TestLearnsBiasedBranch(t *testing.T) {
	p := New(DefaultConfig())
	pc := uint32(0x1000)
	correct := 0
	for i := 0; i < 1000; i++ {
		if p.PredictAndUpdate(pc, true) {
			correct++
		}
	}
	if correct < 990 {
		t.Errorf("always-taken branch predicted correctly only %d/1000", correct)
	}
}

func TestLearnsAlternatingPattern(t *testing.T) {
	// Two-level predictors capture short periodic patterns via history.
	p := New(DefaultConfig())
	pc := uint32(0x2000)
	correct := 0
	for i := 0; i < 4000; i++ {
		taken := i%2 == 0
		if p.PredictAndUpdate(pc, taken) {
			correct++
		}
	}
	if frac := float64(correct) / 4000; frac < 0.9 {
		t.Errorf("alternating pattern accuracy %.3f; two-level should learn it", frac)
	}
}

func TestRandomBranchNearChance(t *testing.T) {
	p := New(DefaultConfig())
	r := rand.New(rand.NewSource(5))
	pc := uint32(0x3000)
	correct := 0
	n := 20000
	for i := 0; i < n; i++ {
		if p.PredictAndUpdate(pc, r.Intn(2) == 0) {
			correct++
		}
	}
	frac := float64(correct) / float64(n)
	if frac > 0.6 {
		t.Errorf("random branch predicted at %.3f; predictor is cheating", frac)
	}
	if frac < 0.4 {
		t.Errorf("random branch predicted at %.3f; below chance", frac)
	}
}

func TestPerfectMode(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Perfect = true
	p := New(cfg)
	r := rand.New(rand.NewSource(6))
	for i := 0; i < 1000; i++ {
		if !p.PredictAndUpdate(uint32(i*4), r.Intn(2) == 0) {
			t.Fatal("perfect predictor mispredicted")
		}
	}
	if p.Mispredict != 0 {
		t.Error("perfect predictor recorded mispredictions")
	}
}

func TestMispredictRate(t *testing.T) {
	p := New(DefaultConfig())
	pc := uint32(0x4000)
	for i := 0; i < 100; i++ {
		p.PredictAndUpdate(pc, true)
	}
	if p.MispredictRate() > 0.1 {
		t.Errorf("rate %.3f too high for biased branch", p.MispredictRate())
	}
	if p.Lookups != 100 {
		t.Errorf("lookups = %d", p.Lookups)
	}
}

func TestRASPredictsNestedReturns(t *testing.T) {
	p := New(DefaultConfig())
	p.Call(0x100)
	p.Call(0x200)
	p.Call(0x300)
	if !p.Return(0x300) || !p.Return(0x200) || !p.Return(0x100) {
		t.Error("nested returns mispredicted")
	}
	if p.RetMispredict != 0 {
		t.Errorf("RetMispredict = %d", p.RetMispredict)
	}
}

func TestRASOverflowCorrupts(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RASDepth = 4
	p := New(cfg)
	for i := 0; i < 6; i++ {
		p.Call(uint32(0x100 + i*16))
	}
	// The two oldest entries were overwritten; the four newest predict.
	for i := 5; i >= 2; i-- {
		if !p.Return(uint32(0x100 + i*16)) {
			t.Errorf("entry %d should predict", i)
		}
	}
	ok := 0
	for i := 1; i >= 0; i-- {
		if p.Return(uint32(0x100 + i*16)) {
			ok++
		}
	}
	if ok == 2 {
		t.Error("overflowed entries still predicted correctly")
	}
}

func TestRASUnderflowMispredicts(t *testing.T) {
	p := New(DefaultConfig())
	if p.Return(0x500) {
		t.Error("empty RAS predicted a return")
	}
}

func TestRASPerfectMode(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Perfect = true
	p := New(cfg)
	if !p.Return(0x123) {
		t.Error("perfect mode mispredicted a return")
	}
}
