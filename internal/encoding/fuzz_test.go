package encoding

import (
	"testing"

	"critics/internal/isa"
)

// FuzzDecodeA32 exercises the 32-bit decoder on arbitrary words: it must
// never panic, and any word it accepts must re-encode and decode back to the
// same (normalized) instruction.
func FuzzDecodeA32(f *testing.F) {
	f.Add(uint32(0))
	f.Add(uint32(0xFFFFFFFF))
	if w, err := EncodeA32(isa.Inst{Op: isa.OpADD, Rd: isa.R1, Rn: isa.R2, Rm: isa.R3}); err == nil {
		f.Add(w)
	}
	if w, err := EncodeA32(isa.Inst{Op: isa.OpLDR, Rd: isa.R4, Rn: isa.R5, HasImm: true, Imm: 128}); err == nil {
		f.Add(w)
	}
	if w, err := EncodeA32(isa.Inst{Op: isa.OpSTR, Rn: isa.R6, Rm: isa.R7, HasImm: true, Imm: 4}); err == nil {
		f.Add(w)
	}
	f.Fuzz(func(t *testing.T, w uint32) {
		in, err := DecodeA32(w)
		if err != nil {
			return
		}
		w2, err := EncodeA32(in)
		if err != nil {
			t.Fatalf("decoded %#08x to %+v, which does not re-encode: %v", w, in, err)
		}
		in2, err := DecodeA32(w2)
		if err != nil {
			t.Fatalf("re-encoded %#08x -> %#08x does not decode: %v", w, w2, err)
		}
		if in2 != in {
			t.Fatalf("decode(%#08x) = %+v but decode(encode(...)) = %+v", w, in, in2)
		}
	})
}

// FuzzDecodeT16 exercises the 16-bit decoder (and the CDP command decoder)
// on arbitrary halfwords: never panic; accepted halfwords that the encoder
// can reproduce must round-trip to the same instruction.
func FuzzDecodeT16(f *testing.F) {
	f.Add(uint16(0))
	f.Add(uint16(0xFFFF))
	if w, err := EncodeT16(isa.Inst{Op: isa.OpADD, Rd: isa.R1, Rn: isa.R2, Rm: isa.R3}); err == nil {
		f.Add(w)
	}
	if w, err := EncodeT16(isa.Inst{Op: isa.OpMOV, Rd: isa.R1, HasImm: true, Imm: 100}); err == nil {
		f.Add(w)
	}
	if w, err := EncodeCDP(3); err == nil {
		f.Add(w)
	}
	f.Fuzz(func(t *testing.T, w uint16) {
		if IsCDP(w) {
			cdp, err := DecodeCDP(w)
			if err != nil {
				t.Fatalf("IsCDP(%#04x) but DecodeCDP failed: %v", w, err)
			}
			if cdp.Count < 1 || cdp.Count > isa.CDPMaxRun {
				t.Fatalf("DecodeCDP(%#04x) count %d out of range", w, cdp.Count)
			}
			w2, err := EncodeCDP(cdp.Count)
			if err != nil {
				t.Fatalf("CDP count %d does not re-encode: %v", cdp.Count, err)
			}
			if cdp2, _ := DecodeCDP(w2); cdp2 != cdp {
				t.Fatalf("CDP round trip: %+v -> %+v", cdp, cdp2)
			}
			return
		}
		in, err := DecodeT16(w)
		if err != nil {
			return
		}
		// Some decodable halfwords fall outside the encoder's accepted
		// space (e.g. register codes past ThumbMaxReg in the packed field);
		// for the rest, the round trip must be exact.
		w2, err := EncodeT16(in)
		if err != nil {
			return
		}
		in2, err := DecodeT16(w2)
		if err != nil {
			t.Fatalf("re-encoded %#04x -> %#04x does not decode: %v", w, w2, err)
		}
		if in2 != in {
			t.Fatalf("decode(%#04x) = %+v but decode(encode(...)) = %+v", w, in, in2)
		}
	})
}

// FuzzEncodeRoundTrip drives the encoders from the instruction side: any
// instruction EncodeA32 accepts must decode back to its normalized self, and
// any Representable instruction must survive the T16 round trip.
func FuzzEncodeRoundTrip(f *testing.F) {
	f.Add(uint8(isa.OpADD), uint8(isa.CondAL), int8(1), int8(2), int8(3), false, int32(0))
	f.Add(uint8(isa.OpLDR), uint8(isa.CondAL), int8(0), int8(1), int8(-1), true, int32(8))
	f.Add(uint8(isa.OpSTRB), uint8(isa.CondAL), int8(-1), int8(2), int8(3), true, int32(7))
	f.Add(uint8(isa.OpB), uint8(isa.CondEQ), int8(-1), int8(-1), int8(-1), true, int32(64))
	f.Fuzz(func(t *testing.T, op, cond uint8, rd, rn, rm int8, hasImm bool, imm int32) {
		reg := func(v int8) isa.Reg {
			if v < 0 {
				return isa.NoReg
			}
			return isa.Reg(v) % isa.NumRegs
		}
		in := isa.Inst{
			Op:     isa.Op(op),
			Cond:   isa.Cond(cond),
			Rd:     reg(rd),
			Rn:     reg(rn),
			Rm:     reg(rm),
			HasImm: hasImm,
			Imm:    imm,
		}
		if in.Op >= isa.NumOps || in.Cond >= isa.NumConds {
			return
		}
		in = Normalize(in)
		if w, err := EncodeA32(in); err == nil {
			got, err := DecodeA32(w)
			if err != nil {
				t.Fatalf("EncodeA32(%+v) = %#08x, which does not decode: %v", in, w, err)
			}
			if got != in {
				t.Fatalf("A32 round trip: %+v -> %+v", in, got)
			}
		}
		if Representable(in) {
			w, err := EncodeT16(in)
			if err != nil {
				t.Fatalf("Representable(%+v) but EncodeT16 failed: %v", in, err)
			}
			got, err := DecodeT16(w)
			if err != nil {
				t.Fatalf("EncodeT16(%+v) = %#04x, which does not decode: %v", in, w, err)
			}
			if got != in {
				t.Fatalf("T16 round trip: %+v -> %+v", in, got)
			}
		}
	})
}
