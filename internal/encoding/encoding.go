// Package encoding implements the bit-level instruction formats the paper's
// mechanism relies on (Fig. 6):
//
//   - A32: the 32-bit base format — 4-bit condition, immediate flag, 7-bit
//     opcode, three 4-bit register operands or a 12-bit immediate.
//   - T16: the 16-bit compact ("Thumb") format — no condition field (the
//     format cannot express predication) and a reduced register space of 11
//     registers (R0..R10), exactly the two constraints the paper cites.
//   - CDP, the mode-switch command (§IV-B): a 16-bit command whose 3-bit
//     length field tells the decoder how many following halfwords are 16-bit
//     instructions; the first of them shares the CDP's own 32-bit word
//     (paper Fig. 9).
//
// T16 layouts (16 bits cannot hold an opcode, three 4-bit registers and a
// useful immediate, so — like real Thumb — some fields are narrower):
//
//	register form:  [15]=0  [14:10] op5  [9:3] pack7 = rd*11+rn  [2:0] rm
//	ALU imm form:   [15]=1  [14:10] op5  [9:7] reg  [6:0] imm7
//	mem imm form:   [15]=1  [14:10] op5  [9:7] reg  [6:4] rn  [3:0] imm4
//
// In the register form rd and rn range over the full 11-register space
// (base-11 packed: 11*11 = 121 <= 127) while rm is restricted to R0..R7. The
// ALU immediate form is two-address (rd == rn for three-operand shapes) with
// its register restricted to R0..R7. The memory immediate form carries the
// data register and the base register in 3-bit fields plus a 4-bit offset —
// word-scaled for LDR/STR (byte offsets 0,4,...,60), unscaled for the
// byte/halfword variants. Instructions that pass isa.ThumbCheck but violate
// these layout limits are handled by the compiler as requiring expansion
// (see Representable).
//
// All encoders round-trip exactly; code layout, i-cache footprint and fetch
// bandwidth in the simulator all derive from the byte sizes computed here.
package encoding

import (
	"fmt"

	"critics/internal/isa"
)

// Instruction sizes in bytes.
const (
	SizeA32 = 4
	SizeT16 = 2
)

// EncodeA32 encodes in into the 32-bit format:
//
//	[31:28] cond  [27] immFlag  [26:20] op7  [19:16] Rn  [15:12] Rd
//	[11:0] imm12 (immFlag=1)  or  [11:4] zero, [3:0] Rm (immFlag=0)
//
// Immediates are unsigned, 0..A32MaxImm.
func EncodeA32(in isa.Inst) (uint32, error) {
	if in.Op >= isa.NumOps {
		return 0, fmt.Errorf("encoding: bad opcode %d", in.Op)
	}
	if in.HasImm && (in.Imm < 0 || in.Imm > isa.A32MaxImm) {
		return 0, fmt.Errorf("encoding: immediate %d does not fit unsigned imm12", in.Imm)
	}
	if !operandsPresent(in) {
		return 0, fmt.Errorf("encoding: %v is missing a required operand", in)
	}
	var w uint32
	w |= uint32(in.Cond&0xF) << 28
	w |= uint32(in.Op&0x7F) << 20
	w |= uint32(regField(in.Rn)) << 16
	if isStore(in.Op) {
		// Stores have no destination; the Rd field slot carries the
		// data register (as in real ARM's Rt), freeing Rm for the
		// immediate form.
		w |= uint32(regField(in.Rm)) << 12
		if in.HasImm {
			w |= 1 << 27
			w |= uint32(in.Imm) & 0xFFF
		}
		return w, nil
	}
	w |= uint32(regField(in.Rd)) << 12
	if in.HasImm {
		w |= 1 << 27
		w |= uint32(in.Imm) & 0xFFF
	} else {
		w |= uint32(regField(in.Rm))
	}
	return w, nil
}

// isStore reports whether the opcode is a memory store.
func isStore(op isa.Op) bool {
	return op.IsMem() && !op.HasDst()
}

// operandsPresent reports whether in carries every register operand its
// opcode shape requires (the same shape normalize reconstructs on decode).
// An absent required operand would encode as field 0 and silently alias R0
// on decode, so the encoders reject such malformed instructions instead.
func operandsPresent(in isa.Inst) bool {
	if in.Op.HasDst() && in.Rd == isa.NoReg {
		return false
	}
	nsrc := int(in.Op.NumSrc())
	if in.HasImm && !in.Op.IsMem() && nsrc > 0 {
		nsrc--
	}
	if nsrc >= 1 && in.Rn == isa.NoReg {
		return false
	}
	if nsrc >= 2 && !(in.HasImm && !in.Op.IsMem()) && in.Rm == isa.NoReg {
		return false
	}
	return true
}

// DecodeA32 decodes a 32-bit word back into an instruction.
func DecodeA32(w uint32) (isa.Inst, error) {
	op := isa.Op((w >> 20) & 0x7F)
	if op >= isa.NumOps {
		return isa.Inst{}, fmt.Errorf("encoding: bad opcode field %d", op)
	}
	in := isa.Inst{
		Op:   op,
		Cond: isa.Cond((w >> 28) & 0xF),
		Rn:   isa.Reg((w >> 16) & 0xF),
		Rd:   isa.Reg((w >> 12) & 0xF),
	}
	if in.Cond >= isa.NumConds {
		return isa.Inst{}, fmt.Errorf("encoding: bad condition field %d", in.Cond)
	}
	if isStore(op) {
		in.Rm = isa.Reg((w >> 12) & 0xF)
		in.Rd = isa.NoReg
		if w&(1<<27) != 0 {
			in.HasImm = true
			in.Imm = int32(w & 0xFFF)
		}
		normalize(&in)
		return in, nil
	}
	if w&(1<<27) != 0 {
		in.HasImm = true
		in.Imm = int32(w & 0xFFF)
		in.Rm = isa.NoReg
	} else {
		in.Rm = isa.Reg(w & 0xF)
	}
	normalize(&in)
	return in, nil
}

// regField maps a register (or NoReg) to its 4-bit A32 field. Absent
// operands encode as 0 and are reconstructed from opcode metadata on decode.
func regField(r isa.Reg) uint8 {
	if r == isa.NoReg {
		return 0
	}
	return uint8(r) & 0xF
}

// normalize clears operand fields the opcode shape does not use so that
// encode/decode round-trips compare equal.
func normalize(in *isa.Inst) {
	if !in.Op.HasDst() {
		in.Rd = isa.NoReg
	}
	nsrc := int(in.Op.NumSrc())
	if in.HasImm && !in.Op.IsMem() && nsrc > 0 {
		nsrc--
	}
	if nsrc < 1 {
		in.Rn = isa.NoReg
	}
	if nsrc < 2 || (in.HasImm && !in.Op.IsMem()) {
		in.Rm = isa.NoReg
	}
	if !in.HasImm {
		in.Imm = 0
	}
}

// Normalize returns a copy of in with unused operand fields cleared to
// NoReg, so instructions built by hand compare equal to decoded ones.
func Normalize(in isa.Inst) isa.Inst {
	normalize(&in)
	return in
}

// t16Ops is the T16 opcode page; the 5-bit opcode field indexes this table.
var t16Ops = []isa.Op{
	isa.OpNOP, isa.OpADD, isa.OpSUB, isa.OpAND, isa.OpORR, isa.OpEOR,
	isa.OpBIC, isa.OpMOV, isa.OpMVN, isa.OpCMP, isa.OpTST, isa.OpLSL,
	isa.OpLSR, isa.OpASR, isa.OpROR, isa.OpMUL, isa.OpLDR, isa.OpLDRB,
	isa.OpLDRH, isa.OpSTR, isa.OpSTRB, isa.OpSTRH, isa.OpB, isa.OpBL,
	isa.OpBX, isa.OpCDP,
}

var t16OpIndex = buildT16Index()

func buildT16Index() map[isa.Op]uint16 {
	m := make(map[isa.Op]uint16, len(t16Ops))
	for i, op := range t16Ops {
		m[op] = uint16(i)
	}
	return m
}

// EncodeT16 encodes in as a single 16-bit halfword. The instruction must be
// Representable; otherwise an error describing the violated constraint is
// returned. CDP commands use EncodeCDP.
func EncodeT16(in isa.Inst) (uint16, error) {
	if reason := in.ThumbCheck(); reason != isa.ThumbOK {
		return 0, fmt.Errorf("encoding: not T16-representable: %v", reason)
	}
	if in.Op == isa.OpCDP {
		return 0, fmt.Errorf("encoding: CDP must be encoded with EncodeCDP")
	}
	opIdx, ok := t16OpIndex[in.Op]
	if !ok {
		return 0, fmt.Errorf("encoding: opcode %v has no T16 page entry", in.Op)
	}
	if in.Op == isa.OpBX && in.Rn != isa.LR {
		return 0, fmt.Errorf("encoding: T16 BX supports only the LR operand, got %v", in.Rn)
	}
	if !operandsPresent(in) {
		return 0, fmt.Errorf("encoding: %v is missing a required operand", in)
	}
	if in.HasImm {
		return encodeT16Imm(in, opIdx)
	}
	rd, err := t16RegCode(in.Rd)
	if err != nil {
		return 0, err
	}
	rn, err := t16RegCode(effRn(in))
	if err != nil {
		return 0, err
	}
	rm, err := t16RegCode(in.Rm)
	if err != nil {
		return 0, err
	}
	if rm > 7 {
		return 0, fmt.Errorf("encoding: rm %v exceeds the T16 3-bit field", in.Rm)
	}
	var w uint16
	w |= opIdx << 10
	w |= (rd*11 + rn) << 3
	w |= rm
	return w, nil
}

// t16RegCode maps a register to its code in the 11-register space. NoReg
// encodes as 0 and is reconstructed from opcode metadata on decode.
func t16RegCode(r isa.Reg) (uint16, error) {
	if r == isa.NoReg {
		return 0, nil
	}
	if r <= isa.ThumbMaxReg {
		return uint16(r), nil
	}
	return 0, fmt.Errorf("encoding: register %v not addressable in T16", r)
}

// effRn returns the Rn value to encode: BX LR is the only high-register use
// allowed in T16 and the LR operand is implied by the opcode. The T16
// encoder rejects BX with any other operand (see EncodeT16).
func effRn(in isa.Inst) isa.Reg {
	if in.Op == isa.OpBX && in.Rn == isa.LR {
		return isa.R0
	}
	return in.Rn
}

func encodeT16Imm(in isa.Inst, opIdx uint16) (uint16, error) {
	if !T16ImmFormOK(in) {
		return 0, fmt.Errorf("encoding: %v does not fit the T16 immediate form", in)
	}
	var w uint16
	w |= 1 << 15
	w |= opIdx << 10
	if in.Op.IsMem() {
		// Memory form: data/dest register, base register, imm4 offset.
		reg := in.Rd
		if reg == isa.NoReg {
			reg = in.Rm // store: the data register
		}
		imm := in.Imm
		if memImmScaled(in.Op) {
			imm /= 4
		}
		w |= uint16(reg) << 7
		w |= uint16(in.Rn) << 4
		w |= uint16(imm) & 0xF
		return w, nil
	}
	reg := in.Rd
	if reg == isa.NoReg {
		reg = in.Rn // CMP/TST: the register operand is Rn
	}
	var code uint16
	if reg != isa.NoReg {
		code = uint16(reg)
	}
	w |= code << 7
	w |= uint16(in.Imm) & 0x7F
	return w, nil
}

// memImmScaled reports whether the memory immediate form scales its 4-bit
// offset by the word size (full-word loads/stores only, as in real Thumb).
func memImmScaled(op isa.Op) bool {
	return op == isa.OpLDR || op == isa.OpSTR
}

// T16ImmFormOK reports whether an instruction with an immediate fits a T16
// immediate form.
//
// ALU form: immediate in 0..T16MaxImm, register operands collapsing to a
// single register in R0..R7 (two-address: rd == rn when both exist).
//
// Memory form: data/dest and base registers in R0..R7, offset expressible in
// the 4-bit field (0,4,...,60 for word ops; 0..15 for byte/halfword ops).
//
// The compiler treats instructions that fail this check (or
// T16RegisterFormOK) as requiring expansion into two halfwords when
// converting opportunistically, and as non-representable under the CritIC
// all-or-nothing rule.
func T16ImmFormOK(in isa.Inst) bool {
	if !in.HasImm {
		return true
	}
	if in.Imm < 0 || in.Imm > isa.T16MaxImm {
		return false
	}
	if in.Op.IsMem() {
		reg := in.Rd
		if reg == isa.NoReg {
			reg = in.Rm
		}
		if reg == isa.NoReg || reg > isa.R7 {
			return false
		}
		if in.Rn == isa.NoReg || in.Rn > isa.R7 {
			return false
		}
		if memImmScaled(in.Op) {
			return in.Imm%4 == 0 && in.Imm/4 <= 15
		}
		return in.Imm <= 15
	}
	regs := 0
	only := isa.NoReg
	if in.Rd != isa.NoReg {
		regs++
		only = in.Rd
	}
	if in.Rn != isa.NoReg {
		regs++
		only = in.Rn
	}
	switch regs {
	case 0:
		return true
	case 1:
		return only <= isa.R7
	default:
		return in.Rd == in.Rn && in.Rd <= isa.R7
	}
}

// T16RegisterFormOK reports whether a register-form instruction fits the T16
// register layout: rd/rn within R0..R10 and rm within R0..R7.
func T16RegisterFormOK(in isa.Inst) bool {
	if in.HasImm {
		return true
	}
	if in.Rd != isa.NoReg && in.Rd > isa.ThumbMaxReg {
		return false
	}
	if rn := effRn(in); rn != isa.NoReg && rn > isa.ThumbMaxReg {
		return false
	}
	if in.Rm != isa.NoReg && in.Rm > isa.R7 {
		return false
	}
	return true
}

// Representable reports whether the instruction can be emitted in T16 as a
// single halfword under the full encoding constraints: the ISA-level
// ThumbCheck plus this package's layout limits.
func Representable(in isa.Inst) bool {
	if in.ThumbCheck() != isa.ThumbOK {
		return false
	}
	if in.Op == isa.OpCDP {
		return false
	}
	if in.Op == isa.OpBX && in.Rn != isa.LR {
		return false // only BX LR has a T16 form
	}
	if !operandsPresent(in) {
		return false
	}
	if in.HasImm {
		return T16ImmFormOK(in)
	}
	return T16RegisterFormOK(in)
}

// DecodeT16 decodes a 16-bit halfword. CDP halfwords must be decoded with
// DecodeCDP.
func DecodeT16(w uint16) (isa.Inst, error) {
	opIdx := (w >> 10) & 0x1F
	if int(opIdx) >= len(t16Ops) {
		return isa.Inst{}, fmt.Errorf("encoding: bad T16 opcode index %d", opIdx)
	}
	op := t16Ops[opIdx]
	if w&(1<<15) != 0 {
		in := isa.Inst{Op: op, HasImm: true, Rd: isa.NoReg, Rn: isa.NoReg, Rm: isa.NoReg}
		reg := isa.Reg((w >> 7) & 0x7)
		if op.IsMem() {
			in.Rn = isa.Reg((w >> 4) & 0x7)
			in.Imm = int32(w & 0xF)
			if memImmScaled(op) {
				in.Imm *= 4
			}
			if op.HasDst() {
				in.Rd = reg
			} else {
				in.Rm = reg // store data register
			}
			return in, nil
		}
		in.Imm = int32(w & 0x7F)
		nsrc := int(op.NumSrc())
		switch {
		case op.HasDst():
			in.Rd = reg
			if nsrc > 1 {
				in.Rn = reg // two-address form
			}
		case nsrc > 0:
			in.Rn = reg
		}
		normalize(&in)
		return in, nil
	}
	if op == isa.OpCDP {
		return isa.Inst{}, fmt.Errorf("encoding: CDP halfword must be decoded with DecodeCDP")
	}
	pack := (w >> 3) & 0x7F
	in := isa.Inst{
		Op: op,
		Rd: isa.Reg(pack / 11),
		Rn: isa.Reg(pack % 11),
		Rm: isa.Reg(w & 0x7),
	}
	if op == isa.OpBX {
		in.Rn = isa.LR
	}
	normalize(&in)
	return in, nil
}

// CDP is the decoded form of the Thumb-switch command: Count following
// halfword instructions (1..isa.CDPMaxRun) are in the 16-bit format, the
// first sharing the CDP's own 32-bit word (paper Fig. 9).
type CDP struct {
	Count int
}

var cdpOpIdx = t16OpIndex[isa.OpCDP]

// EncodeCDP encodes the mode-switch command covering count following 16-bit
// instructions.
func EncodeCDP(count int) (uint16, error) {
	if count < 1 || count > isa.CDPMaxRun {
		return 0, fmt.Errorf("encoding: CDP count %d out of range 1..%d", count, isa.CDPMaxRun)
	}
	var w uint16
	w |= cdpOpIdx << 10
	w |= uint16(count-1) << 7
	return w, nil
}

// DecodeCDP decodes a CDP halfword.
func DecodeCDP(w uint16) (CDP, error) {
	if !IsCDP(w) {
		return CDP{}, fmt.Errorf("encoding: halfword %#04x is not a CDP command", w)
	}
	return CDP{Count: int((w>>7)&0x7) + 1}, nil
}

// IsCDP reports whether a halfword is a CDP mode-switch command.
func IsCDP(w uint16) bool {
	return w&(1<<15) == 0 && (w>>10)&0x1F == cdpOpIdx
}
