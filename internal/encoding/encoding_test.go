package encoding

import (
	"math/rand"
	"testing"
	"testing/quick"

	"critics/internal/isa"
)

// randInst generates a random, shape-valid instruction.
func randInst(r *rand.Rand) isa.Inst {
	ops := []isa.Op{
		isa.OpADD, isa.OpSUB, isa.OpRSB, isa.OpAND, isa.OpORR, isa.OpEOR,
		isa.OpBIC, isa.OpMOV, isa.OpMVN, isa.OpCMP, isa.OpTST, isa.OpLSL,
		isa.OpLSR, isa.OpASR, isa.OpROR, isa.OpMUL, isa.OpMLA, isa.OpSDIV,
		isa.OpUDIV, isa.OpLDR, isa.OpLDRB, isa.OpLDRH, isa.OpSTR, isa.OpSTRB,
		isa.OpSTRH, isa.OpB, isa.OpBL, isa.OpBX, isa.OpVADD, isa.OpVMUL,
		isa.OpVDIV, isa.OpVLDR, isa.OpVSTR, isa.OpNOP,
	}
	op := ops[r.Intn(len(ops))]
	in := isa.Inst{
		Op: op,
		Rd: isa.Reg(r.Intn(13)),
		Rn: isa.Reg(r.Intn(13)),
		Rm: isa.Reg(r.Intn(13)),
	}
	// Predication is the exception in real code; skew accordingly so the
	// T16 path gets exercised.
	if r.Intn(4) == 0 {
		in.Cond = isa.Cond(1 + r.Intn(int(isa.NumConds)-1))
	}
	if op == isa.OpBX {
		in.Rn = isa.LR
	}
	if r.Intn(2) == 0 && !op.IsControl() {
		in.HasImm = true
		if r.Intn(2) == 0 {
			in.Imm = int32(r.Intn(16)) * 4 // small word-aligned offsets
		} else {
			in.Imm = int32(r.Intn(isa.A32MaxImm + 1))
		}
		if !op.IsMem() && op.NumSrc() > 1 && r.Intn(2) == 0 {
			in.Rn = in.Rd // two-address shape
		}
	}
	return Normalize(in)
}

func TestA32RoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 20000; i++ {
		in := randInst(r)
		w, err := EncodeA32(in)
		if err != nil {
			t.Fatalf("EncodeA32(%v): %v", in, err)
		}
		got, err := DecodeA32(w)
		if err != nil {
			t.Fatalf("DecodeA32(%#08x) for %v: %v", w, in, err)
		}
		if got != in {
			t.Fatalf("A32 round trip: %v -> %#08x -> %v", in, w, got)
		}
	}
}

func TestA32RejectsBadImmediate(t *testing.T) {
	in := isa.Inst{Op: isa.OpADD, Rd: isa.R0, Rn: isa.R1, HasImm: true, Imm: 4096}
	if _, err := EncodeA32(in); err == nil {
		t.Error("EncodeA32 accepted a 13-bit immediate")
	}
	in.Imm = -1
	if _, err := EncodeA32(in); err == nil {
		t.Error("EncodeA32 accepted a negative immediate")
	}
}

func TestT16RoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	tried, encoded := 0, 0
	for i := 0; i < 50000; i++ {
		in := randInst(r)
		tried++
		if !Representable(in) {
			if _, err := EncodeT16(in); err == nil && in.Op != isa.OpCDP {
				// EncodeT16 may succeed for shapes Representable
				// rejects only if our predicate is too strict;
				// that would be a bug in Representable.
				t.Fatalf("Representable(%v) = false but EncodeT16 succeeded", in)
			}
			continue
		}
		encoded++
		w, err := EncodeT16(in)
		if err != nil {
			t.Fatalf("EncodeT16(%v) rejected a Representable instruction: %v", in, err)
		}
		got, err := DecodeT16(w)
		if err != nil {
			t.Fatalf("DecodeT16(%#04x) for %v: %v", w, in, err)
		}
		if got != in {
			t.Fatalf("T16 round trip: %v -> %#04x -> %v", in, w, got)
		}
	}
	if encoded < tried/20 {
		t.Fatalf("only %d/%d random instructions were T16-representable; generator or predicate is off", encoded, tried)
	}
}

func TestT16RejectsPredicated(t *testing.T) {
	in := isa.Inst{Op: isa.OpADD, Cond: isa.CondEQ, Rd: isa.R0, Rn: isa.R1, Rm: isa.R2}
	if _, err := EncodeT16(in); err == nil {
		t.Error("EncodeT16 accepted a predicated instruction")
	}
	if Representable(in) {
		t.Error("Representable accepted a predicated instruction")
	}
}

func TestT16RejectsHighRegisters(t *testing.T) {
	in := isa.Inst{Op: isa.OpADD, Rd: isa.R11, Rn: isa.R1, Rm: isa.R2}
	if Representable(in) {
		t.Error("Representable accepted r11 destination")
	}
	in = isa.Inst{Op: isa.OpADD, Rd: isa.R10, Rn: isa.R10, Rm: isa.R8}
	if Representable(in) {
		t.Error("Representable accepted r8 in the 3-bit rm field")
	}
	in = isa.Inst{Op: isa.OpADD, Rd: isa.R10, Rn: isa.R10, Rm: isa.R7}
	if !Representable(in) {
		t.Error("Representable rejected a legal high-rd/rn low-rm shape")
	}
}

func TestT16MemImmediateForm(t *testing.T) {
	// Word loads: scaled offsets 0..60 in steps of 4.
	ld := isa.Inst{Op: isa.OpLDR, Rd: isa.R3, Rn: isa.R4, HasImm: true, Imm: 60}
	ld = Normalize(ld)
	if !Representable(ld) {
		t.Fatal("LDR r3,[r4,#60] should be representable")
	}
	w, err := EncodeT16(ld)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeT16(w)
	if err != nil {
		t.Fatal(err)
	}
	if got != ld {
		t.Fatalf("mem round trip: %v -> %v", ld, got)
	}
	// Unaligned or oversized word offsets are not representable.
	for _, imm := range []int32{2, 61, 64, 100} {
		in := Normalize(isa.Inst{Op: isa.OpLDR, Rd: isa.R3, Rn: isa.R4, HasImm: true, Imm: imm})
		if Representable(in) {
			t.Errorf("LDR with offset %d should not be representable", imm)
		}
	}
	// Byte loads: unscaled 0..15.
	lb := Normalize(isa.Inst{Op: isa.OpLDRB, Rd: isa.R1, Rn: isa.R2, HasImm: true, Imm: 15})
	if !Representable(lb) {
		t.Error("LDRB offset 15 should be representable")
	}
	lb.Imm = 16
	if Representable(lb) {
		t.Error("LDRB offset 16 should not be representable")
	}
	// Stores carry the data register in the reg field.
	st := Normalize(isa.Inst{Op: isa.OpSTR, Rn: isa.R5, Rm: isa.R6, HasImm: true, Imm: 8})
	if !Representable(st) {
		t.Fatal("STR r6,[r5,#8] should be representable")
	}
	w, err = EncodeT16(st)
	if err != nil {
		t.Fatal(err)
	}
	got, err = DecodeT16(w)
	if err != nil {
		t.Fatal(err)
	}
	if got != st {
		t.Fatalf("store mem round trip: %v -> %v", st, got)
	}
}

func TestT16TwoAddressRestriction(t *testing.T) {
	// ADD r0, r1, #4 is NOT representable (rd != rn), ADD r1, r1, #4 is.
	bad := Normalize(isa.Inst{Op: isa.OpADD, Rd: isa.R0, Rn: isa.R1, HasImm: true, Imm: 4})
	if Representable(bad) {
		t.Error("three-address immediate ADD should not be representable")
	}
	good := Normalize(isa.Inst{Op: isa.OpADD, Rd: isa.R1, Rn: isa.R1, HasImm: true, Imm: 4})
	if !Representable(good) {
		t.Error("two-address immediate ADD should be representable")
	}
}

func TestCDPRoundTrip(t *testing.T) {
	for count := 1; count <= isa.CDPMaxRun; count++ {
		w, err := EncodeCDP(count)
		if err != nil {
			t.Fatalf("EncodeCDP(%d): %v", count, err)
		}
		if !IsCDP(w) {
			t.Fatalf("IsCDP(%#04x) = false for count %d", w, count)
		}
		c, err := DecodeCDP(w)
		if err != nil {
			t.Fatal(err)
		}
		if c.Count != count {
			t.Fatalf("CDP round trip: %d -> %d", count, c.Count)
		}
	}
	if _, err := EncodeCDP(0); err == nil {
		t.Error("EncodeCDP(0) should fail")
	}
	if _, err := EncodeCDP(isa.CDPMaxRun + 1); err == nil {
		t.Error("EncodeCDP above max should fail")
	}
}

func TestCDPNotConfusableWithT16(t *testing.T) {
	// Non-CDP T16 encodings must never satisfy IsCDP; the fetch/decode
	// model relies on this to find mode switches.
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 20000; i++ {
		in := randInst(r)
		if !Representable(in) {
			continue
		}
		w, err := EncodeT16(in)
		if err != nil {
			t.Fatal(err)
		}
		if IsCDP(w) {
			t.Fatalf("instruction %v encodes to %#04x which looks like a CDP", in, w)
		}
	}
}

func TestBXOnlyLR(t *testing.T) {
	in := Normalize(isa.Inst{Op: isa.OpBX, Rn: isa.R3})
	if _, err := EncodeT16(in); err == nil {
		t.Error("T16 BX with a non-LR operand should be rejected")
	}
	ret := Normalize(isa.Inst{Op: isa.OpBX, Rn: isa.LR})
	w, err := EncodeT16(ret)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeT16(w)
	if err != nil {
		t.Fatal(err)
	}
	if got != ret {
		t.Fatalf("BX LR round trip: %v -> %v", ret, got)
	}
}

// Property: every Representable instruction both encodes and round-trips.
func TestRepresentableAlwaysEncodes(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		for i := 0; i < 50; i++ {
			in := randInst(r)
			if !Representable(in) {
				continue
			}
			w, err := EncodeT16(in)
			if err != nil {
				return false
			}
			got, err := DecodeT16(w)
			if err != nil || got != in {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestNormalizeIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		in := randInst(r)
		return Normalize(in) == in && Normalize(Normalize(in)) == Normalize(in)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Exhaustive shape sweep: for every opcode with a T16 page entry, enumerate
// all low-register operand combinations in register and immediate forms and
// require every Representable instruction to round-trip.
func TestT16ExhaustiveShapes(t *testing.T) {
	ops := []isa.Op{
		isa.OpADD, isa.OpSUB, isa.OpAND, isa.OpORR, isa.OpEOR, isa.OpBIC,
		isa.OpMOV, isa.OpMVN, isa.OpCMP, isa.OpTST, isa.OpLSL, isa.OpLSR,
		isa.OpASR, isa.OpROR, isa.OpMUL, isa.OpLDR, isa.OpLDRB, isa.OpLDRH,
		isa.OpSTR, isa.OpSTRB, isa.OpSTRH,
	}
	checked := 0
	for _, op := range ops {
		for rd := 0; rd <= 10; rd++ {
			for rn := 0; rn <= 10; rn++ {
				for rm := 0; rm <= 10; rm += 2 {
					in := Normalize(isa.Inst{Op: op, Rd: isa.Reg(rd), Rn: isa.Reg(rn), Rm: isa.Reg(rm)})
					if Representable(in) {
						w, err := EncodeT16(in)
						if err != nil {
							t.Fatalf("%v: %v", in, err)
						}
						got, err := DecodeT16(w)
						if err != nil || got != in {
							t.Fatalf("%v -> %#04x -> %v (%v)", in, w, got, err)
						}
						checked++
					}
					// Immediate forms.
					for _, imm := range []int32{0, 4, 15, 16, 60, 127} {
						ii := Normalize(isa.Inst{Op: op, Rd: isa.Reg(rd), Rn: isa.Reg(rn), Rm: isa.Reg(rm), HasImm: true, Imm: imm})
						if Representable(ii) {
							w, err := EncodeT16(ii)
							if err != nil {
								t.Fatalf("%v: %v", ii, err)
							}
							got, err := DecodeT16(w)
							if err != nil || got != ii {
								t.Fatalf("%v -> %#04x -> %v (%v)", ii, w, got, err)
							}
							checked++
						}
					}
				}
			}
		}
	}
	if checked < 2000 {
		t.Fatalf("only %d shapes checked; sweep too narrow", checked)
	}
}

// Exhaustive A32 sweep over all opcodes and a register/immediate lattice.
func TestA32ExhaustiveShapes(t *testing.T) {
	checked := 0
	for op := isa.Op(0); op < isa.NumOps; op++ {
		if op == isa.OpCDP {
			continue
		}
		for _, cond := range []isa.Cond{isa.CondAL, isa.CondNE, isa.CondLT} {
			for rd := 0; rd < 16; rd += 3 {
				for rn := 0; rn < 16; rn += 5 {
					in := Normalize(isa.Inst{Op: op, Cond: cond, Rd: isa.Reg(rd), Rn: isa.Reg(rn), Rm: isa.R2})
					if op == isa.OpBX {
						in.Rn = isa.LR
						in = Normalize(in)
					}
					w, err := EncodeA32(in)
					if err != nil {
						t.Fatalf("%v: %v", in, err)
					}
					got, err := DecodeA32(w)
					if err != nil || got != in {
						t.Fatalf("%v -> %#08x -> %v (%v)", in, w, got, err)
					}
					checked++
					im := Normalize(isa.Inst{Op: op, Cond: cond, Rd: isa.Reg(rd), Rn: isa.Reg(rn), HasImm: true, Imm: 2047})
					if op == isa.OpBX {
						continue
					}
					w, err = EncodeA32(im)
					if err != nil {
						t.Fatalf("%v: %v", im, err)
					}
					got, err = DecodeA32(w)
					if err != nil || got != im {
						t.Fatalf("%v -> %#08x -> %v (%v)", im, w, got, err)
					}
					checked++
				}
			}
		}
	}
	if checked < 1000 {
		t.Fatalf("only %d shapes checked", checked)
	}
}
